//! `solvergaia` — the command-line solver, mirroring the artifact's
//! `solvergaiaSim` executable: synthesize (or load) a system of a given
//! size, run LSQR for a fixed number of iterations or to convergence on a
//! chosen backend, optionally across simulated MPI ranks, with
//! checkpoint/restart support.
//!
//! ```text
//! solvergaia [--preset tiny|small|medium] [--seed N] [--iterations N]
//!            [--converge] [--backend NAME] [--threads N] [--ranks N]
//!            [--dataset FILE (load instead of generating)]
//!            [--save-dataset FILE] [--checkpoint FILE] [--force-fresh]
//!            [--checkpoint-every N] [--chaos-seed S] [--max-retries K]
//!            [--tiles DIR] [--tile-stars N] [--budget-bytes B]
//!            [--telemetry] [--list-backends]
//! ```
//!
//! `--tiles DIR` switches to the out-of-core path of §V-B capacity
//! framing: if `DIR` holds a `gaia-tiles/v1` spill (a manifest plus
//! per-tile binaries) it is opened as-is; otherwise the preset/seed
//! system is *stream-generated* into it — bit-identical to the in-memory
//! generator without ever materializing the full matrix. `--tile-stars`
//! sets the stars per tile at generation time and `--budget-bytes` caps
//! resident matrix bytes during the solve (the LRU tile cache evicts to
//! stay under it). Checkpoints taken on this path record the spill
//! directory and matrix fingerprint as provenance, so a resume refuses a
//! regenerated or foreign tile set; a relocated spill directory is found
//! through the `GAIA_TILES_DIR` override.
//!
//! The `serve` subcommand instead runs the multi-tenant solve service
//! for one batch of concurrent tenants (see `crates/serve`):
//!
//! ```text
//! solvergaia serve [--tenants N] [--requests N] [--workers N]
//!                  [--preset tiny|small|medium] [--seed S]
//!                  [--backend NAME] [--ranks N] [--deadline-ms D]
//!                  [--queue N] [--quota N] [--chaos]
//! ```
//!
//! The `tune` subcommand runs the launch-profile auto-tuner (see
//! `crates/bench/src/tune/`) and persists each layout's winning
//! `gaia-tune-profile/v1` JSON under `results/tuning/`, where the
//! `tuned` backend picks it up:
//!
//! ```text
//! solvergaia tune [--layouts tiny,small,medium] [--threads N]
//!                 [--repeats K] [--smoke]
//! ```
//!
//! `--chaos` gives the first tenant a scripted rank-panic fault schedule
//! (recovered by the supervisor without disturbing the other tenants);
//! `--deadline-ms` arms a per-request deadline enforced in-queue and
//! mid-solve. Every request's typed outcome is printed; the exit status
//! is non-zero if any request faulted.
//!
//! `--telemetry` prints the per-kernel breakdown and writes a JSON run
//! report under `results/telemetry/`; build with `--features telemetry`
//! for real counts (the probes compile to no-ops otherwise).
//!
//! Fault tolerance: `--chaos-seed S` injects a deterministic fault
//! schedule into the simulated MPI world, `--checkpoint-every N` takes a
//! recovery snapshot every N iterations (kept in a retain-last-3 rotation
//! next to `--checkpoint`'s path when given), and `--max-retries K`
//! bounds the supervisor's relaunches per rank-count tier. A corrupt or
//! mismatched checkpoint is a hard error; pass `--force-fresh` to
//! discard it and start over.

use std::path::PathBuf;
use std::process::exit;
use std::sync::Arc;
use std::time::Duration;

use gaia_avugsr::backends::{backend_by_name, backend_names, instrumented_by_name};
use gaia_avugsr::lsqr::analysis::{convergence_profile, profile_text};
use gaia_avugsr::lsqr::checkpoint::{Checkpoint, CheckpointRotation};
use gaia_avugsr::lsqr::distributed::solve_distributed;
use gaia_avugsr::lsqr::resilient::{OnUnrecoverable, RecoveryPolicy, ResilienceOptions};
use gaia_avugsr::lsqr::{solve_lsmr, solve_resilient, Lsqr, LsqrConfig};
use gaia_avugsr::mpi::{install_quiet_panic_hook, FaultPlan, FaultSpec};
use gaia_avugsr::sparse::{io, Generator, GeneratorConfig, Rhs, SystemLayout};

struct Args {
    preset: String,
    lsmr: bool,
    profile: bool,
    telemetry: bool,
    seed: u64,
    iterations: usize,
    converge: bool,
    backend: String,
    threads: usize,
    ranks: usize,
    dataset: Option<PathBuf>,
    save_dataset: Option<PathBuf>,
    checkpoint: Option<PathBuf>,
    checkpoint_every: usize,
    chaos_seed: Option<u64>,
    max_retries: Option<usize>,
    force_fresh: bool,
    tiles: Option<PathBuf>,
    tile_stars: u64,
    budget_bytes: Option<u64>,
}

fn usage() -> ! {
    eprintln!(
        "usage: solvergaia [--preset tiny|small|medium] [--seed N] \
         [--iterations N] [--converge] [--backend NAME] [--threads N] \
         [--ranks N] [--dataset FILE] [--save-dataset FILE] \
         [--checkpoint FILE] [--force-fresh] [--checkpoint-every N] \
         [--chaos-seed S] [--max-retries K] [--tiles DIR] [--tile-stars N] \
         [--budget-bytes B] [--lsmr] [--profile] \
         [--telemetry] [--list-backends]"
    );
    exit(2)
}

fn parse_args() -> Args {
    let mut args = Args {
        preset: "small".into(),
        lsmr: false,
        profile: false,
        telemetry: false,
        seed: 0,
        iterations: 100,
        converge: false,
        backend: "atomic".into(),
        threads: std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4),
        ranks: 1,
        dataset: None,
        save_dataset: None,
        checkpoint: None,
        checkpoint_every: 0,
        chaos_seed: None,
        max_retries: None,
        force_fresh: false,
        tiles: None,
        tile_stars: 0, // 0 = derive from the layout at generation time
        budget_bytes: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut val = |name: &str| {
            it.next().unwrap_or_else(|| {
                eprintln!("{name} requires a value");
                usage()
            })
        };
        match flag.as_str() {
            "--preset" => args.preset = val("--preset"),
            "--seed" => args.seed = val("--seed").parse().unwrap_or_else(|_| usage()),
            "--iterations" => {
                args.iterations = val("--iterations").parse().unwrap_or_else(|_| usage())
            }
            "--converge" => args.converge = true,
            "--lsmr" => args.lsmr = true,
            "--profile" => args.profile = true,
            "--telemetry" => args.telemetry = true,
            "--backend" => args.backend = val("--backend"),
            "--threads" => args.threads = val("--threads").parse().unwrap_or_else(|_| usage()),
            "--ranks" => args.ranks = val("--ranks").parse().unwrap_or_else(|_| usage()),
            "--dataset" => args.dataset = Some(PathBuf::from(val("--dataset"))),
            "--save-dataset" => args.save_dataset = Some(PathBuf::from(val("--save-dataset"))),
            "--checkpoint" => args.checkpoint = Some(PathBuf::from(val("--checkpoint"))),
            "--checkpoint-every" => {
                args.checkpoint_every = val("--checkpoint-every")
                    .parse()
                    .unwrap_or_else(|_| usage())
            }
            "--chaos-seed" => {
                args.chaos_seed = Some(val("--chaos-seed").parse().unwrap_or_else(|_| usage()))
            }
            "--max-retries" => {
                args.max_retries = Some(val("--max-retries").parse().unwrap_or_else(|_| usage()))
            }
            "--force-fresh" => args.force_fresh = true,
            "--tiles" => args.tiles = Some(PathBuf::from(val("--tiles"))),
            "--tile-stars" => {
                args.tile_stars = val("--tile-stars").parse().unwrap_or_else(|_| usage())
            }
            "--budget-bytes" => {
                args.budget_bytes = Some(val("--budget-bytes").parse().unwrap_or_else(|_| usage()))
            }
            "--list-backends" => {
                for name in backend_names() {
                    println!("{name}");
                }
                exit(0)
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag {other}");
                usage()
            }
        }
    }
    args
}

/// Drive the resilient supervisor: restore the newest rotation snapshot
/// (hard error on corruption unless `--force-fresh`), inject the chaos
/// schedule when asked, and report the recovery story next to the
/// solution.
fn run_resilient(
    sys: &gaia_avugsr::sparse::SparseSystem,
    cfg: &LsqrConfig,
    args: &Args,
) -> gaia_avugsr::lsqr::Solution {
    install_quiet_panic_hook();
    let backend_name = args.backend.clone();
    let threads = args.threads;
    if backend_by_name(&backend_name, threads).is_none() {
        eprintln!("unknown backend {backend_name} (try --list-backends)");
        exit(1)
    }
    let rotation = args
        .checkpoint
        .as_ref()
        .map(|p| CheckpointRotation::new(p.clone(), 3));
    let resume = match (&rotation, args.force_fresh) {
        (Some(rot), false) => match rot.latest() {
            Some((itn, ckpt)) => match ckpt.restore(sys, cfg) {
                Ok(state) => {
                    println!("resumed from checkpoint rotation at iteration {itn}");
                    Some(state)
                }
                Err(e) => {
                    eprintln!("cannot resume checkpoint: {e} (pass --force-fresh to discard)");
                    exit(1)
                }
            },
            None => None,
        },
        (Some(_), true) => {
            println!("--force-fresh: ignoring any existing checkpoint rotation");
            None
        }
        _ => None,
    };
    let plan = args
        .chaos_seed
        .map(|s| Arc::new(FaultPlan::new(s, FaultSpec::light())));
    if let Some(seed) = args.chaos_seed {
        println!("chaos: light fault schedule, seed {seed}");
    }
    let policy = RecoveryPolicy {
        max_retries: args.max_retries.unwrap_or(3),
        backoff: Duration::from_millis(10),
        // A checkpoint path without an explicit cadence still deserves
        // periodic snapshots — recovery is the point of the path.
        checkpoint_every: match (args.checkpoint_every, &args.checkpoint) {
            (0, Some(_)) => 10,
            (n, _) => n,
        },
        on_unrecoverable: OnUnrecoverable::Degrade,
        ..RecoveryPolicy::default()
    };
    println!(
        "resilient solve on {} rank(s), backend {} ({} threads), \
         checkpoint every {} iteration(s), up to {} retries per tier",
        args.ranks.max(1),
        backend_name,
        threads,
        policy.checkpoint_every,
        policy.max_retries
    );
    let opts = ResilienceOptions {
        policy,
        faults: plan,
        collective_timeout: Some(Duration::from_secs(30)),
        resume,
        persist: rotation.as_ref(),
        cancel: None,
    };
    match solve_resilient(
        sys,
        args.ranks.max(1),
        cfg,
        |_| backend_by_name(&backend_name, threads).expect("validated above"),
        &opts,
    ) {
        Ok(report) => {
            if report.attempts.len() > 1 || !report.fault_events.is_empty() {
                println!(
                    "recovery: {} attempt(s), {} fault(s) injected, {} restore(s), \
                     {} degradation(s), finished on {} rank(s)",
                    report.attempts.len(),
                    report.fault_events.len(),
                    report.telemetry.checkpoint_restores,
                    report.telemetry.degradations,
                    report.final_ranks
                );
            }
            report.solution
        }
        Err(e) => {
            eprintln!("resilient solve failed: {e}");
            exit(1)
        }
    }
}

/// Flags of the `serve` subcommand.
struct ServeArgs {
    tenants: usize,
    requests: usize,
    workers: usize,
    preset: String,
    seed: u64,
    backend: String,
    ranks: usize,
    deadline_ms: Option<u64>,
    queue: usize,
    quota: usize,
    chaos: bool,
}

fn serve_usage() -> ! {
    eprintln!(
        "usage: solvergaia serve [--tenants N] [--requests N] [--workers N] \
         [--preset tiny|small|medium] [--seed S] [--backend NAME] [--ranks N] \
         [--deadline-ms D] [--queue N] [--quota N] [--chaos]"
    );
    exit(2)
}

fn parse_serve_args() -> ServeArgs {
    let mut args = ServeArgs {
        tenants: 4,
        requests: 2,
        workers: 2,
        preset: "tiny".into(),
        seed: 0,
        backend: "seq".into(),
        ranks: 1,
        deadline_ms: None,
        queue: 16,
        quota: 8,
        chaos: false,
    };
    let mut it = std::env::args().skip(2);
    while let Some(flag) = it.next() {
        let mut val = |name: &str| {
            it.next().unwrap_or_else(|| {
                eprintln!("{name} requires a value");
                serve_usage()
            })
        };
        match flag.as_str() {
            "--tenants" => {
                args.tenants = val("--tenants").parse().unwrap_or_else(|_| serve_usage())
            }
            "--requests" => {
                args.requests = val("--requests").parse().unwrap_or_else(|_| serve_usage())
            }
            "--workers" => {
                args.workers = val("--workers").parse().unwrap_or_else(|_| serve_usage())
            }
            "--preset" => args.preset = val("--preset"),
            "--seed" => args.seed = val("--seed").parse().unwrap_or_else(|_| serve_usage()),
            "--backend" => args.backend = val("--backend"),
            "--ranks" => args.ranks = val("--ranks").parse().unwrap_or_else(|_| serve_usage()),
            "--deadline-ms" => {
                args.deadline_ms = Some(
                    val("--deadline-ms")
                        .parse()
                        .unwrap_or_else(|_| serve_usage()),
                )
            }
            "--queue" => args.queue = val("--queue").parse().unwrap_or_else(|_| serve_usage()),
            "--quota" => args.quota = val("--quota").parse().unwrap_or_else(|_| serve_usage()),
            "--chaos" => args.chaos = true,
            "--help" | "-h" => serve_usage(),
            other => {
                eprintln!("unknown flag {other}");
                serve_usage()
            }
        }
    }
    args
}

/// The `serve` subcommand: run one batch of concurrent tenants through
/// the multi-tenant solve service and report every typed outcome.
fn run_serve() -> ! {
    use gaia_avugsr::serve::{ServiceConfig, SolveRequest, SolveService};

    install_quiet_panic_hook();
    let args = parse_serve_args();
    let layout = match args.preset.as_str() {
        "tiny" => SystemLayout::tiny(),
        "small" => SystemLayout::small(),
        "medium" => SystemLayout::medium(),
        other => {
            eprintln!("unknown preset {other}");
            serve_usage()
        }
    };
    if backend_by_name(&args.backend, 2).is_none() {
        eprintln!("unknown backend {} (try --list-backends)", args.backend);
        exit(1)
    }

    let service = SolveService::start(ServiceConfig {
        workers: args.workers.max(1),
        queue_capacity: args.queue,
        tenant_quota: args.quota,
        ..ServiceConfig::default()
    });
    println!(
        "serve: {} tenant(s) x {} request(s) on {} worker(s), backend {}, preset {}",
        args.tenants.max(1),
        args.requests.max(1),
        args.workers.max(1),
        args.backend,
        args.preset
    );

    let mut tickets = Vec::new();
    for t in 0..args.tenants.max(1) {
        let tenant = format!("tenant-{t}");
        for i in 0..args.requests.max(1) {
            let sys = Arc::new(
                Generator::new(
                    GeneratorConfig::new(layout)
                        .seed(args.seed + (t * args.requests.max(1) + i) as u64)
                        .rhs(Rhs::FromTrueSolution { noise_sigma: 1e-8 }),
                )
                .generate(),
            );
            let mut req = SolveRequest::new(tenant.clone(), sys);
            req.backend = args.backend.clone();
            req.ranks = args.ranks.max(1);
            req.deadline = args.deadline_ms.map(Duration::from_millis);
            if args.chaos && t == 0 && i == 0 {
                // One scripted rank panic for the first tenant's first
                // request; the supervisor recovers it in isolation.
                req.ranks = req.ranks.max(2);
                req.faults = Some(Arc::new(FaultPlan::scripted(args.seed).with_event(
                    0,
                    1,
                    2,
                    gaia_avugsr::mpi::FaultKind::RankPanic,
                )));
                println!("chaos: {tenant} request 0 carries a scripted rank panic");
            }
            let (id, ticket) = service.submit(req);
            tickets.push((tenant.clone(), id, ticket));
        }
    }

    let mut faulted = 0usize;
    for (tenant, id, ticket) in tickets {
        let outcome = ticket.wait();
        match outcome.summary() {
            Some(s) => println!(
                "  [{id}] {tenant}: {} ({} iterations, {} rank(s), {} thread(s), {} attempt(s))",
                outcome.kind(),
                s.solution.iterations,
                s.ranks,
                s.threads,
                s.attempts
            ),
            None => println!("  [{id}] {tenant}: {}", outcome.kind()),
        }
        if matches!(outcome.kind(), gaia_avugsr::serve::OutcomeKind::Faulted) {
            faulted += 1;
        }
    }
    let events = service.shutdown();
    println!("event log: {} entries", events.len());
    exit(if faulted > 0 { 1 } else { 0 })
}

/// Flags of the `tune` subcommand.
struct TuneArgs {
    layouts: Vec<String>,
    threads: usize,
    repeats: usize,
    smoke: bool,
}

fn tune_usage() -> ! {
    eprintln!(
        "usage: solvergaia tune [--layouts tiny,small,medium] [--threads N] \
         [--repeats K] [--smoke]"
    );
    exit(2)
}

fn parse_tune_args() -> TuneArgs {
    let available = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut args = TuneArgs {
        layouts: Vec::new(),
        threads: available,
        repeats: 0, // resolved once --smoke is known
        smoke: false,
    };
    let mut repeats: Option<usize> = None;
    let mut it = std::env::args().skip(2);
    while let Some(flag) = it.next() {
        let mut val = |name: &str| {
            it.next().unwrap_or_else(|| {
                eprintln!("{name} requires a value");
                tune_usage()
            })
        };
        match flag.as_str() {
            "--layouts" => {
                args.layouts = val("--layouts")
                    .split(',')
                    .map(|s| s.trim().to_owned())
                    .filter(|s| !s.is_empty())
                    .collect()
            }
            "--threads" => args.threads = val("--threads").parse().unwrap_or_else(|_| tune_usage()),
            "--repeats" => {
                repeats = Some(val("--repeats").parse().unwrap_or_else(|_| tune_usage()))
            }
            "--smoke" => args.smoke = true,
            "--help" | "-h" => tune_usage(),
            other => {
                eprintln!("unknown flag {other}");
                tune_usage()
            }
        }
    }
    args.threads = args.threads.clamp(1, available);
    if args.layouts.is_empty() {
        args.layouts = if args.smoke {
            vec!["tiny".to_owned()]
        } else {
            vec!["tiny".to_owned(), "small".to_owned(), "medium".to_owned()]
        };
    }
    args.repeats = repeats.unwrap_or(if args.smoke { 3 } else { 5 });
    if args.repeats == 0 {
        tune_usage()
    }
    args
}

/// The `tune` subcommand: run the launch-profile auto-tuner per layout
/// and persist each winner where the `tuned` backend loads it.
fn run_tune() -> ! {
    use gaia_bench::tune::{tune_layout, TuneSpec};

    let args = parse_tune_args();
    for layout in &args.layouts {
        let spec = TuneSpec {
            layout: layout.clone(),
            threads: args.threads,
            repeats: args.repeats,
            smoke: args.smoke,
        };
        let outcome = match tune_layout(&spec) {
            Ok(o) => o,
            Err(e) => {
                eprintln!("tune failed for {layout}: {e}");
                exit(1)
            }
        };
        let p = &outcome.profile;
        println!(
            "tune {layout}: {} configs, winner att={} instr={} glob={} budget={} \
             variant={} layout={} c={} ({:+.1} % vs default)",
            outcome.telemetry.configs_explored,
            p.att,
            p.instr,
            p.glob,
            p.budget,
            p.variant,
            p.matrix_layout,
            p.chunks_per_thread,
            p.improvement * 100.0,
        );
        let json = match serde_json::to_value(p) {
            Ok(j) => j,
            Err(e) => {
                eprintln!("cannot serialize profile for {layout}: {e}");
                exit(1)
            }
        };
        gaia_bench::must_write_artifact(&format!("tuning/{layout}.json"), &json);
    }
    exit(0)
}

/// The out-of-core path (`--tiles DIR`): open an existing `gaia-tiles/v1`
/// spill directory — or stream-generate the preset/seed system into it —
/// and run LSQR through the tiled operator under the requested capacity
/// budget. Checkpoints taken here carry tile provenance (the spill
/// directory and matrix fingerprint), so resumes validate they replay
/// the same matrix, and `GAIA_TILES_DIR` can redirect a relocated spill.
fn run_tiled(args: &Args) -> ! {
    use gaia_avugsr::lsqr::{OperatorLsqr, TiledOperator};
    use gaia_avugsr::sparse::tiled::MANIFEST_NAME;
    use gaia_avugsr::sparse::{CapacityBudget, TiledSystem};

    if args.dataset.is_some()
        || args.lsmr
        || args.ranks > 1
        || args.chaos_seed.is_some()
        || args.max_retries.is_some()
    {
        eprintln!(
            "--tiles drives the single-rank out-of-core LSQR path; it cannot \
             be combined with --dataset, --lsmr, --ranks, --chaos-seed, or \
             --max-retries"
        );
        exit(2)
    }
    let dir = args.tiles.as_ref().expect("caller checked --tiles");

    if args.telemetry {
        if !gaia_avugsr::telemetry::is_enabled() {
            eprintln!(
                "note: telemetry probes are compiled out; rebuild with \
                 `cargo run --features telemetry --bin solvergaia` for real counts"
            );
        }
        gaia_avugsr::telemetry::reset();
    }

    // An existing spill directory is authoritative (its manifest fixes
    // shape and seed); otherwise stream the preset/seed system into it.
    if dir.join(MANIFEST_NAME).exists() {
        if args.tile_stars > 0 {
            println!(
                "--tile-stars ignored: {} already holds tiles",
                dir.display()
            );
        }
    } else {
        let layout = match args.preset.as_str() {
            "tiny" => SystemLayout::tiny(),
            "small" => SystemLayout::small(),
            "medium" => SystemLayout::medium(),
            other => {
                eprintln!("unknown preset {other}");
                usage()
            }
        };
        let tile_stars = if args.tile_stars > 0 {
            args.tile_stars
        } else {
            (layout.n_stars / 8).max(1)
        };
        let manifest = Generator::new(
            GeneratorConfig::new(layout)
                .seed(args.seed)
                .rhs(Rhs::FromTrueSolution { noise_sigma: 1e-8 }),
        )
        .generate_tiled(dir, tile_stars)
        .unwrap_or_else(|e| {
            eprintln!("cannot stream tiles into {}: {e}", dir.display());
            exit(1)
        });
        let disk_bytes: u64 = manifest.tiles.iter().map(|t| t.bytes).sum();
        gaia_avugsr::telemetry::record_tile_spill(disk_bytes);
        println!(
            "streamed {} tile(s), {disk_bytes} bytes into {}",
            manifest.n_tiles,
            dir.display()
        );
    }

    let budget = match args.budget_bytes {
        Some(b) => CapacityBudget::limited(b),
        None => CapacityBudget::unbounded(),
    };
    let tiles = TiledSystem::open_with_budget(dir, budget).unwrap_or_else(|e| {
        eprintln!("cannot open tile directory {}: {e}", dir.display());
        exit(1)
    });
    println!(
        "tiled system: {} rows x {} cols ({} stars), {} tile(s), budget {}",
        tiles.n_rows(),
        tiles.n_cols(),
        tiles.layout().n_stars,
        tiles.n_tiles(),
        args.budget_bytes
            .map_or("unbounded".to_string(), |b| format!("{b} bytes")),
    );

    let Some(backend) = backend_by_name(&args.backend, args.threads) else {
        eprintln!("unknown backend {} (try --list-backends)", args.backend);
        exit(1)
    };
    println!("backend: {} ({} threads)", backend.name(), args.threads);
    let cfg = if args.converge {
        LsqrConfig::new().max_iters(args.iterations)
    } else {
        LsqrConfig::fixed_iterations(args.iterations)
    };
    let solver = OperatorLsqr::new(TiledOperator::new(&tiles, backend.as_ref()), cfg)
        .unwrap_or_else(|e| {
            eprintln!("cannot start tiled solve: {e}");
            exit(1)
        });

    // Same resume discipline as the resident path, but through the
    // provenance-validating tiled capture/restore pair.
    let state = match &args.checkpoint {
        Some(path) if path.exists() && args.force_fresh => {
            println!(
                "--force-fresh: ignoring existing checkpoint {}",
                path.display()
            );
            None
        }
        Some(path) if path.exists() => {
            match Checkpoint::load(path).and_then(|c| c.restore_tiled(&tiles, &cfg)) {
                Ok(state) => {
                    println!("resumed from {} at iteration {}", path.display(), state.itn);
                    Some(state)
                }
                Err(e) => {
                    eprintln!("cannot resume checkpoint: {e} (pass --force-fresh to discard)");
                    exit(1)
                }
            }
        }
        _ => None,
    };
    let mut state = match state {
        Some(s) => s,
        None => solver.try_init_state().unwrap_or_else(|e| {
            eprintln!("tiled solve failed during initialization: {e}");
            exit(1)
        }),
    };
    let rotation = args
        .checkpoint
        .as_ref()
        .filter(|_| args.checkpoint_every > 0)
        .map(|p| CheckpointRotation::new(p.clone(), 3));
    while !state.is_done() {
        if let Err(e) = solver.try_step(&mut state) {
            eprintln!("tiled solve failed at iteration {}: {e}", state.itn);
            exit(1)
        }
        if let Some(rot) = &rotation {
            if !state.is_done() && state.itn % args.checkpoint_every == 0 {
                if let Err(e) =
                    rot.save(state.itn, &Checkpoint::capture_tiled(&tiles, &cfg, &state))
                {
                    eprintln!("warning: cannot write periodic checkpoint: {e}");
                }
            }
        }
    }
    if let Some(path) = &args.checkpoint {
        if let Err(e) = Checkpoint::capture_tiled(&tiles, &cfg, &state).save(path) {
            eprintln!("warning: cannot write checkpoint: {e}");
        } else {
            println!("checkpoint written to {}", path.display());
        }
    }
    let solution = solver.finish(state);

    println!(
        "stop: {:?} after {} iterations",
        solution.stop, solution.iterations
    );
    println!(
        "|r| = {:.6e}  (|r|/|b| = {:.3e})  cond(A) ~ {:.3e}",
        solution.rnorm,
        solution.relative_residual(),
        solution.acond
    );
    println!(
        "mean iteration time: {:.3} ms",
        1e3 * solution.mean_iteration_seconds()
    );
    let stats = tiles.stats();
    println!(
        "tile cache: {} load(s), {} hit(s), {} eviction(s), peak resident {} bytes",
        stats.loads, stats.hits, stats.evictions, stats.peak_resident_bytes
    );
    if args.telemetry {
        println!("per-kernel telemetry:");
        print!(
            "{}",
            gaia_avugsr::telemetry::kernel_table(&gaia_avugsr::telemetry::snapshot())
        );
    }
    if args.profile {
        println!("convergence profile:");
        print!("{}", profile_text(&solution));
    }
    exit(0)
}

fn main() {
    match std::env::args().nth(1).as_deref() {
        Some("serve") => run_serve(),
        Some("tune") => run_tune(),
        _ => {}
    }
    let args = parse_args();
    if args.tiles.is_some() {
        run_tiled(&args);
    }

    // Obtain the system: load a dataset or synthesize one, as in the
    // artifact ("it randomly generates, given a certain seed, a dataset
    // with the specified size").
    let sys = match &args.dataset {
        Some(path) => match io::load_system(path) {
            Ok(sys) => {
                println!("loaded dataset {} ({} rows)", path.display(), sys.n_rows());
                sys
            }
            Err(e) => {
                eprintln!("cannot load dataset: {e}");
                exit(1)
            }
        },
        None => {
            let layout = match args.preset.as_str() {
                "tiny" => SystemLayout::tiny(),
                "small" => SystemLayout::small(),
                "medium" => SystemLayout::medium(),
                other => {
                    eprintln!("unknown preset {other}");
                    usage()
                }
            };
            Generator::new(
                GeneratorConfig::new(layout)
                    .seed(args.seed)
                    .rhs(Rhs::FromTrueSolution { noise_sigma: 1e-8 }),
            )
            .generate()
        }
    };
    println!(
        "system: {} rows x {} cols ({} stars)",
        sys.n_rows(),
        sys.n_cols(),
        sys.layout().n_stars
    );

    if let Some(path) = &args.save_dataset {
        match io::save_system(&sys, path) {
            Ok(()) => println!("dataset saved to {}", path.display()),
            Err(e) => {
                eprintln!("cannot save dataset: {e}");
                exit(1)
            }
        }
    }

    let cfg = if args.converge {
        LsqrConfig::new().max_iters(args.iterations)
    } else {
        LsqrConfig::fixed_iterations(args.iterations)
    };

    if args.telemetry {
        if !gaia_avugsr::telemetry::is_enabled() {
            eprintln!(
                "note: telemetry probes are compiled out; rebuild with \
                 `cargo run --features telemetry --bin solvergaia` for real counts"
            );
        }
        gaia_avugsr::telemetry::reset();
    }

    // The resilient supervisor takes over whenever fault tolerance is
    // asked for: chaos injection, a retry budget, or distributed
    // checkpointing. Plain runs keep the original paths.
    let resilient = args.chaos_seed.is_some()
        || args.max_retries.is_some()
        || (args.ranks > 1 && (args.checkpoint_every > 0 || args.checkpoint.is_some()));

    let solution = if resilient {
        run_resilient(&sys, &cfg, &args)
    } else if args.ranks > 1 {
        println!("distributed solve on {} ranks", args.ranks);
        solve_distributed(&sys, args.ranks, &cfg)
    } else if args.lsmr {
        // Under --telemetry, wrap the backend so whole-call aprod1/aprod2
        // cells are recorded alongside the per-block kernel cells.
        let lookup = if args.telemetry {
            instrumented_by_name
        } else {
            backend_by_name
        };
        let Some(backend) = lookup(&args.backend, args.threads) else {
            eprintln!("unknown backend {} (try --list-backends)", args.backend);
            exit(1)
        };
        println!(
            "solver: LSMR, backend: {} ({} threads)",
            backend.name(),
            args.threads
        );
        solve_lsmr(&sys, &backend, &cfg)
    } else {
        // Under --telemetry, wrap the backend so whole-call aprod1/aprod2
        // cells are recorded alongside the per-block kernel cells.
        let lookup = if args.telemetry {
            instrumented_by_name
        } else {
            backend_by_name
        };
        let Some(backend) = lookup(&args.backend, args.threads) else {
            eprintln!("unknown backend {} (try --list-backends)", args.backend);
            exit(1)
        };
        println!("backend: {} ({} threads)", backend.name(), args.threads);
        let solver = Lsqr::new(&sys, &backend, cfg);

        // Resume from a checkpoint when one exists, else start fresh;
        // always write the final state back when a path was given. A
        // corrupt or mismatched checkpoint is a hard error — silently
        // restarting would discard wall-clock the user paid for — unless
        // --force-fresh explicitly discards it.
        let state = match &args.checkpoint {
            Some(path) if path.exists() && args.force_fresh => {
                println!(
                    "--force-fresh: ignoring existing checkpoint {}",
                    path.display()
                );
                solver.init_state()
            }
            Some(path) if path.exists() => {
                match Checkpoint::load(path).and_then(|c| c.restore(&sys, &cfg)) {
                    Ok(state) => {
                        println!("resumed from {} at iteration {}", path.display(), state.itn);
                        state
                    }
                    Err(e) => {
                        eprintln!("cannot resume checkpoint: {e} (pass --force-fresh to discard)");
                        exit(1)
                    }
                }
            }
            _ => solver.init_state(),
        };
        // Periodic snapshots into a retain-last-3 rotation next to the
        // final checkpoint, so a killed job costs one interval at most.
        let rotation = args
            .checkpoint
            .as_ref()
            .filter(|_| args.checkpoint_every > 0)
            .map(|p| CheckpointRotation::new(p.clone(), 3));
        let mut state = state;
        while !state.is_done() {
            solver.step(&mut state);
            if let Some(rot) = &rotation {
                if !state.is_done() && state.itn % args.checkpoint_every == 0 {
                    if let Err(e) = rot.save(state.itn, &Checkpoint::capture(&sys, &cfg, &state)) {
                        eprintln!("warning: cannot write periodic checkpoint: {e}");
                    }
                }
            }
        }
        if let Some(path) = &args.checkpoint {
            if let Err(e) = Checkpoint::capture(&sys, &cfg, &state).save(path) {
                eprintln!("warning: cannot write checkpoint: {e}");
            } else {
                println!("checkpoint written to {}", path.display());
            }
        }
        solver.finish(state)
    };

    println!(
        "stop: {:?} after {} iterations",
        solution.stop, solution.iterations
    );
    println!(
        "|r| = {:.6e}  (|r|/|b| = {:.3e})  cond(A) ~ {:.3e}",
        solution.rnorm,
        solution.relative_residual(),
        solution.acond
    );
    println!(
        "mean iteration time: {:.3} ms",
        1e3 * solution.mean_iteration_seconds()
    );
    if let Some(se) = solution.standard_errors() {
        let mean_se = se.iter().sum::<f64>() / se.len() as f64;
        println!("mean standard error: {mean_se:.3e}");
    }
    if args.telemetry {
        let solver_label = if resilient {
            "lsqr-resilient"
        } else if args.ranks > 1 {
            "lsqr-distributed"
        } else if args.lsmr {
            "lsmr"
        } else {
            "lsqr"
        };
        let report = gaia_avugsr::lsqr::run_report(
            "solvergaia",
            &args.backend,
            solver_label,
            &sys,
            &solution,
        );
        println!("per-kernel telemetry:");
        print!(
            "{}",
            gaia_avugsr::telemetry::kernel_table(&report.telemetry)
        );
        match gaia_avugsr::telemetry::report::write_report(&report) {
            Ok(path) => println!("run report written to {}", path.display()),
            Err(e) => eprintln!("warning: cannot write run report: {e}"),
        }
    }
    if args.profile {
        println!("convergence profile:");
        print!("{}", profile_text(&solution));
        if let Some(p) = convergence_profile(&solution, 10) {
            if p.rate > 0.999 {
                println!("tail rate ~1.0/iter (residual plateaued at the noise floor)");
            } else {
                println!(
                    "tail rate {:.4}/iter ({} iterations per residual digit)",
                    p.rate,
                    p.iterations_per_digit
                        .map_or("n/a".to_string(), |d| format!("{d:.1}"))
                );
            }
        }
    }
}
