//! # gaia-avugsr — facade crate
//!
//! Re-exports the whole workspace so that examples, integration tests, and
//! downstream users can depend on a single crate. See the individual crates
//! for the real APIs:
//!
//! * [`sparse`] — the Gaia block-sparse system and synthetic generator;
//! * [`lsqr`] — the preconditioned LSQR solver (the paper's core);
//! * [`backends`] — parallel compute backends (the "frameworks" under study);
//! * [`mpi`] — in-process MPI-like collectives;
//! * [`gpu`] — the GPU platform/framework performance simulator;
//! * [`p3`] — application efficiency and Pennycook's performance-portability
//!   metric;
//! * [`serve`] — the multi-tenant solve service (admission, deadlines,
//!   retries, circuit breaking, graceful degradation);
//! * [`telemetry`] — feature-gated per-kernel timing, counters, and JSON
//!   run reports.

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

pub use gaia_backends as backends;
pub use gaia_gpu_sim as gpu;
pub use gaia_lsqr as lsqr;
pub use gaia_mpi_sim as mpi;
pub use gaia_p3 as p3;
pub use gaia_serve as serve;
pub use gaia_sparse as sparse;
pub use gaia_telemetry as telemetry;
