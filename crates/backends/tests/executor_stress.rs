//! Concurrent-caller stress of the process-wide shared executor pool.
//!
//! `ExecutorPool::shared(n)` is the resource the solve service multiplexes
//! tenants onto: many service workers (and backend instances) call into
//! one pool per thread budget at once. These tests hammer that path from
//! many OS threads simultaneously and check the pool's contract holds
//! under contention: one pool instance per budget, every submitted job
//! runs exactly once, counters stay consistent, and nothing deadlocks.

// ORDERING: the counters here only tally completions; `Relaxed` suffices
// because `ExecutorPool::run` itself is the synchronization point — it
// does not return until every job has finished.
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Barrier};

use gaia_backends::exec::{ExecutorPool, Job};

#[test]
fn shared_returns_one_pool_per_budget_under_concurrent_first_access() {
    // 16 threads race the OnceLock + HashMap initialization for the same
    // budgets; every caller must observe the same Arc per budget.
    let barrier = Arc::new(Barrier::new(16));
    let handles: Vec<_> = (0..16)
        .map(|i| {
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                barrier.wait();
                let budget = 2 + (i % 2); // budgets 2 and 3
                (budget, ExecutorPool::shared(budget))
            })
        })
        .collect();
    let pools: Vec<(usize, Arc<ExecutorPool>)> =
        handles.into_iter().map(|h| h.join().unwrap()).collect();
    for budget in [2usize, 3] {
        let mut iter = pools.iter().filter(|(b, _)| *b == budget);
        let (_, first) = iter.next().expect("at least one caller per budget");
        assert_eq!(first.threads(), budget);
        for (_, p) in iter {
            assert!(
                Arc::ptr_eq(first, p),
                "two callers got distinct pools for budget {budget}"
            );
        }
    }
}

#[test]
fn concurrent_callers_share_one_pool_without_losing_jobs() {
    const CALLERS: usize = 12;
    const LAUNCHES: usize = 25;
    const JOBS: usize = 8;

    let pool = ExecutorPool::shared(4);
    let launches_before = pool.launch_count();
    let jobs_before = pool.jobs_run_count();

    let executed = Arc::new(AtomicU64::new(0));
    let barrier = Arc::new(Barrier::new(CALLERS));
    let handles: Vec<_> = (0..CALLERS)
        .map(|_| {
            let executed = Arc::clone(&executed);
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                let pool = ExecutorPool::shared(4);
                barrier.wait();
                for _ in 0..LAUNCHES {
                    // Per-launch completion sum proves `run` returned only
                    // after every one of *its own* jobs finished, even with
                    // 11 other callers feeding the same queue.
                    let local = AtomicU64::new(0);
                    let jobs: Vec<Job<'_>> = (0..JOBS)
                        .map(|_| {
                            let local = &local;
                            let executed = Arc::clone(&executed);
                            Box::new(move || {
                                local.fetch_add(1, Ordering::Relaxed);
                                executed.fetch_add(1, Ordering::Relaxed);
                            }) as Job<'_>
                        })
                        .collect();
                    pool.run(jobs);
                    assert_eq!(local.load(Ordering::Relaxed), JOBS as u64);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("no caller may deadlock or panic");
    }

    let total = (CALLERS * LAUNCHES * JOBS) as u64;
    assert_eq!(executed.load(Ordering::Relaxed), total);
    // Counter deltas are exact: jobs run exactly once, launches counted
    // exactly once per `run`, with no double-execution under contention.
    assert_eq!(pool.jobs_run_count() - jobs_before, total);
    assert_eq!(
        pool.launch_count() - launches_before,
        (CALLERS * LAUNCHES) as u64
    );
}

#[test]
fn mixed_budget_callers_do_not_interfere() {
    // Callers on different budgets use different pools concurrently;
    // each pool's job accounting stays internally consistent.
    let barrier = Arc::new(Barrier::new(6));
    let handles: Vec<_> = [2usize, 3, 4, 2, 3, 4]
        .into_iter()
        .map(|budget| {
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                let pool = ExecutorPool::shared(budget);
                barrier.wait();
                let hits = AtomicU64::new(0);
                for _ in 0..10 {
                    let jobs: Vec<Job<'_>> = (0..budget)
                        .map(|_| {
                            let hits = &hits;
                            Box::new(move || {
                                hits.fetch_add(1, Ordering::Relaxed);
                            }) as Job<'_>
                        })
                        .collect();
                    pool.run(jobs);
                }
                assert_eq!(hits.load(Ordering::Relaxed), (10 * budget) as u64);
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
}
