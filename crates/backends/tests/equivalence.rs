//! Property-based backend equivalence: every parallel strategy must agree
//! with the sequential oracle on arbitrary systems, inputs, thread counts,
//! and prior output contents (the accumulate contract).

use gaia_backends::{all_backends, backend_by_name, Backend, SeqBackend};
use gaia_sparse::{Generator, GeneratorConfig, SystemLayout};
use proptest::prelude::*;

fn layouts() -> impl Strategy<Value = SystemLayout> {
    (3u64..10, 12u64..20, 4u64..12, 6u64..12, 0u32..2, 0u64..4)
        .prop_map(|(s, o, d, i, g, c)| SystemLayout {
            n_stars: s,
            obs_per_star: o,
            n_deg_freedom_att: d,
            n_instr_params: i,
            n_glob_params: g,
            n_constraint_rows: c,
        })
        .prop_filter("overdetermined", |l| l.validate().is_ok())
}

/// The tuned policies and the (threads, chunks_per_thread) grid the sweep
/// covers — the table-driven replacement for the per-backend copies of
/// the matches-seq test that used to live in every `backend_*.rs`.
const POLICIES: &[&str] = &[
    "chunked",
    "atomic",
    "casloop",
    "replicated",
    "striped",
    "streamed",
    "hybrid",
];
const THREAD_GRID: &[usize] = &[1, 3, 8];
const CHUNK_GRID: &[usize] = &[1, 4];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Policy-grid equivalence: every tuned policy, instantiated through
    /// the registry's round-trippable `<policy>-t<threads>-c<chunks>`
    /// names, must match the sequential oracle on arbitrary systems and
    /// prior output contents (the accumulate contract).
    #[test]
    fn policy_grid_matches_seq_on_random_systems(
        layout in layouts(),
        seed in 0u64..300,
        policy_idx in 0usize..POLICIES.len(),
        threads_idx in 0usize..THREAD_GRID.len(),
        chunks_idx in 0usize..CHUNK_GRID.len(),
        bias in -2.0f64..2.0,
    ) {
        let sys = Generator::new(GeneratorConfig::new(layout).seed(seed)).generate();
        let x: Vec<f64> = (0..sys.n_cols()).map(|i| ((i + 1) as f64 * 0.37).sin()).collect();
        let y: Vec<f64> = (0..sys.n_rows()).map(|i| ((i + 2) as f64 * 0.41).cos()).collect();
        let seq = SeqBackend;
        let mut want1 = vec![bias; sys.n_rows()];
        seq.aprod1(&sys, &x, &mut want1);
        let mut want2 = vec![bias; sys.n_cols()];
        seq.aprod2(&sys, &y, &mut want2);

        let policy = POLICIES[policy_idx];
        let threads = THREAD_GRID[threads_idx];
        let chunks = CHUNK_GRID[chunks_idx];
        let name = format!("{policy}-t{threads}-c{chunks}");
        let backend = backend_by_name(&name, 1)
            .unwrap_or_else(|| panic!("{name} must resolve"));
        prop_assert_eq!(
            backend.name(),
            if chunks > 1 { name.clone() } else { format!("{policy}-t{threads}") }
        );

        let mut got1 = vec![bias; sys.n_rows()];
        backend.aprod1(&sys, &x, &mut got1);
        for (g, w) in got1.iter().zip(&want1) {
            prop_assert!((g - w).abs() < 1e-10, "{} aprod1: {} vs {}", name, g, w);
        }
        let mut got2 = vec![bias; sys.n_cols()];
        backend.aprod2(&sys, &y, &mut got2);
        for (g, w) in got2.iter().zip(&want2) {
            prop_assert!((g - w).abs() < 1e-10, "{} aprod2: {} vs {}", name, g, w);
        }
    }

    #[test]
    fn aprod1_is_linear(seed in 0u64..100, a in -3.0f64..3.0) {
        // A(a·x) == a·(A x): catches any backend that mangles scaling.
        let sys = Generator::new(
            GeneratorConfig::new(SystemLayout::tiny()).seed(seed),
        ).generate();
        let backend = backend_by_name("streamed", 3).unwrap();
        let x: Vec<f64> = (0..sys.n_cols()).map(|i| (i as f64 * 0.11).cos()).collect();
        let ax: Vec<f64> = x.iter().map(|v| a * v).collect();
        let mut out1 = vec![0.0; sys.n_rows()];
        backend.aprod1(&sys, &ax, &mut out1);
        let mut out2 = vec![0.0; sys.n_rows()];
        backend.aprod1(&sys, &x, &mut out2);
        for (o1, o2) in out1.iter().zip(&out2) {
            prop_assert!((o1 - a * o2).abs() < 1e-9 * (1.0 + o2.abs()));
        }
    }

    #[test]
    fn aprod2_transpose_identity(seed in 0u64..100, threads in 1usize..5) {
        // ⟨A x, y⟩ == ⟨x, Aᵀ y⟩ — the adjoint identity both products must
        // satisfy together; LSQR's convergence theory depends on it.
        let sys = Generator::new(
            GeneratorConfig::new(SystemLayout::tiny()).seed(seed),
        ).generate();
        let backend = backend_by_name("atomic", threads).unwrap();
        let x: Vec<f64> = (0..sys.n_cols()).map(|i| ((i + 5) as f64 * 0.23).sin()).collect();
        let y: Vec<f64> = (0..sys.n_rows()).map(|i| ((i + 9) as f64 * 0.29).cos()).collect();
        let mut ax = vec![0.0; sys.n_rows()];
        backend.aprod1(&sys, &x, &mut ax);
        let mut aty = vec![0.0; sys.n_cols()];
        backend.aprod2(&sys, &y, &mut aty);
        let lhs: f64 = ax.iter().zip(&y).map(|(a, b)| a * b).sum();
        let rhs: f64 = x.iter().zip(&aty).map(|(a, b)| a * b).sum();
        prop_assert!((lhs - rhs).abs() < 1e-9 * (1.0 + lhs.abs()), "{lhs} vs {rhs}");
    }
}

#[test]
fn zero_input_leaves_output_untouched() {
    let sys = Generator::new(GeneratorConfig::new(SystemLayout::tiny()).seed(1)).generate();
    for backend in all_backends(4) {
        let x = vec![0.0; sys.n_cols()];
        let mut out = vec![3.5; sys.n_rows()];
        backend.aprod1(&sys, &x, &mut out);
        assert!(
            out.iter().all(|&v| v == 3.5),
            "{}: aprod1 of zero must not change out",
            backend.name()
        );
        let y = vec![0.0; sys.n_rows()];
        let mut out2 = vec![-1.25; sys.n_cols()];
        backend.aprod2(&sys, &y, &mut out2);
        assert!(
            out2.iter().all(|&v| v == -1.25),
            "{}: aprod2 of zero must not change out",
            backend.name()
        );
    }
}

#[test]
#[should_panic(expected = "x length mismatch")]
fn shape_mismatch_panics() {
    let sys = Generator::new(GeneratorConfig::new(SystemLayout::tiny()).seed(2)).generate();
    let backend = SeqBackend;
    let x = vec![0.0; sys.n_cols() - 1];
    let mut out = vec![0.0; sys.n_rows()];
    backend.aprod1(&sys, &x, &mut out);
}

#[test]
fn repeated_application_accumulates() {
    // Calling aprod1 twice must equal 2·(A x) — the accumulate contract.
    let sys = Generator::new(GeneratorConfig::new(SystemLayout::tiny()).seed(3)).generate();
    let x: Vec<f64> = (0..sys.n_cols()).map(|i| (i as f64 * 0.17).sin()).collect();
    for backend in all_backends(3) {
        let mut once = vec![0.0; sys.n_rows()];
        backend.aprod1(&sys, &x, &mut once);
        let mut twice = vec![0.0; sys.n_rows()];
        backend.aprod1(&sys, &x, &mut twice);
        backend.aprod1(&sys, &x, &mut twice);
        for (t, o) in twice.iter().zip(&once) {
            assert!(
                (t - 2.0 * o).abs() < 1e-10,
                "{}: accumulate contract violated",
                backend.name()
            );
        }
    }
}
