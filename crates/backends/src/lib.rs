//! # gaia-backends
//!
//! Parallel compute backends for the AVU-GSR `aprod` kernels.
//!
//! The paper ports the same two sparse products — `aprod1` (`b̃ += A x̃`) and
//! `aprod2` (`x̃ += Aᵀ b̃`) — to CUDA, HIP, SYCL, OpenMP-GPU, and C++ PSTL,
//! and studies how each framework's *properties* (explicit kernel tuning,
//! atomic-update code generation, asynchronous streams) interact with the
//! hardware. Rust has no production GPU-offload story, so this crate
//! reproduces the framework axis on the CPU with strategies that exercise
//! the same algorithmic trade-offs the paper discusses in §IV:
//!
//! | Backend | Paper analogue | `aprod2` conflict strategy |
//! |---|---|---|
//! | [`SeqBackend`] | reference / oracle | none (serial) |
//! | [`ChunkedBackend`] | OpenMP target teams (owner-computes) | column-range ownership |
//! | [`AtomicBackend`] | CUDA/HIP atomicAdd (RMW) | hardware atomics on `f64` |
//! | [`CasLoopBackend`] | compilers that emit CAS loops instead of RMW (§V-B, MI250X discussion) | compare-and-swap retry loops |
//! | [`ReplicatedBackend`] | privatization + reduction | per-thread buffers |
//! | [`StripedBackend`] | lock-based fallback | striped mutexes |
//! | [`RayonBackend`] | C++ PSTL (tuning-oblivious runtime) | star-chunk split + fold/reduce |
//! | [`StreamedBackend`] | CUDA streams overlapping the four `aprod2` kernels | disjoint block sections on concurrent threads |
//! | [`HybridBackend`] | the production composition: per-block strategy mix in streams | star-chunks + privatized attitude + owner-computes instrumental |
//!
//! All backends implement [`Backend`] and are validated against each other
//! and against a dense oracle; the astrometric part of `aprod2` is always
//! parallelized over *stars* (collision-free thanks to the block-diagonal
//! structure, exactly as in the production CUDA code), while the attitude,
//! instrumental, and global parts need a conflict strategy.

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

pub mod atomicf64;
pub mod blas;
pub mod chaos;
pub mod exec;
pub mod instrumented;
pub mod kernels;
pub mod launch;
pub mod plan_check;
pub mod profile;
pub mod registry;
pub mod traits;
pub mod tuning;

mod backend_atomic;
mod backend_chunked;
mod backend_csr;
mod backend_hybrid;
mod backend_rayon;
mod backend_replicated;
mod backend_seq;
mod backend_streamed;
mod backend_striped;
mod backend_tiled;
mod backend_tuned;

pub use backend_atomic::{AtomicBackend, CasLoopBackend};
pub use backend_chunked::ChunkedBackend;
pub use backend_csr::CsrBackend;
pub use backend_hybrid::HybridBackend;
pub use backend_rayon::RayonBackend;
pub use backend_replicated::ReplicatedBackend;
pub use backend_seq::SeqBackend;
pub use backend_streamed::StreamedBackend;
pub use backend_striped::StripedBackend;
pub use backend_tiled::TiledBackend;
pub use backend_tuned::TunedBackend;
pub use chaos::{ChaosBackend, ChaosMode, ChaosTarget};
pub use exec::ExecutorPool;
pub use instrumented::InstrumentedBackend;
pub use launch::{
    Aprod2Spec, Aprod2Strategy, AtomicFlavor, KernelVariant, LaunchPlan, WorkerBudget,
};
pub use plan_check::{
    access_model_rows, check_sections, PlanDims, PlanError, PlanProof, PlanViolation, ReadAccess,
    ReadSpace, ReadSync, SectionId, SectionModel, WriteAccess,
};
pub use profile::{LaunchProfile, ProfileError, PROFILE_SCHEMA};
pub use registry::{
    all_backends, backend_by_name, backend_names, grid_backends, instrumented_by_name,
};
pub use traits::Backend;
pub use tuning::Tuning;
