//! Hybrid per-block backend.
//!
//! The production CUDA port effectively composes *different* strategies
//! per submatrix: star-parallel astrometric, reduced-occupancy atomic
//! kernels for attitude/instrumental, a plain reduction for the global
//! parameter — all overlapped in streams (§IV). This backend makes that
//! composition explicit on the CPU by picking, per block, the strategy
//! that suits its structure:
//!
//! * astrometric — star-aligned chunks (conflict-free by structure);
//! * attitude — per-thread privatization + reduction (its section is
//!   small and hot: replication is cheap, atomics would thrash);
//! * instrumental — owner-computes (small irregular section, rescanning
//!   is cheaper than either privatizing or locking under heavy reuse);
//! * global — thread-local partial sums, single combine.
//!
//! All four "streams" run concurrently on scoped threads over disjoint
//! output sections.

use crossbeam::thread;
use gaia_sparse::SparseSystem;

use crate::kernels::{self, split_ranges};
use crate::traits::Backend;
use crate::tuning::Tuning;

/// Per-block strategy composition, stream-overlapped (see module docs).
#[derive(Debug, Clone, Copy)]
pub struct HybridBackend {
    tuning: Tuning,
}

impl HybridBackend {
    /// Create with explicit tuning.
    pub fn new(tuning: Tuning) -> Self {
        HybridBackend { tuning }
    }

    /// Create with `threads` workers.
    pub fn with_threads(threads: usize) -> Self {
        HybridBackend::new(Tuning::with_threads(threads))
    }
}

impl Backend for HybridBackend {
    fn name(&self) -> String {
        format!("hybrid-t{}", self.tuning.threads)
    }

    fn description(&self) -> &'static str {
        "per-block strategy mix: star-chunks + privatized attitude + owner-computes instrumental, overlapped"
    }

    fn aprod1(&self, sys: &SparseSystem, x: &[f64], out: &mut [f64]) {
        self.check_aprod1(sys, x, out);
        let ranges = split_ranges(sys.n_rows(), self.tuning.chunk_count(sys.n_rows()));
        thread::scope(|scope| {
            let mut rest = out;
            for range in ranges {
                let (mine, tail) = rest.split_at_mut(range.len());
                rest = tail;
                scope.spawn(move |_| kernels::aprod1_range(sys, x, range, mine));
            }
        })
        .expect("aprod1 worker panicked");
    }

    fn aprod2(&self, sys: &SparseSystem, y: &[f64], out: &mut [f64]) {
        self.check_aprod2(sys, y, out);
        let c = sys.columns();
        let (astro, rest) = out.split_at_mut(c.att as usize);
        let (att, rest2) = rest.split_at_mut((c.instr - c.att) as usize);
        let (instr, glob) = rest2.split_at_mut((c.glob - c.instr) as usize);

        let total = self.tuning.threads.max(4);
        let astro_workers = (total / 2).max(1);
        let att_workers = (total / 4).max(1);
        let instr_workers = (total - astro_workers - att_workers).max(1);
        let n_stars = sys.layout().n_stars as usize;
        let att_len = att.len();

        thread::scope(|scope| {
            // Stream 1 — astrometric: star-aligned chunk split.
            let mut astro_rest = astro;
            for stars in split_ranges(n_stars, astro_workers.min(n_stars.max(1))) {
                let (mine, tail) = astro_rest.split_at_mut(stars.len() * 5);
                astro_rest = tail;
                scope.spawn(move |_| kernels::aprod2_astro(sys, y, stars, mine));
            }
            // Stream 2 — attitude: privatize per worker, reduce into the
            // shared section afterwards (inside this stream's thread).
            {
                let att_out: &mut [f64] = att;
                scope.spawn(move |_| {
                    let row_ranges = split_ranges(sys.n_rows(), att_workers);
                    let privates: Vec<Vec<f64>> = thread::scope(|inner| {
                        row_ranges
                            .into_iter()
                            .map(|rows| {
                                inner.spawn(move |_| {
                                    let mut private = vec![0.0f64; att_len];
                                    kernels::aprod2_att(sys, y, rows, &mut private);
                                    private
                                })
                            })
                            .collect::<Vec<_>>()
                            .into_iter()
                            .map(|h| h.join().expect("attitude worker panicked"))
                            .collect()
                    })
                    .expect("attitude stream panicked");
                    for private in privates {
                        for (slot, v) in att_out.iter_mut().zip(private) {
                            *slot += v;
                        }
                    }
                });
            }
            // Stream 3 — instrumental: owner-computes column split.
            let mut instr_rest: &mut [f64] = instr;
            let instr_len = instr_rest.len();
            for own in split_ranges(instr_len, instr_workers.min(instr_len.max(1))) {
                let (mine, tail) = instr_rest.split_at_mut(own.len());
                instr_rest = tail;
                scope.spawn(move |_| {
                    kernels::aprod2_instr_owned(sys, y, 0..sys.n_obs_rows(), own, mine)
                });
            }
            // Stream 4 — global: plain reduction on the spawning thread.
            kernels::aprod2_glob(sys, y, 0..sys.n_obs_rows(), glob);
        })
        .expect("aprod2 worker panicked");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend_seq::SeqBackend;
    use gaia_sparse::{Generator, GeneratorConfig, SystemLayout};

    #[test]
    fn hybrid_matches_seq() {
        let sys = Generator::new(GeneratorConfig::new(SystemLayout::small()).seed(91)).generate();
        let x: Vec<f64> = (0..sys.n_cols()).map(|i| (i as f64 * 0.71).sin()).collect();
        let y: Vec<f64> = (0..sys.n_rows()).map(|i| (i as f64 * 0.73).cos()).collect();
        let seq = SeqBackend;
        let mut want1 = vec![0.0; sys.n_rows()];
        seq.aprod1(&sys, &x, &mut want1);
        let mut want2 = vec![0.0; sys.n_cols()];
        seq.aprod2(&sys, &y, &mut want2);
        for threads in [1, 4, 7] {
            let b = HybridBackend::with_threads(threads);
            let mut got1 = vec![0.0; sys.n_rows()];
            b.aprod1(&sys, &x, &mut got1);
            let mut got2 = vec![0.0; sys.n_cols()];
            b.aprod2(&sys, &y, &mut got2);
            for (g, w) in got1.iter().zip(&want1) {
                assert!((g - w).abs() < 1e-10, "threads={threads}");
            }
            for (g, w) in got2.iter().zip(&want2) {
                assert!((g - w).abs() < 1e-10, "threads={threads}");
            }
        }
    }

    #[test]
    fn hybrid_solves_like_the_reference() {
        use gaia_sparse::Rhs;
        let cfg = GeneratorConfig::new(SystemLayout::tiny())
            .seed(92)
            .rhs(Rhs::FromTrueSolution { noise_sigma: 0.0 });
        let (sys, truth) = gaia_sparse::Generator::new(cfg).generate_with_truth();
        let x_true = truth.unwrap();
        // aprod-level check is covered above; verify the adjoint identity
        // that the solver depends on.
        let b = HybridBackend::with_threads(4);
        let mut ax = vec![0.0; sys.n_rows()];
        b.aprod1(&sys, &x_true, &mut ax);
        let y: Vec<f64> = (0..sys.n_rows()).map(|i| (i as f64 * 0.05).sin()).collect();
        let mut aty = vec![0.0; sys.n_cols()];
        b.aprod2(&sys, &y, &mut aty);
        let lhs: f64 = ax.iter().zip(&y).map(|(a, b)| a * b).sum();
        let rhs: f64 = x_true.iter().zip(&aty).map(|(a, b)| a * b).sum();
        assert!((lhs - rhs).abs() < 1e-9 * (1.0 + lhs.abs()));
    }
}
