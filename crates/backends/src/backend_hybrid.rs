//! Hybrid per-block backend.
//!
//! The production CUDA port effectively composes *different* strategies
//! per submatrix: star-parallel astrometric, reduced-occupancy atomic
//! kernels for attitude/instrumental, a plain reduction for the global
//! parameter — all overlapped in streams (§IV). This backend makes that
//! composition explicit on the CPU by picking, per block, the strategy
//! that suits its structure:
//!
//! * astrometric — star-aligned chunks (conflict-free by structure);
//! * attitude — per-chunk privatization + reduction (its section is
//!   small and hot: replication is cheap, atomics would thrash);
//! * instrumental — owner-computes (small irregular section, rescanning
//!   is cheaper than either privatizing or locking under heavy reuse);
//! * global — a single reduction job.
//!
//! All four "streams" launch together on the pool over disjoint output
//! sections, with per-stream worker shares.

use std::sync::Arc;

use gaia_sparse::SparseSystem;

use crate::exec::ExecutorPool;
use crate::launch::{Aprod2Spec, Aprod2Strategy, LaunchPlan, WorkerBudget};
use crate::registry::tuned_name;
use crate::traits::Backend;
use crate::tuning::Tuning;

/// Per-block strategy composition, stream-overlapped (see module docs).
#[derive(Debug, Clone)]
pub struct HybridBackend {
    plan: LaunchPlan,
    pool: Arc<ExecutorPool>,
}

impl HybridBackend {
    /// Create with explicit tuning.
    pub fn new(tuning: Tuning) -> Self {
        let spec = Aprod2Spec {
            att: Aprod2Strategy::Replicated,
            instr: Aprod2Strategy::OwnerComputes,
            glob: Aprod2Strategy::OwnerComputes,
            budget: WorkerBudget::Streamed,
        };
        HybridBackend {
            plan: LaunchPlan::new(tuning, spec),
            pool: ExecutorPool::shared(tuning.threads),
        }
    }

    /// Create with `threads` workers.
    pub fn with_threads(threads: usize) -> Self {
        HybridBackend::new(Tuning::with_threads(threads))
    }
}

impl Backend for HybridBackend {
    fn name(&self) -> String {
        tuned_name("hybrid", self.plan.tuning)
    }

    fn description(&self) -> &'static str {
        "per-block strategy mix: star-chunks + privatized attitude + owner-computes instrumental, overlapped"
    }

    fn aprod1(&self, sys: &SparseSystem, x: &[f64], out: &mut [f64]) {
        self.check_aprod1(sys, x, out);
        self.plan.aprod1(&self.pool, sys, x, out);
    }

    fn aprod2(&self, sys: &SparseSystem, y: &[f64], out: &mut [f64]) {
        self.check_aprod2(sys, y, out);
        self.plan.aprod2(&self.pool, sys, y, out);
    }

    fn launch_plan(&self) -> Option<LaunchPlan> {
        Some(self.plan)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gaia_sparse::{GeneratorConfig, SystemLayout};

    #[test]
    fn hybrid_solves_like_the_reference() {
        use gaia_sparse::Rhs;
        let cfg = GeneratorConfig::new(SystemLayout::tiny())
            .seed(92)
            .rhs(Rhs::FromTrueSolution { noise_sigma: 0.0 });
        let (sys, truth) = gaia_sparse::Generator::new(cfg).generate_with_truth();
        let x_true = truth.unwrap();
        // aprod-level equivalence is covered by the policy-grid sweep;
        // verify the adjoint identity that the solver depends on.
        let b = HybridBackend::with_threads(4);
        let mut ax = vec![0.0; sys.n_rows()];
        b.aprod1(&sys, &x_true, &mut ax);
        let y: Vec<f64> = (0..sys.n_rows()).map(|i| (i as f64 * 0.05).sin()).collect();
        let mut aty = vec![0.0; sys.n_cols()];
        b.aprod2(&sys, &y, &mut aty);
        let lhs: f64 = ax.iter().zip(&y).map(|(a, b)| a * b).sum();
        let rhs: f64 = x_true.iter().zip(&aty).map(|(a, b)| a * b).sum();
        assert!((lhs - rhs).abs() < 1e-9 * (1.0 + lhs.abs()));
    }
}
