//! Backend registry: construct every strategy by name, the way the paper's
//! harness selects a framework per run.

use crate::traits::Backend;
use crate::{
    AtomicBackend, CasLoopBackend, ChunkedBackend, RayonBackend, ReplicatedBackend, SeqBackend,
    StreamedBackend, StripedBackend,
};

/// Names of all registered backend strategies.
pub fn backend_names() -> &'static [&'static str] {
    &[
        "seq",
        "chunked",
        "atomic",
        "casloop",
        "replicated",
        "striped",
        "rayon",
        "streamed",
        "hybrid",
    ]
}

/// Instantiate every backend with the given thread budget.
pub fn all_backends(threads: usize) -> Vec<Box<dyn Backend>> {
    backend_names()
        .iter()
        .map(|n| backend_by_name(n, threads).expect("registry is self-consistent"))
        .collect()
}

/// Instantiate a backend by strategy name.
pub fn backend_by_name(name: &str, threads: usize) -> Option<Box<dyn Backend>> {
    Some(match name {
        "seq" => Box::new(SeqBackend),
        "chunked" => Box::new(ChunkedBackend::with_threads(threads)),
        "atomic" => Box::new(AtomicBackend::with_threads(threads)),
        "casloop" => Box::new(CasLoopBackend::with_threads(threads)),
        "replicated" => Box::new(ReplicatedBackend::with_threads(threads)),
        "striped" => Box::new(StripedBackend::with_threads(threads)),
        "rayon" => Box::new(RayonBackend),
        "streamed" => Box::new(StreamedBackend::with_threads(threads)),
        "hybrid" => Box::new(crate::HybridBackend::with_threads(threads)),
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_instantiates_every_name() {
        for name in backend_names() {
            let b = backend_by_name(name, 2).unwrap();
            assert!(!b.description().is_empty());
        }
        assert_eq!(all_backends(2).len(), backend_names().len());
    }

    #[test]
    fn unknown_name_is_none() {
        assert!(backend_by_name("cuda", 2).is_none());
    }
}
