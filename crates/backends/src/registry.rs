//! Backend registry: construct every strategy by name, the way the paper's
//! harness selects a framework per run.
//!
//! Names follow the grammar `<policy>[-t<threads>[-c<chunks>]]`, e.g.
//! `chunked`, `atomic-t8`, `striped-t4-c2`. Tuned names — exactly what
//! [`crate::traits::Backend::name`] emits into telemetry reports — parse
//! back to an equivalent backend, so every reported name round-trips.

use crate::backend_chunked::VariantBackend;
use crate::instrumented::InstrumentedBackend;
use crate::traits::Backend;
use crate::tuning::Tuning;
use crate::{
    AtomicBackend, CasLoopBackend, ChunkedBackend, RayonBackend, ReplicatedBackend, SeqBackend,
    StreamedBackend, StripedBackend, TiledBackend, TunedBackend,
};

/// Names of all registered backend strategies.
pub fn backend_names() -> &'static [&'static str] {
    &[
        "seq",
        "chunked",
        "atomic",
        "casloop",
        "replicated",
        "striped",
        "rayon",
        "streamed",
        "hybrid",
        "unrolled",
        "blocked",
        "ell",
        "tiled",
        "tuned",
    ]
}

/// The canonical tuned name for a policy: `<policy>-t<threads>` with a
/// `-c<chunks>` suffix only when `chunks_per_thread > 1`.
pub fn tuned_name(policy: &str, tuning: Tuning) -> String {
    if tuning.chunks_per_thread > 1 {
        format!("{policy}-t{}-c{}", tuning.threads, tuning.chunks_per_thread)
    } else {
        format!("{policy}-t{}", tuning.threads)
    }
}

/// Parse `<policy>[-t<threads>[-c<chunks>]]` into its components.
/// Returns `None` on malformed suffixes (wrong marker, empty or
/// non-numeric digits, trailing segments).
fn parse_name(name: &str) -> Option<(&str, Option<usize>, Option<usize>)> {
    let mut parts = name.split('-');
    let policy = parts.next()?;
    if policy.is_empty() {
        return None;
    }
    let mut threads = None;
    let mut chunks = None;
    if let Some(seg) = parts.next() {
        threads = Some(seg.strip_prefix('t')?.parse().ok()?);
        if let Some(seg) = parts.next() {
            chunks = Some(seg.strip_prefix('c')?.parse().ok()?);
            if parts.next().is_some() {
                return None;
            }
        }
    }
    Some((policy, threads, chunks))
}

/// Instantiate every backend with the given thread budget.
pub fn all_backends(threads: usize) -> Vec<Box<dyn Backend>> {
    backend_names()
        .iter()
        .map(|n| backend_by_name(n, threads).expect("registry is self-consistent"))
        .collect()
}

/// The full policy × tuning grid: every tuned (non-oblivious) policy at
/// every `(threads, chunks_per_thread)` combination.
pub fn grid_backends(threads: &[usize], chunks_per_thread: &[usize]) -> Vec<Box<dyn Backend>> {
    let mut grid = Vec::new();
    for &t in threads {
        for &c in chunks_per_thread {
            for name in backend_names() {
                if matches!(*name, "seq" | "rayon") {
                    continue; // tuning-oblivious: one instance is enough
                }
                let tuned = tuned_name(
                    name,
                    Tuning {
                        threads: t,
                        chunks_per_thread: c,
                    },
                );
                grid.push(backend_by_name(&tuned, t).expect("grid name parses"));
            }
        }
    }
    grid
}

/// Instantiate a backend by name. `threads` is the default thread budget,
/// used when the name carries no `-t<threads>` suffix.
///
/// Every plan-driven backend's [`crate::LaunchPlan`] is statically
/// verified against the canonical shape battery before it is handed out
/// (see [`crate::plan_check`]); an unsound plan is a registry bug and
/// panics with the checker's diagnostic rather than returning a backend
/// that would race or drop output columns at solve time.
pub fn backend_by_name(name: &str, threads: usize) -> Option<Box<dyn Backend>> {
    let (policy, t, c) = parse_name(name)?;
    let tuning = Tuning {
        threads: t.unwrap_or(threads).max(1),
        chunks_per_thread: c.unwrap_or(1).max(1),
    };
    let backend: Box<dyn Backend> = match policy {
        "seq" => Box::new(SeqBackend),
        "chunked" => Box::new(ChunkedBackend::new(tuning)),
        "atomic" => Box::new(AtomicBackend::new(tuning)),
        "casloop" => Box::new(CasLoopBackend::new(tuning)),
        "replicated" => Box::new(ReplicatedBackend::new(tuning)),
        "striped" => Box::new(StripedBackend::new(tuning, tuning.threads * 4)),
        "rayon" => Box::new(RayonBackend),
        "streamed" => Box::new(StreamedBackend::new(tuning)),
        "hybrid" => Box::new(crate::HybridBackend::new(tuning)),
        "unrolled" => Box::new(VariantBackend::unrolled(tuning)),
        "blocked" => Box::new(VariantBackend::blocked(tuning)),
        "ell" => Box::new(VariantBackend::ell(tuning)),
        "tiled" => Box::new(TiledBackend::new(tuning)),
        "tuned" => Box::new(TunedBackend::new(tuning)),
        _ => return None,
    };
    if let Some(plan) = backend.launch_plan() {
        if let Err(e) = plan.analyze_canonical() {
            panic!("registry produced an unsound launch plan for `{name}`: {e}");
        }
    }
    Some(backend)
}

/// Instantiate a backend by name, wrapped in an [`InstrumentedBackend`] so
/// whole-call `aprod1`/`aprod2` timing lands in the telemetry registry.
/// Free when the `telemetry` feature is off.
pub fn instrumented_by_name(name: &str, threads: usize) -> Option<Box<dyn Backend>> {
    backend_by_name(name, threads)
        .map(|b| Box::new(InstrumentedBackend::new(b)) as Box<dyn Backend>)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_instantiates_every_name() {
        for name in backend_names() {
            let b = backend_by_name(name, 2).unwrap();
            assert!(!b.description().is_empty());
        }
        assert_eq!(all_backends(2).len(), backend_names().len());
    }

    #[test]
    fn unknown_name_is_none() {
        assert!(backend_by_name("cuda", 2).is_none());
        assert!(instrumented_by_name("cuda", 2).is_none());
    }

    #[test]
    fn malformed_suffixes_are_none() {
        for name in [
            "chunked-x4",
            "chunked-t",
            "chunked-tfour",
            "chunked-t4-k2",
            "chunked-t4-c",
            "chunked-t4-c2-extra",
            "-t4",
        ] {
            assert!(backend_by_name(name, 2).is_none(), "{name}");
        }
    }

    /// The round-trip bugfix: every name a backend emits (into telemetry
    /// JSON, bench reports, ...) must re-instantiate an identically named
    /// backend.
    #[test]
    fn every_emitted_name_round_trips() {
        for threads in [1usize, 3, 8] {
            for b in all_backends(threads) {
                let name = b.name();
                let again = backend_by_name(&name, 1)
                    .unwrap_or_else(|| panic!("{name} does not round-trip"));
                assert_eq!(again.name(), name);
            }
        }
        // Chunked suffixes round-trip too.
        for b in grid_backends(&[2, 5], &[1, 4]) {
            let name = b.name();
            let again =
                backend_by_name(&name, 1).unwrap_or_else(|| panic!("{name} does not round-trip"));
            assert_eq!(again.name(), name);
        }
    }

    /// The tuned-profile names obey the same `-t/-c` suffix grammar as
    /// every other policy (the PR-8 grammar satellite).
    #[test]
    fn variant_and_tuned_names_round_trip_with_suffixes() {
        for name in [
            "unrolled-t3",
            "blocked-t2-c4",
            "ell-t1",
            "tuned-t5",
            "tuned-t3-c2",
        ] {
            let b = backend_by_name(name, 9).unwrap_or_else(|| panic!("{name}"));
            assert_eq!(b.name(), name);
        }
        for bad in ["unrolled-c2", "tuned-t0x", "ell-t2-c2-x"] {
            assert!(backend_by_name(bad, 2).is_none(), "{bad}");
        }
    }

    #[test]
    fn explicit_suffix_overrides_the_thread_argument() {
        let b = backend_by_name("chunked-t6", 2).unwrap();
        assert_eq!(b.name(), "chunked-t6");
        let b = backend_by_name("atomic-t3-c5", 64).unwrap();
        assert_eq!(b.name(), "atomic-t3-c5");
        // Bare names keep using the argument.
        let b = backend_by_name("chunked", 7).unwrap();
        assert_eq!(b.name(), "chunked-t7");
    }

    #[test]
    fn grid_covers_every_tuned_policy() {
        let threads = [1usize, 3];
        let chunks = [1usize, 4];
        let grid = grid_backends(&threads, &chunks);
        let tuned_policies = backend_names()
            .iter()
            .filter(|n| !matches!(**n, "seq" | "rayon"))
            .count();
        assert_eq!(grid.len(), tuned_policies * threads.len() * chunks.len());
    }

    /// Every plan-driven backend the registry hands out must carry a plan
    /// the static checker accepts — and every policy struct except seq /
    /// rayon is plan-driven (including the variant-interior names and the
    /// profile-driven `tuned` backend, whose default plan is checked here
    /// and whose per-shape profile plans are checked at load time).
    #[test]
    fn registry_plans_pass_static_analysis() {
        for threads in [1usize, 4, 64] {
            let mut with_plan = 0;
            for b in all_backends(threads) {
                if let Some(plan) = b.launch_plan() {
                    with_plan += 1;
                    plan.analyze_canonical()
                        .unwrap_or_else(|e| panic!("{}: {e}", b.name()));
                }
            }
            assert_eq!(with_plan, backend_names().len() - 2, "threads={threads}");
        }
        // Wrappers forward the inner plan.
        let wrapped = instrumented_by_name("hybrid", 3).unwrap();
        assert!(wrapped.launch_plan().is_some());
    }

    #[test]
    fn instrumented_wrapper_preserves_identity() {
        for name in backend_names() {
            let plain = backend_by_name(name, 2).unwrap();
            let wrapped = instrumented_by_name(name, 2).unwrap();
            assert_eq!(wrapped.name(), plain.name());
            assert_eq!(wrapped.description(), plain.description());
        }
    }

    /// Boundary audit for `Tuning::effective_chunks` across every tuned
    /// policy: a registry `-c` suffix of `usize::MAX` used to overflow the
    /// raw `threads × chunks_per_thread` multiply (panic in debug, tiny
    /// wrapped chunk count in release); the saturating clamp must instead
    /// bound the chunk budget by the work count and keep results exact.
    #[test]
    fn extreme_chunk_suffixes_are_clamped_not_overflowed() {
        use gaia_sparse::{Generator, GeneratorConfig, SystemLayout};
        let sys = Generator::new(GeneratorConfig::new(SystemLayout::tiny()).seed(11)).generate();
        let x: Vec<f64> = (0..sys.n_cols()).map(|i| (i as f64 * 0.13).sin()).collect();
        let y: Vec<f64> = (0..sys.n_rows()).map(|i| (i as f64 * 0.31).cos()).collect();
        let seq = SeqBackend;
        let mut want1 = vec![0.0; sys.n_rows()];
        seq.aprod1(&sys, &x, &mut want1);
        let mut want2 = vec![0.0; sys.n_cols()];
        seq.aprod2(&sys, &y, &mut want2);
        for policy in backend_names()
            .iter()
            .filter(|n| !matches!(**n, "seq" | "rayon"))
        {
            let name = format!("{policy}-t3-c{}", usize::MAX);
            let b = backend_by_name(&name, 2).unwrap_or_else(|| panic!("{name} must parse"));
            let mut got1 = vec![0.0; sys.n_rows()];
            b.aprod1(&sys, &x, &mut got1);
            let mut got2 = vec![0.0; sys.n_cols()];
            b.aprod2(&sys, &y, &mut got2);
            for (g, w) in got1.iter().zip(&want1) {
                assert!((g - w).abs() < 1e-10, "{name} aprod1");
            }
            for (g, w) in got2.iter().zip(&want2) {
                assert!((g - w).abs() < 1e-10, "{name} aprod2");
            }
        }
    }

    /// Degenerate thread budgets (1) and budgets far above the row count
    /// (64 on a tiny system, forcing `split_ranges` to hand out empty
    /// ranges) must neither panic nor change any result.
    #[test]
    fn every_backend_survives_oversized_thread_budgets() {
        use gaia_sparse::{Generator, GeneratorConfig, SystemLayout};
        let sys = Generator::new(GeneratorConfig::new(SystemLayout::tiny()).seed(77)).generate();
        let x: Vec<f64> = (0..sys.n_cols()).map(|i| (i as f64 * 0.17).sin()).collect();
        let y: Vec<f64> = (0..sys.n_rows()).map(|i| (i as f64 * 0.29).cos()).collect();
        let seq = SeqBackend;
        let mut want1 = vec![0.0; sys.n_rows()];
        seq.aprod1(&sys, &x, &mut want1);
        let mut want2 = vec![0.0; sys.n_cols()];
        seq.aprod2(&sys, &y, &mut want2);
        for threads in [1usize, 7, 64] {
            for backend in all_backends(threads) {
                let mut got1 = vec![0.0; sys.n_rows()];
                backend.aprod1(&sys, &x, &mut got1);
                let mut got2 = vec![0.0; sys.n_cols()];
                backend.aprod2(&sys, &y, &mut got2);
                for (g, w) in got1.iter().zip(&want1) {
                    assert!(
                        (g - w).abs() < 1e-10,
                        "{} aprod1 at {threads} threads",
                        backend.name()
                    );
                }
                for (g, w) in got2.iter().zip(&want2) {
                    assert!(
                        (g - w).abs() < 1e-10,
                        "{} aprod2 at {threads} threads",
                        backend.name()
                    );
                }
            }
        }
    }
}
