//! Backend registry: construct every strategy by name, the way the paper's
//! harness selects a framework per run.

use crate::instrumented::InstrumentedBackend;
use crate::traits::Backend;
use crate::{
    AtomicBackend, CasLoopBackend, ChunkedBackend, RayonBackend, ReplicatedBackend, SeqBackend,
    StreamedBackend, StripedBackend,
};

/// Names of all registered backend strategies.
pub fn backend_names() -> &'static [&'static str] {
    &[
        "seq",
        "chunked",
        "atomic",
        "casloop",
        "replicated",
        "striped",
        "rayon",
        "streamed",
        "hybrid",
    ]
}

/// Instantiate every backend with the given thread budget.
pub fn all_backends(threads: usize) -> Vec<Box<dyn Backend>> {
    backend_names()
        .iter()
        .map(|n| backend_by_name(n, threads).expect("registry is self-consistent"))
        .collect()
}

/// Instantiate a backend by strategy name.
pub fn backend_by_name(name: &str, threads: usize) -> Option<Box<dyn Backend>> {
    Some(match name {
        "seq" => Box::new(SeqBackend),
        "chunked" => Box::new(ChunkedBackend::with_threads(threads)),
        "atomic" => Box::new(AtomicBackend::with_threads(threads)),
        "casloop" => Box::new(CasLoopBackend::with_threads(threads)),
        "replicated" => Box::new(ReplicatedBackend::with_threads(threads)),
        "striped" => Box::new(StripedBackend::with_threads(threads)),
        "rayon" => Box::new(RayonBackend),
        "streamed" => Box::new(StreamedBackend::with_threads(threads)),
        "hybrid" => Box::new(crate::HybridBackend::with_threads(threads)),
        _ => return None,
    })
}

/// Instantiate a backend by name, wrapped in an [`InstrumentedBackend`] so
/// whole-call `aprod1`/`aprod2` timing lands in the telemetry registry.
/// Free when the `telemetry` feature is off.
pub fn instrumented_by_name(name: &str, threads: usize) -> Option<Box<dyn Backend>> {
    backend_by_name(name, threads)
        .map(|b| Box::new(InstrumentedBackend::new(b)) as Box<dyn Backend>)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_instantiates_every_name() {
        for name in backend_names() {
            let b = backend_by_name(name, 2).unwrap();
            assert!(!b.description().is_empty());
        }
        assert_eq!(all_backends(2).len(), backend_names().len());
    }

    #[test]
    fn unknown_name_is_none() {
        assert!(backend_by_name("cuda", 2).is_none());
        assert!(instrumented_by_name("cuda", 2).is_none());
    }

    #[test]
    fn instrumented_wrapper_preserves_identity() {
        for name in backend_names() {
            let plain = backend_by_name(name, 2).unwrap();
            let wrapped = instrumented_by_name(name, 2).unwrap();
            assert_eq!(wrapped.name(), plain.name());
            assert_eq!(wrapped.description(), plain.description());
        }
    }

    /// Degenerate thread budgets (1) and budgets far above the row count
    /// (64 on a tiny system, forcing `split_ranges` to hand out empty
    /// ranges) must neither panic nor change any result.
    #[test]
    fn every_backend_survives_oversized_thread_budgets() {
        use gaia_sparse::{Generator, GeneratorConfig, SystemLayout};
        let sys = Generator::new(GeneratorConfig::new(SystemLayout::tiny()).seed(77)).generate();
        let x: Vec<f64> = (0..sys.n_cols()).map(|i| (i as f64 * 0.17).sin()).collect();
        let y: Vec<f64> = (0..sys.n_rows()).map(|i| (i as f64 * 0.29).cos()).collect();
        let seq = SeqBackend;
        let mut want1 = vec![0.0; sys.n_rows()];
        seq.aprod1(&sys, &x, &mut want1);
        let mut want2 = vec![0.0; sys.n_cols()];
        seq.aprod2(&sys, &y, &mut want2);
        for threads in [1usize, 7, 64] {
            for backend in all_backends(threads) {
                let mut got1 = vec![0.0; sys.n_rows()];
                backend.aprod1(&sys, &x, &mut got1);
                let mut got2 = vec![0.0; sys.n_cols()];
                backend.aprod2(&sys, &y, &mut got2);
                for (g, w) in got1.iter().zip(&want1) {
                    assert!(
                        (g - w).abs() < 1e-10,
                        "{} aprod1 at {threads} threads",
                        backend.name()
                    );
                }
                for (g, w) in got2.iter().zip(&want2) {
                    assert!(
                        (g - w).abs() < 1e-10,
                        "{} aprod2 at {threads} threads",
                        backend.name()
                    );
                }
            }
        }
    }
}
