//! Launch layer: block-range computation, output partitioning, and
//! conflict-strategy selection for the `aprod` kernels — in one place.
//!
//! The paper's portability layers (CUDA/HIP/SYCL/OpenMP) share one kernel
//! body per block and differ only in *launch configuration*: grid geometry,
//! stream assignment, and how colliding updates are resolved (§IV–V).
//! [`LaunchPlan`] is the Rust mirror of that split. It owns, for every
//! backend, the row/star/column chunking (derived uniformly from
//! [`Tuning`], including `chunks_per_thread`) and the partitioning of the
//! output vector into the four column blocks (astrometric / attitude /
//! instrumental / global), parameterized by an [`Aprod2Strategy`] per
//! colliding block. Backends shrink to policy structs that pick a strategy
//! mix and hand jobs to the shared [`ExecutorPool`].
//!
//! Strategy ↔ paper-framework map:
//!
//! | [`Aprod2Strategy`] | Paper analogue |
//! |---|---|
//! | `OwnerComputes` | OpenMP target-teams `distribute` (column ownership) |
//! | `Atomic` | CUDA/HIP `atomicAdd` RMW |
//! | `CasLoop` | CAS-retry codegen (MI250X without `-munsafe-fp-atomics`) |
//! | `Replicated` | privatization + reduction |
//! | `LockStriped` | software mutual exclusion (lock-based fallback) |

use std::ops::Range;
use std::sync::atomic::AtomicU64;

use gaia_sparse::system::{ATT_NNZ_PER_ROW, INSTR_NNZ_PER_ROW};
use gaia_sparse::{MatrixLayout, SparseSystem, ATT_AXES, ATT_PARAMS_PER_AXIS};
use gaia_telemetry::{Block, Phase};
use parking_lot::Mutex;

use crate::atomicf64::{self, as_atomic};
use crate::exec::{sched, ExecutorPool, Job};
use crate::kernels;
use crate::plan_check;
use crate::tuning::Tuning;

/// Probe tags for [`sched::preempt_point`], one per call site inside the
/// colliding `aprod2` paths. With the `sched-test` feature off the probe
/// is an empty `#[inline(always)]` function, so production kernels keep
/// their exact shape.
const PROBE_ATT_ATOMIC: u32 = 1;
/// Instrumental atomic-update row loop.
const PROBE_INSTR_ATOMIC: u32 = 2;
/// Lock-striped batched apply, between local accumulation and each lock.
const PROBE_STRIPED_APPLY: u32 = 3;
/// Wave-2 reduction of privatized buffers.
const PROBE_REDUCE: u32 = 4;

/// Split `0..n` into `parts` near-equal contiguous ranges.
pub fn split_ranges(n: usize, parts: usize) -> Vec<Range<usize>> {
    let parts = parts.max(1);
    let base = n / parts;
    let extra = n % parts;
    let mut out = Vec::with_capacity(parts);
    let mut cursor = 0;
    for p in 0..parts {
        let len = base + usize::from(p < extra);
        out.push(cursor..cursor + len);
        cursor += len;
    }
    debug_assert_eq!(cursor, n);
    out
}

/// Split an arbitrary span into `parts` near-equal contiguous subranges.
pub fn split_span(span: Range<usize>, parts: usize) -> Vec<Range<usize>> {
    split_ranges(span.len(), parts)
        .into_iter()
        .map(|r| span.start + r.start..span.start + r.end)
        .collect()
}

/// Worker budget per `aprod2` stream for a thread count, as
/// `(astro, att, instr)`.
///
/// The astrometric stream carries ~5/24 of the coefficients but all the
/// star traversal, so it gets half the budget; attitude a quarter; the
/// instrumental stream the remainder (the global stream runs as a single
/// job). The effective budget is `threads.max(4)` — one slot per stream
/// minimum — which is what keeps the `max(1)` floors from oversubscribing:
/// with a raw budget of 1–3 threads the three floors would sum past the
/// budget, but raising the floor to 4 makes `astro + att + instr == total`
/// hold exactly.
pub fn stream_worker_budget(threads: usize) -> (usize, usize, usize) {
    let total = threads.max(4);
    let astro = (total / 2).max(1);
    let att = (total / 4).max(1);
    let instr = (total - astro - att).max(1);
    debug_assert!(
        astro + att + instr <= total,
        "stream budget oversubscribed: {astro}+{att}+{instr} > {total} (threads = {threads})"
    );
    (astro, att, instr)
}

/// Which atomic accumulation a strategy emits — the paper's RMW vs
/// CAS-loop code-generation axis (§V-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AtomicFlavor {
    /// Relaxed weak-CAS loop (the fast, `atomicAdd`-like path).
    Rmw,
    /// SeqCst strong-CAS loop with spin hints (the slow fallback emitted by
    /// compilers lacking `-munsafe-fp-atomics`-style RMW support).
    CasLoop,
}

/// Conflict-resolution strategy for the colliding `aprod2` blocks
/// (attitude / instrumental / global) — the paper's framework column.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Aprod2Strategy {
    /// Each job owns a contiguous column range and rescans all rows
    /// (OpenMP-teams analogue: redundant reads, zero synchronization).
    OwnerComputes,
    /// Row-parallel jobs with relaxed atomic f64 RMW updates
    /// (CUDA/HIP `atomicAdd` analogue).
    Atomic,
    /// Row-parallel jobs with SeqCst CAS-retry updates (the slow compiler
    /// fallback the paper observes on MI250X).
    CasLoop,
    /// Row-parallel jobs into per-job private buffers, then a parallel
    /// reduction (privatization).
    Replicated,
    /// Row-parallel jobs that batch updates behind striped mutexes
    /// (lock-based software fallback).
    LockStriped {
        /// Number of mutex stripes over the block section.
        stripes: usize,
    },
}

/// How the thread budget is divided across the four `aprod2` streams.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkerBudget {
    /// Every section gets the full `Tuning::chunk_count` worth of chunks —
    /// the sections run back-to-back over the whole pool.
    Uniform,
    /// The four sections are treated as concurrent CUDA-like streams with
    /// per-stream worker shares from [`stream_worker_budget`]; all stream
    /// jobs launch together and overlap on the pool.
    Streamed,
}

/// The four `aprod2` streams (one per column block).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stream {
    /// Astrometric block (star-parallel, collision-free by structure).
    Astro,
    /// Attitude block.
    Att,
    /// Instrumental block.
    Instr,
    /// Global block (a single parameter).
    Glob,
}

/// Per-block strategy mix plus the stream budget — what distinguishes one
/// backend policy from another.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Aprod2Spec {
    /// Strategy for the attitude block.
    pub att: Aprod2Strategy,
    /// Strategy for the instrumental block.
    pub instr: Aprod2Strategy,
    /// Strategy for the global block.
    pub glob: Aprod2Strategy,
    /// Stream budgeting.
    pub budget: WorkerBudget,
}

impl Aprod2Spec {
    /// The same strategy for every colliding block, uniform budget.
    pub fn uniform(strategy: Aprod2Strategy) -> Self {
        Aprod2Spec {
            att: strategy,
            instr: strategy,
            glob: strategy,
            budget: WorkerBudget::Uniform,
        }
    }

    /// The same strategy for every colliding block, streamed budget.
    pub fn streamed(strategy: Aprod2Strategy) -> Self {
        Aprod2Spec {
            budget: WorkerBudget::Streamed,
            ..Aprod2Spec::uniform(strategy)
        }
    }
}

/// Which kernel interior a plan launches — the paper's per-kernel tuning
/// axis (§V): same arithmetic, different loop shape.
///
/// Composition with [`MatrixLayout`]: the layout decides which value
/// arrays the *non-atomic* kernels read (`Ell` selects the slot-major
/// readers for `aprod1`, the astrometric `aprod2`, and the full /
/// owner-computes section kernels), while the variant picks the interior
/// shape of the row-major paths. Atomic section kernels always read
/// row-major (their cost is the RMW traffic, not the gather), so under
/// `Ell` they fall back to the variant-selected row-major interior.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum KernelVariant {
    /// The reference scalar interiors.
    #[default]
    Scalar,
    /// Explicitly unrolled 5/12/6-wide interiors, bitwise-equal to scalar.
    Unrolled,
    /// Cache-blocked attitude `aprod2` accumulation (tile + axis sweep);
    /// other sections use the unrolled interiors. Deterministic,
    /// 1e-12-equivalent to scalar (reassociated sums).
    Blocked,
}

impl KernelVariant {
    /// Stable name used in profiles and CLI flags.
    pub fn as_str(self) -> &'static str {
        match self {
            KernelVariant::Scalar => "scalar",
            KernelVariant::Unrolled => "unrolled",
            KernelVariant::Blocked => "blocked",
        }
    }

    /// Parse a profile / CLI name.
    pub fn parse(name: &str) -> Option<Self> {
        match name {
            "scalar" => Some(KernelVariant::Scalar),
            "unrolled" => Some(KernelVariant::Unrolled),
            "blocked" => Some(KernelVariant::Blocked),
            _ => None,
        }
    }

    /// All variants, for tuner sweeps.
    pub const ALL: [KernelVariant; 3] = [
        KernelVariant::Scalar,
        KernelVariant::Unrolled,
        KernelVariant::Blocked,
    ];
}

impl std::fmt::Display for KernelVariant {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A backend's launch configuration: tuning + strategy spec + kernel
/// interior selection. Owns all range computation and output partitioning
/// for both products.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LaunchPlan {
    /// Thread count and chunk granularity.
    pub tuning: Tuning,
    /// Conflict strategies and stream budget for `aprod2`.
    pub spec: Aprod2Spec,
    /// Kernel interior shape (scalar / unrolled / blocked).
    pub variant: KernelVariant,
    /// Value layout the non-atomic kernels read (row-major / ELL).
    pub matrix_layout: MatrixLayout,
}

/// Full-section accumulation over a row range (exclusive access).
type FullKernel = fn(&SparseSystem, &[f64], Range<usize>, &mut [f64]);
/// Owner-computes over an owned block-local column range.
type OwnedKernel = fn(&SparseSystem, &[f64], Range<usize>, Range<usize>, &mut [f64]);
/// Atomic accumulation into a shared section view.
type AtomicKernel = fn(&SparseSystem, &[f64], Range<usize>, &[AtomicU64], AtomicFlavor);

/// The three per-section kernel forms a strategy can dispatch to.
#[derive(Clone, Copy)]
struct SectionKernels {
    full: FullKernel,
    owned: OwnedKernel,
    atomic: AtomicKernel,
}

/// Attitude section kernels for a (variant, layout) pair — the dispatch
/// seam every `aprod2` strategy routes through.
fn att_kernels(variant: KernelVariant, layout: MatrixLayout) -> SectionKernels {
    let (full, owned) = match (layout, variant) {
        (MatrixLayout::Ell, _) => (
            kernels::aprod2_att_ell as FullKernel,
            kernels::aprod2_att_owned_ell as OwnedKernel,
        ),
        (_, KernelVariant::Scalar) => (
            kernels::aprod2_att as FullKernel,
            kernels::aprod2_att_owned as OwnedKernel,
        ),
        (_, KernelVariant::Unrolled) => (
            kernels::aprod2_att_unrolled as FullKernel,
            kernels::aprod2_att_owned_unrolled as OwnedKernel,
        ),
        (_, KernelVariant::Blocked) => (
            kernels::aprod2_att_blocked as FullKernel,
            kernels::aprod2_att_owned_blocked as OwnedKernel,
        ),
    };
    let atomic = match variant {
        KernelVariant::Scalar => aprod2_att_atomic as AtomicKernel,
        KernelVariant::Unrolled => aprod2_att_atomic_unrolled as AtomicKernel,
        KernelVariant::Blocked => aprod2_att_atomic_blocked as AtomicKernel,
    };
    SectionKernels {
        full,
        owned,
        atomic,
    }
}

/// Instrumental section kernels for a (variant, layout) pair. The blocked
/// variant has no dedicated instrumental interior (the columns are
/// irregular, so there is no axis segment to tile) and shares the
/// unrolled one.
fn instr_kernels(variant: KernelVariant, layout: MatrixLayout) -> SectionKernels {
    let (full, owned) = match (layout, variant) {
        (MatrixLayout::Ell, _) => (
            kernels::aprod2_instr_ell as FullKernel,
            kernels::aprod2_instr_owned_ell as OwnedKernel,
        ),
        (_, KernelVariant::Scalar) => (
            kernels::aprod2_instr as FullKernel,
            kernels::aprod2_instr_owned as OwnedKernel,
        ),
        (_, KernelVariant::Unrolled | KernelVariant::Blocked) => (
            kernels::aprod2_instr_unrolled as FullKernel,
            kernels::aprod2_instr_owned_unrolled as OwnedKernel,
        ),
    };
    let atomic = match variant {
        KernelVariant::Scalar => aprod2_instr_atomic as AtomicKernel,
        KernelVariant::Unrolled | KernelVariant::Blocked => {
            aprod2_instr_atomic_unrolled as AtomicKernel
        }
    };
    SectionKernels {
        full,
        owned,
        atomic,
    }
}

/// Astrometric `aprod2` kernel for a (variant, layout) pair.
fn astro_kernel(variant: KernelVariant, layout: MatrixLayout) -> FullKernel {
    match (layout, variant) {
        (MatrixLayout::Ell, _) => kernels::aprod2_astro_ell,
        (_, KernelVariant::Scalar) => kernels::aprod2_astro,
        (_, KernelVariant::Unrolled | KernelVariant::Blocked) => kernels::aprod2_astro_unrolled,
    }
}

/// `aprod1` range kernel for a (variant, layout) pair.
fn aprod1_kernel(variant: KernelVariant, layout: MatrixLayout) -> FullKernel {
    match (layout, variant) {
        (MatrixLayout::Ell, _) => kernels::aprod1_range_ell,
        (_, KernelVariant::Scalar) => kernels::aprod1_range,
        (_, KernelVariant::Unrolled | KernelVariant::Blocked) => kernels::aprod1_range_unrolled,
    }
}

impl LaunchPlan {
    /// Build a plan from tuning and a strategy spec, with the default
    /// scalar interiors over the row-major layout.
    pub fn new(tuning: Tuning, spec: Aprod2Spec) -> Self {
        LaunchPlan {
            tuning,
            spec,
            variant: KernelVariant::default(),
            matrix_layout: MatrixLayout::default(),
        }
    }

    /// Select a kernel interior variant.
    pub fn with_variant(mut self, variant: KernelVariant) -> Self {
        self.variant = variant;
        self
    }

    /// Select the value layout the non-atomic kernels read.
    pub fn with_matrix_layout(mut self, layout: MatrixLayout) -> Self {
        self.matrix_layout = layout;
        self
    }

    /// Lower this plan against `dims` to the symbolic access model
    /// [`aprod2`](Self::aprod2) / [`aprod1`](Self::aprod1) would execute —
    /// see [`crate::plan_check`].
    pub fn write_model(&self, dims: &plan_check::PlanDims) -> Vec<plan_check::SectionModel> {
        plan_check::write_model(self, dims)
    }

    /// Lower this plan restricted to a global row range — the access model
    /// [`aprod2_rows`](Self::aprod2_rows) / [`aprod1_rows`](Self::aprod1_rows)
    /// would execute for an out-of-core row tile.
    pub fn access_model_rows(
        &self,
        dims: &plan_check::PlanDims,
        rows: Range<usize>,
    ) -> Vec<plan_check::SectionModel> {
        plan_check::access_model_rows(self, dims, rows)
    }

    /// Statically verify this plan against one problem shape: every
    /// owner-computes/replicated write-set pairwise disjoint and exactly
    /// covering its section, no unsynchronized colliding writes, and the
    /// streamed worker budget conserved. Rejects unsound plans before
    /// launch with a diagnostic naming the offending ranges.
    pub fn analyze(
        &self,
        dims: &plan_check::PlanDims,
    ) -> Result<plan_check::PlanProof, plan_check::PlanError> {
        plan_check::analyze_plan(self, dims)
    }

    /// [`analyze`](Self::analyze) against the canonical shape battery
    /// ([`plan_check::PlanDims::canonical`]) — what registry construction
    /// runs on every plan-carrying backend.
    pub fn analyze_canonical(&self) -> Result<(), plan_check::PlanError> {
        for dims in plan_check::PlanDims::canonical() {
            self.analyze(&dims)?;
        }
        Ok(())
    }

    /// Number of row chunks `aprod1` launches for `n_rows` rows.
    pub fn aprod1_chunks(&self, n_rows: usize) -> usize {
        self.tuning.chunk_count(n_rows)
    }

    /// Number of chunks a given `aprod2` stream launches for `work` items
    /// (rows, stars, or owned columns, depending on the strategy).
    pub fn section_chunks(&self, stream: Stream, work: usize) -> usize {
        match self.spec.budget {
            WorkerBudget::Uniform => self.tuning.chunk_count(work),
            WorkerBudget::Streamed => {
                let (astro_w, att_w, instr_w) = stream_worker_budget(self.tuning.threads);
                let workers = match stream {
                    Stream::Astro => astro_w,
                    Stream::Att => att_w,
                    Stream::Instr => instr_w,
                    Stream::Glob => return 1,
                };
                // Saturating: a pathological `chunks_per_thread` must clamp
                // to the work count, not overflow (see Tuning::effective_chunks).
                workers
                    .saturating_mul(self.tuning.chunks_per_thread)
                    .clamp(1, work.max(1))
            }
        }
    }

    /// `out += A x` via row chunks on the pool (rows are disjoint, so no
    /// conflict strategy is needed).
    pub fn aprod1(&self, pool: &ExecutorPool, sys: &SparseSystem, x: &[f64], out: &mut [f64]) {
        self.aprod1_rows(pool, sys, x, 0..sys.n_rows(), out);
    }

    /// `out[i] += (A x)[rows.start + i]` — [`aprod1`](Self::aprod1)
    /// restricted to a global row range, the row-tile entry point of the
    /// out-of-core path. `out.len() == rows.len()`; rows outside `rows`
    /// are neither read nor written.
    pub fn aprod1_rows(
        &self,
        pool: &ExecutorPool,
        sys: &SparseSystem,
        x: &[f64],
        rows: Range<usize>,
        out: &mut [f64],
    ) {
        assert_eq!(out.len(), rows.len(), "aprod1_rows: out length mismatch");
        if self.matrix_layout == MatrixLayout::Ell {
            // Build the mirror once here instead of under the first job's
            // lazy init (OnceLock would serialize the workers against it).
            let _ = sys.ell();
        }
        let kernel = aprod1_kernel(self.variant, self.matrix_layout);
        let ranges = split_span(rows.clone(), self.aprod1_chunks(rows.len()));
        let mut jobs: Vec<Job<'_>> = Vec::with_capacity(ranges.len());
        let mut rest = out;
        for range in ranges {
            let (mine, tail) = rest.split_at_mut(range.len());
            rest = tail;
            jobs.push(Box::new(move || kernel(sys, x, range, mine)));
        }
        pool.run(jobs);
    }

    /// `out += Aᵀ y`: partition `out` into the four column blocks, launch
    /// the astrometric star chunks plus each colliding block under its
    /// strategy in one wave, then run any deferred reductions in a second.
    pub fn aprod2(&self, pool: &ExecutorPool, sys: &SparseSystem, y: &[f64], out: &mut [f64]) {
        self.aprod2_rows(pool, sys, y, 0..sys.n_rows(), out);
    }

    /// `out += Aᵀ[rows, :] y[rows]` — [`aprod2`](Self::aprod2) restricted
    /// to a global row range, the row-tile entry point of the out-of-core
    /// path. `y` and `out` keep their full-system lengths; only `y[rows]`
    /// is read. The observation part of `rows` must be star-aligned (tile
    /// boundaries fall between stars), because the astrometric kernels
    /// walk whole stars; the constraint tail may start or end anywhere.
    pub fn aprod2_rows(
        &self,
        pool: &ExecutorPool,
        sys: &SparseSystem,
        y: &[f64],
        rows: Range<usize>,
        out: &mut [f64],
    ) {
        let c = sys.columns();
        let n_att = (c.instr - c.att) as usize;
        let n_instr = (c.glob - c.instr) as usize;
        let (astro, rest) = out.split_at_mut(c.att as usize);
        let (att, rest2) = rest.split_at_mut(n_att);
        let (instr, glob) = rest2.split_at_mut(n_instr);

        let n_rows = sys.n_rows();
        let n_obs = sys.n_obs_rows();
        let obs_per_star = sys.layout().obs_per_star.max(1) as usize;

        // Clamp the range per stream: attitude columns see every row
        // (observations and constraints); the instrumental and global
        // blocks only ever touch observation rows.
        let att_rows = rows.start.min(n_rows)..rows.end.min(n_rows);
        let obs_rows = rows.start.min(n_obs)..rows.end.min(n_obs);

        // Star span covered by the observation part of the range.
        let stars = if obs_rows.is_empty() {
            0..0
        } else {
            assert_eq!(
                obs_rows.start % obs_per_star,
                0,
                "aprod2_rows: range start {} is not star-aligned (obs_per_star = {obs_per_star})",
                obs_rows.start
            );
            assert!(
                obs_rows.end % obs_per_star == 0 || obs_rows.end == n_obs,
                "aprod2_rows: range end {} is not star-aligned (obs_per_star = {obs_per_star})",
                obs_rows.end
            );
            obs_rows.start / obs_per_star..obs_rows.end.div_ceil(obs_per_star)
        };

        // Storage that wave-1 jobs borrow and wave 2 reduces from.
        let mut att_privates: Vec<Vec<f64>> = Vec::new();
        let mut instr_privates: Vec<Vec<f64>> = Vec::new();
        let mut att_stripes: Vec<Mutex<Vec<f64>>> = Vec::new();
        let mut instr_stripes: Vec<Mutex<Vec<f64>>> = Vec::new();
        let mut glob_partials: Vec<f64> = Vec::new();

        let mut jobs: Vec<Job<'_>> = Vec::new();

        // Materialize the ELL mirror up front (single-threaded) rather
        // than racing the lazy init from the first kernels to touch it.
        if self.matrix_layout == MatrixLayout::Ell {
            let _ = sys.ell();
        }

        // Astrometric stream: star-aligned split, collision-free — each
        // star chunk owns an exactly matching slice of the astro section.
        let astro_k = astro_kernel(self.variant, self.matrix_layout);
        let mut astro_rest = &mut astro[stars.start * 5..stars.end * 5];
        for chunk in split_span(
            stars.clone(),
            self.section_chunks(Stream::Astro, stars.len()),
        ) {
            let (mine, tail) = astro_rest.split_at_mut(chunk.len() * 5);
            astro_rest = tail;
            jobs.push(Box::new(move || astro_k(sys, y, chunk, mine)));
        }

        let att_deferred = self.section_jobs(
            Stream::Att,
            sys,
            y,
            att_rows,
            att,
            self.spec.att,
            att_kernels(self.variant, self.matrix_layout),
            &mut att_privates,
            &mut att_stripes,
            &mut jobs,
        );
        let instr_deferred = self.section_jobs(
            Stream::Instr,
            sys,
            y,
            obs_rows.clone(),
            instr,
            self.spec.instr,
            instr_kernels(self.variant, self.matrix_layout),
            &mut instr_privates,
            &mut instr_stripes,
            &mut jobs,
        );
        let glob_deferred = self.glob_jobs(sys, y, obs_rows, glob, &mut glob_partials, &mut jobs);

        pool.run(jobs);

        // Wave 2: reductions for privatized / striped sections.
        let mut red_jobs: Vec<Job<'_>> = Vec::new();
        self.reduction_jobs(att_deferred, &att_privates, &att_stripes, &mut red_jobs);
        self.reduction_jobs(
            instr_deferred,
            &instr_privates,
            &instr_stripes,
            &mut red_jobs,
        );
        pool.run(red_jobs);

        if let Some(glob_out) = glob_deferred {
            glob_out[0] += glob_partials.iter().sum::<f64>();
        }
    }

    /// Queue the wave-1 jobs for one colliding section under `strategy`.
    /// Returns the section back to the caller when a wave-2 reduction is
    /// needed (replicated / lock-striped), `None` when wave 1 writes the
    /// section directly.
    #[allow(clippy::too_many_arguments)]
    fn section_jobs<'s, 'a>(
        &self,
        stream: Stream,
        sys: &'a SparseSystem,
        y: &'a [f64],
        rows: Range<usize>,
        section: &'s mut [f64],
        strategy: Aprod2Strategy,
        kerns: SectionKernels,
        privates: &'a mut Vec<Vec<f64>>,
        stripes: &'a mut Vec<Mutex<Vec<f64>>>,
        jobs: &mut Vec<Job<'a>>,
    ) -> Option<&'s mut [f64]>
    where
        's: 'a,
    {
        if section.is_empty() {
            return None;
        }
        let section_len = section.len();
        match strategy {
            Aprod2Strategy::OwnerComputes => {
                let chunks = self.section_chunks(stream, section_len);
                let mut rest: &'a mut [f64] = section;
                for own in split_ranges(section_len, chunks) {
                    let (mine, tail) = rest.split_at_mut(own.len());
                    rest = tail;
                    let rows = rows.clone();
                    jobs.push(Box::new(move || (kerns.owned)(sys, y, rows, own, mine)));
                }
                None
            }
            Aprod2Strategy::Atomic | Aprod2Strategy::CasLoop => {
                let flavor = if strategy == Aprod2Strategy::Atomic {
                    AtomicFlavor::Rmw
                } else {
                    AtomicFlavor::CasLoop
                };
                let view: &'a [AtomicU64] = as_atomic(section);
                let chunks = self.section_chunks(stream, rows.len());
                for chunk in split_span(rows, chunks) {
                    jobs.push(Box::new(move || {
                        (kerns.atomic)(sys, y, chunk, view, flavor)
                    }));
                }
                None
            }
            Aprod2Strategy::Replicated => {
                let chunks = self.section_chunks(stream, rows.len());
                let spans = split_span(rows, chunks);
                *privates = vec![vec![0.0; section_len]; spans.len()];
                let privates: &'a mut Vec<Vec<f64>> = privates;
                for (private, chunk) in privates.iter_mut().zip(spans) {
                    jobs.push(Box::new(move || (kerns.full)(sys, y, chunk, private)));
                }
                Some(section)
            }
            Aprod2Strategy::LockStriped { stripes: n } => {
                let n_stripes = n.max(1).min(section_len);
                *stripes = split_ranges(section_len, n_stripes)
                    .into_iter()
                    .map(|r| Mutex::new(vec![0.0; r.len()]))
                    .collect();
                let stripes: &'a Vec<Mutex<Vec<f64>>> = stripes;
                let chunks = self.section_chunks(stream, rows.len());
                for chunk in split_span(rows, chunks) {
                    jobs.push(Box::new(move || {
                        // Accumulate the chunk's full-section contribution
                        // locally, then apply it stripe by stripe under the
                        // stripe locks (batched mutual exclusion).
                        let mut local = vec![0.0; section_len];
                        (kerns.full)(sys, y, chunk, &mut local);
                        let mut offset = 0;
                        for stripe in stripes.iter() {
                            sched::preempt_point(PROBE_STRIPED_APPLY);
                            let mut guard = stripe.lock();
                            let len = guard.len();
                            for (slot, &v) in guard.iter_mut().zip(&local[offset..offset + len]) {
                                *slot += v;
                            }
                            offset += len;
                        }
                    }));
                }
                Some(section)
            }
        }
    }

    /// Queue the wave-1 jobs for the global block. Returns the section when
    /// a caller-side combine of `partials` is needed (replicated).
    fn glob_jobs<'s, 'a>(
        &self,
        sys: &'a SparseSystem,
        y: &'a [f64],
        obs: Range<usize>,
        glob: &'s mut [f64],
        partials: &'a mut Vec<f64>,
        jobs: &mut Vec<Job<'a>>,
    ) -> Option<&'s mut [f64]>
    where
        's: 'a,
    {
        if glob.is_empty() || sys.layout().n_glob_params == 0 {
            return None;
        }
        match self.spec.glob {
            // A single global slot: ownership and striping both degenerate
            // to one exclusive reduction job.
            Aprod2Strategy::OwnerComputes | Aprod2Strategy::LockStriped { .. } => {
                let glob: &'a mut [f64] = glob;
                jobs.push(Box::new(move || kernels::aprod2_glob(sys, y, obs, glob)));
                None
            }
            Aprod2Strategy::Atomic | Aprod2Strategy::CasLoop => {
                let flavor = if self.spec.glob == Aprod2Strategy::Atomic {
                    AtomicFlavor::Rmw
                } else {
                    AtomicFlavor::CasLoop
                };
                let glob: &'a mut [f64] = glob;
                let view: &'a [AtomicU64] = as_atomic(glob);
                let chunks = self.section_chunks(Stream::Glob, obs.len());
                for chunk in split_span(obs, chunks) {
                    jobs.push(Box::new(move || {
                        aprod2_glob_atomic(sys, y, chunk, view, flavor)
                    }));
                }
                None
            }
            Aprod2Strategy::Replicated => {
                let chunks = self.section_chunks(Stream::Glob, obs.len());
                let spans = split_span(obs, chunks);
                *partials = vec![0.0; spans.len()];
                let partials: &'a mut Vec<f64> = partials;
                for (slot, chunk) in partials.iter_mut().zip(spans) {
                    jobs.push(Box::new(move || {
                        let mut local = [0.0f64];
                        kernels::aprod2_glob(sys, y, chunk, &mut local);
                        *slot = local[0];
                    }));
                }
                Some(glob)
            }
        }
    }

    /// Queue the wave-2 reduction jobs for a deferred section: sum the
    /// private buffers (replicated) or copy the stripe accumulators back
    /// (lock-striped) into the real output, column-parallel.
    fn reduction_jobs<'a>(
        &self,
        section: Option<&'a mut [f64]>,
        privates: &'a [Vec<f64>],
        stripes: &'a [Mutex<Vec<f64>>],
        jobs: &mut Vec<Job<'a>>,
    ) {
        let Some(section) = section else { return };
        if !privates.is_empty() {
            let len = section.len();
            let mut rest = section;
            for own in split_ranges(len, self.tuning.chunk_count(len)) {
                let (mine, tail) = rest.split_at_mut(own.len());
                rest = tail;
                jobs.push(Box::new(move || {
                    for private in privates {
                        sched::preempt_point(PROBE_REDUCE);
                        for (slot, &v) in mine.iter_mut().zip(&private[own.start..own.end]) {
                            *slot += v;
                        }
                    }
                }));
            }
        } else {
            // Stripe buffers are disjoint by construction: one job each.
            let mut rest = section;
            for stripe in stripes {
                let len = stripe.lock().len();
                let (mine, tail) = rest.split_at_mut(len);
                rest = tail;
                jobs.push(Box::new(move || {
                    let buf = stripe.lock();
                    for (slot, &v) in mine.iter_mut().zip(buf.iter()) {
                        *slot += v;
                    }
                }));
            }
        }
    }
}

/// Attitude `aprod2` over a row range with atomic updates into the shared
/// block-local attitude section.
fn aprod2_att_atomic(
    sys: &SparseSystem,
    y: &[f64],
    rows: Range<usize>,
    out: &[AtomicU64],
    flavor: AtomicFlavor,
) {
    let mut t = gaia_telemetry::kernel_scope(Phase::Aprod2, Block::Att);
    t.add_bytes(rows.len() as u64 * (3 * ATT_NNZ_PER_ROW as u64 + 1) * 8);
    t.add_rmws(rows.len() as u64 * ATT_NNZ_PER_ROW as u64);
    let dof = sys.layout().n_deg_freedom_att as usize;
    for row in rows {
        sched::preempt_point(PROBE_ATT_ATOMIC);
        let yr = y[row];
        if yr == 0.0 {
            continue;
        }
        let (vals, off) = sys.att_row(row);
        for axis in 0..ATT_AXES as usize {
            let base = axis * dof + off as usize;
            for k in 0..ATT_PARAMS_PER_AXIS as usize {
                atomic_add(flavor, &out[base + k], vals[axis * 4 + k] * yr);
            }
        }
    }
    debug_assert_eq!(ATT_NNZ_PER_ROW, 12);
}

/// Instrumental `aprod2` over a row range with atomic updates.
fn aprod2_instr_atomic(
    sys: &SparseSystem,
    y: &[f64],
    rows: Range<usize>,
    out: &[AtomicU64],
    flavor: AtomicFlavor,
) {
    let mut t = gaia_telemetry::kernel_scope(Phase::Aprod2, Block::Instr);
    t.add_bytes(rows.len() as u64 * (3 * INSTR_NNZ_PER_ROW as u64 + 1) * 8);
    t.add_rmws(rows.len() as u64 * INSTR_NNZ_PER_ROW as u64);
    for row in rows {
        sched::preempt_point(PROBE_INSTR_ATOMIC);
        let yr = y[row];
        if yr == 0.0 {
            continue;
        }
        let (vals, cols) = sys.instr_row(row);
        for k in 0..INSTR_NNZ_PER_ROW {
            atomic_add(flavor, &out[cols[k] as usize], vals[k] * yr);
        }
    }
}

/// Unrolled [`aprod2_att_atomic`]: the twelve RMWs spelled out per row.
fn aprod2_att_atomic_unrolled(
    sys: &SparseSystem,
    y: &[f64],
    rows: Range<usize>,
    out: &[AtomicU64],
    flavor: AtomicFlavor,
) {
    let mut t = gaia_telemetry::kernel_scope(Phase::Aprod2, Block::Att);
    t.add_bytes(rows.len() as u64 * (3 * ATT_NNZ_PER_ROW as u64 + 1) * 8);
    t.add_rmws(rows.len() as u64 * ATT_NNZ_PER_ROW as u64);
    let dof = sys.layout().n_deg_freedom_att as usize;
    for row in rows {
        sched::preempt_point(PROBE_ATT_ATOMIC);
        let yr = y[row];
        if yr == 0.0 {
            continue;
        }
        let (vals, off) = sys.att_row(row);
        let &[a0, a1, a2, a3, b0, b1, b2, b3, c0, c1, c2, c3] = vals else {
            continue;
        };
        let base0 = off as usize;
        let base1 = base0 + dof;
        let base2 = base1 + dof;
        atomic_add(flavor, &out[base0], a0 * yr);
        atomic_add(flavor, &out[base0 + 1], a1 * yr);
        atomic_add(flavor, &out[base0 + 2], a2 * yr);
        atomic_add(flavor, &out[base0 + 3], a3 * yr);
        atomic_add(flavor, &out[base1], b0 * yr);
        atomic_add(flavor, &out[base1 + 1], b1 * yr);
        atomic_add(flavor, &out[base1 + 2], b2 * yr);
        atomic_add(flavor, &out[base1 + 3], b3 * yr);
        atomic_add(flavor, &out[base2], c0 * yr);
        atomic_add(flavor, &out[base2 + 1], c1 * yr);
        atomic_add(flavor, &out[base2 + 2], c2 * yr);
        atomic_add(flavor, &out[base2 + 3], c3 * yr);
    }
}

/// Cache-blocked [`aprod2_att_atomic`]: rows in tiles, each tile swept
/// axis-by-axis, so consecutive RMWs land in one axis segment.
fn aprod2_att_atomic_blocked(
    sys: &SparseSystem,
    y: &[f64],
    rows: Range<usize>,
    out: &[AtomicU64],
    flavor: AtomicFlavor,
) {
    let mut t = gaia_telemetry::kernel_scope(Phase::Aprod2, Block::Att);
    t.add_bytes(rows.len() as u64 * (3 * ATT_NNZ_PER_ROW as u64 + 1) * 8);
    t.add_rmws(rows.len() as u64 * ATT_NNZ_PER_ROW as u64);
    let dof = sys.layout().n_deg_freedom_att as usize;
    let mut start = rows.start;
    while start < rows.end {
        let end = (start + kernels::ATT_BLOCK_TILE).min(rows.end);
        for axis in 0..ATT_AXES as usize {
            for (row, &yr) in (start..end).zip(&y[start..end]) {
                sched::preempt_point(PROBE_ATT_ATOMIC);
                if yr == 0.0 {
                    continue;
                }
                let (vals, off) = sys.att_row(row);
                let base = axis * dof + off as usize;
                for k in 0..ATT_PARAMS_PER_AXIS as usize {
                    atomic_add(
                        flavor,
                        &out[base + k],
                        vals[axis * ATT_PARAMS_PER_AXIS as usize + k] * yr,
                    );
                }
            }
        }
        start = end;
    }
}

/// Unrolled [`aprod2_instr_atomic`]: the six RMWs spelled out per row.
fn aprod2_instr_atomic_unrolled(
    sys: &SparseSystem,
    y: &[f64],
    rows: Range<usize>,
    out: &[AtomicU64],
    flavor: AtomicFlavor,
) {
    let mut t = gaia_telemetry::kernel_scope(Phase::Aprod2, Block::Instr);
    t.add_bytes(rows.len() as u64 * (3 * INSTR_NNZ_PER_ROW as u64 + 1) * 8);
    t.add_rmws(rows.len() as u64 * INSTR_NNZ_PER_ROW as u64);
    for row in rows {
        sched::preempt_point(PROBE_INSTR_ATOMIC);
        let yr = y[row];
        if yr == 0.0 {
            continue;
        }
        let (vals, cols) = sys.instr_row(row);
        let (&[v0, v1, v2, v3, v4, v5], &[c0, c1, c2, c3, c4, c5]) = (vals, cols) else {
            continue;
        };
        atomic_add(flavor, &out[c0 as usize], v0 * yr);
        atomic_add(flavor, &out[c1 as usize], v1 * yr);
        atomic_add(flavor, &out[c2 as usize], v2 * yr);
        atomic_add(flavor, &out[c3 as usize], v3 * yr);
        atomic_add(flavor, &out[c4 as usize], v4 * yr);
        atomic_add(flavor, &out[c5 as usize], v5 * yr);
    }
}

/// Global `aprod2` over a row range: local reduction, single atomic add.
fn aprod2_glob_atomic(
    sys: &SparseSystem,
    y: &[f64],
    rows: Range<usize>,
    out: &[AtomicU64],
    flavor: AtomicFlavor,
) {
    if sys.layout().n_glob_params == 0 {
        return;
    }
    let mut t = gaia_telemetry::kernel_scope(Phase::Aprod2, Block::Glob);
    t.add_bytes(rows.len() as u64 * 16 + 16);
    t.add_rmws(1);
    let glob = sys.values_glob();
    let mut acc = 0.0;
    for row in rows {
        acc += glob[row] * y[row];
    }
    atomic_add(flavor, &out[0], acc);
}

#[inline]
fn atomic_add(flavor: AtomicFlavor, slot: &AtomicU64, v: f64) {
    match flavor {
        AtomicFlavor::Rmw => atomicf64::add_relaxed(slot, v),
        AtomicFlavor::CasLoop => atomicf64::add_seqcst_spin(slot, v),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tuning_2x4() -> Tuning {
        Tuning {
            threads: 2,
            chunks_per_thread: 4,
        }
    }

    /// The `chunks_per_thread` bugfix: a 2-thread, 4-chunks-per-thread
    /// tuning must produce 8 chunks in every uniform-budget section, not 2.
    #[test]
    fn uniform_budget_honors_chunks_per_thread() {
        let plan = LaunchPlan::new(
            tuning_2x4(),
            Aprod2Spec::uniform(Aprod2Strategy::OwnerComputes),
        );
        assert_eq!(plan.aprod1_chunks(1000), 8);
        for stream in [Stream::Astro, Stream::Att, Stream::Instr, Stream::Glob] {
            assert_eq!(plan.section_chunks(stream, 1000), 8, "{stream:?}");
        }
        // Clamped by available work.
        assert_eq!(plan.section_chunks(Stream::Att, 3), 3);
        assert_eq!(plan.section_chunks(Stream::Att, 0), 1);
    }

    #[test]
    fn streamed_budget_scales_per_stream_shares() {
        let plan = LaunchPlan::new(
            tuning_2x4(),
            Aprod2Spec::streamed(Aprod2Strategy::OwnerComputes),
        );
        // threads = 2 → effective stream budget 4 → astro 2, att 1, instr 1
        // workers, each × 4 chunks per thread.
        assert_eq!(plan.section_chunks(Stream::Astro, 1000), 8);
        assert_eq!(plan.section_chunks(Stream::Att, 1000), 4);
        assert_eq!(plan.section_chunks(Stream::Instr, 1000), 4);
        assert_eq!(plan.section_chunks(Stream::Glob, 1000), 1);
    }

    /// The `max(1)` floors could oversubscribe a raw 1–3 thread budget
    /// (e.g. threads = 1 would yield 1+1+1 = 3 workers); the `max(4)`
    /// effective budget is what keeps the sum within bounds.
    #[test]
    fn worker_budget_never_oversubscribes() {
        for threads in [1usize, 2, 3] {
            let (astro, att, instr) = stream_worker_budget(threads);
            let effective = threads.max(4);
            assert!(astro >= 1 && att >= 1 && instr >= 1, "threads = {threads}");
            assert!(
                astro + att + instr <= effective,
                "threads = {threads}: {astro}+{att}+{instr} > {effective}"
            );
        }
        for threads in [4usize, 5, 8, 17, 64] {
            let (astro, att, instr) = stream_worker_budget(threads);
            assert!(
                astro + att + instr <= threads,
                "threads = {threads}: {astro}+{att}+{instr} > {threads}"
            );
        }
    }

    #[test]
    fn split_ranges_partitions_exactly() {
        for n in [0usize, 1, 7, 100] {
            for parts in [1usize, 2, 3, 8, 150] {
                let rs = split_ranges(n, parts);
                assert_eq!(rs.len(), parts);
                let total: usize = rs.iter().map(|r| r.len()).sum();
                assert_eq!(total, n);
                let mut cursor = 0;
                for r in rs {
                    assert_eq!(r.start, cursor);
                    cursor = r.end;
                }
            }
        }
    }

    #[test]
    fn split_span_offsets_the_partition() {
        let spans = split_span(10..22, 4);
        assert_eq!(spans.len(), 4);
        assert_eq!(spans[0].start, 10);
        assert_eq!(spans[3].end, 22);
        let total: usize = spans.iter().map(|r| r.len()).sum();
        assert_eq!(total, 12);
    }

    #[test]
    fn split_span_of_an_empty_span_yields_empty_aligned_ranges() {
        for parts in [1usize, 4, 9] {
            let spans = split_span(5..5, parts);
            assert_eq!(spans.len(), parts);
            for r in &spans {
                assert!(r.is_empty(), "{r:?}");
                assert_eq!(r.start, 5, "empty parts stay anchored at the span");
            }
        }
        // parts = 0 is floored to 1, like split_ranges.
        assert_eq!(split_span(3..7, 0), vec![3..7]);
    }

    #[test]
    fn split_ranges_with_fewer_items_than_parts_pads_with_empties() {
        let rs = split_ranges(3, 8);
        assert_eq!(rs.len(), 8);
        let nonempty: Vec<_> = rs.iter().filter(|r| !r.is_empty()).collect();
        assert_eq!(nonempty.len(), 3, "3 items fill exactly 3 singleton parts");
        // Contiguous, disjoint, and covering 0..3 in order.
        let mut cursor = 0;
        for r in &rs {
            assert_eq!(r.start, cursor);
            cursor = r.end;
        }
        assert_eq!(cursor, 3);
        assert_eq!(split_ranges(0, 5).len(), 5);
        assert!(split_ranges(0, 5).iter().all(|r| r.is_empty()));
    }

    /// Chunk budgets far beyond the available work (`chunks_per_thread ×
    /// threads ≫ rows`) hand most workers empty ranges; every policy must
    /// still write each output cell exactly once. Cross-checked against the
    /// serial kernels for both products.
    #[test]
    fn oversized_chunk_budgets_cover_without_overlap() {
        use gaia_sparse::{Generator, GeneratorConfig, SystemLayout};
        let sys = Generator::new(GeneratorConfig::new(SystemLayout::tiny()).seed(11)).generate();
        let x: Vec<f64> = (0..sys.n_cols()).map(|i| (i as f64 * 0.23).sin()).collect();
        let y: Vec<f64> = (0..sys.n_rows()).map(|i| (i as f64 * 0.31).cos()).collect();
        let mut want1 = vec![0.0; sys.n_rows()];
        kernels::aprod1_range(&sys, &x, 0..sys.n_rows(), &mut want1);
        let mut want2 = vec![0.0; sys.n_cols()];
        {
            let c = sys.columns();
            let (astro, rest) = want2.split_at_mut(c.att as usize);
            let (att, rest2) = rest.split_at_mut((c.instr - c.att) as usize);
            let (instr, glob) = rest2.split_at_mut((c.glob - c.instr) as usize);
            kernels::aprod2_astro(&sys, &y, 0..sys.layout().n_stars as usize, astro);
            kernels::aprod2_att(&sys, &y, 0..sys.n_rows(), att);
            kernels::aprod2_instr(&sys, &y, 0..sys.n_obs_rows(), instr);
            kernels::aprod2_glob(&sys, &y, 0..sys.n_obs_rows(), glob);
        }
        let strategies = [
            Aprod2Strategy::OwnerComputes,
            Aprod2Strategy::Atomic,
            Aprod2Strategy::CasLoop,
            Aprod2Strategy::Replicated,
            Aprod2Strategy::LockStriped { stripes: 500 },
        ];
        for tuning in [
            Tuning {
                threads: 4,
                chunks_per_thread: 64, // 256 chunks over 96 obs rows
            },
            Tuning {
                threads: 9,
                chunks_per_thread: 200, // 1800 chunks: more than any section
            },
        ] {
            let pool = ExecutorPool::new(tuning.threads);
            for strategy in strategies {
                for spec in [
                    Aprod2Spec::uniform(strategy),
                    Aprod2Spec::streamed(strategy),
                ] {
                    let plan = LaunchPlan::new(tuning, spec);
                    let mut got1 = vec![0.0; sys.n_rows()];
                    plan.aprod1(&pool, &sys, &x, &mut got1);
                    for (g, w) in got1.iter().zip(&want1) {
                        assert!((g - w).abs() < 1e-10, "aprod1 {tuning:?} {spec:?}");
                    }
                    let mut got2 = vec![0.0; sys.n_cols()];
                    plan.aprod2(&pool, &sys, &y, &mut got2);
                    for (g, w) in got2.iter().zip(&want2) {
                        assert!(
                            (g - w).abs() < 1e-10,
                            "aprod2 {tuning:?} {strategy:?} {spec:?}: {g} vs {w}"
                        );
                    }
                }
            }
        }
    }

    /// Section chunk counts clamp to the available work in both budget
    /// modes — no strategy may receive more chunks than items.
    #[test]
    fn section_chunks_clamp_to_available_work() {
        for spec in [
            Aprod2Spec::uniform(Aprod2Strategy::Atomic),
            Aprod2Spec::streamed(Aprod2Strategy::Atomic),
        ] {
            let plan = LaunchPlan::new(
                Tuning {
                    threads: 8,
                    chunks_per_thread: 16,
                },
                spec,
            );
            for stream in [Stream::Astro, Stream::Att, Stream::Instr] {
                for work in [0usize, 1, 2, 7] {
                    let chunks = plan.section_chunks(stream, work);
                    assert!(chunks >= 1, "{stream:?} work={work}");
                    assert!(
                        chunks <= work.max(1),
                        "{stream:?} work={work} got {chunks} chunks"
                    );
                }
            }
        }
    }

    /// Every strategy must produce the same aprod2 result on the same plan
    /// chassis — the single-source property the layer exists for.
    #[test]
    fn every_strategy_matches_the_serial_kernels() {
        use gaia_sparse::{Generator, GeneratorConfig, SystemLayout};
        let sys = Generator::new(GeneratorConfig::new(SystemLayout::tiny()).seed(7)).generate();
        let y: Vec<f64> = (0..sys.n_rows()).map(|i| (i as f64 * 0.31).sin()).collect();
        let mut want = vec![0.0; sys.n_cols()];
        {
            let c = sys.columns();
            let (astro, rest) = want.split_at_mut(c.att as usize);
            let (att, rest2) = rest.split_at_mut((c.instr - c.att) as usize);
            let (instr, glob) = rest2.split_at_mut((c.glob - c.instr) as usize);
            kernels::aprod2_astro(&sys, &y, 0..sys.layout().n_stars as usize, astro);
            kernels::aprod2_att(&sys, &y, 0..sys.n_rows(), att);
            kernels::aprod2_instr(&sys, &y, 0..sys.n_obs_rows(), instr);
            kernels::aprod2_glob(&sys, &y, 0..sys.n_obs_rows(), glob);
        }
        let pool = ExecutorPool::new(3);
        let strategies = [
            Aprod2Strategy::OwnerComputes,
            Aprod2Strategy::Atomic,
            Aprod2Strategy::CasLoop,
            Aprod2Strategy::Replicated,
            Aprod2Strategy::LockStriped { stripes: 5 },
        ];
        for strategy in strategies {
            for spec in [
                Aprod2Spec::uniform(strategy),
                Aprod2Spec::streamed(strategy),
            ] {
                let plan = LaunchPlan::new(tuning_2x4(), spec);
                let mut got = vec![0.0; sys.n_cols()];
                plan.aprod2(&pool, &sys, &y, &mut got);
                for (g, w) in got.iter().zip(&want) {
                    assert!((g - w).abs() < 1e-10, "{strategy:?} {spec:?}: {g} vs {w}");
                }
            }
        }
    }

    /// Every kernel variant × matrix layout must match the serial scalar
    /// kernels on every strategy chassis — the dispatch-seam property the
    /// tuner relies on to search the space safely.
    #[test]
    fn every_variant_and_layout_matches_the_serial_kernels() {
        use gaia_sparse::{Generator, GeneratorConfig, SystemLayout};
        let sys = Generator::new(GeneratorConfig::new(SystemLayout::tiny()).seed(13)).generate();
        let x: Vec<f64> = (0..sys.n_cols()).map(|i| (i as f64 * 0.17).sin()).collect();
        let y: Vec<f64> = (0..sys.n_rows()).map(|i| (i as f64 * 0.29).cos()).collect();
        let mut want1 = vec![0.0; sys.n_rows()];
        kernels::aprod1_range(&sys, &x, 0..sys.n_rows(), &mut want1);
        let mut want2 = vec![0.0; sys.n_cols()];
        {
            let c = sys.columns();
            let (astro, rest) = want2.split_at_mut(c.att as usize);
            let (att, rest2) = rest.split_at_mut((c.instr - c.att) as usize);
            let (instr, glob) = rest2.split_at_mut((c.glob - c.instr) as usize);
            kernels::aprod2_astro(&sys, &y, 0..sys.layout().n_stars as usize, astro);
            kernels::aprod2_att(&sys, &y, 0..sys.n_rows(), att);
            kernels::aprod2_instr(&sys, &y, 0..sys.n_obs_rows(), instr);
            kernels::aprod2_glob(&sys, &y, 0..sys.n_obs_rows(), glob);
        }
        let pool = ExecutorPool::new(3);
        let strategies = [
            Aprod2Strategy::OwnerComputes,
            Aprod2Strategy::Atomic,
            Aprod2Strategy::Replicated,
            Aprod2Strategy::LockStriped { stripes: 5 },
        ];
        for variant in KernelVariant::ALL {
            for layout in MatrixLayout::ALL {
                for strategy in strategies {
                    for spec in [
                        Aprod2Spec::uniform(strategy),
                        Aprod2Spec::streamed(strategy),
                    ] {
                        let plan = LaunchPlan::new(tuning_2x4(), spec)
                            .with_variant(variant)
                            .with_matrix_layout(layout);
                        let mut got1 = vec![0.0; sys.n_rows()];
                        plan.aprod1(&pool, &sys, &x, &mut got1);
                        for (g, w) in got1.iter().zip(&want1) {
                            assert!(
                                (g - w).abs() < 1e-10,
                                "aprod1 {variant:?} {layout:?}: {g} vs {w}"
                            );
                        }
                        let mut got2 = vec![0.0; sys.n_cols()];
                        plan.aprod2(&pool, &sys, &y, &mut got2);
                        for (g, w) in got2.iter().zip(&want2) {
                            assert!(
                                (g - w).abs() < 1e-10,
                                "aprod2 {variant:?} {layout:?} {strategy:?} {spec:?}: {g} vs {w}"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn variant_and_layout_names_round_trip() {
        for v in KernelVariant::ALL {
            assert_eq!(KernelVariant::parse(v.as_str()), Some(v));
        }
        assert_eq!(KernelVariant::parse("simd"), None);
        assert_eq!(KernelVariant::default(), KernelVariant::Scalar);
        // A plan built by `new` is the scalar/row-major default.
        let plan = LaunchPlan::new(tuning_2x4(), Aprod2Spec::uniform(Aprod2Strategy::Atomic));
        assert_eq!(plan.variant, KernelVariant::Scalar);
        assert_eq!(plan.matrix_layout, MatrixLayout::RowMajor);
    }
}
