//! Execution tuning parameters.
//!
//! CUDA, HIP, and SYCL let the programmer pick the number of blocks and
//! threads per block for each kernel, and the paper reports "up to 40 %
//! reduction in iteration time" from such tuning (§V-B). The CPU analogue
//! is the thread count and the row-chunk granularity, which [`Tuning`]
//! captures. Backends that model tuning-oblivious frameworks (rayon / PSTL)
//! ignore it.

/// Thread count and chunking for a backend.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Tuning {
    /// Worker threads to use.
    pub threads: usize,
    /// Target number of chunks per thread (finer chunks improve load
    /// balance, coarser chunks reduce scheduling overhead — the CPU mirror
    /// of the blocks × threads-per-block trade-off).
    pub chunks_per_thread: usize,
}

impl Tuning {
    /// One chunk per thread, `threads` workers.
    pub fn with_threads(threads: usize) -> Self {
        Tuning {
            threads: threads.max(1),
            chunks_per_thread: 1,
        }
    }

    /// Use all available parallelism.
    pub fn auto() -> Self {
        Tuning::with_threads(
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
        )
    }

    /// Total chunk count for a work size of `n` items (never exceeds `n`).
    pub fn chunk_count(&self, n: usize) -> usize {
        self.effective_chunks(n)
    }

    /// The clamp behind [`Tuning::chunk_count`], spelled out: the raw
    /// budget is `threads × chunks_per_thread`, saturating — a registry
    /// suffix like `-c18446744073709551615` must clamp to the work count,
    /// not overflow (the old `*` panicked in debug builds and wrapped to
    /// a tiny chunk count in release) — and the result always lies in
    /// `1..=n.max(1)` so empty work still yields one (empty) chunk.
    pub fn effective_chunks(&self, n: usize) -> usize {
        self.threads
            .max(1)
            .saturating_mul(self.chunks_per_thread.max(1))
            .clamp(1, n.max(1))
    }
}

impl Default for Tuning {
    fn default() -> Self {
        Tuning::auto()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunk_count_is_bounded_by_work() {
        let t = Tuning {
            threads: 8,
            chunks_per_thread: 4,
        };
        assert_eq!(t.chunk_count(1000), 32);
        assert_eq!(t.chunk_count(3), 3);
        assert_eq!(t.chunk_count(0), 1);
    }

    #[test]
    fn with_threads_clamps_to_one() {
        assert_eq!(Tuning::with_threads(0).threads, 1);
    }

    /// Boundary audit: n = 0, n < threads, and budgets that would
    /// overflow `threads × chunks_per_thread`.
    #[test]
    fn effective_chunks_boundaries() {
        // n = 0: one empty chunk, never zero.
        for t in [1usize, 7, 64] {
            for c in [1usize, 16, usize::MAX] {
                let tuning = Tuning {
                    threads: t,
                    chunks_per_thread: c,
                };
                assert_eq!(tuning.effective_chunks(0), 1, "t={t} c={c}");
            }
        }
        // n < threads: clamp to n.
        let t = Tuning {
            threads: 16,
            chunks_per_thread: 1,
        };
        assert_eq!(t.effective_chunks(5), 5);
        assert_eq!(t.effective_chunks(1), 1);
        // Huge chunks_per_thread: saturate, then clamp to the work count
        // (the old unchecked multiply overflowed here).
        let huge = Tuning {
            threads: 8,
            chunks_per_thread: usize::MAX,
        };
        assert_eq!(huge.effective_chunks(1000), 1000);
        assert_eq!(huge.effective_chunks(1), 1);
        // Degenerate zero fields behave like 1.
        let zeroed = Tuning {
            threads: 0,
            chunks_per_thread: 0,
        };
        assert_eq!(zeroed.effective_chunks(10), 1);
        // chunk_count stays an alias of effective_chunks.
        assert_eq!(huge.chunk_count(42), huge.effective_chunks(42));
    }
}
