//! Execution tuning parameters.
//!
//! CUDA, HIP, and SYCL let the programmer pick the number of blocks and
//! threads per block for each kernel, and the paper reports "up to 40 %
//! reduction in iteration time" from such tuning (§V-B). The CPU analogue
//! is the thread count and the row-chunk granularity, which [`Tuning`]
//! captures. Backends that model tuning-oblivious frameworks (rayon / PSTL)
//! ignore it.

/// Thread count and chunking for a backend.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Tuning {
    /// Worker threads to use.
    pub threads: usize,
    /// Target number of chunks per thread (finer chunks improve load
    /// balance, coarser chunks reduce scheduling overhead — the CPU mirror
    /// of the blocks × threads-per-block trade-off).
    pub chunks_per_thread: usize,
}

impl Tuning {
    /// One chunk per thread, `threads` workers.
    pub fn with_threads(threads: usize) -> Self {
        Tuning {
            threads: threads.max(1),
            chunks_per_thread: 1,
        }
    }

    /// Use all available parallelism.
    pub fn auto() -> Self {
        Tuning::with_threads(
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
        )
    }

    /// Total chunk count for a work size of `n` items (never exceeds `n`).
    pub fn chunk_count(&self, n: usize) -> usize {
        (self.threads * self.chunks_per_thread).clamp(1, n.max(1))
    }
}

impl Default for Tuning {
    fn default() -> Self {
        Tuning::auto()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunk_count_is_bounded_by_work() {
        let t = Tuning {
            threads: 8,
            chunks_per_thread: 4,
        };
        assert_eq!(t.chunk_count(1000), 32);
        assert_eq!(t.chunk_count(3), 3);
        assert_eq!(t.chunk_count(0), 1);
    }

    #[test]
    fn with_threads_clamps_to_one() {
        assert_eq!(Tuning::with_threads(0).threads, 1);
    }
}
