//! Generic-CSR backend — the measured counterpart of the §V-B
//! amd-lab-notes SpMV comparison.
//!
//! This backend ignores the structured storage entirely: it converts the
//! system to CSR once (cached per system pointer is not possible without
//! interior mutability, so conversion happens on construction against a
//! specific system) and runs the textbook scalar SpMV / SpMVᵀ kernels.
//! Comparing it against the structured backends in the criterion
//! benchmarks quantifies, on real hardware, what the paper's storage
//! scheme buys: less index metadata per non-zero and block-specialized
//! inner loops.

use crossbeam::thread;
use gaia_sparse::csr::CsrMatrix;
use gaia_sparse::SparseSystem;

use crate::kernels::split_ranges;
use crate::traits::Backend;
use crate::tuning::Tuning;

/// Backend running generic CSR kernels over a pre-converted matrix.
///
/// Unlike the other backends it is bound to one system at construction
/// ([`CsrBackend::for_system`]); calling it with a different system
/// panics. `aprod2` uses per-thread privatization (the conflict pattern
/// of CSRᵀ is unstructured, so that is the only safe generic strategy).
pub struct CsrBackend {
    tuning: Tuning,
    csr: CsrMatrix,
    n_rows: usize,
    n_cols: usize,
}

impl CsrBackend {
    /// Convert `sys` and bind the backend to it.
    pub fn for_system(sys: &SparseSystem, threads: usize) -> Self {
        CsrBackend {
            tuning: Tuning::with_threads(threads),
            csr: CsrMatrix::from_system(sys),
            n_rows: sys.n_rows(),
            n_cols: sys.n_cols(),
        }
    }

    /// Storage bytes of the CSR mirror (for footprint comparisons).
    pub fn storage_bytes(&self) -> u64 {
        self.csr.storage_bytes()
    }

    fn check_binding(&self, sys: &SparseSystem) {
        assert_eq!(
            (sys.n_rows(), sys.n_cols()),
            (self.n_rows, self.n_cols),
            "CsrBackend is bound to a specific system"
        );
    }
}

impl Backend for CsrBackend {
    fn name(&self) -> String {
        format!("csr-t{}", self.tuning.threads)
    }

    fn description(&self) -> &'static str {
        "generic CSR SpMV kernels (amd-lab-notes comparison), privatized transpose"
    }

    fn aprod1(&self, sys: &SparseSystem, x: &[f64], out: &mut [f64]) {
        self.check_aprod1(sys, x, out);
        self.check_binding(sys);
        let csr = &self.csr;
        let ranges = split_ranges(self.n_rows, self.tuning.chunk_count(self.n_rows));
        thread::scope(|scope| {
            let mut rest = out;
            for range in ranges {
                let (mine, tail) = rest.split_at_mut(range.len());
                rest = tail;
                scope.spawn(move |_| csr.spmv_range(x, range, mine));
            }
        })
        .expect("csr aprod1 worker panicked");
    }

    fn aprod2(&self, sys: &SparseSystem, y: &[f64], out: &mut [f64]) {
        self.check_aprod2(sys, y, out);
        self.check_binding(sys);
        let csr = &self.csr;
        let n_cols = self.n_cols;
        let ranges = split_ranges(self.n_rows, self.tuning.threads.max(1));
        let privates: Vec<Vec<f64>> = thread::scope(|scope| {
            let handles: Vec<_> = ranges
                .into_iter()
                .map(|rows| {
                    scope.spawn(move |_| {
                        let mut private = vec![0.0f64; n_cols];
                        csr.spmv_t_range(y, rows, &mut private);
                        private
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("csr aprod2 worker panicked"))
                .collect()
        })
        .expect("csr aprod2 scope panicked");
        for private in privates {
            for (slot, v) in out.iter_mut().zip(private) {
                *slot += v;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend_seq::SeqBackend;
    use gaia_sparse::{Generator, GeneratorConfig, SystemLayout};

    #[test]
    fn csr_backend_matches_seq() {
        let sys = Generator::new(GeneratorConfig::new(SystemLayout::small()).seed(99)).generate();
        let x: Vec<f64> = (0..sys.n_cols()).map(|i| (i as f64 * 0.81).sin()).collect();
        let y: Vec<f64> = (0..sys.n_rows()).map(|i| (i as f64 * 0.83).cos()).collect();
        let seq = SeqBackend;
        let mut want1 = vec![0.0; sys.n_rows()];
        seq.aprod1(&sys, &x, &mut want1);
        let mut want2 = vec![0.0; sys.n_cols()];
        seq.aprod2(&sys, &y, &mut want2);
        for threads in [1, 4] {
            let b = CsrBackend::for_system(&sys, threads);
            let mut got1 = vec![0.0; sys.n_rows()];
            b.aprod1(&sys, &x, &mut got1);
            let mut got2 = vec![0.0; sys.n_cols()];
            b.aprod2(&sys, &y, &mut got2);
            for (g, w) in got1.iter().zip(&want1) {
                assert!((g - w).abs() < 1e-10);
            }
            for (g, w) in got2.iter().zip(&want2) {
                assert!((g - w).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn csr_backend_satisfies_the_adjoint_identity() {
        use gaia_sparse::Rhs;
        let cfg = GeneratorConfig::new(SystemLayout::tiny())
            .seed(100)
            .rhs(Rhs::FromTrueSolution { noise_sigma: 0.0 });
        let (sys, truth) = Generator::new(cfg).generate_with_truth();
        let x_true = truth.unwrap();
        let b = CsrBackend::for_system(&sys, 2);
        // Adjoint identity, the property LSQR needs.
        let mut ax = vec![0.0; sys.n_rows()];
        b.aprod1(&sys, &x_true, &mut ax);
        let y: Vec<f64> = (0..sys.n_rows()).map(|i| (i as f64 * 0.03).sin()).collect();
        let mut aty = vec![0.0; sys.n_cols()];
        b.aprod2(&sys, &y, &mut aty);
        let lhs: f64 = ax.iter().zip(&y).map(|(a, c)| a * c).sum();
        let rhs: f64 = x_true.iter().zip(&aty).map(|(a, c)| a * c).sum();
        assert!((lhs - rhs).abs() < 1e-9 * (1.0 + lhs.abs()));
    }

    #[test]
    #[should_panic(expected = "bound to a specific system")]
    fn wrong_system_is_rejected() {
        let a = Generator::new(GeneratorConfig::new(SystemLayout::tiny()).seed(1)).generate();
        let b = Generator::new(GeneratorConfig::new(SystemLayout::small()).seed(1)).generate();
        let backend = CsrBackend::for_system(&a, 2);
        let x = vec![0.0; b.n_cols()];
        let mut out = vec![0.0; b.n_rows()];
        backend.aprod1(&b, &x, &mut out);
    }
}
