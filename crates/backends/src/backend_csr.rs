//! Generic-CSR backend — the measured counterpart of the §V-B
//! amd-lab-notes SpMV comparison.
//!
//! This backend ignores the structured storage entirely: it converts the
//! system to CSR once (cached per system pointer is not possible without
//! interior mutability, so conversion happens on construction against a
//! specific system) and runs the textbook scalar SpMV / SpMVᵀ kernels.
//! Comparing it against the structured backends in the criterion
//! benchmarks quantifies, on real hardware, what the paper's storage
//! scheme buys: less index metadata per non-zero and block-specialized
//! inner loops.

use std::sync::Arc;

use gaia_sparse::csr::CsrMatrix;
use gaia_sparse::SparseSystem;

use crate::exec::{ExecutorPool, Job};
use crate::launch::split_ranges;
use crate::registry::tuned_name;
use crate::traits::Backend;
use crate::tuning::Tuning;

/// Backend running generic CSR kernels over a pre-converted matrix.
///
/// Unlike the other backends it is bound to one system at construction
/// ([`CsrBackend::for_system`]); calling it with a different system
/// panics. `aprod2` uses per-chunk privatization (the conflict pattern
/// of CSRᵀ is unstructured, so that is the only safe generic strategy).
/// CSR has no block structure for [`crate::LaunchPlan`] to partition, so
/// this backend submits its row-chunk jobs to the pool directly.
pub struct CsrBackend {
    tuning: Tuning,
    pool: Arc<ExecutorPool>,
    csr: CsrMatrix,
    n_rows: usize,
    n_cols: usize,
}

impl CsrBackend {
    /// Convert `sys` and bind the backend to it.
    pub fn for_system(sys: &SparseSystem, threads: usize) -> Self {
        let tuning = Tuning::with_threads(threads);
        CsrBackend {
            tuning,
            pool: ExecutorPool::shared(tuning.threads),
            csr: CsrMatrix::from_system(sys),
            n_rows: sys.n_rows(),
            n_cols: sys.n_cols(),
        }
    }

    /// Storage bytes of the CSR mirror (for footprint comparisons).
    pub fn storage_bytes(&self) -> u64 {
        self.csr.storage_bytes()
    }

    fn check_binding(&self, sys: &SparseSystem) {
        assert_eq!(
            (sys.n_rows(), sys.n_cols()),
            (self.n_rows, self.n_cols),
            "CsrBackend is bound to a specific system"
        );
    }
}

impl Backend for CsrBackend {
    fn name(&self) -> String {
        tuned_name("csr", self.tuning)
    }

    fn description(&self) -> &'static str {
        "generic CSR SpMV kernels (amd-lab-notes comparison), privatized transpose"
    }

    fn aprod1(&self, sys: &SparseSystem, x: &[f64], out: &mut [f64]) {
        self.check_aprod1(sys, x, out);
        self.check_binding(sys);
        let csr = &self.csr;
        let ranges = split_ranges(self.n_rows, self.tuning.chunk_count(self.n_rows));
        let mut jobs: Vec<Job<'_>> = Vec::with_capacity(ranges.len());
        let mut rest = out;
        for range in ranges {
            let (mine, tail) = rest.split_at_mut(range.len());
            rest = tail;
            jobs.push(Box::new(move || csr.spmv_range(x, range, mine)));
        }
        self.pool.run(jobs);
    }

    fn aprod2(&self, sys: &SparseSystem, y: &[f64], out: &mut [f64]) {
        self.check_aprod2(sys, y, out);
        self.check_binding(sys);
        let csr = &self.csr;
        let n_cols = self.n_cols;
        let ranges = split_ranges(self.n_rows, self.tuning.chunk_count(self.n_rows));
        let mut privates: Vec<Vec<f64>> = vec![vec![0.0; n_cols]; ranges.len()];
        {
            let mut jobs: Vec<Job<'_>> = Vec::with_capacity(ranges.len());
            for (private, rows) in privates.iter_mut().zip(ranges) {
                jobs.push(Box::new(move || csr.spmv_t_range(y, rows, private)));
            }
            self.pool.run(jobs);
        }
        // Column-parallel reduction of the private buffers.
        let privates = &privates;
        let mut red_jobs: Vec<Job<'_>> = Vec::new();
        let mut rest = out;
        for own in split_ranges(n_cols, self.tuning.chunk_count(n_cols)) {
            let (mine, tail) = rest.split_at_mut(own.len());
            rest = tail;
            red_jobs.push(Box::new(move || {
                for private in privates {
                    for (slot, &v) in mine.iter_mut().zip(&private[own.start..own.end]) {
                        *slot += v;
                    }
                }
            }));
        }
        self.pool.run(red_jobs);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend_seq::SeqBackend;
    use gaia_sparse::{Generator, GeneratorConfig, SystemLayout};

    #[test]
    fn csr_backend_matches_seq() {
        let sys = Generator::new(GeneratorConfig::new(SystemLayout::small()).seed(99)).generate();
        let x: Vec<f64> = (0..sys.n_cols()).map(|i| (i as f64 * 0.81).sin()).collect();
        let y: Vec<f64> = (0..sys.n_rows()).map(|i| (i as f64 * 0.83).cos()).collect();
        let seq = SeqBackend;
        let mut want1 = vec![0.0; sys.n_rows()];
        seq.aprod1(&sys, &x, &mut want1);
        let mut want2 = vec![0.0; sys.n_cols()];
        seq.aprod2(&sys, &y, &mut want2);
        for threads in [1, 4] {
            let b = CsrBackend::for_system(&sys, threads);
            let mut got1 = vec![0.0; sys.n_rows()];
            b.aprod1(&sys, &x, &mut got1);
            let mut got2 = vec![0.0; sys.n_cols()];
            b.aprod2(&sys, &y, &mut got2);
            for (g, w) in got1.iter().zip(&want1) {
                assert!((g - w).abs() < 1e-10);
            }
            for (g, w) in got2.iter().zip(&want2) {
                assert!((g - w).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn csr_backend_satisfies_the_adjoint_identity() {
        use gaia_sparse::Rhs;
        let cfg = GeneratorConfig::new(SystemLayout::tiny())
            .seed(100)
            .rhs(Rhs::FromTrueSolution { noise_sigma: 0.0 });
        let (sys, truth) = Generator::new(cfg).generate_with_truth();
        let x_true = truth.unwrap();
        let b = CsrBackend::for_system(&sys, 2);
        // Adjoint identity, the property LSQR needs.
        let mut ax = vec![0.0; sys.n_rows()];
        b.aprod1(&sys, &x_true, &mut ax);
        let y: Vec<f64> = (0..sys.n_rows()).map(|i| (i as f64 * 0.03).sin()).collect();
        let mut aty = vec![0.0; sys.n_cols()];
        b.aprod2(&sys, &y, &mut aty);
        let lhs: f64 = ax.iter().zip(&y).map(|(a, c)| a * c).sum();
        let rhs: f64 = x_true.iter().zip(&aty).map(|(a, c)| a * c).sum();
        assert!((lhs - rhs).abs() < 1e-9 * (1.0 + lhs.abs()));
    }

    #[test]
    #[should_panic(expected = "bound to a specific system")]
    fn wrong_system_is_rejected() {
        let a = Generator::new(GeneratorConfig::new(SystemLayout::tiny()).seed(1)).generate();
        let b = Generator::new(GeneratorConfig::new(SystemLayout::small()).seed(1)).generate();
        let backend = CsrBackend::for_system(&a, 2);
        let x = vec![0.0; b.n_cols()];
        let mut out = vec![0.0; b.n_rows()];
        backend.aprod1(&b, &x, &mut out);
    }
}
