//! Stream-overlapped backend (CUDA-streams analogue).

use crossbeam::thread;
use gaia_sparse::SparseSystem;

use crate::kernels::{self, split_ranges};
use crate::traits::Backend;
use crate::tuning::Tuning;

/// Backend that mirrors the production solver's use of CUDA streams:
/// "we execute the kernels in streams, allowing their asynchronous overlap.
/// Since the atomic operations in each submatrix target different
/// subsections of x̃, the asynchronous execution of the kernels does not
/// increase the execution cost of the atomic operations" (§IV).
///
/// The four `aprod2` block kernels write disjoint sections of `x̃`
/// (astrometric / attitude / instrumental / global), so they run
/// concurrently on four "streams" (threads), each section split further
/// across the stream's worker budget. `aprod1` uses the plain row split —
/// the paper overlaps only `aprod2`.
#[derive(Debug, Clone, Copy)]
pub struct StreamedBackend {
    tuning: Tuning,
}

impl StreamedBackend {
    /// Create with explicit tuning.
    pub fn new(tuning: Tuning) -> Self {
        StreamedBackend { tuning }
    }

    /// Create with `threads` workers.
    pub fn with_threads(threads: usize) -> Self {
        StreamedBackend::new(Tuning::with_threads(threads))
    }
}

/// Worker budget per `aprod2` stream for a thread count, as
/// `(astro, att, instr)`.
///
/// The astrometric stream carries ~5/24 of the coefficients but all the
/// star traversal, so it gets half the budget; attitude a quarter; the
/// instrumental stream the remainder (the global stream runs on the
/// calling thread). The effective budget is `threads.max(4)` — one slot
/// per stream minimum — which is what keeps the `max(1)` floors from
/// oversubscribing: with a raw budget of 1–3 threads the three floors
/// would sum past the budget, but raising the floor to 4 makes
/// `astro + att + instr == total` hold exactly.
pub(crate) fn stream_worker_budget(threads: usize) -> (usize, usize, usize) {
    let total = threads.max(4);
    let astro = (total / 2).max(1);
    let att = (total / 4).max(1);
    let instr = (total - astro - att).max(1);
    debug_assert!(
        astro + att + instr <= total,
        "stream budget oversubscribed: {astro}+{att}+{instr} > {total} (threads = {threads})"
    );
    (astro, att, instr)
}

impl Backend for StreamedBackend {
    fn name(&self) -> String {
        format!("streamed-t{}", self.tuning.threads)
    }

    fn description(&self) -> &'static str {
        "four concurrent aprod2 block streams over disjoint x̃ sections"
    }

    fn aprod1(&self, sys: &SparseSystem, x: &[f64], out: &mut [f64]) {
        self.check_aprod1(sys, x, out);
        let ranges = split_ranges(sys.n_rows(), self.tuning.chunk_count(sys.n_rows()));
        thread::scope(|scope| {
            let mut rest = out;
            for range in ranges {
                let (mine, tail) = rest.split_at_mut(range.len());
                rest = tail;
                scope.spawn(move |_| kernels::aprod1_range(sys, x, range, mine));
            }
        })
        .expect("aprod1 worker panicked");
    }

    fn aprod2(&self, sys: &SparseSystem, y: &[f64], out: &mut [f64]) {
        self.check_aprod2(sys, y, out);
        let c = sys.columns();
        let (astro, rest) = out.split_at_mut(c.att as usize);
        let (att, rest2) = rest.split_at_mut((c.instr - c.att) as usize);
        let (instr, glob) = rest2.split_at_mut((c.glob - c.instr) as usize);

        // Budget the workers across streams roughly by work share,
        // mirroring the production choice of fewer blocks/threads "in the
        // regions where atomic operations are performed". The split is
        // audited against the total in `stream_worker_budget`.
        let (astro_workers, att_workers, instr_workers) = stream_worker_budget(self.tuning.threads);
        assert!(
            astro_workers + att_workers + instr_workers <= self.tuning.threads.max(4),
            "aprod2 stream budget exceeds the thread budget"
        );

        let n_stars = sys.layout().n_stars as usize;

        thread::scope(|scope| {
            // Stream 1: astrometric (star split, collision-free).
            let mut astro_rest = astro;
            for stars in split_ranges(n_stars, astro_workers.min(n_stars.max(1))) {
                let (mine, tail) = astro_rest.split_at_mut(stars.len() * 5);
                astro_rest = tail;
                scope.spawn(move |_| kernels::aprod2_astro(sys, y, stars, mine));
            }
            // Stream 2: attitude (owner-computes split inside the stream).
            let mut att_rest: &mut [f64] = att;
            let att_len = att_rest.len();
            for own in split_ranges(att_len, att_workers.min(att_len.max(1))) {
                let (mine, tail) = att_rest.split_at_mut(own.len());
                att_rest = tail;
                scope.spawn(move |_| kernels::aprod2_att_owned(sys, y, 0..sys.n_rows(), own, mine));
            }
            // Stream 3: instrumental (owner-computes split).
            let mut instr_rest: &mut [f64] = instr;
            let instr_len = instr_rest.len();
            for own in split_ranges(instr_len, instr_workers.min(instr_len.max(1))) {
                let (mine, tail) = instr_rest.split_at_mut(own.len());
                instr_rest = tail;
                scope.spawn(move |_| {
                    kernels::aprod2_instr_owned(sys, y, 0..sys.n_obs_rows(), own, mine)
                });
            }
            // Stream 4: global (cheap reduction, runs on this thread).
            kernels::aprod2_glob(sys, y, 0..sys.n_obs_rows(), glob);
        })
        .expect("aprod2 worker panicked");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend_seq::SeqBackend;
    use gaia_sparse::{Generator, GeneratorConfig, SystemLayout};

    #[test]
    fn streamed_matches_seq() {
        let sys = Generator::new(GeneratorConfig::new(SystemLayout::small()).seed(81)).generate();
        let x: Vec<f64> = (0..sys.n_cols()).map(|i| (i as f64 * 0.61).sin()).collect();
        let y: Vec<f64> = (0..sys.n_rows()).map(|i| (i as f64 * 0.67).cos()).collect();
        let seq = SeqBackend;
        let mut want1 = vec![0.0; sys.n_rows()];
        seq.aprod1(&sys, &x, &mut want1);
        let mut want2 = vec![0.0; sys.n_cols()];
        seq.aprod2(&sys, &y, &mut want2);
        for threads in [1, 4, 9] {
            let b = StreamedBackend::with_threads(threads);
            let mut got1 = vec![0.0; sys.n_rows()];
            b.aprod1(&sys, &x, &mut got1);
            let mut got2 = vec![0.0; sys.n_cols()];
            b.aprod2(&sys, &y, &mut got2);
            for (g, w) in got1.iter().zip(&want1) {
                assert!((g - w).abs() < 1e-10, "threads={threads}");
            }
            for (g, w) in got2.iter().zip(&want2) {
                assert!((g - w).abs() < 1e-10, "threads={threads}");
            }
        }
    }

    /// The `max(1)` floors could oversubscribe a raw 1–3 thread budget
    /// (e.g. threads = 1 would yield 1+1+1 = 3 workers); the `max(4)`
    /// effective budget is what keeps the sum within bounds. Audit the
    /// small budgets explicitly, plus representative larger ones.
    #[test]
    fn worker_budget_never_oversubscribes() {
        for threads in [1usize, 2, 3] {
            let (astro, att, instr) = stream_worker_budget(threads);
            let effective = threads.max(4);
            assert!(astro >= 1 && att >= 1 && instr >= 1, "threads = {threads}");
            assert!(
                astro + att + instr <= effective,
                "threads = {threads}: {astro}+{att}+{instr} > {effective}"
            );
        }
        for threads in [4usize, 5, 8, 17, 64] {
            let (astro, att, instr) = stream_worker_budget(threads);
            assert!(
                astro + att + instr <= threads,
                "threads = {threads}: {astro}+{att}+{instr} > {threads}"
            );
        }
    }

    #[test]
    fn tiny_thread_budgets_still_match_seq() {
        let sys = Generator::new(GeneratorConfig::new(SystemLayout::tiny()).seed(83)).generate();
        let y: Vec<f64> = (0..sys.n_rows()).map(|i| (i as f64 * 0.43).sin()).collect();
        let seq = SeqBackend;
        let mut want = vec![0.0; sys.n_cols()];
        seq.aprod2(&sys, &y, &mut want);
        for threads in [1, 2, 3] {
            let b = StreamedBackend::with_threads(threads);
            let mut got = vec![0.0; sys.n_cols()];
            b.aprod2(&sys, &y, &mut got);
            for (g, w) in got.iter().zip(&want) {
                assert!((g - w).abs() < 1e-10, "threads={threads}");
            }
        }
    }

    #[test]
    fn streams_write_disjoint_sections() {
        // With y = 0 on all observation rows but 1.0 on constraint rows,
        // only the attitude section may change.
        let sys = Generator::new(GeneratorConfig::new(SystemLayout::tiny()).seed(82)).generate();
        let mut y = vec![0.0; sys.n_rows()];
        for slot in y.iter_mut().skip(sys.n_obs_rows()) {
            *slot = 1.0;
        }
        let b = StreamedBackend::with_threads(4);
        let mut out = vec![0.0; sys.n_cols()];
        b.aprod2(&sys, &y, &mut out);
        let c = sys.columns();
        assert!(out[..c.att as usize].iter().all(|&v| v == 0.0));
        assert!(out[c.instr as usize..].iter().all(|&v| v == 0.0));
        assert!(out[c.att as usize..c.instr as usize]
            .iter()
            .any(|&v| v != 0.0));
    }
}
