//! Stream-overlapped backend (CUDA-streams analogue).

use std::sync::Arc;

use gaia_sparse::SparseSystem;

use crate::exec::ExecutorPool;
use crate::launch::{Aprod2Spec, Aprod2Strategy, LaunchPlan};
use crate::registry::tuned_name;
use crate::traits::Backend;
use crate::tuning::Tuning;

/// Backend that mirrors the production solver's use of CUDA streams:
/// "we execute the kernels in streams, allowing their asynchronous overlap.
/// Since the atomic operations in each submatrix target different
/// subsections of x̃, the asynchronous execution of the kernels does not
/// increase the execution cost of the atomic operations" (§IV).
///
/// The four `aprod2` block kernels write disjoint sections of `x̃`, so all
/// their jobs launch together on the pool and overlap, with per-stream
/// worker shares from [`crate::launch::stream_worker_budget`]. `aprod1`
/// uses the plain row split — the paper overlaps only `aprod2`.
#[derive(Debug, Clone)]
pub struct StreamedBackend {
    plan: LaunchPlan,
    pool: Arc<ExecutorPool>,
}

impl StreamedBackend {
    /// Create with explicit tuning.
    pub fn new(tuning: Tuning) -> Self {
        StreamedBackend {
            plan: LaunchPlan::new(tuning, Aprod2Spec::streamed(Aprod2Strategy::OwnerComputes)),
            pool: ExecutorPool::shared(tuning.threads),
        }
    }

    /// Create with `threads` workers.
    pub fn with_threads(threads: usize) -> Self {
        StreamedBackend::new(Tuning::with_threads(threads))
    }
}

impl Backend for StreamedBackend {
    fn name(&self) -> String {
        tuned_name("streamed", self.plan.tuning)
    }

    fn description(&self) -> &'static str {
        "four concurrent aprod2 block streams over disjoint x̃ sections"
    }

    fn aprod1(&self, sys: &SparseSystem, x: &[f64], out: &mut [f64]) {
        self.check_aprod1(sys, x, out);
        self.plan.aprod1(&self.pool, sys, x, out);
    }

    fn aprod2(&self, sys: &SparseSystem, y: &[f64], out: &mut [f64]) {
        self.check_aprod2(sys, y, out);
        self.plan.aprod2(&self.pool, sys, y, out);
    }

    fn launch_plan(&self) -> Option<LaunchPlan> {
        Some(self.plan)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend_seq::SeqBackend;
    use gaia_sparse::{Generator, GeneratorConfig, SystemLayout};

    #[test]
    fn tiny_thread_budgets_still_match_seq() {
        let sys = Generator::new(GeneratorConfig::new(SystemLayout::tiny()).seed(83)).generate();
        let y: Vec<f64> = (0..sys.n_rows()).map(|i| (i as f64 * 0.43).sin()).collect();
        let seq = SeqBackend;
        let mut want = vec![0.0; sys.n_cols()];
        seq.aprod2(&sys, &y, &mut want);
        for threads in [1, 2, 3] {
            let b = StreamedBackend::with_threads(threads);
            let mut got = vec![0.0; sys.n_cols()];
            b.aprod2(&sys, &y, &mut got);
            for (g, w) in got.iter().zip(&want) {
                assert!((g - w).abs() < 1e-10, "threads={threads}");
            }
        }
    }

    #[test]
    fn streams_write_disjoint_sections() {
        // With y = 0 on all observation rows but 1.0 on constraint rows,
        // only the attitude section may change.
        let sys = Generator::new(GeneratorConfig::new(SystemLayout::tiny()).seed(82)).generate();
        let mut y = vec![0.0; sys.n_rows()];
        for slot in y.iter_mut().skip(sys.n_obs_rows()) {
            *slot = 1.0;
        }
        let b = StreamedBackend::with_threads(4);
        let mut out = vec![0.0; sys.n_cols()];
        b.aprod2(&sys, &y, &mut out);
        let c = sys.columns();
        assert!(out[..c.att as usize].iter().all(|&v| v == 0.0));
        assert!(out[c.instr as usize..].iter().all(|&v| v == 0.0));
        assert!(out[c.att as usize..c.instr as usize]
            .iter()
            .any(|&v| v != 0.0));
    }
}
