//! Privatization + reduction backend.

use crossbeam::thread;
use gaia_sparse::SparseSystem;

use crate::kernels::{self, split_ranges};
use crate::traits::Backend;
use crate::tuning::Tuning;

/// Backend that avoids all `aprod2` conflicts by *privatizing* the shared
/// output sections: each thread accumulates the attitude/instrumental/global
/// contributions of its row chunk into a thread-local buffer, and the
/// buffers are summed in a final reduction pass.
///
/// This is the classical alternative to atomics the paper alludes to when
/// discussing why "the number of blocks and GPU threads per block" is
/// reduced "in the regions where atomic operations are performed": trading
/// memory (one private copy of the ~10 % non-astrometric sections per
/// thread) for synchronization-freedom. On GPUs full privatization is
/// rarely affordable; on CPUs it usually wins — our criterion benchmarks
/// make that trade-off measurable.
#[derive(Debug, Clone, Copy)]
pub struct ReplicatedBackend {
    tuning: Tuning,
}

impl ReplicatedBackend {
    /// Create with explicit tuning.
    pub fn new(tuning: Tuning) -> Self {
        ReplicatedBackend { tuning }
    }

    /// Create with `threads` workers.
    pub fn with_threads(threads: usize) -> Self {
        ReplicatedBackend::new(Tuning::with_threads(threads))
    }
}

impl Backend for ReplicatedBackend {
    fn name(&self) -> String {
        format!("replicated-t{}", self.tuning.threads)
    }

    fn description(&self) -> &'static str {
        "row-parallel, per-thread private buffers + reduction"
    }

    fn aprod1(&self, sys: &SparseSystem, x: &[f64], out: &mut [f64]) {
        self.check_aprod1(sys, x, out);
        let ranges = split_ranges(sys.n_rows(), self.tuning.chunk_count(sys.n_rows()));
        thread::scope(|scope| {
            let mut rest = out;
            for range in ranges {
                let (mine, tail) = rest.split_at_mut(range.len());
                rest = tail;
                scope.spawn(move |_| kernels::aprod1_range(sys, x, range, mine));
            }
        })
        .expect("aprod1 worker panicked");
    }

    fn aprod2(&self, sys: &SparseSystem, y: &[f64], out: &mut [f64]) {
        self.check_aprod2(sys, y, out);
        let c = sys.columns();
        let (astro, shared) = out.split_at_mut(c.att as usize);
        let shared_len = shared.len();

        let n_stars = sys.layout().n_stars as usize;
        let star_ranges = split_ranges(n_stars, self.tuning.chunk_count(n_stars));
        let row_ranges = split_ranges(sys.n_rows(), self.tuning.threads.max(1));
        let n_att = (c.instr - c.att) as usize;
        let n_instr = (c.glob - c.instr) as usize;

        // Private buffers are collected from the workers, then reduced.
        let privates: Vec<Vec<f64>> = thread::scope(|scope| {
            let mut astro_rest = astro;
            for stars in star_ranges {
                let (mine, tail) = astro_rest.split_at_mut(stars.len() * 5);
                astro_rest = tail;
                scope.spawn(move |_| kernels::aprod2_astro(sys, y, stars, mine));
            }
            let handles: Vec<_> = row_ranges
                .into_iter()
                .map(|rows| {
                    scope.spawn(move |_| {
                        let mut private = vec![0.0f64; shared_len];
                        let (att, rest) = private.split_at_mut(n_att);
                        let (instr, glob) = rest.split_at_mut(n_instr);
                        let obs_rows = rows.start..rows.end.min(sys.n_obs_rows());
                        kernels::aprod2_att(sys, y, rows, att);
                        if !obs_rows.is_empty() {
                            kernels::aprod2_instr(sys, y, obs_rows.clone(), instr);
                            kernels::aprod2_glob(sys, y, obs_rows, glob);
                        }
                        private
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("aprod2 worker panicked"))
                .collect()
        })
        .expect("aprod2 scope panicked");

        // Column-parallel tree-free reduction: each thread owns a column
        // range of the shared section and sums all private buffers into it.
        let red_ranges = split_ranges(shared_len, self.tuning.threads.max(1));
        thread::scope(|scope| {
            let privates = &privates;
            let mut rest = shared;
            for own in red_ranges {
                let (mine, tail) = rest.split_at_mut(own.len());
                rest = tail;
                scope.spawn(move |_| {
                    for private in privates {
                        for (slot, &v) in mine.iter_mut().zip(&private[own.start..own.end]) {
                            *slot += v;
                        }
                    }
                });
            }
        })
        .expect("reduction worker panicked");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend_seq::SeqBackend;
    use gaia_sparse::{Generator, GeneratorConfig, SystemLayout};

    #[test]
    fn replicated_matches_seq() {
        let sys = Generator::new(GeneratorConfig::new(SystemLayout::small()).seed(51)).generate();
        let x: Vec<f64> = (0..sys.n_cols()).map(|i| (i as f64 * 0.29).sin()).collect();
        let y: Vec<f64> = (0..sys.n_rows()).map(|i| (i as f64 * 0.37).cos()).collect();
        let seq = SeqBackend;
        let mut want1 = vec![0.0; sys.n_rows()];
        seq.aprod1(&sys, &x, &mut want1);
        let mut want2 = vec![0.0; sys.n_cols()];
        seq.aprod2(&sys, &y, &mut want2);
        for threads in [1, 2, 5, 16] {
            let b = ReplicatedBackend::with_threads(threads);
            let mut got1 = vec![0.0; sys.n_rows()];
            b.aprod1(&sys, &x, &mut got1);
            let mut got2 = vec![0.0; sys.n_cols()];
            b.aprod2(&sys, &y, &mut got2);
            for (g, w) in got1.iter().zip(&want1) {
                assert!((g - w).abs() < 1e-10, "threads={threads}");
            }
            for (g, w) in got2.iter().zip(&want2) {
                assert!((g - w).abs() < 1e-10, "threads={threads}");
            }
        }
    }

    #[test]
    fn accumulation_preserves_prior_contents() {
        let sys = Generator::new(GeneratorConfig::new(SystemLayout::tiny()).seed(52)).generate();
        let b = ReplicatedBackend::with_threads(3);
        let y = vec![0.0; sys.n_rows()];
        let mut out = vec![7.0; sys.n_cols()];
        b.aprod2(&sys, &y, &mut out);
        assert!(out.iter().all(|&v| v == 7.0));
    }
}
