//! Privatization + reduction backend.

use std::sync::Arc;

use gaia_sparse::SparseSystem;

use crate::exec::ExecutorPool;
use crate::launch::{Aprod2Spec, Aprod2Strategy, LaunchPlan};
use crate::registry::tuned_name;
use crate::traits::Backend;
use crate::tuning::Tuning;

/// Backend that avoids all `aprod2` conflicts by *privatizing* the shared
/// output sections: each job accumulates the attitude/instrumental/global
/// contributions of its row chunk into a private buffer, and the buffers
/// are summed in a column-parallel reduction wave.
///
/// This is the classical alternative to atomics the paper alludes to when
/// discussing why "the number of blocks and GPU threads per block" is
/// reduced "in the regions where atomic operations are performed": trading
/// memory (one private copy of the ~10 % non-astrometric sections per
/// chunk) for synchronization-freedom. On GPUs full privatization is
/// rarely affordable; on CPUs it usually wins — our criterion benchmarks
/// make that trade-off measurable.
#[derive(Debug, Clone)]
pub struct ReplicatedBackend {
    plan: LaunchPlan,
    pool: Arc<ExecutorPool>,
}

impl ReplicatedBackend {
    /// Create with explicit tuning.
    pub fn new(tuning: Tuning) -> Self {
        ReplicatedBackend {
            plan: LaunchPlan::new(tuning, Aprod2Spec::uniform(Aprod2Strategy::Replicated)),
            pool: ExecutorPool::shared(tuning.threads),
        }
    }

    /// Create with `threads` workers.
    pub fn with_threads(threads: usize) -> Self {
        ReplicatedBackend::new(Tuning::with_threads(threads))
    }
}

impl Backend for ReplicatedBackend {
    fn name(&self) -> String {
        tuned_name("replicated", self.plan.tuning)
    }

    fn description(&self) -> &'static str {
        "row-parallel, per-chunk private buffers + reduction"
    }

    fn aprod1(&self, sys: &SparseSystem, x: &[f64], out: &mut [f64]) {
        self.check_aprod1(sys, x, out);
        self.plan.aprod1(&self.pool, sys, x, out);
    }

    fn aprod2(&self, sys: &SparseSystem, y: &[f64], out: &mut [f64]) {
        self.check_aprod2(sys, y, out);
        self.plan.aprod2(&self.pool, sys, y, out);
    }

    fn launch_plan(&self) -> Option<LaunchPlan> {
        Some(self.plan)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gaia_sparse::{Generator, GeneratorConfig, SystemLayout};

    #[test]
    fn accumulation_preserves_prior_contents() {
        let sys = Generator::new(GeneratorConfig::new(SystemLayout::tiny()).seed(52)).generate();
        let b = ReplicatedBackend::with_threads(3);
        let y = vec![0.0; sys.n_rows()];
        let mut out = vec![7.0; sys.n_cols()];
        b.aprod2(&sys, &y, &mut out);
        assert!(out.iter().all(|&v| v == 7.0));
    }
}
