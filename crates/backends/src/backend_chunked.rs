//! Chunked owner-computes backend (OpenMP-teams analogue).

use std::sync::Arc;

use gaia_sparse::SparseSystem;

use crate::exec::ExecutorPool;
use crate::launch::{Aprod2Spec, Aprod2Strategy, LaunchPlan};
use crate::registry::tuned_name;
use crate::traits::Backend;
use crate::tuning::Tuning;

/// Owner-computes policy over the shared executor pool.
///
/// `aprod1` splits rows into chunks (disjoint outputs, no synchronization);
/// `aprod2` gives each job ownership of a contiguous column range per block
/// and rescans the rows — no atomics, no locks, at the price of redundant
/// scanning, mirroring OpenMP `distribute` strategies.
#[derive(Debug, Clone)]
pub struct ChunkedBackend {
    plan: LaunchPlan,
    pool: Arc<ExecutorPool>,
}

impl ChunkedBackend {
    /// Create with explicit tuning.
    pub fn new(tuning: Tuning) -> Self {
        ChunkedBackend {
            plan: LaunchPlan::new(tuning, Aprod2Spec::uniform(Aprod2Strategy::OwnerComputes)),
            pool: ExecutorPool::shared(tuning.threads),
        }
    }

    /// Create with `threads` workers.
    pub fn with_threads(threads: usize) -> Self {
        ChunkedBackend::new(Tuning::with_threads(threads))
    }
}

impl Backend for ChunkedBackend {
    fn name(&self) -> String {
        tuned_name("chunked", self.plan.tuning)
    }

    fn description(&self) -> &'static str {
        "pooled workers, owner-computes columns (OpenMP-teams analogue)"
    }

    fn aprod1(&self, sys: &SparseSystem, x: &[f64], out: &mut [f64]) {
        self.check_aprod1(sys, x, out);
        self.plan.aprod1(&self.pool, sys, x, out);
    }

    fn aprod2(&self, sys: &SparseSystem, y: &[f64], out: &mut [f64]) {
        self.check_aprod2(sys, y, out);
        self.plan.aprod2(&self.pool, sys, y, out);
    }

    fn launch_plan(&self) -> Option<LaunchPlan> {
        Some(self.plan)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gaia_sparse::{Generator, GeneratorConfig, SystemLayout};

    #[test]
    fn more_threads_than_work_is_fine() {
        let sys = Generator::new(GeneratorConfig::new(SystemLayout::tiny()).seed(32)).generate();
        let b = ChunkedBackend::with_threads(64);
        let x = vec![1.0; sys.n_cols()];
        let mut out = vec![0.0; sys.n_rows()];
        b.aprod1(&sys, &x, &mut out);
        assert!(out.iter().any(|&v| v != 0.0));
    }

    #[test]
    fn name_encodes_the_full_tuning() {
        assert_eq!(ChunkedBackend::with_threads(8).name(), "chunked-t8");
        let b = ChunkedBackend::new(Tuning {
            threads: 2,
            chunks_per_thread: 4,
        });
        assert_eq!(b.name(), "chunked-t2-c4");
    }
}
