//! Chunked owner-computes backend (OpenMP-teams analogue).

use crossbeam::thread;
use gaia_sparse::SparseSystem;

use crate::kernels::{self, split_ranges};
use crate::traits::Backend;
use crate::tuning::Tuning;

/// Scoped-thread backend with *owner-computes* conflict handling.
///
/// * `aprod1` splits the rows into contiguous chunks; output rows are
///   disjoint, so chunks run without synchronization.
/// * `aprod2` assigns each thread ownership of a contiguous column range of
///   each block. Astrometric columns follow the star split (collision-free
///   by structure). For attitude and instrumental columns every thread scans
///   the full row range but only applies updates falling inside its owned
///   columns — no atomics, no locks, at the price of redundant scanning.
///   This mirrors OpenMP `distribute` strategies that trade recomputation
///   for synchronization-freedom.
#[derive(Debug, Clone, Copy)]
pub struct ChunkedBackend {
    tuning: Tuning,
}

impl ChunkedBackend {
    /// Create with explicit tuning.
    pub fn new(tuning: Tuning) -> Self {
        ChunkedBackend { tuning }
    }

    /// Create with `threads` workers.
    pub fn with_threads(threads: usize) -> Self {
        ChunkedBackend::new(Tuning::with_threads(threads))
    }
}

impl Backend for ChunkedBackend {
    fn name(&self) -> String {
        format!("chunked-t{}", self.tuning.threads)
    }

    fn description(&self) -> &'static str {
        "scoped threads, owner-computes columns (OpenMP-teams analogue)"
    }

    fn aprod1(&self, sys: &SparseSystem, x: &[f64], out: &mut [f64]) {
        self.check_aprod1(sys, x, out);
        let n_chunks = self.tuning.chunk_count(sys.n_rows());
        let ranges = split_ranges(sys.n_rows(), n_chunks);
        thread::scope(|scope| {
            let mut rest = out;
            for range in ranges {
                let (mine, tail) = rest.split_at_mut(range.len());
                rest = tail;
                scope.spawn(move |_| kernels::aprod1_range(sys, x, range, mine));
            }
        })
        .expect("aprod1 worker panicked");
    }

    fn aprod2(&self, sys: &SparseSystem, y: &[f64], out: &mut [f64]) {
        self.check_aprod2(sys, y, out);
        let c = sys.columns();
        let (astro, rest) = out.split_at_mut(c.att as usize);
        let (att, rest2) = rest.split_at_mut((c.instr - c.att) as usize);
        let (instr, glob) = rest2.split_at_mut((c.glob - c.instr) as usize);

        let n_stars = sys.layout().n_stars as usize;
        let threads = self.tuning.threads;
        let star_ranges = split_ranges(n_stars, self.tuning.chunk_count(n_stars));
        let att_ranges = split_ranges(att.len(), threads.min(att.len().max(1)));
        let instr_ranges = split_ranges(instr.len(), threads.min(instr.len().max(1)));

        thread::scope(|scope| {
            // Astrometric: star-aligned split — each chunk of stars owns an
            // exactly matching contiguous slice of the astro section.
            let mut astro_rest = astro;
            for stars in star_ranges {
                let (mine, tail) = astro_rest.split_at_mut(stars.len() * 5);
                astro_rest = tail;
                scope.spawn(move |_| kernels::aprod2_astro(sys, y, stars, mine));
            }
            // Attitude: owner-computes over column sub-ranges.
            let mut att_rest = att;
            for own in att_ranges {
                let (mine, tail) = att_rest.split_at_mut(own.len());
                att_rest = tail;
                scope.spawn(move |_| kernels::aprod2_att_owned(sys, y, 0..sys.n_rows(), own, mine));
            }
            // Instrumental: owner-computes over column sub-ranges.
            let mut instr_rest = instr;
            for own in instr_ranges {
                let (mine, tail) = instr_rest.split_at_mut(own.len());
                instr_rest = tail;
                scope.spawn(move |_| {
                    kernels::aprod2_instr_owned(sys, y, 0..sys.n_obs_rows(), own, mine)
                });
            }
            // Global: single reduction on the spawning thread.
            kernels::aprod2_glob(sys, y, 0..sys.n_obs_rows(), glob);
        })
        .expect("aprod2 worker panicked");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend_seq::SeqBackend;
    use gaia_sparse::{Generator, GeneratorConfig, SystemLayout};

    #[test]
    fn chunked_matches_seq_for_various_thread_counts() {
        let sys = Generator::new(GeneratorConfig::new(SystemLayout::small()).seed(31)).generate();
        let x: Vec<f64> = (0..sys.n_cols()).map(|i| (i as f64 * 0.11).sin()).collect();
        let y: Vec<f64> = (0..sys.n_rows()).map(|i| (i as f64 * 0.07).cos()).collect();
        let seq = SeqBackend;
        let mut want1 = vec![0.0; sys.n_rows()];
        seq.aprod1(&sys, &x, &mut want1);
        let mut want2 = vec![0.0; sys.n_cols()];
        seq.aprod2(&sys, &y, &mut want2);

        for threads in [1, 2, 3, 8] {
            let b = ChunkedBackend::with_threads(threads);
            let mut got1 = vec![0.0; sys.n_rows()];
            b.aprod1(&sys, &x, &mut got1);
            for (g, w) in got1.iter().zip(&want1) {
                assert!((g - w).abs() < 1e-11, "threads={threads}");
            }
            let mut got2 = vec![0.0; sys.n_cols()];
            b.aprod2(&sys, &y, &mut got2);
            for (g, w) in got2.iter().zip(&want2) {
                assert!((g - w).abs() < 1e-11, "threads={threads}");
            }
        }
    }

    #[test]
    fn more_threads_than_work_is_fine() {
        let sys = Generator::new(GeneratorConfig::new(SystemLayout::tiny()).seed(32)).generate();
        let b = ChunkedBackend::with_threads(64);
        let x = vec![1.0; sys.n_cols()];
        let mut out = vec![0.0; sys.n_rows()];
        b.aprod1(&sys, &x, &mut out);
        assert!(out.iter().any(|&v| v != 0.0));
    }
}
