//! Chunked owner-computes backend (OpenMP-teams analogue), plus its
//! variant-interior / ELL-layout siblings.

use std::sync::Arc;

use gaia_sparse::{MatrixLayout, SparseSystem};

use crate::exec::ExecutorPool;
use crate::launch::{Aprod2Spec, Aprod2Strategy, KernelVariant, LaunchPlan};
use crate::registry::tuned_name;
use crate::traits::Backend;
use crate::tuning::Tuning;

/// Owner-computes policy over the shared executor pool.
///
/// `aprod1` splits rows into chunks (disjoint outputs, no synchronization);
/// `aprod2` gives each job ownership of a contiguous column range per block
/// and rescans the rows — no atomics, no locks, at the price of redundant
/// scanning, mirroring OpenMP `distribute` strategies.
#[derive(Debug, Clone)]
pub struct ChunkedBackend {
    plan: LaunchPlan,
    pool: Arc<ExecutorPool>,
}

impl ChunkedBackend {
    /// Create with explicit tuning.
    pub fn new(tuning: Tuning) -> Self {
        ChunkedBackend {
            plan: LaunchPlan::new(tuning, Aprod2Spec::uniform(Aprod2Strategy::OwnerComputes)),
            pool: ExecutorPool::shared(tuning.threads),
        }
    }

    /// Create with `threads` workers.
    pub fn with_threads(threads: usize) -> Self {
        ChunkedBackend::new(Tuning::with_threads(threads))
    }
}

impl Backend for ChunkedBackend {
    fn name(&self) -> String {
        tuned_name("chunked", self.plan.tuning)
    }

    fn description(&self) -> &'static str {
        "pooled workers, owner-computes columns (OpenMP-teams analogue)"
    }

    fn aprod1(&self, sys: &SparseSystem, x: &[f64], out: &mut [f64]) {
        self.check_aprod1(sys, x, out);
        self.plan.aprod1(&self.pool, sys, x, out);
    }

    fn aprod2(&self, sys: &SparseSystem, y: &[f64], out: &mut [f64]) {
        self.check_aprod2(sys, y, out);
        self.plan.aprod2(&self.pool, sys, y, out);
    }

    fn launch_plan(&self) -> Option<LaunchPlan> {
        Some(self.plan)
    }
}

/// Owner-computes plan with a non-default kernel interior or value layout
/// — the registry's `unrolled` / `blocked` / `ell` names. Same write-sets
/// as [`ChunkedBackend`], different loop shape or gather source, so the
/// variant axis is benchmarkable and verifiable by name.
#[derive(Debug, Clone)]
pub struct VariantBackend {
    policy: &'static str,
    description: &'static str,
    plan: LaunchPlan,
    pool: Arc<ExecutorPool>,
}

impl VariantBackend {
    fn build(
        policy: &'static str,
        description: &'static str,
        tuning: Tuning,
        variant: KernelVariant,
        layout: MatrixLayout,
    ) -> Self {
        let plan = LaunchPlan::new(tuning, Aprod2Spec::uniform(Aprod2Strategy::OwnerComputes))
            .with_variant(variant)
            .with_matrix_layout(layout);
        VariantBackend {
            policy,
            description,
            plan,
            pool: ExecutorPool::shared(tuning.threads),
        }
    }

    /// Explicitly unrolled 5/12/6-wide interiors, row-major values.
    pub fn unrolled(tuning: Tuning) -> Self {
        VariantBackend::build(
            "unrolled",
            "owner-computes columns, unrolled 5/12/6-wide kernel interiors",
            tuning,
            KernelVariant::Unrolled,
            MatrixLayout::RowMajor,
        )
    }

    /// Cache-blocked attitude accumulation, row-major values.
    pub fn blocked(tuning: Tuning) -> Self {
        VariantBackend::build(
            "blocked",
            "owner-computes columns, cache-blocked attitude accumulation",
            tuning,
            KernelVariant::Blocked,
            MatrixLayout::RowMajor,
        )
    }

    /// Scalar interiors reading the slot-major ELL mirror.
    pub fn ell(tuning: Tuning) -> Self {
        VariantBackend::build(
            "ell",
            "owner-computes columns over the slot-major ELL value layout",
            tuning,
            KernelVariant::Scalar,
            MatrixLayout::Ell,
        )
    }
}

impl Backend for VariantBackend {
    fn name(&self) -> String {
        tuned_name(self.policy, self.plan.tuning)
    }

    fn description(&self) -> &'static str {
        self.description
    }

    fn aprod1(&self, sys: &SparseSystem, x: &[f64], out: &mut [f64]) {
        self.check_aprod1(sys, x, out);
        self.plan.aprod1(&self.pool, sys, x, out);
    }

    fn aprod2(&self, sys: &SparseSystem, y: &[f64], out: &mut [f64]) {
        self.check_aprod2(sys, y, out);
        self.plan.aprod2(&self.pool, sys, y, out);
    }

    fn launch_plan(&self) -> Option<LaunchPlan> {
        Some(self.plan)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gaia_sparse::{Generator, GeneratorConfig, SystemLayout};

    #[test]
    fn more_threads_than_work_is_fine() {
        let sys = Generator::new(GeneratorConfig::new(SystemLayout::tiny()).seed(32)).generate();
        let b = ChunkedBackend::with_threads(64);
        let x = vec![1.0; sys.n_cols()];
        let mut out = vec![0.0; sys.n_rows()];
        b.aprod1(&sys, &x, &mut out);
        assert!(out.iter().any(|&v| v != 0.0));
    }

    #[test]
    fn name_encodes_the_full_tuning() {
        assert_eq!(ChunkedBackend::with_threads(8).name(), "chunked-t8");
        let b = ChunkedBackend::new(Tuning {
            threads: 2,
            chunks_per_thread: 4,
        });
        assert_eq!(b.name(), "chunked-t2-c4");
    }

    #[test]
    fn variant_backends_carry_their_axis_in_the_plan() {
        let t = Tuning::with_threads(2);
        let u = VariantBackend::unrolled(t);
        assert_eq!(u.name(), "unrolled-t2");
        assert_eq!(u.launch_plan().unwrap().variant, KernelVariant::Unrolled);
        let b = VariantBackend::blocked(t);
        assert_eq!(b.launch_plan().unwrap().variant, KernelVariant::Blocked);
        let e = VariantBackend::ell(t);
        assert_eq!(e.launch_plan().unwrap().matrix_layout, MatrixLayout::Ell);
        assert_eq!(e.launch_plan().unwrap().variant, KernelVariant::Scalar);
    }
}
