//! Sequential reference backend.

use gaia_sparse::SparseSystem;

use crate::kernels;
use crate::traits::Backend;

/// Single-threaded backend, built directly from the per-block kernels. It
/// is the correctness oracle every parallel backend is tested against, and
/// plays the role of the paper's production reference solution (§V-C).
#[derive(Debug, Clone, Copy, Default)]
pub struct SeqBackend;

impl Backend for SeqBackend {
    fn name(&self) -> String {
        "seq".to_string()
    }

    fn description(&self) -> &'static str {
        "sequential reference (oracle)"
    }

    fn aprod1(&self, sys: &SparseSystem, x: &[f64], out: &mut [f64]) {
        self.check_aprod1(sys, x, out);
        kernels::aprod1_range(sys, x, 0..sys.n_rows(), out);
    }

    fn aprod2(&self, sys: &SparseSystem, y: &[f64], out: &mut [f64]) {
        self.check_aprod2(sys, y, out);
        let c = sys.columns();
        let (astro, rest) = out.split_at_mut(c.att as usize);
        let (att, rest2) = rest.split_at_mut((c.instr - c.att) as usize);
        let (instr, glob) = rest2.split_at_mut((c.glob - c.instr) as usize);
        kernels::aprod2_astro(sys, y, 0..sys.layout().n_stars as usize, astro);
        kernels::aprod2_att(sys, y, 0..sys.n_rows(), att);
        kernels::aprod2_instr(sys, y, 0..sys.n_obs_rows(), instr);
        kernels::aprod2_glob(sys, y, 0..sys.n_obs_rows(), glob);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gaia_sparse::dense::DenseMatrix;
    use gaia_sparse::{Generator, GeneratorConfig, SystemLayout};

    #[test]
    fn seq_matches_dense_oracle() {
        let sys = Generator::new(GeneratorConfig::new(SystemLayout::tiny()).seed(21)).generate();
        let d = DenseMatrix::from_sparse(&sys);
        let b = SeqBackend;
        let x: Vec<f64> = (0..sys.n_cols()).map(|i| (i as f64 * 0.31).sin()).collect();
        let y: Vec<f64> = (0..sys.n_rows()).map(|i| (i as f64 * 0.17).cos()).collect();

        let mut got1 = vec![0.25; sys.n_rows()]; // non-zero start: accumulate semantics
        let mut want1 = vec![0.25; sys.n_rows()];
        b.aprod1(&sys, &x, &mut got1);
        d.mat_vec_acc(&x, &mut want1);
        for (g, w) in got1.iter().zip(&want1) {
            assert!((g - w).abs() < 1e-10);
        }

        let mut got2 = vec![-0.5; sys.n_cols()];
        let mut want2 = vec![-0.5; sys.n_cols()];
        b.aprod2(&sys, &y, &mut got2);
        d.mat_t_vec_acc(&y, &mut want2);
        for (g, w) in got2.iter().zip(&want2) {
            assert!((g - w).abs() < 1e-10);
        }
    }
}
