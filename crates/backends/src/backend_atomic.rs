//! Atomic-update backends (CUDA/HIP `atomicAdd` analogue and the CAS-loop
//! fallback the paper observes on MI250X with some compilers).

use std::ops::Range;
use std::sync::atomic::AtomicU64;

use crossbeam::thread;
use gaia_sparse::system::{ATT_NNZ_PER_ROW, INSTR_NNZ_PER_ROW};
use gaia_sparse::{SparseSystem, ATT_AXES, ATT_PARAMS_PER_AXIS};
use gaia_telemetry::{Block, Phase};

use crate::atomicf64::{self, as_atomic};
use crate::kernels::{self, split_ranges};
use crate::traits::Backend;
use crate::tuning::Tuning;

/// Which atomic accumulation the backend emits — the paper's RMW vs
/// CAS-loop code-generation axis (§V-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AtomicFlavor {
    /// Relaxed weak-CAS loop (the fast, `atomicAdd`-like path).
    Rmw,
    /// SeqCst strong-CAS loop with spin hints (the slow fallback emitted by
    /// compilers lacking `-munsafe-fp-atomics`-style RMW support).
    CasLoop,
}

/// Row-parallel backend using atomic `f64` accumulation for the colliding
/// `aprod2` blocks, like the production CUDA/HIP kernels.
///
/// * `aprod1` — row chunks on scoped threads (no conflicts).
/// * `aprod2` astrometric — star-aligned chunks (structure-collision-free).
/// * `aprod2` attitude / instrumental / global — row chunks with atomic
///   adds into the shared output sections.
#[derive(Debug, Clone, Copy)]
pub struct AtomicBackend {
    tuning: Tuning,
    flavor: AtomicFlavor,
}

impl AtomicBackend {
    /// Create with explicit tuning and the fast RMW flavor.
    pub fn new(tuning: Tuning) -> Self {
        AtomicBackend {
            tuning,
            flavor: AtomicFlavor::Rmw,
        }
    }

    /// Create with `threads` workers (RMW flavor).
    pub fn with_threads(threads: usize) -> Self {
        AtomicBackend::new(Tuning::with_threads(threads))
    }

    /// Switch the atomic flavor.
    pub fn flavor(mut self, flavor: AtomicFlavor) -> Self {
        self.flavor = flavor;
        self
    }
}

/// [`AtomicBackend`] pinned to the slow CAS-loop flavor; registered as its
/// own backend so the RMW-vs-CAS comparison shows up in benchmark reports
/// the way the compiler comparison does in the paper.
#[derive(Debug, Clone, Copy)]
pub struct CasLoopBackend(pub AtomicBackend);

impl CasLoopBackend {
    /// Create with `threads` workers.
    pub fn with_threads(threads: usize) -> Self {
        CasLoopBackend(AtomicBackend::with_threads(threads).flavor(AtomicFlavor::CasLoop))
    }
}

#[inline]
fn atomic_add(flavor: AtomicFlavor, slot: &AtomicU64, v: f64) {
    match flavor {
        AtomicFlavor::Rmw => atomicf64::add_relaxed(slot, v),
        AtomicFlavor::CasLoop => atomicf64::add_seqcst_spin(slot, v),
    }
}

/// Attitude `aprod2` over a row range with atomic updates into the shared
/// block-local attitude section.
fn aprod2_att_atomic(
    sys: &SparseSystem,
    y: &[f64],
    rows: Range<usize>,
    out: &[AtomicU64],
    flavor: AtomicFlavor,
) {
    let mut t = gaia_telemetry::kernel_scope(Phase::Aprod2, Block::Att);
    t.add_bytes(rows.len() as u64 * (3 * ATT_NNZ_PER_ROW as u64 + 1) * 8);
    t.add_rmws(rows.len() as u64 * ATT_NNZ_PER_ROW as u64);
    let dof = sys.layout().n_deg_freedom_att as usize;
    for row in rows {
        let yr = y[row];
        if yr == 0.0 {
            continue;
        }
        let (vals, off) = sys.att_row(row);
        for axis in 0..ATT_AXES as usize {
            let base = axis * dof + off as usize;
            for k in 0..ATT_PARAMS_PER_AXIS as usize {
                atomic_add(flavor, &out[base + k], vals[axis * 4 + k] * yr);
            }
        }
    }
    debug_assert_eq!(ATT_NNZ_PER_ROW, 12);
}

/// Instrumental `aprod2` over a row range with atomic updates.
fn aprod2_instr_atomic(
    sys: &SparseSystem,
    y: &[f64],
    rows: Range<usize>,
    out: &[AtomicU64],
    flavor: AtomicFlavor,
) {
    let mut t = gaia_telemetry::kernel_scope(Phase::Aprod2, Block::Instr);
    t.add_bytes(rows.len() as u64 * (3 * INSTR_NNZ_PER_ROW as u64 + 1) * 8);
    t.add_rmws(rows.len() as u64 * INSTR_NNZ_PER_ROW as u64);
    for row in rows {
        let yr = y[row];
        if yr == 0.0 {
            continue;
        }
        let (vals, cols) = sys.instr_row(row);
        for k in 0..INSTR_NNZ_PER_ROW {
            atomic_add(flavor, &out[cols[k] as usize], vals[k] * yr);
        }
    }
}

/// Global `aprod2` over a row range: local reduction, single atomic add.
fn aprod2_glob_atomic(
    sys: &SparseSystem,
    y: &[f64],
    rows: Range<usize>,
    out: &[AtomicU64],
    flavor: AtomicFlavor,
) {
    if sys.layout().n_glob_params == 0 {
        return;
    }
    let mut t = gaia_telemetry::kernel_scope(Phase::Aprod2, Block::Glob);
    t.add_bytes(rows.len() as u64 * 16 + 16);
    t.add_rmws(1);
    let glob = sys.values_glob();
    let mut acc = 0.0;
    for row in rows {
        acc += glob[row] * y[row];
    }
    atomic_add(flavor, &out[0], acc);
}

impl Backend for AtomicBackend {
    fn name(&self) -> String {
        match self.flavor {
            AtomicFlavor::Rmw => format!("atomic-t{}", self.tuning.threads),
            AtomicFlavor::CasLoop => format!("casloop-t{}", self.tuning.threads),
        }
    }

    fn description(&self) -> &'static str {
        match self.flavor {
            AtomicFlavor::Rmw => "row-parallel, atomic f64 RMW updates (CUDA/HIP analogue)",
            AtomicFlavor::CasLoop => {
                "row-parallel, SeqCst CAS-loop updates (non-RMW compiler fallback)"
            }
        }
    }

    fn aprod1(&self, sys: &SparseSystem, x: &[f64], out: &mut [f64]) {
        self.check_aprod1(sys, x, out);
        let ranges = split_ranges(sys.n_rows(), self.tuning.chunk_count(sys.n_rows()));
        thread::scope(|scope| {
            let mut rest = out;
            for range in ranges {
                let (mine, tail) = rest.split_at_mut(range.len());
                rest = tail;
                scope.spawn(move |_| kernels::aprod1_range(sys, x, range, mine));
            }
        })
        .expect("aprod1 worker panicked");
    }

    fn aprod2(&self, sys: &SparseSystem, y: &[f64], out: &mut [f64]) {
        self.check_aprod2(sys, y, out);
        let c = sys.columns();
        let flavor = self.flavor;
        let (astro, rest) = out.split_at_mut(c.att as usize);
        let (shared, _pad) = rest.split_at_mut((c.end - c.att) as usize);

        let n_stars = sys.layout().n_stars as usize;
        let star_ranges = split_ranges(n_stars, self.tuning.chunk_count(n_stars));
        let row_ranges = split_ranges(sys.n_rows(), self.tuning.chunk_count(sys.n_rows()));
        let n_att = (c.instr - c.att) as usize;
        let n_instr = (c.glob - c.instr) as usize;

        // Shared sections (attitude + instrumental + global) get an atomic
        // view; the astro section keeps plain disjoint slices.
        let shared_atomic = as_atomic(shared);
        let (att_a, rest_a) = shared_atomic.split_at(n_att);
        let (instr_a, glob_a) = rest_a.split_at(n_instr);

        thread::scope(|scope| {
            let mut astro_rest = astro;
            for stars in star_ranges {
                let (mine, tail) = astro_rest.split_at_mut(stars.len() * 5);
                astro_rest = tail;
                scope.spawn(move |_| kernels::aprod2_astro(sys, y, stars, mine));
            }
            for rows in row_ranges {
                let obs_rows = rows.start..rows.end.min(sys.n_obs_rows());
                scope.spawn(move |_| {
                    aprod2_att_atomic(sys, y, rows, att_a, flavor);
                    if !obs_rows.is_empty() {
                        aprod2_instr_atomic(sys, y, obs_rows.clone(), instr_a, flavor);
                        aprod2_glob_atomic(sys, y, obs_rows, glob_a, flavor);
                    }
                });
            }
        })
        .expect("aprod2 worker panicked");
    }
}

impl Backend for CasLoopBackend {
    fn name(&self) -> String {
        self.0.name()
    }
    fn description(&self) -> &'static str {
        self.0.description()
    }
    fn aprod1(&self, sys: &SparseSystem, x: &[f64], out: &mut [f64]) {
        self.0.aprod1(sys, x, out)
    }
    fn aprod2(&self, sys: &SparseSystem, y: &[f64], out: &mut [f64]) {
        self.0.aprod2(sys, y, out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend_seq::SeqBackend;
    use gaia_sparse::{Generator, GeneratorConfig, SystemLayout};

    fn check_against_seq(b: &dyn Backend, tol: f64) {
        let sys = Generator::new(GeneratorConfig::new(SystemLayout::small()).seed(41)).generate();
        let x: Vec<f64> = (0..sys.n_cols()).map(|i| (i as f64 * 0.19).sin()).collect();
        let y: Vec<f64> = (0..sys.n_rows()).map(|i| (i as f64 * 0.23).cos()).collect();
        let seq = SeqBackend;
        let mut want1 = vec![0.0; sys.n_rows()];
        seq.aprod1(&sys, &x, &mut want1);
        let mut want2 = vec![0.0; sys.n_cols()];
        seq.aprod2(&sys, &y, &mut want2);
        let mut got1 = vec![0.0; sys.n_rows()];
        b.aprod1(&sys, &x, &mut got1);
        let mut got2 = vec![0.0; sys.n_cols()];
        b.aprod2(&sys, &y, &mut got2);
        for (g, w) in got1.iter().zip(&want1) {
            assert!((g - w).abs() < tol, "aprod1 {} vs {}", g, w);
        }
        for (g, w) in got2.iter().zip(&want2) {
            assert!((g - w).abs() < tol, "aprod2 {} vs {}", g, w);
        }
    }

    #[test]
    fn atomic_rmw_matches_seq() {
        for threads in [1, 2, 4, 8] {
            check_against_seq(&AtomicBackend::with_threads(threads), 1e-10);
        }
    }

    #[test]
    fn cas_loop_matches_seq() {
        for threads in [1, 4] {
            check_against_seq(&CasLoopBackend::with_threads(threads), 1e-10);
        }
    }

    #[test]
    fn names_encode_flavor() {
        assert!(AtomicBackend::with_threads(4).name().starts_with("atomic-"));
        assert!(CasLoopBackend::with_threads(4)
            .name()
            .starts_with("casloop-"));
    }
}
