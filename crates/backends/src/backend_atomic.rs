//! Atomic-update backends (CUDA/HIP `atomicAdd` analogue and the CAS-loop
//! fallback the paper observes on MI250X with some compilers).

use std::sync::Arc;

use gaia_sparse::SparseSystem;

use crate::exec::ExecutorPool;
use crate::launch::{Aprod2Spec, Aprod2Strategy, LaunchPlan};
use crate::registry::tuned_name;
use crate::traits::Backend;
use crate::tuning::Tuning;

/// Row-parallel policy using atomic `f64` accumulation for the colliding
/// `aprod2` blocks, like the production CUDA/HIP kernels.
///
/// * `aprod1` — row chunks on the pool (no conflicts).
/// * `aprod2` astrometric — star-aligned chunks (structure-collision-free).
/// * `aprod2` attitude / instrumental / global — row chunks with relaxed
///   atomic RMW adds into the shared output sections.
#[derive(Debug, Clone)]
pub struct AtomicBackend {
    plan: LaunchPlan,
    pool: Arc<ExecutorPool>,
}

impl AtomicBackend {
    /// Create with explicit tuning.
    pub fn new(tuning: Tuning) -> Self {
        AtomicBackend {
            plan: LaunchPlan::new(tuning, Aprod2Spec::uniform(Aprod2Strategy::Atomic)),
            pool: ExecutorPool::shared(tuning.threads),
        }
    }

    /// Create with `threads` workers.
    pub fn with_threads(threads: usize) -> Self {
        AtomicBackend::new(Tuning::with_threads(threads))
    }
}

impl Backend for AtomicBackend {
    fn name(&self) -> String {
        tuned_name("atomic", self.plan.tuning)
    }

    fn description(&self) -> &'static str {
        "row-parallel, atomic f64 RMW updates (CUDA/HIP analogue)"
    }

    fn aprod1(&self, sys: &SparseSystem, x: &[f64], out: &mut [f64]) {
        self.check_aprod1(sys, x, out);
        self.plan.aprod1(&self.pool, sys, x, out);
    }

    fn aprod2(&self, sys: &SparseSystem, y: &[f64], out: &mut [f64]) {
        self.check_aprod2(sys, y, out);
        self.plan.aprod2(&self.pool, sys, y, out);
    }

    fn launch_plan(&self) -> Option<LaunchPlan> {
        Some(self.plan)
    }
}

/// [`AtomicBackend`]'s slow sibling, pinned to the SeqCst CAS-loop flavor;
/// registered as its own backend so the RMW-vs-CAS comparison shows up in
/// benchmark reports the way the compiler comparison does in the paper.
#[derive(Debug, Clone)]
pub struct CasLoopBackend {
    plan: LaunchPlan,
    pool: Arc<ExecutorPool>,
}

impl CasLoopBackend {
    /// Create with explicit tuning.
    pub fn new(tuning: Tuning) -> Self {
        CasLoopBackend {
            plan: LaunchPlan::new(tuning, Aprod2Spec::uniform(Aprod2Strategy::CasLoop)),
            pool: ExecutorPool::shared(tuning.threads),
        }
    }

    /// Create with `threads` workers.
    pub fn with_threads(threads: usize) -> Self {
        CasLoopBackend::new(Tuning::with_threads(threads))
    }
}

impl Backend for CasLoopBackend {
    fn name(&self) -> String {
        tuned_name("casloop", self.plan.tuning)
    }

    fn description(&self) -> &'static str {
        "row-parallel, SeqCst CAS-loop updates (non-RMW compiler fallback)"
    }

    fn aprod1(&self, sys: &SparseSystem, x: &[f64], out: &mut [f64]) {
        self.check_aprod1(sys, x, out);
        self.plan.aprod1(&self.pool, sys, x, out);
    }

    fn aprod2(&self, sys: &SparseSystem, y: &[f64], out: &mut [f64]) {
        self.check_aprod2(sys, y, out);
        self.plan.aprod2(&self.pool, sys, y, out);
    }

    fn launch_plan(&self) -> Option<LaunchPlan> {
        Some(self.plan)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_encode_flavor() {
        assert!(AtomicBackend::with_threads(4).name().starts_with("atomic-"));
        assert!(CasLoopBackend::with_threads(4)
            .name()
            .starts_with("casloop-"));
    }
}
