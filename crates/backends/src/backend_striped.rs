//! Lock-striped backend.

use std::sync::Arc;

use gaia_sparse::SparseSystem;

use crate::exec::ExecutorPool;
use crate::launch::{Aprod2Spec, Aprod2Strategy, LaunchPlan};
use crate::registry::tuned_name;
use crate::traits::Backend;
use crate::tuning::Tuning;

/// Backend that serializes conflicting `aprod2` updates with striped
/// mutexes over the shared column sections.
///
/// Each job first accumulates its row chunk's updates into a local buffer,
/// then takes each stripe lock once and applies the whole batch — the
/// lock-based analogue of software-managed atomics. It exists to make the
/// cost of mutual exclusion (vs. hardware RMW in [`crate::AtomicBackend`]
/// and vs. privatization in [`crate::ReplicatedBackend`]) measurable in
/// the benchmark harness.
#[derive(Debug, Clone)]
pub struct StripedBackend {
    plan: LaunchPlan,
    pool: Arc<ExecutorPool>,
}

impl StripedBackend {
    /// Create with explicit tuning and stripe count.
    pub fn new(tuning: Tuning, stripes: usize) -> Self {
        StripedBackend {
            plan: LaunchPlan::new(
                tuning,
                Aprod2Spec::uniform(Aprod2Strategy::LockStriped {
                    stripes: stripes.max(1),
                }),
            ),
            pool: ExecutorPool::shared(tuning.threads),
        }
    }

    /// Create with `threads` workers and `4 × threads` stripes.
    pub fn with_threads(threads: usize) -> Self {
        StripedBackend::new(Tuning::with_threads(threads), threads.max(1) * 4)
    }
}

impl Backend for StripedBackend {
    fn name(&self) -> String {
        tuned_name("striped", self.plan.tuning)
    }

    fn description(&self) -> &'static str {
        "row-parallel, striped-mutex batched updates"
    }

    fn aprod1(&self, sys: &SparseSystem, x: &[f64], out: &mut [f64]) {
        self.check_aprod1(sys, x, out);
        self.plan.aprod1(&self.pool, sys, x, out);
    }

    fn aprod2(&self, sys: &SparseSystem, y: &[f64], out: &mut [f64]) {
        self.check_aprod2(sys, y, out);
        self.plan.aprod2(&self.pool, sys, y, out);
    }

    fn launch_plan(&self) -> Option<LaunchPlan> {
        Some(self.plan)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend_seq::SeqBackend;
    use gaia_sparse::{Generator, GeneratorConfig, SystemLayout};

    #[test]
    fn single_stripe_still_correct() {
        let sys = Generator::new(GeneratorConfig::new(SystemLayout::tiny()).seed(62)).generate();
        let b = StripedBackend::new(Tuning::with_threads(4), 1);
        let y: Vec<f64> = (0..sys.n_rows()).map(|i| i as f64 * 0.01).collect();
        let seq = SeqBackend;
        let mut want = vec![0.0; sys.n_cols()];
        seq.aprod2(&sys, &y, &mut want);
        let mut got = vec![0.0; sys.n_cols()];
        b.aprod2(&sys, &y, &mut got);
        for (g, w) in got.iter().zip(&want) {
            assert!((g - w).abs() < 1e-10);
        }
    }

    #[test]
    fn oversized_stripe_count_still_correct() {
        let sys = Generator::new(GeneratorConfig::new(SystemLayout::tiny()).seed(63)).generate();
        let b = StripedBackend::new(Tuning::with_threads(3), 10_000);
        let y: Vec<f64> = (0..sys.n_rows()).map(|i| (i as f64 * 0.02).cos()).collect();
        let seq = SeqBackend;
        let mut want = vec![0.0; sys.n_cols()];
        seq.aprod2(&sys, &y, &mut want);
        let mut got = vec![0.0; sys.n_cols()];
        b.aprod2(&sys, &y, &mut got);
        for (g, w) in got.iter().zip(&want) {
            assert!((g - w).abs() < 1e-10);
        }
    }
}
