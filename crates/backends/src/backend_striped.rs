//! Lock-striped backend.

use crossbeam::thread;
use gaia_sparse::system::{ATT_NNZ_PER_ROW, INSTR_NNZ_PER_ROW};
use gaia_sparse::{SparseSystem, ATT_AXES, ATT_PARAMS_PER_AXIS};
use parking_lot::Mutex;

use crate::kernels::{self, split_ranges};
use crate::traits::Backend;
use crate::tuning::Tuning;

/// Backend that serializes conflicting `aprod2` updates with striped
/// mutexes over the shared column sections.
///
/// Each worker first accumulates its row chunk's updates into a small local
/// staging buffer *per stripe*, then takes the stripe lock once and applies
/// the whole batch — the lock-based analogue of software-managed atomics.
/// It exists to make the cost of mutual exclusion (vs. hardware RMW in
/// [`crate::AtomicBackend`] and vs. privatization in
/// [`crate::ReplicatedBackend`]) measurable in the benchmark harness.
#[derive(Debug)]
pub struct StripedBackend {
    tuning: Tuning,
    stripes: usize,
}

impl StripedBackend {
    /// Create with explicit tuning and stripe count.
    pub fn new(tuning: Tuning, stripes: usize) -> Self {
        StripedBackend {
            tuning,
            stripes: stripes.max(1),
        }
    }

    /// Create with `threads` workers and `4 × threads` stripes.
    pub fn with_threads(threads: usize) -> Self {
        StripedBackend::new(Tuning::with_threads(threads), threads.max(1) * 4)
    }
}

impl Backend for StripedBackend {
    fn name(&self) -> String {
        format!("striped-t{}", self.tuning.threads)
    }

    fn description(&self) -> &'static str {
        "row-parallel, striped-mutex batched updates"
    }

    fn aprod1(&self, sys: &SparseSystem, x: &[f64], out: &mut [f64]) {
        self.check_aprod1(sys, x, out);
        let ranges = split_ranges(sys.n_rows(), self.tuning.chunk_count(sys.n_rows()));
        thread::scope(|scope| {
            let mut rest = out;
            for range in ranges {
                let (mine, tail) = rest.split_at_mut(range.len());
                rest = tail;
                scope.spawn(move |_| kernels::aprod1_range(sys, x, range, mine));
            }
        })
        .expect("aprod1 worker panicked");
    }

    fn aprod2(&self, sys: &SparseSystem, y: &[f64], out: &mut [f64]) {
        self.check_aprod2(sys, y, out);
        let c = sys.columns();
        let (astro, shared) = out.split_at_mut(c.att as usize);
        let shared_len = shared.len();
        let n_att = (c.instr - c.att) as usize;
        let dof = sys.layout().n_deg_freedom_att as usize;

        // Stripe geometry over the shared (att + instr + glob) section.
        let n_stripes = self.stripes.min(shared_len.max(1));
        let stripe_ranges = split_ranges(shared_len, n_stripes);
        let stripe_of = |col: usize| -> usize {
            // Near-equal stripes: locate by division, correct by scan.
            let guess = col * n_stripes / shared_len.max(1);
            let mut s = guess.min(n_stripes - 1);
            while col < stripe_ranges[s].start {
                s -= 1;
            }
            while col >= stripe_ranges[s].end {
                s += 1;
            }
            s
        };

        // The shared section is handed out stripe-by-stripe behind mutexes.
        let stripes: Vec<Mutex<&mut [f64]>> = {
            let mut v = Vec::with_capacity(n_stripes);
            let mut rest = shared;
            for r in &stripe_ranges {
                let (mine, tail) = rest.split_at_mut(r.len());
                rest = tail;
                v.push(Mutex::new(mine));
            }
            v
        };

        let n_stars = sys.layout().n_stars as usize;
        let star_ranges = split_ranges(n_stars, self.tuning.chunk_count(n_stars));
        let row_ranges = split_ranges(sys.n_rows(), self.tuning.threads.max(1));

        thread::scope(|scope| {
            let stripes = &stripes;
            let stripe_ranges = &stripe_ranges;
            let stripe_of = &stripe_of;
            let mut astro_rest = astro;
            for stars in star_ranges {
                let (mine, tail) = astro_rest.split_at_mut(stars.len() * 5);
                astro_rest = tail;
                scope.spawn(move |_| kernels::aprod2_astro(sys, y, stars, mine));
            }
            for rows in row_ranges {
                scope.spawn(move |_| {
                    // Stage updates per stripe: (stripe-local col, value).
                    let mut staged: Vec<Vec<(u32, f64)>> = vec![Vec::new(); stripes.len()];
                    let mut stage = |col: usize, v: f64| {
                        if v != 0.0 {
                            let s = stripe_of(col);
                            staged[s].push(((col - stripe_ranges[s].start) as u32, v));
                        }
                    };
                    for row in rows.clone() {
                        let yr = y[row];
                        if yr == 0.0 {
                            continue;
                        }
                        let (vals, off) = sys.att_row(row);
                        for axis in 0..ATT_AXES as usize {
                            let base = axis * dof + off as usize;
                            for k in 0..ATT_PARAMS_PER_AXIS as usize {
                                stage(base + k, vals[axis * 4 + k] * yr);
                            }
                        }
                        if row < sys.n_obs_rows() {
                            let (ivals, icols) = sys.instr_row(row);
                            for k in 0..INSTR_NNZ_PER_ROW {
                                stage(n_att + icols[k] as usize, ivals[k] * yr);
                            }
                            if let Some((gv, _)) = sys.glob_row(row) {
                                stage(shared_len - 1, gv * yr);
                            }
                        }
                    }
                    debug_assert_eq!(ATT_NNZ_PER_ROW, 12);
                    for (s, batch) in staged.into_iter().enumerate() {
                        if batch.is_empty() {
                            continue;
                        }
                        let mut guard = stripes[s].lock();
                        for (col, v) in batch {
                            guard[col as usize] += v;
                        }
                    }
                });
            }
        })
        .expect("aprod2 worker panicked");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend_seq::SeqBackend;
    use gaia_sparse::{Generator, GeneratorConfig, SystemLayout};

    #[test]
    fn striped_matches_seq() {
        let sys = Generator::new(GeneratorConfig::new(SystemLayout::small()).seed(61)).generate();
        let x: Vec<f64> = (0..sys.n_cols()).map(|i| (i as f64 * 0.41).sin()).collect();
        let y: Vec<f64> = (0..sys.n_rows()).map(|i| (i as f64 * 0.43).cos()).collect();
        let seq = SeqBackend;
        let mut want1 = vec![0.0; sys.n_rows()];
        seq.aprod1(&sys, &x, &mut want1);
        let mut want2 = vec![0.0; sys.n_cols()];
        seq.aprod2(&sys, &y, &mut want2);
        for threads in [1, 3, 8] {
            let b = StripedBackend::with_threads(threads);
            let mut got1 = vec![0.0; sys.n_rows()];
            b.aprod1(&sys, &x, &mut got1);
            let mut got2 = vec![0.0; sys.n_cols()];
            b.aprod2(&sys, &y, &mut got2);
            for (g, w) in got1.iter().zip(&want1) {
                assert!((g - w).abs() < 1e-10, "threads={threads}");
            }
            for (g, w) in got2.iter().zip(&want2) {
                assert!((g - w).abs() < 1e-10, "threads={threads}");
            }
        }
    }

    #[test]
    fn single_stripe_still_correct() {
        let sys = Generator::new(GeneratorConfig::new(SystemLayout::tiny()).seed(62)).generate();
        let b = StripedBackend::new(Tuning::with_threads(4), 1);
        let y: Vec<f64> = (0..sys.n_rows()).map(|i| i as f64 * 0.01).collect();
        let seq = SeqBackend;
        let mut want = vec![0.0; sys.n_cols()];
        seq.aprod2(&sys, &y, &mut want);
        let mut got = vec![0.0; sys.n_cols()];
        b.aprod2(&sys, &y, &mut got);
        for (g, w) in got.iter().zip(&want) {
            assert!((g - w).abs() < 1e-10);
        }
    }
}
