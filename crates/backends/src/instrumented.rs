//! [`InstrumentedBackend`]: wrap any [`Backend`] so every `aprod1`/`aprod2`
//! call is timed whole (scheduling + kernels + joins) into the telemetry
//! registry's per-phase cells, complementing the per-(phase, block) cells
//! the kernels record themselves. The wrapper is free when the `telemetry`
//! feature is off — the probes compile to nothing and calls forward
//! straight to the inner backend.

use gaia_sparse::SparseSystem;
use gaia_telemetry::Phase;

use crate::traits::Backend;

const F64: u64 = std::mem::size_of::<f64>() as u64;

/// Analytic estimate of bytes one full `aprod1` touches: every stored
/// coefficient and its paired operand read once, every output read and
/// written once.
pub fn aprod1_bytes(sys: &SparseSystem) -> u64 {
    2 * coefficient_count(sys) * F64 + 2 * sys.n_rows() as u64 * F64
}

/// Analytic estimate of bytes one full `aprod2` touches: coefficients and
/// the `y` operand read once per nonzero, plus a read-modify-write of the
/// output slot per nonzero.
pub fn aprod2_bytes(sys: &SparseSystem) -> u64 {
    4 * coefficient_count(sys) * F64
}

fn coefficient_count(sys: &SparseSystem) -> u64 {
    use gaia_sparse::system::{ASTRO_NNZ_PER_ROW, ATT_NNZ_PER_ROW, INSTR_NNZ_PER_ROW};
    let obs = sys.n_obs_rows() as u64;
    let glob = if sys.layout().n_glob_params > 0 {
        obs
    } else {
        0
    };
    obs * (ASTRO_NNZ_PER_ROW + INSTR_NNZ_PER_ROW) as u64
        + sys.n_rows() as u64 * ATT_NNZ_PER_ROW as u64
        + glob
}

/// A [`Backend`] decorator recording whole-call wall time and analytic
/// memory traffic for both sparse products.
pub struct InstrumentedBackend<B> {
    inner: B,
}

impl<B: Backend> InstrumentedBackend<B> {
    /// Wrap `inner`.
    pub fn new(inner: B) -> Self {
        InstrumentedBackend { inner }
    }

    /// The wrapped backend.
    pub fn inner(&self) -> &B {
        &self.inner
    }

    /// Unwrap.
    pub fn into_inner(self) -> B {
        self.inner
    }
}

impl<B: Backend> Backend for InstrumentedBackend<B> {
    fn name(&self) -> String {
        self.inner.name()
    }

    fn description(&self) -> &'static str {
        self.inner.description()
    }

    fn aprod1(&self, sys: &SparseSystem, x: &[f64], out: &mut [f64]) {
        let mut t = gaia_telemetry::call_scope(Phase::Aprod1);
        t.add_bytes(aprod1_bytes(sys));
        self.inner.aprod1(sys, x, out);
    }

    fn aprod2(&self, sys: &SparseSystem, y: &[f64], out: &mut [f64]) {
        let mut t = gaia_telemetry::call_scope(Phase::Aprod2);
        t.add_bytes(aprod2_bytes(sys));
        self.inner.aprod2(sys, y, out);
    }

    fn launch_plan(&self) -> Option<crate::launch::LaunchPlan> {
        self.inner.launch_plan()
    }

    fn nrm2(&self, v: &[f64]) -> f64 {
        self.inner.nrm2(v)
    }

    fn scal(&self, v: &mut [f64], s: f64) {
        self.inner.scal(v, s)
    }

    fn axpy(&self, y: &mut [f64], a: f64, x: &[f64]) {
        self.inner.axpy(y, a, x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend_seq::SeqBackend;
    use gaia_sparse::{Generator, GeneratorConfig, SystemLayout};

    #[test]
    fn wrapper_forwards_results_unchanged() {
        let sys = Generator::new(GeneratorConfig::new(SystemLayout::tiny()).seed(21)).generate();
        let x: Vec<f64> = (0..sys.n_cols()).map(|i| (i as f64 * 0.31).sin()).collect();
        let y: Vec<f64> = (0..sys.n_rows()).map(|i| (i as f64 * 0.37).cos()).collect();
        let plain = SeqBackend;
        let wrapped = InstrumentedBackend::new(SeqBackend);
        assert_eq!(wrapped.name(), plain.name());

        let mut want1 = vec![0.0; sys.n_rows()];
        plain.aprod1(&sys, &x, &mut want1);
        let mut got1 = vec![0.0; sys.n_rows()];
        wrapped.aprod1(&sys, &x, &mut got1);
        assert_eq!(got1, want1);

        let mut want2 = vec![0.0; sys.n_cols()];
        plain.aprod2(&sys, &y, &mut want2);
        let mut got2 = vec![0.0; sys.n_cols()];
        wrapped.aprod2(&sys, &y, &mut got2);
        assert_eq!(got2, want2);

        assert_eq!(wrapped.nrm2(&x), plain.nrm2(&x));
    }

    #[test]
    fn byte_model_scales_with_the_system() {
        let tiny = Generator::new(GeneratorConfig::new(SystemLayout::tiny()).seed(1)).generate();
        let small = Generator::new(GeneratorConfig::new(SystemLayout::small()).seed(1)).generate();
        assert!(aprod1_bytes(&tiny) > 0);
        assert!(aprod2_bytes(&tiny) > 0);
        assert!(aprod1_bytes(&small) > aprod1_bytes(&tiny));
        assert!(aprod2_bytes(&small) > aprod2_bytes(&tiny));
    }

    #[cfg(feature = "telemetry")]
    #[test]
    fn whole_calls_land_in_the_phase_cells() {
        let sys = Generator::new(GeneratorConfig::new(SystemLayout::tiny()).seed(22)).generate();
        let x: Vec<f64> = vec![1.0; sys.n_cols()];
        let y: Vec<f64> = vec![1.0; sys.n_rows()];
        let wrapped = InstrumentedBackend::new(SeqBackend);
        gaia_telemetry::reset();
        let mut out1 = vec![0.0; sys.n_rows()];
        wrapped.aprod1(&sys, &x, &mut out1);
        let mut out2 = vec![0.0; sys.n_cols()];
        wrapped.aprod2(&sys, &y, &mut out2);
        let snap = gaia_telemetry::snapshot();
        assert_eq!(snap.calls.len(), 2);
        let a1 = snap.calls.iter().find(|c| c.phase == "aprod1").unwrap();
        assert_eq!(a1.calls, 1);
        assert_eq!(a1.bytes, aprod1_bytes(&sys));
        // The per-kernel cells saw the same call, broken down by block.
        assert!(snap
            .kernels
            .iter()
            .any(|c| c.phase == "aprod1" && c.block == "astro"));
        assert!(snap
            .kernels
            .iter()
            .any(|c| c.phase == "aprod2" && c.block == "att"));
        gaia_telemetry::reset();
    }
}
