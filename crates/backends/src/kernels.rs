//! Per-block sequential kernels.
//!
//! These are the Rust equivalents of the production
//! `aprod{1,2}_Kernel_{astro,att,instr,glob}()` CUDA kernels (§IV). Each
//! kernel processes a *range* of rows (or stars) and writes into a
//! *block-local* output slice, so parallel backends can hand disjoint
//! ranges/sections to different threads without synchronization where the
//! structure permits, and add their own conflict strategy where it does not.
//!
//! Output indexing conventions:
//! * `aprod1_*`: `out[i]` accumulates row `rows.start + i`.
//! * `aprod2_astro`: `out` covers astrometric columns
//!   `5·stars.start .. 5·stars.end` (always collision-free across stars).
//! * `aprod2_att` / `aprod2_instr` / `aprod2_glob`: `out` covers the whole
//!   block section in block-local coordinates; different rows may collide.
//! * `aprod2_att_owned` / `aprod2_instr_owned`: owner-computes variants that
//!   scan rows but only write columns inside an owned block-local range.

use std::ops::Range;

use gaia_sparse::system::{ASTRO_NNZ_PER_ROW, ATT_NNZ_PER_ROW, INSTR_NNZ_PER_ROW};
use gaia_sparse::{SparseSystem, ATT_AXES, ATT_PARAMS_PER_AXIS};
use gaia_telemetry::{Block, Phase};

const F64: u64 = std::mem::size_of::<f64>() as u64;

/// `out[i] += astro_row(rows.start+i) · x_astro_slice` for observation rows.
pub fn aprod1_astro(sys: &SparseSystem, x: &[f64], rows: Range<usize>, out: &mut [f64]) {
    debug_assert!(rows.end <= sys.n_obs_rows());
    debug_assert_eq!(out.len(), rows.len());
    let mut t = gaia_telemetry::kernel_scope(Phase::Aprod1, Block::Astro);
    t.add_bytes(rows.len() as u64 * (2 * ASTRO_NNZ_PER_ROW as u64 + 2) * F64);
    for (i, row) in rows.enumerate() {
        let (vals, start) = sys.astro_row(row);
        let xs = &x[start as usize..start as usize + ASTRO_NNZ_PER_ROW];
        let mut acc = 0.0;
        for k in 0..ASTRO_NNZ_PER_ROW {
            acc += vals[k] * xs[k];
        }
        out[i] += acc;
    }
}

/// Attitude part of `aprod1` for any row range (observations + constraints).
pub fn aprod1_att(sys: &SparseSystem, x: &[f64], rows: Range<usize>, out: &mut [f64]) {
    debug_assert!(rows.end <= sys.n_rows());
    debug_assert_eq!(out.len(), rows.len());
    let mut t = gaia_telemetry::kernel_scope(Phase::Aprod1, Block::Att);
    t.add_bytes(rows.len() as u64 * (2 * ATT_NNZ_PER_ROW as u64 + 2) * F64);
    let dof = sys.layout().n_deg_freedom_att as usize;
    let att_base = sys.columns().att as usize;
    for (i, row) in rows.enumerate() {
        let (vals, off) = sys.att_row(row);
        let mut acc = 0.0;
        for axis in 0..ATT_AXES as usize {
            let base = att_base + axis * dof + off as usize;
            for k in 0..ATT_PARAMS_PER_AXIS as usize {
                acc += vals[axis * ATT_PARAMS_PER_AXIS as usize + k] * x[base + k];
            }
        }
        out[i] += acc;
    }
}

/// Instrumental part of `aprod1` for observation rows.
pub fn aprod1_instr(sys: &SparseSystem, x: &[f64], rows: Range<usize>, out: &mut [f64]) {
    debug_assert!(rows.end <= sys.n_obs_rows());
    debug_assert_eq!(out.len(), rows.len());
    let mut t = gaia_telemetry::kernel_scope(Phase::Aprod1, Block::Instr);
    t.add_bytes(rows.len() as u64 * (2 * INSTR_NNZ_PER_ROW as u64 + 2) * F64);
    let instr_base = sys.columns().instr as usize;
    for (i, row) in rows.enumerate() {
        let (vals, cols) = sys.instr_row(row);
        let mut acc = 0.0;
        for k in 0..INSTR_NNZ_PER_ROW {
            acc += vals[k] * x[instr_base + cols[k] as usize];
        }
        out[i] += acc;
    }
}

/// Global part of `aprod1` for observation rows (no-op when the layout has
/// no global parameter).
pub fn aprod1_glob(sys: &SparseSystem, x: &[f64], rows: Range<usize>, out: &mut [f64]) {
    debug_assert!(rows.end <= sys.n_obs_rows());
    debug_assert_eq!(out.len(), rows.len());
    if sys.layout().n_glob_params == 0 {
        return;
    }
    let mut t = gaia_telemetry::kernel_scope(Phase::Aprod1, Block::Glob);
    t.add_bytes(rows.len() as u64 * 3 * F64 + F64);
    let glob_col = sys.columns().glob as usize;
    let xg = x[glob_col];
    let glob = sys.values_glob();
    for (i, row) in rows.enumerate() {
        out[i] += glob[row] * xg;
    }
}

/// Full `aprod1` over a row range into an aligned output slice.
pub fn aprod1_range(sys: &SparseSystem, x: &[f64], rows: Range<usize>, out: &mut [f64]) {
    let obs_end = rows.end.min(sys.n_obs_rows());
    if rows.start < obs_end {
        let obs = rows.start..obs_end;
        let n = obs.len();
        aprod1_astro(sys, x, obs.clone(), &mut out[..n]);
        aprod1_instr(sys, x, obs.clone(), &mut out[..n]);
        aprod1_glob(sys, x, obs, &mut out[..n]);
    }
    aprod1_att(sys, x, rows, out);
}

/// Astrometric `aprod2`, parallel-safe across stars: for each star in
/// `stars`, accumulate the contributions of all its observation rows into
/// the star's 5 columns. `out` covers columns `5·stars.start..5·stars.end`.
pub fn aprod2_astro(sys: &SparseSystem, y: &[f64], stars: Range<usize>, out: &mut [f64]) {
    debug_assert_eq!(out.len(), stars.len() * ASTRO_NNZ_PER_ROW);
    let layout = *sys.layout();
    let mut t = gaia_telemetry::kernel_scope(Phase::Aprod2, Block::Astro);
    let rows_covered = if stars.is_empty() {
        0
    } else {
        layout.rows_of_star(stars.end as u64 - 1).end
            - layout.rows_of_star(stars.start as u64).start
    };
    t.add_bytes(
        rows_covered * (ASTRO_NNZ_PER_ROW as u64 + 1) * F64
            + stars.len() as u64 * 2 * ASTRO_NNZ_PER_ROW as u64 * F64,
    );
    for (si, star) in stars.enumerate() {
        let slot = &mut out[si * ASTRO_NNZ_PER_ROW..(si + 1) * ASTRO_NNZ_PER_ROW];
        for row in layout.rows_of_star(star as u64) {
            let (vals, _) = sys.astro_row(row as usize);
            let yr = y[row as usize];
            for k in 0..ASTRO_NNZ_PER_ROW {
                slot[k] += vals[k] * yr;
            }
        }
    }
}

/// Attitude `aprod2` over a row range into the full block-local attitude
/// section. Different rows may write the same columns; the caller must
/// ensure exclusive access to `out` (serial, owned copy, or a lock).
pub fn aprod2_att(sys: &SparseSystem, y: &[f64], rows: Range<usize>, out: &mut [f64]) {
    debug_assert_eq!(out.len() as u64, sys.layout().n_att_cols());
    let mut t = gaia_telemetry::kernel_scope(Phase::Aprod2, Block::Att);
    t.add_bytes(rows.len() as u64 * (3 * ATT_NNZ_PER_ROW as u64 + 1) * F64);
    let dof = sys.layout().n_deg_freedom_att as usize;
    for row in rows {
        let yr = y[row];
        if yr == 0.0 {
            continue;
        }
        let (vals, off) = sys.att_row(row);
        for axis in 0..ATT_AXES as usize {
            let base = axis * dof + off as usize;
            for k in 0..ATT_PARAMS_PER_AXIS as usize {
                out[base + k] += vals[axis * ATT_PARAMS_PER_AXIS as usize + k] * yr;
            }
        }
    }
}

/// Attitude `aprod2`, owner-computes: scan `rows` but only update columns in
/// the owned block-local range. `out.len() == own.len()`.
pub fn aprod2_att_owned(
    sys: &SparseSystem,
    y: &[f64],
    rows: Range<usize>,
    own: Range<usize>,
    out: &mut [f64],
) {
    debug_assert_eq!(out.len(), own.len());
    let mut t = gaia_telemetry::kernel_scope(Phase::Aprod2, Block::Att);
    t.add_bytes(
        rows.len() as u64 * (ATT_NNZ_PER_ROW as u64 + 1) * F64 + own.len() as u64 * 2 * F64,
    );
    let dof = sys.layout().n_deg_freedom_att as usize;
    for row in rows {
        let yr = y[row];
        if yr == 0.0 {
            continue;
        }
        let (vals, off) = sys.att_row(row);
        for axis in 0..ATT_AXES as usize {
            let base = axis * dof + off as usize;
            for k in 0..ATT_PARAMS_PER_AXIS as usize {
                let col = base + k;
                if col >= own.start && col < own.end {
                    out[col - own.start] += vals[axis * ATT_PARAMS_PER_AXIS as usize + k] * yr;
                }
            }
        }
    }
}

/// Instrumental `aprod2` over a row range into the full block-local
/// instrument section (exclusive access required).
pub fn aprod2_instr(sys: &SparseSystem, y: &[f64], rows: Range<usize>, out: &mut [f64]) {
    debug_assert!(rows.end <= sys.n_obs_rows());
    debug_assert_eq!(out.len() as u64, sys.layout().n_instr_params);
    let mut t = gaia_telemetry::kernel_scope(Phase::Aprod2, Block::Instr);
    t.add_bytes(rows.len() as u64 * (3 * INSTR_NNZ_PER_ROW as u64 + 1) * F64);
    for row in rows {
        let yr = y[row];
        if yr == 0.0 {
            continue;
        }
        let (vals, cols) = sys.instr_row(row);
        for k in 0..INSTR_NNZ_PER_ROW {
            out[cols[k] as usize] += vals[k] * yr;
        }
    }
}

/// Instrumental `aprod2`, owner-computes over a block-local column range.
pub fn aprod2_instr_owned(
    sys: &SparseSystem,
    y: &[f64],
    rows: Range<usize>,
    own: Range<usize>,
    out: &mut [f64],
) {
    debug_assert!(rows.end <= sys.n_obs_rows());
    debug_assert_eq!(out.len(), own.len());
    let mut t = gaia_telemetry::kernel_scope(Phase::Aprod2, Block::Instr);
    t.add_bytes(
        rows.len() as u64 * (INSTR_NNZ_PER_ROW as u64 + 1) * F64 + own.len() as u64 * 2 * F64,
    );
    for row in rows {
        let yr = y[row];
        if yr == 0.0 {
            continue;
        }
        let (vals, cols) = sys.instr_row(row);
        for k in 0..INSTR_NNZ_PER_ROW {
            let col = cols[k] as usize;
            if col >= own.start && col < own.end {
                out[col - own.start] += vals[k] * yr;
            }
        }
    }
}

/// Global `aprod2` over a row range: a plain reduction into the single
/// global slot.
///
/// The fold continues from the *incoming* `out[0]` in ascending row
/// order (rather than reducing into a fresh local and adding once), so
/// splitting a row range into consecutive sub-ranges — as the out-of-core
/// tiled operator does — produces the exact same accumulation chain and
/// therefore a bitwise-identical result. For a zeroed `out` the two
/// formulations coincide, so resident solves are unchanged.
pub fn aprod2_glob(sys: &SparseSystem, y: &[f64], rows: Range<usize>, out: &mut [f64]) {
    debug_assert!(rows.end <= sys.n_obs_rows());
    if sys.layout().n_glob_params == 0 {
        return;
    }
    debug_assert_eq!(out.len(), 1);
    let mut t = gaia_telemetry::kernel_scope(Phase::Aprod2, Block::Glob);
    t.add_bytes(rows.len() as u64 * 2 * F64 + 2 * F64);
    let glob = sys.values_glob();
    let mut acc = out[0];
    for row in rows {
        acc += glob[row] * y[row];
    }
    out[0] = acc;
}

// ---------------------------------------------------------------------------
// Kernel variants.
//
// The scalar kernels above are the reference. The paper's tuning study
// (§V) shows the fixed 5/12/6-nnz row patterns reward interiors shaped
// for the hardware; these variants exploit that structure three ways,
// all selectable per launch plan (`KernelVariant` / `MatrixLayout` in
// `crate::launch`):
//
// * `*_unrolled` — explicit unroll of the fixed-width inner loops via
//   slice patterns. The accumulation chain is kept in exactly the scalar
//   order, so on deterministic schedules the results are bit-identical
//   to the scalar kernels (asserted by the equivalence tests).
// * `*_ell` — read the slot-major ELL mirror (`SparseSystem::ell`)
//   instead of the row-major arrays: slot `k` of consecutive rows is
//   contiguous, turning each inner loop into 5/12/6 parallel sequential
//   streams. Arithmetic order is unchanged → also bit-identical.
// * `aprod2_att_blocked*` — cache-blocked attitude accumulation: rows
//   are processed in tiles and each tile sweeps axis-by-axis, so one
//   axis segment of `out` stays hot while the tile's `y` values are
//   reused from L1. This reassociates the per-column sums (tile-order
//   instead of row-order), so it is deterministic but *not* bitwise
//   equal to scalar; equivalence is asserted to 1e-12.
// ---------------------------------------------------------------------------

/// Row tile for the cache-blocked attitude `aprod2` variants: big enough
/// to amortize the per-tile axis sweep, small enough that a tile's `y`
/// slice (1 KiB) and its 12 coefficient rows stay in L1.
pub const ATT_BLOCK_TILE: usize = 128;

/// Unrolled [`aprod1_astro`]: the 5-wide contiguous gather as one slice
/// pattern. Bitwise-identical accumulation order.
pub fn aprod1_astro_unrolled(sys: &SparseSystem, x: &[f64], rows: Range<usize>, out: &mut [f64]) {
    debug_assert!(rows.end <= sys.n_obs_rows());
    debug_assert_eq!(out.len(), rows.len());
    let mut t = gaia_telemetry::kernel_scope(Phase::Aprod1, Block::Astro);
    t.add_bytes(rows.len() as u64 * (2 * ASTRO_NNZ_PER_ROW as u64 + 2) * F64);
    for (i, row) in rows.enumerate() {
        let (vals, start) = sys.astro_row(row);
        let xs = &x[start as usize..start as usize + ASTRO_NNZ_PER_ROW];
        // Row slices are exactly 5 wide by construction.
        let (&[v0, v1, v2, v3, v4], &[x0, x1, x2, x3, x4]) = (vals, xs) else {
            continue;
        };
        let mut acc = 0.0;
        acc += v0 * x0;
        acc += v1 * x1;
        acc += v2 * x2;
        acc += v3 * x3;
        acc += v4 * x4;
        out[i] += acc;
    }
}

/// Unrolled [`aprod1_att`]: the 3×4 strided gather with all twelve
/// products spelled out in scalar order.
pub fn aprod1_att_unrolled(sys: &SparseSystem, x: &[f64], rows: Range<usize>, out: &mut [f64]) {
    debug_assert!(rows.end <= sys.n_rows());
    debug_assert_eq!(out.len(), rows.len());
    let mut t = gaia_telemetry::kernel_scope(Phase::Aprod1, Block::Att);
    t.add_bytes(rows.len() as u64 * (2 * ATT_NNZ_PER_ROW as u64 + 2) * F64);
    let dof = sys.layout().n_deg_freedom_att as usize;
    let att_base = sys.columns().att as usize;
    for (i, row) in rows.enumerate() {
        let (vals, off) = sys.att_row(row);
        let &[a0, a1, a2, a3, b0, b1, b2, b3, c0, c1, c2, c3] = vals else {
            continue;
        };
        let base0 = att_base + off as usize;
        let base1 = base0 + dof;
        let base2 = base1 + dof;
        let mut acc = 0.0;
        acc += a0 * x[base0];
        acc += a1 * x[base0 + 1];
        acc += a2 * x[base0 + 2];
        acc += a3 * x[base0 + 3];
        acc += b0 * x[base1];
        acc += b1 * x[base1 + 1];
        acc += b2 * x[base1 + 2];
        acc += b3 * x[base1 + 3];
        acc += c0 * x[base2];
        acc += c1 * x[base2 + 1];
        acc += c2 * x[base2 + 2];
        acc += c3 * x[base2 + 3];
        out[i] += acc;
    }
}

/// Unrolled [`aprod1_instr`]: the 6 irregular gathers spelled out.
pub fn aprod1_instr_unrolled(sys: &SparseSystem, x: &[f64], rows: Range<usize>, out: &mut [f64]) {
    debug_assert!(rows.end <= sys.n_obs_rows());
    debug_assert_eq!(out.len(), rows.len());
    let mut t = gaia_telemetry::kernel_scope(Phase::Aprod1, Block::Instr);
    t.add_bytes(rows.len() as u64 * (2 * INSTR_NNZ_PER_ROW as u64 + 2) * F64);
    let instr_base = sys.columns().instr as usize;
    for (i, row) in rows.enumerate() {
        let (vals, cols) = sys.instr_row(row);
        let (&[v0, v1, v2, v3, v4, v5], &[c0, c1, c2, c3, c4, c5]) = (vals, cols) else {
            continue;
        };
        let mut acc = 0.0;
        acc += v0 * x[instr_base + c0 as usize];
        acc += v1 * x[instr_base + c1 as usize];
        acc += v2 * x[instr_base + c2 as usize];
        acc += v3 * x[instr_base + c3 as usize];
        acc += v4 * x[instr_base + c4 as usize];
        acc += v5 * x[instr_base + c5 as usize];
        out[i] += acc;
    }
}

/// Full unrolled `aprod1` over a row range (glob reuses the scalar kernel:
/// one multiply per row leaves nothing to unroll).
pub fn aprod1_range_unrolled(sys: &SparseSystem, x: &[f64], rows: Range<usize>, out: &mut [f64]) {
    let obs_end = rows.end.min(sys.n_obs_rows());
    if rows.start < obs_end {
        let obs = rows.start..obs_end;
        let n = obs.len();
        aprod1_astro_unrolled(sys, x, obs.clone(), &mut out[..n]);
        aprod1_instr_unrolled(sys, x, obs.clone(), &mut out[..n]);
        aprod1_glob(sys, x, obs, &mut out[..n]);
    }
    aprod1_att_unrolled(sys, x, rows, out);
}

/// ELL-layout [`aprod1_astro`]: five slot-major streams instead of one
/// row-major gather. Same accumulation order as scalar.
pub fn aprod1_astro_ell(sys: &SparseSystem, x: &[f64], rows: Range<usize>, out: &mut [f64]) {
    debug_assert!(rows.end <= sys.n_obs_rows());
    debug_assert_eq!(out.len(), rows.len());
    let mut t = gaia_telemetry::kernel_scope(Phase::Aprod1, Block::Astro);
    t.add_bytes(rows.len() as u64 * (2 * ASTRO_NNZ_PER_ROW as u64 + 2) * F64);
    let ell = sys.ell();
    let (s0, s1, s2, s3, s4) = (
        ell.astro_slot(0),
        ell.astro_slot(1),
        ell.astro_slot(2),
        ell.astro_slot(3),
        ell.astro_slot(4),
    );
    let idx = ell.matrix_index_astro();
    let astro_base = sys.columns().astro as usize;
    for (i, row) in rows.enumerate() {
        let start = astro_base + idx[row] as usize;
        let mut acc = 0.0;
        acc += s0[row] * x[start];
        acc += s1[row] * x[start + 1];
        acc += s2[row] * x[start + 2];
        acc += s3[row] * x[start + 3];
        acc += s4[row] * x[start + 4];
        out[i] += acc;
    }
}

/// ELL-layout [`aprod1_att`]: twelve slot-major streams.
pub fn aprod1_att_ell(sys: &SparseSystem, x: &[f64], rows: Range<usize>, out: &mut [f64]) {
    debug_assert!(rows.end <= sys.n_rows());
    debug_assert_eq!(out.len(), rows.len());
    let mut t = gaia_telemetry::kernel_scope(Phase::Aprod1, Block::Att);
    t.add_bytes(rows.len() as u64 * (2 * ATT_NNZ_PER_ROW as u64 + 2) * F64);
    let ell = sys.ell();
    let slots: [&[f64]; ATT_NNZ_PER_ROW] = std::array::from_fn(|k| ell.att_slot(k));
    let offs = ell.matrix_index_att();
    let dof = sys.layout().n_deg_freedom_att as usize;
    let att_base = sys.columns().att as usize;
    for (i, row) in rows.enumerate() {
        let off = offs[row] as usize;
        let mut acc = 0.0;
        for axis in 0..ATT_AXES as usize {
            let base = att_base + axis * dof + off;
            for k in 0..ATT_PARAMS_PER_AXIS as usize {
                acc += slots[axis * ATT_PARAMS_PER_AXIS as usize + k][row] * x[base + k];
            }
        }
        out[i] += acc;
    }
}

/// ELL-layout [`aprod1_instr`]: six value streams plus six column streams.
pub fn aprod1_instr_ell(sys: &SparseSystem, x: &[f64], rows: Range<usize>, out: &mut [f64]) {
    debug_assert!(rows.end <= sys.n_obs_rows());
    debug_assert_eq!(out.len(), rows.len());
    let mut t = gaia_telemetry::kernel_scope(Phase::Aprod1, Block::Instr);
    t.add_bytes(rows.len() as u64 * (2 * INSTR_NNZ_PER_ROW as u64 + 2) * F64);
    let ell = sys.ell();
    let vals: [&[f64]; INSTR_NNZ_PER_ROW] = std::array::from_fn(|k| ell.instr_slot(k));
    let cols: [&[u32]; INSTR_NNZ_PER_ROW] = std::array::from_fn(|k| ell.instr_col_slot(k));
    let instr_base = sys.columns().instr as usize;
    for (i, row) in rows.enumerate() {
        let mut acc = 0.0;
        for k in 0..INSTR_NNZ_PER_ROW {
            acc += vals[k][row] * x[instr_base + cols[k][row] as usize];
        }
        out[i] += acc;
    }
}

/// Full ELL-layout `aprod1` over a row range.
pub fn aprod1_range_ell(sys: &SparseSystem, x: &[f64], rows: Range<usize>, out: &mut [f64]) {
    let obs_end = rows.end.min(sys.n_obs_rows());
    if rows.start < obs_end {
        let obs = rows.start..obs_end;
        let n = obs.len();
        aprod1_astro_ell(sys, x, obs.clone(), &mut out[..n]);
        aprod1_instr_ell(sys, x, obs.clone(), &mut out[..n]);
        aprod1_glob(sys, x, obs, &mut out[..n]);
    }
    aprod1_att_ell(sys, x, rows, out);
}

/// Unrolled [`aprod2_astro`].
pub fn aprod2_astro_unrolled(sys: &SparseSystem, y: &[f64], stars: Range<usize>, out: &mut [f64]) {
    debug_assert_eq!(out.len(), stars.len() * ASTRO_NNZ_PER_ROW);
    let layout = *sys.layout();
    let mut t = gaia_telemetry::kernel_scope(Phase::Aprod2, Block::Astro);
    let rows_covered = if stars.is_empty() {
        0
    } else {
        layout.rows_of_star(stars.end as u64 - 1).end
            - layout.rows_of_star(stars.start as u64).start
    };
    t.add_bytes(
        rows_covered * (ASTRO_NNZ_PER_ROW as u64 + 1) * F64
            + stars.len() as u64 * 2 * ASTRO_NNZ_PER_ROW as u64 * F64,
    );
    for (si, star) in stars.enumerate() {
        let slot = &mut out[si * ASTRO_NNZ_PER_ROW..(si + 1) * ASTRO_NNZ_PER_ROW];
        let &mut [ref mut o0, ref mut o1, ref mut o2, ref mut o3, ref mut o4] = slot else {
            continue;
        };
        for row in layout.rows_of_star(star as u64) {
            let (vals, _) = sys.astro_row(row as usize);
            let &[v0, v1, v2, v3, v4] = vals else {
                continue;
            };
            let yr = y[row as usize];
            *o0 += v0 * yr;
            *o1 += v1 * yr;
            *o2 += v2 * yr;
            *o3 += v3 * yr;
            *o4 += v4 * yr;
        }
    }
}

/// ELL-layout [`aprod2_astro`]: the five per-slot streams are read
/// column-major while the per-star accumulation order stays scalar.
pub fn aprod2_astro_ell(sys: &SparseSystem, y: &[f64], stars: Range<usize>, out: &mut [f64]) {
    debug_assert_eq!(out.len(), stars.len() * ASTRO_NNZ_PER_ROW);
    let layout = *sys.layout();
    let mut t = gaia_telemetry::kernel_scope(Phase::Aprod2, Block::Astro);
    let rows_covered = if stars.is_empty() {
        0
    } else {
        layout.rows_of_star(stars.end as u64 - 1).end
            - layout.rows_of_star(stars.start as u64).start
    };
    t.add_bytes(
        rows_covered * (ASTRO_NNZ_PER_ROW as u64 + 1) * F64
            + stars.len() as u64 * 2 * ASTRO_NNZ_PER_ROW as u64 * F64,
    );
    let ell = sys.ell();
    let slots: [&[f64]; ASTRO_NNZ_PER_ROW] = std::array::from_fn(|k| ell.astro_slot(k));
    for (si, star) in stars.enumerate() {
        let slot = &mut out[si * ASTRO_NNZ_PER_ROW..(si + 1) * ASTRO_NNZ_PER_ROW];
        for row in layout.rows_of_star(star as u64) {
            let yr = y[row as usize];
            for k in 0..ASTRO_NNZ_PER_ROW {
                slot[k] += slots[k][row as usize] * yr;
            }
        }
    }
}

/// Unrolled [`aprod2_att`] (full section, exclusive access).
pub fn aprod2_att_unrolled(sys: &SparseSystem, y: &[f64], rows: Range<usize>, out: &mut [f64]) {
    debug_assert_eq!(out.len() as u64, sys.layout().n_att_cols());
    let mut t = gaia_telemetry::kernel_scope(Phase::Aprod2, Block::Att);
    t.add_bytes(rows.len() as u64 * (3 * ATT_NNZ_PER_ROW as u64 + 1) * F64);
    let dof = sys.layout().n_deg_freedom_att as usize;
    for row in rows {
        let yr = y[row];
        if yr == 0.0 {
            continue;
        }
        let (vals, off) = sys.att_row(row);
        let &[a0, a1, a2, a3, b0, b1, b2, b3, c0, c1, c2, c3] = vals else {
            continue;
        };
        let base0 = off as usize;
        let base1 = base0 + dof;
        let base2 = base1 + dof;
        out[base0] += a0 * yr;
        out[base0 + 1] += a1 * yr;
        out[base0 + 2] += a2 * yr;
        out[base0 + 3] += a3 * yr;
        out[base1] += b0 * yr;
        out[base1 + 1] += b1 * yr;
        out[base1 + 2] += b2 * yr;
        out[base1 + 3] += b3 * yr;
        out[base2] += c0 * yr;
        out[base2 + 1] += c1 * yr;
        out[base2 + 2] += c2 * yr;
        out[base2 + 3] += c3 * yr;
    }
}

/// Unrolled [`aprod2_att_owned`].
pub fn aprod2_att_owned_unrolled(
    sys: &SparseSystem,
    y: &[f64],
    rows: Range<usize>,
    own: Range<usize>,
    out: &mut [f64],
) {
    debug_assert_eq!(out.len(), own.len());
    let mut t = gaia_telemetry::kernel_scope(Phase::Aprod2, Block::Att);
    t.add_bytes(
        rows.len() as u64 * (ATT_NNZ_PER_ROW as u64 + 1) * F64 + own.len() as u64 * 2 * F64,
    );
    let dof = sys.layout().n_deg_freedom_att as usize;
    for row in rows {
        let yr = y[row];
        if yr == 0.0 {
            continue;
        }
        let (vals, off) = sys.att_row(row);
        let &[a0, a1, a2, a3, b0, b1, b2, b3, c0, c1, c2, c3] = vals else {
            continue;
        };
        let axes = [[a0, a1, a2, a3], [b0, b1, b2, b3], [c0, c1, c2, c3]];
        for (axis, vs) in axes.iter().enumerate() {
            let base = axis * dof + off as usize;
            // An axis window is 4 contiguous columns: clip it against the
            // owned range once instead of testing each column.
            let lo = base.max(own.start);
            let hi = (base + ATT_PARAMS_PER_AXIS as usize).min(own.end);
            for col in lo..hi {
                out[col - own.start] += vs[col - base] * yr;
            }
        }
    }
}

/// ELL-layout [`aprod2_att`] (full section, exclusive access).
pub fn aprod2_att_ell(sys: &SparseSystem, y: &[f64], rows: Range<usize>, out: &mut [f64]) {
    debug_assert_eq!(out.len() as u64, sys.layout().n_att_cols());
    let mut t = gaia_telemetry::kernel_scope(Phase::Aprod2, Block::Att);
    t.add_bytes(rows.len() as u64 * (3 * ATT_NNZ_PER_ROW as u64 + 1) * F64);
    let ell = sys.ell();
    let slots: [&[f64]; ATT_NNZ_PER_ROW] = std::array::from_fn(|k| ell.att_slot(k));
    let offs = ell.matrix_index_att();
    let dof = sys.layout().n_deg_freedom_att as usize;
    for row in rows {
        let yr = y[row];
        if yr == 0.0 {
            continue;
        }
        let off = offs[row] as usize;
        for axis in 0..ATT_AXES as usize {
            let base = axis * dof + off;
            for k in 0..ATT_PARAMS_PER_AXIS as usize {
                out[base + k] += slots[axis * ATT_PARAMS_PER_AXIS as usize + k][row] * yr;
            }
        }
    }
}

/// ELL-layout [`aprod2_att_owned`].
pub fn aprod2_att_owned_ell(
    sys: &SparseSystem,
    y: &[f64],
    rows: Range<usize>,
    own: Range<usize>,
    out: &mut [f64],
) {
    debug_assert_eq!(out.len(), own.len());
    let mut t = gaia_telemetry::kernel_scope(Phase::Aprod2, Block::Att);
    t.add_bytes(
        rows.len() as u64 * (ATT_NNZ_PER_ROW as u64 + 1) * F64 + own.len() as u64 * 2 * F64,
    );
    let ell = sys.ell();
    let slots: [&[f64]; ATT_NNZ_PER_ROW] = std::array::from_fn(|k| ell.att_slot(k));
    let offs = ell.matrix_index_att();
    let dof = sys.layout().n_deg_freedom_att as usize;
    for row in rows {
        let yr = y[row];
        if yr == 0.0 {
            continue;
        }
        let off = offs[row] as usize;
        for axis in 0..ATT_AXES as usize {
            let base = axis * dof + off;
            for k in 0..ATT_PARAMS_PER_AXIS as usize {
                let col = base + k;
                if col >= own.start && col < own.end {
                    out[col - own.start] +=
                        slots[axis * ATT_PARAMS_PER_AXIS as usize + k][row] * yr;
                }
            }
        }
    }
}

/// Cache-blocked [`aprod2_att`]: rows in [`ATT_BLOCK_TILE`]-sized tiles,
/// each tile swept axis-by-axis so one axis segment of `out` stays hot.
/// Deterministic but reassociated (tile-order sums) — 1e-12-equivalent to
/// scalar, not bitwise.
pub fn aprod2_att_blocked(sys: &SparseSystem, y: &[f64], rows: Range<usize>, out: &mut [f64]) {
    debug_assert_eq!(out.len() as u64, sys.layout().n_att_cols());
    let mut t = gaia_telemetry::kernel_scope(Phase::Aprod2, Block::Att);
    t.add_bytes(rows.len() as u64 * (3 * ATT_NNZ_PER_ROW as u64 + 1) * F64);
    let dof = sys.layout().n_deg_freedom_att as usize;
    let mut start = rows.start;
    while start < rows.end {
        let end = (start + ATT_BLOCK_TILE).min(rows.end);
        for axis in 0..ATT_AXES as usize {
            for (row, &yr) in (start..end).zip(&y[start..end]) {
                if yr == 0.0 {
                    continue;
                }
                let (vals, off) = sys.att_row(row);
                let base = axis * dof + off as usize;
                let v = &vals[axis * ATT_PARAMS_PER_AXIS as usize..];
                let &[v0, v1, v2, v3, ..] = v else {
                    continue;
                };
                out[base] += v0 * yr;
                out[base + 1] += v1 * yr;
                out[base + 2] += v2 * yr;
                out[base + 3] += v3 * yr;
            }
        }
        start = end;
    }
}

/// Cache-blocked [`aprod2_att_owned`]: tile + axis sweep with the owned
/// column filter.
pub fn aprod2_att_owned_blocked(
    sys: &SparseSystem,
    y: &[f64],
    rows: Range<usize>,
    own: Range<usize>,
    out: &mut [f64],
) {
    debug_assert_eq!(out.len(), own.len());
    let mut t = gaia_telemetry::kernel_scope(Phase::Aprod2, Block::Att);
    t.add_bytes(
        rows.len() as u64 * (ATT_NNZ_PER_ROW as u64 + 1) * F64 + own.len() as u64 * 2 * F64,
    );
    let dof = sys.layout().n_deg_freedom_att as usize;
    let mut start = rows.start;
    while start < rows.end {
        let end = (start + ATT_BLOCK_TILE).min(rows.end);
        for axis in 0..ATT_AXES as usize {
            for (row, &yr) in (start..end).zip(&y[start..end]) {
                if yr == 0.0 {
                    continue;
                }
                let (vals, off) = sys.att_row(row);
                let base = axis * dof + off as usize;
                let lo = base.max(own.start);
                let hi = (base + ATT_PARAMS_PER_AXIS as usize).min(own.end);
                for col in lo..hi {
                    out[col - own.start] +=
                        vals[axis * ATT_PARAMS_PER_AXIS as usize + (col - base)] * yr;
                }
            }
        }
        start = end;
    }
}

/// Unrolled [`aprod2_instr`] (full section, exclusive access).
pub fn aprod2_instr_unrolled(sys: &SparseSystem, y: &[f64], rows: Range<usize>, out: &mut [f64]) {
    debug_assert!(rows.end <= sys.n_obs_rows());
    debug_assert_eq!(out.len() as u64, sys.layout().n_instr_params);
    let mut t = gaia_telemetry::kernel_scope(Phase::Aprod2, Block::Instr);
    t.add_bytes(rows.len() as u64 * (3 * INSTR_NNZ_PER_ROW as u64 + 1) * F64);
    for row in rows {
        let yr = y[row];
        if yr == 0.0 {
            continue;
        }
        let (vals, cols) = sys.instr_row(row);
        let (&[v0, v1, v2, v3, v4, v5], &[c0, c1, c2, c3, c4, c5]) = (vals, cols) else {
            continue;
        };
        out[c0 as usize] += v0 * yr;
        out[c1 as usize] += v1 * yr;
        out[c2 as usize] += v2 * yr;
        out[c3 as usize] += v3 * yr;
        out[c4 as usize] += v4 * yr;
        out[c5 as usize] += v5 * yr;
    }
}

/// Unrolled [`aprod2_instr_owned`].
pub fn aprod2_instr_owned_unrolled(
    sys: &SparseSystem,
    y: &[f64],
    rows: Range<usize>,
    own: Range<usize>,
    out: &mut [f64],
) {
    debug_assert!(rows.end <= sys.n_obs_rows());
    debug_assert_eq!(out.len(), own.len());
    let mut t = gaia_telemetry::kernel_scope(Phase::Aprod2, Block::Instr);
    t.add_bytes(
        rows.len() as u64 * (INSTR_NNZ_PER_ROW as u64 + 1) * F64 + own.len() as u64 * 2 * F64,
    );
    for row in rows {
        let yr = y[row];
        if yr == 0.0 {
            continue;
        }
        let (vals, cols) = sys.instr_row(row);
        let (&[v0, v1, v2, v3, v4, v5], &[c0, c1, c2, c3, c4, c5]) = (vals, cols) else {
            continue;
        };
        let pairs = [
            (c0 as usize, v0),
            (c1 as usize, v1),
            (c2 as usize, v2),
            (c3 as usize, v3),
            (c4 as usize, v4),
            (c5 as usize, v5),
        ];
        for (col, v) in pairs {
            if col >= own.start && col < own.end {
                out[col - own.start] += v * yr;
            }
        }
    }
}

/// ELL-layout [`aprod2_instr`] (full section, exclusive access).
pub fn aprod2_instr_ell(sys: &SparseSystem, y: &[f64], rows: Range<usize>, out: &mut [f64]) {
    debug_assert!(rows.end <= sys.n_obs_rows());
    debug_assert_eq!(out.len() as u64, sys.layout().n_instr_params);
    let mut t = gaia_telemetry::kernel_scope(Phase::Aprod2, Block::Instr);
    t.add_bytes(rows.len() as u64 * (3 * INSTR_NNZ_PER_ROW as u64 + 1) * F64);
    let ell = sys.ell();
    let vals: [&[f64]; INSTR_NNZ_PER_ROW] = std::array::from_fn(|k| ell.instr_slot(k));
    let cols: [&[u32]; INSTR_NNZ_PER_ROW] = std::array::from_fn(|k| ell.instr_col_slot(k));
    for row in rows {
        let yr = y[row];
        if yr == 0.0 {
            continue;
        }
        for k in 0..INSTR_NNZ_PER_ROW {
            out[cols[k][row] as usize] += vals[k][row] * yr;
        }
    }
}

/// ELL-layout [`aprod2_instr_owned`].
pub fn aprod2_instr_owned_ell(
    sys: &SparseSystem,
    y: &[f64],
    rows: Range<usize>,
    own: Range<usize>,
    out: &mut [f64],
) {
    debug_assert!(rows.end <= sys.n_obs_rows());
    debug_assert_eq!(out.len(), own.len());
    let mut t = gaia_telemetry::kernel_scope(Phase::Aprod2, Block::Instr);
    t.add_bytes(
        rows.len() as u64 * (INSTR_NNZ_PER_ROW as u64 + 1) * F64 + own.len() as u64 * 2 * F64,
    );
    let ell = sys.ell();
    let vals: [&[f64]; INSTR_NNZ_PER_ROW] = std::array::from_fn(|k| ell.instr_slot(k));
    let cols: [&[u32]; INSTR_NNZ_PER_ROW] = std::array::from_fn(|k| ell.instr_col_slot(k));
    for row in rows {
        let yr = y[row];
        if yr == 0.0 {
            continue;
        }
        for k in 0..INSTR_NNZ_PER_ROW {
            let col = cols[k][row] as usize;
            if col >= own.start && col < own.end {
                out[col - own.start] += vals[k][row] * yr;
            }
        }
    }
}

// Block-splitting scaffolding lives in the launch layer; re-exported here
// for the kernel-level tests and any direct kernel callers.
pub use crate::launch::split_ranges;

#[cfg(test)]
mod tests {
    use super::*;
    use gaia_sparse::dense::DenseMatrix;
    use gaia_sparse::{Generator, GeneratorConfig, SystemLayout};

    fn sys() -> SparseSystem {
        Generator::new(GeneratorConfig::new(SystemLayout::tiny()).seed(11)).generate()
    }

    fn x_for(sys: &SparseSystem) -> Vec<f64> {
        (0..sys.n_cols()).map(|i| (i as f64 * 0.21).sin()).collect()
    }

    fn y_for(sys: &SparseSystem) -> Vec<f64> {
        (0..sys.n_rows()).map(|i| (i as f64 * 0.13).cos()).collect()
    }

    #[test]
    fn aprod1_range_matches_dense() {
        let s = sys();
        let d = DenseMatrix::from_sparse(&s);
        let x = x_for(&s);
        let mut want = vec![0.0; s.n_rows()];
        d.mat_vec_acc(&x, &mut want);
        let mut got = vec![0.0; s.n_rows()];
        aprod1_range(&s, &x, 0..s.n_rows(), &mut got);
        for (g, w) in got.iter().zip(&want) {
            assert!((g - w).abs() < 1e-10, "{g} vs {w}");
        }
    }

    #[test]
    fn aprod1_split_ranges_equal_whole() {
        let s = sys();
        let x = x_for(&s);
        let mut whole = vec![0.0; s.n_rows()];
        aprod1_range(&s, &x, 0..s.n_rows(), &mut whole);
        let mut parts = vec![0.0; s.n_rows()];
        for r in split_ranges(s.n_rows(), 5) {
            let (start, end) = (r.start, r.end);
            aprod1_range(&s, &x, r, &mut parts[start..end]);
        }
        for (a, b) in whole.iter().zip(&parts) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    /// A range made only of constraint rows (`rows.start >= n_obs_rows()`)
    /// must skip the observation kernels entirely and still produce the
    /// attitude contributions — the case every parallel backend hits when
    /// a worker's chunk lands wholly in the constraint tail.
    #[test]
    fn aprod1_range_over_constraint_rows_only() {
        let s = sys();
        let x = x_for(&s);
        assert!(
            s.n_rows() > s.n_obs_rows(),
            "layout must have constraint rows"
        );
        let tail = s.n_obs_rows()..s.n_rows();

        let mut whole = vec![0.0; s.n_rows()];
        aprod1_range(&s, &x, 0..s.n_rows(), &mut whole);
        let mut got = vec![0.0; tail.len()];
        aprod1_range(&s, &x, tail.clone(), &mut got);
        for (g, w) in got.iter().zip(&whole[tail.start..]) {
            assert!((g - w).abs() < 1e-12, "{g} vs {w}");
        }

        // Empty and point ranges at the boundary are no-ops / single rows.
        let mut empty: Vec<f64> = vec![];
        aprod1_range(&s, &x, s.n_rows()..s.n_rows(), &mut empty);
        let mut one = vec![0.0; 1];
        aprod1_range(&s, &x, s.n_obs_rows()..s.n_obs_rows() + 1, &mut one);
        assert!((one[0] - whole[s.n_obs_rows()]).abs() < 1e-12);
    }

    /// `split_ranges(0, parts)` hands out `parts` empty ranges; every
    /// kernel must accept them without touching the output.
    #[test]
    fn empty_split_ranges_are_kernel_noops() {
        let s = sys();
        let x = x_for(&s);
        let y = y_for(&s);
        for r in split_ranges(0, 6) {
            assert!(r.is_empty());
            let mut out1: Vec<f64> = vec![];
            aprod1_range(&s, &x, r.clone(), &mut out1);
            let mut out2: Vec<f64> = vec![];
            aprod2_astro(&s, &y, r.clone(), &mut out2);
            let mut att = vec![0.0; s.layout().n_att_cols() as usize];
            aprod2_att(&s, &y, r.clone(), &mut att);
            assert!(att.iter().all(|&v| v == 0.0));
            let mut glob = vec![0.0; 1];
            aprod2_glob(&s, &y, r, &mut glob);
            assert_eq!(glob[0], 0.0);
        }
    }

    #[test]
    fn aprod2_blocks_match_dense() {
        let s = sys();
        let d = DenseMatrix::from_sparse(&s);
        let y = y_for(&s);
        let mut want = vec![0.0; s.n_cols()];
        d.mat_t_vec_acc(&y, &mut want);

        let c = s.columns();
        let mut got = vec![0.0; s.n_cols()];
        let (astro_out, rest) = got.split_at_mut(c.att as usize);
        let (att_out, rest2) = rest.split_at_mut((c.instr - c.att) as usize);
        let (instr_out, glob_out) = rest2.split_at_mut((c.glob - c.instr) as usize);
        aprod2_astro(&s, &y, 0..s.layout().n_stars as usize, astro_out);
        aprod2_att(&s, &y, 0..s.n_rows(), att_out);
        aprod2_instr(&s, &y, 0..s.n_obs_rows(), instr_out);
        aprod2_glob(&s, &y, 0..s.n_obs_rows(), glob_out);
        for (g, w) in got.iter().zip(&want) {
            assert!((g - w).abs() < 1e-10, "{g} vs {w}");
        }
    }

    #[test]
    fn owner_computes_variants_cover_all_columns() {
        let s = sys();
        let y = y_for(&s);
        let natt = s.layout().n_att_cols() as usize;
        let mut whole = vec![0.0; natt];
        aprod2_att(&s, &y, 0..s.n_rows(), &mut whole);
        let mut pieces = vec![0.0; natt];
        for own in split_ranges(natt, 4) {
            let (a, b) = (own.start, own.end);
            aprod2_att_owned(&s, &y, 0..s.n_rows(), own, &mut pieces[a..b]);
        }
        for (a, b) in whole.iter().zip(&pieces) {
            assert!((a - b).abs() < 1e-12);
        }

        let ninstr = s.layout().n_instr_params as usize;
        let mut whole_i = vec![0.0; ninstr];
        aprod2_instr(&s, &y, 0..s.n_obs_rows(), &mut whole_i);
        let mut pieces_i = vec![0.0; ninstr];
        for own in split_ranges(ninstr, 3) {
            let (a, b) = (own.start, own.end);
            aprod2_instr_owned(&s, &y, 0..s.n_obs_rows(), own, &mut pieces_i[a..b]);
        }
        for (a, b) in whole_i.iter().zip(&pieces_i) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    /// The unrolled and ELL aprod1 paths keep the scalar accumulation
    /// order, so on a fixed schedule they are bit-identical to the
    /// reference kernel.
    #[test]
    fn aprod1_variants_are_bitwise_equal_to_scalar() {
        let s = sys();
        let x = x_for(&s);
        let mut want = vec![0.0; s.n_rows()];
        aprod1_range(&s, &x, 0..s.n_rows(), &mut want);
        for (name, kernel) in [
            ("unrolled", aprod1_range_unrolled as fn(_, _, _, &mut [f64])),
            ("ell", aprod1_range_ell),
        ] {
            let mut got = vec![0.0; s.n_rows()];
            kernel(&s, &x, 0..s.n_rows(), &mut got);
            for (i, (g, w)) in got.iter().zip(&want).enumerate() {
                assert_eq!(g.to_bits(), w.to_bits(), "{name} row {i}: {g} vs {w}");
            }
        }
    }

    /// Same bitwise guarantee for the full-section and owner-computes
    /// aprod2 variants; the cache-blocked attitude kernels reassociate the
    /// sums and are held to 1e-12 instead.
    #[test]
    fn aprod2_variants_match_scalar() {
        let s = sys();
        let y = y_for(&s);
        let n_stars = s.layout().n_stars as usize;
        let natt = s.layout().n_att_cols() as usize;
        let ninstr = s.layout().n_instr_params as usize;

        let mut astro_want = vec![0.0; n_stars * ASTRO_NNZ_PER_ROW];
        aprod2_astro(&s, &y, 0..n_stars, &mut astro_want);
        for (name, kernel) in [
            ("unrolled", aprod2_astro_unrolled as fn(_, _, _, &mut [f64])),
            ("ell", aprod2_astro_ell),
        ] {
            let mut got = vec![0.0; astro_want.len()];
            kernel(&s, &y, 0..n_stars, &mut got);
            for (g, w) in got.iter().zip(&astro_want) {
                assert_eq!(g.to_bits(), w.to_bits(), "astro {name}");
            }
        }

        let mut att_want = vec![0.0; natt];
        aprod2_att(&s, &y, 0..s.n_rows(), &mut att_want);
        for (name, kernel) in [
            ("unrolled", aprod2_att_unrolled as fn(_, _, _, &mut [f64])),
            ("ell", aprod2_att_ell),
        ] {
            let mut got = vec![0.0; natt];
            kernel(&s, &y, 0..s.n_rows(), &mut got);
            for (g, w) in got.iter().zip(&att_want) {
                assert_eq!(g.to_bits(), w.to_bits(), "att {name}");
            }
        }
        let mut blocked = vec![0.0; natt];
        aprod2_att_blocked(&s, &y, 0..s.n_rows(), &mut blocked);
        for (g, w) in blocked.iter().zip(&att_want) {
            assert!((g - w).abs() <= 1e-12 * w.abs().max(1.0), "att blocked");
        }

        let mut instr_want = vec![0.0; ninstr];
        aprod2_instr(&s, &y, 0..s.n_obs_rows(), &mut instr_want);
        for (name, kernel) in [
            ("unrolled", aprod2_instr_unrolled as fn(_, _, _, &mut [f64])),
            ("ell", aprod2_instr_ell),
        ] {
            let mut got = vec![0.0; ninstr];
            kernel(&s, &y, 0..s.n_obs_rows(), &mut got);
            for (g, w) in got.iter().zip(&instr_want) {
                assert_eq!(g.to_bits(), w.to_bits(), "instr {name}");
            }
        }
    }

    /// Every owned variant, split across disjoint owned ranges, covers the
    /// full section exactly once — the owner-computes soundness property.
    #[test]
    fn owned_variants_cover_all_columns() {
        type Owned =
            fn(&SparseSystem, &[f64], std::ops::Range<usize>, std::ops::Range<usize>, &mut [f64]);
        let s = sys();
        let y = y_for(&s);
        let natt = s.layout().n_att_cols() as usize;
        let mut att_want = vec![0.0; natt];
        aprod2_att(&s, &y, 0..s.n_rows(), &mut att_want);
        for (name, owned) in [
            ("unrolled", aprod2_att_owned_unrolled as Owned),
            ("ell", aprod2_att_owned_ell),
            ("blocked", aprod2_att_owned_blocked),
        ] {
            let mut pieces = vec![0.0; natt];
            for own in split_ranges(natt, 5) {
                let (a, b) = (own.start, own.end);
                owned(&s, &y, 0..s.n_rows(), own, &mut pieces[a..b]);
            }
            for (g, w) in pieces.iter().zip(&att_want) {
                assert!(
                    (g - w).abs() <= 1e-12 * w.abs().max(1.0),
                    "att owned {name}: {g} vs {w}"
                );
            }
        }
        let ninstr = s.layout().n_instr_params as usize;
        let mut instr_want = vec![0.0; ninstr];
        aprod2_instr(&s, &y, 0..s.n_obs_rows(), &mut instr_want);
        for (name, owned) in [
            ("unrolled", aprod2_instr_owned_unrolled as Owned),
            ("ell", aprod2_instr_owned_ell),
        ] {
            let mut pieces = vec![0.0; ninstr];
            for own in split_ranges(ninstr, 4) {
                let (a, b) = (own.start, own.end);
                owned(&s, &y, 0..s.n_obs_rows(), own, &mut pieces[a..b]);
            }
            for (g, w) in pieces.iter().zip(&instr_want) {
                assert_eq!(g.to_bits(), w.to_bits(), "instr owned {name}");
            }
        }
    }

    /// Blocked tiles must compose: a row range split at non-tile-aligned
    /// boundaries gives the same 1e-12 result as one call over the whole
    /// range.
    #[test]
    fn blocked_att_tiles_compose_across_odd_splits() {
        let s = sys();
        let y = y_for(&s);
        let natt = s.layout().n_att_cols() as usize;
        let mut whole = vec![0.0; natt];
        aprod2_att_blocked(&s, &y, 0..s.n_rows(), &mut whole);
        let mut parts = vec![0.0; natt];
        let mid = s.n_rows() / 3 + 1;
        aprod2_att_blocked(&s, &y, 0..mid, &mut parts);
        aprod2_att_blocked(&s, &y, mid..s.n_rows(), &mut parts);
        for (g, w) in parts.iter().zip(&whole) {
            assert!((g - w).abs() <= 1e-12 * w.abs().max(1.0));
        }
    }

    #[test]
    fn glob_kernels_are_noops_without_global_parameter() {
        let mut layout = SystemLayout::tiny();
        layout.n_glob_params = 0;
        let s = Generator::new(GeneratorConfig::new(layout).seed(3)).generate();
        let x = x_for(&s);
        let y = y_for(&s);
        let mut out1 = vec![0.0; s.n_obs_rows()];
        aprod1_glob(&s, &x, 0..s.n_obs_rows(), &mut out1);
        assert!(out1.iter().all(|&v| v == 0.0));
        let mut out2: Vec<f64> = vec![];
        aprod2_glob(&s, &y, 0..s.n_obs_rows(), &mut out2);
    }
}
