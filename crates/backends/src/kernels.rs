//! Per-block sequential kernels.
//!
//! These are the Rust equivalents of the production
//! `aprod{1,2}_Kernel_{astro,att,instr,glob}()` CUDA kernels (§IV). Each
//! kernel processes a *range* of rows (or stars) and writes into a
//! *block-local* output slice, so parallel backends can hand disjoint
//! ranges/sections to different threads without synchronization where the
//! structure permits, and add their own conflict strategy where it does not.
//!
//! Output indexing conventions:
//! * `aprod1_*`: `out[i]` accumulates row `rows.start + i`.
//! * `aprod2_astro`: `out` covers astrometric columns
//!   `5·stars.start .. 5·stars.end` (always collision-free across stars).
//! * `aprod2_att` / `aprod2_instr` / `aprod2_glob`: `out` covers the whole
//!   block section in block-local coordinates; different rows may collide.
//! * `aprod2_att_owned` / `aprod2_instr_owned`: owner-computes variants that
//!   scan rows but only write columns inside an owned block-local range.

use std::ops::Range;

use gaia_sparse::system::{ASTRO_NNZ_PER_ROW, ATT_NNZ_PER_ROW, INSTR_NNZ_PER_ROW};
use gaia_sparse::{SparseSystem, ATT_AXES, ATT_PARAMS_PER_AXIS};
use gaia_telemetry::{Block, Phase};

const F64: u64 = std::mem::size_of::<f64>() as u64;

/// `out[i] += astro_row(rows.start+i) · x_astro_slice` for observation rows.
pub fn aprod1_astro(sys: &SparseSystem, x: &[f64], rows: Range<usize>, out: &mut [f64]) {
    debug_assert!(rows.end <= sys.n_obs_rows());
    debug_assert_eq!(out.len(), rows.len());
    let mut t = gaia_telemetry::kernel_scope(Phase::Aprod1, Block::Astro);
    t.add_bytes(rows.len() as u64 * (2 * ASTRO_NNZ_PER_ROW as u64 + 2) * F64);
    for (i, row) in rows.enumerate() {
        let (vals, start) = sys.astro_row(row);
        let xs = &x[start as usize..start as usize + ASTRO_NNZ_PER_ROW];
        let mut acc = 0.0;
        for k in 0..ASTRO_NNZ_PER_ROW {
            acc += vals[k] * xs[k];
        }
        out[i] += acc;
    }
}

/// Attitude part of `aprod1` for any row range (observations + constraints).
pub fn aprod1_att(sys: &SparseSystem, x: &[f64], rows: Range<usize>, out: &mut [f64]) {
    debug_assert!(rows.end <= sys.n_rows());
    debug_assert_eq!(out.len(), rows.len());
    let mut t = gaia_telemetry::kernel_scope(Phase::Aprod1, Block::Att);
    t.add_bytes(rows.len() as u64 * (2 * ATT_NNZ_PER_ROW as u64 + 2) * F64);
    let dof = sys.layout().n_deg_freedom_att as usize;
    let att_base = sys.columns().att as usize;
    for (i, row) in rows.enumerate() {
        let (vals, off) = sys.att_row(row);
        let mut acc = 0.0;
        for axis in 0..ATT_AXES as usize {
            let base = att_base + axis * dof + off as usize;
            for k in 0..ATT_PARAMS_PER_AXIS as usize {
                acc += vals[axis * ATT_PARAMS_PER_AXIS as usize + k] * x[base + k];
            }
        }
        out[i] += acc;
    }
}

/// Instrumental part of `aprod1` for observation rows.
pub fn aprod1_instr(sys: &SparseSystem, x: &[f64], rows: Range<usize>, out: &mut [f64]) {
    debug_assert!(rows.end <= sys.n_obs_rows());
    debug_assert_eq!(out.len(), rows.len());
    let mut t = gaia_telemetry::kernel_scope(Phase::Aprod1, Block::Instr);
    t.add_bytes(rows.len() as u64 * (2 * INSTR_NNZ_PER_ROW as u64 + 2) * F64);
    let instr_base = sys.columns().instr as usize;
    for (i, row) in rows.enumerate() {
        let (vals, cols) = sys.instr_row(row);
        let mut acc = 0.0;
        for k in 0..INSTR_NNZ_PER_ROW {
            acc += vals[k] * x[instr_base + cols[k] as usize];
        }
        out[i] += acc;
    }
}

/// Global part of `aprod1` for observation rows (no-op when the layout has
/// no global parameter).
pub fn aprod1_glob(sys: &SparseSystem, x: &[f64], rows: Range<usize>, out: &mut [f64]) {
    debug_assert!(rows.end <= sys.n_obs_rows());
    debug_assert_eq!(out.len(), rows.len());
    if sys.layout().n_glob_params == 0 {
        return;
    }
    let mut t = gaia_telemetry::kernel_scope(Phase::Aprod1, Block::Glob);
    t.add_bytes(rows.len() as u64 * 3 * F64 + F64);
    let glob_col = sys.columns().glob as usize;
    let xg = x[glob_col];
    let glob = sys.values_glob();
    for (i, row) in rows.enumerate() {
        out[i] += glob[row] * xg;
    }
}

/// Full `aprod1` over a row range into an aligned output slice.
pub fn aprod1_range(sys: &SparseSystem, x: &[f64], rows: Range<usize>, out: &mut [f64]) {
    let obs_end = rows.end.min(sys.n_obs_rows());
    if rows.start < obs_end {
        let obs = rows.start..obs_end;
        let n = obs.len();
        aprod1_astro(sys, x, obs.clone(), &mut out[..n]);
        aprod1_instr(sys, x, obs.clone(), &mut out[..n]);
        aprod1_glob(sys, x, obs, &mut out[..n]);
    }
    aprod1_att(sys, x, rows, out);
}

/// Astrometric `aprod2`, parallel-safe across stars: for each star in
/// `stars`, accumulate the contributions of all its observation rows into
/// the star's 5 columns. `out` covers columns `5·stars.start..5·stars.end`.
pub fn aprod2_astro(sys: &SparseSystem, y: &[f64], stars: Range<usize>, out: &mut [f64]) {
    debug_assert_eq!(out.len(), stars.len() * ASTRO_NNZ_PER_ROW);
    let layout = *sys.layout();
    let mut t = gaia_telemetry::kernel_scope(Phase::Aprod2, Block::Astro);
    let rows_covered = if stars.is_empty() {
        0
    } else {
        layout.rows_of_star(stars.end as u64 - 1).end
            - layout.rows_of_star(stars.start as u64).start
    };
    t.add_bytes(
        rows_covered * (ASTRO_NNZ_PER_ROW as u64 + 1) * F64
            + stars.len() as u64 * 2 * ASTRO_NNZ_PER_ROW as u64 * F64,
    );
    for (si, star) in stars.enumerate() {
        let slot = &mut out[si * ASTRO_NNZ_PER_ROW..(si + 1) * ASTRO_NNZ_PER_ROW];
        for row in layout.rows_of_star(star as u64) {
            let (vals, _) = sys.astro_row(row as usize);
            let yr = y[row as usize];
            for k in 0..ASTRO_NNZ_PER_ROW {
                slot[k] += vals[k] * yr;
            }
        }
    }
}

/// Attitude `aprod2` over a row range into the full block-local attitude
/// section. Different rows may write the same columns; the caller must
/// ensure exclusive access to `out` (serial, owned copy, or a lock).
pub fn aprod2_att(sys: &SparseSystem, y: &[f64], rows: Range<usize>, out: &mut [f64]) {
    debug_assert_eq!(out.len() as u64, sys.layout().n_att_cols());
    let mut t = gaia_telemetry::kernel_scope(Phase::Aprod2, Block::Att);
    t.add_bytes(rows.len() as u64 * (3 * ATT_NNZ_PER_ROW as u64 + 1) * F64);
    let dof = sys.layout().n_deg_freedom_att as usize;
    for row in rows {
        let yr = y[row];
        if yr == 0.0 {
            continue;
        }
        let (vals, off) = sys.att_row(row);
        for axis in 0..ATT_AXES as usize {
            let base = axis * dof + off as usize;
            for k in 0..ATT_PARAMS_PER_AXIS as usize {
                out[base + k] += vals[axis * ATT_PARAMS_PER_AXIS as usize + k] * yr;
            }
        }
    }
}

/// Attitude `aprod2`, owner-computes: scan `rows` but only update columns in
/// the owned block-local range. `out.len() == own.len()`.
pub fn aprod2_att_owned(
    sys: &SparseSystem,
    y: &[f64],
    rows: Range<usize>,
    own: Range<usize>,
    out: &mut [f64],
) {
    debug_assert_eq!(out.len(), own.len());
    let mut t = gaia_telemetry::kernel_scope(Phase::Aprod2, Block::Att);
    t.add_bytes(
        rows.len() as u64 * (ATT_NNZ_PER_ROW as u64 + 1) * F64 + own.len() as u64 * 2 * F64,
    );
    let dof = sys.layout().n_deg_freedom_att as usize;
    for row in rows {
        let yr = y[row];
        if yr == 0.0 {
            continue;
        }
        let (vals, off) = sys.att_row(row);
        for axis in 0..ATT_AXES as usize {
            let base = axis * dof + off as usize;
            for k in 0..ATT_PARAMS_PER_AXIS as usize {
                let col = base + k;
                if col >= own.start && col < own.end {
                    out[col - own.start] += vals[axis * ATT_PARAMS_PER_AXIS as usize + k] * yr;
                }
            }
        }
    }
}

/// Instrumental `aprod2` over a row range into the full block-local
/// instrument section (exclusive access required).
pub fn aprod2_instr(sys: &SparseSystem, y: &[f64], rows: Range<usize>, out: &mut [f64]) {
    debug_assert!(rows.end <= sys.n_obs_rows());
    debug_assert_eq!(out.len() as u64, sys.layout().n_instr_params);
    let mut t = gaia_telemetry::kernel_scope(Phase::Aprod2, Block::Instr);
    t.add_bytes(rows.len() as u64 * (3 * INSTR_NNZ_PER_ROW as u64 + 1) * F64);
    for row in rows {
        let yr = y[row];
        if yr == 0.0 {
            continue;
        }
        let (vals, cols) = sys.instr_row(row);
        for k in 0..INSTR_NNZ_PER_ROW {
            out[cols[k] as usize] += vals[k] * yr;
        }
    }
}

/// Instrumental `aprod2`, owner-computes over a block-local column range.
pub fn aprod2_instr_owned(
    sys: &SparseSystem,
    y: &[f64],
    rows: Range<usize>,
    own: Range<usize>,
    out: &mut [f64],
) {
    debug_assert!(rows.end <= sys.n_obs_rows());
    debug_assert_eq!(out.len(), own.len());
    let mut t = gaia_telemetry::kernel_scope(Phase::Aprod2, Block::Instr);
    t.add_bytes(
        rows.len() as u64 * (INSTR_NNZ_PER_ROW as u64 + 1) * F64 + own.len() as u64 * 2 * F64,
    );
    for row in rows {
        let yr = y[row];
        if yr == 0.0 {
            continue;
        }
        let (vals, cols) = sys.instr_row(row);
        for k in 0..INSTR_NNZ_PER_ROW {
            let col = cols[k] as usize;
            if col >= own.start && col < own.end {
                out[col - own.start] += vals[k] * yr;
            }
        }
    }
}

/// Global `aprod2` over a row range: a plain reduction into the single
/// global slot.
pub fn aprod2_glob(sys: &SparseSystem, y: &[f64], rows: Range<usize>, out: &mut [f64]) {
    debug_assert!(rows.end <= sys.n_obs_rows());
    if sys.layout().n_glob_params == 0 {
        return;
    }
    debug_assert_eq!(out.len(), 1);
    let mut t = gaia_telemetry::kernel_scope(Phase::Aprod2, Block::Glob);
    t.add_bytes(rows.len() as u64 * 2 * F64 + 2 * F64);
    let glob = sys.values_glob();
    let mut acc = 0.0;
    for row in rows {
        acc += glob[row] * y[row];
    }
    out[0] += acc;
}

// Block-splitting scaffolding lives in the launch layer; re-exported here
// for the kernel-level tests and any direct kernel callers.
pub use crate::launch::split_ranges;

#[cfg(test)]
mod tests {
    use super::*;
    use gaia_sparse::dense::DenseMatrix;
    use gaia_sparse::{Generator, GeneratorConfig, SystemLayout};

    fn sys() -> SparseSystem {
        Generator::new(GeneratorConfig::new(SystemLayout::tiny()).seed(11)).generate()
    }

    fn x_for(sys: &SparseSystem) -> Vec<f64> {
        (0..sys.n_cols()).map(|i| (i as f64 * 0.21).sin()).collect()
    }

    fn y_for(sys: &SparseSystem) -> Vec<f64> {
        (0..sys.n_rows()).map(|i| (i as f64 * 0.13).cos()).collect()
    }

    #[test]
    fn aprod1_range_matches_dense() {
        let s = sys();
        let d = DenseMatrix::from_sparse(&s);
        let x = x_for(&s);
        let mut want = vec![0.0; s.n_rows()];
        d.mat_vec_acc(&x, &mut want);
        let mut got = vec![0.0; s.n_rows()];
        aprod1_range(&s, &x, 0..s.n_rows(), &mut got);
        for (g, w) in got.iter().zip(&want) {
            assert!((g - w).abs() < 1e-10, "{g} vs {w}");
        }
    }

    #[test]
    fn aprod1_split_ranges_equal_whole() {
        let s = sys();
        let x = x_for(&s);
        let mut whole = vec![0.0; s.n_rows()];
        aprod1_range(&s, &x, 0..s.n_rows(), &mut whole);
        let mut parts = vec![0.0; s.n_rows()];
        for r in split_ranges(s.n_rows(), 5) {
            let (start, end) = (r.start, r.end);
            aprod1_range(&s, &x, r, &mut parts[start..end]);
        }
        for (a, b) in whole.iter().zip(&parts) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    /// A range made only of constraint rows (`rows.start >= n_obs_rows()`)
    /// must skip the observation kernels entirely and still produce the
    /// attitude contributions — the case every parallel backend hits when
    /// a worker's chunk lands wholly in the constraint tail.
    #[test]
    fn aprod1_range_over_constraint_rows_only() {
        let s = sys();
        let x = x_for(&s);
        assert!(
            s.n_rows() > s.n_obs_rows(),
            "layout must have constraint rows"
        );
        let tail = s.n_obs_rows()..s.n_rows();

        let mut whole = vec![0.0; s.n_rows()];
        aprod1_range(&s, &x, 0..s.n_rows(), &mut whole);
        let mut got = vec![0.0; tail.len()];
        aprod1_range(&s, &x, tail.clone(), &mut got);
        for (g, w) in got.iter().zip(&whole[tail.start..]) {
            assert!((g - w).abs() < 1e-12, "{g} vs {w}");
        }

        // Empty and point ranges at the boundary are no-ops / single rows.
        let mut empty: Vec<f64> = vec![];
        aprod1_range(&s, &x, s.n_rows()..s.n_rows(), &mut empty);
        let mut one = vec![0.0; 1];
        aprod1_range(&s, &x, s.n_obs_rows()..s.n_obs_rows() + 1, &mut one);
        assert!((one[0] - whole[s.n_obs_rows()]).abs() < 1e-12);
    }

    /// `split_ranges(0, parts)` hands out `parts` empty ranges; every
    /// kernel must accept them without touching the output.
    #[test]
    fn empty_split_ranges_are_kernel_noops() {
        let s = sys();
        let x = x_for(&s);
        let y = y_for(&s);
        for r in split_ranges(0, 6) {
            assert!(r.is_empty());
            let mut out1: Vec<f64> = vec![];
            aprod1_range(&s, &x, r.clone(), &mut out1);
            let mut out2: Vec<f64> = vec![];
            aprod2_astro(&s, &y, r.clone(), &mut out2);
            let mut att = vec![0.0; s.layout().n_att_cols() as usize];
            aprod2_att(&s, &y, r.clone(), &mut att);
            assert!(att.iter().all(|&v| v == 0.0));
            let mut glob = vec![0.0; 1];
            aprod2_glob(&s, &y, r, &mut glob);
            assert_eq!(glob[0], 0.0);
        }
    }

    #[test]
    fn aprod2_blocks_match_dense() {
        let s = sys();
        let d = DenseMatrix::from_sparse(&s);
        let y = y_for(&s);
        let mut want = vec![0.0; s.n_cols()];
        d.mat_t_vec_acc(&y, &mut want);

        let c = s.columns();
        let mut got = vec![0.0; s.n_cols()];
        let (astro_out, rest) = got.split_at_mut(c.att as usize);
        let (att_out, rest2) = rest.split_at_mut((c.instr - c.att) as usize);
        let (instr_out, glob_out) = rest2.split_at_mut((c.glob - c.instr) as usize);
        aprod2_astro(&s, &y, 0..s.layout().n_stars as usize, astro_out);
        aprod2_att(&s, &y, 0..s.n_rows(), att_out);
        aprod2_instr(&s, &y, 0..s.n_obs_rows(), instr_out);
        aprod2_glob(&s, &y, 0..s.n_obs_rows(), glob_out);
        for (g, w) in got.iter().zip(&want) {
            assert!((g - w).abs() < 1e-10, "{g} vs {w}");
        }
    }

    #[test]
    fn owner_computes_variants_cover_all_columns() {
        let s = sys();
        let y = y_for(&s);
        let natt = s.layout().n_att_cols() as usize;
        let mut whole = vec![0.0; natt];
        aprod2_att(&s, &y, 0..s.n_rows(), &mut whole);
        let mut pieces = vec![0.0; natt];
        for own in split_ranges(natt, 4) {
            let (a, b) = (own.start, own.end);
            aprod2_att_owned(&s, &y, 0..s.n_rows(), own, &mut pieces[a..b]);
        }
        for (a, b) in whole.iter().zip(&pieces) {
            assert!((a - b).abs() < 1e-12);
        }

        let ninstr = s.layout().n_instr_params as usize;
        let mut whole_i = vec![0.0; ninstr];
        aprod2_instr(&s, &y, 0..s.n_obs_rows(), &mut whole_i);
        let mut pieces_i = vec![0.0; ninstr];
        for own in split_ranges(ninstr, 3) {
            let (a, b) = (own.start, own.end);
            aprod2_instr_owned(&s, &y, 0..s.n_obs_rows(), own, &mut pieces_i[a..b]);
        }
        for (a, b) in whole_i.iter().zip(&pieces_i) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn glob_kernels_are_noops_without_global_parameter() {
        let mut layout = SystemLayout::tiny();
        layout.n_glob_params = 0;
        let s = Generator::new(GeneratorConfig::new(layout).seed(3)).generate();
        let x = x_for(&s);
        let y = y_for(&s);
        let mut out1 = vec![0.0; s.n_obs_rows()];
        aprod1_glob(&s, &x, 0..s.n_obs_rows(), &mut out1);
        assert!(out1.iter().all(|&v| v == 0.0));
        let mut out2: Vec<f64> = vec![];
        aprod2_glob(&s, &y, 0..s.n_obs_rows(), &mut out2);
    }
}
