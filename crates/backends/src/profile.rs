//! Persisted launch profiles — the `gaia-tune-profile/v1` schema.
//!
//! The paper's §V-B tuning study ("up to 40 % reduction in iteration
//! time") is a *search* over launch configurations followed by pinning the
//! winner per platform. [`LaunchProfile`] is the pinned winner: a JSON
//! record mapping one problem layout to the [`LaunchPlan`] the tuner
//! selected for it, together with the measurements that justified the
//! selection. `gaia-bench --bin tune` writes these under
//! `results/tuning/<layout>.json`; the `tuned` registry backend loads them
//! back and falls through to the default plan when no profile matches.
//!
//! Every field a plan needs is stored as a stable *string* (the same
//! grammar the CLI flags use), so a profile survives enum reshuffles and a
//! hand-edited file fails loudly in [`LaunchProfile::to_plan`] rather than
//! silently deserializing into a different strategy. A loaded plan is
//! additionally proven sound against the canonical shape battery before it
//! is ever handed to a backend — an unsound profile on disk must never
//! become a racing launch.

use std::fmt;
use std::path::PathBuf;

use serde::{Deserialize, Serialize};

use gaia_sparse::{MatrixLayout, SystemLayout};

use crate::launch::{Aprod2Spec, Aprod2Strategy, KernelVariant, LaunchPlan, WorkerBudget};
use crate::tuning::Tuning;

/// Schema tag stamped into every profile artifact.
pub const PROFILE_SCHEMA: &str = "gaia-tune-profile/v1";

/// Environment variable overriding the profile directory (mirrors
/// `GAIA_RESULTS_DIR` for bench artifacts).
pub const TUNING_DIR_ENV: &str = "GAIA_TUNING_DIR";

/// Stable name of a conflict strategy: `owner`, `atomic`, `casloop`,
/// `replicated`, or `striped:<stripes>`.
pub fn strategy_name(s: Aprod2Strategy) -> String {
    match s {
        Aprod2Strategy::OwnerComputes => "owner".to_string(),
        Aprod2Strategy::Atomic => "atomic".to_string(),
        Aprod2Strategy::CasLoop => "casloop".to_string(),
        Aprod2Strategy::Replicated => "replicated".to_string(),
        Aprod2Strategy::LockStriped { stripes } => format!("striped:{stripes}"),
    }
}

/// Parse [`strategy_name`]'s grammar back to a strategy.
pub fn parse_strategy(name: &str) -> Option<Aprod2Strategy> {
    match name {
        "owner" => Some(Aprod2Strategy::OwnerComputes),
        "atomic" => Some(Aprod2Strategy::Atomic),
        "casloop" => Some(Aprod2Strategy::CasLoop),
        "replicated" => Some(Aprod2Strategy::Replicated),
        _ => {
            let stripes: usize = name.strip_prefix("striped:")?.parse().ok()?;
            (stripes > 0).then_some(Aprod2Strategy::LockStriped { stripes })
        }
    }
}

/// Stable name of a worker budget: `uniform` or `streamed`.
pub fn budget_name(b: WorkerBudget) -> &'static str {
    match b {
        WorkerBudget::Uniform => "uniform",
        WorkerBudget::Streamed => "streamed",
    }
}

/// Parse [`budget_name`]'s grammar back to a budget.
pub fn parse_budget(name: &str) -> Option<WorkerBudget> {
    match name {
        "uniform" => Some(WorkerBudget::Uniform),
        "streamed" => Some(WorkerBudget::Streamed),
        _ => None,
    }
}

/// One pinned tuning result: layout → plan, plus the evidence.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LaunchProfile {
    /// Always [`PROFILE_SCHEMA`]; a mismatch rejects the file.
    pub schema: String,
    /// Layout preset name the profile was tuned on (`tiny`/`small`/...).
    pub layout: String,
    /// The exact problem shape, so runtime matching is structural, not
    /// name-based — a renamed preset cannot silently misapply a profile.
    pub shape: SystemLayout,
    /// Worker threads the winning plan was tuned for.
    pub threads: usize,
    /// Chunks per thread of the winning plan.
    pub chunks_per_thread: usize,
    /// Attitude-block strategy ([`strategy_name`] grammar).
    pub att: String,
    /// Instrumental-block strategy.
    pub instr: String,
    /// Global-block strategy.
    pub glob: String,
    /// Worker budget (`uniform`/`streamed`).
    pub budget: String,
    /// Kernel interior variant (`scalar`/`unrolled`/`blocked`).
    pub variant: String,
    /// Value layout (`row-major`/`ell`).
    pub matrix_layout: String,
    /// Median per-iteration seconds of the winning configuration.
    #[serde(default)]
    pub tuned_median_s: f64,
    /// Median per-iteration seconds of the default (scalar row-major
    /// chunked) configuration on the same layout, same run.
    #[serde(default)]
    pub baseline_median_s: f64,
    /// Fractional improvement over the baseline:
    /// `(baseline − tuned) / baseline`.
    #[serde(default)]
    pub improvement: f64,
    /// How many configurations the search measured before pinning this one.
    #[serde(default)]
    pub configs_explored: u64,
}

/// Why a profile failed to load or lower to a plan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProfileError {
    /// The `schema` field is not [`PROFILE_SCHEMA`].
    Schema(String),
    /// A string field does not parse under its grammar.
    Field {
        /// Which field.
        field: &'static str,
        /// The rejected value.
        value: String,
    },
    /// The lowered plan failed [`LaunchPlan::analyze_canonical`].
    Unsound(String),
    /// The file exists but could not be read or parsed as JSON.
    Malformed(String),
}

impl fmt::Display for ProfileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProfileError::Schema(got) => {
                write!(f, "schema `{got}` is not `{PROFILE_SCHEMA}`")
            }
            ProfileError::Field { field, value } => {
                write!(f, "field `{field}` has unparseable value `{value}`")
            }
            ProfileError::Unsound(e) => write!(f, "profile lowers to an unsound plan: {e}"),
            ProfileError::Malformed(e) => write!(f, "unreadable profile: {e}"),
        }
    }
}

impl std::error::Error for ProfileError {}

impl LaunchProfile {
    /// Record a plan as a profile for `layout` named `name`. Measurement
    /// fields start zeroed; the tuner fills them in.
    pub fn from_plan(name: &str, shape: SystemLayout, plan: &LaunchPlan) -> Self {
        LaunchProfile {
            schema: PROFILE_SCHEMA.to_string(),
            layout: name.to_string(),
            shape,
            threads: plan.tuning.threads,
            chunks_per_thread: plan.tuning.chunks_per_thread,
            att: strategy_name(plan.spec.att),
            instr: strategy_name(plan.spec.instr),
            glob: strategy_name(plan.spec.glob),
            budget: budget_name(plan.spec.budget).to_string(),
            variant: plan.variant.as_str().to_string(),
            matrix_layout: plan.matrix_layout.as_str().to_string(),
            tuned_median_s: 0.0,
            baseline_median_s: 0.0,
            improvement: 0.0,
            configs_explored: 0,
        }
    }

    /// Lower the profile back to the plan it pins, verifying the schema
    /// tag, every string field, and — via the canonical shape battery —
    /// the plan's soundness.
    pub fn to_plan(&self) -> Result<LaunchPlan, ProfileError> {
        if self.schema != PROFILE_SCHEMA {
            return Err(ProfileError::Schema(self.schema.clone()));
        }
        let field = |field: &'static str, value: &str| ProfileError::Field {
            field,
            value: value.to_string(),
        };
        let att = parse_strategy(&self.att).ok_or_else(|| field("att", &self.att))?;
        let instr = parse_strategy(&self.instr).ok_or_else(|| field("instr", &self.instr))?;
        let glob = parse_strategy(&self.glob).ok_or_else(|| field("glob", &self.glob))?;
        let budget = parse_budget(&self.budget).ok_or_else(|| field("budget", &self.budget))?;
        let variant =
            KernelVariant::parse(&self.variant).ok_or_else(|| field("variant", &self.variant))?;
        let matrix_layout = MatrixLayout::parse(&self.matrix_layout)
            .ok_or_else(|| field("matrix_layout", &self.matrix_layout))?;
        if self.threads == 0 {
            return Err(field("threads", "0"));
        }
        if self.chunks_per_thread == 0 {
            return Err(field("chunks_per_thread", "0"));
        }
        let plan = LaunchPlan::new(
            Tuning {
                threads: self.threads,
                chunks_per_thread: self.chunks_per_thread,
            },
            Aprod2Spec {
                att,
                instr,
                glob,
                budget,
            },
        )
        .with_variant(variant)
        .with_matrix_layout(matrix_layout);
        plan.analyze_canonical()
            .map_err(|e| ProfileError::Unsound(e.to_string()))?;
        Ok(plan)
    }

    /// Whether the pinned plan differs from the default chunked plan at
    /// the same tuning (the acceptance question: did the tuner actually
    /// pick something non-default?).
    pub fn is_non_default(&self) -> bool {
        let default = LaunchPlan::new(
            Tuning {
                threads: self.threads.max(1),
                chunks_per_thread: self.chunks_per_thread.max(1),
            },
            Aprod2Spec::uniform(Aprod2Strategy::OwnerComputes),
        );
        match self.to_plan() {
            Ok(plan) => plan != default,
            Err(_) => false,
        }
    }
}

/// The directory profiles are persisted in: `GAIA_TUNING_DIR` when set,
/// else `<results root>/tuning` (anchored at the workspace root like every
/// other artifact, never CWD-relative).
pub fn tuning_dir() -> PathBuf {
    match std::env::var_os(TUNING_DIR_ENV) {
        Some(dir) if !dir.is_empty() => PathBuf::from(dir),
        _ => gaia_telemetry::report::results_root().join("tuning"),
    }
}

/// Load every valid profile from [`tuning_dir`]. Unreadable or invalid
/// files are skipped (returned in the error list for diagnostics); an
/// absent directory is simply zero profiles — the `tuned` backend then
/// runs its default plan everywhere.
pub fn load_profiles() -> (Vec<LaunchProfile>, Vec<(PathBuf, ProfileError)>) {
    load_profiles_from(&tuning_dir())
}

/// [`load_profiles`] against an explicit directory.
pub fn load_profiles_from(
    dir: &std::path::Path,
) -> (Vec<LaunchProfile>, Vec<(PathBuf, ProfileError)>) {
    let mut profiles = Vec::new();
    let mut rejected = Vec::new();
    let Ok(entries) = std::fs::read_dir(dir) else {
        return (profiles, rejected);
    };
    let mut paths: Vec<PathBuf> = entries
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "json"))
        .collect();
    paths.sort();
    for path in paths {
        match load_profile_file(&path) {
            Ok(p) => profiles.push(p),
            Err(e) => rejected.push((path, e)),
        }
    }
    gaia_telemetry::record_tune_load(profiles.len() as u64, rejected.len() as u64);
    (profiles, rejected)
}

/// Load and fully validate one profile file (schema, field grammars, and
/// plan soundness).
pub fn load_profile_file(path: &std::path::Path) -> Result<LaunchProfile, ProfileError> {
    let text = std::fs::read_to_string(path).map_err(|e| ProfileError::Malformed(e.to_string()))?;
    let profile: LaunchProfile =
        serde_json::from_str(&text).map_err(|e| ProfileError::Malformed(e.to_string()))?;
    profile.to_plan()?;
    Ok(profile)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_plan() -> LaunchPlan {
        LaunchPlan::new(
            Tuning {
                threads: 3,
                chunks_per_thread: 2,
            },
            Aprod2Spec {
                att: Aprod2Strategy::Replicated,
                instr: Aprod2Strategy::LockStriped { stripes: 16 },
                glob: Aprod2Strategy::Atomic,
                budget: WorkerBudget::Streamed,
            },
        )
        .with_variant(KernelVariant::Unrolled)
        .with_matrix_layout(MatrixLayout::Ell)
    }

    #[test]
    fn strategy_names_round_trip() {
        for s in [
            Aprod2Strategy::OwnerComputes,
            Aprod2Strategy::Atomic,
            Aprod2Strategy::CasLoop,
            Aprod2Strategy::Replicated,
            Aprod2Strategy::LockStriped { stripes: 7 },
        ] {
            assert_eq!(parse_strategy(&strategy_name(s)), Some(s));
        }
        assert_eq!(parse_strategy("striped:0"), None);
        assert_eq!(parse_strategy("striped:x"), None);
        assert_eq!(parse_strategy("cuda"), None);
        for b in [WorkerBudget::Uniform, WorkerBudget::Streamed] {
            assert_eq!(parse_budget(budget_name(b)), Some(b));
        }
    }

    #[test]
    fn profile_round_trips_through_json() {
        let plan = sample_plan();
        let profile = LaunchProfile::from_plan("tiny", SystemLayout::tiny(), &plan);
        let json = serde_json::to_string(&profile).unwrap();
        let back: LaunchProfile = serde_json::from_str(&json).unwrap();
        assert_eq!(back, profile);
        assert_eq!(back.to_plan().unwrap(), plan);
        assert!(back.is_non_default());
    }

    #[test]
    fn default_plan_is_reported_as_default() {
        let plan = LaunchPlan::new(
            Tuning {
                threads: 3,
                chunks_per_thread: 1,
            },
            Aprod2Spec::uniform(Aprod2Strategy::OwnerComputes),
        );
        let profile = LaunchProfile::from_plan("tiny", SystemLayout::tiny(), &plan);
        assert!(!profile.is_non_default());
    }

    #[test]
    fn bad_fields_are_rejected_by_name() {
        let plan = sample_plan();
        let mut p = LaunchProfile::from_plan("tiny", SystemLayout::tiny(), &plan);
        p.schema = "gaia-tune-profile/v0".into();
        assert!(matches!(p.to_plan(), Err(ProfileError::Schema(_))));

        let mut p = LaunchProfile::from_plan("tiny", SystemLayout::tiny(), &plan);
        p.att = "owner-computes".into();
        assert!(
            matches!(p.to_plan(), Err(ProfileError::Field { field: "att", .. })),
            "{:?}",
            p.to_plan()
        );

        let mut p = LaunchProfile::from_plan("tiny", SystemLayout::tiny(), &plan);
        p.variant = "simd".into();
        assert!(matches!(
            p.to_plan(),
            Err(ProfileError::Field {
                field: "variant",
                ..
            })
        ));

        let mut p = LaunchProfile::from_plan("tiny", SystemLayout::tiny(), &plan);
        p.threads = 0;
        assert!(matches!(
            p.to_plan(),
            Err(ProfileError::Field {
                field: "threads",
                ..
            })
        ));
    }

    #[test]
    fn directory_loading_skips_invalid_files() {
        let dir =
            std::env::temp_dir().join(format!("gaia-tune-profile-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();

        let good = LaunchProfile::from_plan("tiny", SystemLayout::tiny(), &sample_plan());
        std::fs::write(
            dir.join("tiny.json"),
            serde_json::to_string_pretty(&good).unwrap(),
        )
        .unwrap();
        std::fs::write(dir.join("broken.json"), "{ not json").unwrap();
        let mut bad = good.clone();
        bad.budget = "overlapped".into();
        std::fs::write(dir.join("bad.json"), serde_json::to_string(&bad).unwrap()).unwrap();
        std::fs::write(dir.join("notes.txt"), "ignored").unwrap();

        let (profiles, rejected) = load_profiles_from(&dir);
        assert_eq!(profiles, vec![good]);
        assert_eq!(rejected.len(), 2);

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_directory_is_zero_profiles() {
        let (profiles, rejected) =
            load_profiles_from(std::path::Path::new("/nonexistent/gaia-tuning"));
        assert!(profiles.is_empty());
        assert!(rejected.is_empty());
    }
}
