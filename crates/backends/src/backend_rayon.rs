//! Rayon backend — the "tuning-oblivious runtime" analogue of C++ PSTL.

use gaia_sparse::system::ASTRO_NNZ_PER_ROW;
use gaia_sparse::SparseSystem;
use rayon::prelude::*;

use crate::kernels;
use crate::traits::Backend;

/// Work-stealing parallel-iterator backend.
///
/// C++ PSTL "completely mask\[s\] any low-level parallel runtime library" and
/// offers "no specific directive to tune the number of threads and blocks"
/// (§IV-e); rayon plays exactly that role in Rust — the global pool decides
/// the split, the programmer expresses only the parallel shape:
///
/// * `aprod1`: `par_chunks_mut` over output rows;
/// * `aprod2` astrometric: `par_chunks_mut(5)` over the astro section —
///   each 5-wide chunk *is* one star's block, so the block-diagonal
///   structure maps 1:1 onto disjoint mutable chunks;
/// * `aprod2` attitude/instrumental/global: parallel fold into per-task
///   private buffers, then a parallel reduction (the PSTL-idiomatic
///   `transform_reduce` shape).
#[derive(Debug, Clone, Copy, Default)]
pub struct RayonBackend;

/// Row chunk size for `aprod1`; mirrors PSTL's fixed default of 256
/// threads per block that the paper observes via `nsys` (§V-B).
const APROD1_CHUNK: usize = 256;

impl Backend for RayonBackend {
    fn name(&self) -> String {
        "rayon".to_string()
    }

    fn description(&self) -> &'static str {
        "rayon parallel iterators, runtime-chosen split (C++ PSTL analogue)"
    }

    fn aprod1(&self, sys: &SparseSystem, x: &[f64], out: &mut [f64]) {
        self.check_aprod1(sys, x, out);
        out.par_chunks_mut(APROD1_CHUNK)
            .enumerate()
            .for_each(|(chunk_idx, chunk)| {
                let start = chunk_idx * APROD1_CHUNK;
                kernels::aprod1_range(sys, x, start..start + chunk.len(), chunk);
            });
    }

    fn aprod2(&self, sys: &SparseSystem, y: &[f64], out: &mut [f64]) {
        self.check_aprod2(sys, y, out);
        let c = sys.columns();
        let (astro, shared) = out.split_at_mut(c.att as usize);
        let shared_len = shared.len();
        let n_att = (c.instr - c.att) as usize;
        let n_instr = (c.glob - c.instr) as usize;

        // Astrometric: one 5-wide chunk per star, embarrassingly parallel.
        astro
            .par_chunks_mut(ASTRO_NNZ_PER_ROW)
            .enumerate()
            .for_each(|(star, slot)| {
                kernels::aprod2_astro(sys, y, star..star + 1, slot);
            });

        // Shared sections: fold row chunks into private buffers, reduce.
        let rows = sys.n_rows();
        let chunk = (rows / (rayon::current_num_threads() * 4).max(1)).max(64);
        let reduced = (0..rows)
            .into_par_iter()
            .step_by(chunk)
            .map(|start| {
                let range = start..(start + chunk).min(rows);
                let mut private = vec![0.0f64; shared_len];
                {
                    let (att, rest) = private.split_at_mut(n_att);
                    let (instr, glob) = rest.split_at_mut(n_instr);
                    let obs = range.start..range.end.min(sys.n_obs_rows());
                    kernels::aprod2_att(sys, y, range, att);
                    if !obs.is_empty() {
                        kernels::aprod2_instr(sys, y, obs.clone(), instr);
                        kernels::aprod2_glob(sys, y, obs, glob);
                    }
                }
                private
            })
            .reduce(
                || vec![0.0f64; shared_len],
                |mut a, b| {
                    for (x, y) in a.iter_mut().zip(&b) {
                        *x += y;
                    }
                    a
                },
            );
        for (slot, v) in shared.iter_mut().zip(&reduced) {
            *slot += v;
        }
    }

    fn nrm2(&self, v: &[f64]) -> f64 {
        // Chunked parallel sum-of-squares with per-chunk scaling.
        let partials: Vec<(f64, f64)> = v
            .par_chunks(1 << 16)
            .map(|chunk| {
                let m = chunk.iter().fold(0.0f64, |m, &x| m.max(x.abs()));
                if m == 0.0 {
                    return (0.0, 0.0);
                }
                let ssq = chunk.iter().map(|&x| (x / m) * (x / m)).sum::<f64>();
                (m, ssq)
            })
            .collect();
        let scale = partials.iter().fold(0.0f64, |m, &(s, _)| m.max(s));
        if scale == 0.0 {
            return 0.0;
        }
        let total: f64 = partials
            .iter()
            .map(|&(s, ssq)| ssq * (s / scale) * (s / scale))
            .sum();
        scale * total.sqrt()
    }

    fn scal(&self, v: &mut [f64], s: f64) {
        v.par_iter_mut().for_each(|x| *x *= s);
    }

    fn axpy(&self, y: &mut [f64], a: f64, x: &[f64]) {
        assert_eq!(y.len(), x.len(), "axpy length mismatch");
        y.par_iter_mut().zip(x.par_iter()).for_each(|(yi, &xi)| {
            *yi += a * xi;
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend_seq::SeqBackend;
    use crate::blas;
    use gaia_sparse::{Generator, GeneratorConfig, SystemLayout};

    #[test]
    fn rayon_matches_seq() {
        let sys = Generator::new(GeneratorConfig::new(SystemLayout::small()).seed(71)).generate();
        let x: Vec<f64> = (0..sys.n_cols()).map(|i| (i as f64 * 0.53).sin()).collect();
        let y: Vec<f64> = (0..sys.n_rows()).map(|i| (i as f64 * 0.59).cos()).collect();
        let seq = SeqBackend;
        let r = RayonBackend;
        let mut want1 = vec![0.0; sys.n_rows()];
        seq.aprod1(&sys, &x, &mut want1);
        let mut got1 = vec![0.0; sys.n_rows()];
        r.aprod1(&sys, &x, &mut got1);
        for (g, w) in got1.iter().zip(&want1) {
            assert!((g - w).abs() < 1e-10);
        }
        let mut want2 = vec![0.0; sys.n_cols()];
        seq.aprod2(&sys, &y, &mut want2);
        let mut got2 = vec![0.0; sys.n_cols()];
        r.aprod2(&sys, &y, &mut got2);
        for (g, w) in got2.iter().zip(&want2) {
            assert!((g - w).abs() < 1e-10);
        }
    }

    #[test]
    fn parallel_blas_matches_sequential() {
        let r = RayonBackend;
        let v: Vec<f64> = (0..100_000).map(|i| ((i as f64) * 0.001).sin()).collect();
        assert!((r.nrm2(&v) - blas::nrm2(&v)).abs() < 1e-9 * blas::nrm2(&v));
        let mut a = v.clone();
        let mut b = v.clone();
        r.scal(&mut a, 1.7);
        blas::scal(&mut b, 1.7);
        assert_eq!(a, b);
        let mut ya = v.clone();
        let mut yb = v.clone();
        r.axpy(&mut ya, -0.3, &v);
        blas::axpy(&mut yb, -0.3, &v);
        assert_eq!(ya, yb);
    }

    #[test]
    fn rayon_nrm2_extreme_values() {
        let r = RayonBackend;
        let mut v = vec![0.0f64; 200_000];
        v[0] = 1e300;
        v[199_999] = 1e300;
        let want = (2.0f64).sqrt() * 1e300;
        assert!((r.nrm2(&v) - want).abs() / want < 1e-12);
        assert_eq!(r.nrm2(&[0.0; 10]), 0.0);
    }
}
