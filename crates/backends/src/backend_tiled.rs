//! Tile-by-tile backend: the out-of-core launch shape, exercised on an
//! in-memory system so the registry can validate and benchmark it.

use std::ops::Range;
use std::sync::Arc;

use gaia_sparse::SparseSystem;

use crate::exec::ExecutorPool;
use crate::launch::{Aprod2Spec, Aprod2Strategy, LaunchPlan};
use crate::registry::tuned_name;
use crate::traits::Backend;
use crate::tuning::Tuning;

/// Number of row tiles the backend aims for when no tile height is pinned.
const DEFAULT_TILE_COUNT: usize = 4;

/// Owner-computes policy applied one star-aligned row tile at a time —
/// exactly the traversal the out-of-core [`gaia_sparse::TiledSystem`] path
/// performs over spilled tiles, but on a resident system. Tiles run
/// sequentially (as they must when only one tile is in memory); within a
/// tile the plan parallelizes rows/stars/owned columns as usual. Because
/// owner-computes accumulates each output slot in ascending row order and
/// tiles are visited in row order, results are bitwise identical to the
/// sequential backend.
#[derive(Debug, Clone)]
pub struct TiledBackend {
    plan: LaunchPlan,
    pool: Arc<ExecutorPool>,
    tile_stars: Option<usize>,
}

impl TiledBackend {
    /// Create with explicit tuning; the tile height defaults to
    /// `n_stars / 4` per system.
    pub fn new(tuning: Tuning) -> Self {
        TiledBackend {
            plan: LaunchPlan::new(tuning, Aprod2Spec::uniform(Aprod2Strategy::OwnerComputes)),
            pool: ExecutorPool::shared(tuning.threads),
            tile_stars: None,
        }
    }

    /// Create with `threads` workers.
    pub fn with_threads(threads: usize) -> Self {
        TiledBackend::new(Tuning::with_threads(threads))
    }

    /// Pin the tile height in stars (benchmark / test hook mirroring the
    /// `tile_stars` of an on-disk tile set).
    pub fn with_tile_stars(mut self, tile_stars: usize) -> Self {
        self.tile_stars = Some(tile_stars.max(1));
        self
    }

    /// Star-aligned global row tiles covering `sys`, constraint rows folded
    /// into the last tile — the same split `gaia-tiles/v1` spills to disk.
    fn row_tiles(&self, sys: &SparseSystem) -> Vec<Range<usize>> {
        let n_stars = sys.layout().n_stars as usize;
        let obs_per_star = sys.layout().obs_per_star as usize;
        let n_rows = sys.n_rows();
        let tile_stars = self
            .tile_stars
            .unwrap_or_else(|| n_stars.div_ceil(DEFAULT_TILE_COUNT))
            .max(1);
        // Constraint-only systems (no stars or no observations) have no
        // star-aligned split to make: one degenerate tile spans every row.
        let n_tiles = if n_stars == 0 || obs_per_star == 0 {
            1
        } else {
            n_stars.div_ceil(tile_stars)
        };
        (0..n_tiles)
            .map(|t| {
                let row0 = t * tile_stars * obs_per_star;
                let row1 = if t + 1 == n_tiles {
                    n_rows
                } else {
                    (t + 1) * tile_stars * obs_per_star
                };
                row0..row1
            })
            .collect()
    }
}

impl Backend for TiledBackend {
    fn name(&self) -> String {
        tuned_name("tiled", self.plan.tuning)
    }

    fn description(&self) -> &'static str {
        "star-aligned row tiles through owner-computes interiors (out-of-core launch shape)"
    }

    fn aprod1(&self, sys: &SparseSystem, x: &[f64], out: &mut [f64]) {
        self.check_aprod1(sys, x, out);
        for rows in self.row_tiles(sys) {
            let mine = &mut out[rows.clone()];
            self.plan.aprod1_rows(&self.pool, sys, x, rows, mine);
        }
    }

    fn aprod2(&self, sys: &SparseSystem, y: &[f64], out: &mut [f64]) {
        self.check_aprod2(sys, y, out);
        for rows in self.row_tiles(sys) {
            self.plan.aprod2_rows(&self.pool, sys, y, rows, out);
        }
    }

    fn launch_plan(&self) -> Option<LaunchPlan> {
        Some(self.plan)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SeqBackend;
    use gaia_sparse::{Generator, GeneratorConfig, SystemLayout};

    fn probe(sys: &SparseSystem) -> (Vec<f64>, Vec<f64>) {
        let x: Vec<f64> = (0..sys.n_cols()).map(|i| (i as f64 * 0.19).sin()).collect();
        let y: Vec<f64> = (0..sys.n_rows()).map(|i| (i as f64 * 0.23).cos()).collect();
        (x, y)
    }

    #[test]
    fn row_tiles_partition_all_rows_star_aligned() {
        let sys = Generator::new(GeneratorConfig::new(SystemLayout::tiny()).seed(5)).generate();
        let obs = sys.layout().obs_per_star as usize;
        for tile_stars in [1usize, 2, 3, 1000] {
            let b = TiledBackend::with_threads(2).with_tile_stars(tile_stars);
            let tiles = b.row_tiles(&sys);
            let mut cursor = 0;
            for t in &tiles {
                assert_eq!(t.start, cursor);
                assert_eq!(t.start % obs, 0, "tile starts between stars");
                cursor = t.end;
            }
            assert_eq!(cursor, sys.n_rows(), "tiles cover every row");
        }
    }

    #[test]
    fn tiled_products_are_bitwise_equal_to_seq() {
        let sys = Generator::new(GeneratorConfig::new(SystemLayout::tiny()).seed(12)).generate();
        let (x, y) = probe(&sys);
        let seq = SeqBackend;
        let mut want1 = vec![0.0; sys.n_rows()];
        seq.aprod1(&sys, &x, &mut want1);
        let mut want2 = vec![0.0; sys.n_cols()];
        seq.aprod2(&sys, &y, &mut want2);
        for threads in [1usize, 3, 8] {
            for tile_stars in [1usize, 2, 7] {
                let b = TiledBackend::with_threads(threads).with_tile_stars(tile_stars);
                let mut got1 = vec![0.0; sys.n_rows()];
                b.aprod1(&sys, &x, &mut got1);
                let mut got2 = vec![0.0; sys.n_cols()];
                b.aprod2(&sys, &y, &mut got2);
                assert_eq!(got1, want1, "aprod1 t{threads} tile_stars={tile_stars}");
                assert_eq!(got2, want2, "aprod2 t{threads} tile_stars={tile_stars}");
            }
        }
    }

    #[test]
    fn name_encodes_the_full_tuning() {
        assert_eq!(TiledBackend::with_threads(4).name(), "tiled-t4");
        let b = TiledBackend::new(Tuning {
            threads: 2,
            chunks_per_thread: 3,
        });
        assert_eq!(b.name(), "tiled-t2-c3");
    }
}
