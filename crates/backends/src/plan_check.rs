//! Static soundness checking for [`LaunchPlan`] — the analysis layer that
//! proves a plan's write-sets are race-free *before* anything runs.
//!
//! The paper's portability hazard is that each framework port silently
//! changes how colliding `aprod2` updates are resolved (atomics vs
//! owner-computes vs privatization, §IV–V). The dynamic harness
//! (`gaia-verify`) can only catch a bad resolution *after* executing it
//! under a sampled schedule; this module closes the gap statically. A plan
//! is lowered to a symbolic **write model** — for every output section, the
//! list of ranges each job writes and the synchronization discipline those
//! writes run under — and [`check_sections`] proves the model sound:
//!
//! * [`WriteAccess::Owned`] write-sets must be pairwise disjoint **and**
//!   exactly cover the section (a gap is as wrong as an overlap: the
//!   uncovered columns silently keep stale values);
//! * [`WriteAccess::PlainShared`] write-sets must be pairwise disjoint,
//!   because nothing orders two plain stores to the same slot — an overlap
//!   is precisely the lost-update race the `gaia-verify` canary exhibits;
//! * [`WriteAccess::Atomic`], [`WriteAccess::Locked`], and
//!   [`WriteAccess::Private`] write-sets may overlap by design and are
//!   checked for bounds only.
//!
//! [`LaunchPlan::analyze`] additionally proves the streamed worker budget
//! conserves the thread budget. Registry construction routes every
//! plan-carrying backend through [`LaunchPlan::analyze_canonical`], so an
//! unsound plan is rejected at lookup time with a diagnostic naming the
//! offending ranges, not discovered as a wrong solve.

use std::fmt;
use std::ops::Range;

use gaia_sparse::SparseSystem;

use crate::launch::{
    split_ranges, stream_worker_budget, Aprod2Strategy, LaunchPlan, Stream, WorkerBudget,
};

/// The problem-shape parameters a plan's lowering depends on. Decouples the
/// checker from a live [`SparseSystem`] so hand-built shapes (degenerate,
/// empty-block, oversized) can be verified without generating data.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlanDims {
    /// Total rows (observation + constraint) seen by `aprod1` and the
    /// attitude stream.
    pub n_rows: usize,
    /// Observation rows only — the instrumental and global streams stop
    /// here.
    pub n_obs_rows: usize,
    /// Stars; the astrometric section holds `5 × n_stars` columns.
    pub n_stars: usize,
    /// Attitude section length in columns.
    pub n_att: usize,
    /// Instrumental section length in columns.
    pub n_instr: usize,
    /// Global section length in columns (0 or 1 in the AVU-GSR system).
    pub n_glob: usize,
}

impl PlanDims {
    /// Extract the dimensions of a concrete system.
    pub fn for_system(sys: &SparseSystem) -> PlanDims {
        let c = sys.columns();
        PlanDims {
            n_rows: sys.n_rows(),
            n_obs_rows: sys.n_obs_rows(),
            n_stars: sys.layout().n_stars as usize,
            n_att: (c.instr - c.att) as usize,
            n_instr: (c.glob - c.instr) as usize,
            n_glob: sys.layout().n_glob_params as usize,
        }
    }

    /// The canonical shape battery [`LaunchPlan::analyze_canonical`] proves
    /// a plan against: a representative small system, a no-global variant,
    /// a degenerate shape with fewer items than chunks, an empty
    /// attitude/instrumental variant, and a large production-like shape.
    pub fn canonical() -> Vec<PlanDims> {
        vec![
            PlanDims {
                n_rows: 230,
                n_obs_rows: 200,
                n_stars: 40,
                n_att: 90,
                n_instr: 24,
                n_glob: 1,
            },
            PlanDims {
                n_rows: 230,
                n_obs_rows: 200,
                n_stars: 40,
                n_att: 90,
                n_instr: 24,
                n_glob: 0,
            },
            PlanDims {
                n_rows: 5,
                n_obs_rows: 3,
                n_stars: 2,
                n_att: 3,
                n_instr: 2,
                n_glob: 1,
            },
            PlanDims {
                n_rows: 64,
                n_obs_rows: 64,
                n_stars: 12,
                n_att: 0,
                n_instr: 0,
                n_glob: 1,
            },
            PlanDims {
                n_rows: 10_000,
                n_obs_rows: 9_000,
                n_stars: 1_500,
                n_att: 700,
                n_instr: 120,
                n_glob: 1,
            },
        ]
    }
}

/// The synchronization discipline a section's wave-1 (or wave-2) jobs
/// write under — what the checker is allowed to assume about two writes
/// landing on the same slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WriteAccess {
    /// Exclusive `&mut` ownership of the range (split_at_mut siblings):
    /// ranges must be disjoint and exactly cover the section.
    Owned,
    /// Atomic read-modify-write (RMW or CAS-retry): overlap is safe.
    Atomic,
    /// Writes land in a per-job private buffer; a later Owned reduction
    /// folds them in. Overlap between *models* of the privates is safe.
    Private,
    /// Writes are batched behind mutexes: overlap is safe.
    Locked,
    /// Plain unsynchronized loads/stores into shared memory: any overlap
    /// is a data race (the canary's lost-update shape).
    PlainShared,
}

impl fmt::Display for WriteAccess {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            WriteAccess::Owned => "owned",
            WriteAccess::Atomic => "atomic",
            WriteAccess::Private => "private",
            WriteAccess::Locked => "locked",
            WriteAccess::PlainShared => "plain-shared",
        })
    }
}

/// Which output section (or deferred reduction pass) a model describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SectionId {
    /// The `aprod1` output rows.
    Aprod1,
    /// Astrometric columns (star-aligned, structurally collision-free).
    Astro,
    /// Attitude columns, wave 1.
    Att,
    /// Instrumental columns, wave 1.
    Instr,
    /// Global columns, wave 1.
    Glob,
    /// Attitude wave-2 reduction (replicated / lock-striped copy-back).
    AttReduction,
    /// Instrumental wave-2 reduction.
    InstrReduction,
    /// Global caller-side combine of replicated partials.
    GlobCombine,
}

impl SectionId {
    fn as_str(self) -> &'static str {
        match self {
            SectionId::Aprod1 => "aprod1",
            SectionId::Astro => "astro",
            SectionId::Att => "att",
            SectionId::Instr => "instr",
            SectionId::Glob => "glob",
            SectionId::AttReduction => "att-reduction",
            SectionId::InstrReduction => "instr-reduction",
            SectionId::GlobCombine => "glob-combine",
        }
    }
}

impl fmt::Display for SectionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// The symbolic write-set of one section under one plan: which ranges the
/// section's jobs write, and under which discipline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SectionModel {
    /// Section this model describes.
    pub id: SectionId,
    /// Synchronization discipline of the writes.
    pub access: WriteAccess,
    /// Length of the section the ranges index into.
    pub section_len: usize,
    /// One range per job (section-local coordinates).
    pub writes: Vec<Range<usize>>,
}

/// One way a plan's write model fails soundness.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlanViolation {
    /// A job writes past the end of its section.
    OutOfBounds {
        /// Offending section.
        section: SectionId,
        /// The out-of-range write.
        range: Range<usize>,
        /// The section's actual length.
        section_len: usize,
    },
    /// Two exclusive-ownership ranges overlap.
    Overlap {
        /// Offending section.
        section: SectionId,
        /// First overlapping range.
        a: Range<usize>,
        /// Second overlapping range.
        b: Range<usize>,
    },
    /// Exclusive-ownership ranges leave part of the section unwritten.
    Gap {
        /// Offending section.
        section: SectionId,
        /// The uncovered span.
        missing: Range<usize>,
    },
    /// Unsynchronized shared writes collide — an illegal strategy for the
    /// block's collision structure.
    IllegalSharedWrites {
        /// Offending section.
        section: SectionId,
        /// First colliding range.
        a: Range<usize>,
        /// Second colliding range.
        b: Range<usize>,
    },
    /// The streamed per-stream shares exceed the effective thread budget.
    BudgetOversubscribed {
        /// Raw thread budget from tuning.
        threads: usize,
        /// Effective budget (`threads.max(4)`).
        effective: usize,
        /// Astrometric / attitude / instrumental shares.
        shares: (usize, usize, usize),
    },
    /// A stream was allotted zero workers and would never run.
    StarvedStream {
        /// The starved stream.
        stream: &'static str,
    },
}

impl fmt::Display for PlanViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanViolation::OutOfBounds {
                section,
                range,
                section_len,
            } => write!(
                f,
                "[{section}] write {range:?} exceeds section length {section_len}"
            ),
            PlanViolation::Overlap { section, a, b } => write!(
                f,
                "[{section}] exclusive write-sets overlap: {a:?} and {b:?} \
                 claim the same columns"
            ),
            PlanViolation::Gap { section, missing } => write!(
                f,
                "[{section}] exclusive write-sets leave {missing:?} uncovered \
                 (stale output columns)"
            ),
            PlanViolation::IllegalSharedWrites { section, a, b } => write!(
                f,
                "[{section}] illegal strategy/block pairing: unsynchronized \
                 shared writes {a:?} and {b:?} collide (lost-update race)"
            ),
            PlanViolation::BudgetOversubscribed {
                threads,
                effective,
                shares: (astro, att, instr),
            } => write!(
                f,
                "streamed budget oversubscribed: {astro}+{att}+{instr} workers \
                 > effective budget {effective} (threads = {threads})"
            ),
            PlanViolation::StarvedStream { stream } => {
                write!(f, "stream `{stream}` allotted zero workers")
            }
        }
    }
}

/// Successful verification summary: what the checker examined.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlanProof {
    /// Section models checked.
    pub sections: usize,
    /// Total job write-ranges examined across the sections.
    pub jobs: usize,
}

/// Verification failure: every violation found, rendered one per line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanError {
    /// All violations, in section order.
    pub violations: Vec<PlanViolation>,
}

impl fmt::Display for PlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unsound launch plan ({} violation{})",
            self.violations.len(),
            if self.violations.len() == 1 { "" } else { "s" }
        )?;
        for v in &self.violations {
            write!(f, "\n  - {v}")?;
        }
        Ok(())
    }
}

impl std::error::Error for PlanError {}

/// Prove a set of section write-models sound. See the module docs for the
/// per-discipline obligations.
pub fn check_sections(sections: &[SectionModel]) -> Result<PlanProof, PlanError> {
    let mut violations = Vec::new();
    let mut jobs = 0usize;
    for s in sections {
        jobs += s.writes.len();
        for r in &s.writes {
            if r.end > s.section_len {
                violations.push(PlanViolation::OutOfBounds {
                    section: s.id,
                    range: r.clone(),
                    section_len: s.section_len,
                });
            }
        }
        match s.access {
            WriteAccess::Owned => check_exclusive(s, true, &mut violations),
            WriteAccess::PlainShared => check_exclusive(s, false, &mut violations),
            WriteAccess::Atomic | WriteAccess::Locked | WriteAccess::Private => {}
        }
    }
    if violations.is_empty() {
        Ok(PlanProof {
            sections: sections.len(),
            jobs,
        })
    } else {
        Err(PlanError { violations })
    }
}

/// Disjointness (and, for `Owned`, exact-coverage) check over one section's
/// write ranges.
fn check_exclusive(s: &SectionModel, require_cover: bool, violations: &mut Vec<PlanViolation>) {
    let mut ranges: Vec<Range<usize>> =
        s.writes.iter().filter(|r| !r.is_empty()).cloned().collect();
    ranges.sort_by_key(|r| (r.start, r.end));
    let mut cursor = 0usize;
    for r in &ranges {
        if r.start < cursor {
            // Report against the previous range that reached `cursor`.
            let prev = ranges
                .iter()
                .find(|p| p.end == cursor && p.start < r.start)
                .cloned()
                .unwrap_or(0..cursor);
            let violation = if s.access == WriteAccess::PlainShared {
                PlanViolation::IllegalSharedWrites {
                    section: s.id,
                    a: prev,
                    b: r.clone(),
                }
            } else {
                PlanViolation::Overlap {
                    section: s.id,
                    a: prev,
                    b: r.clone(),
                }
            };
            violations.push(violation);
        } else if require_cover && r.start > cursor {
            violations.push(PlanViolation::Gap {
                section: s.id,
                missing: cursor..r.start,
            });
        }
        cursor = cursor.max(r.end);
    }
    if require_cover && cursor < s.section_len {
        violations.push(PlanViolation::Gap {
            section: s.id,
            missing: cursor..s.section_len,
        });
    }
}

/// Lower one colliding-section strategy to its wave-1 model (and wave-2
/// reduction model, when the strategy defers one). Mirrors
/// `LaunchPlan::section_jobs` exactly.
// The parameter list mirrors `section_jobs`' signature one-for-one; folding
// them into a struct would obscure that correspondence.
#[allow(clippy::too_many_arguments)]
fn lower_section(
    plan: &LaunchPlan,
    stream: Stream,
    wave1: SectionId,
    wave2: SectionId,
    rows: usize,
    section_len: usize,
    strategy: Aprod2Strategy,
    out: &mut Vec<SectionModel>,
) {
    if section_len == 0 {
        return;
    }
    match strategy {
        Aprod2Strategy::OwnerComputes => {
            out.push(SectionModel {
                id: wave1,
                access: WriteAccess::Owned,
                section_len,
                writes: split_ranges(section_len, plan.section_chunks(stream, section_len)),
            });
        }
        Aprod2Strategy::Atomic | Aprod2Strategy::CasLoop => {
            let chunks = plan.section_chunks(stream, rows);
            out.push(SectionModel {
                id: wave1,
                access: WriteAccess::Atomic,
                section_len,
                writes: vec![0..section_len; chunks],
            });
        }
        Aprod2Strategy::Replicated => {
            let chunks = plan.section_chunks(stream, rows);
            out.push(SectionModel {
                id: wave1,
                access: WriteAccess::Private,
                section_len,
                writes: vec![0..section_len; chunks],
            });
            out.push(SectionModel {
                id: wave2,
                access: WriteAccess::Owned,
                section_len,
                writes: split_ranges(section_len, plan.tuning.chunk_count(section_len)),
            });
        }
        Aprod2Strategy::LockStriped { stripes } => {
            let chunks = plan.section_chunks(stream, rows);
            out.push(SectionModel {
                id: wave1,
                access: WriteAccess::Locked,
                section_len,
                writes: vec![0..section_len; chunks],
            });
            // Wave 2 copies each stripe accumulator back into its owned
            // slice of the section.
            let n_stripes = stripes.max(1).min(section_len);
            out.push(SectionModel {
                id: wave2,
                access: WriteAccess::Owned,
                section_len,
                writes: split_ranges(section_len, n_stripes),
            });
        }
    }
}

/// Lower `plan` against `dims` to the symbolic write model `aprod1` +
/// `aprod2` would execute — one [`SectionModel`] per output section and
/// deferred reduction, in launch order.
pub fn write_model(plan: &LaunchPlan, dims: &PlanDims) -> Vec<SectionModel> {
    let mut out = Vec::new();

    // aprod1: row-range ownership over the output rows.
    out.push(SectionModel {
        id: SectionId::Aprod1,
        access: WriteAccess::Owned,
        section_len: dims.n_rows,
        writes: split_ranges(dims.n_rows, plan.aprod1_chunks(dims.n_rows)),
    });

    // Astrometric stream: star chunks own matching ×5 column slices.
    let n_astro = dims.n_stars * 5;
    out.push(SectionModel {
        id: SectionId::Astro,
        access: WriteAccess::Owned,
        section_len: n_astro,
        writes: split_ranges(
            dims.n_stars,
            plan.section_chunks(Stream::Astro, dims.n_stars),
        )
        .into_iter()
        .map(|stars| stars.start * 5..stars.end * 5)
        .collect(),
    });

    lower_section(
        plan,
        Stream::Att,
        SectionId::Att,
        SectionId::AttReduction,
        dims.n_rows,
        dims.n_att,
        plan.spec.att,
        &mut out,
    );
    lower_section(
        plan,
        Stream::Instr,
        SectionId::Instr,
        SectionId::InstrReduction,
        dims.n_obs_rows,
        dims.n_instr,
        plan.spec.instr,
        &mut out,
    );

    if dims.n_glob > 0 {
        match plan.spec.glob {
            // A single global slot: ownership and striping degenerate to
            // one exclusive reduction job (mirrors `glob_jobs`).
            Aprod2Strategy::OwnerComputes | Aprod2Strategy::LockStriped { .. } => {
                out.push(SectionModel {
                    id: SectionId::Glob,
                    access: WriteAccess::Owned,
                    section_len: dims.n_glob,
                    writes: vec![0..dims.n_glob; 1],
                });
            }
            Aprod2Strategy::Atomic | Aprod2Strategy::CasLoop => {
                let chunks = plan.section_chunks(Stream::Glob, dims.n_obs_rows);
                out.push(SectionModel {
                    id: SectionId::Glob,
                    access: WriteAccess::Atomic,
                    section_len: dims.n_glob,
                    writes: vec![0..dims.n_glob; chunks],
                });
            }
            Aprod2Strategy::Replicated => {
                let chunks = plan.section_chunks(Stream::Glob, dims.n_obs_rows);
                out.push(SectionModel {
                    id: SectionId::Glob,
                    access: WriteAccess::Private,
                    section_len: dims.n_glob,
                    writes: vec![0..dims.n_glob; chunks],
                });
                // The caller combines the partials serially.
                out.push(SectionModel {
                    id: SectionId::GlobCombine,
                    access: WriteAccess::Owned,
                    section_len: dims.n_glob,
                    writes: vec![0..dims.n_glob; 1],
                });
            }
        }
    }

    out
}

/// Verify `plan` against `dims`: lower to the write model, prove every
/// section sound, and prove the streamed budget conserves the thread
/// budget. Records an `analyze` telemetry cell entry either way.
pub fn analyze_plan(plan: &LaunchPlan, dims: &PlanDims) -> Result<PlanProof, PlanError> {
    let model = write_model(plan, dims);
    let mut result = check_sections(&model);

    if plan.spec.budget == WorkerBudget::Streamed {
        let threads = plan.tuning.threads;
        let (astro, att, instr) = stream_worker_budget(threads);
        let effective = threads.max(4);
        let mut extra = Vec::new();
        if astro + att + instr > effective {
            extra.push(PlanViolation::BudgetOversubscribed {
                threads,
                effective,
                shares: (astro, att, instr),
            });
        }
        for (stream, share) in [("astro", astro), ("att", att), ("instr", instr)] {
            if share == 0 {
                extra.push(PlanViolation::StarvedStream { stream });
            }
        }
        if !extra.is_empty() {
            let mut violations = match result {
                Ok(_) => Vec::new(),
                Err(e) => e.violations,
            };
            violations.extend(extra);
            result = Err(PlanError { violations });
        }
    }

    let violation_count = match &result {
        Ok(_) => 0,
        Err(e) => e.violations.len(),
    } as u64;
    gaia_telemetry::record_analyze_plan(model.len() as u64, violation_count);
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::launch::Aprod2Spec;
    use crate::tuning::Tuning;

    fn plan(strategy: Aprod2Strategy, streamed: bool) -> LaunchPlan {
        let spec = if streamed {
            Aprod2Spec::streamed(strategy)
        } else {
            Aprod2Spec::uniform(strategy)
        };
        LaunchPlan::new(
            Tuning {
                threads: 4,
                chunks_per_thread: 2,
            },
            spec,
        )
    }

    #[test]
    fn every_strategy_and_budget_is_sound_on_canonical_dims() {
        let strategies = [
            Aprod2Strategy::OwnerComputes,
            Aprod2Strategy::Atomic,
            Aprod2Strategy::CasLoop,
            Aprod2Strategy::Replicated,
            Aprod2Strategy::LockStriped { stripes: 8 },
        ];
        for strategy in strategies {
            for streamed in [false, true] {
                let p = plan(strategy, streamed);
                p.analyze_canonical().unwrap_or_else(|e| {
                    panic!("{strategy:?} streamed={streamed} judged unsound:\n{e}")
                });
            }
        }
    }

    /// Kernel variant and value layout change loop shape and gather
    /// source, never write-sets: every variant × layout combination must
    /// lower to the same sound model as the scalar row-major plan.
    #[test]
    fn every_variant_and_layout_is_sound_on_canonical_dims() {
        use crate::launch::KernelVariant;
        use gaia_sparse::MatrixLayout;
        let strategies = [
            Aprod2Strategy::OwnerComputes,
            Aprod2Strategy::Atomic,
            Aprod2Strategy::Replicated,
            Aprod2Strategy::LockStriped { stripes: 8 },
        ];
        for strategy in strategies {
            for streamed in [false, true] {
                let base = plan(strategy, streamed);
                let scalar_model: Vec<_> = PlanDims::canonical()
                    .iter()
                    .map(|d| write_model(&base, d))
                    .collect();
                for variant in KernelVariant::ALL {
                    for layout in MatrixLayout::ALL {
                        let p = base.with_variant(variant).with_matrix_layout(layout);
                        p.analyze_canonical().unwrap_or_else(|e| {
                            panic!("{variant}/{layout:?} {strategy:?} judged unsound:\n{e}")
                        });
                        let model: Vec<_> = PlanDims::canonical()
                            .iter()
                            .map(|d| write_model(&p, d))
                            .collect();
                        assert_eq!(
                            model, scalar_model,
                            "{variant}/{layout:?} changed the write model"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn overlapping_owned_partition_is_rejected_as_overlap() {
        let s = SectionModel {
            id: SectionId::Att,
            access: WriteAccess::Owned,
            section_len: 100,
            writes: vec![0..60, 40..100],
        };
        let err = check_sections(&[s]).unwrap_err();
        assert!(
            err.violations.iter().any(|v| matches!(
                v,
                PlanViolation::Overlap {
                    section: SectionId::Att,
                    ..
                }
            )),
            "{err}"
        );
    }

    #[test]
    fn gapped_owned_partition_is_rejected_as_gap() {
        let s = SectionModel {
            id: SectionId::Instr,
            access: WriteAccess::Owned,
            section_len: 100,
            writes: vec![0..40, 60..100],
        };
        let err = check_sections(&[s]).unwrap_err();
        assert!(
            err.violations.iter().any(|v| matches!(
                v,
                PlanViolation::Gap {
                    section: SectionId::Instr,
                    missing,
                } if *missing == (40..60)
            )),
            "{err}"
        );
    }

    #[test]
    fn short_owned_cover_is_rejected_as_trailing_gap() {
        let s = SectionModel {
            id: SectionId::Aprod1,
            access: WriteAccess::Owned,
            section_len: 10,
            writes: vec![0..7; 1],
        };
        let err = check_sections(&[s]).unwrap_err();
        assert!(
            err.violations.iter().any(|v| matches!(
                v,
                PlanViolation::Gap { missing, .. } if *missing == (7..10)
            )),
            "{err}"
        );
    }

    #[test]
    fn colliding_plain_shared_writes_are_an_illegal_pairing() {
        // The canary's shape: several lanes plain-storing over the whole
        // attitude section.
        let s = SectionModel {
            id: SectionId::Att,
            access: WriteAccess::PlainShared,
            section_len: 90,
            writes: vec![0..90; 8],
        };
        let err = check_sections(&[s]).unwrap_err();
        assert!(
            err.violations
                .iter()
                .any(|v| matches!(v, PlanViolation::IllegalSharedWrites { .. })),
            "{err}"
        );
        let rendered = err.to_string();
        assert!(
            rendered.contains("illegal strategy/block pairing"),
            "{rendered}"
        );
    }

    #[test]
    fn disjoint_plain_shared_writes_pass_without_cover() {
        // Disjoint plain stores are fine, and PlainShared carries no
        // coverage obligation (a partial scatter is legal).
        let s = SectionModel {
            id: SectionId::Att,
            access: WriteAccess::PlainShared,
            section_len: 90,
            writes: vec![0..30, 50..90],
        };
        check_sections(&[s]).expect("disjoint plain writes are sound");
    }

    #[test]
    fn out_of_bounds_write_is_rejected() {
        let s = SectionModel {
            id: SectionId::Glob,
            access: WriteAccess::Atomic,
            section_len: 1,
            writes: vec![0..2; 1],
        };
        let err = check_sections(&[s]).unwrap_err();
        assert!(
            err.violations
                .iter()
                .any(|v| matches!(v, PlanViolation::OutOfBounds { .. })),
            "{err}"
        );
    }

    #[test]
    fn atomic_overlap_is_legal() {
        let s = SectionModel {
            id: SectionId::Att,
            access: WriteAccess::Atomic,
            section_len: 90,
            writes: vec![0..90; 16],
        };
        check_sections(&[s]).expect("atomic overlap is the strategy's point");
    }

    #[test]
    fn write_model_covers_every_section_on_a_real_shape() {
        let p = plan(Aprod2Strategy::Replicated, false);
        let dims = PlanDims {
            n_rows: 230,
            n_obs_rows: 200,
            n_stars: 40,
            n_att: 90,
            n_instr: 24,
            n_glob: 1,
        };
        let model = write_model(&p, &dims);
        let ids: Vec<SectionId> = model.iter().map(|s| s.id).collect();
        assert_eq!(
            ids,
            vec![
                SectionId::Aprod1,
                SectionId::Astro,
                SectionId::Att,
                SectionId::AttReduction,
                SectionId::Instr,
                SectionId::InstrReduction,
                SectionId::Glob,
                SectionId::GlobCombine,
            ]
        );
        check_sections(&model).expect("replicated model is sound");
    }

    #[test]
    fn empty_sections_are_skipped_like_the_launcher_skips_them() {
        let p = plan(Aprod2Strategy::Atomic, true);
        let dims = PlanDims {
            n_rows: 64,
            n_obs_rows: 64,
            n_stars: 12,
            n_att: 0,
            n_instr: 0,
            n_glob: 0,
        };
        let model = write_model(&p, &dims);
        let ids: Vec<SectionId> = model.iter().map(|s| s.id).collect();
        assert_eq!(ids, vec![SectionId::Aprod1, SectionId::Astro]);
        p.analyze(&dims).expect("empty-block plan is sound");
    }
}
