//! Static soundness checking for [`LaunchPlan`] — the analysis layer that
//! proves a plan's memory accesses are race-free *before* anything runs.
//!
//! The paper's portability hazard is that each framework port silently
//! changes how colliding `aprod2` updates are resolved (atomics vs
//! owner-computes vs privatization, §IV–V). The dynamic harness
//! (`gaia-verify`) can only catch a bad resolution *after* executing it
//! under a sampled schedule; this module closes the gap statically. A plan
//! is lowered to a symbolic **access model** — for every output section,
//! the ranges each job writes, the ranges it reads (input vector, matrix
//! rows or ELL mirror, other sections, wave-1 private buffers), and the
//! synchronization discipline both run under — and [`check_sections`]
//! proves the model sound:
//!
//! * [`WriteAccess::Owned`] write-sets must be pairwise disjoint **and**
//!   exactly cover the section span the launch claims (a gap is as wrong
//!   as an overlap: the uncovered columns silently keep stale values);
//! * [`WriteAccess::PlainShared`] write-sets must be pairwise disjoint,
//!   because nothing orders two plain stores to the same slot — an overlap
//!   is precisely the lost-update race the `gaia-verify` canary exhibits;
//! * [`WriteAccess::Atomic`], [`WriteAccess::Locked`], and
//!   [`WriteAccess::Private`] write-sets may overlap by design and are
//!   checked for bounds only;
//! * no job may **read** a section location another job of the same wave
//!   writes, unless the read and the write agree on a synchronizing
//!   discipline (atomic read of an atomic section, lock-guarded read of a
//!   lock-guarded section) — the read/write half of the canary's race,
//!   invisible to a write-only model.
//!
//! [`LaunchPlan::analyze`] additionally proves the streamed worker budget
//! conserves the thread budget. Registry construction routes every
//! plan-carrying backend through [`LaunchPlan::analyze_canonical`], so an
//! unsound plan is rejected at lookup time with a diagnostic naming the
//! offending ranges, not discovered as a wrong solve.

use std::fmt;
use std::ops::Range;

use gaia_sparse::{MatrixLayout, SparseSystem};

use crate::launch::{
    split_ranges, split_span, stream_worker_budget, Aprod2Strategy, LaunchPlan, Stream,
    WorkerBudget,
};

/// The problem-shape parameters a plan's lowering depends on. Decouples the
/// checker from a live [`SparseSystem`] so hand-built shapes (degenerate,
/// empty-block, oversized) can be verified without generating data.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlanDims {
    /// Total rows (observation + constraint) seen by `aprod1` and the
    /// attitude stream.
    pub n_rows: usize,
    /// Observation rows only — the instrumental and global streams stop
    /// here.
    pub n_obs_rows: usize,
    /// Stars; the astrometric section holds `5 × n_stars` columns.
    pub n_stars: usize,
    /// Attitude section length in columns.
    pub n_att: usize,
    /// Instrumental section length in columns.
    pub n_instr: usize,
    /// Global section length in columns (0 or 1 in the AVU-GSR system).
    pub n_glob: usize,
}

impl PlanDims {
    /// Extract the dimensions of a concrete system.
    pub fn for_system(sys: &SparseSystem) -> PlanDims {
        let c = sys.columns();
        PlanDims {
            n_rows: sys.n_rows(),
            n_obs_rows: sys.n_obs_rows(),
            n_stars: sys.layout().n_stars as usize,
            n_att: (c.instr - c.att) as usize,
            n_instr: (c.glob - c.instr) as usize,
            n_glob: sys.layout().n_glob_params as usize,
        }
    }

    /// Total solution columns — the `aprod1` input vector's length.
    pub fn n_cols(&self) -> usize {
        self.n_stars * 5 + self.n_att + self.n_instr + self.n_glob
    }

    /// Observation rows per star, as the row-tile alignment sees it.
    /// Canonical shapes need not divide evenly; the read model only uses
    /// this to map star chunks back to approximate row spans.
    fn obs_per_star(&self) -> usize {
        self.n_obs_rows
            .checked_div(self.n_stars)
            .unwrap_or(1)
            .max(1)
    }

    /// The star span covered by an observation-row span (mirrors
    /// `aprod2_rows`' alignment arithmetic; a full span maps to all stars
    /// exactly, sidestepping non-divisible canonical shapes).
    fn stars_for(&self, obs: &Range<usize>) -> Range<usize> {
        if obs.is_empty() || self.n_stars == 0 {
            0..0
        } else if *obs == (0..self.n_obs_rows) {
            0..self.n_stars
        } else {
            let ops = self.obs_per_star();
            obs.start / ops..(obs.end.div_ceil(ops)).min(self.n_stars)
        }
    }

    /// The observation rows a star chunk's kernels read (inverse of
    /// [`stars_for`](Self::stars_for), clamped to the launch's span).
    fn rows_for_stars(&self, stars: &Range<usize>, obs: &Range<usize>) -> Range<usize> {
        if stars.is_empty() {
            obs.start..obs.start
        } else {
            let ops = self.obs_per_star();
            let start = (stars.start * ops).min(obs.end).max(obs.start);
            let end = if stars.end == self.n_stars {
                obs.end
            } else {
                (stars.end * ops).clamp(start, obs.end)
            };
            start..end
        }
    }

    /// The canonical shape battery [`LaunchPlan::analyze_canonical`] proves
    /// a plan against: a representative small system, a no-global variant,
    /// a degenerate shape with fewer items than chunks, an empty
    /// attitude/instrumental variant, and a large production-like shape.
    pub fn canonical() -> Vec<PlanDims> {
        vec![
            PlanDims {
                n_rows: 230,
                n_obs_rows: 200,
                n_stars: 40,
                n_att: 90,
                n_instr: 24,
                n_glob: 1,
            },
            PlanDims {
                n_rows: 230,
                n_obs_rows: 200,
                n_stars: 40,
                n_att: 90,
                n_instr: 24,
                n_glob: 0,
            },
            PlanDims {
                n_rows: 5,
                n_obs_rows: 3,
                n_stars: 2,
                n_att: 3,
                n_instr: 2,
                n_glob: 1,
            },
            PlanDims {
                n_rows: 64,
                n_obs_rows: 64,
                n_stars: 12,
                n_att: 0,
                n_instr: 0,
                n_glob: 1,
            },
            PlanDims {
                n_rows: 10_000,
                n_obs_rows: 9_000,
                n_stars: 1_500,
                n_att: 700,
                n_instr: 120,
                n_glob: 1,
            },
        ]
    }
}

/// The synchronization discipline a section's wave-1 (or wave-2) jobs
/// write under — what the checker is allowed to assume about two writes
/// landing on the same slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WriteAccess {
    /// Exclusive `&mut` ownership of the range (split_at_mut siblings):
    /// ranges must be disjoint and exactly cover the section.
    Owned,
    /// Atomic read-modify-write (RMW or CAS-retry): overlap is safe.
    Atomic,
    /// Writes land in a per-job private buffer; a later Owned reduction
    /// folds them in. Overlap between *models* of the privates is safe.
    Private,
    /// Writes are batched behind mutexes: overlap is safe.
    Locked,
    /// Plain unsynchronized loads/stores into shared memory: any overlap
    /// is a data race (the canary's lost-update shape).
    PlainShared,
}

impl fmt::Display for WriteAccess {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            WriteAccess::Owned => "owned",
            WriteAccess::Atomic => "atomic",
            WriteAccess::Private => "private",
            WriteAccess::Locked => "locked",
            WriteAccess::PlainShared => "plain-shared",
        })
    }
}

/// Which output section (or deferred reduction pass) a model describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SectionId {
    /// The `aprod1` output rows.
    Aprod1,
    /// Astrometric columns (star-aligned, structurally collision-free).
    Astro,
    /// Attitude columns, wave 1.
    Att,
    /// Instrumental columns, wave 1.
    Instr,
    /// Global columns, wave 1.
    Glob,
    /// Attitude wave-2 reduction (replicated / lock-striped copy-back).
    AttReduction,
    /// Instrumental wave-2 reduction.
    InstrReduction,
    /// Global caller-side combine of replicated partials.
    GlobCombine,
}

impl SectionId {
    fn as_str(self) -> &'static str {
        match self {
            SectionId::Aprod1 => "aprod1",
            SectionId::Astro => "astro",
            SectionId::Att => "att",
            SectionId::Instr => "instr",
            SectionId::Glob => "glob",
            SectionId::AttReduction => "att-reduction",
            SectionId::InstrReduction => "instr-reduction",
            SectionId::GlobCombine => "glob-combine",
        }
    }
}

impl fmt::Display for SectionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Which address space a [`ReadAccess`] range indexes into.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReadSpace {
    /// The launch's input vector (`x` for `aprod1`, `y` for `aprod2`), in
    /// that vector's own coordinates. Immutable for the launch's duration.
    Input,
    /// Row-major matrix coefficient arrays, global row coordinates.
    /// Immutable for the launch's duration.
    MatrixRows,
    /// The ELL mirror's slot-major arrays, global row coordinates. The
    /// launcher materializes the mirror *before* queueing jobs precisely
    /// so these reads never race its lazy construction.
    EllMirror,
    /// An output section, section-local coordinates — the one space writes
    /// also land in, and therefore the only space the race check inspects.
    Section(SectionId),
    /// The wave-1 private / stripe accumulators a wave-2 reduction reads,
    /// section-local coordinates.
    Privates(SectionId),
}

impl fmt::Display for ReadSpace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReadSpace::Input => f.write_str("input"),
            ReadSpace::MatrixRows => f.write_str("matrix-rows"),
            ReadSpace::EllMirror => f.write_str("ell-mirror"),
            ReadSpace::Section(id) => write!(f, "section:{id}"),
            ReadSpace::Privates(id) => write!(f, "privates:{id}"),
        }
    }
}

/// The synchronization discipline a read runs under.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReadSync {
    /// Plain load — safe only against writes the job itself owns or that
    /// happen in another wave.
    Plain,
    /// Atomic load (or the read half of an RMW) — safe against
    /// [`WriteAccess::Atomic`] writes.
    Atomic,
    /// Read under the same mutex that guards the writes — safe against
    /// [`WriteAccess::Locked`] writes.
    Locked,
}

impl fmt::Display for ReadSync {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ReadSync::Plain => "plain",
            ReadSync::Atomic => "atomic",
            ReadSync::Locked => "locked",
        })
    }
}

/// One range a job reads: address space, range, and the synchronization
/// the read runs under.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReadAccess {
    /// Address space the range indexes.
    pub space: ReadSpace,
    /// Half-open range read (coordinates per [`ReadSpace`]).
    pub range: Range<usize>,
    /// Synchronization discipline of the read.
    pub sync: ReadSync,
}

impl ReadAccess {
    /// A plain (unsynchronized) read.
    pub fn plain(space: ReadSpace, range: Range<usize>) -> Self {
        ReadAccess {
            space,
            range,
            sync: ReadSync::Plain,
        }
    }

    /// An atomic read (or the read half of an RMW).
    pub fn atomic(space: ReadSpace, range: Range<usize>) -> Self {
        ReadAccess {
            space,
            range,
            sync: ReadSync::Atomic,
        }
    }

    /// A read under the lock that guards the target's writes.
    pub fn locked(space: ReadSpace, range: Range<usize>) -> Self {
        ReadAccess {
            space,
            range,
            sync: ReadSync::Locked,
        }
    }
}

/// The symbolic access-set of one section under one plan: which ranges the
/// section's jobs write and read, and under which disciplines.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SectionModel {
    /// Section this model describes.
    pub id: SectionId,
    /// Synchronization discipline of the writes.
    pub access: WriteAccess,
    /// Length of the section the ranges index into.
    pub section_len: usize,
    /// The span `Owned` write-sets must exactly tile. Full launches cover
    /// the whole section; a row-tile sub-launch only claims the span its
    /// rows touch (`aprod1` row tiles, star-aligned astrometric slices).
    pub cover: Range<usize>,
    /// Which barrier-separated wave the jobs run in: 1 for the main
    /// launch, 2 for deferred reductions (a `pool.run` barrier sits
    /// between, so cross-wave overlap is ordered, not racy).
    pub wave: u8,
    /// One range per job (section-local coordinates).
    pub writes: Vec<Range<usize>>,
    /// Per-job read sets, parallel to `writes` (`reads[i]` belongs to the
    /// job writing `writes[i]`). May be empty for write-only models.
    pub reads: Vec<Vec<ReadAccess>>,
}

impl SectionModel {
    /// A wave-1, full-cover, write-only model (reads attach via
    /// [`with_reads`](Self::with_reads)).
    pub fn new(
        id: SectionId,
        access: WriteAccess,
        section_len: usize,
        writes: Vec<Range<usize>>,
    ) -> Self {
        SectionModel {
            id,
            access,
            section_len,
            cover: 0..section_len,
            wave: 1,
            writes,
            reads: Vec::new(),
        }
    }

    /// Attach per-job read sets (parallel to `writes`).
    pub fn with_reads(mut self, reads: Vec<Vec<ReadAccess>>) -> Self {
        self.reads = reads;
        self
    }

    /// Place the model in a later wave.
    pub fn with_wave(mut self, wave: u8) -> Self {
        self.wave = wave;
        self
    }

    /// Restrict the span `Owned` writes must exactly tile.
    pub fn with_cover(mut self, cover: Range<usize>) -> Self {
        self.cover = cover;
        self
    }
}

/// One way a plan's access model fails soundness.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlanViolation {
    /// A job writes past the end of its section.
    OutOfBounds {
        /// Offending section.
        section: SectionId,
        /// The out-of-range write.
        range: Range<usize>,
        /// The section's actual length.
        section_len: usize,
    },
    /// Two exclusive-ownership ranges overlap.
    Overlap {
        /// Offending section.
        section: SectionId,
        /// First overlapping range.
        a: Range<usize>,
        /// Second overlapping range.
        b: Range<usize>,
    },
    /// Exclusive-ownership ranges leave part of the claimed span unwritten.
    Gap {
        /// Offending section.
        section: SectionId,
        /// The uncovered span.
        missing: Range<usize>,
    },
    /// Unsynchronized shared writes collide — an illegal strategy for the
    /// block's collision structure.
    IllegalSharedWrites {
        /// Offending section.
        section: SectionId,
        /// First colliding range.
        a: Range<usize>,
        /// Second colliding range.
        b: Range<usize>,
    },
    /// A job reads a section location another job of the same wave writes,
    /// with no synchronizing discipline shared between them — the
    /// read/write half of the canary's data race.
    ReadWriteRace {
        /// Section being written (the read's target space).
        section: SectionId,
        /// Section whose job performs the read.
        reader: SectionId,
        /// The racing read range.
        read: Range<usize>,
        /// The overlapping write range.
        write: Range<usize>,
        /// Discipline of the read.
        read_sync: ReadSync,
        /// Discipline of the write.
        write_access: WriteAccess,
    },
    /// The streamed per-stream shares exceed the effective thread budget.
    BudgetOversubscribed {
        /// Raw thread budget from tuning.
        threads: usize,
        /// Effective budget (`threads.max(4)`).
        effective: usize,
        /// Astrometric / attitude / instrumental shares.
        shares: (usize, usize, usize),
    },
    /// A stream was allotted zero workers and would never run.
    StarvedStream {
        /// The starved stream.
        stream: &'static str,
    },
}

impl fmt::Display for PlanViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanViolation::OutOfBounds {
                section,
                range,
                section_len,
            } => write!(
                f,
                "[{section}] write {range:?} exceeds section length {section_len}"
            ),
            PlanViolation::Overlap { section, a, b } => write!(
                f,
                "[{section}] exclusive write-sets overlap: {a:?} and {b:?} \
                 claim the same columns"
            ),
            PlanViolation::Gap { section, missing } => write!(
                f,
                "[{section}] exclusive write-sets leave {missing:?} uncovered \
                 (stale output columns)"
            ),
            PlanViolation::IllegalSharedWrites { section, a, b } => write!(
                f,
                "[{section}] illegal strategy/block pairing: unsynchronized \
                 shared writes {a:?} and {b:?} collide (lost-update race)"
            ),
            PlanViolation::ReadWriteRace {
                section,
                reader,
                read,
                write,
                read_sync,
                write_access,
            } => write!(
                f,
                "[{section}] read/write race: a `{reader}` job {read_sync}-reads \
                 {read:?} while another job {write_access}-writes {write:?} in \
                 the same wave (no synchronization pairs them)"
            ),
            PlanViolation::BudgetOversubscribed {
                threads,
                effective,
                shares: (astro, att, instr),
            } => write!(
                f,
                "streamed budget oversubscribed: {astro}+{att}+{instr} workers \
                 > effective budget {effective} (threads = {threads})"
            ),
            PlanViolation::StarvedStream { stream } => {
                write!(f, "stream `{stream}` allotted zero workers")
            }
        }
    }
}

/// Successful verification summary: what the checker examined.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlanProof {
    /// Section models checked.
    pub sections: usize,
    /// Total job write-ranges examined across the sections.
    pub jobs: usize,
    /// Total read accesses examined across the sections.
    pub reads: usize,
}

/// Verification failure: every violation found, rendered one per line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanError {
    /// All violations, in section order.
    pub violations: Vec<PlanViolation>,
}

impl PlanError {
    /// Whether any violation comes from the write-disjointness layer
    /// (overlap / gap / bounds / illegal shared writes).
    pub fn has_write_violation(&self) -> bool {
        self.violations.iter().any(|v| {
            matches!(
                v,
                PlanViolation::OutOfBounds { .. }
                    | PlanViolation::Overlap { .. }
                    | PlanViolation::Gap { .. }
                    | PlanViolation::IllegalSharedWrites { .. }
            )
        })
    }

    /// Whether any violation comes from the read/write access layer.
    pub fn has_read_violation(&self) -> bool {
        self.violations
            .iter()
            .any(|v| matches!(v, PlanViolation::ReadWriteRace { .. }))
    }
}

impl fmt::Display for PlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unsound launch plan ({} violation{})",
            self.violations.len(),
            if self.violations.len() == 1 { "" } else { "s" }
        )?;
        for v in &self.violations {
            write!(f, "\n  - {v}")?;
        }
        Ok(())
    }
}

impl std::error::Error for PlanError {}

/// Prove a set of section access-models sound. See the module docs for the
/// per-discipline obligations.
pub fn check_sections(sections: &[SectionModel]) -> Result<PlanProof, PlanError> {
    let mut violations = Vec::new();
    let mut jobs = 0usize;
    let mut reads = 0usize;
    for s in sections {
        jobs += s.writes.len();
        reads += s.reads.iter().map(Vec::len).sum::<usize>();
        for r in &s.writes {
            if r.end > s.section_len {
                violations.push(PlanViolation::OutOfBounds {
                    section: s.id,
                    range: r.clone(),
                    section_len: s.section_len,
                });
            }
        }
        match s.access {
            WriteAccess::Owned => check_exclusive(s, true, &mut violations),
            WriteAccess::PlainShared => check_exclusive(s, false, &mut violations),
            WriteAccess::Atomic | WriteAccess::Locked | WriteAccess::Private => {}
        }
    }
    check_read_write_races(sections, &mut violations);
    if violations.is_empty() {
        Ok(PlanProof {
            sections: sections.len(),
            jobs,
            reads,
        })
    } else {
        Err(PlanError { violations })
    }
}

/// Disjointness (and, for `Owned`, exact-coverage of the claimed span)
/// check over one section's write ranges.
fn check_exclusive(s: &SectionModel, require_cover: bool, violations: &mut Vec<PlanViolation>) {
    let mut ranges: Vec<Range<usize>> =
        s.writes.iter().filter(|r| !r.is_empty()).cloned().collect();
    ranges.sort_by_key(|r| (r.start, r.end));
    let mut cursor = s.cover.start;
    for r in &ranges {
        if r.start < cursor {
            // Report against the previous range that reached `cursor`.
            let prev = ranges
                .iter()
                .find(|p| p.end == cursor && p.start < r.start)
                .cloned()
                .unwrap_or(s.cover.start..cursor);
            let violation = if s.access == WriteAccess::PlainShared {
                PlanViolation::IllegalSharedWrites {
                    section: s.id,
                    a: prev,
                    b: r.clone(),
                }
            } else {
                PlanViolation::Overlap {
                    section: s.id,
                    a: prev,
                    b: r.clone(),
                }
            };
            violations.push(violation);
        } else if require_cover && r.start > cursor {
            violations.push(PlanViolation::Gap {
                section: s.id,
                missing: cursor..r.start,
            });
        }
        cursor = cursor.max(r.end);
    }
    if require_cover && cursor < s.cover.end {
        violations.push(PlanViolation::Gap {
            section: s.id,
            missing: cursor..s.cover.end,
        });
    }
}

/// Can a read under `sync` observe writes under `access` without racing?
/// Private writes land in job-local buffers, so nothing can read them
/// concurrently at all; otherwise read and write must share a
/// synchronizing discipline.
fn read_write_compatible(sync: ReadSync, access: WriteAccess) -> bool {
    matches!(
        (sync, access),
        (_, WriteAccess::Private)
            | (ReadSync::Atomic, WriteAccess::Atomic)
            | (ReadSync::Locked, WriteAccess::Locked)
    )
}

/// Prove no job reads a section location another job of the same wave
/// writes without a pairing synchronization discipline. Only
/// [`ReadSpace::Section`] reads can race: the input vector, matrix arrays,
/// ELL mirror, and wave-1 privates are all immutable for the duration of
/// the wave that reads them. At most one violation is reported per read
/// access (the canary's 8 lanes would otherwise flood 56 copies of the
/// same race).
fn check_read_write_races(sections: &[SectionModel], violations: &mut Vec<PlanViolation>) {
    for (ai, a) in sections.iter().enumerate() {
        for (job, job_reads) in a.reads.iter().enumerate() {
            'reads: for rd in job_reads {
                let ReadSpace::Section(target) = rd.space else {
                    continue;
                };
                for (bi, b) in sections.iter().enumerate() {
                    if b.id != target || b.wave != a.wave {
                        continue;
                    }
                    if read_write_compatible(rd.sync, b.access) {
                        continue;
                    }
                    for (wj, w) in b.writes.iter().enumerate() {
                        // A job may freely read what it alone writes.
                        if ai == bi && job == wj {
                            continue;
                        }
                        if rd.range.start < w.end && w.start < rd.range.end {
                            violations.push(PlanViolation::ReadWriteRace {
                                section: b.id,
                                reader: a.id,
                                read: rd.range.clone(),
                                write: w.clone(),
                                read_sync: rd.sync,
                                write_access: b.access,
                            });
                            continue 'reads;
                        }
                    }
                }
            }
        }
    }
}

/// The matrix space a non-atomic kernel reads under `plan`'s layout.
/// Atomic section kernels always read row-major (their cost is the RMW
/// traffic, not the gather), so they bypass the ELL mirror even when the
/// plan selects it; the global kernels are row-major unconditionally.
fn matrix_space(plan: &LaunchPlan, atomic_kernel: bool) -> ReadSpace {
    if plan.matrix_layout == MatrixLayout::Ell && !atomic_kernel {
        ReadSpace::EllMirror
    } else {
        ReadSpace::MatrixRows
    }
}

/// Lower one colliding-section strategy to its wave-1 model (and wave-2
/// reduction model, when the strategy defers one). Mirrors
/// `LaunchPlan::section_jobs` exactly, including the row span the
/// sub-launch restricts each stream to.
// The parameter list mirrors `section_jobs`' signature one-for-one; folding
// them into a struct would obscure that correspondence.
#[allow(clippy::too_many_arguments)]
fn lower_section(
    plan: &LaunchPlan,
    stream: Stream,
    wave1: SectionId,
    wave2: SectionId,
    rows: Range<usize>,
    section_len: usize,
    strategy: Aprod2Strategy,
    out: &mut Vec<SectionModel>,
) {
    if section_len == 0 {
        return;
    }
    let glob_stream = stream == Stream::Glob;
    match strategy {
        // A single global slot degenerates ownership and striping to one
        // exclusive reduction job (mirrors `glob_jobs`).
        Aprod2Strategy::OwnerComputes | Aprod2Strategy::LockStriped { .. } if glob_stream => {
            let reads = vec![vec![
                ReadAccess::plain(ReadSpace::Input, rows.clone()),
                ReadAccess::plain(ReadSpace::MatrixRows, rows),
                ReadAccess::plain(ReadSpace::Section(wave1), 0..section_len),
            ]];
            out.push(
                SectionModel::new(
                    wave1,
                    WriteAccess::Owned,
                    section_len,
                    vec![0..section_len; 1],
                )
                .with_reads(reads),
            );
        }
        Aprod2Strategy::OwnerComputes => {
            let chunks = plan.section_chunks(stream, section_len);
            let writes = split_ranges(section_len, chunks);
            let reads = writes
                .iter()
                .map(|own| {
                    vec![
                        ReadAccess::plain(ReadSpace::Input, rows.clone()),
                        ReadAccess::plain(matrix_space(plan, false), rows.clone()),
                        ReadAccess::plain(ReadSpace::Section(wave1), own.clone()),
                    ]
                })
                .collect();
            out.push(
                SectionModel::new(wave1, WriteAccess::Owned, section_len, writes).with_reads(reads),
            );
        }
        Aprod2Strategy::Atomic | Aprod2Strategy::CasLoop => {
            let chunks = plan.section_chunks(stream, rows.len());
            let spans = split_span(rows, chunks);
            let reads = spans
                .iter()
                .map(|chunk| {
                    vec![
                        ReadAccess::plain(ReadSpace::Input, chunk.clone()),
                        ReadAccess::plain(matrix_space(plan, true), chunk.clone()),
                        ReadAccess::atomic(ReadSpace::Section(wave1), 0..section_len),
                    ]
                })
                .collect();
            out.push(
                SectionModel::new(
                    wave1,
                    WriteAccess::Atomic,
                    section_len,
                    vec![0..section_len; spans.len()],
                )
                .with_reads(reads),
            );
        }
        Aprod2Strategy::Replicated => {
            let chunks = plan.section_chunks(stream, rows.len());
            let spans = split_span(rows, chunks);
            let reads = spans
                .iter()
                .map(|chunk| {
                    vec![
                        ReadAccess::plain(ReadSpace::Input, chunk.clone()),
                        ReadAccess::plain(matrix_space(plan, glob_stream), chunk.clone()),
                    ]
                })
                .collect();
            out.push(
                SectionModel::new(
                    wave1,
                    WriteAccess::Private,
                    section_len,
                    vec![0..section_len; spans.len()],
                )
                .with_reads(reads),
            );
            // Wave 2: column-parallel owned reduction over the privates
            // (the single caller-side combine, for the global slot).
            let red_writes = if glob_stream {
                vec![0..section_len; 1]
            } else {
                split_ranges(section_len, plan.tuning.chunk_count(section_len))
            };
            let red_reads = red_writes
                .iter()
                .map(|own| {
                    vec![
                        ReadAccess::plain(ReadSpace::Privates(wave1), own.clone()),
                        ReadAccess::plain(ReadSpace::Section(wave2), own.clone()),
                    ]
                })
                .collect();
            out.push(
                SectionModel::new(wave2, WriteAccess::Owned, section_len, red_writes)
                    .with_wave(2)
                    .with_reads(red_reads),
            );
        }
        Aprod2Strategy::LockStriped { stripes } => {
            let chunks = plan.section_chunks(stream, rows.len());
            let spans = split_span(rows, chunks);
            let reads = spans
                .iter()
                .map(|chunk| {
                    vec![
                        ReadAccess::plain(ReadSpace::Input, chunk.clone()),
                        ReadAccess::plain(matrix_space(plan, false), chunk.clone()),
                        ReadAccess::locked(ReadSpace::Section(wave1), 0..section_len),
                    ]
                })
                .collect();
            out.push(
                SectionModel::new(
                    wave1,
                    WriteAccess::Locked,
                    section_len,
                    vec![0..section_len; spans.len()],
                )
                .with_reads(reads),
            );
            // Wave 2 copies each stripe accumulator back into its owned
            // slice of the section.
            let n_stripes = stripes.max(1).min(section_len);
            let red_writes = split_ranges(section_len, n_stripes);
            let red_reads = red_writes
                .iter()
                .map(|own| {
                    vec![
                        ReadAccess::locked(ReadSpace::Privates(wave1), own.clone()),
                        ReadAccess::plain(ReadSpace::Section(wave2), own.clone()),
                    ]
                })
                .collect();
            out.push(
                SectionModel::new(wave2, WriteAccess::Owned, section_len, red_writes)
                    .with_wave(2)
                    .with_reads(red_reads),
            );
        }
    }
}

/// Lower `plan` against `dims` restricted to a global row range — the
/// symbolic access model `aprod1_rows` + `aprod2_rows` would execute for a
/// row tile: one [`SectionModel`] per output section and deferred
/// reduction, in launch order. Each stream's reads and the spans `Owned`
/// writes must tile are clamped exactly the way the launcher clamps them
/// (attitude sees every row in the range, instrumental/global stop at the
/// observation rows, astrometric work is star-aligned).
pub fn access_model_rows(
    plan: &LaunchPlan,
    dims: &PlanDims,
    rows: Range<usize>,
) -> Vec<SectionModel> {
    let mut out = Vec::new();

    let att_rows = rows.start.min(dims.n_rows)..rows.end.min(dims.n_rows);
    let obs_rows = rows.start.min(dims.n_obs_rows)..rows.end.min(dims.n_obs_rows);

    // aprod1: row-range ownership over the output rows. The kernels gather
    // from the whole input vector (column-scattered nonzeros).
    let a1_writes = split_span(att_rows.clone(), plan.aprod1_chunks(att_rows.len()));
    let a1_reads = a1_writes
        .iter()
        .map(|r| {
            vec![
                ReadAccess::plain(ReadSpace::Input, 0..dims.n_cols()),
                ReadAccess::plain(matrix_space(plan, false), r.clone()),
                ReadAccess::plain(ReadSpace::Section(SectionId::Aprod1), r.clone()),
            ]
        })
        .collect();
    out.push(
        SectionModel::new(
            SectionId::Aprod1,
            WriteAccess::Owned,
            dims.n_rows,
            a1_writes,
        )
        .with_cover(att_rows.clone())
        .with_reads(a1_reads),
    );

    // Astrometric stream: star chunks own matching ×5 column slices.
    let n_astro = dims.n_stars * 5;
    let stars = dims.stars_for(&obs_rows);
    let star_spans = split_span(
        stars.clone(),
        plan.section_chunks(Stream::Astro, stars.len()),
    );
    let astro_reads = star_spans
        .iter()
        .map(|chunk| {
            let rows = dims.rows_for_stars(chunk, &obs_rows);
            vec![
                ReadAccess::plain(ReadSpace::Input, rows.clone()),
                ReadAccess::plain(matrix_space(plan, false), rows),
                ReadAccess::plain(
                    ReadSpace::Section(SectionId::Astro),
                    chunk.start * 5..chunk.end * 5,
                ),
            ]
        })
        .collect();
    out.push(
        SectionModel::new(
            SectionId::Astro,
            WriteAccess::Owned,
            n_astro,
            star_spans
                .into_iter()
                .map(|stars| stars.start * 5..stars.end * 5)
                .collect(),
        )
        .with_cover(stars.start * 5..stars.end * 5)
        .with_reads(astro_reads),
    );

    lower_section(
        plan,
        Stream::Att,
        SectionId::Att,
        SectionId::AttReduction,
        att_rows,
        dims.n_att,
        plan.spec.att,
        &mut out,
    );
    lower_section(
        plan,
        Stream::Instr,
        SectionId::Instr,
        SectionId::InstrReduction,
        obs_rows.clone(),
        dims.n_instr,
        plan.spec.instr,
        &mut out,
    );
    if dims.n_glob > 0 {
        lower_section(
            plan,
            Stream::Glob,
            SectionId::Glob,
            SectionId::GlobCombine,
            obs_rows,
            dims.n_glob,
            plan.spec.glob,
            &mut out,
        );
    }

    out
}

/// Lower `plan` against `dims` to the symbolic access model `aprod1` +
/// `aprod2` would execute over the full row range.
pub fn write_model(plan: &LaunchPlan, dims: &PlanDims) -> Vec<SectionModel> {
    access_model_rows(plan, dims, 0..dims.n_rows)
}

/// Verify `plan` against `dims`: lower to the access model, prove every
/// section sound (write disjointness *and* read/write race freedom), and
/// prove the streamed budget conserves the thread budget. Records an
/// `analyze` telemetry cell entry either way.
pub fn analyze_plan(plan: &LaunchPlan, dims: &PlanDims) -> Result<PlanProof, PlanError> {
    let model = write_model(plan, dims);
    let mut result = check_sections(&model);

    if plan.spec.budget == WorkerBudget::Streamed {
        let threads = plan.tuning.threads;
        let (astro, att, instr) = stream_worker_budget(threads);
        let effective = threads.max(4);
        let mut extra = Vec::new();
        if astro + att + instr > effective {
            extra.push(PlanViolation::BudgetOversubscribed {
                threads,
                effective,
                shares: (astro, att, instr),
            });
        }
        for (stream, share) in [("astro", astro), ("att", att), ("instr", instr)] {
            if share == 0 {
                extra.push(PlanViolation::StarvedStream { stream });
            }
        }
        if !extra.is_empty() {
            let mut violations = match result {
                Ok(_) => Vec::new(),
                Err(e) => e.violations,
            };
            violations.extend(extra);
            result = Err(PlanError { violations });
        }
    }

    let violation_count = match &result {
        Ok(_) => 0,
        Err(e) => e.violations.len(),
    } as u64;
    gaia_telemetry::record_analyze_plan(model.len() as u64, violation_count);
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::launch::{Aprod2Spec, KernelVariant};
    use crate::tuning::Tuning;

    fn plan(strategy: Aprod2Strategy, streamed: bool) -> LaunchPlan {
        let spec = if streamed {
            Aprod2Spec::streamed(strategy)
        } else {
            Aprod2Spec::uniform(strategy)
        };
        LaunchPlan::new(
            Tuning {
                threads: 4,
                chunks_per_thread: 2,
            },
            spec,
        )
    }

    const STRATEGIES: [Aprod2Strategy; 5] = [
        Aprod2Strategy::OwnerComputes,
        Aprod2Strategy::Atomic,
        Aprod2Strategy::CasLoop,
        Aprod2Strategy::Replicated,
        Aprod2Strategy::LockStriped { stripes: 8 },
    ];

    #[test]
    fn every_strategy_and_budget_is_sound_on_canonical_dims() {
        for strategy in STRATEGIES {
            for streamed in [false, true] {
                let p = plan(strategy, streamed);
                p.analyze_canonical().unwrap_or_else(|e| {
                    panic!("{strategy:?} streamed={streamed} judged unsound:\n{e}")
                });
            }
        }
    }

    /// Strip the layout-dependent half of a model: map ELL-mirror reads
    /// back to their row-major twins (same rows, different value arrays).
    fn normalize_layout(mut model: Vec<SectionModel>) -> Vec<SectionModel> {
        for s in &mut model {
            for reads in &mut s.reads {
                for r in reads {
                    if r.space == ReadSpace::EllMirror {
                        r.space = ReadSpace::MatrixRows;
                    }
                }
            }
        }
        model
    }

    /// Kernel variant and value layout change loop shape and gather
    /// source, never access-sets: every variant × layout combination must
    /// lower to the same sound model as the scalar row-major plan, up to
    /// the matrix space non-atomic kernels gather from (`Ell` redirects
    /// those reads to the mirror; identical rows either way).
    #[test]
    fn every_variant_and_layout_is_sound_on_canonical_dims() {
        use gaia_sparse::MatrixLayout;
        let strategies = [
            Aprod2Strategy::OwnerComputes,
            Aprod2Strategy::Atomic,
            Aprod2Strategy::Replicated,
            Aprod2Strategy::LockStriped { stripes: 8 },
        ];
        for strategy in strategies {
            for streamed in [false, true] {
                let base = plan(strategy, streamed);
                let scalar_model: Vec<_> = PlanDims::canonical()
                    .iter()
                    .map(|d| write_model(&base, d))
                    .collect();
                for variant in KernelVariant::ALL {
                    for layout in MatrixLayout::ALL {
                        let p = base.with_variant(variant).with_matrix_layout(layout);
                        p.analyze_canonical().unwrap_or_else(|e| {
                            panic!("{variant}/{layout:?} {strategy:?} judged unsound:\n{e}")
                        });
                        let model: Vec<_> = PlanDims::canonical()
                            .iter()
                            .map(|d| normalize_layout(write_model(&p, d)))
                            .collect();
                        assert_eq!(
                            model, scalar_model,
                            "{variant}/{layout:?} changed the access model"
                        );
                    }
                }
            }
        }
    }

    /// Under the ELL layout, every non-atomic kernel's matrix read must
    /// come from the mirror, and atomic kernels must keep reading
    /// row-major (they bypass the mirror by design).
    #[test]
    fn ell_layout_redirects_exactly_the_non_atomic_matrix_reads() {
        use gaia_sparse::MatrixLayout;
        let dims = &PlanDims::canonical()[0];
        for strategy in STRATEGIES {
            let p = plan(strategy, false).with_matrix_layout(MatrixLayout::Ell);
            let atomic_strategy =
                matches!(strategy, Aprod2Strategy::Atomic | Aprod2Strategy::CasLoop);
            for s in write_model(&p, dims) {
                for rd in s.reads.iter().flatten() {
                    match rd.space {
                        ReadSpace::EllMirror => assert!(
                            !(atomic_strategy
                                && matches!(
                                    s.id,
                                    SectionId::Att | SectionId::Instr | SectionId::Glob
                                )),
                            "[{}] atomic kernels must not read the mirror",
                            s.id
                        ),
                        ReadSpace::MatrixRows => assert!(
                            s.id == SectionId::Glob
                                || s.id == SectionId::GlobCombine
                                || (atomic_strategy
                                    && matches!(s.id, SectionId::Att | SectionId::Instr)),
                            "[{}] non-atomic kernel read row-major under Ell",
                            s.id
                        ),
                        _ => {}
                    }
                }
            }
        }
    }

    /// Every job carries a read-set in the full model: the access model is
    /// total, not just patched onto some strategies.
    #[test]
    fn every_job_in_every_strategy_model_carries_reads() {
        for strategy in STRATEGIES {
            for streamed in [false, true] {
                let p = plan(strategy, streamed);
                for dims in PlanDims::canonical() {
                    for s in write_model(&p, &dims) {
                        assert_eq!(
                            s.reads.len(),
                            s.writes.len(),
                            "[{}] {strategy:?} read-sets not parallel to writes",
                            s.id
                        );
                        for (job, reads) in s.reads.iter().enumerate() {
                            assert!(
                                !reads.is_empty(),
                                "[{}] {strategy:?} job {job} has no reads",
                                s.id
                            );
                        }
                    }
                }
            }
        }
    }

    /// Row-tile sub-launches clamp reads and cover to the tile: the
    /// attitude stream sees the whole row range, instrumental/global stop
    /// at the observation rows, and `aprod1`/astro only claim (and must
    /// exactly tile) the spans the tile touches.
    #[test]
    fn row_restricted_model_clamps_reads_and_cover_to_the_tile() {
        let dims = PlanDims {
            n_rows: 230,
            n_obs_rows: 200,
            n_stars: 40,
            n_att: 90,
            n_instr: 24,
            n_glob: 1,
        };
        // A star-aligned mid-system tile: rows 50..105 (stars 10..21).
        let p = plan(Aprod2Strategy::OwnerComputes, false);
        let model = access_model_rows(&p, &dims, 50..105);
        check_sections(&model).expect("restricted owner-computes model is sound");

        let a1 = model.iter().find(|s| s.id == SectionId::Aprod1).unwrap();
        assert_eq!(a1.cover, 50..105);
        assert!(a1.writes.iter().all(|w| w.start >= 50 && w.end <= 105));

        let astro = model.iter().find(|s| s.id == SectionId::Astro).unwrap();
        assert_eq!(astro.cover, 10 * 5..21 * 5);

        let att = model.iter().find(|s| s.id == SectionId::Att).unwrap();
        // Owner-computes partitions columns fully even in a sub-launch…
        assert_eq!(att.cover, 0..dims.n_att);
        // …but every job's input read is clamped to the tile's rows.
        for reads in &att.reads {
            let input = reads
                .iter()
                .find(|r| r.space == ReadSpace::Input)
                .expect("att job reads input");
            assert_eq!(input.range, 50..105);
        }

        let instr = model.iter().find(|s| s.id == SectionId::Instr).unwrap();
        for reads in &instr.reads {
            let input = reads
                .iter()
                .find(|r| r.space == ReadSpace::Input)
                .expect("instr job reads input");
            assert_eq!(input.range, 50..105, "instr clamps to obs rows");
        }

        // A constraint-tail tile past the observation rows: no astro /
        // instr / glob work, attitude and aprod1 restricted to the tail.
        let tail = access_model_rows(&p, &dims, 200..230);
        check_sections(&tail).expect("tail model is sound");
        let astro = tail.iter().find(|s| s.id == SectionId::Astro).unwrap();
        assert_eq!(astro.cover, 0..0);
        assert!(astro.writes.iter().all(Range::is_empty));
        let a1 = tail.iter().find(|s| s.id == SectionId::Aprod1).unwrap();
        assert_eq!(a1.cover, 200..230);
    }

    #[test]
    fn overlapping_owned_partition_is_rejected_as_overlap() {
        let s = SectionModel::new(
            SectionId::Att,
            WriteAccess::Owned,
            100,
            vec![0..60, 40..100],
        );
        let err = check_sections(&[s]).unwrap_err();
        assert!(
            err.violations.iter().any(|v| matches!(
                v,
                PlanViolation::Overlap {
                    section: SectionId::Att,
                    ..
                }
            )),
            "{err}"
        );
    }

    #[test]
    fn gapped_owned_partition_is_rejected_as_gap() {
        let s = SectionModel::new(
            SectionId::Instr,
            WriteAccess::Owned,
            100,
            vec![0..40, 60..100],
        );
        let err = check_sections(&[s]).unwrap_err();
        assert!(
            err.violations.iter().any(|v| matches!(
                v,
                PlanViolation::Gap {
                    section: SectionId::Instr,
                    missing,
                } if *missing == (40..60)
            )),
            "{err}"
        );
    }

    #[test]
    fn short_owned_cover_is_rejected_as_trailing_gap() {
        let s = SectionModel::new(SectionId::Aprod1, WriteAccess::Owned, 10, vec![0..7; 1]);
        let err = check_sections(&[s]).unwrap_err();
        assert!(
            err.violations.iter().any(|v| matches!(
                v,
                PlanViolation::Gap { missing, .. } if *missing == (7..10)
            )),
            "{err}"
        );
    }

    #[test]
    fn restricted_cover_accepts_a_partial_tile_and_still_demands_it_whole() {
        // A row tile owning 50..105 exactly is sound…
        let ok = SectionModel::new(
            SectionId::Aprod1,
            WriteAccess::Owned,
            230,
            vec![50..80, 80..105],
        )
        .with_cover(50..105);
        check_sections(&[ok]).expect("exact tile cover is sound");
        // …but a gap inside the claimed tile is still a violation.
        let bad = SectionModel::new(
            SectionId::Aprod1,
            WriteAccess::Owned,
            230,
            vec![50..70, 80..105],
        )
        .with_cover(50..105);
        let err = check_sections(&[bad]).unwrap_err();
        assert!(
            err.violations.iter().any(|v| matches!(
                v,
                PlanViolation::Gap { missing, .. } if *missing == (70..80)
            )),
            "{err}"
        );
    }

    #[test]
    fn colliding_plain_shared_writes_are_an_illegal_pairing() {
        // The canary's shape: several lanes plain-storing over the whole
        // attitude section.
        let s = SectionModel::new(SectionId::Att, WriteAccess::PlainShared, 90, vec![0..90; 8]);
        let err = check_sections(&[s]).unwrap_err();
        assert!(
            err.violations
                .iter()
                .any(|v| matches!(v, PlanViolation::IllegalSharedWrites { .. })),
            "{err}"
        );
        let rendered = err.to_string();
        assert!(
            rendered.contains("illegal strategy/block pairing"),
            "{rendered}"
        );
    }

    #[test]
    fn disjoint_plain_shared_writes_pass_without_cover() {
        // Disjoint plain stores are fine, and PlainShared carries no
        // coverage obligation (a partial scatter is legal).
        let s = SectionModel::new(
            SectionId::Att,
            WriteAccess::PlainShared,
            90,
            vec![0..30, 50..90],
        );
        check_sections(&[s]).expect("disjoint plain writes are sound");
    }

    #[test]
    fn plain_read_of_a_plain_written_range_is_a_read_write_race() {
        // The canary's read half: every lane plain-reads the whole section
        // other lanes plain-write (read slot → preempt → store back).
        let s = SectionModel::new(SectionId::Att, WriteAccess::PlainShared, 90, vec![0..90; 8])
            .with_reads(vec![
                vec![ReadAccess::plain(
                    ReadSpace::Section(SectionId::Att),
                    0..90
                )];
                8
            ]);
        let err = check_sections(&[s]).unwrap_err();
        assert!(err.has_read_violation(), "{err}");
        assert!(err.has_write_violation(), "{err}");
        let rendered = err.to_string();
        assert!(rendered.contains("read/write race"), "{rendered}");
        // One race per reading job, not one per (reader, writer) pair.
        let races = err
            .violations
            .iter()
            .filter(|v| matches!(v, PlanViolation::ReadWriteRace { .. }))
            .count();
        assert_eq!(races, 8, "{err}");
    }

    #[test]
    fn cross_section_plain_read_of_owned_writes_races() {
        // A hypothetical gather section reading attitude columns another
        // section's jobs own-write in the same wave.
        let writer = SectionModel::new(SectionId::Att, WriteAccess::Owned, 90, vec![0..45, 45..90]);
        let reader = SectionModel::new(SectionId::Instr, WriteAccess::Owned, 10, vec![0..10])
            .with_reads(vec![vec![
                ReadAccess::plain(ReadSpace::Section(SectionId::Att), 30..60),
                ReadAccess::plain(ReadSpace::Section(SectionId::Instr), 0..10),
            ]]);
        let err = check_sections(&[writer, reader]).unwrap_err();
        assert!(
            err.violations.iter().any(|v| matches!(
                v,
                PlanViolation::ReadWriteRace {
                    section: SectionId::Att,
                    reader: SectionId::Instr,
                    ..
                }
            )),
            "{err}"
        );
    }

    #[test]
    fn synchronized_and_cross_wave_reads_do_not_race() {
        // Atomic reads of an atomic section pair up.
        let atomic = SectionModel::new(SectionId::Att, WriteAccess::Atomic, 90, vec![0..90; 4])
            .with_reads(vec![
                vec![ReadAccess::atomic(
                    ReadSpace::Section(SectionId::Att),
                    0..90
                )];
                4
            ]);
        check_sections(&[atomic]).expect("atomic read/write pairs are sound");

        // Locked reads of a locked section pair up.
        let locked = SectionModel::new(SectionId::Att, WriteAccess::Locked, 90, vec![0..90; 4])
            .with_reads(vec![
                vec![ReadAccess::locked(
                    ReadSpace::Section(SectionId::Att),
                    0..90
                )];
                4
            ]);
        check_sections(&[locked]).expect("locked read/write pairs are sound");

        // A wave-2 reduction plain-reads what wave 1 wrote: the barrier
        // orders them, so no race.
        let wave1 = SectionModel::new(SectionId::Att, WriteAccess::Private, 90, vec![0..90; 4]);
        let wave2 = SectionModel::new(
            SectionId::AttReduction,
            WriteAccess::Owned,
            90,
            vec![0..45, 45..90],
        )
        .with_wave(2)
        .with_reads(vec![
            vec![ReadAccess::plain(
                ReadSpace::Section(SectionId::Att),
                0..90
            )];
            2
        ]);
        check_sections(&[wave1, wave2]).expect("cross-wave reads are barrier-ordered");
    }

    #[test]
    fn a_jobs_read_of_its_own_exclusive_range_is_not_a_race() {
        let s = SectionModel::new(SectionId::Att, WriteAccess::Owned, 90, vec![0..45, 45..90])
            .with_reads(vec![
                vec![ReadAccess::plain(ReadSpace::Section(SectionId::Att), 0..45)],
                vec![ReadAccess::plain(
                    ReadSpace::Section(SectionId::Att),
                    45..90,
                )],
            ]);
        check_sections(&[s]).expect("own-range accumulation reads are sound");
    }

    #[test]
    fn out_of_bounds_write_is_rejected() {
        let s = SectionModel::new(SectionId::Glob, WriteAccess::Atomic, 1, vec![0..2; 1]);
        let err = check_sections(&[s]).unwrap_err();
        assert!(
            err.violations
                .iter()
                .any(|v| matches!(v, PlanViolation::OutOfBounds { .. })),
            "{err}"
        );
    }

    #[test]
    fn atomic_overlap_is_legal() {
        let s = SectionModel::new(SectionId::Att, WriteAccess::Atomic, 90, vec![0..90; 16]);
        check_sections(&[s]).expect("atomic overlap is the strategy's point");
    }

    #[test]
    fn write_model_covers_every_section_on_a_real_shape() {
        let p = plan(Aprod2Strategy::Replicated, false);
        let dims = PlanDims {
            n_rows: 230,
            n_obs_rows: 200,
            n_stars: 40,
            n_att: 90,
            n_instr: 24,
            n_glob: 1,
        };
        let model = write_model(&p, &dims);
        let ids: Vec<SectionId> = model.iter().map(|s| s.id).collect();
        assert_eq!(
            ids,
            vec![
                SectionId::Aprod1,
                SectionId::Astro,
                SectionId::Att,
                SectionId::AttReduction,
                SectionId::Instr,
                SectionId::InstrReduction,
                SectionId::Glob,
                SectionId::GlobCombine,
            ]
        );
        let proof = check_sections(&model).expect("replicated model is sound");
        assert!(proof.reads > 0, "full model carries read-sets");
        // Reductions run behind the barrier.
        for s in &model {
            let expect_wave = matches!(
                s.id,
                SectionId::AttReduction | SectionId::InstrReduction | SectionId::GlobCombine
            );
            assert_eq!(s.wave == 2, expect_wave, "[{}] wave mislabeled", s.id);
        }
    }

    #[test]
    fn empty_sections_are_skipped_like_the_launcher_skips_them() {
        let p = plan(Aprod2Strategy::Atomic, true);
        let dims = PlanDims {
            n_rows: 64,
            n_obs_rows: 64,
            n_stars: 12,
            n_att: 0,
            n_instr: 0,
            n_glob: 0,
        };
        let model = write_model(&p, &dims);
        let ids: Vec<SectionId> = model.iter().map(|s| s.id).collect();
        assert_eq!(ids, vec![SectionId::Aprod1, SectionId::Astro]);
        p.analyze(&dims).expect("empty-block plan is sound");
    }
}
