//! Profile-driven backend: runs the persisted tuner winner per layout.
//!
//! The paper pins a tuned launch configuration per platform after its §V-B
//! search; [`TunedBackend`] is that pinning made executable. At
//! construction it loads every valid `gaia-tune-profile/v1` file from the
//! tuning directory (see [`crate::profile::tuning_dir`]); at solve time it
//! matches the live system's shape against the loaded profiles and runs
//! the pinned [`LaunchPlan`] — or the default chunked plan when no profile
//! matches, recording the fallback in telemetry so a silent mismatch shows
//! up in run reports.

use std::sync::Arc;

use gaia_sparse::{SparseSystem, SystemLayout};
use parking_lot::Mutex;

use crate::exec::ExecutorPool;
use crate::launch::{Aprod2Spec, Aprod2Strategy, LaunchPlan};
use crate::profile::{self, LaunchProfile};
use crate::registry::tuned_name;
use crate::traits::Backend;
use crate::tuning::Tuning;

/// Backend that executes persisted tuning profiles, defaulting to the
/// chunked owner-computes plan for shapes the tuner never saw.
#[derive(Debug)]
pub struct TunedBackend {
    default_plan: LaunchPlan,
    pool: Arc<ExecutorPool>,
    profiles: Vec<LaunchProfile>,
    /// Resolution cache: the last shape seen and the plan picked for it
    /// (LSQR alternates `aprod1`/`aprod2` on one system, so one entry is
    /// a perfect cache).
    resolved: Mutex<Option<(SystemLayout, LaunchPlan)>>,
}

impl TunedBackend {
    /// Create with explicit tuning, loading profiles from the default
    /// tuning directory (`GAIA_TUNING_DIR` or `<results>/tuning`).
    pub fn new(tuning: Tuning) -> Self {
        let (profiles, _rejected) = profile::load_profiles();
        TunedBackend::with_profiles(tuning, profiles)
    }

    /// Create with an explicit profile set (tests, in-process tuners).
    pub fn with_profiles(tuning: Tuning, profiles: Vec<LaunchProfile>) -> Self {
        TunedBackend {
            default_plan: LaunchPlan::new(
                tuning,
                Aprod2Spec::uniform(Aprod2Strategy::OwnerComputes),
            ),
            pool: ExecutorPool::shared(tuning.threads),
            profiles,
            resolved: Mutex::new(None),
        }
    }

    /// How many profiles were loaded and validated.
    pub fn profile_count(&self) -> usize {
        self.profiles.len()
    }

    /// The plan this backend would run for a system of shape `shape`:
    /// the first matching profile's plan (re-tuned to this backend's
    /// thread budget is *not* applied — the profile's own tuning wins,
    /// that is what was measured), else the default plan.
    pub fn plan_for(&self, shape: &SystemLayout) -> LaunchPlan {
        for p in &self.profiles {
            if p.shape == *shape {
                if let Ok(plan) = p.to_plan() {
                    return plan;
                }
            }
        }
        gaia_telemetry::record_tune_fallback();
        self.default_plan
    }

    fn resolve(&self, sys: &SparseSystem) -> LaunchPlan {
        let shape = *sys.layout();
        let mut cached = self.resolved.lock();
        if let Some((s, plan)) = *cached {
            if s == shape {
                return plan;
            }
        }
        let plan = self.plan_for(&shape);
        *cached = Some((shape, plan));
        plan
    }
}

impl Backend for TunedBackend {
    fn name(&self) -> String {
        tuned_name("tuned", self.default_plan.tuning)
    }

    fn description(&self) -> &'static str {
        "persisted tuner winner per layout (falls back to owner-computes)"
    }

    fn aprod1(&self, sys: &SparseSystem, x: &[f64], out: &mut [f64]) {
        self.check_aprod1(sys, x, out);
        self.resolve(sys).aprod1(&self.pool, sys, x, out);
    }

    fn aprod2(&self, sys: &SparseSystem, y: &[f64], out: &mut [f64]) {
        self.check_aprod2(sys, y, out);
        self.resolve(sys).aprod2(&self.pool, sys, y, out);
    }

    /// The *default* plan — the one shape-independent answer. Per-shape
    /// profile plans are each proven sound when loaded
    /// ([`LaunchProfile::to_plan`] runs the canonical battery), so the
    /// registry's static check on this plan plus the load-time checks
    /// cover everything this backend can execute.
    fn launch_plan(&self) -> Option<LaunchPlan> {
        Some(self.default_plan)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::launch::{KernelVariant, WorkerBudget};
    use crate::SeqBackend;
    use gaia_sparse::{Generator, GeneratorConfig, MatrixLayout};

    fn tiny_profile() -> LaunchProfile {
        let plan = LaunchPlan::new(
            Tuning {
                threads: 3,
                chunks_per_thread: 2,
            },
            Aprod2Spec {
                att: Aprod2Strategy::Replicated,
                instr: Aprod2Strategy::Atomic,
                glob: Aprod2Strategy::OwnerComputes,
                budget: WorkerBudget::Uniform,
            },
        )
        .with_variant(KernelVariant::Unrolled)
        .with_matrix_layout(MatrixLayout::Ell);
        LaunchProfile::from_plan("tiny", SystemLayout::tiny(), &plan)
    }

    #[test]
    fn matching_profile_selects_its_plan() {
        let b = TunedBackend::with_profiles(Tuning::with_threads(2), vec![tiny_profile()]);
        let plan = b.plan_for(&SystemLayout::tiny());
        assert_eq!(plan.variant, KernelVariant::Unrolled);
        assert_eq!(plan.matrix_layout, MatrixLayout::Ell);
        assert_eq!(plan.tuning.threads, 3);
        // An unseen shape falls back to the default plan.
        let fallback = b.plan_for(&SystemLayout::small());
        assert_eq!(fallback, b.launch_plan().unwrap());
    }

    #[test]
    fn tuned_solve_matches_sequential() {
        let sys = Generator::new(GeneratorConfig::new(SystemLayout::tiny()).seed(5)).generate();
        let b = TunedBackend::with_profiles(Tuning::with_threads(3), vec![tiny_profile()]);
        let x: Vec<f64> = (0..sys.n_cols()).map(|i| (i as f64 * 0.3).sin()).collect();
        let y: Vec<f64> = (0..sys.n_rows()).map(|i| (i as f64 * 0.7).cos()).collect();
        let seq = SeqBackend;
        let mut want1 = vec![0.0; sys.n_rows()];
        seq.aprod1(&sys, &x, &mut want1);
        let mut got1 = vec![0.0; sys.n_rows()];
        b.aprod1(&sys, &x, &mut got1);
        for (g, w) in got1.iter().zip(&want1) {
            assert!((g - w).abs() < 1e-10);
        }
        let mut want2 = vec![0.0; sys.n_cols()];
        seq.aprod2(&sys, &y, &mut want2);
        let mut got2 = vec![0.0; sys.n_cols()];
        b.aprod2(&sys, &y, &mut got2);
        for (g, w) in got2.iter().zip(&want2) {
            assert!((g - w).abs() < 1e-10);
        }
    }

    #[test]
    fn name_encodes_the_full_tuning() {
        let b = TunedBackend::with_profiles(Tuning::with_threads(8), Vec::new());
        assert_eq!(b.name(), "tuned-t8");
        assert_eq!(b.profile_count(), 0);
    }
}
