//! Persistent executor pool: the single launch choke point for all
//! parallel backends.
//!
//! The paper's frameworks (CUDA, HIP, SYCL, OpenMP) all launch kernels onto
//! a *persistent* runtime — a context, queue, or team that outlives each
//! individual launch. Our previous CPU reproduction instead spawned fresh OS
//! threads inside every `aprod1`/`aprod2` call (two spawn waves per LSQR
//! iteration, thousands per solve), which pSTL-Bench (Laso et al., 2024)
//! identifies as exactly the kind of runtime overhead that dominates
//! parallel-STL scalability at small-to-mid problem sizes. [`ExecutorPool`]
//! fixes that: workers are spawned **once**, parked on a condvar, and reused
//! across every launch; `run` provides the scoped-borrow semantics the
//! kernels need (jobs may borrow the caller's stack) with the classic
//! scoped-pool latch protocol.
//!
//! Telemetry (launch count, inline-vs-pooled, spawn-vs-reuse, worker wait
//! time) is recorded here — at the single choke point — instead of being
//! re-implemented per backend.
//!
//! ORDERING: the pool uses three atomic protocols. (1) Latch completion:
//! each worker decrements `remaining` with `AcqRel` and the launcher
//! spin-loads it with `Acquire`, so every job's writes happen-before the
//! launcher observes zero; the `panicked` flag is written `Relaxed` but
//! *before* the decrement, so it rides the same release sequence. (2)
//! Shutdown: the `Release` store in `drop` pairs with the workers'
//! `Acquire` loads. (3) Statistics and schedule-controller counters
//! (`launches`, `jobs_run`, `decisions`) are independent event counts read
//! only for reporting — `Relaxed` is the weakest correct ordering.

use std::collections::HashMap;
use std::collections::VecDeque;
use std::ops::Range;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock, PoisonError};
use std::thread::JoinHandle;
use std::time::Instant;

/// A unit of work submitted to the pool. Jobs may borrow from the caller's
/// stack; [`ExecutorPool::run`] guarantees they complete before it returns.
pub type Job<'scope> = Box<dyn FnOnce() + Send + 'scope>;

/// Schedule-exploration hooks (`sched-test` feature).
///
/// The policy-grid proptest only ever observes the interleavings the OS
/// happens to schedule, so a racy `Aprod2Strategy` could pass forever. This
/// module lets a test harness *own* worker progress at the pool's single
/// launch choke point: a [`sched::ScheduleController`] installed on an
/// [`ExecutorPool`] via [`ExecutorPool::set_schedule`] applies a seeded
/// random permutation to job pickup order, injects forced preemption at
/// [`sched::preempt_point`] probe points, skews job start times
/// (barrier-skew), and busy-blocks a seeded subset of executing workers
/// (worker starvation). With the feature off, the pool carries no
/// controller state and `preempt_point` is an empty `#[inline(always)]`
/// function — zero cost.
#[cfg(feature = "sched-test")]
pub mod sched {
    use std::cell::RefCell;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;
    use std::time::Instant;

    use super::Job;

    /// SplitMix64 finalizer: the hash behind every seeded decision.
    fn mix(mut z: u64) -> u64 {
        z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Busy-wait for `ns` nanoseconds. Spinning (instead of sleeping)
    /// keeps the perturbation granularity well below the OS timer slack,
    /// so schedules stay in the microsecond regime the races live in.
    fn spin(ns: u64) {
        // gaia-analyze: allow(timing): the schedule perturbator needs a raw
        // monotonic clock to busy-wait for nanoseconds; this is not a
        // measurement and never reaches a report.
        let start = Instant::now();
        while (start.elapsed().as_nanos() as u64) < ns {
            std::hint::spin_loop();
        }
    }

    /// Adverse-schedule generator for one exploration run.
    ///
    /// All decisions derive from the seed: the job-pickup permutation is an
    /// exact function of `(seed, launch)`, while preemption decisions also
    /// fold in a global decision counter (true cross-thread determinism is
    /// not achievable on OS threads; the counter keeps every probe call
    /// making a *different* seeded decision instead of all-or-nothing).
    #[derive(Debug)]
    pub struct ScheduleController {
        seed: u64,
        /// Permute the order jobs are pushed to the queue (seeded
        /// Fisher-Yates), so workers pick them up in adversarial order.
        pub shuffle: bool,
        /// Probability (per mille) that a [`preempt_point`] probe yields
        /// and spins, widening any load→store race window around it.
        pub preempt_permille: u32,
        /// Maximum spin per forced preemption, nanoseconds.
        pub preempt_max_ns: u64,
        /// Maximum seeded start delay per job (barrier skew): some jobs of
        /// a wave start late, so others race far ahead.
        pub skew_max_ns: u64,
        /// Starve one of `lane_count` job lanes: every job whose index
        /// falls in the victim lane busy-blocks its executing worker for
        /// [`ScheduleController::starve_ns`], forcing the remaining lanes
        /// to drain the queue.
        pub starve_lane: Option<u64>,
        /// Modulus for [`ScheduleController::starve_lane`].
        pub lane_count: u64,
        /// Busy-block per starved job, nanoseconds.
        pub starve_ns: u64,
        launches: AtomicU64,
        decisions: AtomicU64,
    }

    impl ScheduleController {
        /// A controller with every perturbation off (identity schedule).
        pub fn quiet(seed: u64) -> Self {
            ScheduleController {
                seed,
                shuffle: false,
                preempt_permille: 0,
                preempt_max_ns: 0,
                skew_max_ns: 0,
                starve_lane: None,
                lane_count: 4,
                starve_ns: 0,
                launches: AtomicU64::new(0),
                decisions: AtomicU64::new(0),
            }
        }

        /// The seeded mixed scenario the exploration driver replays: the
        /// seed picks an emphasis (preempt-heavy, barrier-skew, starvation,
        /// or all three) plus its magnitudes. Shuffling is always on.
        pub fn from_seed(seed: u64) -> Self {
            let r = mix(seed);
            let mut c = ScheduleController::quiet(seed);
            c.shuffle = true;
            match r % 4 {
                0 => {
                    c.preempt_permille = 400 + (mix(r) % 600) as u32;
                    c.preempt_max_ns = 2_000 + mix(r ^ 1) % 20_000;
                }
                1 => {
                    c.skew_max_ns = 10_000 + mix(r ^ 2) % 90_000;
                }
                2 => {
                    c.starve_lane = Some(mix(r ^ 3) % 4);
                    c.starve_ns = 50_000 + mix(r ^ 4) % 150_000;
                }
                _ => {
                    c.preempt_permille = 250;
                    c.preempt_max_ns = 2_000 + mix(r ^ 5) % 10_000;
                    c.skew_max_ns = 5_000 + mix(r ^ 6) % 40_000;
                    c.starve_lane = Some(mix(r ^ 7) % 4);
                    c.starve_ns = 30_000 + mix(r ^ 8) % 70_000;
                }
            }
            c
        }

        /// A race-hostile controller: every probe preempts with a wide
        /// spin. Used by the `BrokenStrategy` canary to prove the harness
        /// detects write-write races.
        pub fn race_window(seed: u64) -> Self {
            let mut c = ScheduleController::from_seed(seed);
            c.shuffle = true;
            c.preempt_permille = 1000;
            c.preempt_max_ns = 30_000;
            c
        }

        fn next_launch(&self) -> u64 {
            self.launches.fetch_add(1, Ordering::Relaxed)
        }

        /// Seeded Fisher-Yates permutation of the enqueue order.
        fn permute<T>(&self, launch: u64, items: &mut [T]) {
            if !self.shuffle {
                return;
            }
            let mut state = mix(self.seed ^ mix(launch ^ 0x5ced_u64));
            for i in (1..items.len()).rev() {
                state = mix(state);
                items.swap(i, (state % (i as u64 + 1)) as usize);
            }
        }

        /// Start-of-job perturbation: barrier skew + lane starvation.
        fn on_job_start(&self, launch: u64, job: usize) {
            if let Some(victim) = self.starve_lane {
                if job as u64 % self.lane_count == victim {
                    spin(self.starve_ns);
                }
            }
            if self.skew_max_ns > 0 {
                let h = mix(self.seed ^ mix(launch) ^ (job as u64) << 17);
                spin(h % self.skew_max_ns);
            }
        }

        /// One probe decision: yield/spin with the configured probability.
        fn maybe_preempt(&self, launch: u64, job: usize, tag: u32) {
            if self.preempt_permille == 0 {
                return;
            }
            let n = self.decisions.fetch_add(1, Ordering::Relaxed);
            let h = mix(self.seed ^ mix(launch ^ (job as u64) << 21 ^ u64::from(tag) << 42) ^ n);
            if (h % 1000) < u64::from(self.preempt_permille) {
                std::thread::yield_now();
                if self.preempt_max_ns > 0 {
                    spin(mix(h) % self.preempt_max_ns);
                }
            }
        }
    }

    thread_local! {
        /// The controller governing the job this thread is currently
        /// executing (a stack: empty outside pool jobs).
        static ACTIVE: RefCell<Vec<(Arc<ScheduleController>, u64, usize)>> =
            const { RefCell::new(Vec::new()) };
    }

    /// Probe point for kernels under test: when the executing thread is
    /// running a pool job governed by a controller, this may yield and
    /// spin (a forced preemption), deterministically seeded. `tag`
    /// distinguishes call sites. No-op (and `#[inline(always)]` empty)
    /// when the `sched-test` feature is off or no controller is installed.
    pub fn preempt_point(tag: u32) {
        ACTIVE.with(|a| {
            if let Some((ctrl, launch, job)) = a.borrow().last() {
                ctrl.maybe_preempt(*launch, *job, tag);
            }
        });
    }

    /// Wrap a launch's jobs under `ctrl`: permute the enqueue order and
    /// interpose the per-job start perturbation + probe-point context.
    pub(super) fn apply<'scope>(
        ctrl: &Arc<ScheduleController>,
        mut jobs: Vec<Job<'scope>>,
    ) -> Vec<Job<'scope>> {
        let launch = ctrl.next_launch();
        ctrl.permute(launch, &mut jobs);
        jobs.into_iter()
            .enumerate()
            .map(|(idx, job)| {
                let ctrl = Arc::clone(ctrl);
                Box::new(move || {
                    ACTIVE.with(|a| a.borrow_mut().push((Arc::clone(&ctrl), launch, idx)));
                    ctrl.on_job_start(launch, idx);
                    job();
                    ACTIVE.with(|a| {
                        a.borrow_mut().pop();
                    });
                }) as Job<'scope>
            })
            .collect()
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn permutation_is_a_seeded_bijection() {
            let ctrl = ScheduleController::from_seed(7);
            let mut a: Vec<usize> = (0..16).collect();
            let mut b: Vec<usize> = (0..16).collect();
            ctrl.permute(3, &mut a);
            ctrl.permute(3, &mut b);
            assert_eq!(a, b, "same (seed, launch) => same permutation");
            let mut sorted = a.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, (0..16).collect::<Vec<_>>());
            let mut c: Vec<usize> = (0..16).collect();
            ctrl.permute(4, &mut c);
            assert_ne!(a, c, "different launches permute differently");
        }

        #[test]
        fn preempt_point_outside_a_job_is_a_noop() {
            // Must not panic or deadlock when no controller is active.
            preempt_point(0);
        }
    }
}

/// No-op twin of the schedule-exploration hooks: with the `sched-test`
/// feature off, the probe compiles to nothing.
#[cfg(not(feature = "sched-test"))]
pub mod sched {
    /// Probe point for kernels under test; empty without `sched-test`.
    #[inline(always)]
    pub fn preempt_point(_tag: u32) {}
}

/// Completion latch for one `run` call: counts outstanding jobs and wakes
/// the submitting thread when the last one finishes.
struct Latch {
    remaining: AtomicUsize,
    panicked: AtomicBool,
    lock: Mutex<()>,
    all_done: Condvar,
}

impl Latch {
    fn new(jobs: usize) -> Self {
        Latch {
            remaining: AtomicUsize::new(jobs),
            panicked: AtomicBool::new(false),
            lock: Mutex::new(()),
            all_done: Condvar::new(),
        }
    }

    fn complete(&self, job_panicked: bool) {
        if job_panicked {
            self.panicked.store(true, Ordering::Relaxed);
        }
        if self.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
            // Take the lock so a waiter between its check and its wait
            // cannot miss the notification.
            let _g = self.lock.lock().unwrap_or_else(PoisonError::into_inner);
            self.all_done.notify_all();
        }
    }

    fn wait(&self) {
        let mut g = self.lock.lock().unwrap_or_else(PoisonError::into_inner);
        while self.remaining.load(Ordering::Acquire) > 0 {
            g = self
                .all_done
                .wait(g)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }
}

/// One enqueued job plus the latch of the `run` call it belongs to.
struct Batch {
    task: Box<dyn FnOnce() + Send + 'static>,
    latch: Arc<Latch>,
}

struct Shared {
    queue: Mutex<VecDeque<Batch>>,
    work_ready: Condvar,
    shutdown: AtomicBool,
}

impl Shared {
    fn pop(&self) -> Option<Batch> {
        self.queue
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .pop_front()
    }
}

/// Execute one batch entry, catching panics so a failing kernel chunk never
/// unwinds across the pool (the latch records it and `run` re-raises).
fn execute(batch: Batch) {
    let result = catch_unwind(AssertUnwindSafe(batch.task));
    batch.latch.complete(result.is_err());
}

/// A persistent pool of parked worker threads with scoped launches.
///
/// `threads` is the total parallelism of a launch: the pool spawns
/// `threads - 1` OS workers and the **calling thread participates** in
/// draining the queue, so `threads == 1` means a pool with no workers at
/// all (every launch runs inline — the serial fast path).
pub struct ExecutorPool {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
    threads: usize,
    launches: AtomicU64,
    jobs_run: AtomicU64,
    /// Installed schedule-exploration controller (`sched-test` only):
    /// every launch consults it to permute and perturb its jobs.
    #[cfg(feature = "sched-test")]
    schedule: Mutex<Option<Arc<sched::ScheduleController>>>,
}

impl std::fmt::Debug for ExecutorPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ExecutorPool")
            .field("threads", &self.threads)
            .field("workers", &self.workers.len())
            .field("launches", &self.launches.load(Ordering::Relaxed))
            .finish()
    }
}

impl ExecutorPool {
    /// Create a pool with the given total parallelism (`threads - 1`
    /// workers are spawned; the caller is the remaining lane).
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            work_ready: Condvar::new(),
            shutdown: AtomicBool::new(false),
        });
        let n_workers = threads - 1;
        let workers = (0..n_workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("gaia-exec-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn executor worker")
            })
            .collect();
        gaia_telemetry::record_pool_spawn(n_workers as u64);
        ExecutorPool {
            shared,
            workers,
            threads,
            launches: AtomicU64::new(0),
            jobs_run: AtomicU64::new(0),
            #[cfg(feature = "sched-test")]
            schedule: Mutex::new(None),
        }
    }

    /// Install (or clear, with `None`) a schedule-exploration controller:
    /// subsequent launches on this pool run under its seeded permutation
    /// and perturbation. Only compiled with the `sched-test` feature.
    #[cfg(feature = "sched-test")]
    pub fn set_schedule(&self, ctrl: Option<sched::ScheduleController>) {
        *self.schedule.lock().unwrap_or_else(PoisonError::into_inner) = ctrl.map(Arc::new);
    }

    /// A process-wide shared pool for the given thread budget. Backends
    /// constructed via the registry all share one pool per budget, so a
    /// grid of policies costs one set of workers, not one per backend.
    pub fn shared(threads: usize) -> Arc<ExecutorPool> {
        static POOLS: OnceLock<Mutex<HashMap<usize, Arc<ExecutorPool>>>> = OnceLock::new();
        let threads = threads.max(1);
        let pools = POOLS.get_or_init(|| Mutex::new(HashMap::new()));
        let mut map = pools.lock().unwrap_or_else(PoisonError::into_inner);
        Arc::clone(
            map.entry(threads)
                .or_insert_with(|| Arc::new(ExecutorPool::new(threads))),
        )
    }

    /// Total parallelism of this pool (workers + the calling thread).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Number of `run` launches since creation (inline launches included).
    pub fn launch_count(&self) -> u64 {
        self.launches.load(Ordering::Relaxed)
    }

    /// Number of jobs executed since creation.
    pub fn jobs_run_count(&self) -> u64 {
        self.jobs_run.load(Ordering::Relaxed)
    }

    /// Run a batch of jobs to completion. Jobs may borrow from the caller's
    /// stack: `run` does not return until every job has finished (or
    /// panicked, in which case `run` panics after all jobs settle, so no
    /// borrow ever outlives this call).
    pub fn run<'scope>(&self, jobs: Vec<Job<'scope>>) {
        if jobs.is_empty() {
            return;
        }
        #[cfg(feature = "sched-test")]
        let jobs = {
            let ctrl = self
                .schedule
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .clone();
            match ctrl {
                Some(ctrl) => sched::apply(&ctrl, jobs),
                None => jobs,
            }
        };
        let n_jobs = jobs.len() as u64;
        let first = self.launches.fetch_add(1, Ordering::Relaxed) == 0;
        self.jobs_run.fetch_add(n_jobs, Ordering::Relaxed);

        // Serial fast path: no workers, or nothing to overlap.
        if self.workers.is_empty() || jobs.len() == 1 {
            gaia_telemetry::record_pool_launch(n_jobs, !first, true);
            for job in jobs {
                job();
            }
            return;
        }
        gaia_telemetry::record_pool_launch(n_jobs, !first, false);

        let latch = Arc::new(Latch::new(jobs.len()));
        {
            let mut q = self
                .shared
                .queue
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            for job in jobs {
                // SAFETY: `run` never returns before `latch.wait()` observes
                // every job complete, and panicking jobs are caught by
                // `execute`, so no job (or borrow inside it) outlives the
                // 'scope lifetime despite the 'static erasure below.
                let task: Box<dyn FnOnce() + Send + 'static> =
                    unsafe { std::mem::transmute::<Job<'scope>, Job<'static>>(job) };
                q.push_back(Batch {
                    task,
                    latch: Arc::clone(&latch),
                });
            }
        }
        self.shared.work_ready.notify_all();

        // The caller participates: drain the queue alongside the workers.
        while let Some(batch) = self.shared.pop() {
            execute(batch);
        }
        latch.wait();
        if latch.panicked.load(Ordering::Relaxed) {
            panic!("executor pool job panicked");
        }
    }

    /// Convenience: apply `f` to each range with its chunk index, one job
    /// per range, via [`ExecutorPool::run`].
    pub fn parallel_for<F>(&self, ranges: Vec<Range<usize>>, f: F)
    where
        F: Fn(usize, Range<usize>) + Send + Sync,
    {
        let f = &f;
        let jobs: Vec<Job<'_>> = ranges
            .into_iter()
            .enumerate()
            .map(|(i, r)| Box::new(move || f(i, r)) as Job<'_>)
            .collect();
        self.run(jobs);
    }
}

impl Drop for ExecutorPool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        {
            // Acquire the queue lock so parked workers can't miss the wake.
            let _g = self
                .shared
                .queue
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            self.shared.work_ready.notify_all();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        let batch = {
            let mut q = shared.queue.lock().unwrap_or_else(PoisonError::into_inner);
            loop {
                if let Some(batch) = q.pop_front() {
                    break Some(batch);
                }
                if shared.shutdown.load(Ordering::Acquire) {
                    break None;
                }
                if gaia_telemetry::is_enabled() {
                    // gaia-analyze: allow(timing): this clock read *is* the
                    // telemetry measurement — it feeds
                    // record_pool_wait_nanos at the pool choke point.
                    let parked = Instant::now();
                    q = shared
                        .work_ready
                        .wait(q)
                        .unwrap_or_else(PoisonError::into_inner);
                    gaia_telemetry::record_pool_wait_nanos(parked.elapsed().as_nanos() as u64);
                } else {
                    q = shared
                        .work_ready
                        .wait(q)
                        .unwrap_or_else(PoisonError::into_inner);
                }
            }
        };
        match batch {
            Some(batch) => execute(batch),
            None => return,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pool_is_reused_across_launches() {
        let pool = ExecutorPool::new(4);
        let counter = AtomicUsize::new(0);
        for _ in 0..10 {
            pool.parallel_for(crate::launch::split_ranges(100, 8), |_, r| {
                counter.fetch_add(r.len(), Ordering::Relaxed);
            });
        }
        assert_eq!(counter.load(Ordering::Relaxed), 1000);
        assert_eq!(pool.launch_count(), 10);
        assert_eq!(pool.jobs_run_count(), 80);
    }

    #[test]
    fn scoped_borrows_are_written_back() {
        let pool = ExecutorPool::new(3);
        let mut data = vec![0usize; 64];
        let ranges = crate::launch::split_ranges(data.len(), 6);
        {
            let mut rest = data.as_mut_slice();
            let mut jobs: Vec<Job<'_>> = Vec::new();
            for r in ranges {
                let (mine, tail) = rest.split_at_mut(r.len());
                rest = tail;
                jobs.push(Box::new(move || {
                    for (i, v) in mine.iter_mut().enumerate() {
                        *v = r.start + i;
                    }
                }));
            }
            pool.run(jobs);
        }
        for (i, v) in data.iter().enumerate() {
            assert_eq!(*v, i);
        }
    }

    #[test]
    fn serial_pool_runs_inline() {
        let pool = ExecutorPool::new(1);
        assert_eq!(pool.threads(), 1);
        let counter = AtomicUsize::new(0);
        pool.parallel_for(crate::launch::split_ranges(10, 4), |_, r| {
            counter.fetch_add(r.len(), Ordering::Relaxed);
        });
        assert_eq!(counter.load(Ordering::Relaxed), 10);
    }

    #[test]
    fn panicking_job_propagates_after_batch_settles() {
        let pool = ExecutorPool::new(4);
        let done = AtomicUsize::new(0);
        let result = catch_unwind(AssertUnwindSafe(|| {
            let jobs: Vec<Job<'_>> = (0..8)
                .map(|i| {
                    let done = &done;
                    Box::new(move || {
                        if i == 3 {
                            panic!("boom");
                        }
                        done.fetch_add(1, Ordering::Relaxed);
                    }) as Job<'_>
                })
                .collect();
            pool.run(jobs);
        }));
        assert!(result.is_err());
        assert_eq!(done.load(Ordering::Relaxed), 7);
        // The pool must stay usable after a panicked batch.
        let counter = AtomicUsize::new(0);
        pool.parallel_for(crate::launch::split_ranges(20, 5), |_, r| {
            counter.fetch_add(r.len(), Ordering::Relaxed);
        });
        assert_eq!(counter.load(Ordering::Relaxed), 20);
    }

    /// The shutdown/panic edge from the verification issue: a job panicking
    /// mid-batch must leave the process-wide **shared** pool reusable — the
    /// next `run` (from this or any other handle to the same pool) succeeds
    /// and the latch protocol is not poisoned. Uses a thread budget no
    /// other test shares so the cached pool's state is entirely ours.
    #[test]
    fn shared_pool_survives_a_panicking_batch() {
        let pool = ExecutorPool::shared(9);
        let before = pool.launch_count();
        let result = catch_unwind(AssertUnwindSafe(|| {
            let jobs: Vec<Job<'_>> = (0..12)
                .map(|i| {
                    Box::new(move || {
                        if i % 5 == 2 {
                            panic!("chunk failure");
                        }
                    }) as Job<'_>
                })
                .collect();
            pool.run(jobs);
        }));
        assert!(result.is_err(), "panic must propagate to the submitter");

        // The same cached pool instance must serve later launches: workers
        // alive, queue drained, latch per-run (nothing poisoned).
        let again = ExecutorPool::shared(9);
        assert!(Arc::ptr_eq(&pool, &again));
        let counter = AtomicUsize::new(0);
        again.parallel_for(crate::launch::split_ranges(96, 12), |_, r| {
            counter.fetch_add(r.len(), Ordering::Relaxed);
        });
        assert_eq!(counter.load(Ordering::Relaxed), 96);
        assert_eq!(again.launch_count(), before + 2);
    }

    #[test]
    fn shared_pools_are_cached_per_budget() {
        let a = ExecutorPool::shared(3);
        let b = ExecutorPool::shared(3);
        let c = ExecutorPool::shared(5);
        assert!(Arc::ptr_eq(&a, &b));
        assert!(!Arc::ptr_eq(&a, &c));
        assert_eq!(a.threads(), 3);
        assert_eq!(c.threads(), 5);
    }

    #[test]
    fn empty_launch_is_a_noop() {
        let pool = ExecutorPool::new(2);
        pool.run(Vec::new());
        assert_eq!(pool.launch_count(), 0);
    }
}
