//! Persistent executor pool: the single launch choke point for all
//! parallel backends.
//!
//! The paper's frameworks (CUDA, HIP, SYCL, OpenMP) all launch kernels onto
//! a *persistent* runtime — a context, queue, or team that outlives each
//! individual launch. Our previous CPU reproduction instead spawned fresh OS
//! threads inside every `aprod1`/`aprod2` call (two spawn waves per LSQR
//! iteration, thousands per solve), which pSTL-Bench (Laso et al., 2024)
//! identifies as exactly the kind of runtime overhead that dominates
//! parallel-STL scalability at small-to-mid problem sizes. [`ExecutorPool`]
//! fixes that: workers are spawned **once**, parked on a condvar, and reused
//! across every launch; `run` provides the scoped-borrow semantics the
//! kernels need (jobs may borrow the caller's stack) with the classic
//! scoped-pool latch protocol.
//!
//! Telemetry (launch count, inline-vs-pooled, spawn-vs-reuse, worker wait
//! time) is recorded here — at the single choke point — instead of being
//! re-implemented per backend.

use std::collections::HashMap;
use std::collections::VecDeque;
use std::ops::Range;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock, PoisonError};
use std::thread::JoinHandle;
use std::time::Instant;

/// A unit of work submitted to the pool. Jobs may borrow from the caller's
/// stack; [`ExecutorPool::run`] guarantees they complete before it returns.
pub type Job<'scope> = Box<dyn FnOnce() + Send + 'scope>;

/// Completion latch for one `run` call: counts outstanding jobs and wakes
/// the submitting thread when the last one finishes.
struct Latch {
    remaining: AtomicUsize,
    panicked: AtomicBool,
    lock: Mutex<()>,
    all_done: Condvar,
}

impl Latch {
    fn new(jobs: usize) -> Self {
        Latch {
            remaining: AtomicUsize::new(jobs),
            panicked: AtomicBool::new(false),
            lock: Mutex::new(()),
            all_done: Condvar::new(),
        }
    }

    fn complete(&self, job_panicked: bool) {
        if job_panicked {
            self.panicked.store(true, Ordering::Relaxed);
        }
        if self.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
            // Take the lock so a waiter between its check and its wait
            // cannot miss the notification.
            let _g = self.lock.lock().unwrap_or_else(PoisonError::into_inner);
            self.all_done.notify_all();
        }
    }

    fn wait(&self) {
        let mut g = self.lock.lock().unwrap_or_else(PoisonError::into_inner);
        while self.remaining.load(Ordering::Acquire) > 0 {
            g = self
                .all_done
                .wait(g)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }
}

/// One enqueued job plus the latch of the `run` call it belongs to.
struct Batch {
    task: Box<dyn FnOnce() + Send + 'static>,
    latch: Arc<Latch>,
}

struct Shared {
    queue: Mutex<VecDeque<Batch>>,
    work_ready: Condvar,
    shutdown: AtomicBool,
}

impl Shared {
    fn pop(&self) -> Option<Batch> {
        self.queue
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .pop_front()
    }
}

/// Execute one batch entry, catching panics so a failing kernel chunk never
/// unwinds across the pool (the latch records it and `run` re-raises).
fn execute(batch: Batch) {
    let result = catch_unwind(AssertUnwindSafe(batch.task));
    batch.latch.complete(result.is_err());
}

/// A persistent pool of parked worker threads with scoped launches.
///
/// `threads` is the total parallelism of a launch: the pool spawns
/// `threads - 1` OS workers and the **calling thread participates** in
/// draining the queue, so `threads == 1` means a pool with no workers at
/// all (every launch runs inline — the serial fast path).
pub struct ExecutorPool {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
    threads: usize,
    launches: AtomicU64,
    jobs_run: AtomicU64,
}

impl std::fmt::Debug for ExecutorPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ExecutorPool")
            .field("threads", &self.threads)
            .field("workers", &self.workers.len())
            .field("launches", &self.launches.load(Ordering::Relaxed))
            .finish()
    }
}

impl ExecutorPool {
    /// Create a pool with the given total parallelism (`threads - 1`
    /// workers are spawned; the caller is the remaining lane).
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            work_ready: Condvar::new(),
            shutdown: AtomicBool::new(false),
        });
        let n_workers = threads - 1;
        let workers = (0..n_workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("gaia-exec-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn executor worker")
            })
            .collect();
        gaia_telemetry::record_pool_spawn(n_workers as u64);
        ExecutorPool {
            shared,
            workers,
            threads,
            launches: AtomicU64::new(0),
            jobs_run: AtomicU64::new(0),
        }
    }

    /// A process-wide shared pool for the given thread budget. Backends
    /// constructed via the registry all share one pool per budget, so a
    /// grid of policies costs one set of workers, not one per backend.
    pub fn shared(threads: usize) -> Arc<ExecutorPool> {
        static POOLS: OnceLock<Mutex<HashMap<usize, Arc<ExecutorPool>>>> = OnceLock::new();
        let threads = threads.max(1);
        let pools = POOLS.get_or_init(|| Mutex::new(HashMap::new()));
        let mut map = pools.lock().unwrap_or_else(PoisonError::into_inner);
        Arc::clone(
            map.entry(threads)
                .or_insert_with(|| Arc::new(ExecutorPool::new(threads))),
        )
    }

    /// Total parallelism of this pool (workers + the calling thread).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Number of `run` launches since creation (inline launches included).
    pub fn launch_count(&self) -> u64 {
        self.launches.load(Ordering::Relaxed)
    }

    /// Number of jobs executed since creation.
    pub fn jobs_run_count(&self) -> u64 {
        self.jobs_run.load(Ordering::Relaxed)
    }

    /// Run a batch of jobs to completion. Jobs may borrow from the caller's
    /// stack: `run` does not return until every job has finished (or
    /// panicked, in which case `run` panics after all jobs settle, so no
    /// borrow ever outlives this call).
    pub fn run<'scope>(&self, jobs: Vec<Job<'scope>>) {
        if jobs.is_empty() {
            return;
        }
        let n_jobs = jobs.len() as u64;
        let first = self.launches.fetch_add(1, Ordering::Relaxed) == 0;
        self.jobs_run.fetch_add(n_jobs, Ordering::Relaxed);

        // Serial fast path: no workers, or nothing to overlap.
        if self.workers.is_empty() || jobs.len() == 1 {
            gaia_telemetry::record_pool_launch(n_jobs, !first, true);
            for job in jobs {
                job();
            }
            return;
        }
        gaia_telemetry::record_pool_launch(n_jobs, !first, false);

        let latch = Arc::new(Latch::new(jobs.len()));
        {
            let mut q = self
                .shared
                .queue
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            for job in jobs {
                // SAFETY: `run` never returns before `latch.wait()` observes
                // every job complete, and panicking jobs are caught by
                // `execute`, so no job (or borrow inside it) outlives the
                // 'scope lifetime despite the 'static erasure below.
                let task: Box<dyn FnOnce() + Send + 'static> =
                    unsafe { std::mem::transmute::<Job<'scope>, Job<'static>>(job) };
                q.push_back(Batch {
                    task,
                    latch: Arc::clone(&latch),
                });
            }
        }
        self.shared.work_ready.notify_all();

        // The caller participates: drain the queue alongside the workers.
        while let Some(batch) = self.shared.pop() {
            execute(batch);
        }
        latch.wait();
        if latch.panicked.load(Ordering::Relaxed) {
            panic!("executor pool job panicked");
        }
    }

    /// Convenience: apply `f` to each range with its chunk index, one job
    /// per range, via [`ExecutorPool::run`].
    pub fn parallel_for<F>(&self, ranges: Vec<Range<usize>>, f: F)
    where
        F: Fn(usize, Range<usize>) + Send + Sync,
    {
        let f = &f;
        let jobs: Vec<Job<'_>> = ranges
            .into_iter()
            .enumerate()
            .map(|(i, r)| Box::new(move || f(i, r)) as Job<'_>)
            .collect();
        self.run(jobs);
    }
}

impl Drop for ExecutorPool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        {
            // Acquire the queue lock so parked workers can't miss the wake.
            let _g = self
                .shared
                .queue
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            self.shared.work_ready.notify_all();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        let batch = {
            let mut q = shared.queue.lock().unwrap_or_else(PoisonError::into_inner);
            loop {
                if let Some(batch) = q.pop_front() {
                    break Some(batch);
                }
                if shared.shutdown.load(Ordering::Acquire) {
                    break None;
                }
                if gaia_telemetry::is_enabled() {
                    let parked = Instant::now();
                    q = shared
                        .work_ready
                        .wait(q)
                        .unwrap_or_else(PoisonError::into_inner);
                    gaia_telemetry::record_pool_wait_nanos(parked.elapsed().as_nanos() as u64);
                } else {
                    q = shared
                        .work_ready
                        .wait(q)
                        .unwrap_or_else(PoisonError::into_inner);
                }
            }
        };
        match batch {
            Some(batch) => execute(batch),
            None => return,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pool_is_reused_across_launches() {
        let pool = ExecutorPool::new(4);
        let counter = AtomicUsize::new(0);
        for _ in 0..10 {
            pool.parallel_for(crate::launch::split_ranges(100, 8), |_, r| {
                counter.fetch_add(r.len(), Ordering::Relaxed);
            });
        }
        assert_eq!(counter.load(Ordering::Relaxed), 1000);
        assert_eq!(pool.launch_count(), 10);
        assert_eq!(pool.jobs_run_count(), 80);
    }

    #[test]
    fn scoped_borrows_are_written_back() {
        let pool = ExecutorPool::new(3);
        let mut data = vec![0usize; 64];
        let ranges = crate::launch::split_ranges(data.len(), 6);
        {
            let mut rest = data.as_mut_slice();
            let mut jobs: Vec<Job<'_>> = Vec::new();
            for r in ranges {
                let (mine, tail) = rest.split_at_mut(r.len());
                rest = tail;
                jobs.push(Box::new(move || {
                    for (i, v) in mine.iter_mut().enumerate() {
                        *v = r.start + i;
                    }
                }));
            }
            pool.run(jobs);
        }
        for (i, v) in data.iter().enumerate() {
            assert_eq!(*v, i);
        }
    }

    #[test]
    fn serial_pool_runs_inline() {
        let pool = ExecutorPool::new(1);
        assert_eq!(pool.threads(), 1);
        let counter = AtomicUsize::new(0);
        pool.parallel_for(crate::launch::split_ranges(10, 4), |_, r| {
            counter.fetch_add(r.len(), Ordering::Relaxed);
        });
        assert_eq!(counter.load(Ordering::Relaxed), 10);
    }

    #[test]
    fn panicking_job_propagates_after_batch_settles() {
        let pool = ExecutorPool::new(4);
        let done = AtomicUsize::new(0);
        let result = catch_unwind(AssertUnwindSafe(|| {
            let jobs: Vec<Job<'_>> = (0..8)
                .map(|i| {
                    let done = &done;
                    Box::new(move || {
                        if i == 3 {
                            panic!("boom");
                        }
                        done.fetch_add(1, Ordering::Relaxed);
                    }) as Job<'_>
                })
                .collect();
            pool.run(jobs);
        }));
        assert!(result.is_err());
        assert_eq!(done.load(Ordering::Relaxed), 7);
        // The pool must stay usable after a panicked batch.
        let counter = AtomicUsize::new(0);
        pool.parallel_for(crate::launch::split_ranges(20, 5), |_, r| {
            counter.fetch_add(r.len(), Ordering::Relaxed);
        });
        assert_eq!(counter.load(Ordering::Relaxed), 20);
    }

    #[test]
    fn shared_pools_are_cached_per_budget() {
        let a = ExecutorPool::shared(3);
        let b = ExecutorPool::shared(3);
        let c = ExecutorPool::shared(5);
        assert!(Arc::ptr_eq(&a, &b));
        assert!(!Arc::ptr_eq(&a, &c));
        assert_eq!(a.threads(), 3);
        assert_eq!(c.threads(), 5);
    }

    #[test]
    fn empty_launch_is_a_noop() {
        let pool = ExecutorPool::new(2);
        pool.run(Vec::new());
        assert_eq!(pool.launch_count(), 0);
    }
}
