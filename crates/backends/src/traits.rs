//! The [`Backend`] trait: what the LSQR solver needs from a compute engine.

use gaia_sparse::SparseSystem;

use crate::blas;
use crate::launch::LaunchPlan;

/// A compute backend able to evaluate the two AVU-GSR sparse products and
/// the handful of BLAS-1 operations LSQR needs between them.
///
/// Both products are *accumulating*, matching the classic `aprod(mode, ...)`
/// contract of Paige & Saunders' LSQR:
///
/// * `aprod1`: `out[r] += Σ_c A[r,c] · x[c]` for every row `r`;
/// * `aprod2`: `out[c] += Σ_r A[r,c] · y[r]` for every column `c`.
///
/// Implementations must be deterministic *up to floating-point reduction
/// order*; tests compare backends with a tolerance proportional to the
/// system size.
pub trait Backend: Send + Sync {
    /// Stable identifier (used in reports and the registry).
    fn name(&self) -> String;

    /// One-line description of the strategy.
    fn description(&self) -> &'static str;

    /// `out += A x`. `x.len() == sys.n_cols()`, `out.len() == sys.n_rows()`.
    fn aprod1(&self, sys: &SparseSystem, x: &[f64], out: &mut [f64]);

    /// `out += Aᵀ y`. `y.len() == sys.n_rows()`, `out.len() == sys.n_cols()`.
    fn aprod2(&self, sys: &SparseSystem, y: &[f64], out: &mut [f64]);

    /// The launch plan this backend executes, when it is plan-driven.
    /// Registry construction statically verifies the returned plan via
    /// [`LaunchPlan::analyze_canonical`]; ad-hoc backends (sequential,
    /// rayon, CSR) return `None` and skip the check.
    fn launch_plan(&self) -> Option<LaunchPlan> {
        None
    }

    /// Euclidean norm. Overridable with a parallel implementation.
    fn nrm2(&self, v: &[f64]) -> f64 {
        blas::nrm2(v)
    }

    /// `v *= s`.
    fn scal(&self, v: &mut [f64], s: f64) {
        blas::scal(v, s);
    }

    /// `y += a·x`.
    fn axpy(&self, y: &mut [f64], a: f64, x: &[f64]) {
        blas::axpy(y, a, x);
    }

    /// Check argument shapes; call at the top of `aprod1`.
    fn check_aprod1(&self, sys: &SparseSystem, x: &[f64], out: &[f64]) {
        assert_eq!(x.len(), sys.n_cols(), "aprod1: x length mismatch");
        assert_eq!(out.len(), sys.n_rows(), "aprod1: out length mismatch");
    }

    /// Check argument shapes; call at the top of `aprod2`.
    fn check_aprod2(&self, sys: &SparseSystem, y: &[f64], out: &[f64]) {
        assert_eq!(y.len(), sys.n_rows(), "aprod2: y length mismatch");
        assert_eq!(out.len(), sys.n_cols(), "aprod2: out length mismatch");
    }
}

impl<B: Backend + ?Sized> Backend for Box<B> {
    fn name(&self) -> String {
        (**self).name()
    }
    fn description(&self) -> &'static str {
        (**self).description()
    }
    fn aprod1(&self, sys: &SparseSystem, x: &[f64], out: &mut [f64]) {
        (**self).aprod1(sys, x, out)
    }
    fn aprod2(&self, sys: &SparseSystem, y: &[f64], out: &mut [f64]) {
        (**self).aprod2(sys, y, out)
    }
    fn launch_plan(&self) -> Option<LaunchPlan> {
        (**self).launch_plan()
    }
    fn nrm2(&self, v: &[f64]) -> f64 {
        (**self).nrm2(v)
    }
    fn scal(&self, v: &mut [f64], s: f64) {
        (**self).scal(v, s)
    }
    fn axpy(&self, y: &mut [f64], a: f64, x: &[f64]) {
        (**self).axpy(y, a, x)
    }
}
