//! Scalar BLAS-1 helpers used by LSQR between the sparse products.
//!
//! `nrm2` uses the scaled (overflow-safe) algorithm of the reference BLAS
//! `DNRM2`, because LSQR feeds it vectors whose magnitude varies over many
//! orders of magnitude as the bidiagonalization converges.

/// Overflow-safe Euclidean norm (reference `DNRM2` algorithm).
pub fn nrm2(v: &[f64]) -> f64 {
    let mut scale = 0.0f64;
    let mut ssq = 1.0f64;
    for &x in v {
        if x != 0.0 {
            let ax = x.abs();
            if scale < ax {
                let r = scale / ax;
                ssq = 1.0 + ssq * r * r;
                scale = ax;
            } else {
                let r = ax / scale;
                ssq += r * r;
            }
        }
    }
    scale * ssq.sqrt()
}

/// `v *= s`.
pub fn scal(v: &mut [f64], s: f64) {
    for x in v {
        *x *= s;
    }
}

/// `y += a·x`.
pub fn axpy(y: &mut [f64], a: f64, x: &[f64]) {
    assert_eq!(y.len(), x.len(), "axpy length mismatch");
    for (yi, &xi) in y.iter_mut().zip(x) {
        *yi += a * xi;
    }
}

/// Dot product.
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot length mismatch");
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// `sqrt(a² + b²)` without undue overflow (LSQR's plane-rotation helper).
pub fn d2norm(a: f64, b: f64) -> f64 {
    let scale = a.abs() + b.abs();
    if scale == 0.0 {
        0.0
    } else {
        let ar = a / scale;
        let br = b / scale;
        scale * (ar * ar + br * br).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn nrm2_matches_naive_on_moderate_values() {
        let v: Vec<f64> = (0..100).map(|i| (i as f64 * 0.3).sin()).collect();
        let naive = v.iter().map(|x| x * x).sum::<f64>().sqrt();
        assert!((nrm2(&v) - naive).abs() < 1e-12);
    }

    #[test]
    fn nrm2_survives_extreme_magnitudes() {
        let v = vec![1e-300, 1e300, 1e-300];
        assert!((nrm2(&v) - 1e300).abs() / 1e300 < 1e-12);
        let tiny = vec![1e-308; 4];
        assert!(nrm2(&tiny) > 0.0);
        assert!(nrm2(&tiny).is_finite());
    }

    #[test]
    fn nrm2_of_empty_and_zero() {
        assert_eq!(nrm2(&[]), 0.0);
        assert_eq!(nrm2(&[0.0, 0.0]), 0.0);
    }

    #[test]
    fn dot_matches_manual_sum() {
        let a = [1.0, -2.0, 3.0];
        let b = [4.0, 5.0, -6.0];
        assert_eq!(dot(&a, &b), 4.0 - 10.0 - 18.0);
        assert_eq!(dot(&[], &[]), 0.0);
    }

    #[test]
    #[should_panic(expected = "dot length mismatch")]
    fn dot_rejects_mismatched_lengths() {
        dot(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn d2norm_matches_hypot() {
        for (a, b) in [(3.0, 4.0), (-3.0, 4.0), (0.0, 0.0), (1e200, 1e200)] {
            let want = f64::hypot(a, b);
            let got = d2norm(a, b);
            if want == 0.0 {
                assert_eq!(got, 0.0);
            } else {
                assert!((got - want).abs() / want < 1e-12);
            }
        }
    }

    proptest! {
        #[test]
        fn axpy_then_inverse_restores(a in -10.0f64..10.0, n in 1usize..50) {
            prop_assume!(a.abs() > 1e-6);
            let x: Vec<f64> = (0..n).map(|i| i as f64 + 0.5).collect();
            let y0: Vec<f64> = (0..n).map(|i| (i as f64).cos()).collect();
            let mut y = y0.clone();
            axpy(&mut y, a, &x);
            axpy(&mut y, -a, &x);
            for (yi, y0i) in y.iter().zip(&y0) {
                prop_assert!((yi - y0i).abs() < 1e-9);
            }
        }

        #[test]
        fn scal_scales_norm(s in -4.0f64..4.0, n in 1usize..50) {
            let mut v: Vec<f64> = (0..n).map(|i| (i as f64 * 0.7).sin() + 0.1).collect();
            let before = nrm2(&v);
            scal(&mut v, s);
            prop_assert!((nrm2(&v) - s.abs() * before).abs() < 1e-9 * (1.0 + before));
        }
    }
}
