//! A fault-injecting backend decorator for resilience testing.
//!
//! [`ChaosBackend`] wraps any [`Backend`] and corrupts (or kills) one
//! chosen `aprod` evaluation, simulating the silent data corruption and
//! in-kernel crashes GPUs exhibit at scale — an ECC miss in an
//! accumulator, an `atomicAdd` on a dying device, a kernel abort. The
//! solver's health guards ([`gaia_lsqr::health`] in the core crate) are
//! expected to catch the corruption within one iteration; the resilience
//! tests drive exactly that path.
//!
//! Injection is by *call index*, counted separately per product, so a
//! test can deterministically hit e.g. "the 4th `aprod2` of the run"
//! regardless of timing. Calls other than the chosen one pass through
//! untouched, and the wrapped backend remains responsible for the BLAS-1
//! pieces.

use std::sync::atomic::{AtomicUsize, Ordering};

use gaia_sparse::SparseSystem;

use crate::traits::Backend;

/// Which product of the wrapped backend to corrupt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaosTarget {
    /// Corrupt an `aprod1` (`out += A x`) evaluation.
    Aprod1,
    /// Corrupt an `aprod2` (`out += Aᵀ y`) evaluation.
    Aprod2,
}

/// What to do to the chosen evaluation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ChaosMode {
    /// Write a NaN into one output element after the real kernel ran
    /// (silent corruption: the call "succeeds" but poisons the state).
    Nan,
    /// Overwrite one output element with the given value (e.g. a huge
    /// finite number, modelling a bit-flip in an exponent).
    Overwrite(f64),
    /// Panic inside the kernel (a crashed device / aborted kernel). In a
    /// distributed world this kills the rank and trips the supervisor's
    /// world-failure path rather than the health guards.
    Panic,
}

/// Decorator injecting one fault into the `index`-th call of `target`.
pub struct ChaosBackend<B> {
    inner: B,
    target: ChaosTarget,
    mode: ChaosMode,
    index: usize,
    word: usize,
    aprod1_calls: AtomicUsize,
    aprod2_calls: AtomicUsize,
}

impl<B: Backend> ChaosBackend<B> {
    /// Corrupt the `index`-th (0-based) call of `target` according to
    /// `mode`; every other call is forwarded untouched.
    pub fn new(inner: B, target: ChaosTarget, mode: ChaosMode, index: usize) -> Self {
        ChaosBackend {
            inner,
            target,
            mode,
            index,
            word: 0,
            aprod1_calls: AtomicUsize::new(0),
            aprod2_calls: AtomicUsize::new(0),
        }
    }

    /// Corrupt output element `word` instead of element 0.
    pub fn at_word(mut self, word: usize) -> Self {
        self.word = word;
        self
    }

    /// How many times each product has been evaluated so far.
    ///
    /// ORDERING: the call counters are independent tallies read only after
    /// the solve completes (or for trigger arithmetic on the incrementing
    /// thread itself) — `Relaxed` is the weakest correct ordering.
    pub fn calls(&self) -> (usize, usize) {
        (
            self.aprod1_calls.load(Ordering::Relaxed),
            self.aprod2_calls.load(Ordering::Relaxed),
        )
    }

    fn strike(&self, out: &mut [f64]) {
        let w = self.word.min(out.len().saturating_sub(1));
        match self.mode {
            ChaosMode::Nan => out[w] = f64::NAN,
            ChaosMode::Overwrite(v) => out[w] = v,
            ChaosMode::Panic => panic!(
                "chaos: injected kernel crash in {} call {}",
                match self.target {
                    ChaosTarget::Aprod1 => "aprod1",
                    ChaosTarget::Aprod2 => "aprod2",
                },
                self.index
            ),
        }
    }
}

impl<B: Backend> Backend for ChaosBackend<B> {
    fn name(&self) -> String {
        format!("chaos({})", self.inner.name())
    }

    fn description(&self) -> &'static str {
        "fault-injecting decorator: corrupts one chosen aprod evaluation"
    }

    fn aprod1(&self, sys: &SparseSystem, x: &[f64], out: &mut [f64]) {
        let call = self.aprod1_calls.fetch_add(1, Ordering::Relaxed);
        self.inner.aprod1(sys, x, out);
        if self.target == ChaosTarget::Aprod1 && call == self.index {
            self.strike(out);
        }
    }

    fn aprod2(&self, sys: &SparseSystem, y: &[f64], out: &mut [f64]) {
        let call = self.aprod2_calls.fetch_add(1, Ordering::Relaxed);
        self.inner.aprod2(sys, y, out);
        if self.target == ChaosTarget::Aprod2 && call == self.index {
            self.strike(out);
        }
    }

    fn launch_plan(&self) -> Option<crate::launch::LaunchPlan> {
        self.inner.launch_plan()
    }

    fn nrm2(&self, v: &[f64]) -> f64 {
        self.inner.nrm2(v)
    }

    fn scal(&self, v: &mut [f64], s: f64) {
        self.inner.scal(v, s)
    }

    fn axpy(&self, y: &mut [f64], a: f64, x: &[f64]) {
        self.inner.axpy(y, a, x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SeqBackend;
    use gaia_sparse::{Generator, GeneratorConfig, SystemLayout};

    fn system() -> SparseSystem {
        Generator::new(GeneratorConfig::new(SystemLayout::tiny()).seed(42)).generate()
    }

    #[test]
    fn only_the_chosen_call_is_corrupted() {
        let sys = system();
        let chaos = ChaosBackend::new(SeqBackend, ChaosTarget::Aprod2, ChaosMode::Nan, 1);
        let y = vec![1.0; sys.n_rows()];
        let mut clean = vec![0.0; sys.n_cols()];
        SeqBackend.aprod2(&sys, &y, &mut clean);

        let mut out0 = vec![0.0; sys.n_cols()];
        chaos.aprod2(&sys, &y, &mut out0);
        assert_eq!(out0, clean, "call 0 untouched");

        let mut out1 = vec![0.0; sys.n_cols()];
        chaos.aprod2(&sys, &y, &mut out1);
        assert!(out1[0].is_nan(), "call 1 poisoned");
        assert_eq!(&out1[1..], &clean[1..], "only one word corrupted");

        let mut out2 = vec![0.0; sys.n_cols()];
        chaos.aprod2(&sys, &y, &mut out2);
        assert_eq!(out2, clean, "call 2 untouched again");
        assert_eq!(chaos.calls(), (0, 3));
    }

    #[test]
    fn aprod1_target_leaves_aprod2_alone() {
        let sys = system();
        let chaos = ChaosBackend::new(
            SeqBackend,
            ChaosTarget::Aprod1,
            ChaosMode::Overwrite(1e300),
            0,
        )
        .at_word(3);
        let y = vec![1.0; sys.n_rows()];
        let mut cols = vec![0.0; sys.n_cols()];
        chaos.aprod2(&sys, &y, &mut cols);
        assert!(cols.iter().all(|v| v.is_finite()));

        let x = vec![1.0; sys.n_cols()];
        let mut rows = vec![0.0; sys.n_rows()];
        chaos.aprod1(&sys, &x, &mut rows);
        assert_eq!(rows[3], 1e300);
    }

    #[test]
    #[should_panic(expected = "injected kernel crash")]
    fn panic_mode_kills_the_call() {
        let sys = system();
        let chaos = ChaosBackend::new(SeqBackend, ChaosTarget::Aprod2, ChaosMode::Panic, 0);
        let y = vec![1.0; sys.n_rows()];
        let mut out = vec![0.0; sys.n_cols()];
        chaos.aprod2(&sys, &y, &mut out);
    }
}
