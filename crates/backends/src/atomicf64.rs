//! Atomic `f64` accumulation.
//!
//! GPUs expose `atomicAdd(double*, double)` as a single read-modify-write
//! (RMW) instruction; compilers that cannot emit it fall back to a
//! compare-and-swap (CAS) retry loop, which the paper identifies as the
//! cause of the MI250X slowdowns for SYCL+DPC++ and OpenMP+clang (§V-B,
//! the `-munsafe-fp-atomics` discussion). CPUs have no native `f64`
//! fetch-add either, so *every* strategy here is a CAS loop — but we provide
//! two variants with measurably different contention behaviour so the
//! RMW-vs-CAS axis of the study stays observable:
//!
//! * [`add_relaxed`] — a single `compare_exchange_weak` loop with a plain
//!   reload on failure (the "RMW-like" fast path);
//! * [`add_seqcst_spin`] — a deliberately conservative loop using
//!   sequentially-consistent ordering and a full `compare_exchange`,
//!   modelling the slower codegen.
//!
//! ORDERING: both variants are pure read-modify-write accumulations into
//! independent slots with no cross-location protocol — the CAS itself
//! guarantees each update lands exactly once, so `Relaxed` is correct for
//! the fast path; the `SeqCst` variant is *deliberately* over-ordered to
//! model conservative compiler fallbacks (see above).

use std::sync::atomic::{AtomicU64, Ordering};

/// Reinterpret an exclusively borrowed `f64` slice as atomic words.
///
/// # Safety rationale (encapsulated; the function itself is safe)
///
/// * `AtomicU64` has the same size and alignment as `u64`/`f64` on every
///   platform with 64-bit atomics (checked by a const assertion).
/// * The `&mut` borrow guarantees no other live references; downgrading the
///   exclusive borrow to a shared slice of atomics is the standard
///   `from_mut_slice` pattern (stabilized upstream as
///   `AtomicU64::from_mut_slice` on nightly; reimplemented here).
/// * All access during the borrow goes through atomic operations.
pub fn as_atomic(slice: &mut [f64]) -> &[AtomicU64] {
    const _: () = assert!(std::mem::size_of::<AtomicU64>() == std::mem::size_of::<f64>());
    const _: () = assert!(std::mem::align_of::<AtomicU64>() == std::mem::align_of::<f64>());
    let len = slice.len();
    let ptr = slice.as_mut_ptr() as *const AtomicU64;
    // SAFETY: size/align asserted above; exclusive borrow rules out aliasing
    // non-atomic access for the lifetime of the returned slice.
    unsafe { std::slice::from_raw_parts(ptr, len) }
}

/// Atomically `slot += v` with relaxed ordering and a weak CAS
/// (the fast, RMW-like variant).
#[inline]
pub fn add_relaxed(slot: &AtomicU64, v: f64) {
    if v == 0.0 {
        return;
    }
    let mut cur = slot.load(Ordering::Relaxed);
    loop {
        let new = f64::from_bits(cur) + v;
        match slot.compare_exchange_weak(cur, new.to_bits(), Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return,
            Err(actual) => cur = actual,
        }
    }
}

/// Atomically `slot += v` with sequentially-consistent ordering, a strong
/// CAS, and a fresh load per retry (the slow, CAS-loop-codegen variant).
#[inline]
pub fn add_seqcst_spin(slot: &AtomicU64, v: f64) {
    if v == 0.0 {
        return;
    }
    loop {
        // ORDERING: SeqCst is the point of this variant — it reproduces the
        // fully-fenced CAS loop conservative compilers emit for f64
        // atomicAdd fallbacks; correctness only needs Relaxed (see
        // add_relaxed above).
        let cur = slot.load(Ordering::SeqCst);
        let new = f64::from_bits(cur) + v;
        // ORDERING: deliberately fully fenced, see the loop comment above.
        if slot
            .compare_exchange(cur, new.to_bits(), Ordering::SeqCst, Ordering::SeqCst)
            .is_ok()
        {
            return;
        }
        std::hint::spin_loop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn atomic_view_round_trips() {
        let mut v = vec![1.5f64, -2.25, 0.0];
        {
            let a = as_atomic(&mut v);
            assert_eq!(f64::from_bits(a[0].load(Ordering::Relaxed)), 1.5);
            add_relaxed(&a[1], 1.0);
            add_seqcst_spin(&a[2], 4.5);
        }
        assert_eq!(v, vec![1.5, -1.25, 4.5]);
    }

    #[test]
    fn concurrent_adds_lose_nothing() {
        const THREADS: usize = 8;
        const PER_THREAD: usize = 10_000;
        let mut target = vec![0.0f64; 4];
        {
            let a = as_atomic(&mut target);
            std::thread::scope(|s| {
                for t in 0..THREADS {
                    let a = &a;
                    s.spawn(move || {
                        for i in 0..PER_THREAD {
                            let slot = (t + i) % 4;
                            if t % 2 == 0 {
                                add_relaxed(&a[slot], 1.0);
                            } else {
                                add_seqcst_spin(&a[slot], 1.0);
                            }
                        }
                    });
                }
            });
        }
        let total: f64 = target.iter().sum();
        assert_eq!(total, (THREADS * PER_THREAD) as f64);
    }

    #[test]
    fn zero_add_is_a_noop_fast_path() {
        let mut v = vec![3.0f64];
        let a = as_atomic(&mut v);
        add_relaxed(&a[0], 0.0);
        add_seqcst_spin(&a[0], 0.0);
        assert_eq!(f64::from_bits(a[0].load(Ordering::Relaxed)), 3.0);
    }
}
