// Fixture: SeqCst site without an ORDERING: annotation in its window.
// ORDERING: the counter below is documented at file level, but the SeqCst
// site itself carries no rationale, which the rule demands.

use std::sync::atomic::{AtomicU64, Ordering};

pub fn bump(c: &AtomicU64) -> u64 {
    let pad = 0;
    let _ = pad;
    let a = 1;
    let b = 2;
    let _ = a + b;
    c.fetch_add(1, Ordering::SeqCst)
}
