// Fixture: broken publish protocol. The writer publishes `ready` with a
// Release store, but the reader polls it with a Relaxed load, so the
// writes the store was meant to order are not guaranteed visible.
//
// ORDERING: `ready` is stored with Release and (incorrectly) loaded with
// Relaxed — the drift checker is satisfied, the pairing checker is not.

use std::sync::atomic::{AtomicBool, Ordering};

pub struct Flag {
    ready: AtomicBool,
}

impl Flag {
    pub fn publish(&self) {
        self.ready.store(true, Ordering::Release);
    }

    pub fn poll(&self) -> bool {
        self.ready.load(Ordering::Relaxed)
    }
}
