// Fixture: raw thread creation outside the executor pool.

pub fn fire_and_forget() {
    std::thread::spawn(|| println!("rogue"));
}
