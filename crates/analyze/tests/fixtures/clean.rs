// Fixture: obeys every rule — annotated unsafe, documented orderings, a
// justified suppression, and rule-triggering spellings quarantined inside
// strings and comments where they are harmless.
//
// ORDERING: the counter is an independent tally read only for reporting;
// Relaxed is the weakest correct ordering.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

pub fn bump(c: &AtomicU64) -> u64 {
    c.fetch_add(1, Ordering::Relaxed)
}

pub fn read_first(v: &[f64]) -> f64 {
    let p = v.as_ptr();
    // SAFETY: `v` is non-empty at every call site in this fixture and the
    // pointer is derived from a live borrow.
    unsafe { *p }
}

pub fn stamp() -> Instant {
    // gaia-analyze: allow(timing): fixture demonstrating a justified
    // suppression; nothing is measured.
    Instant::now()
}

pub fn decoys() -> &'static str {
    // The words unsafe, Instant::now and Ordering::SeqCst in this comment
    // are commentary, not code; the string below is data, not code.
    "unsafe Instant::now() thread::spawn Ordering::SeqCst .unwrap()"
}
