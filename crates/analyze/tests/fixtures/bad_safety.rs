// Fixture: `unsafe` with no SAFETY comment anywhere in the window.

pub fn read_first(v: &[f64]) -> f64 {
    let p = v.as_ptr();
    unsafe { *p }
}
