// Fixture: a suppression with no justification does not suppress, and is
// itself flagged.

use std::time::Instant;

pub fn stamp() -> Instant {
    // gaia-analyze: allow(timing)
    Instant::now()
}
