// Fixture: a well-formed, justified suppression whose rule never fires.
// The clock read it once excused was refactored away; the directive now
// suppresses nothing and must itself be flagged so it gets pruned.

// gaia-analyze: allow(timing): measures the warm-up loop, not a kernel
pub fn how_long(reps: usize) -> usize {
    let mut acc = 0;
    for i in 0..reps {
        acc += i;
    }
    acc
}
