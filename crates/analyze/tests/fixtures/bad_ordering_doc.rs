// Fixture: atomic orderings used, but no ORDERING comment in the file.

use std::sync::atomic::{AtomicU64, Ordering};

pub fn bump(c: &AtomicU64) -> u64 {
    c.fetch_add(1, Ordering::Relaxed)
}
