// Fixture: reversed lock-acquisition nesting. `transfer` takes `a` then
// `b`; `audit` takes `b` then `a`. Two threads running one each can
// deadlock — the acquisition graph has the cycle a → b → a.

use std::sync::Mutex;

pub struct Pair {
    a: Mutex<u64>,
    b: Mutex<u64>,
}

impl Pair {
    pub fn transfer(&self, amount: u64) {
        let mut ga = self.a.lock().unwrap();
        let mut gb = self.b.lock().unwrap();
        *ga -= amount;
        *gb += amount;
    }

    pub fn audit(&self) -> u64 {
        let gb = self.b.lock().unwrap();
        let ga = self.a.lock().unwrap();
        *ga + *gb
    }
}
