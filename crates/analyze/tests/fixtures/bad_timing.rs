// Fixture: ad-hoc clock read outside the telemetry crate.

use std::time::Instant;

pub fn how_long<F: FnOnce()>(f: F) -> f64 {
    let t0 = Instant::now();
    f();
    t0.elapsed().as_secs_f64()
}
