// Fixture: the protocol comment has drifted from the code. The comment
// below documents a Relaxed-only counter, but the code was since changed
// to an Acquire load — the documented protocol no longer matches.
//
// ORDERING: `hits` is an independent tally; Relaxed everywhere.

use std::sync::atomic::{AtomicU64, Ordering};

pub fn read_hits(hits: &AtomicU64) -> u64 {
    hits.load(Ordering::Acquire)
}
