// Fixture: panicking shortcut in a kernel hot path. Linted under the
// virtual path `crates/backends/src/backend_fixture.rs`, which the
// hot-path rule matches by its `backend_` file-name prefix.

pub fn first_range(ranges: &[std::ops::Range<usize>]) -> std::ops::Range<usize> {
    ranges.first().unwrap().clone()
}
