//! The dataflow checkers must actually *see* the workspace's concurrency
//! sites. A clean `--deny` run proves nothing if the resolvers silently
//! stopped resolving — this test pins floors on the site counts so a
//! refactor that blinds the checkers fails loudly.

use std::fs;

use gaia_analyze::dataflow::{atomic, locks};
use gaia_analyze::{find_workspace_root, lexer, workspace_sources, SymbolIndex};

fn workspace_index() -> SymbolIndex {
    let root = find_workspace_root(std::path::Path::new(env!("CARGO_MANIFEST_DIR")))
        .expect("workspace root");
    let files = workspace_sources(&root)
        .expect("workspace sources")
        .iter()
        .map(|rel| {
            let text = fs::read_to_string(root.join(rel)).expect("read source");
            (rel.to_string_lossy().into_owned(), lexer::lex(&text))
        })
        .collect();
    SymbolIndex::build(files)
}

#[test]
fn dataflow_checkers_resolve_real_workspace_sites() {
    let index = workspace_index();

    let (atomic_findings, atomic_sites) = atomic::check(&index);
    let shown: Vec<_> = atomic_findings
        .iter()
        .map(|f| {
            format!(
                "{}:{} [{}] {}",
                index.files[f.file].path, f.line, f.rule, f.message
            )
        })
        .collect();
    assert!(
        shown.is_empty(),
        "workspace atomic protocols drifted:\n{shown:#?}"
    );
    // The executor pool alone contributes the shutdown and latch
    // protocols; the telemetry registry contributes dozens of counters.
    assert!(
        atomic_sites >= 20,
        "atomic-site classification collapsed: {atomic_sites} site(s)"
    );

    let (lock_findings, lock_sites) = locks::check(&index);
    let shown: Vec<_> = lock_findings
        .iter()
        .map(|f| {
            format!(
                "{}:{} [{}] {}",
                index.files[f.file].path, f.line, f.rule, f.message
            )
        })
        .collect();
    assert!(
        shown.is_empty(),
        "workspace lock-order check failed:\n{shown:#?}"
    );
    // The executor pool, serve queue/breaker, and tiled cache all hold
    // resolvable Mutex/RwLock fields.
    assert!(
        lock_sites >= 8,
        "lock-site resolution collapsed: {lock_sites} site(s)"
    );
}

#[test]
fn the_shutdown_protocol_is_visible_to_the_index() {
    // The pairing the checker is supposed to be guarding: exec.rs's
    // `Shared::shutdown` Release store / Acquire load handshake.
    let index = workspace_index();
    let field = index
        .resolve_field("backends", None, "self.shared.shutdown")
        .expect("Shared::shutdown resolves by unique name within gaia-backends");
    assert_eq!(field.key, "Shared::shutdown");
    assert!(index.files[field.file].path.ends_with("exec.rs"));
}
