//! Cross-crate acceptance for the static layers together: the
//! `LaunchPlan` checker in gaia-backends must reject the canonical bad
//! plans (overlapping partitions, unsynchronized shared writes, colliding
//! plain read/write pairs) while the lint engine in this crate must find
//! the *workspace itself* clean.

use std::path::Path;

use gaia_analyze::{analyze_workspace, find_workspace_root};
use gaia_backends::{
    check_sections, PlanDims, PlanViolation, ReadAccess, ReadSpace, SectionId, SectionModel,
    WriteAccess,
};

fn owned(writes: Vec<std::ops::Range<usize>>) -> SectionModel {
    SectionModel::new(SectionId::Att, WriteAccess::Owned, 100, writes)
}

#[test]
fn overlapping_owner_computes_partition_is_rejected() {
    let err = check_sections(&[owned(vec![0..60, 40..100])]).unwrap_err();
    assert!(err
        .violations
        .iter()
        .any(|v| matches!(v, PlanViolation::Overlap { .. })));
}

#[test]
fn gapped_owner_computes_partition_is_rejected() {
    let err = check_sections(&[owned(vec![0..40, 60..100])]).unwrap_err();
    assert!(err
        .violations
        .iter()
        .any(|v| matches!(v, PlanViolation::Gap { .. })));
}

#[test]
fn colliding_plain_shared_writes_are_an_illegal_pairing() {
    let racy = SectionModel::new(
        SectionId::Att,
        WriteAccess::PlainShared,
        100,
        vec![0..100; 4],
    );
    let err = check_sections(&[racy]).unwrap_err();
    assert!(
        err.to_string().contains("illegal strategy/block pairing"),
        "{err}"
    );
    assert!(err.has_write_violation());
}

/// The canary shape as gaia-verify builds it: colliding plain writes
/// *and* plain reads of the whole section. Both independent static
/// layers must reject it.
#[test]
fn colliding_plain_reads_of_plain_writes_are_a_read_write_race() {
    let racy = SectionModel::new(
        SectionId::Att,
        WriteAccess::PlainShared,
        100,
        vec![0..100; 4],
    )
    .with_reads(vec![
        vec![ReadAccess::plain(
            ReadSpace::Section(SectionId::Att),
            0..100
        )];
        4
    ]);
    let err = check_sections(&[racy]).unwrap_err();
    assert!(err.has_write_violation(), "{err}");
    assert!(err.has_read_violation(), "{err}");
    assert!(err.to_string().contains("read/write race"), "{err}");
}

#[test]
fn every_registry_strategy_is_statically_sound() {
    for name in gaia_backends::backend_names() {
        let Some(backend) = gaia_backends::backend_by_name(name, 4) else {
            panic!("{name} not constructible");
        };
        if let Some(plan) = backend.launch_plan() {
            for dims in PlanDims::canonical() {
                plan.analyze(&dims)
                    .unwrap_or_else(|e| panic!("{name} rejected: {e}"));
            }
        }
    }
}

/// Every registry strategy's full access model — reads included — passes
/// the race check, and actually *models* reads (an empty read model would
/// pass vacuously).
#[test]
fn every_registry_strategy_read_model_is_race_free_and_nonempty() {
    for name in gaia_backends::backend_names() {
        let Some(backend) = gaia_backends::backend_by_name(name, 4) else {
            panic!("{name} not constructible");
        };
        let Some(plan) = backend.launch_plan() else {
            continue;
        };
        for dims in PlanDims::canonical() {
            let model = plan.write_model(&dims);
            let reads: usize = model
                .iter()
                .flat_map(|s| s.reads.iter())
                .map(Vec::len)
                .sum();
            assert!(reads > 0, "{name}: access model carries no reads");
            let proof = check_sections(&model).unwrap_or_else(|e| panic!("{name} rejected: {e}"));
            assert_eq!(proof.reads, reads, "{name}: proof undercounts reads");
        }
    }
}

/// The workspace lints clean: zero unsuppressed diagnostics, making the
/// `--deny` CI gate a tier-1 property rather than a CI-only one.
#[test]
fn workspace_is_deny_clean() {
    let root = find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR"))).expect("workspace root");
    let report = analyze_workspace(&root).expect("workspace scan");
    assert!(report.files_scanned > 100, "walker found too few files");
    assert!(
        report.clean(),
        "unsuppressed diagnostics:\n{}",
        report
            .diagnostics
            .iter()
            .map(|d| format!("  {}:{}: [{}] {}", d.path, d.line, d.rule, d.message))
            .collect::<Vec<_>>()
            .join("\n")
    );
}
