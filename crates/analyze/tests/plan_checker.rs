//! Cross-crate acceptance for the two static layers together: the
//! `LaunchPlan` checker in gaia-backends must reject the canonical bad
//! plans (overlapping partitions, unsynchronized shared writes) while the
//! lint engine in this crate must find the *workspace itself* clean.

use std::path::Path;

use gaia_analyze::{analyze_workspace, find_workspace_root};
use gaia_backends::{
    check_sections, PlanDims, PlanViolation, SectionId, SectionModel, WriteAccess,
};

fn owned(writes: Vec<std::ops::Range<usize>>) -> SectionModel {
    SectionModel {
        id: SectionId::Att,
        access: WriteAccess::Owned,
        section_len: 100,
        writes,
    }
}

#[test]
fn overlapping_owner_computes_partition_is_rejected() {
    let err = check_sections(&[owned(vec![0..60, 40..100])]).unwrap_err();
    assert!(err
        .violations
        .iter()
        .any(|v| matches!(v, PlanViolation::Overlap { .. })));
}

#[test]
fn gapped_owner_computes_partition_is_rejected() {
    let err = check_sections(&[owned(vec![0..40, 60..100])]).unwrap_err();
    assert!(err
        .violations
        .iter()
        .any(|v| matches!(v, PlanViolation::Gap { .. })));
}

#[test]
fn colliding_plain_shared_writes_are_an_illegal_pairing() {
    let racy = SectionModel {
        id: SectionId::Att,
        access: WriteAccess::PlainShared,
        section_len: 100,
        writes: vec![0..100; 4],
    };
    let err = check_sections(&[racy]).unwrap_err();
    assert!(
        err.to_string().contains("illegal strategy/block pairing"),
        "{err}"
    );
}

#[test]
fn every_registry_strategy_is_statically_sound() {
    for name in gaia_backends::backend_names() {
        let Some(backend) = gaia_backends::backend_by_name(name, 4) else {
            panic!("{name} not constructible");
        };
        if let Some(plan) = backend.launch_plan() {
            for dims in PlanDims::canonical() {
                plan.analyze(&dims)
                    .unwrap_or_else(|e| panic!("{name} rejected: {e}"));
            }
        }
    }
}

/// The workspace lints clean: zero unsuppressed diagnostics, making the
/// `--deny` CI gate a tier-1 property rather than a CI-only one.
#[test]
fn workspace_is_deny_clean() {
    let root = find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR"))).expect("workspace root");
    let report = analyze_workspace(&root).expect("workspace scan");
    assert!(report.files_scanned > 100, "walker found too few files");
    assert!(
        report.clean(),
        "unsuppressed diagnostics:\n{}",
        report
            .diagnostics
            .iter()
            .map(|d| format!("  {}:{}: [{}] {}", d.path, d.line, d.rule, d.message))
            .collect::<Vec<_>>()
            .join("\n")
    );
}
