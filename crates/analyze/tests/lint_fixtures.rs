//! Fixture corpus acceptance: every deliberately-bad fixture is flagged
//! with exactly the expected rule, and the clean fixture passes untouched.
//! The fixtures live under `tests/fixtures/` (a directory the workspace
//! walker skips) and are linted here under *virtual* production paths, so
//! the test-location exemptions do not mask them.

use gaia_analyze::analyze_source;

/// Lint fixture `text` as if it lived at `path`; return the rule ids.
fn rules_at(path: &str, text: &str) -> Vec<String> {
    analyze_source(path, text)
        .diagnostics
        .into_iter()
        .map(|d| d.rule)
        .collect()
}

#[test]
fn bad_safety_is_flagged() {
    let rules = rules_at(
        "crates/x/src/bad_safety.rs",
        include_str!("fixtures/bad_safety.rs"),
    );
    assert_eq!(rules, vec!["safety-comment"]);
}

#[test]
fn bad_seqcst_is_flagged() {
    let rules = rules_at(
        "crates/x/src/bad_seqcst.rs",
        include_str!("fixtures/bad_seqcst.rs"),
    );
    assert_eq!(rules, vec!["ordering-seqcst"]);
}

#[test]
fn bad_ordering_doc_is_flagged() {
    let rules = rules_at(
        "crates/x/src/bad_ordering_doc.rs",
        include_str!("fixtures/bad_ordering_doc.rs"),
    );
    assert_eq!(rules, vec!["ordering-doc"]);
}

#[test]
fn bad_spawn_is_flagged() {
    let rules = rules_at(
        "crates/x/src/bad_spawn.rs",
        include_str!("fixtures/bad_spawn.rs"),
    );
    assert_eq!(rules, vec!["thread-spawn"]);
}

#[test]
fn bad_timing_is_flagged() {
    let rules = rules_at(
        "crates/x/src/bad_timing.rs",
        include_str!("fixtures/bad_timing.rs"),
    );
    assert_eq!(rules, vec!["timing"]);
}

#[test]
fn bad_unwrap_is_flagged_in_hot_path_only() {
    let text = include_str!("fixtures/bad_unwrap.rs");
    // Under a backend_* file name the hot-path rule fires…
    let rules = rules_at("crates/backends/src/backend_fixture.rs", text);
    assert_eq!(rules, vec!["hot-unwrap"]);
    // …as it does in the out-of-core tile modules, where a panic between
    // tile loads discards a long streamed solve…
    assert_eq!(
        rules_at("crates/sparse/src/tiled.rs", text),
        vec!["hot-unwrap"]
    );
    assert_eq!(rules_at("crates/core/src/ooc.rs", text), vec!["hot-unwrap"]);
    // …but the same code in a cold path is legal.
    assert!(rules_at("crates/backends/src/registry_fixture.rs", text).is_empty());
}

#[test]
fn bad_suppression_is_flagged_and_does_not_suppress() {
    let rules = rules_at(
        "crates/x/src/bad_suppression.rs",
        include_str!("fixtures/bad_suppression.rs"),
    );
    assert_eq!(rules, vec!["suppression", "timing"]);
}

#[test]
fn bad_atomic_pairing_is_flagged_at_the_relaxed_load() {
    let f = analyze_source(
        "crates/x/src/bad_atomic_pairing.rs",
        include_str!("fixtures/bad_atomic_pairing.rs"),
    );
    let rules: Vec<_> = f.diagnostics.iter().map(|d| d.rule.as_str()).collect();
    assert_eq!(rules, vec!["atomic-pairing"]);
    let d = &f.diagnostics[0];
    assert_eq!(d.line, 20, "flagged at the Relaxed load, not the store");
    assert!(d.message.contains("Flag::ready"), "{}", d.message);
}

#[test]
fn bad_lock_order_is_flagged_as_a_cycle() {
    let f = analyze_source(
        "crates/x/src/bad_lock_order.rs",
        include_str!("fixtures/bad_lock_order.rs"),
    );
    let rules: Vec<_> = f.diagnostics.iter().map(|d| d.rule.as_str()).collect();
    assert_eq!(rules, vec!["lock-order"]);
    let d = &f.diagnostics[0];
    assert!(d.message.contains("cycle"), "{}", d.message);
    assert!(d.message.contains("Pair::a"), "{}", d.message);
    assert!(d.message.contains("Pair::b"), "{}", d.message);
}

#[test]
fn bad_unused_suppression_is_flagged_at_its_directive() {
    let f = analyze_source(
        "crates/x/src/bad_unused_suppression.rs",
        include_str!("fixtures/bad_unused_suppression.rs"),
    );
    let rules: Vec<_> = f.diagnostics.iter().map(|d| d.rule.as_str()).collect();
    assert_eq!(rules, vec!["suppression-unused"]);
    assert_eq!(f.diagnostics[0].line, 5, "flagged at the directive line");
    assert!(
        f.suppressions.is_empty(),
        "an unused directive is not an honored suppression"
    );
}

#[test]
fn bad_ordering_drift_is_flagged_at_the_undocumented_use() {
    let f = analyze_source(
        "crates/x/src/bad_ordering_drift.rs",
        include_str!("fixtures/bad_ordering_drift.rs"),
    );
    let rules: Vec<_> = f.diagnostics.iter().map(|d| d.rule.as_str()).collect();
    assert_eq!(rules, vec!["ordering-drift"]);
    assert!(
        f.diagnostics[0].message.contains("Acquire"),
        "{}",
        f.diagnostics[0].message
    );
}

#[test]
fn clean_fixture_passes_with_one_honored_suppression() {
    let f = analyze_source("crates/x/src/clean.rs", include_str!("fixtures/clean.rs"));
    assert!(
        f.diagnostics.is_empty(),
        "clean fixture flagged: {:?}",
        f.diagnostics
    );
    assert_eq!(f.suppressions.len(), 1);
    assert_eq!(f.suppressions[0].rule, "timing");
    assert!(!f.suppressions[0].justification.is_empty());
}

#[test]
fn diagnostics_carry_location_and_excerpt() {
    let f = analyze_source(
        "crates/x/src/bad_timing.rs",
        include_str!("fixtures/bad_timing.rs"),
    );
    let d = &f.diagnostics[0];
    assert_eq!(d.path, "crates/x/src/bad_timing.rs");
    assert_eq!(d.line, 6);
    assert!(d.excerpt.contains("Instant::now"));
    assert!(d.message.contains("telemetry"));
}
