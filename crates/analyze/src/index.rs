//! Workspace symbol index over [`crate::items`]: per-crate field-symbol
//! resolution and an approximate intra-crate call graph.
//!
//! Resolution is deliberately conservative — a receiver or callee that
//! cannot be pinned to exactly one symbol resolves to *nothing*, so the
//! dataflow checkers built on top stay quiet rather than guess:
//!
//! * `self.field` resolves through the enclosing `impl` type first
//!   (`Type::field`), then by unique field name within the crate;
//! * any other dotted receiver resolves by unique *last-segment* field
//!   name within the crate;
//! * indexed receivers (`stripes[i].lock()`) never resolve — per-element
//!   locks are ordered by index, not by field;
//! * `self.method()` / `Self::assoc()` calls resolve through the
//!   enclosing `impl` type first, then by unique fn name; free calls by
//!   unique fn name only.

use std::collections::BTreeMap;

use crate::items::{parse_items, CallSite, FnItem, ParsedFile, SyncKind};
use crate::lexer::FileView;

/// One file held by the index.
#[derive(Debug)]
pub struct FileEntry {
    /// Workspace-relative path with `/` separators.
    pub path: String,
    /// The lexed view (rules and dataflow share it).
    pub view: FileView,
    /// Parsed items.
    pub items: ParsedFile,
}

/// A resolved synchronization field.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FieldRef {
    /// Stable key: `Type::field`.
    pub key: String,
    /// Which primitive.
    pub kind: SyncKind,
    /// File index into [`SymbolIndex::files`].
    pub file: usize,
    /// 1-based declaration line.
    pub line: usize,
}

/// Identifier of a fn in the index: `(file index, fn index)`.
pub type FnId = (usize, usize);

#[derive(Debug, Default)]
struct CrateIndex {
    files: Vec<usize>,
    fields_by_key: BTreeMap<String, FieldRef>,
    fields_by_name: BTreeMap<String, Vec<String>>,
    fns_by_qual: BTreeMap<String, Vec<FnId>>,
    fns_by_name: BTreeMap<String, Vec<FnId>>,
}

/// The whole-workspace (or single-file) symbol index.
#[derive(Debug, Default)]
pub struct SymbolIndex {
    /// Every indexed file.
    pub files: Vec<FileEntry>,
    crates: BTreeMap<String, CrateIndex>,
}

/// The crate a workspace-relative path belongs to: `crates/<name>/…` →
/// `<name>`; anything else groups under its first path segment.
pub fn crate_of(path: &str) -> &str {
    let mut segs = path.split('/');
    match (segs.next(), segs.next()) {
        (Some("crates"), Some(name)) => name,
        (Some(first), _) => first,
        _ => path,
    }
}

impl SymbolIndex {
    /// Build the index from lexed files.
    pub fn build(files: Vec<(String, FileView)>) -> Self {
        let mut out = SymbolIndex::default();
        for (path, view) in files {
            let items = parse_items(&view);
            out.files.push(FileEntry { path, view, items });
        }
        for (fi, entry) in out.files.iter().enumerate() {
            let ci = out
                .crates
                .entry(crate_of(&entry.path).to_owned())
                .or_default();
            ci.files.push(fi);
            for s in &entry.items.structs {
                for f in &s.sync_fields {
                    let key = format!("{}::{}", s.name, f.name);
                    ci.fields_by_name
                        .entry(f.name.clone())
                        .or_default()
                        .push(key.clone());
                    ci.fields_by_key.entry(key.clone()).or_insert(FieldRef {
                        key,
                        kind: f.kind,
                        file: fi,
                        line: f.line,
                    });
                }
            }
            for (gi, f) in entry.items.fns.iter().enumerate() {
                let id: FnId = (fi, gi);
                if let Some(ty) = &f.impl_type {
                    ci.fns_by_qual
                        .entry(format!("{ty}::{}", f.name))
                        .or_default()
                        .push(id);
                }
                ci.fns_by_name.entry(f.name.clone()).or_default().push(id);
            }
        }
        out
    }

    /// Crate names present in the index, sorted.
    pub fn crate_names(&self) -> impl Iterator<Item = &str> {
        self.crates.keys().map(String::as_str)
    }

    /// File indices belonging to `krate`.
    pub fn crate_files<'a>(&'a self, krate: &str) -> &'a [usize] {
        self.crates
            .get(krate)
            .map(|c| c.files.as_slice())
            .unwrap_or(&[])
    }

    /// Resolve a dotted receiver (`self.shared.shutdown`, `flag`) against
    /// the crate's sync fields. `impl_type` is the enclosing method's
    /// `impl` type, used for the `self.field` fast path.
    pub fn resolve_field(
        &self,
        krate: &str,
        impl_type: Option<&str>,
        receiver: &str,
    ) -> Option<&FieldRef> {
        if receiver.contains('[') {
            return None; // indexed: element identity is not a field
        }
        let ci = self.crates.get(krate)?;
        let segs: Vec<&str> = receiver.split('.').collect();
        let last = segs.last()?.trim();
        if last.is_empty() || !last.chars().all(|c| c.is_alphanumeric() || c == '_') {
            return None;
        }
        if segs.len() == 2 && segs[0] == "self" {
            if let Some(ty) = impl_type {
                if let Some(f) = ci.fields_by_key.get(&format!("{ty}::{last}")) {
                    return Some(f);
                }
            }
        }
        match ci.fields_by_name.get(last).map(Vec::as_slice) {
            Some([only]) => ci.fields_by_key.get(only),
            _ => None,
        }
    }

    /// Resolve a call site from `caller` to an intra-crate fn, or `None`
    /// when ambiguous / external.
    pub fn resolve_call(&self, krate: &str, caller: &FnItem, call: &CallSite) -> Option<FnId> {
        let ci = self.crates.get(krate)?;
        if call.on_self {
            if let Some(ty) = &caller.impl_type {
                if let Some([only]) = ci
                    .fns_by_qual
                    .get(&format!("{ty}::{}", call.callee))
                    .map(Vec::as_slice)
                {
                    return Some(*only);
                }
            }
        }
        match ci.fns_by_name.get(&call.callee).map(Vec::as_slice) {
            Some([only]) => Some(*only),
            _ => None,
        }
    }

    /// Look up a fn by id.
    pub fn fn_item(&self, id: FnId) -> (&FileEntry, &FnItem) {
        let entry = &self.files[id.0];
        (entry, &entry.items.fns[id.1])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn index_of(files: &[(&str, &str)]) -> SymbolIndex {
        SymbolIndex::build(
            files
                .iter()
                .map(|(p, s)| ((*p).to_owned(), lex(s)))
                .collect(),
        )
    }

    #[test]
    fn crate_of_groups_by_crates_dir() {
        assert_eq!(crate_of("crates/backends/src/exec.rs"), "backends");
        assert_eq!(crate_of("crates/serve/tests/service.rs"), "serve");
        assert_eq!(crate_of("xtask/src/main.rs"), "xtask");
    }

    #[test]
    fn self_field_resolves_through_impl_type_before_unique_name() {
        let idx = index_of(&[(
            "crates/a/src/lib.rs",
            "struct P { state: Mutex<u32> }\nstruct Q { state: Mutex<u32> }\n\
             impl P { fn go(&self) { self.state.lock(); } }",
        )]);
        // `state` is ambiguous by name (P::state, Q::state)…
        assert!(idx.resolve_field("a", None, "state").is_none());
        // …but `self.state` inside `impl P` pins it.
        let f = idx.resolve_field("a", Some("P"), "self.state").unwrap();
        assert_eq!(f.key, "P::state");
    }

    #[test]
    fn unique_name_resolves_across_files_in_crate() {
        let idx = index_of(&[
            (
                "crates/a/src/one.rs",
                "pub struct Shared { shutdown: AtomicBool }",
            ),
            ("crates/a/src/two.rs", "fn f() {}"),
        ]);
        let f = idx
            .resolve_field("a", None, "shared.shutdown")
            .expect("unique name match");
        assert_eq!(f.key, "Shared::shutdown");
        assert_eq!(f.kind, SyncKind::Atomic);
        // Other crates do not see it.
        assert!(idx.resolve_field("b", None, "shutdown").is_none());
    }

    #[test]
    fn indexed_receivers_never_resolve() {
        let idx = index_of(&[("crates/a/src/lib.rs", "struct S { stripes: Mutex<u32> }")]);
        assert!(idx.resolve_field("a", None, "stripes[i]").is_none());
    }

    #[test]
    fn call_resolution_prefers_impl_then_unique() {
        let idx = index_of(&[(
            "crates/a/src/lib.rs",
            "struct P;\nstruct Q;\n\
             impl P { fn lock(&self) {} fn go(&self) { self.lock(); } }\n\
             impl Q { fn lock(&self) {} }\n\
             fn free() { helper(); }\nfn helper() {}",
        )]);
        let entry = &idx.files[0];
        let go = entry.items.fns.iter().find(|f| f.name == "go").unwrap();
        let call = go.calls.iter().find(|c| c.callee == "lock").unwrap();
        let id = idx.resolve_call("a", go, call).expect("impl-qualified");
        assert_eq!(idx.fn_item(id).1.impl_type.as_deref(), Some("P"));

        let free = entry.items.fns.iter().find(|f| f.name == "free").unwrap();
        let call = free.calls.iter().find(|c| c.callee == "helper").unwrap();
        assert!(idx.resolve_call("a", free, call).is_some());

        // `lock` without a self receiver is ambiguous (P::lock, Q::lock).
        let fake = CallSite {
            callee: "lock".into(),
            on_self: false,
            line: 1,
            col: 0,
        };
        assert!(idx.resolve_call("a", free, &fake).is_none());
    }
}
