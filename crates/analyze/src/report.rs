//! Machine-readable lint report (`results/analyze/report.json`), the
//! artifact CI uploads so a failing `--deny` run can be inspected without
//! re-running the analyzer.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use serde::{Deserialize, Serialize};

use crate::rules::{Diagnostic, Suppression, RULES, RULE_IDS};

/// Report schema identifier; bump on incompatible change. `v2` added the
/// dataflow rule families (`atomic-pairing`, `lock-order`,
/// `ordering-drift`, `suppression-unused`), per-rule descriptions, and
/// the `since` field for diff-aware scans.
pub const SCHEMA: &str = "gaia-analyze/v2";

/// Default location of the JSON artifact, relative to the workspace root.
pub const DEFAULT_REPORT_PATH: &str = "results/analyze/report.json";

/// Per-rule tally.
#[derive(Debug, Clone, Serialize, Deserialize, Default)]
pub struct RuleCount {
    /// Rule identifier.
    pub rule: String,
    /// One-line rule description (from the rule inventory).
    #[serde(default)]
    pub description: String,
    /// Unsuppressed diagnostics for this rule.
    pub diagnostics: usize,
    /// Honored suppressions for this rule.
    pub suppressions: usize,
}

/// The full workspace lint report.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Report {
    /// Always [`SCHEMA`].
    pub schema: String,
    /// Files lexed and checked.
    pub files_scanned: usize,
    /// Every unsuppressed diagnostic, in path/line order.
    pub diagnostics: Vec<Diagnostic>,
    /// Every honored suppression, in path/line order.
    pub suppressions: Vec<Suppression>,
    /// Per-rule tallies over the two lists above.
    pub rules: Vec<RuleCount>,
    /// Revision this scan was restricted against (`--since <rev>`), or
    /// `None` (serialized as `null`) for a full-workspace scan.
    #[serde(default)]
    pub since: Option<String>,
}

impl Report {
    /// Assemble a report from the raw findings.
    pub fn new(
        files_scanned: usize,
        mut diagnostics: Vec<Diagnostic>,
        mut suppressions: Vec<Suppression>,
    ) -> Self {
        diagnostics.sort_by(|a, b| (&a.path, a.line).cmp(&(&b.path, b.line)));
        suppressions.sort_by(|a, b| (&a.path, a.line).cmp(&(&b.path, b.line)));
        let rules = RULE_IDS
            .iter()
            .map(|id| RuleCount {
                rule: (*id).to_owned(),
                description: RULES
                    .iter()
                    .find(|(r, _)| r == id)
                    .map(|(_, d)| (*d).to_owned())
                    .unwrap_or_default(),
                diagnostics: diagnostics.iter().filter(|d| d.rule == *id).count(),
                suppressions: suppressions.iter().filter(|s| s.rule == *id).count(),
            })
            .collect();
        Report {
            schema: SCHEMA.to_owned(),
            files_scanned,
            diagnostics,
            suppressions,
            rules,
            since: None,
        }
    }

    /// True when no unsuppressed diagnostic remains (`--deny` exit 0).
    pub fn clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// Write the report under `root` at [`DEFAULT_REPORT_PATH`], creating
    /// directories as needed. Returns the path written.
    pub fn write_json(&self, root: &Path) -> io::Result<PathBuf> {
        let path = root.join(DEFAULT_REPORT_PATH);
        if let Some(dir) = path.parent() {
            fs::create_dir_all(dir)?;
        }
        let json = serde_json::to_string_pretty(self).map_err(io::Error::other)?;
        fs::write(&path, json + "\n")?;
        Ok(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_sorts_and_tallies() {
        let d = |path: &str, line: usize, rule: &str| Diagnostic {
            path: path.into(),
            line,
            rule: rule.into(),
            message: String::new(),
            excerpt: String::new(),
        };
        let r = Report::new(
            3,
            vec![d("b.rs", 1, "timing"), d("a.rs", 9, "timing")],
            vec![],
        );
        assert_eq!(r.schema, SCHEMA);
        assert_eq!(r.diagnostics[0].path, "a.rs");
        assert!(!r.clean());
        let timing = r.rules.iter().find(|c| c.rule == "timing").unwrap();
        assert_eq!(timing.diagnostics, 2);
        assert_eq!(timing.suppressions, 0);
        assert!(
            r.rules.iter().all(|c| !c.description.is_empty()),
            "every rule in the inventory carries a description"
        );
        assert!(Report::new(3, vec![], vec![]).clean());
    }

    #[test]
    fn json_round_trips() {
        let r = Report::new(1, vec![], vec![]);
        let s = serde_json::to_string(&r).unwrap();
        let back: Report = serde_json::from_str(&s).unwrap();
        assert_eq!(back.files_scanned, 1);
        assert_eq!(back.schema, SCHEMA);
    }
}
