//! Item-level parser on top of [`crate::lexer`]: function, struct, and
//! `impl` extraction with just enough resolution for cross-file rules —
//! no rustc, no syn.
//!
//! The parser works on the lexed `code` text (strings and comments
//! already blanked), tracking brace depth character by character. It is
//! deliberately approximate where precision needs a real type system:
//!
//! * `macro_rules!` bodies are skipped wholesale (their token trees are
//!   not item grammar);
//! * `r#ident` raw identifiers are recognized and recorded unprefixed;
//! * generics are skipped by angle-bracket nesting, so a signature like
//!   `fn f<T: Into<Vec<u8>>>(m: Map<K, Vec<(A, B)>>) -> impl Iterator` is
//!   attributed to the right body block;
//! * `impl` in type position (`-> impl Iterator`) is distinguished from
//!   item position by the preceding token;
//! * call sites record the last path segment only — the symbol index
//!   ([`crate::index`]) decides what resolves.

use std::ops::Range;

use crate::lexer::FileView;

/// Classification of a synchronization-relevant field type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum SyncKind {
    /// `AtomicBool`, `AtomicUsize`, `AtomicU64`, … (anything `Atomic*`).
    Atomic,
    /// `Mutex<T>` (std or parking_lot).
    Mutex,
    /// `RwLock<T>`.
    RwLock,
    /// `Condvar`.
    Condvar,
}

/// One synchronization-typed named field of a struct.
#[derive(Debug, Clone)]
pub struct FieldItem {
    /// Field name.
    pub name: String,
    /// The declared type text, trimmed.
    pub ty: String,
    /// Which sync primitive the type is.
    pub kind: SyncKind,
    /// 1-based declaration line.
    pub line: usize,
}

/// One struct with at least its sync-typed fields extracted.
#[derive(Debug, Clone)]
pub struct StructItem {
    /// Struct name (raw `r#` prefix stripped).
    pub name: String,
    /// 1-based line of the `struct` keyword.
    pub line: usize,
    /// Named fields typed `Atomic*`/`Mutex`/`RwLock`/`Condvar`.
    pub sync_fields: Vec<FieldItem>,
}

/// One call site inside a function body.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// Callee name: the last path segment (`Self::work(` → `work`).
    pub callee: String,
    /// Whether the receiver is exactly `self` (`self.m(...)`) or the
    /// path starts with `Self`.
    pub on_self: bool,
    /// 1-based line of the call.
    pub line: usize,
    /// 0-based column of the callee identifier on that line.
    pub col: usize,
}

/// One `fn` item.
#[derive(Debug, Clone)]
pub struct FnItem {
    /// Function name (raw `r#` prefix stripped).
    pub name: String,
    /// Enclosing `impl` type, when the fn is a method / assoc fn.
    pub impl_type: Option<String>,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
    /// 1-based half-open line range of the body including its braces;
    /// empty (`line..line`) for bodyless trait declarations.
    pub body: Range<usize>,
    /// Test code: inside `#[cfg(test)]` or carrying a `#[test]`-like
    /// attribute.
    pub is_test: bool,
    /// Approximate call sites in the body.
    pub calls: Vec<CallSite>,
}

/// Everything extracted from one file.
#[derive(Debug, Clone, Default)]
pub struct ParsedFile {
    /// All functions, in source order.
    pub fns: Vec<FnItem>,
    /// All structs with named fields, in source order.
    pub structs: Vec<StructItem>,
}

/// A flat character stream over the lexed code with line provenance.
struct Flat {
    /// `(0-based line, char)`; lines separated by `'\n'` entries.
    chars: Vec<(usize, char)>,
    /// Index of the first char of each 0-based line.
    line_start: Vec<usize>,
}

fn flatten(view: &FileView) -> Flat {
    let mut chars = Vec::new();
    let mut line_start = Vec::new();
    for (ln, l) in view.lines.iter().enumerate() {
        line_start.push(chars.len());
        for c in l.code.chars() {
            chars.push((ln, c));
        }
        chars.push((ln, '\n'));
    }
    Flat { chars, line_start }
}

fn is_ident(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

impl Flat {
    fn ch(&self, i: usize) -> char {
        self.chars.get(i).map(|&(_, c)| c).unwrap_or('\n')
    }

    fn line_of(&self, i: usize) -> usize {
        self.chars.get(i).map(|&(l, _)| l).unwrap_or(0)
    }

    /// Is the identifier starting at `i` a whole word (not a suffix)?
    fn word_starts_at(&self, i: usize) -> bool {
        i == 0 || !is_ident(self.ch(i - 1))
    }

    /// Read the identifier starting at `i`; returns (ident, end).
    fn ident_at(&self, i: usize) -> (String, usize) {
        let mut j = i;
        let mut s = String::new();
        while j < self.chars.len() && is_ident(self.ch(j)) {
            s.push(self.ch(j));
            j += 1;
        }
        (s, j)
    }

    fn skip_ws(&self, mut i: usize) -> usize {
        while i < self.chars.len() && self.ch(i).is_whitespace() {
            i += 1;
        }
        i
    }

    /// Skip a balanced `<...>` group starting at `i` (which must be `<`).
    fn skip_angles(&self, i: usize) -> usize {
        let mut depth = 0i32;
        let mut j = i;
        while j < self.chars.len() {
            match self.ch(j) {
                '<' => depth += 1,
                '>' => {
                    // `->` arrows inside generics never appear at depth
                    // bookkeeping level: `-` precedes the `>`.
                    if self.ch(j.wrapping_sub(1)) != '-' {
                        depth -= 1;
                        if depth == 0 {
                            return j + 1;
                        }
                    }
                }
                '{' | ';' => return j, // malformed; bail at the block
                _ => {}
            }
            j += 1;
        }
        j
    }

    /// From `i` (which must be `{`), return the index just past the
    /// matching close brace.
    fn skip_block(&self, i: usize) -> usize {
        let mut depth = 0i64;
        let mut j = i;
        while j < self.chars.len() {
            match self.ch(j) {
                '{' => depth += 1,
                '}' => {
                    depth -= 1;
                    if depth == 0 {
                        return j + 1;
                    }
                }
                _ => {}
            }
            j += 1;
        }
        j
    }

    /// The previous non-whitespace char before `i`, if any.
    fn prev_non_ws(&self, i: usize) -> Option<(usize, char)> {
        let mut j = i;
        while j > 0 {
            j -= 1;
            let c = self.ch(j);
            if !c.is_whitespace() {
                return Some((j, c));
            }
        }
        None
    }
}

/// Is `impl`/`struct` at `i` in *item* position? True when the previous
/// token is a block/item boundary (`{`, `}`, `;`, `]` closing an
/// attribute, start of file) or the `unsafe`/`pub` qualifier.
fn item_position(flat: &Flat, i: usize) -> bool {
    match flat.prev_non_ws(i) {
        None => true,
        Some((j, c)) => match c {
            '{' | '}' | ';' | ']' => true,
            _ if is_ident(c) => {
                // Walk back over the word.
                let mut k = j;
                while k > 0 && is_ident(flat.ch(k - 1)) {
                    k -= 1;
                }
                let (w, _) = flat.ident_at(k);
                matches!(w.as_str(), "unsafe" | "pub" | "default")
            }
            _ => false,
        },
    }
}

/// Extract the implemented type name from an `impl` header starting just
/// past the `impl` keyword; returns (last path segment of the type, index
/// of the opening `{`).
fn parse_impl_header(flat: &Flat, mut i: usize) -> Option<(String, usize)> {
    i = flat.skip_ws(i);
    if flat.ch(i) == '<' {
        i = flat.skip_angles(i);
    }
    // Scan forward to the `{`, remembering the last identifier seen
    // after a `for` (trait impls) or overall (inherent impls).
    let mut last_seg = String::new();
    let mut after_for = false;
    let mut for_seg = String::new();
    while i < flat.chars.len() {
        let c = flat.ch(i);
        if c == '{' {
            let seg = if after_for { &for_seg } else { &last_seg };
            if seg.is_empty() {
                return None;
            }
            return Some((seg.clone(), i));
        }
        if c == ';' {
            return None; // `impl Trait for Type;` has no block (unstable)
        }
        if c == '<' {
            i = flat.skip_angles(i);
            continue;
        }
        if is_ident(c) && flat.word_starts_at(i) {
            let (w, end) = flat.ident_at(i);
            match w.as_str() {
                "for" => after_for = true,
                "where" => {
                    // The type is settled; keep scanning for `{` only.
                    i = end;
                    continue;
                }
                "dyn" | "mut" | "r" => {}
                _ => {
                    if after_for {
                        for_seg = w;
                    } else {
                        last_seg = w;
                    }
                }
            }
            i = end;
            continue;
        }
        i += 1;
    }
    None
}

/// Strip a leading `r#` from a raw identifier.
fn strip_raw(name: &str) -> &str {
    name.strip_prefix("r#").unwrap_or(name)
}

const KEYWORDS: &[&str] = &[
    "if", "while", "for", "match", "loop", "return", "fn", "as", "in", "move", "unsafe", "let",
    "else", "impl", "pub", "use", "where", "mut", "ref", "break", "continue", "type", "struct",
    "enum", "trait", "mod", "const", "static", "crate", "super", "dyn", "box", "await", "yield",
    "drop",
];

fn classify_sync_type(ty: &str) -> Option<SyncKind> {
    // Word-boundary scan so `MutexGuard` does not classify as `Mutex`
    // and a doc-string `Atomicity` does not classify as atomic.
    let chars: Vec<char> = ty.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        if is_ident(chars[i]) && (i == 0 || !is_ident(chars[i - 1])) {
            let mut j = i;
            while j < chars.len() && is_ident(chars[j]) {
                j += 1;
            }
            let word: String = chars[i..j].iter().collect();
            if word == "Mutex" {
                return Some(SyncKind::Mutex);
            }
            if word == "RwLock" {
                return Some(SyncKind::RwLock);
            }
            if word == "Condvar" {
                return Some(SyncKind::Condvar);
            }
            if word.starts_with("Atomic") && word.len() > "Atomic".len() {
                return Some(SyncKind::Atomic);
            }
            i = j;
        } else {
            i += 1;
        }
    }
    None
}

/// Parse the named-field list of a struct block `{ ... }` starting at the
/// opening brace.
fn parse_fields(flat: &Flat, open: usize, out: &mut Vec<FieldItem>) {
    // Scan only up to the closing brace itself, so the last field's type
    // text never swallows the `}`.
    let end = flat.skip_block(open).saturating_sub(1);
    let mut i = open + 1;
    while i < end {
        i = flat.skip_ws(i);
        if i >= end || flat.ch(i) == '}' {
            break;
        }
        // Skip attributes on the field.
        while flat.ch(i) == '#' {
            let mut j = i + 1;
            if flat.ch(j) == '[' {
                let mut depth = 0i32;
                while j < end {
                    match flat.ch(j) {
                        '[' => depth += 1,
                        ']' => {
                            depth -= 1;
                            if depth == 0 {
                                j += 1;
                                break;
                            }
                        }
                        _ => {}
                    }
                    j += 1;
                }
            }
            i = flat.skip_ws(j);
        }
        // Optional visibility.
        if flat.word_starts_at(i) {
            let (w, wend) = flat.ident_at(i);
            if w == "pub" {
                i = flat.skip_ws(wend);
                if flat.ch(i) == '(' {
                    while i < end && flat.ch(i) != ')' {
                        i += 1;
                    }
                    i = flat.skip_ws(i + 1);
                }
            }
        }
        // Field name.
        let (name, nend) = flat.ident_at(i);
        let name_line = flat.line_of(i);
        let mut j = flat.skip_ws(nend);
        if name.is_empty() || flat.ch(j) != ':' {
            // Not a named field (or parse drift); resync to the next
            // top-level comma.
            i = next_top_level_comma(flat, i, end);
            continue;
        }
        j += 1;
        // Type runs to the next top-level comma or the close brace.
        let ty_end = next_top_level_comma(flat, j, end);
        let ty_stop = if ty_end < end { ty_end - 1 } else { ty_end };
        let ty: String = (j..ty_stop.max(j))
            .map(|k| flat.ch(k))
            .collect::<String>()
            .trim()
            .to_owned();
        if let Some(kind) = classify_sync_type(&ty) {
            out.push(FieldItem {
                name: strip_raw(&name).to_owned(),
                ty,
                kind,
                line: name_line + 1,
            });
        }
        i = ty_end;
    }
}

/// Index just past the next comma at brace/paren/angle depth 0 within
/// `[from, end)`, or `end` if none.
fn next_top_level_comma(flat: &Flat, from: usize, end: usize) -> usize {
    let mut depth = 0i32;
    let mut i = from;
    while i < end {
        match flat.ch(i) {
            '(' | '[' | '{' => depth += 1,
            ')' | ']' | '}' => depth -= 1,
            '<' => depth += 1,
            '>' => {
                if flat.ch(i.wrapping_sub(1)) != '-' {
                    depth -= 1;
                }
            }
            ',' if depth <= 0 => return i + 1,
            _ => {}
        }
        i += 1;
    }
    end
}

/// Does the contiguous attribute block above 0-based line `ln` carry a
/// `#[test]`-like attribute?
fn has_test_attr(view: &FileView, ln: usize) -> bool {
    let mut i = ln;
    while i > 0 {
        i -= 1;
        let code = view.lines[i].code.trim();
        if code.is_empty() {
            continue;
        }
        if !code.starts_with("#[") {
            return false;
        }
        if code.contains("#[test]") || code.contains("::test]") || code.contains("#[bench]") {
            return true;
        }
    }
    false
}

/// Extract approximate call sites from the char span `[from, to)`.
fn collect_calls(flat: &Flat, from: usize, to: usize, out: &mut Vec<CallSite>) {
    let mut i = from;
    while i < to {
        let c = flat.ch(i);
        if !(is_ident(c) && flat.word_starts_at(i)) {
            i += 1;
            continue;
        }
        let (word, end) = flat.ident_at(i);
        let after = flat.skip_ws(end);
        let is_call = flat.ch(after) == '(' && flat.ch(end) != '!';
        if !is_call
            || KEYWORDS.contains(&word.as_str())
            || word.chars().next().is_some_and(|c| c.is_uppercase())
        {
            i = end;
            continue;
        }
        // Walk the path/receiver backwards: `a::b::word(` or `recv.word(`.
        let mut on_self = false;
        if i >= 1 {
            let prev = flat.ch(i - 1);
            if prev == '.' {
                // Method call: receiver is `self` iff the chars before the
                // dot are exactly the word `self` at a word boundary.
                let mut k = i - 1;
                while k > 0 && is_ident(flat.ch(k - 1)) {
                    k -= 1;
                }
                let (recv, _) = flat.ident_at(k);
                on_self = recv == "self" && (k == 0 || flat.ch(k - 1) != '.');
            } else if prev == ':' && i >= 2 && flat.ch(i - 2) == ':' {
                let mut k = i - 2;
                while k > 0 && is_ident(flat.ch(k - 1)) {
                    k -= 1;
                }
                let (seg, _) = flat.ident_at(k);
                on_self = seg == "Self";
            }
        }
        let line0 = flat.line_of(i);
        out.push(CallSite {
            callee: strip_raw(&word).to_owned(),
            on_self,
            line: line0 + 1,
            col: i - flat.line_start[line0],
        });
        i = end;
    }
}

/// Parse one lexed file into its items.
pub fn parse_items(view: &FileView) -> ParsedFile {
    let flat = flatten(view);
    let n = flat.chars.len();
    let mut out = ParsedFile::default();

    // Pass 0: spans to skip (macro_rules! bodies — token trees, not items).
    let mut skip: Vec<Range<usize>> = Vec::new();
    let mut i = 0;
    while i < n {
        if is_ident(flat.ch(i)) && flat.word_starts_at(i) {
            let (w, end) = flat.ident_at(i);
            if w == "macro_rules" {
                let mut j = flat.skip_ws(end);
                if flat.ch(j) == '!' {
                    j = flat.skip_ws(j + 1);
                    let (_, nend) = flat.ident_at(j);
                    j = flat.skip_ws(nend);
                    if flat.ch(j) == '{' {
                        let close = flat.skip_block(j);
                        skip.push(i..close);
                        i = close;
                        continue;
                    }
                }
            }
            i = end;
            continue;
        }
        i += 1;
    }
    let skipped = |i: usize| skip.iter().any(|r| r.contains(&i));

    // Pass 1: impl regions.
    let mut impls: Vec<(Range<usize>, String)> = Vec::new();
    let mut i = 0;
    while i < n {
        if is_ident(flat.ch(i)) && flat.word_starts_at(i) && !skipped(i) {
            let (w, end) = flat.ident_at(i);
            if w == "impl" && item_position(&flat, i) {
                if let Some((ty, open)) = parse_impl_header(&flat, end) {
                    let close = flat.skip_block(open);
                    impls.push((open..close, ty));
                    i = open + 1; // descend: fns live inside
                    continue;
                }
            }
            i = end;
            continue;
        }
        i += 1;
    }

    // Pass 2: structs and fns.
    let mut i = 0;
    while i < n {
        if !(is_ident(flat.ch(i)) && flat.word_starts_at(i)) || skipped(i) {
            i += 1;
            continue;
        }
        let (w, end) = flat.ident_at(i);
        if w == "struct" && item_position(&flat, i) {
            let j = flat.skip_ws(end);
            let (name, nend) = flat.ident_at(if flat.ch(j) == 'r' && flat.ch(j + 1) == '#' {
                j + 2
            } else {
                j
            });
            if !name.is_empty() {
                let mut k = flat.skip_ws(nend);
                if flat.ch(k) == '<' {
                    k = flat.skip_angles(k);
                }
                // Scan to `{` (named fields), `(` (tuple), or `;` (unit);
                // `where` clauses pass through.
                let mut fields = Vec::new();
                let mut m = k;
                while m < n {
                    match flat.ch(m) {
                        '{' => {
                            parse_fields(&flat, m, &mut fields);
                            m = flat.skip_block(m);
                            break;
                        }
                        '(' | ';' => break,
                        '<' => m = flat.skip_angles(m),
                        _ => m += 1,
                    }
                }
                out.structs.push(StructItem {
                    name: name.clone(),
                    line: flat.line_of(i) + 1,
                    sync_fields: fields,
                });
                i = m.max(nend);
                continue;
            }
        }
        if w == "fn" {
            let j = flat.skip_ws(end);
            // `fn(` is a fn-pointer type, not a definition.
            let name_start = if flat.ch(j) == 'r' && flat.ch(j + 1) == '#' {
                j + 2
            } else {
                j
            };
            let (name, nend) = flat.ident_at(name_start);
            if name.is_empty() {
                i = end;
                continue;
            }
            // Find the body `{` (or `;`) outside parens.
            let mut k = flat.skip_ws(nend);
            if flat.ch(k) == '<' {
                k = flat.skip_angles(k);
            }
            let mut paren = 0i32;
            let mut body: Range<usize> = 0..0;
            let mut body_lines: Range<usize> = 0..0;
            while k < n {
                match flat.ch(k) {
                    '(' | '[' => paren += 1,
                    ')' | ']' => paren -= 1,
                    '<' if paren == 0 => {
                        k = flat.skip_angles(k);
                        continue;
                    }
                    '{' if paren == 0 => {
                        let close = flat.skip_block(k);
                        body = k..close;
                        body_lines =
                            (flat.line_of(k) + 1)..(flat.line_of(close.saturating_sub(1)) + 2);
                        break;
                    }
                    ';' if paren == 0 => break,
                    _ => {}
                }
                k += 1;
            }
            let line0 = flat.line_of(i);
            let impl_type = impls
                .iter()
                .filter(|(r, _)| r.contains(&i))
                .min_by_key(|(r, _)| r.end - r.start)
                .map(|(_, ty)| ty.clone());
            let is_test = view.lines[line0].in_test || has_test_attr(view, line0);
            let mut calls = Vec::new();
            if !body.is_empty() {
                collect_calls(&flat, body.start, body.end, &mut calls);
            }
            out.fns.push(FnItem {
                name: strip_raw(&name).to_owned(),
                impl_type,
                line: line0 + 1,
                body: body_lines,
                is_test,
                calls,
            });
            // Continue scanning from just after the signature so nested
            // fns (and the body's call sites) are still visited.
            i = nend;
            continue;
        }
        i = end;
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse(src: &str) -> ParsedFile {
        parse_items(&lex(src))
    }

    #[test]
    fn fns_and_impl_attribution() {
        let src = "\
pub struct Pool { queue: Mutex<Vec<u32>>, ready: Condvar }
impl Pool {
    pub fn push(&self, v: u32) {
        self.enqueue(v);
    }
    fn enqueue(&self, _v: u32) {}
}
fn free_helper() { work(); }
";
        let p = parse(src);
        assert_eq!(p.structs.len(), 1);
        assert_eq!(p.structs[0].name, "Pool");
        let kinds: Vec<_> = p.structs[0]
            .sync_fields
            .iter()
            .map(|f| (f.name.as_str(), f.kind))
            .collect();
        assert_eq!(
            kinds,
            vec![("queue", SyncKind::Mutex), ("ready", SyncKind::Condvar)]
        );
        let names: Vec<_> = p
            .fns
            .iter()
            .map(|f| (f.name.as_str(), f.impl_type.as_deref()))
            .collect();
        assert_eq!(
            names,
            vec![
                ("push", Some("Pool")),
                ("enqueue", Some("Pool")),
                ("free_helper", None)
            ]
        );
        let push = &p.fns[0];
        assert!(push
            .calls
            .iter()
            .any(|c| c.callee == "enqueue" && c.on_self));
        assert!(p.fns[2]
            .calls
            .iter()
            .any(|c| c.callee == "work" && !c.on_self));
    }

    #[test]
    fn trait_impls_attribute_to_the_self_type() {
        let src = "\
struct Latch { lock: Mutex<()> }
impl std::fmt::Display for Latch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, \"latch\")
    }
}
";
        let p = parse(src);
        assert_eq!(p.fns[0].impl_type.as_deref(), Some("Latch"));
        assert_eq!(p.structs[0].sync_fields[0].kind, SyncKind::Mutex);
    }

    #[test]
    fn impl_trait_in_return_position_is_not_an_impl_block() {
        let src = "\
fn numbers() -> impl Iterator<Item = u32> {
    (0..4).map(double)
}
fn double(x: u32) -> u32 { x * 2 }
";
        let p = parse(src);
        assert_eq!(p.fns.len(), 2);
        assert_eq!(p.fns[0].impl_type, None);
        assert_eq!(p.fns[1].name, "double");
    }

    #[test]
    fn nested_generics_in_signatures_find_the_right_body() {
        let src = "\
fn shuffle<T: Into<Vec<u8>>>(m: std::collections::BTreeMap<String, Vec<(u32, u32)>>) -> Vec<u8>
where
    T: Clone,
{
    helper()
}
fn helper() -> Vec<u8> { Vec::new() }
";
        let p = parse(src);
        assert_eq!(p.fns.len(), 2);
        assert_eq!(p.fns[0].name, "shuffle");
        assert_eq!(p.fns[0].body, 4..7, "body spans the brace lines");
        assert!(p.fns[0].calls.iter().any(|c| c.callee == "helper"));
    }

    #[test]
    fn raw_identifiers_are_recorded_unprefixed() {
        let src = "fn r#loop(r#in: u32) -> u32 { r#in }\nstruct r#Match { guard: Mutex<()> }";
        let p = parse(src);
        assert_eq!(p.fns[0].name, "loop");
        assert_eq!(p.structs[0].name, "Match");
    }

    #[test]
    fn macro_bodies_are_skipped() {
        let src = "\
macro_rules! gen {
    ($n:ident) => {
        fn $n() { phantom(); }
        struct Ghost { m: Mutex<()> }
    };
}
fn real() {}
";
        let p = parse(src);
        assert_eq!(p.fns.len(), 1);
        assert_eq!(p.fns[0].name, "real");
        assert!(p.structs.is_empty());
    }

    #[test]
    fn test_fns_are_marked() {
        let src = "\
fn prod() {}
#[cfg(test)]
mod tests {
    fn helper_in_test_mod() {}
}
#[test]
fn standalone_test() {}
";
        let p = parse(src);
        assert!(!p.fns[0].is_test);
        assert!(p.fns[1].is_test, "cfg(test) mod fn");
        assert!(p.fns[2].is_test, "#[test] attr fn");
    }

    #[test]
    fn fn_pointer_types_and_guards_are_not_defs() {
        let src = "fn takes(f: fn(usize) -> usize) -> usize { f(3) }";
        let p = parse(src);
        assert_eq!(p.fns.len(), 1);
        assert_eq!(p.fns[0].name, "takes");
    }

    #[test]
    fn tuple_and_unit_structs_parse_without_fields() {
        let src = "struct Wrap(Mutex<u32>);\nstruct Marker;\nstruct Named { a: u32 }";
        let p = parse(src);
        let names: Vec<_> = p.structs.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, vec!["Wrap", "Marker", "Named"]);
        assert!(p.structs.iter().all(|s| s.sync_fields.is_empty()));
    }

    #[test]
    fn sync_kind_classification_is_word_bounded() {
        assert_eq!(classify_sync_type("Mutex<Vec<f64>>"), Some(SyncKind::Mutex));
        assert_eq!(
            classify_sync_type("parking_lot::Mutex<u32>"),
            Some(SyncKind::Mutex)
        );
        assert_eq!(
            classify_sync_type("Arc<RwLock<u32>>"),
            Some(SyncKind::RwLock)
        );
        assert_eq!(classify_sync_type("AtomicU64"), Some(SyncKind::Atomic));
        assert_eq!(classify_sync_type("MutexGuard<'a, u32>"), None);
        assert_eq!(classify_sync_type("Vec<f64>"), None);
    }

    #[test]
    fn calls_skip_macros_keywords_and_constructors() {
        let src = "\
fn f() {
    vec![1, 2];
    format!(\"x\");
    if cond() { Other::new(); }
    let _ = Some(3);
    g();
}
fn g() {}
fn cond() -> bool { true }
";
        let p = parse(src);
        let calls: Vec<_> = p.fns[0].calls.iter().map(|c| c.callee.as_str()).collect();
        assert!(calls.contains(&"cond"));
        assert!(calls.contains(&"g"));
        assert!(
            calls.contains(&"new"),
            "assoc fn via Type::new resolves by segment"
        );
        assert!(!calls.contains(&"vec"));
        assert!(!calls.contains(&"format"));
        assert!(!calls.contains(&"Some"));
        assert!(!calls.contains(&"if"));
    }
}
