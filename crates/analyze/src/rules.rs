//! The project rule set and the per-file rule driver.
//!
//! Every rule matches against the lexed code text (comments and string
//! contents already blanked by [`crate::lexer`]), so a mention of
//! `unsafe` in a doc comment or a `"SeqCst"` in a report string never
//! fires. Diagnostics can be suppressed in place with
//!
//! ```text
//! // gaia-analyze: allow(<rule>): <justification>
//! ```
//!
//! on the offending line or up to [`SUPPRESS_WINDOW`] lines above it; an
//! `allow` with no justification is itself a diagnostic (`suppression`).

use serde::{Deserialize, Serialize};

use crate::lexer::{path_is_test, FileView};

/// Lines above a site in which a `SAFETY:` / `ORDERING:` annotation (or a
/// suppression's own window, [`SUPPRESS_WINDOW`]) is honored. Wide enough
/// for an annotation separated from its `unsafe` keyword by a binding
/// line, narrow enough that an annotation cannot cover a stranger.
pub const ANNOTATION_WINDOW: usize = 6;

/// A `gaia-analyze: allow(...)` comment suppresses a diagnostic on its own
/// line or anywhere in the contiguous comment block directly above the
/// site, up to this many lines back (so a wrapped justification still
/// counts, but a directive stranded above unrelated code does not).
pub const SUPPRESS_WINDOW: usize = 6;

/// The files allowed to spawn OS threads: everything else must go
/// through `ExecutorPool`. Two deliberate entries — the pool's own
/// worker spawn, and the solve service's long-lived worker threads
/// (which exist precisely to multiplex tenants *onto* the shared pool;
/// per-request spawning anywhere in serve is still a violation).
pub const SPAWN_ALLOWED_FILES: &[&str] =
    &["crates/backends/src/exec.rs", "crates/serve/src/service.rs"];

/// The crate allowed to read clocks: all timing flows through telemetry.
pub const TIMING_ALLOWED_PREFIX: &str = "crates/telemetry/";

/// Stable rule identifiers.
pub const RULE_IDS: &[&str] = &[
    "safety-comment",
    "ordering-seqcst",
    "ordering-doc",
    "ordering-drift",
    "atomic-pairing",
    "lock-order",
    "thread-spawn",
    "timing",
    "hot-unwrap",
    "suppression",
    "suppression-unused",
];

/// The rule inventory: `(id, one-line description)`, in [`RULE_IDS`]
/// order. This is what the v2 report embeds so a consumer can interpret
/// per-rule counts without this crate's source.
pub const RULES: &[(&str, &str)] = &[
    (
        "safety-comment",
        "`unsafe` requires a `// SAFETY:` comment within its window",
    ),
    (
        "ordering-seqcst",
        "`SeqCst` requires an `// ORDERING:` rationale at the site",
    ),
    (
        "ordering-doc",
        "files touching atomic orderings need an `// ORDERING:` protocol comment",
    ),
    (
        "ordering-drift",
        "every ordering the code uses must be named by the file's `// ORDERING:` protocol comment",
    ),
    (
        "atomic-pairing",
        "Release-class stores must pair with Acquire-class loads; Relaxed reads of published fields and unpaired fences are flagged",
    ),
    (
        "lock-order",
        "Mutex/RwLock acquisition nesting must be cycle-free, with no re-acquisition under a live guard",
    ),
    (
        "thread-spawn",
        "OS threads may only be created by the executor-pool allowlist",
    ),
    ("timing", "clock reads belong to gaia-telemetry"),
    (
        "hot-unwrap",
        "panicking shortcuts are banned in kernel hot paths",
    ),
    (
        "suppression",
        "suppressions need a justification and must name a known rule",
    ),
    (
        "suppression-unused",
        "a suppression must suppress at least one diagnostic in the current scan",
    ),
];

/// One finding: where, which rule, and what the line looked like.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq, Eq)]
pub struct Diagnostic {
    /// Workspace-relative path.
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// Rule identifier (one of [`RULE_IDS`]).
    pub rule: String,
    /// Human-readable explanation.
    pub message: String,
    /// The offending source line, trimmed.
    pub excerpt: String,
}

/// One honored suppression, kept for the report so `--deny` runs stay
/// auditable.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq, Eq)]
pub struct Suppression {
    /// Workspace-relative path.
    pub path: String,
    /// 1-based line of the suppressed site.
    pub line: usize,
    /// Rule that was suppressed.
    pub rule: String,
    /// The stated justification.
    pub justification: String,
    /// 1-based line of the `allow(...)` directive itself (feeds the
    /// `suppression-unused` pass).
    #[serde(default)]
    pub directive_line: usize,
}

/// Result of linting one file.
#[derive(Debug, Clone, Default)]
pub struct FileFindings {
    /// Unsuppressed diagnostics.
    pub diagnostics: Vec<Diagnostic>,
    /// Honored suppressions.
    pub suppressions: Vec<Suppression>,
    /// Directive lines that suppressed at least one diagnostic — the
    /// complement (well-formed directives not listed here) is what the
    /// `suppression-unused` pass flags.
    pub used_directives: Vec<usize>,
}

/// Find a substring match of `needle` in `hay` at identifier boundaries
/// (so `unsafe_op_in_unsafe_fn` does not contain the word `unsafe`).
fn find_word(hay: &str, needle: &str) -> Option<usize> {
    let bytes = hay.as_bytes();
    let mut from = 0;
    while let Some(rel) = hay[from..].find(needle) {
        let at = from + rel;
        let before_ok = at == 0 || {
            let c = bytes[at - 1] as char;
            !(c.is_alphanumeric() || c == '_')
        };
        let end = at + needle.len();
        let after_ok = end >= bytes.len() || {
            let c = bytes[end] as char;
            !(c.is_alphanumeric() || c == '_')
        };
        if before_ok && after_ok {
            return Some(at);
        }
        from = at + 1;
    }
    None
}

/// The atomic orderings (the `cmp::Ordering` variants never match, so a
/// sort comparator does not trip the atomics rules).
const ATOMIC_ORDERINGS: &[&str] = &[
    "Ordering::Relaxed",
    "Ordering::Acquire",
    "Ordering::Release",
    "Ordering::AcqRel",
    "Ordering::SeqCst",
];

fn line_has_atomic_ordering(code: &str) -> bool {
    ATOMIC_ORDERINGS.iter().any(|o| code.contains(o))
}

/// Does any comment on `line` (1-based) or the `window` lines above it
/// contain `tag`?
fn annotated_within(view: &FileView, line: usize, window: usize, tag: &str) -> bool {
    let idx = line - 1;
    let lo = idx.saturating_sub(window);
    view.lines[lo..=idx].iter().any(|l| l.comment.contains(tag))
}

/// Look for `gaia-analyze: allow(<rule>)` covering `line`; returns the
/// justification (possibly empty) when found.
fn suppression_for(view: &FileView, line: usize, rule: &str) -> Option<(usize, String)> {
    let idx = line - 1;
    // The directive may sit on the site line itself or anywhere in the
    // contiguous comment block directly above it.
    let mut lo = idx;
    while lo > 0 && idx - lo < SUPPRESS_WINDOW && !view.lines[lo - 1].comment.is_empty() {
        lo -= 1;
    }
    for (off, l) in view.lines[lo..=idx].iter().enumerate() {
        let c = &l.comment;
        if let Some(at) = c.find("gaia-analyze: allow(") {
            let rest = &c[at + "gaia-analyze: allow(".len()..];
            if let Some(close) = rest.find(')') {
                if rest[..close].trim() == rule {
                    let after = rest[close + 1..].trim();
                    let justification = after.strip_prefix(':').unwrap_or("").trim().to_owned();
                    return Some((lo + off + 1, justification));
                }
            }
        }
    }
    None
}

fn excerpt_of(view: &FileView, line: usize) -> String {
    let text = view.raw.get(line - 1).map(String::as_str).unwrap_or("");
    let t = text.trim();
    if t.len() > 120 {
        format!(
            "{}…",
            &t[..t.char_indices().nth(117).map(|(i, _)| i).unwrap_or(0)]
        )
    } else {
        t.to_owned()
    }
}

/// Record a candidate finding into `out`, honoring suppressions. This is
/// the single emission path for the per-file rules *and* the cross-file
/// dataflow checkers, so the suppression syntax and the used-directive
/// bookkeeping behave identically everywhere.
pub fn emit(
    out: &mut FileFindings,
    path: &str,
    view: &FileView,
    line: usize,
    rule: &str,
    message: String,
) {
    if let Some((sup_line, justification)) = suppression_for(view, line, rule) {
        if justification.is_empty() {
            out.diagnostics.push(Diagnostic {
                path: path.to_owned(),
                line: sup_line,
                rule: "suppression".into(),
                message: format!(
                    "suppression of `{rule}` carries no justification \
                     (write `// gaia-analyze: allow({rule}): <why>`)"
                ),
                excerpt: excerpt_of(view, sup_line),
            });
        } else {
            out.suppressions.push(Suppression {
                path: path.to_owned(),
                line,
                rule: rule.to_owned(),
                justification,
                directive_line: sup_line,
            });
            out.used_directives.push(sup_line);
            return;
        }
    }
    let excerpt = excerpt_of(view, line);
    out.diagnostics.push(Diagnostic {
        path: path.to_owned(),
        line,
        rule: rule.to_owned(),
        message,
        excerpt,
    });
}

/// Every well-formed suppression directive in the file: a known rule
/// *and* a nonempty justification. Bare or unknown-rule directives are
/// excluded — those are already `suppression` diagnostics and should not
/// be double-reported as unused.
pub fn well_formed_directives(view: &FileView) -> Vec<(usize, String)> {
    let mut out = Vec::new();
    for (idx, l) in view.lines.iter().enumerate() {
        let c = &l.comment;
        let Some(at) = c.find("gaia-analyze: allow(") else {
            continue;
        };
        let rest = &c[at + "gaia-analyze: allow(".len()..];
        let Some(close) = rest.find(')') else {
            continue;
        };
        let rule = rest[..close].trim();
        if !RULE_IDS.contains(&rule) {
            continue;
        }
        let after = rest[close + 1..].trim();
        let justification = after.strip_prefix(':').unwrap_or("").trim();
        // Same-line-nonempty matches exactly what `suppression_for`
        // honors, so "well-formed" here means "would actually suppress".
        if !justification.is_empty() {
            out.push((idx + 1, rule.to_owned()));
        }
    }
    out
}

/// `suppression-unused`: flag every well-formed directive that suppressed
/// nothing in this scan. Must run after every other rule (including the
/// dataflow families) has emitted into `out`.
pub fn unused_suppression_pass(path: &str, view: &FileView, out: &mut FileFindings) {
    for (line, rule) in well_formed_directives(view) {
        if out.used_directives.contains(&line) {
            continue;
        }
        emit(
            out,
            path,
            view,
            line,
            "suppression-unused",
            format!(
                "suppression of `{rule}` matches no diagnostic in this scan — \
                 the allow is dead; remove it (or the code it covered has moved)"
            ),
        );
    }
}

struct Ctx<'a> {
    path: &'a str,
    view: &'a FileView,
    in_test_tree: bool,
    out: FileFindings,
}

impl Ctx<'_> {
    /// Record a candidate finding, honoring suppressions.
    fn emit(&mut self, line: usize, rule: &str, message: String) {
        emit(&mut self.out, self.path, self.view, line, rule, message);
    }

    fn excerpt(&self, line: usize) -> String {
        excerpt_of(self.view, line)
    }

    /// Is line (1-based) test code, by file location or `#[cfg(test)]`?
    fn is_test_line(&self, line: usize) -> bool {
        self.in_test_tree || self.view.lines[line - 1].in_test
    }
}

/// Run every rule over one lexed file. `path` must be workspace-relative
/// with `/` separators (it drives the per-file allow-lists).
pub fn check_file(path: &str, view: &FileView) -> FileFindings {
    let mut ctx = Ctx {
        path,
        view,
        in_test_tree: path_is_test(path),
        out: FileFindings::default(),
    };

    rule_safety_comment(&mut ctx);
    rule_ordering(&mut ctx);
    rule_thread_spawn(&mut ctx);
    rule_timing(&mut ctx);
    rule_hot_unwrap(&mut ctx);
    rule_dangling_suppressions(&mut ctx);

    ctx.out
}

/// `safety-comment`: every `unsafe` keyword needs a `SAFETY:` comment on
/// the same line or within [`ANNOTATION_WINDOW`] lines above. Applies to
/// test code too — tests dereference the same raw pointers.
fn rule_safety_comment(ctx: &mut Ctx<'_>) {
    for line in 1..=ctx.view.lines.len() {
        if find_word(&ctx.view.lines[line - 1].code, "unsafe").is_none() {
            continue;
        }
        if annotated_within(ctx.view, line, ANNOTATION_WINDOW, "SAFETY:") {
            continue;
        }
        ctx.emit(
            line,
            "safety-comment",
            "`unsafe` without a `// SAFETY:` comment explaining why the \
             invariants hold"
                .into(),
        );
    }
}

/// `ordering-seqcst` + `ordering-doc`: every `SeqCst` site needs an
/// `ORDERING:` annotation in its window, and any file touching atomic
/// orderings needs at least one `ORDERING:` rationale comment somewhere.
fn rule_ordering(ctx: &mut Ctx<'_>) {
    let mut first_site = None;
    for line in 1..=ctx.view.lines.len() {
        let code = &ctx.view.lines[line - 1].code;
        if !line_has_atomic_ordering(code) {
            continue;
        }
        if first_site.is_none() {
            first_site = Some(line);
        }
        if code.contains("Ordering::SeqCst")
            && !annotated_within(ctx.view, line, ANNOTATION_WINDOW, "ORDERING:")
        {
            ctx.emit(
                line,
                "ordering-seqcst",
                "`SeqCst` ordering without an `// ORDERING:` rationale — \
                 use the weakest correct ordering or justify the fence"
                    .into(),
            );
        }
    }
    if let Some(line) = first_site {
        let documented = ctx
            .view
            .lines
            .iter()
            .any(|l| l.comment.contains("ORDERING:"));
        if !documented {
            ctx.emit(
                line,
                "ordering-doc",
                "file uses atomic `Ordering::*` but has no `// ORDERING:` \
                 comment documenting the protocol"
                    .into(),
            );
        }
    }
}

/// `thread-spawn`: OS threads are the executor pool's business; nothing
/// outside [`SPAWN_ALLOWED_FILES`] may create them (tests excepted).
fn rule_thread_spawn(ctx: &mut Ctx<'_>) {
    if SPAWN_ALLOWED_FILES.contains(&ctx.path) {
        return;
    }
    for line in 1..=ctx.view.lines.len() {
        let code = &ctx.view.lines[line - 1].code;
        let hit = ["thread::spawn", "thread::scope", "thread::Builder"]
            .iter()
            .find(|p| code.contains(*p));
        let Some(pattern) = hit else { continue };
        if ctx.is_test_line(line) {
            continue;
        }
        ctx.emit(
            line,
            "thread-spawn",
            format!(
                "`{pattern}` outside the spawn allowlist ({}) — route work \
                 through `ExecutorPool` so threads are pooled and observable",
                SPAWN_ALLOWED_FILES.join(", ")
            ),
        );
    }
}

/// `timing`: clocks belong to telemetry; scattered `Instant::now` calls
/// make perf data unattributable (tests excepted).
fn rule_timing(ctx: &mut Ctx<'_>) {
    if ctx.path.starts_with(TIMING_ALLOWED_PREFIX) {
        return;
    }
    for line in 1..=ctx.view.lines.len() {
        let code = &ctx.view.lines[line - 1].code;
        let hit = ["Instant::now", "SystemTime::now"]
            .iter()
            .find(|p| code.contains(*p));
        let Some(pattern) = hit else { continue };
        if ctx.is_test_line(line) {
            continue;
        }
        ctx.emit(
            line,
            "timing",
            format!(
                "`{pattern}` outside `{TIMING_ALLOWED_PREFIX}` — record \
                 through gaia-telemetry scopes/counters instead"
            ),
        );
    }
}

/// Is this file a kernel hot path (launch layer, kernels, ELL layout, or
/// a backend policy struct), the serve request path, or the auto-tuner
/// search loop? Serve source counts: a panic in a service worker silently
/// kills the lane draining every tenant's queue. The tuner counts too:
/// a panic mid-search discards every measurement already taken, so its
/// measurement loop is held to kernel standards. The out-of-core tile
/// modules count for the same reason: a panic mid-solve between tile
/// loads discards hours of streamed iterations that the typed
/// `TileError`/`OperatorError` paths exist to checkpoint around.
fn is_hot_path(path: &str) -> bool {
    if path.starts_with("crates/serve/src/") || path.starts_with("crates/bench/src/tune/") {
        return true;
    }
    let file = path.rsplit('/').next().unwrap_or(path);
    file == "launch.rs"
        || file == "kernels.rs"
        || file == "ell.rs"
        || file == "tiled.rs"
        || file == "ooc.rs"
        || file.starts_with("backend_")
}

/// `hot-unwrap`: panicking shortcuts are banned in kernel hot paths —
/// a panic inside a pool job poisons the whole launch (tests excepted).
fn rule_hot_unwrap(ctx: &mut Ctx<'_>) {
    if !is_hot_path(ctx.path) {
        return;
    }
    for line in 1..=ctx.view.lines.len() {
        let code = &ctx.view.lines[line - 1].code;
        let hit = [".unwrap()", ".expect("].iter().find(|p| code.contains(*p));
        let Some(pattern) = hit else { continue };
        if ctx.is_test_line(line) {
            continue;
        }
        ctx.emit(
            line,
            "hot-unwrap",
            format!(
                "`{pattern}` in a kernel hot path — propagate or handle the \
                 error; a panic here poisons the executor pool launch"
            ),
        );
    }
}

/// `suppression` (dangling): an `allow(...)` comment naming an unknown
/// rule is a typo that silently suppresses nothing.
fn rule_dangling_suppressions(ctx: &mut Ctx<'_>) {
    for line in 1..=ctx.view.lines.len() {
        let c = &ctx.view.lines[line - 1].comment;
        let Some(at) = c.find("gaia-analyze: allow(") else {
            continue;
        };
        let rest = &c[at + "gaia-analyze: allow(".len()..];
        let Some(close) = rest.find(')') else {
            continue;
        };
        let rule = rest[..close].trim();
        // Only rule-shaped names count: docs quoting the syntax with a
        // placeholder (`allow(<rule>)`, `allow(...)`) are not directives.
        let rule_shaped =
            !rule.is_empty() && rule.chars().all(|c| c.is_ascii_lowercase() || c == '-');
        if rule_shaped && !RULE_IDS.contains(&rule) {
            let message = format!("suppression names unknown rule `{rule}`");
            let excerpt = ctx.excerpt(line);
            ctx.out.diagnostics.push(Diagnostic {
                path: ctx.path.to_owned(),
                line,
                rule: "suppression".into(),
                message,
                excerpt,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn rules_of(path: &str, src: &str) -> Vec<String> {
        check_file(path, &lex(src))
            .diagnostics
            .iter()
            .map(|d| d.rule.clone())
            .collect()
    }

    #[test]
    fn word_boundaries_guard_unsafe() {
        assert!(find_word("unsafe {", "unsafe").is_some());
        assert!(find_word("#![deny(unsafe_op_in_unsafe_fn)]", "unsafe").is_none());
        assert!(find_word("not_unsafe()", "unsafe").is_none());
    }

    #[test]
    fn safety_comment_window_is_honored() {
        let ok = "// SAFETY: the slice outlives the call\nlet a = 1;\nunsafe { work() }";
        assert!(rules_of("crates/x/src/a.rs", ok).is_empty());
        let bad = "let a = 1;\nunsafe { work() }";
        assert_eq!(rules_of("crates/x/src/a.rs", bad), vec!["safety-comment"]);
    }

    #[test]
    fn seqcst_requires_ordering_annotation() {
        let bad = "// ORDERING: file-level doc\nx.load(Ordering::SeqCst);";
        // The file-level doc covers ordering-doc and sits within the
        // SeqCst window here, so this passes; move it far away and the
        // site fires.
        assert!(rules_of("crates/x/src/a.rs", bad).is_empty());
        let far = format!(
            "// ORDERING: protocol documented here\n{}x.load(Ordering::SeqCst);",
            "let pad = 0;\n".repeat(10)
        );
        assert_eq!(rules_of("crates/x/src/a.rs", &far), vec!["ordering-seqcst"]);
    }

    #[test]
    fn relaxed_needs_a_file_level_rationale_only() {
        let bad = "x.load(Ordering::Relaxed);";
        assert_eq!(rules_of("crates/x/src/a.rs", bad), vec!["ordering-doc"]);
        let ok = "// ORDERING: independent counters\nx.load(Ordering::Relaxed);";
        assert!(rules_of("crates/x/src/a.rs", ok).is_empty());
    }

    #[test]
    fn cmp_ordering_is_not_an_atomic_site() {
        let src =
            "v.sort_by(|a, b| if a < b { std::cmp::Ordering::Less } else { Ordering::Greater });";
        assert!(rules_of("crates/x/src/a.rs", src).is_empty());
    }

    #[test]
    fn spawn_is_allowlisted_and_test_exempt() {
        let bad = "std::thread::spawn(|| {});";
        assert_eq!(rules_of("crates/x/src/a.rs", bad), vec!["thread-spawn"]);
        assert!(rules_of("crates/backends/src/exec.rs", bad).is_empty());
        // The serve worker spawn site is the one deliberate extension;
        // the rest of the serve crate is still spawn-free.
        assert!(rules_of("crates/serve/src/service.rs", bad).is_empty());
        assert_eq!(
            rules_of("crates/serve/src/queue.rs", bad),
            vec!["thread-spawn"]
        );
        assert!(rules_of("crates/x/tests/a.rs", bad).is_empty());
        let in_test_mod =
            "#[cfg(test)]\nmod tests {\n    fn t() { std::thread::scope(|_| {}); }\n}";
        assert!(rules_of("crates/x/src/a.rs", in_test_mod).is_empty());
    }

    #[test]
    fn timing_is_telemetry_only() {
        let bad = "let t = Instant::now();";
        assert_eq!(rules_of("crates/x/src/a.rs", bad), vec!["timing"]);
        assert!(rules_of("crates/telemetry/src/lib.rs", bad).is_empty());
        assert!(rules_of("crates/x/tests/bench.rs", bad).is_empty());
    }

    #[test]
    fn unwrap_banned_in_hot_paths_only() {
        let bad = "let v = x.unwrap();";
        assert_eq!(
            rules_of("crates/backends/src/launch.rs", bad),
            vec!["hot-unwrap"]
        );
        assert_eq!(
            rules_of("crates/backends/src/backend_atomic.rs", bad),
            vec!["hot-unwrap"]
        );
        // The serve request path is held to kernel standards: a panic in
        // a worker kills the lane draining every tenant's queue.
        assert_eq!(
            rules_of("crates/serve/src/service.rs", bad),
            vec!["hot-unwrap"]
        );
        assert!(rules_of("crates/serve/tests/service.rs", bad).is_empty());
        assert!(rules_of("crates/backends/src/registry.rs", bad).is_empty());
        // The auto-tuner's search loop and the ELL layout are hot paths
        // too: a panic mid-search discards every measurement taken, and
        // the ELL kernels run inside pool jobs.
        assert_eq!(
            rules_of("crates/bench/src/tune/mod.rs", bad),
            vec!["hot-unwrap"]
        );
        assert_eq!(
            rules_of("crates/sparse/src/ell.rs", bad),
            vec!["hot-unwrap"]
        );
        assert!(rules_of("crates/bench/src/bin/tune.rs", bad).is_empty());
    }

    #[test]
    fn suppressions_need_justification() {
        let justified =
            "// gaia-analyze: allow(timing): benchmarks measure wall time\nlet t = Instant::now();";
        let f = check_file("crates/x/src/a.rs", &lex(justified));
        assert!(f.diagnostics.is_empty());
        assert_eq!(f.suppressions.len(), 1);
        assert_eq!(f.suppressions[0].rule, "timing");

        // A bare allow does not suppress: both the complaint about the
        // missing justification and the original diagnostic fire.
        let bare = "// gaia-analyze: allow(timing)\nlet t = Instant::now();";
        assert_eq!(
            rules_of("crates/x/src/a.rs", bare),
            vec!["suppression", "timing"]
        );

        let wrong_rule =
            "// gaia-analyze: allow(safety-comment): mismatch\nlet t = Instant::now();";
        assert_eq!(rules_of("crates/x/src/a.rs", wrong_rule), vec!["timing"]);
    }

    #[test]
    fn unknown_rule_suppression_is_flagged() {
        let src = "// gaia-analyze: allow(no-such-rule): whatever\nfn f() {}";
        assert_eq!(rules_of("crates/x/src/a.rs", src), vec!["suppression"]);
    }

    #[test]
    fn strings_and_comments_never_fire() {
        let src = r#"let s = "unsafe Instant::now thread::spawn Ordering::SeqCst";"#;
        assert!(rules_of("crates/backends/src/launch.rs", src).is_empty());
        let doc = "/// This fn is unsafe to misuse; see Instant::now docs.\nfn f() {}";
        assert!(rules_of("crates/x/src/a.rs", doc).is_empty());
    }
}
