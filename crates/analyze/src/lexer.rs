//! A minimal Rust surface lexer: enough of the grammar to tell *code*
//! from *comments* from *string contents*, line by line, without rustc or
//! syn (the workspace builds offline; so does its analyzer).
//!
//! The rules in [`crate::rules`] match plain substrings, so the lexer's
//! whole job is making those matches sound: `"unsafe"` inside a string
//! literal must not look like the `unsafe` keyword, `SAFETY:` inside a
//! comment must not look like code, and a `'static` lifetime must not
//! open a character literal that swallows the rest of the file. Handled:
//! line comments (`//`, `///`, `//!`), nested block comments, string /
//! raw-string / byte-string literals, character literals, and the
//! char-vs-lifetime ambiguity of `'`.

/// One source line, split into its code and comment parts.
#[derive(Debug, Clone, Default)]
pub struct LineView {
    /// The line with comments and string/char *contents* blanked out
    /// (replaced by spaces; quotes and comment markers removed too).
    /// Substring matches against this are matches against real code.
    pub code: String,
    /// Concatenated text of every comment overlapping this line.
    pub comment: String,
    /// Whether the line sits inside a `#[cfg(test)]` item's braces.
    pub in_test: bool,
}

/// A lexed source file.
#[derive(Debug, Clone)]
pub struct FileView {
    /// The raw source lines (for diagnostics excerpts).
    pub raw: Vec<String>,
    /// Per-line code/comment split.
    pub lines: Vec<LineView>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    Code,
    LineComment,
    BlockComment(u32),
    Str,
    RawStr(u32),
    CharLit,
}

fn is_ident(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Does `'` at position `i` open a character literal (vs a lifetime)?
/// A char literal is `'` + (escape | single char) + `'`; a lifetime label
/// is `'` + identifier with no closing quote.
fn opens_char_literal(chars: &[char], i: usize) -> bool {
    match chars.get(i + 1) {
        None => false,
        Some('\\') => true,
        Some(_) => chars.get(i + 2) == Some(&'\''),
    }
}

/// Lex one file into per-line code/comment views and mark `#[cfg(test)]`
/// regions.
pub fn lex(source: &str) -> FileView {
    let raw: Vec<String> = source.lines().map(str::to_owned).collect();
    let mut lines: Vec<LineView> = Vec::with_capacity(raw.len());
    let mut state = State::Code;

    for line in &raw {
        let chars: Vec<char> = line.chars().collect();
        let mut code = String::with_capacity(chars.len());
        let mut comment = String::new();
        let mut i = 0;

        // A line comment never survives a newline.
        if state == State::LineComment {
            state = State::Code;
        }

        while i < chars.len() {
            let c = chars[i];
            match state {
                State::Code => {
                    if c == '/' && chars.get(i + 1) == Some(&'/') {
                        state = State::LineComment;
                        code.push(' ');
                        i += 1; // the loop advance eats the second '/'
                    } else if c == '/' && chars.get(i + 1) == Some(&'*') {
                        state = State::BlockComment(1);
                        code.push(' ');
                        i += 1;
                    } else if c == '"' {
                        // Possibly the end of a raw-string opener `r#"`;
                        // plain openers land here too.
                        code.push('"');
                        state = State::Str;
                    } else if c == 'r' || c == 'b' {
                        // Raw (byte) string opener: r", r#", br#", ...
                        let mut j = i + 1;
                        if c == 'b' && chars.get(j) == Some(&'r') {
                            j += 1;
                        }
                        let mut hashes = 0u32;
                        while chars.get(j) == Some(&'#') {
                            hashes += 1;
                            j += 1;
                        }
                        let prev_ident = i > 0 && is_ident(chars[i - 1]);
                        if !prev_ident && chars.get(j) == Some(&'"') && (c == 'r' || j > i + 1) {
                            code.push('"');
                            state = State::RawStr(hashes);
                            i = j;
                        } else {
                            code.push(c);
                        }
                    } else if c == '\'' && !(i > 0 && is_ident(chars[i - 1])) {
                        // An `'` directly after an identifier closes a char
                        // literal pattern we already consumed elsewhere;
                        // fresh quotes are either chars or lifetimes.
                        if opens_char_literal(&chars, i) {
                            code.push('\'');
                            state = State::CharLit;
                        } else {
                            code.push(' '); // lifetime marker: not a string
                        }
                    } else {
                        code.push(c);
                    }
                }
                State::LineComment => {
                    comment.push(c);
                }
                State::BlockComment(depth) => {
                    if c == '*' && chars.get(i + 1) == Some(&'/') {
                        if depth == 1 {
                            state = State::Code;
                        } else {
                            state = State::BlockComment(depth - 1);
                        }
                        i += 1;
                    } else if c == '/' && chars.get(i + 1) == Some(&'*') {
                        state = State::BlockComment(depth + 1);
                        i += 1;
                    } else {
                        comment.push(c);
                    }
                }
                State::Str => {
                    if c == '\\' {
                        code.push(' ');
                        if chars.get(i + 1).is_some() {
                            code.push(' ');
                            i += 1;
                        }
                    } else if c == '"' {
                        code.push('"');
                        state = State::Code;
                    } else {
                        code.push(' ');
                    }
                }
                State::RawStr(hashes) => {
                    if c == '"' {
                        let mut ok = true;
                        for k in 0..hashes as usize {
                            if chars.get(i + 1 + k) != Some(&'#') {
                                ok = false;
                                break;
                            }
                        }
                        if ok {
                            code.push('"');
                            i += hashes as usize;
                            state = State::Code;
                        } else {
                            code.push(' ');
                        }
                    } else {
                        code.push(' ');
                    }
                }
                State::CharLit => {
                    if c == '\\' {
                        code.push(' ');
                        if chars.get(i + 1).is_some() {
                            code.push(' ');
                            i += 1;
                        }
                    } else if c == '\'' {
                        code.push('\'');
                        state = State::Code;
                    } else {
                        code.push(' ');
                    }
                }
            }
            i += 1;
        }

        // Unterminated single-line states fall back to code at EOL; only
        // block comments and raw strings legally span lines.
        if matches!(state, State::Str | State::CharLit) {
            state = State::Code;
        }

        lines.push(LineView {
            code,
            comment,
            in_test: false,
        });
    }

    mark_test_regions(&mut lines);
    FileView { raw, lines }
}

/// Mark every line inside a `#[cfg(test)]` item's braces as test code.
/// Attribute → (more attributes / blank lines) → item line with `{`; the
/// region closes when the brace depth returns to its opening level. An
/// attribute followed by a braceless item (`#[cfg(test)] use ...;`) marks
/// just that item line.
fn mark_test_regions(lines: &mut [LineView]) {
    let n = lines.len();
    let mut i = 0;
    while i < n {
        if !lines[i].code.contains("#[cfg(test)]") {
            i += 1;
            continue;
        }
        // Find the item line: skip attribute-only and blank lines.
        let mut j = i;
        let mut depth: i64 = 0;
        let mut opened = false;
        while j < n {
            for c in lines[j].code.chars() {
                match c {
                    '{' => {
                        depth += 1;
                        opened = true;
                    }
                    '}' => depth -= 1,
                    _ => {}
                }
            }
            lines[j].in_test = true;
            if opened && depth <= 0 {
                break;
            }
            if !opened && j > i && lines[j].code.contains(';') {
                break; // braceless item: done after its terminating `;`
            }
            j += 1;
        }
        i = j + 1;
    }
}

/// True when this workspace-relative path is test-only by location: an
/// integration-test tree (`tests/`) or an example. Benches and `src/`
/// binaries are production code for rule purposes.
pub fn path_is_test(path: &str) -> bool {
    path.split('/')
        .any(|seg| seg == "tests" || seg == "examples")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comments_are_split_from_code() {
        let v = lex("let x = 1; // SAFETY: trailing\n/* block */ let y = 2;");
        assert!(v.lines[0].code.contains("let x = 1;"));
        assert!(!v.lines[0].code.contains("SAFETY"));
        assert!(v.lines[0].comment.contains("SAFETY: trailing"));
        assert!(v.lines[1].code.contains("let y = 2;"));
        assert!(v.lines[1].comment.contains("block"));
    }

    #[test]
    fn string_contents_are_blanked() {
        let v = lex(r#"let s = "unsafe Instant::now"; call();"#);
        assert!(!v.lines[0].code.contains("unsafe"));
        assert!(!v.lines[0].code.contains("Instant"));
        assert!(v.lines[0].code.contains("call();"));
    }

    #[test]
    fn raw_strings_span_lines() {
        let v = lex("let s = r#\"line one unsafe\nline two SeqCst\"#;\nnext();");
        assert!(!v.lines[0].code.contains("unsafe"));
        assert!(!v.lines[1].code.contains("SeqCst"));
        assert!(v.lines[2].code.contains("next();"));
    }

    #[test]
    fn lifetimes_do_not_open_char_literals() {
        let v = lex("fn f<'a>(x: &'a str) -> &'static str { x } let c = 'u'; unsafe {}");
        assert!(v.lines[0].code.contains("unsafe {}"), "{:?}", v.lines[0]);
        assert!(!v.lines[0].code.contains("'u'"), "char contents blanked");
    }

    #[test]
    fn escaped_char_literals_close() {
        let v = lex(r"let q = '\''; let nl = '\n'; done();");
        assert!(v.lines[0].code.contains("done();"));
    }

    #[test]
    fn nested_block_comments_track_depth() {
        let v = lex("/* outer /* inner */ still comment */ code();");
        assert!(v.lines[0].code.contains("code();"));
        assert!(v.lines[0].comment.contains("still comment"));
    }

    #[test]
    fn cfg_test_mod_region_is_marked() {
        let src =
            "fn prod() {}\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\nfn after() {}";
        let v = lex(src);
        assert!(!v.lines[0].in_test);
        assert!(v.lines[1].in_test);
        assert!(v.lines[3].in_test);
        assert!(v.lines[4].in_test);
        assert!(!v.lines[5].in_test);
    }

    #[test]
    fn doc_comment_mentions_do_not_leak_into_code() {
        let v = lex("/// call unsafe code via Instant::now\nfn documented() {}");
        assert!(!v.lines[0].code.contains("unsafe"));
        assert!(v.lines[0].comment.contains("unsafe"));
        assert!(v.lines[1].code.contains("fn documented"));
    }
}
