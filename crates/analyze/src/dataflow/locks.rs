//! Lock-order checking: build the Mutex/RwLock acquisition-nesting graph
//! per crate and reject cycles.
//!
//! An *acquisition site* is a `.lock()`, `.read()`, or `.write()` call
//! (empty argument list — io `read(&mut buf)` never matches) whose
//! receiver resolves to a field of the matching kind (`lock` → `Mutex`,
//! `read`/`write` → `RwLock`). Each site gets an approximate *guard
//! region*:
//!
//! * `if let` / `while let` / `match` acquisitions — the opened block;
//! * `let`-bound guards — the rest of the enclosing block, cut early at
//!   a `drop(guard)` line;
//! * inline temporaries — the rest of the statement's line.
//!
//! A second acquisition inside a region adds a nesting edge
//! `held → acquired`; a call inside a region adds edges to every lock
//! the callee transitively takes (intra-crate call graph, fixpoint).
//! Re-acquiring the *same* key while held is an immediate deadlock
//! finding when either side is write-capable (Mutex `lock` or RwLock
//! `write`); shared `read`/`read` recursion is tolerated. Cycles in the
//! per-crate edge graph are reported once per distinct cycle.
//!
//! Interprocedural *self*-edges (a fn whose callee takes the same lock
//! the caller holds) are deliberately skipped: name resolution is
//! approximate, and wrapper methods like `fn lock(&self)` would
//! otherwise self-accuse.

use std::collections::{BTreeMap, BTreeSet};

use super::{depth_starts, receiver_before, Finding};
use crate::index::{FnId, SymbolIndex};
use crate::items::SyncKind;
use crate::lexer::path_is_test;

/// Acquisition methods: `(suffix, kind, write_capable)`.
const ACQ_OPS: &[(&str, SyncKind, bool)] = &[
    (".lock()", SyncKind::Mutex, true),
    (".read()", SyncKind::RwLock, false),
    (".write()", SyncKind::RwLock, true),
];

/// Enumerating cycles is exponential in pathological graphs; real lock
/// graphs are tiny, so cap the search rather than the build.
const MAX_CYCLES: usize = 64;
const MAX_DEPTH: usize = 16;

#[derive(Debug, Clone)]
struct Site {
    /// 0-based op line.
    ln: usize,
    /// 0-based column of the `.` in `.lock()`.
    col: usize,
    key: String,
    write_capable: bool,
    /// 0-based exclusive end of the guard region.
    end: usize,
    /// Guard is a temporary: region is the op line only, after `col`.
    inline: bool,
}

impl Site {
    /// Is 0-based position `(ln, col)` inside this site's guard region
    /// and strictly after the acquisition?
    fn covers(&self, ln: usize, col: usize) -> bool {
        if ln == self.ln {
            return col > self.col;
        }
        !self.inline && ln > self.ln && ln < self.end
    }
}

/// The `let` binding introduced on a statement line, unwrapping one
/// level of `Ok(..)` / `Some(..)` / `Err(..)`. `None` for `_`, pattern
/// matches, and expression statements.
fn binding_ident(code: &str) -> Option<String> {
    let bytes = code.as_bytes();
    let mut at = 0;
    let p = loop {
        let p = code[at..].find("let")? + at;
        let before_ok = p == 0 || !(bytes[p - 1].is_ascii_alphanumeric() || bytes[p - 1] == b'_');
        let after = p + 3;
        let after_ok =
            after >= bytes.len() || !(bytes[after].is_ascii_alphanumeric() || bytes[after] == b'_');
        if before_ok && after_ok {
            break p;
        }
        at = p + 3;
    };
    let mut rest = code[p + 3..].trim_start();
    if let Some(r) = rest.strip_prefix("mut ") {
        rest = r.trim_start();
    }
    let ident: String = rest
        .chars()
        .take_while(|c| c.is_alphanumeric() || *c == '_')
        .collect();
    let tail = rest[ident.len()..].trim_start();
    if matches!(ident.as_str(), "Ok" | "Some" | "Err") && tail.starts_with('(') {
        let inner = tail[1..].trim_start();
        let inner = inner.strip_prefix("mut ").unwrap_or(inner).trim_start();
        let ident: String = inner
            .chars()
            .take_while(|c| c.is_alphanumeric() || *c == '_')
            .collect();
        return (!ident.is_empty() && ident != "_").then_some(ident);
    }
    (!ident.is_empty() && ident != "_").then_some(ident)
}

/// Run the lock-order check over the whole index. Returns the findings
/// and the number of acquisition sites resolved to known fields.
pub fn check(index: &SymbolIndex) -> (Vec<Finding>, u64) {
    let mut findings = Vec::new();
    let mut total_sites = 0u64;

    let crate_names: Vec<String> = index.crate_names().map(str::to_owned).collect();
    for krate in &crate_names {
        // 1. Acquisition sites per fn, with guard regions.
        let mut per_fn: BTreeMap<FnId, Vec<Site>> = BTreeMap::new();
        for &fidx in index.crate_files(krate) {
            let entry = &index.files[fidx];
            if path_is_test(&entry.path) {
                continue;
            }
            let depths = depth_starts(&entry.view);
            for (gi, f) in entry.items.fns.iter().enumerate() {
                if f.is_test || f.body.is_empty() {
                    continue;
                }
                let mut sites = Vec::new();
                for ln1 in f.body.clone() {
                    let ln = ln1 - 1;
                    let l = &entry.view.lines[ln];
                    if l.in_test {
                        continue;
                    }
                    for (op, kind, write_capable) in ACQ_OPS {
                        let mut from = 0;
                        while let Some(rel) = l.code[from..].find(op) {
                            let col = from + rel;
                            from = col + op.len();
                            let (recv, stmt_ln) = receiver_before(&entry.view.lines, ln, col);
                            let impl_type = f.impl_type.as_deref();
                            let Some(field) = index.resolve_field(krate, impl_type, &recv) else {
                                continue;
                            };
                            if field.kind != *kind {
                                continue;
                            }
                            total_sites += 1;
                            let body_end = (f.body.end - 1).min(entry.view.lines.len());
                            let d = depths[stmt_ln];
                            let opens_block =
                                ln + 1 < depths.len() && depths[ln + 1] > depths[stmt_ln];
                            let binding = binding_ident(&entry.view.lines[stmt_ln].code);
                            let (end, inline) = if opens_block {
                                let e = ((ln + 1)..body_end)
                                    .find(|&e| depths[e] <= d)
                                    .unwrap_or(body_end);
                                (e, false)
                            } else if let Some(ident) = binding {
                                let mut e = ((ln + 1)..body_end)
                                    .find(|&e| depths[e] < d)
                                    .unwrap_or(body_end);
                                let dropped = format!("drop({ident})");
                                if let Some(cut) = ((ln + 1)..e)
                                    .find(|&i| entry.view.lines[i].code.contains(&dropped))
                                {
                                    e = cut;
                                }
                                (e, false)
                            } else {
                                (ln + 1, true)
                            };
                            sites.push(Site {
                                ln,
                                col,
                                key: field.key.clone(),
                                write_capable: *write_capable,
                                end,
                                inline,
                            });
                        }
                    }
                }
                if !sites.is_empty() {
                    per_fn.insert((fidx, gi), sites);
                }
            }
        }

        // 2. Transitive lock sets per fn (fixpoint over resolved calls).
        let mut trans: BTreeMap<FnId, BTreeSet<String>> = per_fn
            .iter()
            .map(|(id, sites)| (*id, sites.iter().map(|s| s.key.clone()).collect()))
            .collect();
        loop {
            let mut changed = false;
            for &fidx in index.crate_files(krate) {
                let entry = &index.files[fidx];
                if path_is_test(&entry.path) {
                    continue;
                }
                for (gi, f) in entry.items.fns.iter().enumerate() {
                    if f.is_test {
                        continue;
                    }
                    let mut add = BTreeSet::new();
                    for call in &f.calls {
                        if let Some(callee) = index.resolve_call(krate, f, call) {
                            if let Some(t) = trans.get(&callee) {
                                add.extend(t.iter().cloned());
                            }
                        }
                    }
                    if add.is_empty() {
                        continue;
                    }
                    let t = trans.entry((fidx, gi)).or_default();
                    let before = t.len();
                    t.extend(add);
                    changed |= t.len() != before;
                }
            }
            if !changed {
                break;
            }
        }

        // 3. Edges (held → acquired) and direct re-acquisition findings.
        let mut edges: BTreeMap<String, BTreeMap<String, (usize, usize)>> = BTreeMap::new();
        for (&(fidx, gi), sites) in &per_fn {
            let entry = &index.files[fidx];
            let f = &entry.items.fns[gi];
            for a in sites {
                for b in sites {
                    if std::ptr::eq(a, b) || !a.covers(b.ln, b.col) {
                        continue;
                    }
                    if b.key == a.key {
                        if a.write_capable || b.write_capable {
                            findings.push(Finding {
                                file: fidx,
                                line: b.ln + 1,
                                rule: "lock-order",
                                message: format!(
                                    "`{}` is re-acquired here while the guard taken on \
                                     line {} is still live — self-deadlock",
                                    a.key,
                                    a.ln + 1
                                ),
                            });
                        }
                        continue;
                    }
                    edges
                        .entry(a.key.clone())
                        .or_default()
                        .entry(b.key.clone())
                        .or_insert((fidx, b.ln + 1));
                }
                for call in &f.calls {
                    if !a.covers(call.line - 1, call.col) {
                        continue;
                    }
                    let Some(callee) = index.resolve_call(krate, f, call) else {
                        continue;
                    };
                    let Some(taken) = trans.get(&callee) else {
                        continue;
                    };
                    for k in taken {
                        if *k == a.key {
                            continue; // interprocedural self-edges: see module docs
                        }
                        edges
                            .entry(a.key.clone())
                            .or_default()
                            .entry(k.clone())
                            .or_insert((fidx, call.line));
                    }
                }
            }
        }

        // 4. Cycles.
        for cycle in find_cycles(&edges) {
            let (file, line) = edges[&cycle[0]][&cycle[1 % cycle.len()]];
            let path = cycle.join("` → `");
            findings.push(Finding {
                file,
                line,
                rule: "lock-order",
                message: format!(
                    "lock acquisition order cycle in crate `{krate}`: \
                     `{path}` → `{}` — two threads taking these locks in \
                     opposite nesting orders can deadlock",
                    cycle[0]
                ),
            });
        }
    }

    (findings, total_sites)
}

/// Distinct simple cycles, each rotated so its minimal key comes first.
/// A cycle is enumerated from its minimal node only, so each distinct
/// cycle is produced once.
fn find_cycles(edges: &BTreeMap<String, BTreeMap<String, (usize, usize)>>) -> Vec<Vec<String>> {
    let mut out: BTreeSet<Vec<String>> = BTreeSet::new();
    for start in edges.keys() {
        let mut path = vec![start.clone()];
        dfs(edges, start, start, &mut path, &mut out);
        if out.len() >= MAX_CYCLES {
            break;
        }
    }
    out.into_iter().collect()
}

fn dfs(
    edges: &BTreeMap<String, BTreeMap<String, (usize, usize)>>,
    start: &str,
    at: &str,
    path: &mut Vec<String>,
    out: &mut BTreeSet<Vec<String>>,
) {
    if path.len() > MAX_DEPTH || out.len() >= MAX_CYCLES {
        return;
    }
    let Some(next) = edges.get(at) else { return };
    for n in next.keys() {
        if n == start {
            out.insert(path.clone());
            continue;
        }
        // Only walk nodes greater than `start` so each cycle is found
        // exactly once, from its minimal node.
        if n.as_str() < start || path.contains(n) {
            continue;
        }
        path.push(n.clone());
        dfs(edges, start, n, path, out);
        path.pop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn run(files: &[(&str, &str)]) -> Vec<(usize, &'static str, String)> {
        let idx = SymbolIndex::build(
            files
                .iter()
                .map(|(p, s)| ((*p).to_owned(), lex(s)))
                .collect(),
        );
        let (findings, _) = check(&idx);
        findings
            .into_iter()
            .map(|f| (f.line, f.rule, f.message))
            .collect()
    }

    const PAIR: &str = "\
pub struct Pair { a: Mutex<u32>, b: Mutex<u32> }
";

    #[test]
    fn reversed_nesting_orders_are_a_cycle() {
        let src = format!(
            "{PAIR}\
impl Pair {{
    fn ab(&self) {{
        let ga = self.a.lock().unwrap();
        let gb = self.b.lock().unwrap();
        drop(gb);
        drop(ga);
    }}
    fn ba(&self) {{
        let gb = self.b.lock().unwrap();
        let ga = self.a.lock().unwrap();
        drop(ga);
        drop(gb);
    }}
}}
"
        );
        let f = run(&[("crates/x/src/lib.rs", &src)]);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].1, "lock-order");
        assert!(f[0].2.contains("Pair::a` → `Pair::b"), "{}", f[0].2);
    }

    #[test]
    fn consistent_nesting_is_clean() {
        let src = format!(
            "{PAIR}\
impl Pair {{
    fn ab(&self) {{
        let ga = self.a.lock().unwrap();
        let gb = self.b.lock().unwrap();
        let _ = (*ga, *gb);
    }}
    fn ab_again(&self) {{
        let ga = self.a.lock().unwrap();
        let gb = self.b.lock().unwrap();
        let _ = (*ga, *gb);
    }}
}}
"
        );
        assert!(run(&[("crates/x/src/lib.rs", &src)]).is_empty());
    }

    #[test]
    fn direct_reacquisition_is_a_self_deadlock() {
        let src = format!(
            "{PAIR}\
impl Pair {{
    fn double(&self) {{
        let g1 = self.a.lock().unwrap();
        let g2 = self.a.lock().unwrap();
        let _ = (*g1, *g2);
    }}
}}
"
        );
        let f = run(&[("crates/x/src/lib.rs", &src)]);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].0, 5, "flagged at the second acquisition");
        assert!(f[0].2.contains("self-deadlock"));
    }

    #[test]
    fn dropping_the_guard_ends_the_region() {
        let src = format!(
            "{PAIR}\
impl Pair {{
    fn ab_released(&self) {{
        let ga = self.a.lock().unwrap();
        drop(ga);
        let gb = self.b.lock().unwrap();
        let _ = *gb;
    }}
    fn ba(&self) {{
        let gb = self.b.lock().unwrap();
        let ga = self.a.lock().unwrap();
        let _ = (*ga, *gb);
    }}
}}
"
        );
        // `ab_released` holds nothing when it takes `b`, so only the
        // b→a edge exists: no cycle.
        assert!(run(&[("crates/x/src/lib.rs", &src)]).is_empty());
    }

    #[test]
    fn if_let_guard_scope_is_the_block() {
        let src = format!(
            "{PAIR}\
impl Pair {{
    fn scoped(&self) {{
        if let Ok(ga) = self.a.lock() {{
            let _ = *ga;
        }}
        let gb = self.b.lock().unwrap();
        let _ = *gb;
    }}
    fn ba(&self) {{
        let gb = self.b.lock().unwrap();
        let ga = self.a.lock().unwrap();
        let _ = (*ga, *gb);
    }}
}}
"
        );
        // `b` is taken after the if-let block closed, so there is no
        // a→b edge and no cycle.
        assert!(run(&[("crates/x/src/lib.rs", &src)]).is_empty());
    }

    #[test]
    fn nesting_through_a_callee_still_forms_the_cycle() {
        let src = format!(
            "{PAIR}\
impl Pair {{
    fn ab(&self) {{
        let ga = self.a.lock().unwrap();
        self.grab_b();
        let _ = *ga;
    }}
    fn grab_b(&self) {{
        let gb = self.b.lock().unwrap();
        let _ = *gb;
    }}
    fn ba(&self) {{
        let gb = self.b.lock().unwrap();
        let ga = self.a.lock().unwrap();
        let _ = (*ga, *gb);
    }}
}}
"
        );
        let f = run(&[("crates/x/src/lib.rs", &src)]);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].2.contains("cycle"), "{}", f[0].2);
    }

    #[test]
    fn rwlock_read_recursion_is_tolerated_but_read_write_is_not() {
        let src = "\
pub struct Cfg { map: RwLock<u32> }
impl Cfg {
    fn rr(&self) {
        let r1 = self.map.read().unwrap();
        let r2 = self.map.read().unwrap();
        let _ = (*r1, *r2);
    }
}
";
        assert!(run(&[("crates/x/src/lib.rs", src)]).is_empty());

        let src = "\
pub struct Cfg { map: RwLock<u32> }
impl Cfg {
    fn rw(&self) {
        let r = self.map.read().unwrap();
        let mut w = self.map.write().unwrap();
        *w += *r;
    }
}
";
        let f = run(&[("crates/x/src/lib.rs", src)]);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].2.contains("self-deadlock"));
    }

    #[test]
    fn indexed_and_kind_mismatched_receivers_are_skipped() {
        let src = "\
pub struct Grid { stripes: Mutex<u32> }
impl Grid {
    fn per_element(&self, i: usize, j: usize) {
        let gi = self.stripes[i].lock().unwrap();
        let gj = self.stripes[j].lock().unwrap();
        let _ = (*gi, *gj);
    }
    fn wrong_kind(&self) {
        let r = self.stripes.read().unwrap();
        let _ = *r;
    }
}
";
        assert!(run(&[("crates/x/src/lib.rs", src)]).is_empty());
    }
}
