//! Cross-file concurrency dataflow checkers built on the symbol index:
//! the atomic-protocol pairing checker ([`atomic`]) and the lock-order
//! checker ([`locks`]).
//!
//! Both produce [`Finding`]s keyed by file index; the driver in
//! [`crate`] routes them through [`crate::rules::emit`] so the in-source
//! suppression syntax covers dataflow diagnostics exactly like per-file
//! rule diagnostics.

pub mod atomic;
pub mod locks;

use crate::lexer::{FileView, LineView};

/// One dataflow finding, keyed by index into `SymbolIndex::files`.
#[derive(Debug, Clone)]
pub struct Finding {
    /// File index.
    pub file: usize,
    /// 1-based line.
    pub line: usize,
    /// Rule id.
    pub rule: &'static str,
    /// Human-readable explanation.
    pub message: String,
}

/// Workspace dataflow telemetry: what the checkers actually looked at.
#[derive(Debug, Clone, Copy, Default)]
pub struct DataflowStats {
    /// Functions whose bodies were scanned.
    pub functions: u64,
    /// Atomic operation sites classified (an ordering in the window).
    pub atomic_sites: u64,
    /// Mutex/RwLock acquisition sites resolved to a known field.
    pub lock_sites: u64,
}

fn is_ident(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Reconstruct the dotted receiver chain ending just before 0-based
/// column `col` of 0-based line `ln` (where `col` points at the `.` of a
/// method call). Rustfmt-wrapped chains are joined across up to two
/// preceding continuation lines. Returns the chain text and the 0-based
/// line the chain starts on (the statement line for region analysis).
pub(crate) fn receiver_before(lines: &[LineView], ln: usize, col: usize) -> (String, usize) {
    let mut chain = String::new();
    let mut line = ln;
    let mut chars: Vec<char> = lines[line].code.chars().collect();
    let mut i = col.min(chars.len());
    let mut jumps = 0;
    loop {
        while i > 0 {
            let c = chars[i - 1];
            if is_ident(c) || matches!(c, '.' | '[' | ']' | '(' | ')') {
                chain.insert(0, c);
                i -= 1;
            } else {
                break;
            }
        }
        // If only indentation remains and the previous line ends in
        // something a chain can continue from (`self.ready\n    .load(`),
        // join it; otherwise this is the statement start.
        let leading_ws = chars[..i].iter().all(|c| c.is_whitespace());
        if !leading_ws || line == 0 || jumps >= 2 {
            break;
        }
        let prev = lines[line - 1].code.trim_end();
        let continues = prev
            .chars()
            .last()
            .is_some_and(|c| is_ident(c) || matches!(c, '.' | ')' | ']'));
        if !continues {
            break;
        }
        line -= 1;
        jumps += 1;
        chars = prev.chars().collect();
        i = chars.len();
    }
    (chain, line)
}

/// How many lines a wrapped call's argument list may span past the call
/// line before we give up looking for its closing paren.
const CALL_SPAN: usize = 4;

/// The atomic orderings named inside the call whose opening paren sits at
/// byte `open_col` of 0-based line `ln` — the argument text up to the
/// matching `)`, wrapped across at most [`CALL_SPAN`] lines. Scoping to
/// the argument list (rather than a line window) keeps an adjacent
/// statement's ordering from bleeding into this call's classification.
pub(crate) fn orderings_in_call(view: &FileView, ln: usize, open_col: usize) -> Vec<&'static str> {
    const NAMES: &[&str] = &["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];
    let mut text = String::new();
    let mut depth = 0i64;
    'lines: for (k, l) in view.lines.iter().enumerate().skip(ln).take(CALL_SPAN) {
        let code = if k == ln {
            &l.code[open_col..]
        } else {
            l.code.as_str()
        };
        for c in code.chars() {
            match c {
                '(' => depth += 1,
                ')' => {
                    depth -= 1;
                    if depth <= 0 {
                        break 'lines;
                    }
                }
                _ => {}
            }
            text.push(c);
        }
        text.push('\n');
    }
    NAMES
        .iter()
        .filter(|name| text.contains(&format!("Ordering::{name}")))
        .copied()
        .collect()
}

/// Brace depth at the start of each 0-based line of the file.
pub(crate) fn depth_starts(view: &FileView) -> Vec<i64> {
    let mut out = Vec::with_capacity(view.lines.len());
    let mut depth = 0i64;
    for l in &view.lines {
        out.push(depth);
        for c in l.code.chars() {
            match c {
                '{' => depth += 1,
                '}' => depth -= 1,
                _ => {}
            }
        }
    }
    out
}
