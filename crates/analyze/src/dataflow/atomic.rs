//! Atomic-protocol pairing and ordering-drift checks.
//!
//! **`atomic-pairing`** — per crate, every struct field typed `Atomic*`
//! whose writers use Release-class orderings (`Release`, `AcqRel`,
//! `SeqCst`) is a *published* field: its readers must use Acquire-class
//! orderings. A `Relaxed` load of a published field is flagged at the
//! load; a published field with no Acquire-class reader anywhere in the
//! crate is flagged at the store (dead publish or missing reader).
//! Standalone `fence(Ordering::Release)` / `fence(Ordering::Acquire)`
//! calls must pair up per crate too.
//!
//! **`ordering-drift`** — a file that documents its protocol with an
//! `// ORDERING:` comment must keep the comment honest: every ordering
//! the code actually uses has to be named somewhere in the file's
//! `ORDERING:` comment blocks.
//!
//! Receivers that resolve to nothing (locals, parameters, ambiguous
//! names, indexed elements) are skipped — the checker prefers silence to
//! guessing. Test code is exempt throughout.

use std::collections::BTreeMap;

use super::{orderings_in_call, receiver_before, Finding};
use crate::index::{crate_of, SymbolIndex};
use crate::items::SyncKind;
use crate::lexer::path_is_test;

/// Atomic operations: `(method, reads, writes)`.
const OPS: &[(&str, bool, bool)] = &[
    (".load(", true, false),
    (".store(", false, true),
    (".swap(", true, true),
    (".fetch_add(", true, true),
    (".fetch_sub(", true, true),
    (".fetch_and(", true, true),
    (".fetch_or(", true, true),
    (".fetch_xor(", true, true),
    (".fetch_update(", true, true),
    (".compare_exchange(", true, true),
    (".compare_exchange_weak(", true, true),
];

#[derive(Default)]
struct Proto {
    release_writes: Vec<(usize, usize)>,
    acquire_reads: Vec<(usize, usize)>,
    relaxed_reads: Vec<(usize, usize)>,
}

/// Which fn (by index) encloses each 0-based line; innermost wins.
fn fn_by_line(entry: &crate::index::FileEntry) -> Vec<Option<usize>> {
    let mut map = vec![None; entry.view.lines.len()];
    for (fi, f) in entry.items.fns.iter().enumerate() {
        for ln in f.body.clone() {
            if let Some(slot) = map.get_mut(ln - 1) {
                *slot = Some(fi);
            }
        }
    }
    map
}

/// Run both checks over the whole index. Returns the findings and the
/// number of atomic sites classified.
pub fn check(index: &SymbolIndex) -> (Vec<Finding>, u64) {
    let mut findings = Vec::new();
    let mut sites = 0u64;

    let crate_names: Vec<String> = index.crate_names().map(str::to_owned).collect();
    for krate in &crate_names {
        let mut protos: BTreeMap<String, Proto> = BTreeMap::new();
        let mut release_fences: Vec<(usize, usize)> = Vec::new();
        let mut acquire_fences: Vec<(usize, usize)> = Vec::new();

        for &fidx in index.crate_files(krate) {
            let entry = &index.files[fidx];
            if path_is_test(&entry.path) {
                continue;
            }
            debug_assert_eq!(crate_of(&entry.path), krate);
            let owner = fn_by_line(entry);
            for (ln, l) in entry.view.lines.iter().enumerate() {
                if l.in_test || l.code.trim_start().starts_with("use ") {
                    continue;
                }
                for (op, reads, writes) in OPS {
                    let mut from = 0;
                    while let Some(rel) = l.code[from..].find(op) {
                        let col = from + rel;
                        from = col + op.len();
                        let names = orderings_in_call(&entry.view, ln, col + op.len() - 1);
                        if names.is_empty() {
                            continue; // not an atomic op (io `.load`, …)
                        }
                        sites += 1;
                        let (recv, stmt_ln) = receiver_before(&entry.view.lines, ln, col);
                        let impl_type = owner[stmt_ln]
                            .or(owner[ln])
                            .and_then(|fi| entry.items.fns[fi].impl_type.as_deref());
                        let Some(field) = index.resolve_field(krate, impl_type, &recv) else {
                            continue;
                        };
                        if field.kind != SyncKind::Atomic {
                            continue;
                        }
                        let has_release = names
                            .iter()
                            .any(|n| matches!(*n, "Release" | "AcqRel" | "SeqCst"));
                        let has_acquire = names
                            .iter()
                            .any(|n| matches!(*n, "Acquire" | "AcqRel" | "SeqCst"));
                        let p = protos.entry(field.key.clone()).or_default();
                        if *writes && has_release {
                            p.release_writes.push((fidx, ln + 1));
                        }
                        if *reads && has_acquire {
                            p.acquire_reads.push((fidx, ln + 1));
                        }
                        if *reads && !has_acquire {
                            p.relaxed_reads.push((fidx, ln + 1));
                        }
                    }
                }
                // Standalone fences.
                let mut from = 0;
                while let Some(rel) = l.code[from..].find("fence(") {
                    let at = from + rel;
                    from = at + "fence(".len();
                    // Word boundary: `atomic::fence(` yes, `confence(` no.
                    if at > 0 {
                        let prev = l.code.as_bytes()[at - 1] as char;
                        if prev.is_alphanumeric() || prev == '_' {
                            continue;
                        }
                    }
                    let names = orderings_in_call(&entry.view, ln, at + "fence(".len() - 1);
                    if names.contains(&"Release") || names.contains(&"AcqRel") {
                        release_fences.push((fidx, ln + 1));
                    }
                    if names.contains(&"Acquire") || names.contains(&"AcqRel") {
                        acquire_fences.push((fidx, ln + 1));
                    }
                }
            }
        }

        for (key, p) in &protos {
            if p.release_writes.is_empty() {
                continue;
            }
            for &(file, line) in &p.relaxed_reads {
                findings.push(Finding {
                    file,
                    line,
                    rule: "atomic-pairing",
                    message: format!(
                        "`{key}` is published with Release-class stores but read \
                         here with a Relaxed load — an Acquire-class load is \
                         required to observe the writes it orders"
                    ),
                });
            }
            if p.acquire_reads.is_empty() && p.relaxed_reads.is_empty() {
                let (file, line) = p.release_writes[0];
                findings.push(Finding {
                    file,
                    line,
                    rule: "atomic-pairing",
                    message: format!(
                        "Release-class store to `{key}` has no Acquire-class \
                         reader anywhere in crate `{krate}` — the publish \
                         protocol is unpaired"
                    ),
                });
            }
        }
        if !release_fences.is_empty() && acquire_fences.is_empty() {
            let (file, line) = release_fences[0];
            findings.push(Finding {
                file,
                line,
                rule: "atomic-pairing",
                message: format!(
                    "`fence(Ordering::Release)` has no Acquire-class fence \
                     anywhere in crate `{krate}` — the fence pair is incomplete"
                ),
            });
        }
        if !acquire_fences.is_empty() && release_fences.is_empty() {
            let (file, line) = acquire_fences[0];
            findings.push(Finding {
                file,
                line,
                rule: "atomic-pairing",
                message: format!(
                    "`fence(Ordering::Acquire)` has no Release-class fence \
                     anywhere in crate `{krate}` — the fence pair is incomplete"
                ),
            });
        }
    }

    // ordering-drift is file-local.
    for (fidx, entry) in index.files.iter().enumerate() {
        if path_is_test(&entry.path) {
            continue;
        }
        let doc = ordering_doc_text(entry);
        if doc.is_empty() {
            continue;
        }
        for name in ["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"] {
            let tagged = format!("Ordering::{name}");
            let first_use = entry.view.lines.iter().enumerate().find(|(_, l)| {
                !l.in_test && !l.code.trim_start().starts_with("use ") && l.code.contains(&tagged)
            });
            let Some((ln, _)) = first_use else { continue };
            if !doc.contains(name) {
                findings.push(Finding {
                    file: fidx,
                    line: ln + 1,
                    rule: "ordering-drift",
                    message: format!(
                        "code uses `Ordering::{name}` but the file's \
                         `// ORDERING:` protocol comment never mentions \
                         {name} — the documented protocol has drifted from \
                         the code"
                    ),
                });
            }
        }
    }

    (findings, sites)
}

/// Concatenated text of every contiguous comment block that contains an
/// `ORDERING:` tag. Empty when the file documents no protocol.
fn ordering_doc_text(entry: &crate::index::FileEntry) -> String {
    let lines = &entry.view.lines;
    let mut doc = String::new();
    let mut i = 0;
    while i < lines.len() {
        if lines[i].comment.trim().is_empty() {
            i += 1;
            continue;
        }
        let start = i;
        while i < lines.len() && !lines[i].comment.trim().is_empty() {
            i += 1;
        }
        if lines[start..i]
            .iter()
            .any(|l| l.comment.contains("ORDERING:"))
        {
            for l in &lines[start..i] {
                doc.push_str(&l.comment);
                doc.push('\n');
            }
        }
    }
    doc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn run(files: &[(&str, &str)]) -> Vec<(String, usize, &'static str)> {
        let idx = SymbolIndex::build(
            files
                .iter()
                .map(|(p, s)| ((*p).to_owned(), lex(s)))
                .collect(),
        );
        let (findings, _) = check(&idx);
        findings
            .into_iter()
            .map(|f| (idx.files[f.file].path.clone(), f.line, f.rule))
            .collect()
    }

    const PUBLISHED_RELAXED: &str = "\
// ORDERING: `ready` is published with Release and must be read with
// Acquire; Relaxed is reserved for the counters.
use std::sync::atomic::{AtomicBool, Ordering};
pub struct Flag { ready: AtomicBool }
impl Flag {
    pub fn publish(&self) { self.ready.store(true, Ordering::Release); }
    pub fn poll(&self) -> bool { self.ready.load(Ordering::Relaxed) }
}
";

    #[test]
    fn relaxed_read_of_released_field_is_flagged() {
        let f = run(&[("crates/a/src/lib.rs", PUBLISHED_RELAXED)]);
        assert_eq!(
            f,
            vec![("crates/a/src/lib.rs".to_owned(), 7, "atomic-pairing")]
        );
    }

    #[test]
    fn paired_protocol_is_clean() {
        let src = "\
// ORDERING: `ready` is a Release/Acquire handshake.
use std::sync::atomic::{AtomicBool, Ordering};
pub struct Flag { ready: AtomicBool }
impl Flag {
    pub fn publish(&self) { self.ready.store(true, Ordering::Release); }
    pub fn wait(&self) -> bool { self.ready.load(Ordering::Acquire) }
}
";
        assert!(run(&[("crates/a/src/lib.rs", src)]).is_empty());
    }

    #[test]
    fn unpaired_release_store_is_flagged_at_the_store() {
        let src = "\
// ORDERING: `done` uses Release; the reader lives in another crate (it
// does not — that is the bug this fixture models).
use std::sync::atomic::{AtomicBool, Ordering};
pub struct S { done: AtomicBool }
impl S {
    pub fn finish(&self) { self.done.store(true, Ordering::Release); }
}
";
        let f = run(&[("crates/a/src/lib.rs", src)]);
        assert_eq!(
            f,
            vec![("crates/a/src/lib.rs".to_owned(), 6, "atomic-pairing")]
        );
    }

    #[test]
    fn pairing_resolves_across_files_within_a_crate() {
        let writer = "\
// ORDERING: `stop` store is Release, paired with the Acquire load in
// worker.rs.
use std::sync::atomic::{AtomicBool, Ordering};
pub struct Shared { pub stop: AtomicBool }
pub fn halt(s: &Shared) { s.stop.store(true, Ordering::Release); }
";
        let reader_ok = "\
// ORDERING: Acquire pairs with the Release store in shared.rs.
use std::sync::atomic::Ordering;
use crate::Shared;
pub fn poll(s: &Shared) -> bool { s.stop.load(Ordering::Acquire) }
";
        assert!(run(&[
            ("crates/a/src/shared.rs", writer),
            ("crates/a/src/worker.rs", reader_ok),
        ])
        .is_empty());

        let reader_bad = "\
// ORDERING: Relaxed — deliberately wrong for this fixture.
use std::sync::atomic::Ordering;
use crate::Shared;
pub fn poll(s: &Shared) -> bool { s.stop.load(Ordering::Relaxed) }
";
        let f = run(&[
            ("crates/a/src/shared.rs", writer),
            ("crates/a/src/worker.rs", reader_bad),
        ]);
        assert_eq!(
            f,
            vec![("crates/a/src/worker.rs".to_owned(), 4, "atomic-pairing")]
        );
    }

    #[test]
    fn test_code_and_unresolved_receivers_are_exempt() {
        // Same racy shape, but in a tests/ tree: exempt.
        assert!(run(&[("crates/a/tests/x.rs", PUBLISHED_RELAXED)]).is_empty());
        // Receiver is a parameter — unresolved, skipped.
        let src = "\
// ORDERING: Release/Relaxed on a caller-owned slot.
use std::sync::atomic::{AtomicBool, Ordering};
pub fn f(slot: &AtomicBool) {
    slot.store(true, Ordering::Release);
    let _ = slot.load(Ordering::Relaxed);
}
";
        assert!(run(&[("crates/a/src/lib.rs", src)]).is_empty());
    }

    #[test]
    fn ordering_argument_may_sit_on_the_next_line() {
        let src = "\
// ORDERING: Release publish of `ready`, Relaxed poll (the bug).
use std::sync::atomic::{AtomicBool, Ordering};
pub struct Flag { ready: AtomicBool }
impl Flag {
    pub fn publish(&self) {
        self.ready.store(
            true,
            Ordering::Release,
        );
    }
    pub fn poll(&self) -> bool {
        self.ready
            .load(Ordering::Relaxed)
    }
}
";
        let f = run(&[("crates/a/src/lib.rs", src)]);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].2, "atomic-pairing");
        assert_eq!(f[0].1, 13, "flagged at the wrapped load");
    }

    #[test]
    fn unpaired_fences_are_flagged_per_crate() {
        let src = "\
// ORDERING: Release fence before the flag store; the Acquire side was
// deleted in a refactor (this fixture).
use std::sync::atomic::{fence, Ordering};
pub fn publish() { fence(Ordering::Release); }
";
        let f = run(&[("crates/a/src/lib.rs", src)]);
        assert_eq!(
            f,
            vec![("crates/a/src/lib.rs".to_owned(), 4, "atomic-pairing")]
        );

        let paired = "\
// ORDERING: Release fence pairs with the Acquire fence below.
use std::sync::atomic::{fence, Ordering};
pub fn publish() { fence(Ordering::Release); }
pub fn observe() { fence(Ordering::Acquire); }
";
        assert!(run(&[("crates/a/src/lib.rs", paired)]).is_empty());
    }

    #[test]
    fn drift_flags_orderings_missing_from_the_protocol_comment() {
        let src = "\
// ORDERING: counters are independent tallies; Relaxed everywhere.
use std::sync::atomic::{AtomicU64, Ordering};
pub fn read(c: &AtomicU64) -> u64 { c.load(Ordering::Acquire) }
";
        let f = run(&[("crates/a/src/lib.rs", src)]);
        assert_eq!(
            f,
            vec![("crates/a/src/lib.rs".to_owned(), 3, "ordering-drift")]
        );
    }

    #[test]
    fn drift_is_silent_without_an_ordering_comment_and_when_documented() {
        // No ORDERING comment at all: ordering-doc's province, not drift's.
        let bare = "use std::sync::atomic::{AtomicU64, Ordering};\n\
                    pub fn read(c: &AtomicU64) -> u64 { c.load(Ordering::Acquire) }";
        assert!(run(&[("crates/a/src/lib.rs", bare)]).is_empty());
        // Documented ordering: clean.
        let ok = "// ORDERING: Acquire pairs with a Release store elsewhere.\n\
                  use std::sync::atomic::{AtomicU64, Ordering};\n\
                  pub fn read(c: &AtomicU64) -> u64 { c.load(Ordering::Acquire) }";
        assert!(run(&[("crates/a/src/lib.rs", ok)]).is_empty());
    }
}
