//! `gaia-analyze` — lint the workspace against the project rule set.
//!
//! ```text
//! gaia-analyze [--root DIR] [--deny] [--json PATH] [--quiet] [--since REV]
//! ```
//!
//! * `--root DIR`   workspace root (default: walk up to `[workspace]`)
//! * `--deny`       exit 1 if any unsuppressed diagnostic remains (CI mode)
//! * `--json PATH`  write the JSON report here instead of
//!   `results/analyze/report.json`
//! * `--quiet`      suppress the per-diagnostic listing
//! * `--since REV`  report only findings in files changed since REV
//!   (`git diff --name-only REV`); the whole workspace is still scanned
//!   so cross-file dataflow stays sound, and the scan silently falls
//!   back to full-workspace reporting when git or REV is unavailable

use std::path::PathBuf;
use std::process::ExitCode;

use gaia_analyze::report::DEFAULT_REPORT_PATH;
use gaia_analyze::{analyze_workspace, changed_files, find_workspace_root, Report};

const USAGE: &str =
    "usage: gaia-analyze [--root DIR] [--deny] [--json PATH] [--quiet] [--since REV]";

struct Args {
    root: Option<PathBuf>,
    deny: bool,
    json: Option<PathBuf>,
    quiet: bool,
    since: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        root: None,
        deny: false,
        json: None,
        quiet: false,
        since: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} needs a value"));
        match flag.as_str() {
            "--root" => args.root = Some(PathBuf::from(value("--root")?)),
            "--deny" => args.deny = true,
            "--json" => args.json = Some(PathBuf::from(value("--json")?)),
            "--quiet" => args.quiet = true,
            "--since" => args.since = Some(value("--since")?),
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            if !e.is_empty() {
                eprintln!("{e}");
            }
            eprintln!("{USAGE}");
            return ExitCode::from(2);
        }
    };

    let cwd = match std::env::current_dir() {
        Ok(d) => d,
        Err(e) => {
            eprintln!("cannot determine working directory: {e}");
            return ExitCode::FAILURE;
        }
    };
    let root = match args.root.or_else(|| find_workspace_root(&cwd)) {
        Some(r) => r,
        None => {
            eprintln!(
                "no workspace root found above {} (pass --root)",
                cwd.display()
            );
            return ExitCode::FAILURE;
        }
    };

    let mut report = match analyze_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("analysis failed: {e}");
            return ExitCode::FAILURE;
        }
    };

    // Diff-aware mode: the full workspace was scanned (cross-file
    // dataflow needs every file), but only findings in changed files are
    // reported and gated.
    if let Some(rev) = &args.since {
        match changed_files(&root, rev) {
            Some(changed) => {
                let files_scanned = report.files_scanned;
                let diagnostics = report
                    .diagnostics
                    .into_iter()
                    .filter(|d| changed.contains(&d.path))
                    .collect();
                let suppressions = report
                    .suppressions
                    .into_iter()
                    .filter(|s| changed.contains(&s.path))
                    .collect();
                report = Report::new(files_scanned, diagnostics, suppressions);
                report.since = Some(rev.clone());
            }
            None => eprintln!(
                "gaia-analyze: --since {rev}: git diff unavailable, \
                 falling back to a full-workspace report"
            ),
        }
    }

    if !args.quiet {
        for d in &report.diagnostics {
            println!("{}:{}: [{}] {}", d.path, d.line, d.rule, d.message);
            if !d.excerpt.is_empty() {
                println!("    {}", d.excerpt);
            }
        }
    }
    println!(
        "gaia-analyze: {} file(s) scanned, {} diagnostic(s), {} suppression(s)",
        report.files_scanned,
        report.diagnostics.len(),
        report.suppressions.len()
    );
    if let Some(rev) = &report.since {
        println!("diff-aware: findings restricted to files changed since {rev}");
    }

    let write_result = match &args.json {
        Some(path) => {
            let out = if path.is_absolute() {
                path.clone()
            } else {
                root.join(path)
            };
            std::fs::create_dir_all(out.parent().unwrap_or(&root))
                .and_then(|()| serde_json::to_string_pretty(&report).map_err(std::io::Error::other))
                .and_then(|json| std::fs::write(&out, json + "\n"))
                .map(|()| out)
        }
        None => report.write_json(&root),
    };
    match write_result {
        Ok(path) => println!("report: {}", path.display()),
        Err(e) => {
            eprintln!(
                "failed to write report ({}): {e}",
                args.json
                    .as_deref()
                    .map(|p| p.display().to_string())
                    .unwrap_or_else(|| DEFAULT_REPORT_PATH.to_owned())
            );
            return ExitCode::FAILURE;
        }
    }

    if args.deny && !report.clean() {
        eprintln!(
            "gaia-analyze: --deny: {} unsuppressed diagnostic(s)",
            report.diagnostics.len()
        );
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
