//! `gaia-analyze` — lint the workspace against the project rule set.
//!
//! ```text
//! gaia-analyze [--root DIR] [--deny] [--json PATH] [--quiet]
//! ```
//!
//! * `--root DIR`   workspace root (default: walk up to `[workspace]`)
//! * `--deny`       exit 1 if any unsuppressed diagnostic remains (CI mode)
//! * `--json PATH`  write the JSON report here instead of
//!   `results/analyze/report.json`
//! * `--quiet`      suppress the per-diagnostic listing

use std::path::PathBuf;
use std::process::ExitCode;

use gaia_analyze::report::DEFAULT_REPORT_PATH;
use gaia_analyze::{analyze_workspace, find_workspace_root};

const USAGE: &str = "usage: gaia-analyze [--root DIR] [--deny] [--json PATH] [--quiet]";

struct Args {
    root: Option<PathBuf>,
    deny: bool,
    json: Option<PathBuf>,
    quiet: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        root: None,
        deny: false,
        json: None,
        quiet: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} needs a value"));
        match flag.as_str() {
            "--root" => args.root = Some(PathBuf::from(value("--root")?)),
            "--deny" => args.deny = true,
            "--json" => args.json = Some(PathBuf::from(value("--json")?)),
            "--quiet" => args.quiet = true,
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            if !e.is_empty() {
                eprintln!("{e}");
            }
            eprintln!("{USAGE}");
            return ExitCode::from(2);
        }
    };

    let cwd = match std::env::current_dir() {
        Ok(d) => d,
        Err(e) => {
            eprintln!("cannot determine working directory: {e}");
            return ExitCode::FAILURE;
        }
    };
    let root = match args.root.or_else(|| find_workspace_root(&cwd)) {
        Some(r) => r,
        None => {
            eprintln!(
                "no workspace root found above {} (pass --root)",
                cwd.display()
            );
            return ExitCode::FAILURE;
        }
    };

    let report = match analyze_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("analysis failed: {e}");
            return ExitCode::FAILURE;
        }
    };

    if !args.quiet {
        for d in &report.diagnostics {
            println!("{}:{}: [{}] {}", d.path, d.line, d.rule, d.message);
            if !d.excerpt.is_empty() {
                println!("    {}", d.excerpt);
            }
        }
    }
    println!(
        "gaia-analyze: {} file(s) scanned, {} diagnostic(s), {} suppression(s)",
        report.files_scanned,
        report.diagnostics.len(),
        report.suppressions.len()
    );

    let write_result = match &args.json {
        Some(path) => {
            let out = if path.is_absolute() {
                path.clone()
            } else {
                root.join(path)
            };
            std::fs::create_dir_all(out.parent().unwrap_or(&root))
                .and_then(|()| serde_json::to_string_pretty(&report).map_err(std::io::Error::other))
                .and_then(|json| std::fs::write(&out, json + "\n"))
                .map(|()| out)
        }
        None => report.write_json(&root),
    };
    match write_result {
        Ok(path) => println!("report: {}", path.display()),
        Err(e) => {
            eprintln!(
                "failed to write report ({}): {e}",
                args.json
                    .as_deref()
                    .map(|p| p.display().to_string())
                    .unwrap_or_else(|| DEFAULT_REPORT_PATH.to_owned())
            );
            return ExitCode::FAILURE;
        }
    }

    if args.deny && !report.clean() {
        eprintln!(
            "gaia-analyze: --deny: {} unsuppressed diagnostic(s)",
            report.diagnostics.len()
        );
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
