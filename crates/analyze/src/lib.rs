//! gaia-analyze: dependency-free static analysis for the workspace.
//!
//! Two layers keep the portability study honest:
//!
//! 1. **This crate** — a source lint engine (tokenizer + rule driver, no
//!    rustc, no syn) that walks every workspace crate and enforces the
//!    concurrency idioms the paper's ports rely on: `SAFETY:` comments on
//!    `unsafe`, `ORDERING:` rationale on atomics (with `SeqCst` denied by
//!    default), pool-only thread creation, telemetry-only timing, and
//!    unwrap-free kernel hot paths. See [`rules`] for the rule set and
//!    the in-source suppression syntax.
//! 2. **`gaia_backends::plan_check`** — the static `LaunchPlan` checker
//!    proving every schedule's write-sets disjoint before a single thread
//!    runs.
//!
//! Entry points: [`analyze_source`] for one in-memory file (fixtures,
//! editors), [`analyze_workspace`] for the whole tree, and the
//! `gaia-analyze` binary for CI (`--deny` exits nonzero on any
//! unsuppressed diagnostic).

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

pub mod dataflow;
pub mod index;
pub mod items;
pub mod lexer;
pub mod report;
pub mod rules;

use std::collections::BTreeSet;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::process::Command;

pub use dataflow::DataflowStats;
pub use index::SymbolIndex;
pub use report::Report;
pub use rules::{Diagnostic, FileFindings, Suppression};

/// Directory names never descended into: third-party code, build output,
/// deliberately-bad lint fixtures, and run artifacts.
const SKIP_DIRS: &[&str] = &["vendor", "target", ".git", "fixtures", "corpus", "results"];

/// Lint one file's text under a workspace-relative `path` (which drives
/// the per-file allow-lists — pass the path the file *would* have). Runs
/// the full pipeline: per-file rules, then the dataflow checkers over a
/// single-file symbol index, then the unused-suppression sweep.
pub fn analyze_source(path: &str, text: &str) -> FileFindings {
    let view = lexer::lex(text);
    let mut findings = vec![rules::check_file(path, &view)];
    let index = SymbolIndex::build(vec![(path.to_owned(), view)]);
    dataflow_pass(&index, &mut findings);
    findings.pop().expect("one file in, one findings out")
}

/// Run the dataflow checkers over `index` and fold their findings into
/// the per-file `findings` (parallel to `index.files`), routing each one
/// through [`rules::emit`] so in-source suppressions apply. The
/// unused-suppression sweep runs last, after every rule family has had
/// the chance to mark its directives used.
fn dataflow_pass(index: &SymbolIndex, findings: &mut [FileFindings]) -> DataflowStats {
    let (atomic_findings, atomic_sites) = dataflow::atomic::check(index);
    let (lock_findings, lock_sites) = dataflow::locks::check(index);
    for f in atomic_findings.into_iter().chain(lock_findings) {
        let entry = &index.files[f.file];
        rules::emit(
            &mut findings[f.file],
            &entry.path,
            &entry.view,
            f.line,
            f.rule,
            f.message,
        );
    }
    for (i, entry) in index.files.iter().enumerate() {
        rules::unused_suppression_pass(&entry.path, &entry.view, &mut findings[i]);
    }
    let functions = index
        .files
        .iter()
        .filter(|e| !lexer::path_is_test(&e.path))
        .map(|e| e.items.fns.iter().filter(|f| !f.is_test).count() as u64)
        .sum();
    DataflowStats {
        functions,
        atomic_sites,
        lock_sites,
    }
}

/// Collect every `.rs` file under `root`, skipping [`SKIP_DIRS`], sorted
/// for deterministic reports. Paths returned are workspace-relative with
/// `/` separators.
pub fn workspace_sources(root: &Path) -> io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    walk(root, root, &mut out)?;
    out.sort();
    Ok(out)
}

fn walk(root: &Path, dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_ref()) || name.starts_with('.') {
                continue;
            }
            walk(root, &path, out)?;
        } else if name.ends_with(".rs") {
            let rel = path.strip_prefix(root).unwrap_or(&path);
            out.push(PathBuf::from(rel.to_string_lossy().replace('\\', "/")));
        }
    }
    Ok(())
}

/// Lint every workspace source under `root` and assemble the [`Report`]:
/// lex everything once, run the per-file rules, build the workspace
/// [`SymbolIndex`], run the cross-file dataflow checkers, then the
/// unused-suppression sweep. Records `record_analyze_lint` and
/// `record_analyze_dataflow` telemetry when the `telemetry` feature is
/// on.
pub fn analyze_workspace(root: &Path) -> io::Result<Report> {
    let sources = workspace_sources(root)?;
    let mut files = Vec::with_capacity(sources.len());
    for rel in &sources {
        let text = fs::read_to_string(root.join(rel))?;
        files.push((rel.to_string_lossy().into_owned(), lexer::lex(&text)));
    }
    let mut findings: Vec<FileFindings> = files
        .iter()
        .map(|(path, view)| rules::check_file(path, view))
        .collect();
    let index = SymbolIndex::build(files);
    let stats = dataflow_pass(&index, &mut findings);
    let mut diagnostics = Vec::new();
    let mut suppressions = Vec::new();
    for f in &mut findings {
        diagnostics.append(&mut f.diagnostics);
        suppressions.append(&mut f.suppressions);
    }
    let report = Report::new(sources.len(), diagnostics, suppressions);
    gaia_telemetry::record_analyze_lint(
        report.files_scanned as u64,
        report.diagnostics.len() as u64,
        report.suppressions.len() as u64,
    );
    gaia_telemetry::record_analyze_dataflow(stats.functions, stats.atomic_sites, stats.lock_sites);
    Ok(report)
}

/// Paths changed relative to `rev`, per `git diff --name-only` (plus
/// files added since), as workspace-relative `/`-separated strings.
/// `None` when git is unavailable or `rev` is unknown — callers fall
/// back to a full scan.
pub fn changed_files(root: &Path, rev: &str) -> Option<BTreeSet<String>> {
    let out = Command::new("git")
        .arg("-C")
        .arg(root)
        .args(["diff", "--name-only", rev])
        .output()
        .ok()?;
    if !out.status.success() {
        return None;
    }
    let text = String::from_utf8(out.stdout).ok()?;
    Some(
        text.lines()
            .map(|l| l.trim().replace('\\', "/"))
            .filter(|l| !l.is_empty())
            .collect(),
    )
}

/// Find the workspace root: walk up from `start` to the first directory
/// whose `Cargo.toml` declares `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start);
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d.to_path_buf());
            }
        }
        dir = d.parent();
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn analyze_source_flags_and_suppresses() {
        let bad = "let t = Instant::now();";
        let f = analyze_source("crates/x/src/a.rs", bad);
        assert_eq!(f.diagnostics.len(), 1);
        assert_eq!(f.diagnostics[0].rule, "timing");
        assert_eq!(f.diagnostics[0].line, 1);

        let ok = "// gaia-analyze: allow(timing): warm-up loop outside telemetry\nlet t = Instant::now();";
        let f = analyze_source("crates/x/src/a.rs", ok);
        assert!(f.diagnostics.is_empty());
        assert_eq!(f.suppressions.len(), 1);
    }

    #[test]
    fn workspace_root_is_found_from_nested_dir() {
        let here = Path::new(env!("CARGO_MANIFEST_DIR"));
        let root = find_workspace_root(here).expect("workspace root");
        assert!(root.join("Cargo.toml").is_file());
        assert!(root.join("crates").is_dir());
    }

    #[test]
    fn walker_skips_vendor_and_fixtures() {
        let root = find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR"))).unwrap();
        let sources = workspace_sources(&root).unwrap();
        assert!(!sources.is_empty());
        for s in &sources {
            let s = s.to_string_lossy();
            assert!(!s.contains("vendor/"), "{s}");
            assert!(!s.contains("target/"), "{s}");
            assert!(!s.contains("fixtures/"), "{s}");
        }
        assert!(sources
            .iter()
            .any(|s| s.to_string_lossy() == "crates/backends/src/exec.rs"));
    }
}
