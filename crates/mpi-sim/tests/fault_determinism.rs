//! Property tests for the deterministic fault schedule: the same
//! `FaultPlan` seed must yield the same injected-event sequence for a
//! given rank regardless of how many ranks share the world (1–4), and
//! regardless of thread scheduling.

use std::sync::Arc;

use gaia_mpi_sim::{
    install_quiet_panic_hook, try_run, FaultEvent, FaultKind, FaultPlan, FaultSpec, ReduceOp,
    WorldOptions,
};
use proptest::prelude::*;

/// Run `n_collectives` allreduces on `size` ranks under a flip/straggle
/// only plan (no panics, so every world completes) and return the injected
/// events, sorted by (attempt, rank, seq).
fn injected_events(seed: u64, size: usize, n_collectives: usize) -> Vec<FaultEvent> {
    let spec = FaultSpec {
        panic_ppm: 0,
        // Keep delays negligible so the sweep stays fast.
        max_straggle_millis: 1,
        ..FaultSpec::heavy()
    };
    let plan = Arc::new(FaultPlan::new(seed, spec));
    let opts = WorldOptions {
        faults: Some(Arc::clone(&plan)),
        collective_timeout: None,
    };
    try_run(size, opts, |c| {
        let mut acc = 0.0;
        for i in 0..n_collectives {
            acc += c.allreduce_scalar(ReduceOp::Sum, i as f64 + c.rank() as f64);
        }
        acc
    })
    .expect("no panics configured");
    plan.events()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The schedule is a pure function of (seed, attempt, rank, seq):
    /// rank r's event subsequence is identical whether the world has
    /// r+1 ranks or 4.
    #[test]
    fn same_seed_same_events_across_rank_counts(seed in 0u64..1000) {
        install_quiet_panic_hook();
        let n_collectives = 40;
        let per_size: Vec<Vec<FaultEvent>> =
            (1..=4).map(|size| injected_events(seed, size, n_collectives)).collect();
        for (i, events) in per_size.iter().enumerate() {
            let size = i + 1;
            for rank in 0..size {
                let mine: Vec<&FaultEvent> =
                    events.iter().filter(|e| e.rank == rank).collect();
                let reference: Vec<&FaultEvent> =
                    per_size[3].iter().filter(|e| e.rank == rank).collect();
                prop_assert_eq!(
                    &mine, &reference,
                    "rank {} schedule differs between world size {} and 4", rank, size
                );
            }
        }
    }

    /// Two runs with the same seed and world size inject identical events
    /// (thread scheduling cannot perturb the schedule); a different seed
    /// almost always changes it.
    #[test]
    fn schedule_is_reproducible_and_seed_sensitive(seed in 0u64..1000, size in 1usize..=4) {
        install_quiet_panic_hook();
        let a = injected_events(seed, size, 40);
        let b = injected_events(seed, size, 40);
        prop_assert_eq!(&a, &b);
        // Seed sensitivity: over many collectives the heavy spec fires
        // often, so a different seed virtually always differs; tolerate
        // the rare collision by only checking when either run is nonempty.
        let c = injected_events(seed.wrapping_add(1_000_003), size, 40);
        if !a.is_empty() || !c.is_empty() {
            // Not a hard inequality (collisions possible in principle),
            // but events carry (rank, seq, kind) so equality of nonempty
            // schedules across seeds is effectively impossible.
            prop_assert_ne!(&a, &c);
        }
    }
}

/// Scripted plans fire exactly as written, independent of world size
/// (as long as the target rank exists and reaches the target seq).
#[test]
fn scripted_events_fire_identically_across_sizes() {
    install_quiet_panic_hook();
    for size in 2..=4 {
        let plan = Arc::new(
            FaultPlan::scripted(5)
                .with_event(0, 1, 3, FaultKind::BitFlip { bit: 17 })
                .with_event(0, 0, 7, FaultKind::Straggle { millis: 1 }),
        );
        let opts = WorldOptions {
            faults: Some(Arc::clone(&plan)),
            collective_timeout: None,
        };
        try_run(size, opts, |c| {
            for i in 0..10 {
                c.allreduce_scalar(ReduceOp::Sum, i as f64);
            }
        })
        .expect("no panics scripted");
        let events = plan.events();
        assert_eq!(events.len(), 2, "size {size}: {events:?}");
        assert_eq!((events[0].rank, events[0].seq), (0, 7));
        assert_eq!((events[1].rank, events[1].seq), (1, 3));
    }
}
