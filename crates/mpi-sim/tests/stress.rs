//! Stress and property tests for the collectives layer.

use gaia_mpi_sim::{run, ReduceOp};
use proptest::prelude::*;

#[test]
fn mixed_collective_sequences_stay_in_lockstep() {
    // A long, irregular mix of all collective types on 8 ranks; any
    // ordering bug deadlocks (the test would hang) or panics on the
    // collective-mismatch assertion.
    let out = run(8, |c| {
        let mut acc = 0.0f64;
        for round in 0..50 {
            match round % 5 {
                0 => {
                    acc += c.allreduce_scalar(ReduceOp::Sum, c.rank() as f64);
                }
                1 => c.barrier(),
                2 => {
                    let mut buf = vec![round as f64; 8];
                    c.allreduce(ReduceOp::Max, &mut buf);
                    acc += buf[0];
                }
                3 => {
                    let mut buf = if c.rank() == round % c.size() {
                        vec![acc]
                    } else {
                        vec![]
                    };
                    c.bcast(round % c.size(), &mut buf);
                    // Everyone now has the broadcasting rank's acc; don't
                    // fold it into acc (ranks' accs legitimately differ on
                    // the rank-dependent sum rounds), just sanity-check it.
                    assert!(buf[0].is_finite());
                }
                _ => {
                    let gathered = c.allgather(&[c.rank() as f64]);
                    acc += gathered.iter().map(|g| g[0]).sum::<f64>();
                }
            }
        }
        acc
    });
    assert_eq!(out.len(), 8);
    assert!(out.iter().all(|v| v.is_finite()));
}

#[test]
fn results_are_stable_across_many_repetitions() {
    let reference = run(6, |c| {
        let mut buf = vec![(c.rank() as f64 + 1.0).recip(); 32];
        c.allreduce(ReduceOp::Sum, &mut buf);
        buf
    });
    for _ in 0..20 {
        let again = run(6, |c| {
            let mut buf = vec![(c.rank() as f64 + 1.0).recip(); 32];
            c.allreduce(ReduceOp::Sum, &mut buf);
            buf
        });
        assert_eq!(reference, again, "nondeterministic reduction detected");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn allreduce_equals_sequential_fold(
        ranks in 1usize..8,
        values in proptest::collection::vec(-100.0f64..100.0, 8),
        len in 1usize..16,
    ) {
        let out = run(ranks, |c| {
            let mut buf = vec![values[c.rank()]; len];
            c.allreduce(ReduceOp::Sum, &mut buf);
            buf
        });
        // Deterministic rank-ordered fold.
        let mut want = 0.0;
        for v in values.iter().take(ranks) {
            want += v;
        }
        for rank_out in out {
            prop_assert_eq!(rank_out.len(), len);
            for v in rank_out {
                prop_assert_eq!(v, want);
            }
        }
    }

    #[test]
    fn min_max_bracket_inputs(
        ranks in 2usize..8,
        values in proptest::collection::vec(-50.0f64..50.0, 8),
    ) {
        let vmax = run(ranks, |c| c.allreduce_scalar(ReduceOp::Max, values[c.rank()]));
        let vmin = run(ranks, |c| c.allreduce_scalar(ReduceOp::Min, values[c.rank()]));
        let used = &values[..ranks];
        let want_max = used.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let want_min = used.iter().cloned().fold(f64::INFINITY, f64::min);
        prop_assert!(vmax.iter().all(|&v| v == want_max));
        prop_assert!(vmin.iter().all(|&v| v == want_min));
    }

    #[test]
    fn bcast_from_every_root(ranks in 1usize..7, root_seed in 0usize..7) {
        let root = root_seed % ranks;
        let payload = vec![3.25, -1.5, 0.0];
        let expected = payload.clone();
        let out = run(ranks, move |c| {
            let mut buf = if c.rank() == root { payload.clone() } else { vec![] };
            c.bcast(root, &mut buf);
            buf
        });
        for o in out {
            prop_assert_eq!(&o, &expected);
        }
    }
}
