//! Deterministic, seeded fault injection for the simulated MPI world.
//!
//! Production AVU-GSR runs span weeks and hundreds of ranks; node crashes,
//! stragglers, and corrupted network payloads are routine at that scale.
//! This module gives the in-process world the same failure modes — rank
//! panics, bounded collective delays, and payload bit-flips in `allreduce`
//! — injected at *deterministic* points so that every chaos run is exactly
//! reproducible: the decision whether rank `r` fails at its `s`-th
//! collective is a pure function of `(seed, attempt, rank, seq)`, never of
//! thread scheduling or world size.
//!
//! Two injection sources compose:
//!
//! * **scripted events** ([`FaultPlan::with_event`]) fire exactly at the
//!   requested `(attempt, rank, seq)` — what the acceptance tests use;
//! * **probabilistic events** ([`FaultSpec`]) are drawn per
//!   `(attempt, rank, seq)` from a counter-mode hash of the seed, with
//!   per-rank budgets so a schedule cannot drown a run in faults.
//!
//! The *attempt* counter exists for recovery loops: a supervisor that
//! restarts a failed solve bumps it ([`FaultPlan::set_attempt`]), which
//! re-keys the probabilistic schedule — otherwise the retry would hit the
//! identical fault at the identical point forever. Everything injected is
//! recorded in an event log ([`FaultPlan::events`]) that recovery layers
//! and telemetry can read back.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// One injectable failure mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The rank panics at the collective call site (a crashed node). The
    /// world is aborted so sibling ranks fail fast instead of deadlocking.
    RankPanic,
    /// The rank sleeps for a bounded delay before joining the collective
    /// (a straggler; with a collective timeout configured on the world, a
    /// delay beyond the timeout becomes a detected collective timeout).
    Straggle {
        /// Delay in milliseconds (bounded by [`FaultSpec::max_straggle_millis`]).
        millis: u64,
    },
    /// One bit of one element of the rank's `allreduce` contribution is
    /// flipped before the reduction (a corrupted payload). Only applies to
    /// collectives that carry a payload; at payload-free call sites the
    /// draw is discarded.
    BitFlip {
        /// Which bit of the chosen `f64` word is flipped (high bits, so
        /// the corruption is large enough to be observable downstream).
        bit: u8,
    },
}

/// One realized injection, as recorded in the plan's event log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultEvent {
    /// Supervisor attempt during which the fault fired.
    pub attempt: u64,
    /// Rank the fault was injected into.
    pub rank: usize,
    /// Per-rank collective sequence number at the injection point.
    pub seq: u64,
    /// What was injected.
    pub kind: FaultKind,
}

/// Probabilistic fault rates (parts per million per collective call) and
/// per-rank budgets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultSpec {
    /// Probability of a rank panic per collective call, in ppm.
    pub panic_ppm: u32,
    /// Probability of a payload bit-flip per `allreduce` call, in ppm.
    pub flip_ppm: u32,
    /// Probability of a straggler delay per collective call, in ppm.
    pub straggle_ppm: u32,
    /// Upper bound on the straggler delay.
    pub max_straggle_millis: u64,
    /// At most this many panics per rank over the plan's lifetime.
    pub max_panics_per_rank: u64,
    /// At most this many bit-flips per rank over the plan's lifetime.
    pub max_flips_per_rank: u64,
}

impl FaultSpec {
    /// No probabilistic faults (scripted events still fire).
    pub fn none() -> Self {
        FaultSpec {
            panic_ppm: 0,
            flip_ppm: 0,
            straggle_ppm: 0,
            max_straggle_millis: 0,
            max_panics_per_rank: 0,
            max_flips_per_rank: 0,
        }
    }

    /// A light chaos level: occasional stragglers, rare flips and panics,
    /// bounded so a retrying supervisor always makes progress.
    pub fn light() -> Self {
        FaultSpec {
            panic_ppm: 2_000,
            flip_ppm: 4_000,
            straggle_ppm: 20_000,
            max_straggle_millis: 2,
            max_panics_per_rank: 1,
            max_flips_per_rank: 1,
        }
    }

    /// A heavy chaos level for stress sweeps.
    pub fn heavy() -> Self {
        FaultSpec {
            panic_ppm: 10_000,
            flip_ppm: 20_000,
            straggle_ppm: 50_000,
            max_straggle_millis: 5,
            max_panics_per_rank: 2,
            max_flips_per_rank: 2,
        }
    }
}

/// A reproducible fault schedule shared by every rank of a world (and by
/// every retry attempt of a supervisor).
pub struct FaultPlan {
    seed: u64,
    spec: FaultSpec,
    attempt: AtomicU64,
    scripted: Vec<FaultEvent>,
    log: Mutex<Vec<FaultEvent>>,
}

/// SplitMix64 finalizer: a well-mixed pure hash of the injection point.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl FaultPlan {
    /// A plan drawing probabilistic faults from `spec`, keyed by `seed`.
    pub fn new(seed: u64, spec: FaultSpec) -> Self {
        FaultPlan {
            seed,
            spec,
            attempt: AtomicU64::new(0),
            scripted: Vec::new(),
            log: Mutex::new(Vec::new()),
        }
    }

    /// A plan that injects nothing probabilistically; add faults with
    /// [`FaultPlan::with_event`].
    pub fn scripted(seed: u64) -> Self {
        FaultPlan::new(seed, FaultSpec::none())
    }

    /// Script one fault at exactly `(attempt, rank, seq)`. Scripted events
    /// ignore budgets and fire unconditionally (a `BitFlip` still needs a
    /// payload-carrying call site to apply).
    pub fn with_event(mut self, attempt: u64, rank: usize, seq: u64, kind: FaultKind) -> Self {
        self.scripted.push(FaultEvent {
            attempt,
            rank,
            seq,
            kind,
        });
        self
    }

    /// Re-key the probabilistic schedule for a new supervisor attempt.
    ///
    /// ORDERING: the attempt counter is written by the supervisor *between*
    /// attempts, while no ranks are running; the rank threads that read it
    /// are created afterwards (thread creation synchronizes), so `Relaxed`
    /// is the weakest correct ordering.
    pub fn set_attempt(&self, attempt: u64) {
        self.attempt.store(attempt, Ordering::Relaxed);
    }

    /// The current attempt counter.
    pub fn attempt(&self) -> u64 {
        self.attempt.load(Ordering::Relaxed)
    }

    /// Everything injected so far, sorted by `(attempt, rank, seq)` so the
    /// order is independent of thread scheduling.
    pub fn events(&self) -> Vec<FaultEvent> {
        let mut events = self.log.lock().expect("fault log poisoned").clone();
        events.sort_by_key(|e| (e.attempt, e.rank, e.seq));
        events
    }

    /// Number of events injected so far.
    pub fn injected(&self) -> usize {
        self.log.lock().expect("fault log poisoned").len()
    }

    /// Pure decision function: what (if anything) fires at
    /// `(attempt, rank, seq)`. Independent of world size, thread schedule,
    /// and of which other faults have fired — except for per-rank budgets,
    /// which are applied by [`FaultPlan::poll`] in per-rank `seq` order
    /// (itself deterministic).
    pub fn preview(&self, attempt: u64, rank: usize, seq: u64) -> Option<FaultKind> {
        if let Some(e) = self
            .scripted
            .iter()
            .find(|e| e.attempt == attempt && e.rank == rank && e.seq == seq)
        {
            return Some(e.kind);
        }
        let key = |salt: u64| {
            mix(self
                .seed
                .wrapping_add(attempt.wrapping_mul(0x9e37_79b9_7f4a_7c15))
                .wrapping_add((rank as u64).wrapping_mul(0xd134_2543_de82_ef95))
                .wrapping_add(seq.wrapping_mul(0x2545_f491_4f6c_dd1d))
                .wrapping_add(salt))
        };
        let ppm = |h: u64| (h % 1_000_000) as u32;
        if self.spec.panic_ppm > 0 && ppm(key(1)) < self.spec.panic_ppm {
            return Some(FaultKind::RankPanic);
        }
        if self.spec.flip_ppm > 0 && ppm(key(2)) < self.spec.flip_ppm {
            let bit = 48 + (key(3) % 16) as u8; // high mantissa / exponent / sign
            return Some(FaultKind::BitFlip { bit });
        }
        if self.spec.straggle_ppm > 0 && ppm(key(4)) < self.spec.straggle_ppm {
            let span = self.spec.max_straggle_millis.max(1);
            return Some(FaultKind::Straggle {
                millis: key(5) % (span + 1),
            });
        }
        None
    }

    /// Decide-and-apply at one collective call site. `payload` is the
    /// rank's `allreduce` contribution when the call carries one; a
    /// decided `BitFlip` corrupts it in place (and picks the word from the
    /// same hash stream). Returns the action the *caller* must take
    /// (panic or sleep); applied flips are logged but return `None`-like
    /// flow is not needed since the buffer is already corrupted.
    pub fn poll(&self, rank: usize, seq: u64, payload: Option<&mut [f64]>) -> Option<FaultKind> {
        let attempt = self.attempt();
        let kind = self.preview(attempt, rank, seq)?;
        let scripted = self
            .scripted
            .iter()
            .any(|e| e.attempt == attempt && e.rank == rank && e.seq == seq);
        fn spent(log: &[FaultEvent], rank: usize, k: fn(&FaultKind) -> bool) -> u64 {
            log.iter().filter(|e| e.rank == rank && k(&e.kind)).count() as u64
        }
        let mut log = self.log.lock().expect("fault log poisoned");
        match kind {
            FaultKind::RankPanic => {
                if !scripted
                    && spent(&log, rank, |k| matches!(k, FaultKind::RankPanic))
                        >= self.spec.max_panics_per_rank
                {
                    return None;
                }
            }
            FaultKind::BitFlip { bit } => {
                let Some(buf) = payload.filter(|b| !b.is_empty()) else {
                    return None; // payload-free call site: draw discarded
                };
                if !scripted
                    && spent(&log, rank, |k| matches!(k, FaultKind::BitFlip { .. }))
                        >= self.spec.max_flips_per_rank
                {
                    return None;
                }
                let word = (mix(self
                    .seed
                    .wrapping_add(attempt)
                    .wrapping_add(seq)
                    .wrapping_add(6)) as usize)
                    % buf.len();
                buf[word] = f64::from_bits(buf[word].to_bits() ^ (1u64 << bit));
            }
            FaultKind::Straggle { .. } => {}
        }
        log.push(FaultEvent {
            attempt,
            rank,
            seq,
            kind,
        });
        Some(kind)
    }
}

impl std::fmt::Debug for FaultPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FaultPlan")
            .field("seed", &self.seed)
            .field("spec", &self.spec)
            .field("attempt", &self.attempt())
            .field("scripted", &self.scripted.len())
            .field("injected", &self.injected())
            .finish()
    }
}

/// Install a process-wide panic hook that silences the default "thread
/// panicked" banner for *injected* faults and world aborts, keeping chaos
/// runs readable. Real (non-injected) panics still print. Idempotent
/// enough for tests: wraps whatever hook is current at first call.
pub fn install_quiet_panic_hook() {
    use std::sync::Once;
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let payload = info.payload();
            if payload
                .downcast_ref::<crate::comm::InjectedPanic>()
                .is_some()
                || payload
                    .downcast_ref::<crate::comm::WorldAborted>()
                    .is_some()
            {
                return;
            }
            previous(info);
        }));
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decisions_are_deterministic_and_seed_sensitive() {
        let a = FaultPlan::new(7, FaultSpec::heavy());
        let b = FaultPlan::new(7, FaultSpec::heavy());
        let c = FaultPlan::new(8, FaultSpec::heavy());
        let seq_of = |p: &FaultPlan| -> Vec<Option<FaultKind>> {
            (0..4)
                .flat_map(|rank| (0..500).map(move |seq| (rank, seq)))
                .map(|(rank, seq)| p.preview(0, rank, seq))
                .collect()
        };
        assert_eq!(seq_of(&a), seq_of(&b));
        assert_ne!(seq_of(&a), seq_of(&c), "different seeds must differ");
        assert!(
            seq_of(&a).iter().any(|k| k.is_some()),
            "heavy spec injects something in 2000 draws"
        );
    }

    #[test]
    fn attempt_rekeys_the_schedule() {
        let p = FaultPlan::new(11, FaultSpec::heavy());
        let at = |attempt| -> Vec<Option<FaultKind>> {
            (0..2000).map(|seq| p.preview(attempt, 0, seq)).collect()
        };
        assert_ne!(at(0), at(1));
    }

    #[test]
    fn scripted_events_fire_exactly_once_at_their_point() {
        let p = FaultPlan::scripted(0).with_event(2, 1, 5, FaultKind::RankPanic);
        assert_eq!(p.preview(2, 1, 5), Some(FaultKind::RankPanic));
        assert_eq!(p.preview(2, 1, 6), None);
        assert_eq!(p.preview(2, 0, 5), None);
        assert_eq!(p.preview(1, 1, 5), None);
    }

    #[test]
    fn bitflip_corrupts_exactly_one_bit_of_the_payload() {
        let p = FaultPlan::scripted(3).with_event(0, 0, 0, FaultKind::BitFlip { bit: 52 });
        let mut buf = vec![1.0f64, 2.0, 3.0];
        let before = buf.clone();
        let kind = p.poll(0, 0, Some(&mut buf));
        assert_eq!(kind, Some(FaultKind::BitFlip { bit: 52 }));
        let flipped: Vec<usize> = buf
            .iter()
            .zip(&before)
            .enumerate()
            .filter(|(_, (a, b))| a != b)
            .map(|(i, _)| i)
            .collect();
        assert_eq!(flipped.len(), 1, "exactly one word corrupted");
        let i = flipped[0];
        assert_eq!(buf[i].to_bits() ^ before[i].to_bits(), 1u64 << 52);
        assert_eq!(p.events().len(), 1);
    }

    #[test]
    fn bitflip_without_payload_is_discarded_and_not_logged() {
        let p = FaultPlan::scripted(3).with_event(0, 0, 0, FaultKind::BitFlip { bit: 52 });
        assert_eq!(p.poll(0, 0, None), None);
        assert!(p.events().is_empty());
    }

    #[test]
    fn per_rank_budgets_cap_probabilistic_panics() {
        let mut spec = FaultSpec::heavy();
        spec.panic_ppm = 1_000_000; // every call wants to panic
        spec.max_panics_per_rank = 2;
        let p = FaultPlan::new(9, spec);
        let fired: Vec<_> = (0..10).filter_map(|seq| p.poll(0, seq, None)).collect();
        assert_eq!(fired.len(), 2, "budget caps injections: {fired:?}");
    }

    #[test]
    fn event_log_is_sorted_and_attempt_tagged() {
        let p = FaultPlan::scripted(0)
            .with_event(1, 0, 3, FaultKind::RankPanic)
            .with_event(0, 1, 1, FaultKind::Straggle { millis: 0 });
        p.set_attempt(1);
        p.poll(0, 3, None);
        p.set_attempt(0);
        p.poll(1, 1, None);
        let ev = p.events();
        assert_eq!(ev.len(), 2);
        assert_eq!((ev[0].attempt, ev[0].rank, ev[0].seq), (0, 1, 1));
        assert_eq!((ev[1].attempt, ev[1].rank, ev[1].seq), (1, 0, 3));
    }
}
