//! The [`World`] (shared collective state) and per-rank [`Communicator`].

use std::sync::{Arc, Condvar, Mutex};

use crate::collectives::{combine, CollOp, ReduceOp};

/// Shared state of one communicator world.
///
/// Collectives are globally ordered: every rank must call the same
/// collective operation in the same sequence (standard MPI contract).
/// The implementation is a sense-reversing barrier carrying a payload:
/// each rank deposits its contribution under the lock; the last arriver
/// combines all contributions (in rank order, for determinism) and flips
/// the sense; woken ranks pick up an `Arc` of the result.
pub struct World {
    size: usize,
    round: Mutex<Round>,
    cv: Condvar,
}

struct Round {
    arrived: usize,
    sense: bool,
    op: Option<CollOp>,
    contributions: Vec<Option<Vec<f64>>>,
    result: Option<Arc<Vec<Vec<f64>>>>,
}

impl World {
    /// Create a world of `size` ranks.
    pub fn new(size: usize) -> Arc<Self> {
        assert!(size > 0, "world needs at least one rank");
        Arc::new(World {
            size,
            round: Mutex::new(Round {
                arrived: 0,
                sense: false,
                op: None,
                contributions: vec![None; size],
                result: None,
            }),
            cv: Condvar::new(),
        })
    }

    /// Communicator handle for `rank`.
    pub fn communicator(self: &Arc<Self>, rank: usize) -> Communicator {
        assert!(rank < self.size, "rank {rank} out of range");
        Communicator {
            rank,
            world: Arc::clone(self),
        }
    }

    fn collective(
        &self,
        rank: usize,
        op: CollOp,
        contribution: Option<Vec<f64>>,
    ) -> Arc<Vec<Vec<f64>>> {
        let mut round = self.round.lock().expect("world lock poisoned");
        match round.op {
            None => round.op = Some(op),
            Some(existing) => assert_eq!(
                existing, op,
                "collective mismatch: rank {rank} called {op:?} while the round runs {existing:?}"
            ),
        }
        assert!(
            round.contributions[rank].is_none() || contribution.is_none(),
            "rank {rank} contributed twice to one round"
        );
        round.contributions[rank] = contribution;
        round.arrived += 1;
        let my_sense = round.sense;
        if round.arrived == self.size {
            // Last arriver: combine in rank order and release the others.
            let contribs = std::mem::replace(&mut round.contributions, vec![None; self.size]);
            round.result = Some(Arc::new(combine(op, contribs)));
            round.arrived = 0;
            round.op = None;
            round.sense = !round.sense;
            self.cv.notify_all();
            return Arc::clone(round.result.as_ref().expect("result just set"));
        }
        loop {
            round = self.cv.wait(round).expect("world lock poisoned");
            if round.sense != my_sense {
                return Arc::clone(round.result.as_ref().expect("result set by last arriver"));
            }
        }
    }
}

/// Per-rank handle into a [`World`]. Clone-free; create one per rank.
pub struct Communicator {
    rank: usize,
    world: Arc<World>,
}

impl Communicator {
    /// This rank's id, `0..size`.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of ranks in the world.
    pub fn size(&self) -> usize {
        self.world.size
    }

    /// Synchronize all ranks.
    pub fn barrier(&self) {
        self.world
            .collective(self.rank, CollOp::Barrier, Some(Vec::new()));
    }

    /// Element-wise allreduce of `buf` in place; all ranks must pass
    /// equal-length buffers.
    pub fn allreduce(&self, op: ReduceOp, buf: &mut [f64]) {
        let result = self
            .world
            .collective(self.rank, CollOp::Allreduce(op), Some(buf.to_vec()));
        buf.copy_from_slice(&result[0]);
    }

    /// Scalar allreduce convenience.
    pub fn allreduce_scalar(&self, op: ReduceOp, v: f64) -> f64 {
        let mut buf = [v];
        self.allreduce(op, &mut buf);
        buf[0]
    }

    /// Gather every rank's buffer on every rank (buffers may differ in
    /// length). Returns one `Vec` per rank, in rank order.
    pub fn allgather(&self, buf: &[f64]) -> Vec<Vec<f64>> {
        let result = self
            .world
            .collective(self.rank, CollOp::Allgather, Some(buf.to_vec()));
        result.as_ref().clone()
    }

    /// Broadcast `buf` from `root` to every rank. On non-root ranks `buf`
    /// is resized to the root's length.
    pub fn bcast(&self, root: usize, buf: &mut Vec<f64>) {
        let contribution = (self.rank == root).then(|| buf.clone());
        let result = self
            .world
            .collective(self.rank, CollOp::Bcast { root }, contribution);
        buf.clear();
        buf.extend_from_slice(&result[0]);
    }
}

/// Run `f` on `size` ranks (threads) sharing one world; returns the
/// per-rank results in rank order.
pub fn run<R, F>(size: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(Communicator) -> R + Sync,
{
    let world = World::new(size);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..size)
            .map(|rank| {
                let comm = world.communicator(rank);
                let f = &f;
                scope.spawn(move || f(comm))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("rank panicked"))
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allreduce_sum_is_replicated() {
        for size in [1usize, 2, 3, 8] {
            let out = run(size, |c| {
                c.allreduce_scalar(ReduceOp::Sum, (c.rank() + 1) as f64)
            });
            let want = (size * (size + 1) / 2) as f64;
            assert_eq!(out, vec![want; size]);
        }
    }

    #[test]
    fn allreduce_max_and_min() {
        let out = run(5, |c| {
            let max = c.allreduce_scalar(ReduceOp::Max, c.rank() as f64);
            let min = c.allreduce_scalar(ReduceOp::Min, c.rank() as f64);
            (max, min)
        });
        assert!(out.iter().all(|&(mx, mn)| mx == 4.0 && mn == 0.0));
    }

    #[test]
    fn vector_allreduce_is_elementwise() {
        let out = run(3, |c| {
            let mut buf = vec![c.rank() as f64, 10.0 * c.rank() as f64];
            c.allreduce(ReduceOp::Sum, &mut buf);
            buf
        });
        assert_eq!(out, vec![vec![3.0, 30.0]; 3]);
    }

    #[test]
    fn bcast_replicates_root_buffer() {
        let out = run(4, |c| {
            let mut buf = if c.rank() == 2 {
                vec![1.0, 2.0, 3.0]
            } else {
                vec![]
            };
            c.bcast(2, &mut buf);
            buf
        });
        assert_eq!(out, vec![vec![1.0, 2.0, 3.0]; 4]);
    }

    #[test]
    fn allgather_keeps_rank_order_with_ragged_buffers() {
        let out = run(3, |c| {
            let mine = vec![c.rank() as f64; c.rank()];
            c.allgather(&mine)
        });
        let want = vec![vec![], vec![1.0], vec![2.0, 2.0]];
        assert!(out.iter().all(|o| *o == want));
    }

    #[test]
    fn many_back_to_back_collectives_do_not_interleave() {
        let out = run(4, |c| {
            let mut acc = 0.0;
            for i in 0..200 {
                acc += c.allreduce_scalar(ReduceOp::Sum, i as f64 + c.rank() as f64);
                if i % 17 == 0 {
                    c.barrier();
                }
            }
            acc
        });
        assert!(out.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn reduction_order_is_deterministic_across_runs() {
        // Values chosen so floating-point addition order matters.
        let values = [1e16, 1.0, -1e16, 1.0];
        let first = run(4, |c| c.allreduce_scalar(ReduceOp::Sum, values[c.rank()]));
        for _ in 0..10 {
            let again = run(4, |c| c.allreduce_scalar(ReduceOp::Sum, values[c.rank()]));
            assert_eq!(first, again);
        }
    }

    #[test]
    fn single_rank_world_is_trivial() {
        let out = run(1, |c| {
            c.barrier();
            let mut buf = vec![5.0];
            c.allreduce(ReduceOp::Sum, &mut buf);
            c.bcast(0, &mut buf);
            buf[0]
        });
        assert_eq!(out, vec![5.0]);
    }
}
