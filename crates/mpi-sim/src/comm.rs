//! The [`World`] (shared collective state) and per-rank [`Communicator`].

use std::cell::Cell;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

use crate::collectives::{combine, CollOp, ReduceOp};
use crate::fault::{FaultKind, FaultPlan};

/// Why a world was torn down before every rank finished.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AbortCause {
    /// A rank panicked (injected fault or real bug) mid-run.
    RankFailure {
        /// The rank that died.
        rank: usize,
    },
    /// A rank waited longer than the configured collective timeout.
    CollectiveTimeout {
        /// The rank whose wait expired.
        rank: usize,
    },
}

/// Panic payload used when a fault plan kills a rank. Public so callers
/// (and the quiet panic hook) can recognize injected failures.
#[derive(Debug, Clone, Copy)]
pub struct InjectedPanic {
    /// The rank being killed.
    pub rank: usize,
}

/// Panic payload used to fail the *sibling* ranks of an aborted world, so
/// no rank blocks forever on a collective a dead rank will never join.
#[derive(Debug, Clone, Copy)]
pub struct WorldAborted(pub AbortCause);

/// Failure summary returned by [`try_run`] when any rank died.
#[derive(Debug, Clone)]
pub struct FaultError {
    /// Primary cause, when the world abort path recorded one.
    pub cause: Option<AbortCause>,
    /// Every rank whose thread panicked (injected, aborted, or real).
    pub panicked: Vec<usize>,
    /// Human-readable summary.
    pub message: String,
}

impl std::fmt::Display for FaultError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for FaultError {}

/// Optional failure knobs of a [`World`].
#[derive(Default, Clone)]
pub struct WorldOptions {
    /// Deterministic fault schedule consulted at every collective call.
    pub faults: Option<Arc<FaultPlan>>,
    /// Abort the world if any rank waits longer than this inside one
    /// collective (stragglers beyond the bound become detected timeouts).
    pub collective_timeout: Option<Duration>,
}

/// Shared state of one communicator world.
///
/// Collectives are globally ordered: every rank must call the same
/// collective operation in the same sequence (standard MPI contract).
/// The implementation is a sense-reversing barrier carrying a payload:
/// each rank deposits its contribution under the lock; the last arriver
/// combines all contributions (in rank order, for determinism) and flips
/// the sense; woken ranks pick up an `Arc` of the result.
///
/// A world can be *aborted* ([`World::abort`]): every rank parked in (or
/// later entering) a collective panics with [`WorldAborted`] instead of
/// deadlocking on a rank that will never arrive. [`try_run`] converts
/// those panics into a [`FaultError`].
pub struct World {
    size: usize,
    round: Mutex<Round>,
    cv: Condvar,
    opts: WorldOptions,
}

struct Round {
    arrived: usize,
    sense: bool,
    op: Option<CollOp>,
    contributions: Vec<Option<Vec<f64>>>,
    result: Option<Arc<Vec<Vec<f64>>>>,
    aborted: Option<AbortCause>,
}

impl World {
    /// Create a world of `size` ranks with no fault injection.
    pub fn new(size: usize) -> Arc<Self> {
        World::with_options(size, WorldOptions::default())
    }

    /// Create a world with fault-injection / timeout options.
    pub fn with_options(size: usize, opts: WorldOptions) -> Arc<Self> {
        assert!(size > 0, "world needs at least one rank");
        Arc::new(World {
            size,
            round: Mutex::new(Round {
                arrived: 0,
                sense: false,
                op: None,
                contributions: vec![None; size],
                result: None,
                aborted: None,
            }),
            cv: Condvar::new(),
            opts,
        })
    }

    /// Communicator handle for `rank`.
    pub fn communicator(self: &Arc<Self>, rank: usize) -> Communicator {
        assert!(rank < self.size, "rank {rank} out of range");
        Communicator {
            rank,
            world: Arc::clone(self),
            fault_seq: Cell::new(0),
        }
    }

    /// Lock the round, tolerating poisoning: a rank that panics while
    /// parked in `Condvar::wait` poisons the mutex, but the round state is
    /// still consistent (the abort flag is what matters from then on).
    fn lock_round(&self) -> MutexGuard<'_, Round> {
        match self.round.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Mark the world failed and wake every parked rank. First cause wins.
    pub fn abort(&self, cause: AbortCause) {
        let mut round = self.lock_round();
        if round.aborted.is_none() {
            round.aborted = Some(cause);
        }
        self.cv.notify_all();
    }

    /// The abort cause, if the world has failed.
    pub fn aborted(&self) -> Option<AbortCause> {
        self.lock_round().aborted
    }

    fn collective(
        &self,
        rank: usize,
        op: CollOp,
        contribution: Option<Vec<f64>>,
    ) -> Arc<Vec<Vec<f64>>> {
        let mut round = self.lock_round();
        if let Some(cause) = round.aborted {
            drop(round);
            std::panic::panic_any(WorldAborted(cause));
        }
        match round.op {
            None => round.op = Some(op),
            Some(existing) => assert_eq!(
                existing, op,
                "collective mismatch: rank {rank} called {op:?} while the round runs {existing:?}"
            ),
        }
        assert!(
            round.contributions[rank].is_none() || contribution.is_none(),
            "rank {rank} contributed twice to one round"
        );
        round.contributions[rank] = contribution;
        round.arrived += 1;
        let my_sense = round.sense;
        if round.arrived == self.size {
            // Last arriver: combine in rank order and release the others.
            let contribs = std::mem::replace(&mut round.contributions, vec![None; self.size]);
            round.result = Some(Arc::new(combine(op, contribs)));
            round.arrived = 0;
            round.op = None;
            round.sense = !round.sense;
            self.cv.notify_all();
            return Arc::clone(round.result.as_ref().expect("result just set"));
        }
        // gaia-analyze: allow(timing): collective timeouts need a real
        // deadline clock — this detects hung ranks, it measures nothing.
        let deadline = self.opts.collective_timeout.map(|t| Instant::now() + t);
        loop {
            round = match deadline {
                None => match self.cv.wait(round) {
                    Ok(guard) => guard,
                    Err(poisoned) => poisoned.into_inner(),
                },
                Some(deadline) => {
                    // gaia-analyze: allow(timing): deadline check for the
                    // hung-rank timeout above, not a measurement.
                    let now = Instant::now();
                    if now >= deadline {
                        // This rank's wait expired: fail the whole world
                        // (MPI jobs die collectively on a lost rank).
                        if round.aborted.is_none() {
                            round.aborted = Some(AbortCause::CollectiveTimeout { rank });
                        }
                        let cause = round.aborted.expect("just set");
                        drop(round);
                        self.cv.notify_all();
                        std::panic::panic_any(WorldAborted(cause));
                    }
                    match self.cv.wait_timeout(round, deadline - now) {
                        Ok((guard, _)) => guard,
                        Err(poisoned) => poisoned.into_inner().0,
                    }
                }
            };
            if let Some(cause) = round.aborted {
                drop(round);
                std::panic::panic_any(WorldAborted(cause));
            }
            if round.sense != my_sense {
                return Arc::clone(round.result.as_ref().expect("result set by last arriver"));
            }
        }
    }
}

/// Per-rank handle into a [`World`]. Clone-free; create one per rank.
pub struct Communicator {
    rank: usize,
    world: Arc<World>,
    /// Per-rank collective sequence number; with the globally ordered
    /// collective contract this is identical across ranks at each call
    /// site, which is what makes fault schedules reproducible.
    fault_seq: Cell<u64>,
}

impl Communicator {
    /// This rank's id, `0..size`.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of ranks in the world.
    pub fn size(&self) -> usize {
        self.world.size
    }

    /// Collective calls made so far on this rank (the fault-schedule
    /// sequence number of the *next* collective).
    pub fn collective_seq(&self) -> u64 {
        self.fault_seq.get()
    }

    /// Consult the fault plan at the entry of a collective; `payload` is
    /// this rank's contribution when the op carries one (bit-flips mutate
    /// it in place before it is deposited).
    fn inject(&self, payload: Option<&mut [f64]>) {
        let seq = self.fault_seq.get();
        self.fault_seq.set(seq + 1);
        let Some(plan) = &self.world.opts.faults else {
            return;
        };
        match plan.poll(self.rank, seq, payload) {
            None => {}
            Some(FaultKind::RankPanic) => {
                self.world
                    .abort(AbortCause::RankFailure { rank: self.rank });
                std::panic::panic_any(InjectedPanic { rank: self.rank });
            }
            Some(FaultKind::Straggle { millis }) => {
                // Bounded delay: with no collective timeout configured the
                // siblings simply wait; with one, a long enough straggle
                // becomes a detected timeout.
                std::thread::sleep(Duration::from_millis(millis));
            }
            Some(FaultKind::BitFlip { .. }) => {} // already applied in place
        }
    }

    /// Synchronize all ranks.
    pub fn barrier(&self) {
        self.inject(None);
        self.world
            .collective(self.rank, CollOp::Barrier, Some(Vec::new()));
    }

    /// Element-wise allreduce of `buf` in place; all ranks must pass
    /// equal-length buffers.
    pub fn allreduce(&self, op: ReduceOp, buf: &mut [f64]) {
        let mut contribution = buf.to_vec();
        self.inject(Some(&mut contribution));
        let result = self
            .world
            .collective(self.rank, CollOp::Allreduce(op), Some(contribution));
        buf.copy_from_slice(&result[0]);
    }

    /// Scalar allreduce convenience.
    pub fn allreduce_scalar(&self, op: ReduceOp, v: f64) -> f64 {
        let mut buf = [v];
        self.allreduce(op, &mut buf);
        buf[0]
    }

    /// Gather every rank's buffer on every rank (buffers may differ in
    /// length). Returns one `Vec` per rank, in rank order.
    pub fn allgather(&self, buf: &[f64]) -> Vec<Vec<f64>> {
        self.inject(None);
        let result = self
            .world
            .collective(self.rank, CollOp::Allgather, Some(buf.to_vec()));
        result.as_ref().clone()
    }

    /// Broadcast `buf` from `root` to every rank. On non-root ranks `buf`
    /// is resized to the root's length.
    pub fn bcast(&self, root: usize, buf: &mut Vec<f64>) {
        self.inject(None);
        let contribution = (self.rank == root).then(|| buf.clone());
        let result = self
            .world
            .collective(self.rank, CollOp::Bcast { root }, contribution);
        buf.clear();
        buf.extend_from_slice(&result[0]);
    }
}

/// Run `f` on `size` ranks (threads) sharing one world; returns the
/// per-rank results in rank order.
pub fn run<R, F>(size: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(Communicator) -> R + Sync,
{
    try_run(size, WorldOptions::default(), f).expect("rank panicked")
}

/// Fault-aware variant of [`run`]: execute `f` on `size` ranks under
/// `opts`. Any rank panic (injected or real) aborts the whole world —
/// sibling ranks parked in collectives fail fast instead of deadlocking —
/// and is reported as a [`FaultError`] naming the panicked ranks.
pub fn try_run<R, F>(size: usize, opts: WorldOptions, f: F) -> Result<Vec<R>, FaultError>
where
    R: Send,
    F: Fn(Communicator) -> R + Sync,
{
    use std::panic::{catch_unwind, AssertUnwindSafe};

    let world = World::with_options(size, opts);
    // gaia-analyze: allow(thread-spawn): each simulated MPI rank is a peer
    // OS thread with its own blocking collectives — pool jobs must not
    // block on each other, so the executor pool is the wrong tool here.
    let outcomes: Vec<Result<R, Box<dyn std::any::Any + Send>>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..size)
            .map(|rank| {
                let comm = world.communicator(rank);
                let f = &f;
                let world = Arc::clone(&world);
                scope.spawn(move || {
                    let out = catch_unwind(AssertUnwindSafe(|| f(comm)));
                    if out.is_err() {
                        // A panic anywhere (fault plan, backend kernel,
                        // assertion) must not strand the other ranks.
                        world.abort(AbortCause::RankFailure { rank });
                    }
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("rank thread itself crashed"))
            .collect()
    });

    let panicked: Vec<usize> = outcomes
        .iter()
        .enumerate()
        .filter_map(|(rank, o)| o.is_err().then_some(rank))
        .collect();
    if panicked.is_empty() {
        return Ok(outcomes
            .into_iter()
            .map(|o| o.unwrap_or_else(|_| unreachable!("checked: no rank panicked")))
            .collect());
    }
    let cause = world.aborted();
    // Distinguish injected faults from genuine bugs in the message; the
    // payloads themselves are recognized by the quiet panic hook.
    let injected = outcomes.iter().any(|o| {
        o.as_ref().err().is_some_and(|p| {
            p.downcast_ref::<InjectedPanic>().is_some()
                || p.downcast_ref::<WorldAborted>().is_some()
        })
    });
    Err(FaultError {
        cause,
        panicked: panicked.clone(),
        message: format!(
            "{} rank(s) {:?} failed ({}), cause {:?}",
            panicked.len(),
            panicked,
            if injected { "injected fault" } else { "panic" },
            cause
        ),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allreduce_sum_is_replicated() {
        for size in [1usize, 2, 3, 8] {
            let out = run(size, |c| {
                c.allreduce_scalar(ReduceOp::Sum, (c.rank() + 1) as f64)
            });
            let want = (size * (size + 1) / 2) as f64;
            assert_eq!(out, vec![want; size]);
        }
    }

    #[test]
    fn allreduce_max_and_min() {
        let out = run(5, |c| {
            let max = c.allreduce_scalar(ReduceOp::Max, c.rank() as f64);
            let min = c.allreduce_scalar(ReduceOp::Min, c.rank() as f64);
            (max, min)
        });
        assert!(out.iter().all(|&(mx, mn)| mx == 4.0 && mn == 0.0));
    }

    #[test]
    fn vector_allreduce_is_elementwise() {
        let out = run(3, |c| {
            let mut buf = vec![c.rank() as f64, 10.0 * c.rank() as f64];
            c.allreduce(ReduceOp::Sum, &mut buf);
            buf
        });
        assert_eq!(out, vec![vec![3.0, 30.0]; 3]);
    }

    #[test]
    fn bcast_replicates_root_buffer() {
        let out = run(4, |c| {
            let mut buf = if c.rank() == 2 {
                vec![1.0, 2.0, 3.0]
            } else {
                vec![]
            };
            c.bcast(2, &mut buf);
            buf
        });
        assert_eq!(out, vec![vec![1.0, 2.0, 3.0]; 4]);
    }

    #[test]
    fn allgather_keeps_rank_order_with_ragged_buffers() {
        let out = run(3, |c| {
            let mine = vec![c.rank() as f64; c.rank()];
            c.allgather(&mine)
        });
        let want = vec![vec![], vec![1.0], vec![2.0, 2.0]];
        assert!(out.iter().all(|o| *o == want));
    }

    #[test]
    fn many_back_to_back_collectives_do_not_interleave() {
        let out = run(4, |c| {
            let mut acc = 0.0;
            for i in 0..200 {
                acc += c.allreduce_scalar(ReduceOp::Sum, i as f64 + c.rank() as f64);
                if i % 17 == 0 {
                    c.barrier();
                }
            }
            acc
        });
        assert!(out.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn reduction_order_is_deterministic_across_runs() {
        // Values chosen so floating-point addition order matters.
        let values = [1e16, 1.0, -1e16, 1.0];
        let first = run(4, |c| c.allreduce_scalar(ReduceOp::Sum, values[c.rank()]));
        for _ in 0..10 {
            let again = run(4, |c| c.allreduce_scalar(ReduceOp::Sum, values[c.rank()]));
            assert_eq!(first, again);
        }
    }

    #[test]
    fn single_rank_world_is_trivial() {
        let out = run(1, |c| {
            c.barrier();
            let mut buf = vec![5.0];
            c.allreduce(ReduceOp::Sum, &mut buf);
            c.bcast(0, &mut buf);
            buf[0]
        });
        assert_eq!(out, vec![5.0]);
    }

    mod faulty {
        use super::*;
        use crate::fault::{install_quiet_panic_hook, FaultKind, FaultPlan, FaultSpec};

        fn opts(plan: Arc<FaultPlan>) -> WorldOptions {
            WorldOptions {
                faults: Some(plan),
                collective_timeout: None,
            }
        }

        #[test]
        fn scripted_rank_panic_fails_the_world_without_deadlock() {
            install_quiet_panic_hook();
            let plan = Arc::new(FaultPlan::scripted(7).with_event(0, 1, 2, FaultKind::RankPanic));
            let err = try_run(3, opts(Arc::clone(&plan)), |c| {
                let mut acc = 0.0;
                for i in 0..10 {
                    acc += c.allreduce_scalar(ReduceOp::Sum, i as f64);
                }
                acc
            })
            .expect_err("rank 1 must die");
            assert!(err.panicked.contains(&1), "panicked: {:?}", err.panicked);
            assert_eq!(err.cause, Some(AbortCause::RankFailure { rank: 1 }));
            let injected = plan.events();
            assert_eq!(injected.len(), 1);
            assert_eq!(injected[0].kind, FaultKind::RankPanic);
        }

        #[test]
        fn scripted_bitflip_corrupts_exactly_one_contribution() {
            let plan = Arc::new(FaultPlan::scripted(9).with_event(
                0,
                0,
                0,
                FaultKind::BitFlip { bit: 52 },
            ));
            let clean = run(2, |c| {
                c.allreduce_scalar(ReduceOp::Sum, (c.rank() + 1) as f64)
            });
            let dirty = try_run(2, opts(plan), |c| {
                c.allreduce_scalar(ReduceOp::Sum, (c.rank() + 1) as f64)
            })
            .expect("bit-flip must not kill ranks");
            // All ranks agree on the (corrupted) result, which differs from
            // the clean run by exactly rank 0's flipped contribution.
            assert_eq!(dirty[0], dirty[1]);
            assert_ne!(dirty[0], clean[0]);
            let delta = dirty[0] - clean[0];
            let flipped = f64::from_bits(1.0f64.to_bits() ^ (1u64 << 52));
            assert!((delta - (flipped - 1.0)).abs() < 1e-12, "delta {delta}");
        }

        #[test]
        fn straggler_is_tolerated_without_timeout() {
            let plan = Arc::new(FaultPlan::scripted(3).with_event(
                0,
                1,
                1,
                FaultKind::Straggle { millis: 20 },
            ));
            let out = try_run(3, opts(plan), |c| {
                let a = c.allreduce_scalar(ReduceOp::Sum, 1.0);
                let b = c.allreduce_scalar(ReduceOp::Sum, 2.0);
                a + b
            })
            .expect("straggle is benign without a timeout");
            assert_eq!(out, vec![9.0; 3]);
        }

        #[test]
        fn dead_rank_with_collective_timeout_is_detected() {
            install_quiet_panic_hook();
            // Rank 2 dies on its first collective; the survivors' waits
            // expire and the world reports a failure instead of hanging.
            let plan = Arc::new(FaultPlan::scripted(11).with_event(0, 2, 0, FaultKind::RankPanic));
            let err = try_run(
                3,
                WorldOptions {
                    faults: Some(plan),
                    collective_timeout: Some(Duration::from_millis(200)),
                },
                |c| c.allreduce_scalar(ReduceOp::Sum, 1.0),
            )
            .expect_err("world must fail");
            assert!(!err.panicked.is_empty());
            assert!(err.cause.is_some());
        }

        #[test]
        fn probabilistic_plan_is_reproducible_end_to_end() {
            install_quiet_panic_hook();
            let spec = FaultSpec {
                panic_ppm: 0,
                ..FaultSpec::heavy()
            };
            let runs: Vec<Vec<f64>> = (0..2)
                .map(|_| {
                    let plan = Arc::new(FaultPlan::new(42, spec));
                    try_run(4, opts(plan), |c| {
                        let mut acc = 0.0;
                        for i in 0..50 {
                            acc += c.allreduce_scalar(ReduceOp::Sum, i as f64 + c.rank() as f64);
                        }
                        acc
                    })
                    .expect("no panics with panic_ppm=0")
                })
                .collect();
            assert_eq!(runs[0], runs[1], "same seed must give the same run");
        }
    }
}
