//! Reduction operators and the combine step of each collective.

/// Element-wise reduction operator (the subset of `MPI_Op` the solver
/// needs: norms and scalar/vector sums use `Sum`, the paper's "iteration
/// time maximized among all MPI processes" uses `Max`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReduceOp {
    /// Element-wise sum.
    Sum,
    /// Element-wise maximum.
    Max,
    /// Element-wise minimum.
    Min,
}

impl ReduceOp {
    /// Apply the operator to an accumulator element.
    #[inline]
    pub fn apply(self, acc: f64, v: f64) -> f64 {
        match self {
            ReduceOp::Sum => acc + v,
            ReduceOp::Max => acc.max(v),
            ReduceOp::Min => acc.min(v),
        }
    }
}

/// The collective being executed; all ranks of a round must agree
/// (mismatches panic, catching the classic deadlock bug at its source).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CollOp {
    /// Synchronization only.
    Barrier,
    /// Element-wise reduction, result replicated to all ranks.
    Allreduce(ReduceOp),
    /// Every rank receives every rank's buffer.
    Allgather,
    /// Root's buffer replicated to all ranks.
    Bcast {
        /// Broadcasting rank.
        root: usize,
    },
}

/// Combine the per-rank contributions of one round, in rank order.
pub fn combine(op: CollOp, contributions: Vec<Option<Vec<f64>>>) -> Vec<Vec<f64>> {
    match op {
        CollOp::Barrier => Vec::new(),
        CollOp::Allreduce(r) => {
            let mut iter = contributions
                .into_iter()
                .map(|c| c.expect("allreduce: every rank must contribute"));
            let mut acc = iter.next().expect("allreduce on empty world");
            for contrib in iter {
                assert_eq!(
                    contrib.len(),
                    acc.len(),
                    "allreduce: buffer lengths differ across ranks"
                );
                for (a, v) in acc.iter_mut().zip(contrib) {
                    *a = r.apply(*a, v);
                }
            }
            vec![acc]
        }
        CollOp::Allgather => contributions
            .into_iter()
            .map(|c| c.expect("allgather: every rank must contribute"))
            .collect(),
        CollOp::Bcast { root } => {
            let buf = contributions
                .into_iter()
                .nth(root)
                .flatten()
                .expect("bcast: root must contribute");
            vec![buf]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reduce_ops_apply_correctly() {
        assert_eq!(ReduceOp::Sum.apply(1.0, 2.0), 3.0);
        assert_eq!(ReduceOp::Max.apply(1.0, 2.0), 2.0);
        assert_eq!(ReduceOp::Min.apply(1.0, 2.0), 1.0);
    }

    #[test]
    fn combine_allreduce_is_rank_ordered() {
        let contribs = vec![Some(vec![1.0]), Some(vec![2.0]), Some(vec![4.0])];
        let out = combine(CollOp::Allreduce(ReduceOp::Sum), contribs);
        assert_eq!(out, vec![vec![7.0]]);
    }

    #[test]
    fn combine_bcast_picks_root() {
        let contribs = vec![None, Some(vec![9.0, 8.0]), None];
        let out = combine(CollOp::Bcast { root: 1 }, contribs);
        assert_eq!(out, vec![vec![9.0, 8.0]]);
    }

    #[test]
    fn combine_allgather_preserves_order_and_shape() {
        let contribs = vec![Some(vec![1.0]), Some(vec![]), Some(vec![2.0, 3.0])];
        let out = combine(CollOp::Allgather, contribs);
        assert_eq!(out, vec![vec![1.0], vec![], vec![2.0, 3.0]]);
    }

    #[test]
    #[should_panic(expected = "lengths differ")]
    fn combine_allreduce_rejects_ragged_buffers() {
        combine(
            CollOp::Allreduce(ReduceOp::Sum),
            vec![Some(vec![1.0]), Some(vec![1.0, 2.0])],
        );
    }
}
