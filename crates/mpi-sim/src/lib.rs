//! # gaia-mpi-sim
//!
//! An in-process, thread-backed stand-in for the MPI layer of the
//! production AVU-GSR solver ("the Gaia AVU-GSR code leverages distributed
//! systems via MPI, where each MPI rank processes a subset of the
//! observations", §IV).
//!
//! Ranks are OS threads sharing a [`World`]; collectives follow MPI
//! semantics (every rank calls the same collective in the same order) and
//! reductions are applied in **rank order**, so results are bit-for-bit
//! deterministic regardless of thread scheduling — a property the tests
//! rely on when comparing a distributed solve against a single-rank solve.
//!
//! ```
//! use gaia_mpi_sim::{run, ReduceOp};
//!
//! let results = run(4, |comm| {
//!     let mut buf = vec![comm.rank() as f64 + 1.0];
//!     comm.allreduce(ReduceOp::Sum, &mut buf);
//!     buf[0]
//! });
//! assert_eq!(results, vec![10.0; 4]);
//! ```

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

pub mod collectives;
pub mod comm;
pub mod fault;
pub mod p2p;

pub use collectives::ReduceOp;
pub use comm::{
    run, try_run, AbortCause, Communicator, FaultError, InjectedPanic, World, WorldAborted,
    WorldOptions,
};
pub use fault::{install_quiet_panic_hook, FaultEvent, FaultKind, FaultPlan, FaultSpec};
pub use p2p::{ring_allreduce, Mesh};
