//! Point-to-point messaging and algorithms built on it.
//!
//! The collectives in [`crate::comm`] are "magic" shared-memory
//! reductions; real MPI implementations build them from point-to-point
//! sends. This module provides typed p2p channels between ranks and a
//! textbook **ring allreduce** implemented on top — the algorithm the
//! multi-node model in `gaia-gpu-sim::scaling` prices, here as executable
//! code validated against the built-in collective.
//!
//! A [`Mesh`] owns one MPSC channel per directed rank pair, created up
//! front; `send`/`recv` are tag-free and ordered per pair (MPI's
//! non-overtaking guarantee for a single communicator).

use std::sync::mpsc::{Receiver, Sender};
use std::sync::Mutex;

/// All-pairs channel mesh for `size` ranks.
pub struct Mesh {
    size: usize,
    // senders[src][dst], receivers[dst][src] behind mutexes so each rank
    // thread can take its endpoints.
    senders: Vec<Vec<Sender<Vec<f64>>>>,
    receivers: Vec<Vec<Mutex<Receiver<Vec<f64>>>>>,
}

impl Mesh {
    /// Build the mesh.
    pub fn new(size: usize) -> Self {
        assert!(size > 0);
        let mut senders: Vec<Vec<Sender<Vec<f64>>>> = (0..size).map(|_| Vec::new()).collect();
        let mut receivers: Vec<Vec<Mutex<Receiver<Vec<f64>>>>> =
            (0..size).map(|_| Vec::new()).collect();
        for src in 0..size {
            for _dst in 0..size {
                let (tx, rx) = std::sync::mpsc::channel();
                senders[src].push(tx);
                receivers[src].push(Mutex::new(rx));
            }
        }
        // receivers is currently indexed [src][dst] with the rx of the
        // (src → dst) channel stored at [src][dst]; re-index to [dst][src].
        let mut by_dst: Vec<Vec<Mutex<Receiver<Vec<f64>>>>> =
            (0..size).map(|_| Vec::new()).collect();
        for (src, row) in receivers.into_iter().enumerate() {
            for (dst, rx) in row.into_iter().enumerate() {
                // push in src order: by_dst[dst][src]
                let _ = (src, dst);
                by_dst[dst].push(rx);
            }
        }
        Mesh {
            size,
            senders,
            receivers: by_dst,
        }
    }

    /// Number of ranks.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Send `payload` from `src` to `dst` (asynchronous, buffered).
    pub fn send(&self, src: usize, dst: usize, payload: Vec<f64>) {
        self.senders[src][dst]
            .send(payload)
            .expect("receiver alive for the mesh's lifetime");
    }

    /// Blocking receive at `dst` of the next message from `src`.
    pub fn recv(&self, dst: usize, src: usize) -> Vec<f64> {
        self.receivers[dst][src]
            .lock()
            .expect("mesh receiver lock")
            .recv()
            .expect("sender alive for the mesh's lifetime")
    }
}

/// Ring allreduce (sum) of `buf` across `size` ranks: `size − 1`
/// reduce-scatter steps followed by `size − 1` allgather steps, each
/// moving one of `size` near-equal segments to the next rank — the
/// bandwidth-optimal schedule whose cost the scaling model charges as
/// `2·(N−1)/N · payload / bw`.
///
/// Call from `rank`'s thread; every rank must participate. The reduction
/// order per element is fixed by the ring (rank `r`'s segment `s`
/// accumulates contributions in ring order), so results are deterministic
/// but *not* bitwise-equal to the rank-ordered builtin for non-associative
/// float sums — the test quantifies the difference.
pub fn ring_allreduce(mesh: &Mesh, rank: usize, buf: &mut [f64]) {
    let n = mesh.size();
    if n == 1 {
        return;
    }
    let len = buf.len();
    let seg_bounds: Vec<(usize, usize)> = (0..n)
        .map(|s| {
            let start = s * len / n;
            let end = (s + 1) * len / n;
            (start, end)
        })
        .collect();
    let next = (rank + 1) % n;
    let prev = (rank + n - 1) % n;

    // Reduce-scatter: after step k, rank r holds the partial sum of
    // segment (r − k − 1 mod n) from ranks r−k..r.
    for k in 0..n - 1 {
        let send_seg = (rank + n - k) % n;
        let recv_seg = (rank + n - k - 1) % n;
        let (s0, s1) = seg_bounds[send_seg];
        mesh.send(rank, next, buf[s0..s1].to_vec());
        let incoming = mesh.recv(rank, prev);
        let (r0, r1) = seg_bounds[recv_seg];
        debug_assert_eq!(incoming.len(), r1 - r0);
        for (slot, v) in buf[r0..r1].iter_mut().zip(incoming) {
            *slot += v;
        }
    }
    // Allgather: circulate the fully reduced segments.
    for k in 0..n - 1 {
        let send_seg = (rank + 1 + n - k) % n;
        let recv_seg = (rank + n - k) % n;
        let (s0, s1) = seg_bounds[send_seg];
        mesh.send(rank, next, buf[s0..s1].to_vec());
        let incoming = mesh.recv(rank, prev);
        let (r0, r1) = seg_bounds[recv_seg];
        debug_assert_eq!(incoming.len(), r1 - r0);
        buf[r0..r1].copy_from_slice(&incoming);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_ring(
        size: usize,
        len: usize,
        init: impl Fn(usize, usize) -> f64 + Sync,
    ) -> Vec<Vec<f64>> {
        let mesh = Mesh::new(size);
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..size)
                .map(|rank| {
                    let mesh = &mesh;
                    let init = &init;
                    scope.spawn(move || {
                        let mut buf: Vec<f64> = (0..len).map(|i| init(rank, i)).collect();
                        ring_allreduce(mesh, rank, &mut buf);
                        buf
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        })
    }

    #[test]
    fn ring_allreduce_sums_across_ranks() {
        for size in [1usize, 2, 3, 4, 7] {
            for len in [1usize, 5, 16, 33] {
                let out = run_ring(size, len, |rank, i| (rank * 100 + i) as f64);
                let want: Vec<f64> = (0..len)
                    .map(|i| (0..size).map(|r| (r * 100 + i) as f64).sum())
                    .collect();
                for (rank, buf) in out.iter().enumerate() {
                    for (j, (&g, &w)) in buf.iter().zip(&want).enumerate() {
                        assert!(
                            (g - w).abs() < 1e-9,
                            "size {size} len {len} rank {rank} elem {j}: {g} vs {w}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn all_ranks_agree_exactly_with_each_other() {
        // Ring reduction order differs from rank order, but every rank
        // must end with bitwise-identical buffers.
        let out = run_ring(5, 23, |rank, i| {
            ((rank + 1) as f64).recip() + i as f64 * 0.1
        });
        for buf in &out[1..] {
            assert_eq!(buf, &out[0]);
        }
    }

    #[test]
    fn ring_matches_builtin_collective_within_float_noise() {
        let size = 4;
        let len = 12;
        let ring = run_ring(size, len, |rank, i| ((rank * 31 + i * 7) as f64).sin());
        let builtin = crate::comm::run(size, |c| {
            let mut buf: Vec<f64> = (0..len)
                .map(|i| ((c.rank() * 31 + i * 7) as f64).sin())
                .collect();
            c.allreduce(crate::ReduceOp::Sum, &mut buf);
            buf
        });
        for (r, b) in ring[0].iter().zip(&builtin[0]) {
            assert!((r - b).abs() < 1e-12, "{r} vs {b}");
        }
    }

    #[test]
    fn segments_cover_ragged_lengths() {
        // len < ranks: some segments are empty; the algorithm must still
        // terminate and produce the sum.
        let out = run_ring(6, 3, |rank, i| (rank + i) as f64);
        let want: Vec<f64> = (0..3)
            .map(|i| (0..6).map(|r| (r + i) as f64).sum())
            .collect();
        for buf in out {
            for (g, w) in buf.iter().zip(&want) {
                assert!((g - w).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn p2p_messages_are_ordered_per_pair() {
        let mesh = Mesh::new(2);
        std::thread::scope(|scope| {
            scope.spawn(|| {
                for i in 0..100 {
                    mesh.send(0, 1, vec![i as f64]);
                }
            });
            scope.spawn(|| {
                for i in 0..100 {
                    let m = mesh.recv(1, 0);
                    assert_eq!(m, vec![i as f64], "non-overtaking violated");
                }
            });
        });
    }
}
