//! End-to-end resilience: fault injection, checkpoint recovery, and the
//! health guards, driven the way a chaos campaign drives them.
//!
//! The headline acceptance test kills a rank mid-solve on the first
//! attempt and corrupts an `allreduce` payload on the retry; the
//! supervisor must recover from periodic checkpoints both times and land
//! **bit-identical** on the fault-free distributed trajectory.

use std::sync::{Arc, Mutex};
use std::time::Duration;

use gaia_backends::chaos::{ChaosBackend, ChaosMode, ChaosTarget};
use gaia_backends::{Backend, SeqBackend};
use gaia_lsqr::distributed::DistOptions;
use gaia_lsqr::lsqr::LsqrState;
use gaia_lsqr::resilient::{AttemptOutcome, ResilienceOptions};
use gaia_lsqr::{
    solve, solve_distributed, solve_resilient, try_solve_hybrid, Lsqr, LsqrConfig, RecoveryPolicy,
    StopReason,
};
use gaia_mpi_sim::{install_quiet_panic_hook, FaultKind, FaultPlan};
use gaia_sparse::{Generator, GeneratorConfig, Rhs, SparseSystem, SystemLayout};

fn system(seed: u64) -> SparseSystem {
    Generator::new(
        GeneratorConfig::new(SystemLayout::tiny())
            .seed(seed)
            .rhs(Rhs::FromTrueSolution { noise_sigma: 1e-8 }),
    )
    .generate()
}

fn seq_backends() -> impl Fn(usize) -> Box<dyn Backend> + Sync {
    |_| Box::new(SeqBackend) as Box<dyn Backend>
}

fn no_backoff(policy: RecoveryPolicy) -> RecoveryPolicy {
    RecoveryPolicy {
        backoff: Duration::ZERO,
        ..policy
    }
}

/// Interrupt a single-rank solve at *every* iteration in turn; each
/// checkpoint round-trip must resume onto the bit-exact trajectory.
#[test]
fn crash_at_every_iteration_resumes_bit_identically() {
    let sys = system(600);
    let cfg = LsqrConfig::new();
    let solver = Lsqr::new(&sys, &SeqBackend, cfg);
    let direct = solver.run();
    assert!(direct.stop.converged());

    let mut state = solver.init_state();
    for cut in 1..=direct.iterations {
        assert!(solver.step(&mut state).is_none() || cut == direct.iterations);
        // Round-trip through the JSON envelope, as a real restart would.
        let ckpt = gaia_lsqr::Checkpoint::capture(&sys, &cfg, &state);
        let mut buf = Vec::new();
        ckpt.write_to(&mut buf).unwrap();
        let restored = gaia_lsqr::Checkpoint::read_from(buf.as_slice())
            .unwrap()
            .restore(&sys, &cfg)
            .unwrap();
        let resumed = solver.run_from(restored);
        assert_eq!(resumed.x, direct.x, "cut at iteration {cut}");
        assert_eq!(resumed.iterations, direct.iterations);
        assert_eq!(resumed.stop, direct.stop);
    }
}

/// Every periodic snapshot a distributed solve emits must resume — at the
/// same rank count — onto the bit-exact uninterrupted trajectory.
#[test]
fn distributed_periodic_checkpoints_resume_bit_identically() {
    let sys = system(601);
    let cfg = LsqrConfig::new();
    let n_ranks = 3;
    let reference = solve_distributed(&sys, n_ranks, &cfg);
    assert!(reference.stop.converged());

    let snapshots: Mutex<Vec<LsqrState>> = Mutex::new(Vec::new());
    let sink = |st: &LsqrState| snapshots.lock().unwrap().push(st.clone());
    let opts = DistOptions {
        checkpoint_every: 4,
        checkpoint_sink: Some(&sink),
        ..Default::default()
    };
    let sol = try_solve_hybrid(&sys, n_ranks, &cfg, |_| Box::new(SeqBackend), &opts).unwrap();
    assert_eq!(sol.x, reference.x, "checkpointing must not alter the run");

    let snapshots = snapshots.into_inner().unwrap();
    assert!(
        snapshots.len() >= 2,
        "expected several snapshots, got {}",
        snapshots.len()
    );
    for st in &snapshots {
        let resume = DistOptions {
            resume: Some(st),
            ..Default::default()
        };
        let resumed =
            try_solve_hybrid(&sys, n_ranks, &cfg, |_| Box::new(SeqBackend), &resume).unwrap();
        assert_eq!(
            resumed.x, reference.x,
            "resume from iteration {} deviates",
            st.itn
        );
        assert_eq!(resumed.iterations, reference.iterations);
    }
}

/// The acceptance scenario: rank death on attempt 0, corrupted allreduce
/// on attempt 1; the supervisor restores periodic checkpoints both times
/// and converges bit-identical to the fault-free distributed run.
#[test]
fn panic_then_corruption_recovers_bit_identically() {
    install_quiet_panic_hook();
    let sys = system(602);
    let cfg = LsqrConfig::new();
    let reference = solve_distributed(&sys, 2, &cfg);
    assert!(reference.stop.converged());
    assert!(
        reference.iterations > 10,
        "need a long enough run for mid-flight faults, got {}",
        reference.iterations
    );

    // Attempt 0 (fresh, cadence 2): seq 20 is iteration 6's aprod2 —
    // after the iteration-4 checkpoint. Attempt 1 (resumed from itn 4):
    // seq 8 is iteration 7's aprod2, after the iteration-6 checkpoint;
    // bit 62 blows the payload word up to ~1e305, which the health
    // guards must catch before the iteration-8 checkpoint can persist
    // the damage.
    let plan = Arc::new(
        FaultPlan::scripted(0)
            .with_event(0, 1, 20, FaultKind::RankPanic)
            .with_event(1, 0, 8, FaultKind::BitFlip { bit: 62 }),
    );
    let report = solve_resilient(
        &sys,
        2,
        &cfg,
        seq_backends(),
        &ResilienceOptions {
            policy: no_backoff(RecoveryPolicy {
                checkpoint_every: 2,
                ..RecoveryPolicy::default()
            }),
            faults: Some(plan.clone()),
            ..Default::default()
        },
    )
    .unwrap();

    assert_eq!(report.attempts.len(), 3, "{:#?}", report.attempts);
    assert!(matches!(
        report.attempts[0].outcome,
        AttemptOutcome::Failed { .. }
    ));
    assert_eq!(report.attempts[1].outcome, AttemptOutcome::Breakdown);
    assert_eq!(report.attempts[1].resumed_from, Some(4));
    assert!(matches!(
        report.attempts[2].outcome,
        AttemptOutcome::Completed(_)
    ));
    assert_eq!(report.attempts[2].resumed_from, Some(6));

    assert_eq!(report.telemetry.rank_panics, 1);
    assert_eq!(report.telemetry.bit_flips, 1);
    assert_eq!(report.telemetry.breakdowns, 1);
    assert_eq!(report.telemetry.retries, 2);
    assert_eq!(report.telemetry.checkpoint_restores, 2);
    assert_eq!(report.fault_events.len(), 2);

    assert_eq!(report.final_ranks, 2);
    assert!(report.solution.stop.converged(), "{:?}", report.solution);
    assert_eq!(
        report.solution.x, reference.x,
        "recovered solve must be bit-identical to the fault-free run"
    );
    assert_eq!(report.solution.iterations, reference.iterations);
}

/// A NaN escaping a kernel must stop the solver as a numerical breakdown
/// within one iteration — not propagate, not "converge".
#[test]
fn nan_kernel_output_is_a_breakdown_within_one_iteration() {
    let sys = system(603);
    let cfg = LsqrConfig::new();
    // aprod2 call 0 is the initialization; call k (k >= 1) is iteration k.
    let poisoned_call = 5;
    let chaos = ChaosBackend::new(
        SeqBackend,
        ChaosTarget::Aprod2,
        ChaosMode::Nan,
        poisoned_call,
    );
    let sol = solve(&sys, &chaos, &cfg);
    assert_eq!(sol.stop, StopReason::NumericalBreakdown);
    assert_eq!(
        sol.iterations, poisoned_call,
        "breakdown must be caught in the poisoned iteration"
    );
    assert!(!sol.stop.converged());
}

/// The same guard holds distributed: one rank's poisoned kernel stops
/// every rank in the same iteration via the piggybacked health flag.
#[test]
fn distributed_nan_breakdown_stops_all_ranks() {
    let sys = system(604);
    let cfg = LsqrConfig::new();
    let poisoned_call = 3;
    let sol = try_solve_hybrid(
        &sys,
        3,
        &cfg,
        |rank| {
            if rank == 1 {
                Box::new(ChaosBackend::new(
                    SeqBackend,
                    ChaosTarget::Aprod2,
                    ChaosMode::Nan,
                    poisoned_call,
                )) as Box<dyn Backend>
            } else {
                Box::new(SeqBackend)
            }
        },
        &DistOptions::default(),
    )
    .unwrap();
    assert_eq!(sol.stop, StopReason::NumericalBreakdown);
    assert_eq!(sol.iterations, poisoned_call);
}

/// With health guards off, the supervisor still recovers a poisoned rank
/// via the degrade path when the kernel panics outright.
#[test]
fn kernel_panic_degrades_to_a_clean_backend() {
    install_quiet_panic_hook();
    let sys = system(605);
    let cfg = LsqrConfig::new();
    // The degraded tier still runs the distributed path (at 1 rank), so
    // that is the bit-exact reference, not the plain solver.
    let reference = solve_distributed(&sys, 1, &cfg);
    // Rank 1's kernel dies on every attempt at 2 ranks; the supervisor
    // must degrade to the single-rank floor and still converge.
    let report = solve_resilient(
        &sys,
        2,
        &cfg,
        |rank| {
            if rank == 1 {
                Box::new(ChaosBackend::new(
                    SeqBackend,
                    ChaosTarget::Aprod1,
                    ChaosMode::Panic,
                    2,
                )) as Box<dyn Backend>
            } else {
                Box::new(SeqBackend)
            }
        },
        &ResilienceOptions {
            policy: no_backoff(RecoveryPolicy {
                max_retries: 0,
                checkpoint_every: 0,
                ..RecoveryPolicy::default()
            }),
            ..Default::default()
        },
    )
    .unwrap();
    assert_eq!(report.final_ranks, 1);
    assert!(report.solution.stop.converged());
    assert_eq!(report.solution.x, reference.x);
}

/// Deadline semantics, checkpoint half: a solve cancelled mid-iteration
/// leaves a *loadable* on-disk checkpoint behind, across three distinct
/// backends. (The outcome half — DeadlineExceeded never carries a
/// partial solution — is asserted at the service layer in `gaia-serve`.)
#[test]
fn cancelled_solve_persists_a_loadable_checkpoint_across_backends() {
    use gaia_lsqr::{CancellationToken, CheckpointRotation};

    for backend in ["seq", "chunked-t2", "atomic-t2"] {
        // A few-thousand-row system with zero tolerances: iterations are
        // milliseconds each and convergence is dozens of iterations away,
        // so the watcher thread below always cancels mid-solve.
        let sys = Generator::new(
            GeneratorConfig::new(SystemLayout::small())
                .seed(707)
                .rhs(Rhs::FromTrueSolution { noise_sigma: 1e-8 }),
        )
        .generate();
        let mut endless = LsqrConfig::new();
        endless.atol = 0.0;
        endless.btol = 0.0;
        endless.conlim = 1e300;
        endless.max_iters = 2_000_000;

        let stem = std::env::temp_dir().join(format!("gaia-cancel-ckpt-{backend}"));
        let rotation = CheckpointRotation::new(&stem, 2);
        rotation.clear();

        let token = CancellationToken::new();
        // Cancel as soon as the first periodic checkpoint hits disk, so
        // cancellation is guaranteed to strike between iterations.
        let watcher = {
            let token = token.clone();
            let rotation = CheckpointRotation::new(&stem, 2);
            std::thread::spawn(move || {
                while rotation.latest().is_none() {
                    std::thread::sleep(Duration::from_micros(200));
                }
                token.cancel();
            })
        };

        let report = solve_resilient(
            &sys,
            2,
            &endless,
            |_| gaia_backends::registry::backend_by_name(backend, 2).unwrap(),
            &ResilienceOptions {
                policy: no_backoff(RecoveryPolicy {
                    checkpoint_every: 2,
                    ..RecoveryPolicy::default()
                }),
                persist: Some(&rotation),
                cancel: Some(token),
                ..Default::default()
            },
        )
        .unwrap();
        watcher.join().unwrap();

        assert_eq!(
            report.solution.stop,
            StopReason::Cancelled,
            "{backend}: cancellation must interrupt the endless config"
        );
        assert!(!report.solution.stop.converged());

        // The last checkpoint is loadable and resumes to convergence
        // under normal tolerances.
        let (itn, ckpt) = rotation
            .latest()
            .unwrap_or_else(|| panic!("{backend}: cancelled solve left no checkpoint"));
        assert!(itn >= 1 && itn <= report.solution.iterations);
        let cfg = LsqrConfig::new();
        let state = ckpt
            .restore(&sys, &endless)
            .unwrap_or_else(|e| panic!("{backend}: checkpoint not loadable: {e}"));
        let solver = Lsqr::new(&sys, &SeqBackend, cfg);
        let resumed = solver.run_from(state);
        assert!(
            resumed.stop.converged(),
            "{backend}: resume from the cancel checkpoint must converge"
        );
        rotation.clear();
    }
}
