//! Checkpoint/resume for out-of-core solves: a tiled run interrupted at
//! *any* iteration must resume bit-identically from its rotation chain,
//! survive the spill directory being relocated (via the `GAIA_TILES_DIR`
//! override recorded provenance resolves through), and refuse to resume
//! against a different or corrupted tile set.
//!
//! Environment-variable manipulation is confined to this file (one test,
//! `#[serial]`-style by being the only env-touching test in the binary).

use std::path::PathBuf;

use gaia_backends::SeqBackend;
use gaia_lsqr::checkpoint::{Checkpoint, CheckpointError, CheckpointRotation};
use gaia_lsqr::{solve_tiled, LsqrConfig, OperatorLsqr, TiledOperator};
use gaia_sparse::{CapacityBudget, Generator, GeneratorConfig, Rhs, SystemLayout, TiledSystem};

const ITERS: usize = 8;

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("gaia-tiled-resume-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn spill(dir: &PathBuf, seed: u64) {
    Generator::new(
        GeneratorConfig::new(SystemLayout::tiny())
            .seed(seed)
            .rhs(Rhs::FromTrueSolution { noise_sigma: 1e-8 }),
    )
    .generate_tiled(dir, 2)
    .expect("streamed generation");
}

/// Budget that holds exactly one tile: every access after the first tile
/// evicts, so resume correctness is tested under live cache pressure.
fn open_tight(dir: &PathBuf) -> TiledSystem {
    let probe = TiledSystem::open(dir).expect("probe");
    let min = probe.min_budget();
    drop(probe);
    TiledSystem::open_with_budget(dir, CapacityBudget::limited(min)).expect("open tight")
}

#[test]
fn crash_at_every_iteration_resumes_bit_identically() {
    let tiles_dir = scratch("crash");
    spill(&tiles_dir, 77);
    let cfg = LsqrConfig::fixed_iterations(ITERS);

    let tiles = open_tight(&tiles_dir);
    let direct = solve_tiled(&tiles, &SeqBackend, &cfg).expect("direct solve");

    let ckpt_dir = scratch("crash-ckpts");
    std::fs::create_dir_all(&ckpt_dir).unwrap();
    for crash_after in 1..ITERS {
        // Run `crash_after` iterations, checkpointing each into a
        // rotation chain, then "crash" (drop everything).
        let rot = CheckpointRotation::new(ckpt_dir.join(format!("run-{crash_after}")), 2);
        {
            let tiles = open_tight(&tiles_dir);
            let solver =
                OperatorLsqr::new(TiledOperator::new(&tiles, &SeqBackend), cfg).expect("solver");
            let mut state = solver.try_init_state().expect("init");
            for _ in 0..crash_after {
                solver.try_step(&mut state).expect("step");
                rot.save(state.itn, &Checkpoint::capture_tiled(&tiles, &cfg, &state))
                    .expect("rotation save");
            }
        }
        // Resume in a fresh process-equivalent: reopen the tile set, load
        // the newest snapshot, validate provenance, run to completion.
        let tiles = open_tight(&tiles_dir);
        let (itn, ckpt) = rot.latest().expect("rotation has a snapshot");
        assert_eq!(itn, crash_after);
        let state = ckpt.restore_tiled(&tiles, &cfg).expect("restore");
        let solver =
            OperatorLsqr::new(TiledOperator::new(&tiles, &SeqBackend), cfg).expect("solver");
        let resumed = solver.try_run_from(state).expect("resume");

        assert_eq!(resumed.iterations, direct.iterations, "crash@{crash_after}");
        for (i, (d, r)) in direct.x.iter().zip(&resumed.x).enumerate() {
            assert_eq!(
                d.to_bits(),
                r.to_bits(),
                "crash@{crash_after}: x[{i}] direct={d:e} resumed={r:e}"
            );
        }
    }
    std::fs::remove_dir_all(&tiles_dir).ok();
    std::fs::remove_dir_all(&ckpt_dir).ok();
}

#[test]
fn moved_spill_dir_resumes_through_env_override() {
    let old_dir = scratch("move-old");
    spill(&old_dir, 78);
    let cfg = LsqrConfig::fixed_iterations(ITERS);

    let tiles = open_tight(&old_dir);
    let direct = solve_tiled(&tiles, &SeqBackend, &cfg).expect("direct");
    let solver = OperatorLsqr::new(TiledOperator::new(&tiles, &SeqBackend), cfg).expect("solver");
    let mut state = solver.try_init_state().expect("init");
    for _ in 0..3 {
        solver.try_step(&mut state).expect("step");
    }
    let ckpt = Checkpoint::capture_tiled(&tiles, &cfg, &state);
    let mut buf = Vec::new();
    ckpt.write_to(&mut buf).unwrap();
    drop(tiles);

    // Relocate the spill directory, as a scheduler moving scratch space
    // between allocations would.
    let new_dir = scratch("move-new");
    std::fs::rename(&old_dir, &new_dir).expect("relocate spill dir");

    let loaded = Checkpoint::read_from(buf.as_slice()).unwrap();
    let prov = loaded
        .tiles
        .clone()
        .expect("tiled checkpoint has provenance");
    // Without the override the recorded (now stale) path comes back…
    assert_eq!(prov.resolved_dir(), PathBuf::from(&prov.dir));
    assert!(!prov.resolved_dir().exists(), "old path must be gone");
    // …and with it, the relocated directory.
    std::env::set_var(gaia_sparse::TILES_DIR_ENV, &new_dir);
    let resolved = prov.resolved_dir();
    std::env::remove_var(gaia_sparse::TILES_DIR_ENV);
    assert_eq!(resolved, new_dir);

    let tiles = TiledSystem::open(&resolved).expect("open relocated spill dir");
    let state = loaded
        .restore_tiled(&tiles, &cfg)
        .expect("restore after move");
    let solver = OperatorLsqr::new(TiledOperator::new(&tiles, &SeqBackend), cfg).expect("solver");
    let resumed = solver.try_run_from(state).expect("resume");
    assert_eq!(
        direct
            .x
            .iter()
            .zip(&resumed.x)
            .filter(|(a, b)| a.to_bits() != b.to_bits())
            .count(),
        0,
        "resume after relocation must be bit-identical"
    );
    std::fs::remove_dir_all(&new_dir).ok();
}

#[test]
fn regenerated_tile_set_is_rejected_on_resume() {
    let dir = scratch("regen");
    spill(&dir, 79);
    let cfg = LsqrConfig::fixed_iterations(ITERS);

    let tiles = TiledSystem::open(&dir).expect("open");
    let solver = OperatorLsqr::new(TiledOperator::new(&tiles, &SeqBackend), cfg).expect("solver");
    let mut state = solver.try_init_state().expect("init");
    solver.try_step(&mut state).expect("step");
    let ckpt = Checkpoint::capture_tiled(&tiles, &cfg, &state);
    drop(tiles);

    // Same path, same shape — but a different matrix: the provenance
    // fingerprint (not the path) must be the authority.
    let _ = std::fs::remove_dir_all(&dir);
    Generator::new(
        GeneratorConfig::new(SystemLayout::tiny())
            .seed(80)
            .rhs(Rhs::FromTrueSolution { noise_sigma: 1e-8 }),
    )
    .generate_tiled(&dir, 2)
    .expect("regenerate");
    let other = TiledSystem::open(&dir).expect("reopen");
    let err = ckpt.restore_tiled(&other, &cfg).unwrap_err();
    let msg = err.to_string();
    assert!(
        matches!(err, CheckpointError::Mismatch(_)),
        "expected mismatch, got {msg}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn corrupted_tile_checksum_fails_the_solve_naming_the_tile() {
    let dir = scratch("corrupt");
    spill(&dir, 81);
    let cfg = LsqrConfig::fixed_iterations(ITERS);

    // Flip one payload byte of the second tile file.
    let victim = dir.join("tile-00001.bin");
    let mut bytes = std::fs::read(&victim).expect("read tile");
    let last = bytes.len() - 1;
    bytes[last] ^= 0xff;
    std::fs::write(&victim, bytes).expect("write corrupted tile");

    let tiles = TiledSystem::open(&dir).expect("open (manifest itself is intact)");
    let err = solve_tiled(&tiles, &SeqBackend, &cfg).expect_err("corrupted tile must fail");
    let msg = err.to_string();
    assert!(
        msg.contains("tile-00001.bin"),
        "error must name the corrupted tile path, got: {msg}"
    );
    std::fs::remove_dir_all(&dir).ok();
}
