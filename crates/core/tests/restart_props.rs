//! Property tests for checkpoint/restart: for arbitrary interruption
//! points, backends, and configurations, a serialized-and-restored solve
//! finishes bit-identically to an uninterrupted one.

use gaia_backends::backend_by_name;
use gaia_lsqr::{Checkpoint, Lsqr, LsqrConfig};
use gaia_sparse::{Generator, GeneratorConfig, Rhs, SystemLayout};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn resume_at_any_point_is_bit_identical(
        seed in 0u64..200,
        cut in 0usize..30,
        backend_idx in 0usize..4,
        precondition in proptest::bool::ANY,
        fixed in proptest::bool::ANY,
    ) {
        let sys = Generator::new(
            GeneratorConfig::new(SystemLayout::tiny())
                .seed(seed)
                .rhs(Rhs::FromTrueSolution { noise_sigma: 1e-8 }),
        )
        .generate();
        // Determinism requires a deterministic backend: the atomic/striped
        // strategies commit adds in scheduling order.
        let name = ["seq", "chunked", "streamed", "replicated"][backend_idx];
        // replicated reduces privates in fixed rank order → deterministic;
        // chunked/streamed partition disjointly → deterministic.
        let backend = backend_by_name(name, 3).unwrap();
        let cfg = if fixed {
            LsqrConfig::fixed_iterations(25)
        } else {
            LsqrConfig::new().precondition(precondition).max_iters(500)
        };
        let solver = Lsqr::new(&sys, &backend, cfg);
        let direct = solver.run();

        let mut state = solver.init_state();
        for _ in 0..cut {
            if state.is_done() {
                break;
            }
            solver.step(&mut state);
        }
        // Round-trip through the JSON envelope.
        let mut buf = Vec::new();
        Checkpoint::capture(&sys, &cfg, &state)
            .write_to(&mut buf)
            .unwrap();
        let restored = Checkpoint::read_from(buf.as_slice())
            .unwrap()
            .restore(&sys, &cfg)
            .unwrap();
        let resumed = solver.run_from(restored);

        prop_assert_eq!(&resumed.x, &direct.x, "x differs after resume at {}", cut);
        prop_assert_eq!(resumed.iterations, direct.iterations);
        prop_assert_eq!(resumed.stop, direct.stop);
        prop_assert_eq!(resumed.var, direct.var);
    }

    #[test]
    fn checkpoints_never_restore_across_configs(
        seed in 0u64..50,
        precondition in proptest::bool::ANY,
    ) {
        let sys = Generator::new(
            GeneratorConfig::new(SystemLayout::tiny())
                .seed(seed)
                .rhs(Rhs::FromTrueSolution { noise_sigma: 1e-8 }),
        )
        .generate();
        let cfg = LsqrConfig::new().precondition(precondition);
        let backend = backend_by_name("seq", 1).unwrap();
        let solver = Lsqr::new(&sys, &backend, cfg);
        let state = solver.init_state();
        let ckpt = Checkpoint::capture(&sys, &cfg, &state);
        let flipped = LsqrConfig::new().precondition(!precondition);
        prop_assert!(ckpt.restore(&sys, &flipped).is_err());
    }
}
