//! Coverage for verification gaps called out by the gaia-verify issue:
//! checkpoint-rotation pruning under long save chains, and the numerical
//! health guards firing end-to-end on an injected non-finite right-hand
//! side (the b̃ a failing node would feed the solver).

use gaia_backends::SeqBackend;
use gaia_lsqr::checkpoint::{Checkpoint, CheckpointRotation};
use gaia_lsqr::lsqr::Lsqr;
use gaia_lsqr::{solve, HealthConfig, LsqrConfig, StopReason};
use gaia_sparse::{Generator, GeneratorConfig, Rhs, SparseSystem, SystemLayout};

fn system(seed: u64) -> SparseSystem {
    Generator::new(
        GeneratorConfig::new(SystemLayout::tiny())
            .seed(seed)
            .rhs(Rhs::FromTrueSolution { noise_sigma: 1e-8 }),
    )
    .generate()
}

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("gaia-verify-gaps-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Retain-last-K pruning over a save chain much longer than K, for several
/// K, including the degenerate `retain = 0` (floored to 1). After every
/// save the chain must hold exactly the newest `min(saves, K)` snapshots.
#[test]
fn rotation_prunes_long_chains_for_every_retain() {
    let sys = system(501);
    let cfg = LsqrConfig::new();
    let solver = Lsqr::new(&sys, &SeqBackend, cfg);

    for retain in [0usize, 1, 3] {
        let dir = temp_dir(&format!("rot{retain}"));
        let rot = CheckpointRotation::new(dir.join("solve"), retain);
        let effective = retain.max(1);

        let mut state = solver.init_state();
        for k in 1..=10usize {
            solver.step(&mut state);
            rot.save(k, &Checkpoint::capture(&sys, &cfg, &state))
                .unwrap();
            let kept: Vec<usize> = rot.slots().iter().map(|(i, _)| *i).collect();
            let want: Vec<usize> = (k.saturating_sub(effective) + 1..=k).collect();
            assert_eq!(kept, want, "retain={retain} after save {k}");
        }
        // The survivor set restores to the iterations it claims.
        let (k, ckpt) = rot.latest().unwrap();
        assert_eq!(k, 10);
        assert_eq!(ckpt.restore(&sys, &cfg).unwrap().itn, 10);

        rot.clear();
        assert!(rot.slots().is_empty());
        std::fs::remove_dir_all(&dir).ok();
    }
}

/// Every file in the chain corrupt: `latest` must give up cleanly rather
/// than panic or return garbage.
#[test]
fn rotation_with_only_corrupt_slots_returns_none() {
    let sys = system(502);
    let cfg = LsqrConfig::new();
    let solver = Lsqr::new(&sys, &SeqBackend, cfg);
    let mut state = solver.init_state();
    solver.step(&mut state);

    let dir = temp_dir("corrupt");
    let rot = CheckpointRotation::new(dir.join("solve"), 2);
    rot.save(1, &Checkpoint::capture(&sys, &cfg, &state))
        .unwrap();
    rot.save(2, &Checkpoint::capture(&sys, &cfg, &state))
        .unwrap();
    for (_, path) in rot.slots() {
        std::fs::write(path, b"not a checkpoint").unwrap();
    }
    assert!(rot.latest().is_none());
    rot.clear();
    std::fs::remove_dir_all(&dir).ok();
}

/// A NaN (or Inf) planted in the known terms poisons β = ‖b̃‖ in the very
/// first bidiagonalization; with the guards on the solve must stop with
/// `NumericalBreakdown` immediately instead of iterating on garbage.
#[test]
fn health_guards_stop_on_non_finite_known_terms() {
    for poison in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
        let mut sys = system(503);
        let mut b = sys.known_terms().to_vec();
        let mid = b.len() / 2;
        b[mid] = poison;
        sys.set_known_terms(b);

        let cfg = LsqrConfig::new()
            .max_iters(50)
            .health(HealthConfig::default_on());
        let sol = solve(&sys, &SeqBackend, &cfg);
        assert_eq!(sol.stop, StopReason::NumericalBreakdown, "poison {poison}");
        assert!(
            sol.iterations <= 1,
            "stopped at iteration {}",
            sol.iterations
        );
    }
}

/// The same poisoned system with the guards off (the seed's behavior):
/// the solve must NOT report breakdown — it runs blind on garbage. This
/// pins down exactly what the guards add.
#[test]
fn disabled_guards_iterate_blindly_on_poisoned_input() {
    let mut sys = system(504);
    let mut b = sys.known_terms().to_vec();
    b[0] = f64::NAN;
    sys.set_known_terms(b);

    let cfg = LsqrConfig::new().max_iters(5).health(HealthConfig::off());
    let sol = solve(&sys, &SeqBackend, &cfg);
    assert_ne!(sol.stop, StopReason::NumericalBreakdown);
    assert!(
        sol.x.iter().any(|v| !v.is_finite()),
        "without guards the garbage must have propagated into x"
    );
}

/// Guards never alter a healthy solve: bit-identical solution with the
/// guards on and off.
#[test]
fn guards_are_invisible_on_healthy_systems() {
    let sys = system(505);
    let on = solve(
        &sys,
        &SeqBackend,
        &LsqrConfig::new().health(HealthConfig::default_on()),
    );
    let off = solve(
        &sys,
        &SeqBackend,
        &LsqrConfig::new().health(HealthConfig::off()),
    );
    assert_eq!(on.stop, off.stop);
    assert_eq!(on.iterations, off.iterations);
    assert_eq!(on.x, off.x, "guards must not perturb a healthy trajectory");
}
