//! Convergence-theory property tests for the LSQR core: agreement with
//! the dense least-squares oracle on arbitrary systems, damping behaviour,
//! residual orthogonality, and tolerance semantics.

use gaia_backends::{Backend, SeqBackend};
use gaia_lsqr::{solve, LsqrConfig, StopReason};
use gaia_sparse::dense::DenseMatrix;
use gaia_sparse::{Generator, GeneratorConfig, Rhs, SystemLayout};
use proptest::prelude::*;

fn layouts() -> impl Strategy<Value = SystemLayout> {
    (3u64..8, 14u64..22, 4u64..10, 6u64..10, 0u32..2, 0u64..4)
        .prop_map(|(s, o, d, i, g, c)| SystemLayout {
            n_stars: s,
            obs_per_star: o,
            n_deg_freedom_att: d,
            n_instr_params: i,
            n_glob_params: g,
            n_constraint_rows: c,
        })
        .prop_filter("overdetermined", |l| l.validate().is_ok())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn lsqr_matches_dense_least_squares(layout in layouts(), seed in 0u64..200) {
        let cfg = GeneratorConfig::new(layout)
            .seed(seed)
            .rhs(Rhs::FromTrueSolution { noise_sigma: 1e-3 });
        let (sys, _) = Generator::new(cfg).generate_with_truth();
        let sol = solve(&sys, &SeqBackend, &LsqrConfig::new().max_iters(20_000));
        prop_assume!(sol.stop.converged());
        let dense = DenseMatrix::from_sparse(&sys);
        // Layouts with few/no constraint rows can be rank-deficient (the
        // paper adds constraints precisely to fix that); the oracle flags
        // those and the property only covers full-rank instances.
        let Some(x_ls) = dense.try_least_squares(sys.known_terms()) else {
            return Ok(());
        };
        let err: f64 = sol.x.iter().zip(&x_ls).map(|(a, b)| (a - b) * (a - b)).sum::<f64>().sqrt();
        let scale: f64 = x_ls.iter().map(|v| v * v).sum::<f64>().sqrt().max(1e-30);
        prop_assert!(err / scale < 1e-5, "relative error {}", err / scale);
    }

    #[test]
    fn normal_equations_hold_at_the_solution(layout in layouts(), seed in 200u64..300) {
        // Aᵀ(b − A x) ≈ 0 at the least-squares solution.
        let cfg = GeneratorConfig::new(layout)
            .seed(seed)
            .rhs(Rhs::FromTrueSolution { noise_sigma: 1e-2 });
        let (sys, _) = Generator::new(cfg).generate_with_truth();
        let sol = solve(&sys, &SeqBackend, &LsqrConfig::new().max_iters(20_000));
        prop_assume!(sol.stop.converged());
        let backend = SeqBackend;
        let mut ax = vec![0.0; sys.n_rows()];
        backend.aprod1(&sys, &sol.x, &mut ax);
        let r: Vec<f64> = sys.known_terms().iter().zip(&ax).map(|(b, a)| b - a).collect();
        let mut atr = vec![0.0; sys.n_cols()];
        backend.aprod2(&sys, &r, &mut atr);
        let atr_norm = gaia_backends::blas::nrm2(&atr);
        let scale = sol.anorm * gaia_backends::blas::nrm2(&r);
        prop_assert!(
            atr_norm <= 1e-6 * (1.0 + scale),
            "‖Aᵀr‖ = {atr_norm} vs scale {scale}"
        );
    }

    #[test]
    fn increasing_damp_never_grows_the_solution_norm(
        seed in 0u64..60,
        d1 in 0.0f64..0.5,
        d2 in 0.5f64..4.0,
    ) {
        let cfg = GeneratorConfig::new(SystemLayout::tiny())
            .seed(seed)
            .rhs(Rhs::FromTrueSolution { noise_sigma: 1e-4 });
        let (sys, _) = Generator::new(cfg).generate_with_truth();
        let a = solve(&sys, &SeqBackend, &LsqrConfig::new().damp(d1));
        let b = solve(&sys, &SeqBackend, &LsqrConfig::new().damp(d2));
        prop_assert!(b.xnorm <= a.xnorm * (1.0 + 1e-8), "{} vs {}", b.xnorm, a.xnorm);
    }

    #[test]
    fn looser_tolerances_stop_no_later(seed in 0u64..60) {
        let cfg = GeneratorConfig::new(SystemLayout::tiny())
            .seed(seed)
            .rhs(Rhs::FromTrueSolution { noise_sigma: 1e-6 });
        let (sys, _) = Generator::new(cfg).generate_with_truth();
        let tight = solve(&sys, &SeqBackend, &LsqrConfig::new().tolerances(1e-12, 1e-12));
        let loose = solve(&sys, &SeqBackend, &LsqrConfig::new().tolerances(1e-6, 1e-6));
        prop_assert!(loose.iterations <= tight.iterations);
    }
}

#[test]
fn conlim_triggers_condition_stop_on_ill_conditioned_system() {
    // Unpreconditioned Gaia systems have wildly different column norms →
    // a tiny conlim must fire the condition-limit stop.
    let cfg = GeneratorConfig::new(SystemLayout::small())
        .seed(7)
        .rhs(Rhs::FromTrueSolution { noise_sigma: 0.0 });
    let (sys, _) = Generator::new(cfg).generate_with_truth();
    let mut config = LsqrConfig::new().precondition(false);
    config.conlim = 2.0;
    let sol = solve(&sys, &SeqBackend, &config);
    assert_eq!(sol.stop, StopReason::ConditionLimit);
    assert!(sol.iterations < config.max_iters);
}

#[test]
fn history_length_always_equals_iterations() {
    let cfg = GeneratorConfig::new(SystemLayout::tiny())
        .seed(8)
        .rhs(Rhs::FromTrueSolution { noise_sigma: 1e-8 });
    let (sys, _) = Generator::new(cfg).generate_with_truth();
    for max in [1usize, 3, 10, 1000] {
        let sol = solve(&sys, &SeqBackend, &LsqrConfig::new().max_iters(max));
        assert_eq!(sol.history.len(), sol.iterations);
        assert!(sol.iterations <= max);
    }
}

#[test]
fn var_is_nonnegative_and_zero_where_untouched() {
    let cfg = GeneratorConfig::new(SystemLayout::tiny())
        .seed(9)
        .rhs(Rhs::FromTrueSolution { noise_sigma: 1e-5 });
    let (sys, _) = Generator::new(cfg).generate_with_truth();
    let sol = solve(&sys, &SeqBackend, &LsqrConfig::new());
    assert!(sol.var.iter().all(|&v| v >= 0.0));
    assert!(sol.var.iter().any(|&v| v > 0.0));
}
