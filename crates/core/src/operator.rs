//! The [`Operator`] abstraction: what LSQR needs from a linear system.
//!
//! [`crate::lsqr::Lsqr`] historically took a resident
//! [`SparseSystem`] plus a [`Backend`]. Paper-scale systems
//! (§V-B capacity gating: 10/30/60 GB observation matrices) do not fit in
//! memory, so the solver numerics are factored over this trait instead:
//! an operator supplies the two sparse products, the right-hand side, and
//! the column norms the Jacobi preconditioner scales by — however it
//! stores the matrix. [`SystemOperator`] is the resident adapter;
//! [`crate::ooc::TiledOperator`] streams spilled row tiles under a
//! capacity budget.
//!
//! Operator products are *fallible* (an out-of-core operator can hit I/O
//! errors or checksum mismatches mid-product); the resident adapter never
//! fails, which is how the infallible [`crate::lsqr::Lsqr`] API keeps its
//! historical shape on top of the fallible
//! [`crate::lsqr::OperatorLsqr`] core.

use gaia_backends::{blas, Backend};
use gaia_sparse::SparseSystem;

use crate::checkpoint::TileProvenance;

/// Error from a fallible operator product — an I/O failure, checksum
/// mismatch, or budget violation raised by an out-of-core implementation.
#[derive(Debug)]
pub struct OperatorError(Box<dyn std::error::Error + Send + Sync>);

impl OperatorError {
    /// Wrap any error type.
    pub fn new(e: impl std::error::Error + Send + Sync + 'static) -> Self {
        OperatorError(Box::new(e))
    }

    /// The wrapped error.
    pub fn inner(&self) -> &(dyn std::error::Error + Send + Sync) {
        self.0.as_ref()
    }
}

impl std::fmt::Display for OperatorError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "operator error: {}", self.0)
    }
}

impl std::error::Error for OperatorError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(self.0.as_ref())
    }
}

impl From<gaia_sparse::TileError> for OperatorError {
    fn from(e: gaia_sparse::TileError) -> Self {
        OperatorError::new(e)
    }
}

/// A linear operator LSQR can run against: shape, right-hand side,
/// column norms for preconditioning, the two accumulating sparse
/// products, and the backend's BLAS-1 kernels.
pub trait Operator {
    /// Number of rows (observations + constraints).
    fn n_rows(&self) -> usize;

    /// Number of columns (unknowns).
    fn n_cols(&self) -> usize;

    /// The right-hand side `b` (always memory-resident: `O(n_rows)` of it
    /// is needed every iteration).
    fn known_terms(&self) -> &[f64];

    /// Euclidean column norms of `A`, for [`crate::ColumnScaling`].
    fn column_norms(&self) -> Result<Vec<f64>, OperatorError>;

    /// `out += A x` (accumulating, like [`Backend::aprod1`]).
    fn aprod1(&self, x: &[f64], out: &mut [f64]) -> Result<(), OperatorError>;

    /// `out += Aᵀ y` (accumulating, like [`Backend::aprod2`]).
    fn aprod2(&self, y: &[f64], out: &mut [f64]) -> Result<(), OperatorError>;

    /// Euclidean norm (backend-overridable).
    fn nrm2(&self, v: &[f64]) -> f64 {
        blas::nrm2(v)
    }

    /// `v *= s` (backend-overridable).
    fn scal(&self, v: &mut [f64], s: f64) {
        blas::scal(v, s);
    }

    /// Tile-set provenance, when the matrix is backed by an on-disk
    /// `gaia-tiles/v1` spill directory — recorded into checkpoints so a
    /// resume can verify it is reading the same matrix.
    fn provenance(&self) -> Option<TileProvenance> {
        None
    }
}

/// The memory-resident adapter: a [`SparseSystem`] driven through a
/// [`Backend`], with every product infallible.
#[derive(Debug)]
pub struct SystemOperator<'a, B: Backend + ?Sized> {
    sys: &'a SparseSystem,
    backend: &'a B,
}

impl<'a, B: Backend + ?Sized> SystemOperator<'a, B> {
    /// Bind a system to a backend.
    pub fn new(sys: &'a SparseSystem, backend: &'a B) -> Self {
        SystemOperator { sys, backend }
    }

    /// The underlying system.
    pub fn system(&self) -> &'a SparseSystem {
        self.sys
    }

    /// The backend driving the products.
    pub fn backend(&self) -> &'a B {
        self.backend
    }
}

impl<B: Backend + ?Sized> Operator for SystemOperator<'_, B> {
    fn n_rows(&self) -> usize {
        self.sys.n_rows()
    }

    fn n_cols(&self) -> usize {
        self.sys.n_cols()
    }

    fn known_terms(&self) -> &[f64] {
        self.sys.known_terms()
    }

    fn column_norms(&self) -> Result<Vec<f64>, OperatorError> {
        Ok(self.sys.column_norms())
    }

    fn aprod1(&self, x: &[f64], out: &mut [f64]) -> Result<(), OperatorError> {
        self.backend.aprod1(self.sys, x, out);
        Ok(())
    }

    fn aprod2(&self, y: &[f64], out: &mut [f64]) -> Result<(), OperatorError> {
        self.backend.aprod2(self.sys, y, out);
        Ok(())
    }

    fn nrm2(&self, v: &[f64]) -> f64 {
        self.backend.nrm2(v)
    }

    fn scal(&self, v: &mut [f64], s: f64) {
        self.backend.scal(v, s);
    }
}
