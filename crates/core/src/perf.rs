//! Bridge from a finished [`Solution`] to a `gaia-telemetry`
//! [`RunReport`]: per-iteration timings and residual norms come from the
//! solver's history, the per-kernel breakdown from the telemetry registry
//! snapshot taken at call time.
//!
//! The intended measurement protocol (what the bench binaries do):
//!
//! ```text
//! gaia_telemetry::reset();
//! let sol = solve(&sys, &instrumented_backend, &cfg);
//! let report = run_report("profile_atomic", "atomic-t4", "lsqr", &sys, &sol);
//! gaia_telemetry::report::write_report(&report)?;   // results/telemetry/…
//! ```

use gaia_sparse::SparseSystem;
use gaia_telemetry::report::{IterationSample, RunReport};

use crate::solution::Solution;

/// Build the machine-readable perf record of one measured solve. Captures
/// the telemetry snapshot at call time, so `gaia_telemetry::reset()`
/// before the solve scopes the kernel cells to this run.
pub fn run_report(
    run: &str,
    backend: &str,
    solver: &str,
    sys: &SparseSystem,
    sol: &Solution,
) -> RunReport {
    RunReport {
        run: run.into(),
        backend: backend.into(),
        solver: solver.into(),
        n_rows: sys.n_rows() as u64,
        n_cols: sys.n_cols() as u64,
        iterations: sol.iterations as u64,
        stop: format!("{:?}", sol.stop),
        rnorm: sol.rnorm,
        arnorm: sol.arnorm,
        total_seconds: sol.history.iter().map(|h| h.seconds).sum(),
        per_iteration: sol
            .history
            .iter()
            .map(|h| IterationSample {
                iteration: h.iteration as u64,
                rnorm: h.rnorm,
                arnorm: h.arnorm,
                seconds: h.seconds,
            })
            .collect(),
        telemetry: gaia_telemetry::snapshot(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::LsqrConfig;
    use crate::lsqr::solve;
    use gaia_backends::SeqBackend;
    use gaia_sparse::{Generator, GeneratorConfig, Rhs, SystemLayout};

    #[test]
    fn report_mirrors_the_solution() {
        let sys = Generator::new(
            GeneratorConfig::new(SystemLayout::tiny())
                .seed(601)
                .rhs(Rhs::FromTrueSolution { noise_sigma: 1e-8 }),
        )
        .generate();
        let sol = solve(&sys, &SeqBackend, &LsqrConfig::fixed_iterations(5));
        let report = run_report("unit", "seq", "lsqr", &sys, &sol);
        assert_eq!(report.iterations, 5);
        assert_eq!(report.per_iteration.len(), 5);
        assert_eq!(report.n_rows, sys.n_rows() as u64);
        assert_eq!(report.n_cols, sys.n_cols() as u64);
        assert_eq!(report.stop, "IterationLimit");
        assert_eq!(
            report.per_iteration.last().unwrap().rnorm,
            sol.history.last().unwrap().rnorm
        );
        assert!(
            (report.total_seconds - sol.history.iter().map(|h| h.seconds).sum::<f64>()).abs()
                < 1e-15
        );
        assert_eq!(report.telemetry.enabled, gaia_telemetry::is_enabled());
        // Round-trip through the JSON sink format.
        let json = serde_json::to_string_pretty(&report).expect("serialize");
        let back: RunReport = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(back, report);
    }
}
