//! Per-iteration numerical health guards.
//!
//! The production AVU-GSR solver iterates for weeks; a single NaN produced
//! by a failing node or a corrupted reduction silently poisons the whole
//! Golub–Kahan recurrence, wasting the remainder of the allocation. These
//! guards scan the iterates after each step and surface
//! [`StopReason::NumericalBreakdown`](crate::solution::StopReason::NumericalBreakdown)
//! instead of letting the solve keep iterating on garbage.
//!
//! The checks are **stateless**: everything is recomputed from the current
//! [`LsqrState`](crate::lsqr::LsqrState) (including its `history`), so
//! enabling them adds no fields to the checkpointed state and the on-disk
//! envelope format is unchanged. A healthy trajectory is never altered —
//! the guards can only stop a solve that is already broken.

use crate::lsqr::LsqrState;
use crate::solution::IterationStats;

/// Which guard fired, with enough context for a log line.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum HealthIssue {
    /// A non-finite entry appeared in `x`, `u`, or `v` (the vector name
    /// is carried for diagnostics).
    NonFiniteVector {
        /// `'x'`, `'u'`, or `'v'`.
        which: char,
    },
    /// A Golub–Kahan coefficient (α, β) or a residual estimate went
    /// non-finite — the recurrence itself has broken down.
    NonFiniteScalar,
    /// The residual norm has exceeded `factor ×` its best value for
    /// `window` consecutive iterations. LSQR's rnorm is monotonically
    /// non-increasing in exact arithmetic, so sustained growth means the
    /// recurrence lost orthogonality to numerical corruption.
    ResidualDivergence {
        /// Best residual seen before the diverging window.
        best: f64,
        /// Latest residual.
        latest: f64,
    },
}

impl std::fmt::Display for HealthIssue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HealthIssue::NonFiniteVector { which } => {
                write!(f, "non-finite entry in vector {which}")
            }
            HealthIssue::NonFiniteScalar => write!(f, "non-finite recurrence coefficient"),
            HealthIssue::ResidualDivergence { best, latest } => {
                write!(f, "residual diverged: best {best:.3e}, latest {latest:.3e}")
            }
        }
    }
}

/// Configuration of the per-iteration guards.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HealthConfig {
    /// Master switch; `false` skips every check.
    pub enabled: bool,
    /// Scan `x`/`u`/`v` for NaN/Inf entries each iteration. The scan is
    /// O(m + n) per iteration — negligible next to the two O(nnz) aprods.
    pub scan_vectors: bool,
    /// Trip the divergence watchdog when the last `divergence_window`
    /// residuals all exceed `divergence_factor ×` the best residual seen
    /// before that window. `INFINITY` disables the watchdog.
    pub divergence_factor: f64,
    /// Consecutive diverging iterations required before tripping (guards
    /// against one-off float noise near the noise floor).
    pub divergence_window: usize,
}

impl HealthConfig {
    /// Guards on, with a watchdog loose enough to never fire on a healthy
    /// (even badly conditioned) solve: 1000× growth sustained for 4
    /// iterations.
    pub fn default_on() -> Self {
        HealthConfig {
            enabled: true,
            scan_vectors: true,
            divergence_factor: 1e3,
            divergence_window: 4,
        }
    }

    /// Everything off (the seed's behavior).
    pub fn off() -> Self {
        HealthConfig {
            enabled: false,
            scan_vectors: false,
            divergence_factor: f64::INFINITY,
            divergence_window: usize::MAX,
        }
    }
}

impl Default for HealthConfig {
    fn default() -> Self {
        HealthConfig::default_on()
    }
}

fn all_finite(v: &[f64]) -> bool {
    v.iter().all(|x| x.is_finite())
}

/// Run every enabled guard against `state` (called after an iteration has
/// updated it). Returns the first issue found, or `None` when healthy.
pub fn check_state(cfg: &HealthConfig, state: &LsqrState) -> Option<HealthIssue> {
    check_components(
        cfg,
        &[
            state.alfa,
            state.beta,
            state.rnorm,
            state.arnorm,
            state.xnorm,
        ],
        &[('x', &state.x), ('u', &state.u), ('v', &state.v)],
        &state.history,
    )
}

/// Guard a solve whose state lives in loose components rather than an
/// [`LsqrState`] — the distributed rank loop uses this with its sharded
/// `u`. Semantics are identical to [`check_state`].
pub fn check_components(
    cfg: &HealthConfig,
    scalars: &[f64],
    vectors: &[(char, &[f64])],
    history: &[IterationStats],
) -> Option<HealthIssue> {
    if !cfg.enabled {
        return None;
    }
    // Recurrence scalars first: cheapest, and a broken α/β implicates the
    // vectors anyway.
    if !scalars.iter().all(|s| s.is_finite()) {
        return Some(HealthIssue::NonFiniteScalar);
    }
    if cfg.scan_vectors {
        for &(which, v) in vectors {
            if !all_finite(v) {
                return Some(HealthIssue::NonFiniteVector { which });
            }
        }
    }
    divergence(cfg, history)
}

/// The residual-divergence watchdog, recomputed statelessly from the
/// iteration history so resumed solves judge exactly as uninterrupted ones.
fn divergence(cfg: &HealthConfig, h: &[IterationStats]) -> Option<HealthIssue> {
    if !cfg.divergence_factor.is_finite() || cfg.divergence_window == 0 {
        return None;
    }
    if h.len() <= cfg.divergence_window {
        return None;
    }
    let (head, tail) = h.split_at(h.len() - cfg.divergence_window);
    let best = head.iter().map(|s| s.rnorm).fold(f64::INFINITY, f64::min);
    if !best.is_finite() || best <= 0.0 {
        return None;
    }
    let threshold = cfg.divergence_factor * best;
    if tail.iter().all(|s| s.rnorm > threshold) {
        return Some(HealthIssue::ResidualDivergence {
            best,
            latest: tail.last().expect("window nonempty").rnorm,
        });
    }
    None
}

/// Distributed helper: reduce a state to one "is broken" flag suitable for
/// piggybacking on an existing Max-allreduce (1.0 = breakdown somewhere).
pub fn breakdown_flag(cfg: &HealthConfig, state: &LsqrState) -> f64 {
    if check_state(cfg, state).is_some() {
        1.0
    } else {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solution::IterationStats;

    fn healthy_state(n: usize, m: usize) -> LsqrState {
        LsqrState {
            itn: 3,
            x: vec![1.0; n],
            v: vec![0.5; n],
            w: vec![0.1; n],
            u: vec![0.2; m],
            var: vec![0.0; n],
            alfa: 1.0,
            beta: 2.0,
            rhobar: 1.0,
            phibar: 0.5,
            anorm: 10.0,
            acond: 100.0,
            ddnorm: 1.0,
            res2: 0.0,
            rnorm: 0.5,
            arnorm: 0.01,
            xnorm: 1.0,
            xxnorm: 1.0,
            z: 0.0,
            cs2: -1.0,
            sn2: 0.0,
            bnorm: 4.0,
            stopped: None,
            history: Vec::new(),
        }
    }

    fn stats(iteration: usize, rnorm: f64) -> IterationStats {
        IterationStats {
            iteration,
            rnorm,
            arnorm: 0.0,
            anorm: 1.0,
            acond: 1.0,
            xnorm: 1.0,
            seconds: 0.0,
        }
    }

    #[test]
    fn healthy_state_passes() {
        let cfg = HealthConfig::default_on();
        assert_eq!(check_state(&cfg, &healthy_state(4, 8)), None);
        assert_eq!(breakdown_flag(&cfg, &healthy_state(4, 8)), 0.0);
    }

    #[test]
    fn nan_in_each_vector_is_caught_and_named() {
        let cfg = HealthConfig::default_on();
        for which in ['x', 'u', 'v'] {
            let mut s = healthy_state(4, 8);
            match which {
                'x' => s.x[2] = f64::NAN,
                'u' => s.u[5] = f64::INFINITY,
                _ => s.v[0] = f64::NEG_INFINITY,
            }
            assert_eq!(
                check_state(&cfg, &s),
                Some(HealthIssue::NonFiniteVector { which })
            );
            assert_eq!(breakdown_flag(&cfg, &s), 1.0);
        }
    }

    #[test]
    fn non_finite_alfa_beta_is_breakdown() {
        let cfg = HealthConfig::default_on();
        let mut s = healthy_state(4, 8);
        s.alfa = f64::NAN;
        assert_eq!(check_state(&cfg, &s), Some(HealthIssue::NonFiniteScalar));
        let mut s = healthy_state(4, 8);
        s.beta = f64::INFINITY;
        assert_eq!(check_state(&cfg, &s), Some(HealthIssue::NonFiniteScalar));
    }

    #[test]
    fn zero_alfa_beta_is_not_breakdown() {
        // Exact zeros are legitimate LSQR termination events (b in the
        // range of A), handled by the recurrence itself — the guard must
        // not reclassify them.
        let cfg = HealthConfig::default_on();
        let mut s = healthy_state(4, 8);
        s.alfa = 0.0;
        s.beta = 0.0;
        assert_eq!(check_state(&cfg, &s), None);
    }

    #[test]
    fn divergence_watchdog_needs_a_full_window() {
        let cfg = HealthConfig {
            divergence_factor: 10.0,
            divergence_window: 3,
            ..HealthConfig::default_on()
        };
        let mut s = healthy_state(4, 8);
        s.history = vec![stats(1, 1.0), stats(2, 0.5)];
        // Two big residuals, window of three: not yet.
        s.history.push(stats(3, 100.0));
        s.history.push(stats(4, 100.0));
        assert_eq!(check_state(&cfg, &s), None);
        // Third consecutive: trips.
        s.history.push(stats(5, 120.0));
        match check_state(&cfg, &s) {
            Some(HealthIssue::ResidualDivergence { best, latest }) => {
                assert_eq!(best, 0.5);
                assert_eq!(latest, 120.0);
            }
            other => panic!("expected divergence, got {other:?}"),
        }
    }

    #[test]
    fn divergence_ignores_recovery_within_window() {
        let cfg = HealthConfig {
            divergence_factor: 10.0,
            divergence_window: 3,
            ..HealthConfig::default_on()
        };
        let mut s = healthy_state(4, 8);
        s.history = vec![
            stats(1, 1.0),
            stats(2, 0.5),
            stats(3, 100.0),
            stats(4, 0.4), // recovered — float noise, not corruption
            stats(5, 100.0),
        ];
        assert_eq!(check_state(&cfg, &s), None);
    }

    #[test]
    fn disabled_guards_see_nothing() {
        let cfg = HealthConfig::off();
        let mut s = healthy_state(4, 8);
        s.x[0] = f64::NAN;
        s.alfa = f64::NAN;
        assert_eq!(check_state(&cfg, &s), None);
        assert_eq!(breakdown_flag(&cfg, &s), 0.0);
    }

    #[test]
    fn display_forms_are_informative() {
        let a = HealthIssue::NonFiniteVector { which: 'u' };
        assert!(a.to_string().contains('u'));
        let b = HealthIssue::ResidualDivergence {
            best: 1e-3,
            latest: 5.0,
        };
        assert!(b.to_string().contains("diverged"));
    }
}
