//! Out-of-core solves: LSQR over an on-disk [`TiledSystem`].
//!
//! Paper-scale AVU-GSR observation matrices (10/30/60 GB in §V-B, up to
//! `O(10^{11})` coefficients in production) exceed the memory of any
//! single node the paper benchmarks. [`TiledOperator`] implements
//! [`Operator`] by streaming star-aligned row tiles from a `gaia-tiles/v1`
//! spill directory through an ordinary [`Backend`], holding at most
//! `budget / tile_bytes` tiles resident via the LRU cache inside
//! [`TiledSystem`].
//!
//! **Bit-identity**: tiles are processed sequentially in global row
//! order, and every per-tile product copies current output values in
//! (`gather_cols`) and back out (`scatter_cols`). Sequential and
//! owner-computes backends accumulate each output slot in ascending row
//! order, so the tiled solve is *bitwise identical* to the resident solve
//! with the same backend — at any capacity budget. Reduction-reordering
//! strategies (striped, replicated, atomic) stay within their usual
//! cross-backend tolerance class.
//!
//! Every tile access is recorded into the telemetry [`TileCell`]
//! (loads, hits, evictions, bytes moved, peak resident bytes), which is
//! what the `capacity` bench audits against its budget.

use gaia_backends::Backend;
use gaia_sparse::{TileAccess, TiledSystem};
use gaia_telemetry::TileCell;

use crate::checkpoint::TileProvenance;
use crate::config::LsqrConfig;
use crate::lsqr::OperatorLsqr;
use crate::operator::{Operator, OperatorError};
use crate::solution::Solution;

/// [`Operator`] adapter streaming a [`TiledSystem`] tile-by-tile through
/// a [`Backend`]. See the module docs for the bit-identity argument.
#[derive(Debug)]
pub struct TiledOperator<'a, B: Backend + ?Sized> {
    tiles: &'a TiledSystem,
    backend: &'a B,
}

impl<'a, B: Backend + ?Sized> TiledOperator<'a, B> {
    /// Bind a tile set to the backend that runs each tile's products.
    pub fn new(tiles: &'a TiledSystem, backend: &'a B) -> Self {
        TiledOperator { tiles, backend }
    }

    /// The underlying tile set.
    pub fn tiles(&self) -> &'a TiledSystem {
        self.tiles
    }

    /// Record one tile access into the telemetry registry.
    fn record(&self, access: &TileAccess) {
        let mut cell = TileCell::default();
        if access.hit {
            cell.hits = 1;
        } else {
            cell.loads = 1;
            cell.loaded_bytes = access.loaded_bytes;
        }
        cell.evictions = access.evictions;
        cell.evicted_bytes = access.evicted_bytes;
        cell.peak_resident_bytes = self.tiles.stats().peak_resident_bytes;
        gaia_telemetry::record_tile(&cell);
    }
}

impl<B: Backend + ?Sized> Operator for TiledOperator<'_, B> {
    fn n_rows(&self) -> usize {
        self.tiles.n_rows()
    }

    fn n_cols(&self) -> usize {
        self.tiles.n_cols()
    }

    fn known_terms(&self) -> &[f64] {
        self.tiles.known_terms()
    }

    fn column_norms(&self) -> Result<Vec<f64>, OperatorError> {
        Ok(self.tiles.column_norms()?)
    }

    fn aprod1(&self, x: &[f64], out: &mut [f64]) -> Result<(), OperatorError> {
        for t in 0..self.tiles.n_tiles() {
            let (shard, access) = self.tiles.tile(t)?;
            self.record(&access);
            let rows = shard.global_rows();
            let rows = rows.start as usize..rows.end as usize;
            let x_local = shard.gather_cols(x);
            // Rows are tile-disjoint: accumulate straight into the slice.
            self.backend.aprod1(&shard.system, &x_local, &mut out[rows]);
        }
        Ok(())
    }

    fn aprod2(&self, y: &[f64], out: &mut [f64]) -> Result<(), OperatorError> {
        for t in 0..self.tiles.n_tiles() {
            let (shard, access) = self.tiles.tile(t)?;
            self.record(&access);
            let rows = shard.global_rows();
            let rows = rows.start as usize..rows.end as usize;
            // Columns are shared across tiles: copy the running values in,
            // let the backend accumulate this tile's rows, copy back out.
            let mut out_local = shard.gather_cols(out);
            self.backend.aprod2(&shard.system, &y[rows], &mut out_local);
            shard.scatter_cols(&out_local, out);
        }
        Ok(())
    }

    fn nrm2(&self, v: &[f64]) -> f64 {
        self.backend.nrm2(v)
    }

    fn scal(&self, v: &mut [f64], s: f64) {
        self.backend.scal(v, s);
    }

    fn provenance(&self) -> Option<TileProvenance> {
        Some(TileProvenance {
            dir: self.tiles.dir().display().to_string(),
            matrix_fingerprint: self.tiles.manifest().matrix_fingerprint.clone(),
        })
    }
}

/// Solve an out-of-core system end to end: build a [`TiledOperator`],
/// run [`OperatorLsqr`], and propagate any tile I/O / checksum / budget
/// failure as a typed error (naming the offending tile path).
pub fn solve_tiled<B: Backend + ?Sized>(
    tiles: &TiledSystem,
    backend: &B,
    config: &LsqrConfig,
) -> Result<Solution, OperatorError> {
    OperatorLsqr::new(TiledOperator::new(tiles, backend), *config)?.try_run()
}
