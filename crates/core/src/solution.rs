//! Solver output: solution vector, standard errors, stop reason, and
//! per-iteration statistics.

use serde::{Deserialize, Serialize};

/// Why LSQR stopped — the `istop` codes of the reference implementation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum StopReason {
    /// `x = 0` already solves the system (`b = 0`).
    TrivialSolution,
    /// `Ax ≈ b` within `atol`/`btol` (consistent system solved).
    ResidualSmall,
    /// The least-squares optimality condition `‖Aᵀr‖ ≤ atol·‖A‖·‖r‖` holds.
    LeastSquaresConverged,
    /// Condition-number estimate exceeded `conlim`.
    ConditionLimit,
    /// `Ax ≈ b` to machine precision.
    ResidualMachinePrecision,
    /// Optimality to machine precision.
    LeastSquaresMachinePrecision,
    /// Condition estimate exceeded machine-precision headroom.
    ConditionMachinePrecision,
    /// Iteration limit reached (the paper's fixed-100-iteration runs always
    /// end here by design).
    IterationLimit,
    /// A health guard tripped: non-finite values in the iterates, a
    /// non-finite Golub–Kahan coefficient, or a diverging residual. The
    /// solution carries the last state before garbage propagated further.
    NumericalBreakdown,
    /// The solve was cancelled cooperatively — a deadline expired or a
    /// [`crate::cancel::CancellationToken`] was triggered — at an
    /// iteration boundary. The state up to that iteration is intact (and
    /// checkpointable) but the solution is partial, never converged.
    Cancelled,
}

impl StopReason {
    /// True when the solve ended in a converged state (any reason other
    /// than hitting the iteration limit or the condition limit).
    pub fn converged(self) -> bool {
        !matches!(
            self,
            StopReason::IterationLimit
                | StopReason::ConditionLimit
                | StopReason::ConditionMachinePrecision
                | StopReason::NumericalBreakdown
                | StopReason::Cancelled
        )
    }
}

/// Scalar diagnostics captured after each LSQR iteration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IterationStats {
    /// 1-based iteration number.
    pub iteration: usize,
    /// Residual norm estimate `‖r‖`.
    pub rnorm: f64,
    /// Optimality norm estimate `‖Aᵀr‖`.
    pub arnorm: f64,
    /// Frobenius-norm estimate of `A` accumulated so far.
    pub anorm: f64,
    /// Condition-number estimate of `A`.
    pub acond: f64,
    /// Solution norm estimate `‖x‖`.
    pub xnorm: f64,
    /// Wall-clock seconds spent in this iteration.
    pub seconds: f64,
}

/// Result of an LSQR solve.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Solution {
    /// Solution vector (in the original, unpreconditioned variables).
    pub x: Vec<f64>,
    /// Estimate of `diag((AᵀA)⁻¹)` (unpreconditioned variables); empty when
    /// `compute_var` was off.
    pub var: Vec<f64>,
    /// Stop reason.
    pub stop: StopReason,
    /// Iterations actually performed.
    pub iterations: usize,
    /// Final residual norm `‖b − Ax‖`.
    pub rnorm: f64,
    /// Final optimality norm `‖Aᵀ(b − Ax)‖`.
    pub arnorm: f64,
    /// Final estimate of `‖A‖_F`.
    pub anorm: f64,
    /// Final condition-number estimate.
    pub acond: f64,
    /// Final solution norm.
    pub xnorm: f64,
    /// Norm of the right-hand side.
    pub bnorm: f64,
    /// Number of rows of the solved system.
    pub n_rows: usize,
    /// Per-iteration diagnostics (in iteration order).
    pub history: Vec<IterationStats>,
}

impl Solution {
    /// Per-unknown standard errors, the quantity plotted in Fig. 6 (right
    /// panels): `se_j = sqrt(var_j · s²)` with the residual variance
    /// `s² = ‖r‖² / (m − n)`. Returns `None` when `var` was not computed or
    /// the system has no redundancy.
    pub fn standard_errors(&self) -> Option<Vec<f64>> {
        if self.var.is_empty() {
            return None;
        }
        let m = self.n_rows as f64;
        let n = self.x.len() as f64;
        if m <= n {
            return None;
        }
        let s2 = self.rnorm * self.rnorm / (m - n);
        Some(self.var.iter().map(|&v| (v * s2).max(0.0).sqrt()).collect())
    }

    /// Mean seconds per iteration, the paper's primary performance metric
    /// ("we compare the performances ... using the LSQR iteration time").
    pub fn mean_iteration_seconds(&self) -> f64 {
        if self.history.is_empty() {
            return 0.0;
        }
        self.history.iter().map(|s| s.seconds).sum::<f64>() / self.history.len() as f64
    }

    /// Relative residual `‖r‖ / ‖b‖`.
    pub fn relative_residual(&self) -> f64 {
        if self.bnorm == 0.0 {
            0.0
        } else {
            self.rnorm / self.bnorm
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dummy_solution() -> Solution {
        Solution {
            x: vec![1.0, 2.0],
            var: vec![0.25, 4.0],
            stop: StopReason::ResidualSmall,
            iterations: 3,
            rnorm: 2.0,
            arnorm: 0.1,
            anorm: 10.0,
            acond: 50.0,
            xnorm: 2.2,
            bnorm: 4.0,
            n_rows: 6,
            history: vec![
                IterationStats {
                    iteration: 1,
                    rnorm: 3.0,
                    arnorm: 1.0,
                    anorm: 9.0,
                    acond: 30.0,
                    xnorm: 1.0,
                    seconds: 0.5,
                },
                IterationStats {
                    iteration: 2,
                    rnorm: 2.0,
                    arnorm: 0.1,
                    anorm: 10.0,
                    acond: 50.0,
                    xnorm: 2.2,
                    seconds: 1.5,
                },
            ],
        }
    }

    #[test]
    fn standard_errors_follow_residual_variance() {
        let s = dummy_solution();
        // s² = 4 / (6 − 2) = 1 → se = sqrt(var).
        let se = s.standard_errors().unwrap();
        assert!((se[0] - 0.5).abs() < 1e-12);
        assert!((se[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn standard_errors_none_without_var_or_redundancy() {
        let mut s = dummy_solution();
        s.var.clear();
        assert!(s.standard_errors().is_none());
        let mut s2 = dummy_solution();
        s2.n_rows = 2;
        assert!(s2.standard_errors().is_none());
    }

    #[test]
    fn mean_iteration_time_averages_history() {
        let s = dummy_solution();
        assert!((s.mean_iteration_seconds() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn stop_reason_convergence_classification() {
        assert!(StopReason::ResidualSmall.converged());
        assert!(StopReason::LeastSquaresConverged.converged());
        assert!(StopReason::TrivialSolution.converged());
        assert!(!StopReason::IterationLimit.converged());
        assert!(!StopReason::ConditionLimit.converged());
        assert!(!StopReason::NumericalBreakdown.converged());
        assert!(!StopReason::Cancelled.converged());
    }

    #[test]
    fn relative_residual_handles_zero_b() {
        let mut s = dummy_solution();
        assert!((s.relative_residual() - 0.5).abs() < 1e-12);
        s.bnorm = 0.0;
        assert_eq!(s.relative_residual(), 0.0);
    }
}
