//! Solver checkpoint/restart.
//!
//! Production AVU-GSR runs at CINECA span multiple batch allocations, so
//! the pipeline persists the solver state between jobs and resumes. This
//! module provides the same facility for [`crate::lsqr::LsqrState`]:
//! a self-describing JSON envelope carrying the full Golub–Kahan state
//! plus integrity metadata (problem shape and a right-hand-side
//! fingerprint), so a checkpoint cannot silently be resumed against a
//! different system.
//!
//! Floats are stored as IEEE-754 **bit patterns** (integers), not decimal
//! strings: a resumed solve must be *bit-identical* to an uninterrupted
//! one, and decimal round-trips through the JSON float parser can lose
//! the last ulp (observed with the vendored `serde_json`). The tests
//! assert bit-exactness end-to-end.

use std::io::{Read, Write};
use std::path::{Path, PathBuf};

use gaia_sparse::{SparseSystem, TiledSystem};
use serde::{Deserialize, Serialize};

use crate::config::LsqrConfig;
use crate::lsqr::LsqrState;
use crate::solution::{IterationStats, StopReason};

/// Envelope format version (bump on layout changes).
pub const CHECKPOINT_VERSION: u32 = 2;

/// Bit-exact wire form of [`LsqrState`]: every `f64` as `u64` bits.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StateBits {
    itn: usize,
    x: Vec<u64>,
    v: Vec<u64>,
    w: Vec<u64>,
    u: Vec<u64>,
    var: Vec<u64>,
    scalars: Vec<u64>,
    stopped: Option<StopReason>,
    history: Vec<(usize, Vec<u64>)>,
}

fn to_bits(v: &[f64]) -> Vec<u64> {
    v.iter().map(|x| x.to_bits()).collect()
}

fn from_bits(v: &[u64]) -> Vec<f64> {
    v.iter().map(|&x| f64::from_bits(x)).collect()
}

const N_SCALARS: usize = 14;

impl From<&LsqrState> for StateBits {
    fn from(s: &LsqrState) -> Self {
        StateBits {
            itn: s.itn,
            x: to_bits(&s.x),
            v: to_bits(&s.v),
            w: to_bits(&s.w),
            u: to_bits(&s.u),
            var: to_bits(&s.var),
            scalars: to_bits(&[
                s.alfa, s.beta, s.rhobar, s.phibar, s.anorm, s.acond, s.ddnorm, s.res2, s.rnorm,
                s.arnorm, s.xnorm, s.xxnorm, s.z, s.bnorm,
            ])
            .into_iter()
            .chain([s.cs2.to_bits(), s.sn2.to_bits()])
            .collect(),
            stopped: s.stopped,
            history: s
                .history
                .iter()
                .map(|h| {
                    (
                        h.iteration,
                        to_bits(&[h.rnorm, h.arnorm, h.anorm, h.acond, h.xnorm, h.seconds]),
                    )
                })
                .collect(),
        }
    }
}

impl StateBits {
    fn into_state(self) -> Result<LsqrState, CheckpointError> {
        if self.scalars.len() != N_SCALARS + 2 {
            return Err(CheckpointError::Mismatch(format!(
                "{} scalar slots (expected {})",
                self.scalars.len(),
                N_SCALARS + 2
            )));
        }
        let sc = from_bits(&self.scalars);
        let history = self
            .history
            .into_iter()
            .map(|(iteration, vals)| {
                if vals.len() != 6 {
                    return Err(CheckpointError::Mismatch(
                        "history record has wrong arity".into(),
                    ));
                }
                let f = from_bits(&vals);
                Ok(IterationStats {
                    iteration,
                    rnorm: f[0],
                    arnorm: f[1],
                    anorm: f[2],
                    acond: f[3],
                    xnorm: f[4],
                    seconds: f[5],
                })
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(LsqrState {
            itn: self.itn,
            x: from_bits(&self.x),
            v: from_bits(&self.v),
            w: from_bits(&self.w),
            u: from_bits(&self.u),
            var: from_bits(&self.var),
            alfa: sc[0],
            beta: sc[1],
            rhobar: sc[2],
            phibar: sc[3],
            anorm: sc[4],
            acond: sc[5],
            ddnorm: sc[6],
            res2: sc[7],
            rnorm: sc[8],
            arnorm: sc[9],
            xnorm: sc[10],
            xxnorm: sc[11],
            z: sc[12],
            bnorm: sc[13],
            cs2: sc[14],
            sn2: sc[15],
            stopped: self.stopped,
            history,
        })
    }
}

/// Provenance of the on-disk tile set an out-of-core solve streamed from,
/// recorded into checkpoints so a resume verifies it reads the *same
/// matrix* (the spill directory may have been moved — the path is a hint,
/// overridable via `GAIA_TILES_DIR`; the fingerprint is the authority).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TileProvenance {
    /// Spill directory the run streamed tiles from, stored as UTF-8 (the
    /// vendored serde has no `PathBuf` impls; resolve through
    /// [`gaia_sparse::resolve_tiles_dir`] before reopening).
    pub dir: String,
    /// `matrix_fingerprint` of the tile manifest (FNV over every tile
    /// checksum plus the known-terms checksum).
    pub matrix_fingerprint: String,
}

impl TileProvenance {
    /// The recorded spill directory as a path, after applying the
    /// `GAIA_TILES_DIR` override.
    pub fn resolved_dir(&self) -> PathBuf {
        gaia_sparse::resolve_tiles_dir(Path::new(&self.dir))
    }
}

/// A serializable snapshot of an in-flight solve.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Checkpoint {
    /// Envelope version.
    pub version: u32,
    /// Rows of the system the state belongs to.
    pub n_rows: usize,
    /// Columns of the system the state belongs to.
    pub n_cols: usize,
    /// Fingerprint of the known terms (defends against resuming on the
    /// wrong dataset).
    pub rhs_fingerprint: u64,
    /// Whether the run was preconditioned (the state lives in the scaled
    /// space, so this must match on resume).
    pub preconditioned: bool,
    /// The solver state, bit-exact.
    pub state: StateBits,
    /// Tile-set provenance for out-of-core solves (`None` for resident
    /// runs; absent in pre-tiling checkpoints, hence the serde default).
    #[serde(default)]
    pub tiles: Option<TileProvenance>,
}

/// Errors raised when restoring a checkpoint.
#[derive(Debug)]
pub enum CheckpointError {
    /// I/O failure.
    Io(std::io::Error),
    /// Malformed JSON.
    Parse(serde_json::Error),
    /// The checkpoint does not belong to the given system/config.
    Mismatch(String),
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint I/O error: {e}"),
            CheckpointError::Parse(e) => write!(f, "checkpoint parse error: {e}"),
            CheckpointError::Mismatch(m) => write!(f, "checkpoint mismatch: {m}"),
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<std::io::Error> for CheckpointError {
    fn from(e: std::io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

impl From<serde_json::Error> for CheckpointError {
    fn from(e: serde_json::Error) -> Self {
        CheckpointError::Parse(e)
    }
}

/// FNV-1a over the bit patterns of the known terms — cheap, stable, and
/// order-sensitive, which is what the integrity check needs.
pub fn rhs_fingerprint(sys: &SparseSystem) -> u64 {
    rhs_fingerprint_of(sys.known_terms())
}

/// [`rhs_fingerprint`] over a raw right-hand-side slice (the tiled path
/// has no resident [`SparseSystem`] to fingerprint).
pub fn rhs_fingerprint_of(known: &[f64]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &v in known {
        for byte in v.to_bits().to_le_bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    hash
}

impl Checkpoint {
    /// Capture a snapshot of `state` for `sys`/`config`.
    pub fn capture(sys: &SparseSystem, config: &LsqrConfig, state: &LsqrState) -> Self {
        Checkpoint {
            version: CHECKPOINT_VERSION,
            n_rows: sys.n_rows(),
            n_cols: sys.n_cols(),
            rhs_fingerprint: rhs_fingerprint(sys),
            preconditioned: config.precondition,
            state: StateBits::from(state),
            tiles: None,
        }
    }

    /// Capture a snapshot of an out-of-core solve over `tiles`, recording
    /// the spill directory and matrix fingerprint as provenance.
    pub fn capture_tiled(tiles: &TiledSystem, config: &LsqrConfig, state: &LsqrState) -> Self {
        Checkpoint {
            version: CHECKPOINT_VERSION,
            n_rows: tiles.n_rows(),
            n_cols: tiles.n_cols(),
            rhs_fingerprint: rhs_fingerprint_of(tiles.known_terms()),
            preconditioned: config.precondition,
            state: StateBits::from(state),
            tiles: Some(TileProvenance {
                dir: tiles.dir().display().to_string(),
                matrix_fingerprint: tiles.manifest().matrix_fingerprint.clone(),
            }),
        }
    }

    /// Shared integrity gate for both restore paths.
    fn validate_common(
        &self,
        n_rows: usize,
        n_cols: usize,
        rhs: u64,
        config: &LsqrConfig,
    ) -> Result<(), CheckpointError> {
        if self.version != CHECKPOINT_VERSION {
            return Err(CheckpointError::Mismatch(format!(
                "version {} (expected {CHECKPOINT_VERSION})",
                self.version
            )));
        }
        if self.n_rows != n_rows || self.n_cols != n_cols {
            return Err(CheckpointError::Mismatch(format!(
                "shape {}x{} vs system {}x{}",
                self.n_rows, self.n_cols, n_rows, n_cols
            )));
        }
        if self.rhs_fingerprint != rhs {
            return Err(CheckpointError::Mismatch(
                "known-terms fingerprint differs — wrong dataset".into(),
            ));
        }
        if self.preconditioned != config.precondition {
            return Err(CheckpointError::Mismatch(
                "preconditioning setting differs — state space mismatch".into(),
            ));
        }
        Ok(())
    }

    /// Validate against a system/config and hand back the state.
    pub fn restore(
        self,
        sys: &SparseSystem,
        config: &LsqrConfig,
    ) -> Result<LsqrState, CheckpointError> {
        self.validate_common(sys.n_rows(), sys.n_cols(), rhs_fingerprint(sys), config)?;
        self.state.into_state()
    }

    /// Validate against an out-of-core tile set and hand back the state.
    /// Beyond the shape/RHS/preconditioning gates of [`Checkpoint::restore`],
    /// the manifest's matrix fingerprint must match the recorded provenance
    /// — a checkpoint taken against one tile set must not resume against a
    /// regenerated or mutated one, even at the same path.
    pub fn restore_tiled(
        self,
        tiles: &TiledSystem,
        config: &LsqrConfig,
    ) -> Result<LsqrState, CheckpointError> {
        self.validate_common(
            tiles.n_rows(),
            tiles.n_cols(),
            rhs_fingerprint_of(tiles.known_terms()),
            config,
        )?;
        if let Some(prov) = &self.tiles {
            if prov.matrix_fingerprint != tiles.manifest().matrix_fingerprint {
                return Err(CheckpointError::Mismatch(format!(
                    "tile matrix fingerprint {} differs from manifest {} — \
                     the spill directory holds a different matrix",
                    prov.matrix_fingerprint,
                    tiles.manifest().matrix_fingerprint
                )));
            }
        }
        self.state.into_state()
    }

    /// Serialize to a writer (JSON, floats as bit patterns).
    pub fn write_to<W: Write>(&self, mut w: W) -> Result<(), CheckpointError> {
        serde_json::to_writer(&mut w, self)?;
        w.flush()?;
        Ok(())
    }

    /// Deserialize from a reader.
    pub fn read_from<R: Read>(r: R) -> Result<Self, CheckpointError> {
        Ok(serde_json::from_reader(r)?)
    }

    /// Write to a file path (atomic: temp file + rename, the pattern the
    /// production restart files use so a job killed mid-write never
    /// corrupts the previous checkpoint).
    ///
    /// The temp name *appends* `.tmp` to the full filename rather than
    /// replacing the extension, so `run.json` and `run.ckpt` saved in one
    /// directory get distinct temp files (`run.json.tmp` / `run.ckpt.tmp`)
    /// instead of colliding on `run.tmp`. A failed serialization removes
    /// its temp file instead of leaving it behind.
    pub fn save(&self, path: &Path) -> Result<(), CheckpointError> {
        let mut tmp_name = path
            .file_name()
            .ok_or_else(|| {
                CheckpointError::Io(std::io::Error::new(
                    std::io::ErrorKind::InvalidInput,
                    format!("checkpoint path {} has no filename", path.display()),
                ))
            })?
            .to_os_string();
        tmp_name.push(".tmp");
        let tmp = path.with_file_name(tmp_name);
        let file = std::fs::File::create(&tmp)?;
        if let Err(e) = self.write_to(std::io::BufWriter::new(file)) {
            std::fs::remove_file(&tmp).ok();
            return Err(e);
        }
        if let Err(e) = std::fs::rename(&tmp, path) {
            std::fs::remove_file(&tmp).ok();
            return Err(e.into());
        }
        Ok(())
    }

    /// Read from a file path.
    pub fn load(path: &Path) -> Result<Self, CheckpointError> {
        let file = std::fs::File::open(path)?;
        Self::read_from(std::io::BufReader::new(file))
    }
}

/// Retain-last-K rotation of periodic checkpoints, mirroring the restart
/// chains the production pipeline keeps across CINECA batch allocations:
/// each snapshot lands at `stem.<iteration>.ckpt` next to `stem`, older
/// snapshots beyond `retain` are pruned, and [`CheckpointRotation::latest`]
/// walks the chain newest-first, skipping files that fail to load — a
/// checkpoint corrupted by a crash mid-write costs one save interval, not
/// the run.
pub struct CheckpointRotation {
    stem: std::path::PathBuf,
    retain: usize,
}

impl CheckpointRotation {
    /// Rotation keyed on `stem` (any path; `.<iteration>.ckpt` is appended
    /// to its filename), keeping the newest `retain` snapshots.
    pub fn new(stem: impl Into<std::path::PathBuf>, retain: usize) -> Self {
        CheckpointRotation {
            stem: stem.into(),
            retain: retain.max(1),
        }
    }

    fn slot(&self, iteration: usize) -> std::path::PathBuf {
        let mut name = self
            .stem
            .file_name()
            .map(|n| n.to_os_string())
            .unwrap_or_else(|| "checkpoint".into());
        name.push(format!(".{iteration:08}.ckpt"));
        self.stem.with_file_name(name)
    }

    /// Every existing snapshot in the chain, oldest first.
    pub fn slots(&self) -> Vec<(usize, std::path::PathBuf)> {
        let Some(dir) = self.stem.parent().filter(|d| !d.as_os_str().is_empty()) else {
            return self.scan(Path::new("."));
        };
        self.scan(dir)
    }

    fn scan(&self, dir: &Path) -> Vec<(usize, std::path::PathBuf)> {
        let Some(stem_name) = self.stem.file_name().and_then(|n| n.to_str()) else {
            return Vec::new();
        };
        let prefix = format!("{stem_name}.");
        let mut found = Vec::new();
        let Ok(entries) = std::fs::read_dir(dir) else {
            return Vec::new();
        };
        for entry in entries.flatten() {
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            let Some(rest) = name.strip_prefix(&prefix) else {
                continue;
            };
            let Some(digits) = rest.strip_suffix(".ckpt") else {
                continue;
            };
            if let Ok(iteration) = digits.parse::<usize>() {
                found.push((iteration, entry.path()));
            }
        }
        found.sort();
        found
    }

    /// Save `ckpt` as the snapshot for `iteration` and prune snapshots
    /// beyond the newest `retain`.
    pub fn save(&self, iteration: usize, ckpt: &Checkpoint) -> Result<(), CheckpointError> {
        ckpt.save(&self.slot(iteration))?;
        let slots = self.slots();
        if slots.len() > self.retain {
            for (_, path) in &slots[..slots.len() - self.retain] {
                std::fs::remove_file(path).ok();
            }
        }
        Ok(())
    }

    /// Load the newest snapshot that parses, together with its iteration
    /// number; corrupt or unreadable files are skipped.
    pub fn latest(&self) -> Option<(usize, Checkpoint)> {
        for (iteration, path) in self.slots().into_iter().rev() {
            if let Ok(ckpt) = Checkpoint::load(&path) {
                return Some((iteration, ckpt));
            }
        }
        None
    }

    /// Remove every snapshot in the chain.
    pub fn clear(&self) {
        for (_, path) in self.slots() {
            std::fs::remove_file(path).ok();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lsqr::Lsqr;
    use gaia_backends::SeqBackend;
    use gaia_sparse::{Generator, GeneratorConfig, Rhs, SystemLayout};

    fn system(seed: u64) -> SparseSystem {
        Generator::new(
            GeneratorConfig::new(SystemLayout::tiny())
                .seed(seed)
                .rhs(Rhs::FromTrueSolution { noise_sigma: 1e-8 }),
        )
        .generate()
    }

    #[test]
    fn resume_is_bit_identical_to_uninterrupted_run() {
        let sys = system(401);
        let cfg = LsqrConfig::new();
        let solver = Lsqr::new(&sys, &SeqBackend, cfg);
        let direct = solver.run();

        // Interrupt after 5 iterations, round-trip through JSON, resume.
        let mut state = solver.init_state();
        for _ in 0..5 {
            solver.step(&mut state);
        }
        let ckpt = Checkpoint::capture(&sys, &cfg, &state);
        let mut buf = Vec::new();
        ckpt.write_to(&mut buf).unwrap();
        let restored = Checkpoint::read_from(buf.as_slice())
            .unwrap()
            .restore(&sys, &cfg)
            .unwrap();
        let resumed = solver.run_from(restored);

        assert_eq!(resumed.x, direct.x, "resumed solve must be bit-identical");
        assert_eq!(resumed.iterations, direct.iterations);
        assert_eq!(resumed.stop, direct.stop);
    }

    #[test]
    fn state_round_trip_preserves_every_bit() {
        let sys = system(408);
        let cfg = LsqrConfig::new();
        let solver = Lsqr::new(&sys, &SeqBackend, cfg);
        let mut state = solver.init_state();
        for _ in 0..3 {
            solver.step(&mut state);
        }
        let ckpt = Checkpoint::capture(&sys, &cfg, &state);
        let mut buf = Vec::new();
        ckpt.write_to(&mut buf).unwrap();
        let restored = Checkpoint::read_from(buf.as_slice())
            .unwrap()
            .restore(&sys, &cfg)
            .unwrap();
        assert_eq!(restored, state);
    }

    #[test]
    fn file_round_trip_with_atomic_rename() {
        let sys = system(402);
        let cfg = LsqrConfig::new();
        let solver = Lsqr::new(&sys, &SeqBackend, cfg);
        let mut state = solver.init_state();
        solver.step(&mut state);
        let ckpt = Checkpoint::capture(&sys, &cfg, &state);

        let dir = std::env::temp_dir().join(format!("gaia-ckpt-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("state.json");
        ckpt.save(&path).unwrap();
        assert!(
            !dir.join("state.json.tmp").exists(),
            "temp file renamed away"
        );
        let loaded = Checkpoint::load(&path).unwrap();
        assert_eq!(loaded.restore(&sys, &cfg).unwrap(), state);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn temp_names_do_not_collide_across_extensions() {
        // Regression: `path.with_extension("tmp")` mapped both `run.json`
        // and `run.ckpt` to `run.tmp`, so concurrent saves in one
        // directory raced on the same temp file.
        let sys = system(409);
        let cfg = LsqrConfig::new();
        let solver = Lsqr::new(&sys, &SeqBackend, cfg);
        let mut state = solver.init_state();
        solver.step(&mut state);
        let ckpt = Checkpoint::capture(&sys, &cfg, &state);

        let dir = std::env::temp_dir().join(format!("gaia-ckpt-collide-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        // A leftover temp from a crashed writer with the *old* colliding
        // name must survive saves of differently-extensioned siblings.
        std::fs::write(dir.join("run.tmp"), b"leftover").unwrap();
        ckpt.save(&dir.join("run.json")).unwrap();
        ckpt.save(&dir.join("run.ckpt")).unwrap();
        assert_eq!(std::fs::read(dir.join("run.tmp")).unwrap(), b"leftover");
        assert!(Checkpoint::load(&dir.join("run.json")).is_ok());
        assert!(Checkpoint::load(&dir.join("run.ckpt")).is_ok());
        assert!(!dir.join("run.json.tmp").exists());
        assert!(!dir.join("run.ckpt.tmp").exists());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn rotation_retains_last_k_and_skips_corrupt() {
        let sys = system(410);
        let cfg = LsqrConfig::new();
        let solver = Lsqr::new(&sys, &SeqBackend, cfg);
        let mut state = solver.init_state();

        let dir = std::env::temp_dir().join(format!("gaia-ckpt-rot-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let rot = CheckpointRotation::new(dir.join("solve"), 2);

        for k in 1..=4 {
            solver.step(&mut state);
            rot.save(k, &Checkpoint::capture(&sys, &cfg, &state))
                .unwrap();
        }
        let slots = rot.slots();
        assert_eq!(
            slots.iter().map(|(k, _)| *k).collect::<Vec<_>>(),
            vec![3, 4],
            "only the newest 2 retained"
        );

        // Newest wins...
        let (k, ckpt) = rot.latest().unwrap();
        assert_eq!(k, 4);
        assert_eq!(ckpt.restore(&sys, &cfg).unwrap().itn, 4);
        // ...unless corrupt, in which case the chain falls back.
        std::fs::write(&slots[1].1, b"garbage").unwrap();
        let (k, ckpt) = rot.latest().unwrap();
        assert_eq!(k, 3);
        assert_eq!(ckpt.restore(&sys, &cfg).unwrap().itn, 3);

        rot.clear();
        assert!(rot.latest().is_none());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn wrong_dataset_is_rejected() {
        let sys_a = system(403);
        let sys_b = system(404);
        let cfg = LsqrConfig::new();
        let solver = Lsqr::new(&sys_a, &SeqBackend, cfg);
        let mut state = solver.init_state();
        solver.step(&mut state);
        let ckpt = Checkpoint::capture(&sys_a, &cfg, &state);
        let err = ckpt.restore(&sys_b, &cfg).unwrap_err();
        assert!(matches!(err, CheckpointError::Mismatch(_)), "{err}");
    }

    #[test]
    fn wrong_preconditioning_is_rejected() {
        let sys = system(405);
        let cfg = LsqrConfig::new();
        let solver = Lsqr::new(&sys, &SeqBackend, cfg);
        let state = solver.init_state();
        let ckpt = Checkpoint::capture(&sys, &cfg, &state);
        let other = LsqrConfig::new().precondition(false);
        assert!(ckpt.restore(&sys, &other).is_err());
    }

    #[test]
    fn version_mismatch_is_rejected() {
        let sys = system(406);
        let cfg = LsqrConfig::new();
        let solver = Lsqr::new(&sys, &SeqBackend, cfg);
        let state = solver.init_state();
        let mut ckpt = Checkpoint::capture(&sys, &cfg, &state);
        ckpt.version = 999;
        assert!(matches!(
            ckpt.restore(&sys, &cfg),
            Err(CheckpointError::Mismatch(_))
        ));
    }

    #[test]
    fn fingerprint_is_order_sensitive() {
        let sys = system(407);
        let mut swapped = sys.clone();
        let mut b = swapped.known_terms().to_vec();
        b.swap(0, 1);
        swapped.set_known_terms(b);
        assert_ne!(rhs_fingerprint(&sys), rhs_fingerprint(&swapped));
    }

    #[test]
    fn corrupted_payload_is_a_parse_error() {
        let err = Checkpoint::read_from("not json".as_bytes()).unwrap_err();
        assert!(matches!(err, CheckpointError::Parse(_)));
    }
}
