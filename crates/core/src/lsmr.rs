//! LSMR — the companion algorithm to LSQR (Fong & Saunders, SISC 2011).
//!
//! The AVU-GSR line of work discusses algorithmic alternatives to its
//! customized LSQR; LSMR is the natural candidate: it runs on exactly the
//! same two sparse products per iteration (so every backend and the whole
//! performance-portability analysis transfer unchanged) but applies a
//! second QR factorization so that `‖Aᵀr‖` — the least-squares optimality
//! measure — decreases *monotonically*, which makes early stopping safer
//! on noisy systems. This module implements it as an extension, sharing
//! the solver configuration, preconditioning, and output types with LSQR.
//!
//! The implementation follows the reference `LSMR` (and its SciPy
//! translation) with the same `atol`/`btol`/`conlim` stopping rules.

use gaia_backends::{blas::d2norm, Backend};
use gaia_sparse::SparseSystem;

use crate::config::LsqrConfig;
use crate::precond::ColumnScaling;
use crate::solution::{IterationStats, Solution, StopReason};

/// Solve `min ‖A x − b‖` with LSMR on any backend. Accepts the same
/// configuration as LSQR; `compute_var` is ignored (LSMR has no cheap
/// `var` recurrence, so `Solution::var` comes back empty and
/// `standard_errors()` returns `None`).
pub fn solve_lsmr<B: Backend + ?Sized>(
    sys: &SparseSystem,
    backend: &B,
    cfg: &LsqrConfig,
) -> Solution {
    cfg.validate().expect("invalid LSMR configuration");
    let m = sys.n_rows();
    let n = sys.n_cols();
    let scaling = if cfg.precondition {
        ColumnScaling::from_system(sys)
    } else {
        ColumnScaling::identity(n)
    };
    let d = scaling.inv_norms();
    let damp = cfg.damp;

    let mut u: Vec<f64> = sys.known_terms().to_vec();
    let mut v = vec![0.0f64; n];
    let mut tmp_n = vec![0.0f64; n];

    let normb = backend.nrm2(&u);
    let mut beta = normb;
    let mut alpha = 0.0;
    if beta > 0.0 {
        backend.scal(&mut u, 1.0 / beta);
        backend.aprod2(sys, &u, &mut tmp_n);
        for i in 0..n {
            v[i] = tmp_n[i] * d[i];
        }
        alpha = backend.nrm2(&v);
    }
    if alpha > 0.0 {
        backend.scal(&mut v, 1.0 / alpha);
    }

    let mut x = vec![0.0f64; n];
    let mut history = Vec::new();

    if alpha * beta == 0.0 {
        return Solution {
            x,
            var: Vec::new(),
            stop: StopReason::TrivialSolution,
            iterations: 0,
            rnorm: normb,
            arnorm: 0.0,
            anorm: 0.0,
            acond: 0.0,
            xnorm: 0.0,
            bnorm: normb,
            n_rows: m,
            history,
        };
    }

    // LSMR state (names follow the reference implementation).
    let mut h = v.clone();
    let mut hbar = vec![0.0f64; n];
    let mut zetabar = alpha * beta;
    let mut alphabar = alpha;
    let mut rho = 1.0f64;
    let mut rhobar = 1.0f64;
    let mut cbar = 1.0f64;
    let mut sbar = 0.0f64;

    // Residual-norm estimation state.
    let mut betadd = beta;
    let mut betad = 0.0f64;
    let mut rhodold = 1.0f64;
    let mut tautildeold = 0.0f64;
    let mut thetatilde = 0.0f64;
    let mut zeta = 0.0f64;
    let mut dnorm_sq = 0.0f64;

    // ‖A‖ and cond(A) estimation state.
    let mut norm_a2 = alpha * alpha;
    let mut maxrbar = 0.0f64;
    let mut minrbar = 1e100f64;

    let ctol = if cfg.conlim.is_finite() && cfg.conlim > 0.0 {
        1.0 / cfg.conlim
    } else {
        0.0
    };
    let mut istop = StopReason::IterationLimit;
    let mut itn = 0usize;
    let mut normr = beta;
    let mut normar = alpha * beta;
    let mut norma = norm_a2.sqrt();
    let mut conda = 1.0;
    let mut normx;

    while itn < cfg.max_iters {
        itn += 1;
        // gaia-analyze: allow(timing): per-iteration wall time is solver
        // output (convergence traces), recorded via telemetry when enabled.
        let t_iter = std::time::Instant::now();

        // Bidiagonalization (same products as LSQR).
        backend.scal(&mut u, -alpha);
        for i in 0..n {
            tmp_n[i] = v[i] * d[i];
        }
        backend.aprod1(sys, &tmp_n, &mut u);
        beta = backend.nrm2(&u);
        if beta > 0.0 {
            backend.scal(&mut u, 1.0 / beta);
            backend.scal(&mut v, -beta);
            tmp_n.iter_mut().for_each(|t| *t = 0.0);
            backend.aprod2(sys, &u, &mut tmp_n);
            for i in 0..n {
                v[i] += tmp_n[i] * d[i];
            }
            alpha = backend.nrm2(&v);
            if alpha > 0.0 {
                backend.scal(&mut v, 1.0 / alpha);
            }
        }

        // Construct rotation \hat{P} (eliminates damping).
        let alphahat = d2norm(alphabar, damp);
        let chat = alphabar / alphahat;
        let shat = damp / alphahat;

        // Rotation P_k.
        let rhoold = rho;
        rho = d2norm(alphahat, beta);
        let c = alphahat / rho;
        let s = beta / rho;
        let thetanew = s * alpha;
        alphabar = c * alpha;

        // Rotation \bar{P}_k.
        let rhobarold = rhobar;
        let zetaold = zeta;
        let thetabar = sbar * rho;
        let rhotemp = cbar * rho;
        rhobar = d2norm(cbar * rho, thetanew);
        cbar = cbar * rho / rhobar;
        sbar = thetanew / rhobar;
        zeta = cbar * zetabar;
        zetabar *= -sbar;

        // Update hbar, x, h.
        let hbar_scale = thetabar * rho / (rhoold * rhobarold);
        for i in 0..n {
            hbar[i] = h[i] - hbar_scale * hbar[i];
        }
        let x_scale = zeta / (rho * rhobar);
        for i in 0..n {
            x[i] += x_scale * hbar[i];
        }
        let h_scale = thetanew / rho;
        for i in 0..n {
            h[i] = v[i] - h_scale * h[i];
        }

        // Residual-norm estimate ‖r‖.
        let betaacute = chat * betadd;
        let betacheck = -shat * betadd;
        let betahat = c * betaacute;
        betadd = -s * betaacute;
        let thetatildeold = thetatilde;
        let rhotildeold = d2norm(rhodold, thetabar);
        let ctildeold = rhodold / rhotildeold;
        let stildeold = thetabar / rhotildeold;
        thetatilde = stildeold * rhobar;
        rhodold = ctildeold * rhobar;
        betad = -stildeold * betad + ctildeold * betahat;
        tautildeold = (zetaold - thetatildeold * tautildeold) / rhotildeold;
        let taud = (zeta - thetatilde * tautildeold) / rhodold;
        dnorm_sq += betacheck * betacheck;
        normr = (dnorm_sq + (betad - taud) * (betad - taud) + betadd * betadd).sqrt();

        // ‖A‖, cond(A), ‖Aᵀr‖, ‖x‖ estimates.
        norm_a2 += beta * beta;
        norma = norm_a2.sqrt();
        norm_a2 += alpha * alpha;
        maxrbar = maxrbar.max(rhobarold);
        if itn > 1 {
            minrbar = minrbar.min(rhobarold);
        }
        conda = maxrbar.max(rhotemp) / minrbar.min(rhotemp);
        normar = zetabar.abs();
        normx = gaia_backends::blas::nrm2(&x);

        history.push(IterationStats {
            iteration: itn,
            rnorm: normr,
            arnorm: normar,
            anorm: norma,
            acond: conda,
            xnorm: normx,
            seconds: t_iter.elapsed().as_secs_f64(),
        });

        // Stopping rules (reference ordering).
        let test1 = normr / normb;
        let test2 = if norma * normr > 0.0 {
            normar / (norma * normr)
        } else {
            f64::INFINITY
        };
        let test3 = 1.0 / conda;
        let t1 = test1 / (1.0 + norma * normx / normb);
        let rtol = cfg.btol + cfg.atol * norma * normx / normb;

        let mut stop = None;
        if itn >= cfg.max_iters {
            stop = Some(StopReason::IterationLimit);
        }
        if 1.0 + test3 <= 1.0 {
            stop = Some(StopReason::ConditionMachinePrecision);
        }
        if 1.0 + test2 <= 1.0 {
            stop = Some(StopReason::LeastSquaresMachinePrecision);
        }
        if 1.0 + t1 <= 1.0 {
            stop = Some(StopReason::ResidualMachinePrecision);
        }
        if test3 <= ctol {
            stop = Some(StopReason::ConditionLimit);
        }
        if test2 <= cfg.atol {
            stop = Some(StopReason::LeastSquaresConverged);
        }
        if test1 <= rtol {
            stop = Some(StopReason::ResidualSmall);
        }
        if let Some(reason) = stop {
            istop = reason;
            break;
        }
    }

    scaling.unscale_solution(&mut x);
    let xnorm = gaia_backends::blas::nrm2(&x);
    Solution {
        x,
        var: Vec::new(),
        stop: istop,
        iterations: itn,
        rnorm: normr,
        arnorm: normar,
        anorm: norma,
        acond: conda,
        xnorm,
        bnorm: normb,
        n_rows: m,
        history,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lsqr::solve;
    use gaia_backends::{AtomicBackend, SeqBackend};
    use gaia_sparse::dense::DenseMatrix;
    use gaia_sparse::{Generator, GeneratorConfig, Rhs, SystemLayout};

    fn system(seed: u64, noise: f64) -> gaia_sparse::SparseSystem {
        Generator::new(
            GeneratorConfig::new(SystemLayout::tiny())
                .seed(seed)
                .rhs(Rhs::FromTrueSolution { noise_sigma: noise }),
        )
        .generate()
    }

    #[test]
    fn lsmr_matches_dense_least_squares() {
        let sys = system(501, 1e-3);
        let sol = solve_lsmr(&sys, &SeqBackend, &LsqrConfig::new().max_iters(20_000));
        assert!(sol.stop.converged(), "{:?}", sol.stop);
        let dense = DenseMatrix::from_sparse(&sys);
        let x_ls = dense.least_squares(sys.known_terms());
        let err: f64 = sol
            .x
            .iter()
            .zip(&x_ls)
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            .sqrt();
        let scale: f64 = x_ls.iter().map(|v| v * v).sum::<f64>().sqrt();
        assert!(err / scale < 1e-6, "relative error {}", err / scale);
    }

    #[test]
    fn lsmr_and_lsqr_agree() {
        let sys = system(502, 1e-6);
        let lsqr = solve(&sys, &SeqBackend, &LsqrConfig::new());
        let lsmr = solve_lsmr(&sys, &SeqBackend, &LsqrConfig::new());
        let max_diff = lsqr
            .x
            .iter()
            .zip(&lsmr.x)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f64, f64::max);
        assert!(max_diff < 1e-7, "LSQR vs LSMR differ by {max_diff}");
    }

    #[test]
    fn lsmr_arnorm_is_monotone() {
        // LSMR's defining property: ‖Aᵀr‖ decreases monotonically (LSQR's
        // does not in general).
        let sys = system(503, 1e-2);
        let sol = solve_lsmr(&sys, &SeqBackend, &LsqrConfig::new().max_iters(200));
        for w in sol.history.windows(2) {
            assert!(
                w[1].arnorm <= w[0].arnorm * (1.0 + 1e-9),
                "‖Aᵀr‖ increased: {} -> {} at iter {}",
                w[0].arnorm,
                w[1].arnorm,
                w[1].iteration
            );
        }
    }

    #[test]
    fn lsmr_runs_on_parallel_backends() {
        let sys = system(504, 1e-8);
        let seq = solve_lsmr(&sys, &SeqBackend, &LsqrConfig::new());
        let par = solve_lsmr(&sys, &AtomicBackend::with_threads(4), &LsqrConfig::new());
        let max_diff = seq
            .x
            .iter()
            .zip(&par.x)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f64, f64::max);
        assert!(max_diff < 1e-8);
    }

    #[test]
    fn lsmr_zero_rhs_is_trivial() {
        let mut sys = system(505, 0.0);
        sys.set_known_terms(vec![0.0; sys.n_rows()]);
        let sol = solve_lsmr(&sys, &SeqBackend, &LsqrConfig::new());
        assert_eq!(sol.stop, StopReason::TrivialSolution);
        assert!(sol.x.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn lsmr_has_no_variance_estimates() {
        let sys = system(506, 1e-6);
        let sol = solve_lsmr(&sys, &SeqBackend, &LsqrConfig::new());
        assert!(sol.var.is_empty());
        assert!(sol.standard_errors().is_none());
    }
}
