//! The preconditioned LSQR solver (Paige & Saunders, ACM TOMS 1982).
//!
//! Structure of one iteration (the object of every measurement in the
//! paper): one `aprod1` (`u ← A v − α u`, paper Eq. 3), one `aprod2`
//! (`v ← Aᵀ u − β v`, paper Eq. 4), two norms, and the plane-rotation
//! bookkeeping that updates `x`, `w`, and the convergence estimates.
//! The sparse products are delegated to a [`Backend`]; the BLAS-1 work uses
//! the backend's (possibly parallel) vector ops.
//!
//! With preconditioning enabled the solver works on `min ‖(A D) y − b‖`
//! (`D` from [`ColumnScaling`]) and maps `y`, `var` back to the original
//! variables before returning, so callers never see preconditioned
//! quantities. The residual norm `‖b − A x‖` is identical in both spaces.
//!
//! The solver is *resumable*: the full Golub–Kahan state lives in a
//! serializable [`LsqrState`], advanced one iteration at a time by
//! [`Lsqr::step`]. [`Lsqr::run`] is the ordinary solve loop on top;
//! [`crate::checkpoint`] persists/restores the state, mirroring the
//! production pipeline's restart files (long AVU-GSR runs at CINECA are
//! checkpointed between job allocations).

use std::time::Instant;

use gaia_backends::{blas::d2norm, Backend};
use gaia_sparse::SparseSystem;
use serde::{Deserialize, Serialize};

use crate::cancel::CancellationToken;
use crate::config::LsqrConfig;
use crate::operator::{Operator, OperatorError, SystemOperator};
use crate::precond::ColumnScaling;
use crate::solution::{IterationStats, Solution, StopReason};

/// LSQR solver bound to a generic [`Operator`] — the numerics core every
/// entry point (resident [`Lsqr`], out-of-core [`crate::ooc`]) runs on.
/// Products are fallible, so every driver method returns `Result`; the
/// resident wrapper unwraps them (its operator cannot fail).
pub struct OperatorLsqr<O: Operator> {
    op: O,
    config: LsqrConfig,
    scaling: ColumnScaling,
    cancel: Option<CancellationToken>,
}

/// LSQR solver bound to a resident system, a backend, and a configuration.
pub struct Lsqr<'a, B: Backend + ?Sized> {
    inner: OperatorLsqr<SystemOperator<'a, B>>,
}

/// Convenience wrapper: build an [`Lsqr`] and run it.
pub fn solve<B: Backend + ?Sized>(
    sys: &SparseSystem,
    backend: &B,
    config: &LsqrConfig,
) -> Solution {
    Lsqr::new(sys, backend, *config).run()
}

/// Convenience wrapper: build an [`OperatorLsqr`] over any operator and
/// run it, propagating operator failures (I/O, checksum, budget).
pub fn solve_operator<O: Operator>(op: O, config: &LsqrConfig) -> Result<Solution, OperatorError> {
    OperatorLsqr::new(op, *config)?.try_run()
}

/// The complete mutable state of a solve between iterations.
///
/// Everything needed to continue the bidiagonalization is here — vectors
/// in the *preconditioned* space, plane-rotation scalars, and the norm
/// estimators — so a state serialized after iteration `k` and restored
/// into a fresh process continues bit-identically.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LsqrState {
    /// Iterations completed.
    pub itn: usize,
    /// Solution accumulator (preconditioned space).
    pub x: Vec<f64>,
    /// Right bidiagonalization vector.
    pub v: Vec<f64>,
    /// Search-direction vector.
    pub w: Vec<f64>,
    /// Left bidiagonalization vector (length `n_rows`).
    pub u: Vec<f64>,
    /// Accumulated `var` estimates (empty when disabled).
    pub var: Vec<f64>,
    /// Current α.
    pub alfa: f64,
    /// Current β.
    pub beta: f64,
    /// Plane-rotation state.
    pub rhobar: f64,
    /// Residual-norm recursion state.
    pub phibar: f64,
    /// Frobenius-norm estimate of `A`.
    pub anorm: f64,
    /// Condition estimate.
    pub acond: f64,
    /// Σ‖d_k‖².
    pub ddnorm: f64,
    /// Damped-residual accumulator.
    pub res2: f64,
    /// Current residual norm.
    pub rnorm: f64,
    /// Current ‖Aᵀr‖ estimate.
    pub arnorm: f64,
    /// ‖x‖ estimator state.
    pub xnorm: f64,
    /// ‖x‖ estimator state.
    pub xxnorm: f64,
    /// ‖x‖ estimator state.
    pub z: f64,
    /// ‖x‖ estimator state.
    pub cs2: f64,
    /// ‖x‖ estimator state.
    pub sn2: f64,
    /// ‖b‖ (fixed after initialization).
    pub bnorm: f64,
    /// Stop reason once decided.
    pub stopped: Option<StopReason>,
    /// Per-iteration diagnostics.
    pub history: Vec<IterationStats>,
}

impl LsqrState {
    /// True once a stopping rule has fired.
    pub fn is_done(&self) -> bool {
        self.stopped.is_some()
    }

    /// Freeze the bidiagonalization coefficients of the current iteration
    /// into a [`TrajectorySample`] (for cross-backend trajectory
    /// comparison; see [`Lsqr::trajectory`]).
    pub fn sample(&self) -> TrajectorySample {
        TrajectorySample {
            itn: self.itn,
            alfa: self.alfa,
            beta: self.beta,
            rhobar: self.rhobar,
            phibar: self.phibar,
            rnorm: self.rnorm,
            arnorm: self.arnorm,
        }
    }
}

/// The per-iteration Golub–Kahan coefficients of one LSQR step — the
/// quantities two backends must agree on (within a ULP budget) for their
/// trajectories to be considered equivalent. Every term below is a scalar
/// produced by the iteration's two sparse products and two norms, so any
/// reduction-order divergence between backends shows up here first, long
/// before it is visible in the final solution.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrajectorySample {
    /// Iteration the sample was taken after (0 = initialization).
    pub itn: usize,
    /// Bidiagonalization α (norm of the right vector).
    pub alfa: f64,
    /// Bidiagonalization β (norm of the left vector).
    pub beta: f64,
    /// Plane-rotation state ρ̄.
    pub rhobar: f64,
    /// Residual-recursion state φ̄.
    pub phibar: f64,
    /// Residual-norm estimate.
    pub rnorm: f64,
    /// ‖Aᵀr‖ estimate.
    pub arnorm: f64,
}

impl<O: Operator> OperatorLsqr<O> {
    /// Create a solver instance. Panics on invalid configuration; fails
    /// when the operator cannot produce its column norms.
    pub fn new(op: O, config: LsqrConfig) -> Result<Self, OperatorError> {
        config.validate().expect("invalid LSQR configuration");
        let scaling = if config.precondition {
            ColumnScaling::from_norms(op.column_norms()?)
        } else {
            ColumnScaling::identity(op.n_cols())
        };
        Ok(OperatorLsqr {
            op,
            config,
            scaling,
            cancel: None,
        })
    }

    /// Attach a cancellation token (see [`Lsqr::with_cancel`]).
    pub fn with_cancel(mut self, token: CancellationToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// The configuration in use.
    pub fn config(&self) -> &LsqrConfig {
        &self.config
    }

    /// The operator the solver runs against.
    pub fn operator(&self) -> &O {
        &self.op
    }

    /// Initialize the Golub–Kahan state (`β u = b`, `α v = (A D)ᵀ u`).
    pub fn try_init_state(&self) -> Result<LsqrState, OperatorError> {
        let op = &self.op;
        let cfg = &self.config;
        let n = op.n_cols();
        let d = self.scaling.inv_norms();

        let mut u: Vec<f64> = op.known_terms().to_vec();
        let mut v = vec![0.0f64; n];
        let mut w = vec![0.0f64; n];
        let var = vec![0.0f64; if cfg.compute_var { n } else { 0 }];
        let mut tmp_n = vec![0.0f64; n];

        let bnorm = op.nrm2(&u);
        let beta = bnorm;
        let mut alfa = 0.0;
        if beta > 0.0 {
            op.scal(&mut u, 1.0 / beta);
            op.aprod2(&u, &mut tmp_n)?;
            for i in 0..n {
                v[i] = tmp_n[i] * d[i];
            }
            alfa = op.nrm2(&v);
        }
        if alfa > 0.0 {
            op.scal(&mut v, 1.0 / alfa);
            w.copy_from_slice(&v);
        }
        let arnorm = alfa * beta;
        let stopped = (arnorm == 0.0).then_some(StopReason::TrivialSolution);

        Ok(LsqrState {
            itn: 0,
            x: vec![0.0f64; n],
            v,
            w,
            u,
            var,
            alfa,
            beta,
            rhobar: alfa,
            phibar: beta,
            anorm: 0.0,
            acond: 0.0,
            ddnorm: 0.0,
            res2: 0.0,
            rnorm: beta,
            arnorm,
            xnorm: 0.0,
            xxnorm: 0.0,
            z: 0.0,
            cs2: -1.0,
            sn2: 0.0,
            bnorm,
            stopped,
            history: Vec::new(),
        })
    }

    /// Advance one LSQR iteration. Returns the stop reason once a rule
    /// fires; `None` means "keep iterating". Calling `try_step` on a
    /// finished state is a no-op returning the existing reason.
    pub fn try_step(&self, s: &mut LsqrState) -> Result<Option<StopReason>, OperatorError> {
        if let Some(reason) = s.stopped {
            return Ok(Some(reason));
        }
        let op = &self.op;
        let cfg = &self.config;
        let n = op.n_cols();
        let d = self.scaling.inv_norms();
        let eps = f64::EPSILON;
        let ctol = if cfg.conlim.is_finite() && cfg.conlim > 0.0 {
            1.0 / cfg.conlim
        } else {
            0.0
        };
        let damp = cfg.damp;
        let dampsq = damp * damp;
        let mut tmp_n = vec![0.0f64; n];

        s.itn += 1;
        // gaia-analyze: allow(timing): per-iteration wall time is solver
        // output (convergence traces), recorded via telemetry when enabled.
        let t_iter = Instant::now();

        // Bidiagonalization: u ← (A D) v − α u.
        op.scal(&mut s.u, -s.alfa);
        for i in 0..n {
            tmp_n[i] = s.v[i] * d[i];
        }
        op.aprod1(&tmp_n, &mut s.u)?;
        s.beta = op.nrm2(&s.u);

        if s.beta > 0.0 {
            op.scal(&mut s.u, 1.0 / s.beta);
            s.anorm = (s.anorm * s.anorm + s.alfa * s.alfa + s.beta * s.beta + dampsq).sqrt();
            // v ← D Aᵀ u − β v.
            op.scal(&mut s.v, -s.beta);
            tmp_n.iter_mut().for_each(|t| *t = 0.0);
            op.aprod2(&s.u, &mut tmp_n)?;
            for i in 0..n {
                s.v[i] += tmp_n[i] * d[i];
            }
            s.alfa = op.nrm2(&s.v);
            if s.alfa > 0.0 {
                op.scal(&mut s.v, 1.0 / s.alfa);
            }
        }

        // Plane rotation eliminating the damping parameter.
        let rhobar1 = d2norm(s.rhobar, damp);
        let cs1 = s.rhobar / rhobar1;
        let sn1 = damp / rhobar1;
        let psi = sn1 * s.phibar;
        s.phibar *= cs1;

        // Plane rotation eliminating β.
        let rho = d2norm(rhobar1, s.beta);
        let cs = rhobar1 / rho;
        let sn = s.beta / rho;
        let theta = sn * s.alfa;
        s.rhobar = -cs * s.alfa;
        let phi = cs * s.phibar;
        s.phibar *= sn;
        let tau = sn * phi;

        // Update x and w; accumulate var and ‖d_k‖².
        let t1 = phi / rho;
        let t2 = -theta / rho;
        let t3 = 1.0 / rho;
        let mut dknorm_sq = 0.0;
        if cfg.compute_var {
            for i in 0..n {
                let wi = s.w[i];
                let dk = t3 * wi;
                dknorm_sq += dk * dk;
                s.var[i] += dk * dk;
                s.x[i] += t1 * wi;
                s.w[i] = s.v[i] + t2 * wi;
            }
        } else {
            for i in 0..n {
                let wi = s.w[i];
                let dk = t3 * wi;
                dknorm_sq += dk * dk;
                s.x[i] += t1 * wi;
                s.w[i] = s.v[i] + t2 * wi;
            }
        }
        s.ddnorm += dknorm_sq;

        // Estimate ‖x‖.
        let delta = s.sn2 * rho;
        let gambar = -s.cs2 * rho;
        let rhs = phi - delta * s.z;
        let zbar = rhs / gambar;
        s.xnorm = (s.xxnorm + zbar * zbar).sqrt();
        let gamma = d2norm(gambar, theta);
        s.cs2 = gambar / gamma;
        s.sn2 = theta / gamma;
        s.z = rhs / gamma;
        s.xxnorm += s.z * s.z;

        // Convergence estimates.
        s.acond = s.anorm * s.ddnorm.sqrt();
        let res1 = s.phibar * s.phibar;
        s.res2 += psi * psi;
        s.rnorm = (res1 + s.res2).sqrt();
        s.arnorm = s.alfa * tau.abs();

        let test1 = s.rnorm / s.bnorm;
        let test2 = if s.anorm * s.rnorm > 0.0 {
            s.arnorm / (s.anorm * s.rnorm)
        } else {
            f64::INFINITY
        };
        let test3 = 1.0 / s.acond.max(eps);
        let t1c = test1 / (1.0 + s.anorm * s.xnorm / s.bnorm);
        let rtol = cfg.btol + cfg.atol * s.anorm * s.xnorm / s.bnorm;

        s.history.push(IterationStats {
            iteration: s.itn,
            rnorm: s.rnorm,
            arnorm: s.arnorm,
            anorm: s.anorm,
            acond: s.acond,
            xnorm: s.xnorm,
            seconds: t_iter.elapsed().as_secs_f64(),
        });

        // Health guards run before the convergence tests: a poisoned state
        // must stop as NumericalBreakdown within the iteration that broke
        // it, not fall through tests whose NaN comparisons are all false.
        if crate::health::check_state(&cfg.health, s).is_some() {
            s.stopped = Some(StopReason::NumericalBreakdown);
            return Ok(s.stopped);
        }

        // Cancellation shares the health-guard hook point: checked once
        // per iteration, after the iterate is fully updated, so a
        // cancelled state is always a checkpoint of a complete iteration.
        if self.cancel.as_ref().is_some_and(|t| t.is_cancelled()) {
            s.stopped = Some(StopReason::Cancelled);
            return Ok(s.stopped);
        }

        // Stopping tests, machine-precision first (as in lsqr.f).
        let mut stop = None;
        if s.itn >= cfg.max_iters {
            stop = Some(StopReason::IterationLimit);
        }
        if 1.0 + test3 <= 1.0 {
            stop = Some(StopReason::ConditionMachinePrecision);
        }
        if 1.0 + test2 <= 1.0 {
            stop = Some(StopReason::LeastSquaresMachinePrecision);
        }
        if 1.0 + t1c <= 1.0 {
            stop = Some(StopReason::ResidualMachinePrecision);
        }
        if test3 <= ctol {
            stop = Some(StopReason::ConditionLimit);
        }
        if test2 <= cfg.atol {
            stop = Some(StopReason::LeastSquaresConverged);
        }
        if test1 <= rtol {
            stop = Some(StopReason::ResidualSmall);
        }
        s.stopped = stop;
        Ok(stop)
    }

    /// Finalize a state into a [`Solution`] (unscales the preconditioned
    /// variables; the state may be finished or mid-flight).
    pub fn finish(&self, state: LsqrState) -> Solution {
        let mut x = state.x;
        let mut var = state.var;
        self.scaling.unscale_solution(&mut x);
        if self.config.compute_var {
            self.scaling.unscale_variance(&mut var);
        }
        let xnorm = gaia_backends::blas::nrm2(&x);
        Solution {
            x,
            var,
            stop: state.stopped.unwrap_or(StopReason::IterationLimit),
            iterations: state.itn,
            rnorm: state.rnorm,
            arnorm: state.arnorm,
            anorm: state.anorm,
            acond: state.acond,
            xnorm,
            bnorm: state.bnorm,
            n_rows: self.op.n_rows(),
            history: state.history,
        }
    }

    /// Capture the iterate trajectory (see [`Lsqr::trajectory`]).
    pub fn try_trajectory(&self, max_iters: usize) -> Result<Vec<TrajectorySample>, OperatorError> {
        let mut state = self.try_init_state()?;
        let mut samples = Vec::with_capacity(max_iters + 1);
        samples.push(state.sample());
        while state.itn < max_iters && !state.is_done() {
            self.try_step(&mut state)?;
            samples.push(state.sample());
        }
        Ok(samples)
    }

    /// Continue a (possibly restored) state to completion.
    pub fn try_run_from(&self, mut state: LsqrState) -> Result<Solution, OperatorError> {
        while !state.is_done() {
            self.try_step(&mut state)?;
        }
        Ok(self.finish(state))
    }

    /// Run the solve from scratch.
    pub fn try_run(&self) -> Result<Solution, OperatorError> {
        // The trivial b = 0 case matches the reference implementation:
        // rnorm reports ‖b‖ and x = 0.
        let state = self.try_init_state()?;
        if state.stopped == Some(StopReason::TrivialSolution) {
            return Ok(self.finish(state));
        }
        self.try_run_from(state)
    }
}

impl<'a, B: Backend + ?Sized> Lsqr<'a, B> {
    /// Create a solver instance. Panics on invalid configuration.
    pub fn new(sys: &'a SparseSystem, backend: &'a B, config: LsqrConfig) -> Self {
        let inner = OperatorLsqr::new(SystemOperator::new(sys, backend), config)
            .expect("resident operator cannot fail");
        Lsqr { inner }
    }

    /// Attach a cancellation token: [`Lsqr::step`] checks it once per
    /// iteration at the health-guard hook point and stops with
    /// [`StopReason::Cancelled`] when it fires, always on a completed
    /// iteration (the state remains a valid checkpoint).
    pub fn with_cancel(mut self, token: CancellationToken) -> Self {
        self.inner = self.inner.with_cancel(token);
        self
    }

    /// The configuration in use.
    pub fn config(&self) -> &LsqrConfig {
        self.inner.config()
    }

    /// Initialize the Golub–Kahan state (`β u = b`, `α v = (A D)ᵀ u`).
    pub fn init_state(&self) -> LsqrState {
        self.inner
            .try_init_state()
            .expect("resident operator cannot fail")
    }

    /// Advance one LSQR iteration. Returns the stop reason once a rule
    /// fires; `None` means "keep iterating". Calling `step` on a finished
    /// state is a no-op returning the existing reason.
    pub fn step(&self, s: &mut LsqrState) -> Option<StopReason> {
        self.inner
            .try_step(s)
            .expect("resident operator cannot fail")
    }

    /// Finalize a state into a [`Solution`] (unscales the preconditioned
    /// variables; the state may be finished or mid-flight).
    pub fn finish(&self, state: LsqrState) -> Solution {
        self.inner.finish(state)
    }

    /// Capture the iterate trajectory: initialize, then step at most
    /// `max_iters` times, sampling (α, β, ρ̄, φ̄, residual estimates) after
    /// initialization and after every completed iteration. The trajectory
    /// is what cross-backend verification compares per-iteration — two
    /// backends whose final solutions agree may still have divergent
    /// reduction orders, and that divergence is visible (and bounded)
    /// here, iterations before it compounds into the solution.
    pub fn trajectory(&self, max_iters: usize) -> Vec<TrajectorySample> {
        self.inner
            .try_trajectory(max_iters)
            .expect("resident operator cannot fail")
    }

    /// Continue a (possibly restored) state to completion.
    pub fn run_from(&self, state: LsqrState) -> Solution {
        self.inner
            .try_run_from(state)
            .expect("resident operator cannot fail")
    }

    /// Run the solve from scratch.
    pub fn run(&self) -> Solution {
        self.inner.try_run().expect("resident operator cannot fail")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gaia_backends::{all_backends, SeqBackend};
    use gaia_sparse::dense::DenseMatrix;
    use gaia_sparse::{Generator, GeneratorConfig, Rhs, SystemLayout};

    fn consistent_system(seed: u64) -> (gaia_sparse::SparseSystem, Vec<f64>) {
        let cfg = GeneratorConfig::new(SystemLayout::tiny())
            .seed(seed)
            .rhs(Rhs::FromTrueSolution { noise_sigma: 0.0 });
        let (sys, truth) = Generator::new(cfg).generate_with_truth();
        (sys, truth.unwrap())
    }

    #[test]
    fn recovers_noiseless_truth() {
        let (sys, x_true) = consistent_system(101);
        let sol = solve(&sys, &SeqBackend, &LsqrConfig::new());
        assert!(sol.stop.converged(), "stop = {:?}", sol.stop);
        let err: f64 = sol
            .x
            .iter()
            .zip(&x_true)
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            .sqrt();
        let scale: f64 = x_true.iter().map(|v| v * v).sum::<f64>().sqrt();
        assert!(err / scale < 1e-7, "relative error {}", err / scale);
    }

    #[test]
    fn matches_dense_normal_equations_with_noise() {
        let cfg = GeneratorConfig::new(SystemLayout::tiny())
            .seed(102)
            .rhs(Rhs::FromTrueSolution { noise_sigma: 1e-2 });
        let (sys, _) = Generator::new(cfg).generate_with_truth();
        let sol = solve(&sys, &SeqBackend, &LsqrConfig::new().max_iters(5_000));
        let dense = DenseMatrix::from_sparse(&sys);
        let x_ls = dense.least_squares(sys.known_terms());
        let err: f64 = sol
            .x
            .iter()
            .zip(&x_ls)
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            .sqrt();
        let scale: f64 = x_ls.iter().map(|v| v * v).sum::<f64>().sqrt();
        assert!(
            err / scale < 1e-6,
            "relative error vs dense LS: {}",
            err / scale
        );
    }

    #[test]
    fn all_backends_agree_on_the_solution() {
        let (sys, _) = consistent_system(103);
        let reference = solve(&sys, &SeqBackend, &LsqrConfig::new());
        for backend in all_backends(4) {
            let sol = solve(&sys, &backend, &LsqrConfig::new());
            let diff: f64 = sol
                .x
                .iter()
                .zip(&reference.x)
                .map(|(a, b)| (a - b).abs())
                .fold(0.0, f64::max);
            assert!(diff < 1e-6, "backend {} deviates by {diff}", backend.name());
        }
    }

    #[test]
    fn fixed_iterations_runs_exactly_n() {
        let (sys, _) = consistent_system(104);
        let sol = solve(&sys, &SeqBackend, &LsqrConfig::fixed_iterations(7));
        assert_eq!(sol.iterations, 7);
        assert_eq!(sol.stop, StopReason::IterationLimit);
        assert_eq!(sol.history.len(), 7);
        assert!(sol.var.is_empty());
    }

    #[test]
    fn zero_rhs_returns_trivial_solution() {
        let (mut sys, _) = consistent_system(105);
        sys.set_known_terms(vec![0.0; sys.n_rows()]);
        let sol = solve(&sys, &SeqBackend, &LsqrConfig::new());
        assert_eq!(sol.stop, StopReason::TrivialSolution);
        assert!(sol.x.iter().all(|&v| v == 0.0));
        assert_eq!(sol.iterations, 0);
    }

    #[test]
    fn preconditioning_speeds_up_convergence() {
        // On the Gaia structure, column scaling should not slow LSQR down;
        // typically it reduces iterations substantially.
        let cfg = GeneratorConfig::new(SystemLayout::small())
            .seed(106)
            .rhs(Rhs::FromTrueSolution { noise_sigma: 0.0 });
        let (sys, _) = Generator::new(cfg).generate_with_truth();
        let with = solve(
            &sys,
            &SeqBackend,
            &LsqrConfig::new().precondition(true).max_iters(10_000),
        );
        let without = solve(
            &sys,
            &SeqBackend,
            &LsqrConfig::new().precondition(false).max_iters(10_000),
        );
        assert!(with.stop.converged());
        assert!(
            with.iterations <= without.iterations + 5,
            "precond {} vs plain {}",
            with.iterations,
            without.iterations
        );
    }

    #[test]
    fn residual_norm_estimate_matches_direct_recomputation() {
        let (sys, _) = consistent_system(107);
        let sol = solve(&sys, &SeqBackend, &LsqrConfig::new().max_iters(50));
        // Recompute ‖b − A x‖ directly.
        let mut r: Vec<f64> = sys.known_terms().to_vec();
        let mut ax = vec![0.0; sys.n_rows()];
        SeqBackend.aprod1(&sys, &sol.x, &mut ax);
        for (ri, &axi) in r.iter_mut().zip(&ax) {
            *ri -= axi;
        }
        let direct = gaia_backends::blas::nrm2(&r);
        assert!(
            (sol.rnorm - direct).abs() <= 1e-8 * (1.0 + direct),
            "estimated {} vs direct {}",
            sol.rnorm,
            direct
        );
    }

    #[test]
    fn history_rnorm_is_monotonically_nonincreasing() {
        let (sys, _) = consistent_system(108);
        let sol = solve(&sys, &SeqBackend, &LsqrConfig::new());
        for wpair in sol.history.windows(2) {
            assert!(
                wpair[1].rnorm <= wpair[0].rnorm * (1.0 + 1e-12),
                "rnorm increased: {} -> {}",
                wpair[0].rnorm,
                wpair[1].rnorm
            );
        }
    }

    #[test]
    fn damped_solve_shrinks_solution_norm() {
        let (sys, _) = consistent_system(109);
        let plain = solve(&sys, &SeqBackend, &LsqrConfig::new());
        let damped = solve(&sys, &SeqBackend, &LsqrConfig::new().damp(1.0));
        assert!(damped.xnorm < plain.xnorm);
    }

    #[test]
    fn standard_errors_are_finite_and_positive() {
        let cfg = GeneratorConfig::new(SystemLayout::tiny())
            .seed(110)
            .rhs(Rhs::FromTrueSolution { noise_sigma: 1e-3 });
        let (sys, _) = Generator::new(cfg).generate_with_truth();
        let sol = solve(&sys, &SeqBackend, &LsqrConfig::new());
        let se = sol.standard_errors().expect("var computed");
        assert_eq!(se.len(), sys.n_cols());
        assert!(se.iter().all(|&s| s.is_finite() && s >= 0.0));
        assert!(se.iter().any(|&s| s > 0.0));
    }

    #[test]
    fn stepping_api_matches_run() {
        let (sys, _) = consistent_system(111);
        let solver = Lsqr::new(&sys, &SeqBackend, LsqrConfig::new());
        let direct = solver.run();
        let mut state = solver.init_state();
        let mut steps = 0;
        while solver.step(&mut state).is_none() {
            steps += 1;
            assert!(steps < 100_000, "runaway stepping loop");
        }
        let stepped = solver.finish(state);
        assert_eq!(stepped.x, direct.x);
        assert_eq!(stepped.iterations, direct.iterations);
        assert_eq!(stepped.stop, direct.stop);
    }

    #[test]
    fn trajectory_matches_the_stepping_api() {
        let (sys, _) = consistent_system(114);
        let solver = Lsqr::new(&sys, &SeqBackend, LsqrConfig::new());
        let traj = solver.trajectory(10);
        assert_eq!(traj[0].itn, 0);
        assert!(traj.len() <= 11);
        let mut state = solver.init_state();
        for sample in &traj[1..] {
            solver.step(&mut state);
            assert_eq!(state.itn, sample.itn);
            assert_eq!(state.alfa.to_bits(), sample.alfa.to_bits());
            assert_eq!(state.beta.to_bits(), sample.beta.to_bits());
            assert_eq!(state.rhobar.to_bits(), sample.rhobar.to_bits());
            assert_eq!(state.rnorm.to_bits(), sample.rnorm.to_bits());
        }
    }

    #[test]
    fn step_after_stop_is_a_noop() {
        let (sys, _) = consistent_system(112);
        let solver = Lsqr::new(&sys, &SeqBackend, LsqrConfig::fixed_iterations(3));
        let mut state = solver.init_state();
        while solver.step(&mut state).is_none() {}
        let x_before = state.x.clone();
        assert_eq!(solver.step(&mut state), Some(StopReason::IterationLimit));
        assert_eq!(state.x, x_before);
        assert_eq!(state.itn, 3);
    }

    #[test]
    fn cancelled_token_stops_on_the_next_iteration_boundary() {
        use crate::cancel::CancellationToken;
        let (sys, _) = consistent_system(115);
        let token = CancellationToken::new();
        let solver = Lsqr::new(&sys, &SeqBackend, LsqrConfig::new()).with_cancel(token.clone());
        let mut state = solver.init_state();
        solver.step(&mut state);
        assert!(state.stopped.is_none(), "un-cancelled token must not stop");
        token.cancel();
        assert_eq!(solver.step(&mut state), Some(StopReason::Cancelled));
        // The stop landed on a completed iteration: the state is intact
        // and finalizable, but the solution is explicitly non-converged.
        assert_eq!(state.itn, 2);
        assert_eq!(state.history.len(), 2);
        let sol = solver.finish(state);
        assert_eq!(sol.stop, StopReason::Cancelled);
        assert!(!sol.stop.converged());
    }

    #[test]
    fn mid_flight_finish_yields_partial_solution() {
        let (sys, _) = consistent_system(113);
        let solver = Lsqr::new(&sys, &SeqBackend, LsqrConfig::new());
        let mut state = solver.init_state();
        for _ in 0..2 {
            solver.step(&mut state);
        }
        let partial = solver.finish(state);
        assert_eq!(partial.iterations, 2);
        let full = solver.run();
        assert!(partial.rnorm >= full.rnorm);
    }
}
