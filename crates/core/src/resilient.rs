//! Resilient distributed solve: a supervisor with checkpoint-based
//! recovery.
//!
//! Production AVU-GSR campaigns run for weeks across CINECA batch
//! allocations; node failures, network corruption, and numerical
//! breakdowns are operational facts, not edge cases. This module wraps
//! [`crate::distributed::try_solve_hybrid`] in the retry loop such a
//! campaign needs:
//!
//! * **detect** — rank panics and collective timeouts surface as
//!   [`gaia_mpi_sim::FaultError`]; corrupted arithmetic trips the
//!   per-iteration health
//!   guards ([`crate::health`]) and stops the solve with
//!   [`StopReason::NumericalBreakdown`];
//! * **recover** — the supervisor restores the last good periodic
//!   checkpoint (taken every [`RecoveryPolicy::checkpoint_every`]
//!   iterations, optionally persisted through a
//!   [`CheckpointRotation`]), re-keys the fault schedule
//!   ([`FaultPlan::set_attempt`]) and re-launches after an exponential
//!   backoff;
//! * **degrade** — when a rank-count tier exhausts its retry budget and
//!   [`RecoveryPolicy::on_unrecoverable`] allows it, the world is
//!   relaunched at half the ranks, down to a fault-free single-rank
//!   [`Lsqr`] + [`SeqBackend`] solve as the floor.
//!
//! Because the simulated collectives are rank-order deterministic and
//! checkpoints are bit-exact, a recovered solve at the original rank
//! count finishes **bit-identical** to an uninterrupted one — the
//! integration tests assert exactly that. Every fault, retry, restore,
//! and degradation is recorded both in the returned [`RecoveryReport`]
//! and in `gaia-telemetry`'s resilience counters.

use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use gaia_backends::{Backend, SeqBackend};
use gaia_mpi_sim::{AbortCause, FaultEvent, FaultKind, FaultPlan, WorldOptions};
use gaia_sparse::SparseSystem;
use gaia_telemetry::ResilienceCell;

use crate::cancel::CancellationToken;
use crate::checkpoint::{Checkpoint, CheckpointRotation};
use crate::config::LsqrConfig;
use crate::distributed::{try_solve_hybrid, DistOptions};
use crate::lsqr::{Lsqr, LsqrState};
use crate::solution::{Solution, StopReason};

/// What to do when a rank-count tier exhausts its retry budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OnUnrecoverable {
    /// Halve the rank count and try again with a fresh retry budget,
    /// bottoming out at a fault-free single-rank solve. This is the
    /// "finish the campaign at any speed" mode of a production run.
    Degrade,
    /// Give up and return [`Unrecoverable`].
    Fail,
}

/// Retry/checkpoint policy of the supervisor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryPolicy {
    /// Relaunches allowed per rank-count tier after the initial attempt.
    pub max_retries: usize,
    /// Base backoff before a relaunch. The actual pause is a **capped
    /// full-jitter** draw: uniform in `[0, min(backoff_cap, backoff ·
    /// 2^min(retry, 6))]` (see [`jittered_backoff`]), so concurrent
    /// supervisors never retry in lockstep. `Duration::ZERO` disables
    /// waiting entirely.
    pub backoff: Duration,
    /// Hard ceiling of the exponential growth; no single pause exceeds it.
    pub backoff_cap: Duration,
    /// Seed of the deterministic jitter draw. Give concurrent tenants
    /// distinct seeds to decorrelate their retries (anti-thundering-herd);
    /// a fixed seed keeps chaos sweeps reproducible.
    pub jitter_seed: u64,
    /// Assemble and store a recovery checkpoint every this many
    /// iterations; `0` disables periodic checkpointing (recovery then
    /// restarts from the beginning, or from [`ResilienceOptions::resume`]).
    pub checkpoint_every: usize,
    /// Tier-exhaustion behaviour.
    pub on_unrecoverable: OnUnrecoverable,
}

impl Default for RecoveryPolicy {
    fn default() -> Self {
        RecoveryPolicy {
            max_retries: 3,
            backoff: Duration::from_millis(10),
            backoff_cap: Duration::from_secs(5),
            jitter_seed: 0,
            checkpoint_every: 8,
            on_unrecoverable: OnUnrecoverable::Degrade,
        }
    }
}

/// Inputs of [`solve_resilient`] beyond the system/config themselves.
#[derive(Default)]
pub struct ResilienceOptions<'a> {
    /// Retry/checkpoint policy.
    pub policy: RecoveryPolicy,
    /// Fault schedule driving the simulated world (chaos runs); `None`
    /// runs fault-free (the supervisor still guards against numerical
    /// breakdowns and real panics).
    pub faults: Option<Arc<FaultPlan>>,
    /// Collective timeout handed to the world, so dead-rank hangs become
    /// detected [`AbortCause::CollectiveTimeout`]s instead of deadlocks.
    pub collective_timeout: Option<Duration>,
    /// Start from a previously checkpointed state (e.g. restored from
    /// disk by the CLI) instead of from scratch.
    pub resume: Option<LsqrState>,
    /// Also persist every periodic checkpoint to this on-disk rotation,
    /// so recovery survives process death, not just rank death.
    pub persist: Option<&'a CheckpointRotation>,
    /// Cooperative cancellation (deadline or explicit), threaded into
    /// every launch — distributed attempts and the single-rank floor
    /// alike. A cancelled solve returns `Ok` with
    /// [`StopReason::Cancelled`] (the last checkpoint is preserved);
    /// the supervisor never retries past a fired token.
    pub cancel: Option<CancellationToken>,
}

/// How one launch of the distributed solve ended.
#[derive(Debug, Clone, PartialEq)]
pub enum AttemptOutcome {
    /// The solve ran to a normal stop (converged or iteration limit).
    Completed(StopReason),
    /// A health guard tripped mid-solve.
    Breakdown,
    /// The world died (rank panic or collective timeout).
    Failed {
        /// Primary abort cause, when recorded.
        cause: Option<AbortCause>,
        /// Human-readable failure summary.
        message: String,
    },
}

/// One launch, as recorded in the supervisor's log.
#[derive(Debug, Clone, PartialEq)]
pub struct AttemptRecord {
    /// Fault-schedule attempt number ([`FaultPlan::attempt`]) of the
    /// launch.
    pub attempt: u64,
    /// World size of the launch.
    pub n_ranks: usize,
    /// Iteration of the checkpoint the launch resumed from, if any.
    pub resumed_from: Option<usize>,
    /// How the launch ended.
    pub outcome: AttemptOutcome,
    /// Wall-clock seconds the launch took.
    pub seconds: f64,
}

/// A completed resilient solve: the solution plus the recovery story.
#[derive(Debug)]
pub struct RecoveryReport {
    /// The final solution.
    pub solution: Solution,
    /// Rank count of the successful launch (smaller than requested if
    /// the supervisor degraded).
    pub final_ranks: usize,
    /// Every launch, in order.
    pub attempts: Vec<AttemptRecord>,
    /// The resilience counters recorded into `gaia-telemetry`.
    pub telemetry: ResilienceCell,
    /// Every injected fault, from the plan's event log.
    pub fault_events: Vec<FaultEvent>,
}

/// The supervisor ran out of options under [`OnUnrecoverable::Fail`].
#[derive(Debug)]
pub struct Unrecoverable {
    /// Every launch attempted before giving up.
    pub attempts: Vec<AttemptRecord>,
    /// Summary of the last failure.
    pub message: String,
}

impl std::fmt::Display for Unrecoverable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "unrecoverable after {} attempt(s): {}",
            self.attempts.len(),
            self.message
        )
    }
}

impl std::error::Error for Unrecoverable {}

/// SplitMix64 finalizer: a cheap, well-mixed deterministic hash.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Capped **full-jitter** exponential backoff, deterministic in
/// `(seed, retry_index)`: the pause before retry `retry_index` is drawn
/// uniformly from `[0, min(cap, base · 2^min(retry_index, 6))]`. Full
/// jitter (AWS architecture-blog style) spreads concurrent retriers
/// across the whole window instead of synchronizing them at the
/// exponential ceiling — the thundering-herd fix a multi-tenant serving
/// layer needs — while the seed keeps every sweep reproducible.
pub fn jittered_backoff(base: Duration, cap: Duration, retry_index: u32, seed: u64) -> Duration {
    if base.is_zero() {
        return Duration::ZERO;
    }
    let ceiling = base.saturating_mul(1 << retry_index.min(6)).min(cap);
    if ceiling.is_zero() {
        return Duration::ZERO;
    }
    let draw = splitmix64(seed ^ ((retry_index as u64) << 32 | 0x5EED));
    // `ceiling` ≤ `cap` which is user-bounded; nanosecond counts fit u64
    // for anything under ~584 years.
    let span_nanos = ceiling.as_nanos().min(u64::MAX as u128) as u64;
    Duration::from_nanos(draw % (span_nanos + 1))
}

fn lock_state(slot: &Mutex<Option<LsqrState>>) -> std::sync::MutexGuard<'_, Option<LsqrState>> {
    // A rank that panics while rank 0 holds the sink lock poisons it;
    // the stored state is always a complete snapshot, so keep using it.
    slot.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Solve `sys` on `n_ranks` ranks under the supervisor: detect rank
/// failures, collective timeouts, and numerical breakdowns; recover from
/// the last good checkpoint with exponential backoff; degrade the rank
/// count when a tier is exhausted (policy permitting). See the module
/// docs for the full contract.
pub fn solve_resilient<F>(
    sys: &SparseSystem,
    n_ranks: usize,
    config: &LsqrConfig,
    backend_for: F,
    opts: &ResilienceOptions<'_>,
) -> Result<RecoveryReport, Unrecoverable>
where
    F: Fn(usize) -> Box<dyn Backend> + Sync,
{
    if opts.faults.is_some() {
        gaia_mpi_sim::install_quiet_panic_hook();
    }
    let policy = opts.policy;
    let last_good: Mutex<Option<LsqrState>> = Mutex::new(opts.resume.clone());
    let sink = |st: &LsqrState| {
        if let Some(rot) = opts.persist {
            // Persistence is best-effort: losing a disk snapshot costs
            // process-death recovery, not rank-death recovery.
            let _ = rot.save(st.itn, &Checkpoint::capture(sys, config, st));
        }
        *lock_state(&last_good) = Some(st.clone());
    };

    let mut attempts: Vec<AttemptRecord> = Vec::new();
    let mut cell = ResilienceCell::default();
    let mut recovery_seconds = 0.0f64;
    let mut attempt_no: u64 = opts.faults.as_ref().map(|p| p.attempt()).unwrap_or(0);
    let mut ranks = n_ranks.max(1);
    let mut retries_left = policy.max_retries;

    loop {
        // A fired token between launches means the deadline struck during
        // a failure or backoff: finalize the last good checkpoint as a
        // Cancelled partial solve instead of burning another attempt.
        if opts.cancel.as_ref().is_some_and(|t| t.is_cancelled()) {
            let solver = Lsqr::new(sys, &SeqBackend, *config);
            let mut st = lock_state(&last_good)
                .clone()
                .unwrap_or_else(|| solver.init_state());
            st.stopped = Some(StopReason::Cancelled);
            let sol = solver.finish(st);
            return Ok(finalize(
                sol,
                ranks,
                attempts,
                cell,
                recovery_seconds,
                opts.faults.as_deref(),
            ));
        }
        if let Some(plan) = &opts.faults {
            plan.set_attempt(attempt_no);
        }
        let resume = lock_state(&last_good).clone();
        let resumed_from = resume.as_ref().map(|s| s.itn);
        let dist = DistOptions {
            world: WorldOptions {
                faults: opts.faults.clone(),
                collective_timeout: opts.collective_timeout,
            },
            resume: resume.as_ref(),
            checkpoint_every: policy.checkpoint_every,
            checkpoint_sink: Some(&sink),
            cancel: opts.cancel.clone(),
        };
        // gaia-analyze: allow(timing): attempt wall time feeds the
        // supervisor's retry report, not a perf counter.
        let t_launch = Instant::now();
        let result = try_solve_hybrid(sys, ranks, config, &backend_for, &dist);
        let seconds = t_launch.elapsed().as_secs_f64();

        match result {
            Ok(sol) if sol.stop != StopReason::NumericalBreakdown => {
                attempts.push(AttemptRecord {
                    attempt: attempt_no,
                    n_ranks: ranks,
                    resumed_from,
                    outcome: AttemptOutcome::Completed(sol.stop),
                    seconds,
                });
                return Ok(finalize(
                    sol,
                    ranks,
                    attempts,
                    cell,
                    recovery_seconds,
                    opts.faults.as_deref(),
                ));
            }
            Ok(sol) => {
                cell.breakdowns += 1;
                recovery_seconds += seconds;
                attempts.push(AttemptRecord {
                    attempt: attempt_no,
                    n_ranks: ranks,
                    resumed_from,
                    outcome: AttemptOutcome::Breakdown,
                    seconds,
                });
                drop(sol);
            }
            Err(err) => {
                if matches!(err.cause, Some(AbortCause::CollectiveTimeout { .. })) {
                    cell.timeouts += 1;
                }
                recovery_seconds += seconds;
                attempts.push(AttemptRecord {
                    attempt: attempt_no,
                    n_ranks: ranks,
                    resumed_from,
                    outcome: AttemptOutcome::Failed {
                        cause: err.cause,
                        message: err.message,
                    },
                    seconds,
                });
            }
        }

        // The launch failed (world death or breakdown): retry within the
        // tier, then degrade or give up.
        if retries_left > 0 {
            let retry_index = (policy.max_retries - retries_left) as u32;
            retries_left -= 1;
            cell.retries += 1;
            if lock_state(&last_good).is_some() {
                cell.checkpoint_restores += 1;
            }
            let pause = jittered_backoff(
                policy.backoff,
                policy.backoff_cap,
                retry_index,
                policy.jitter_seed,
            );
            if !pause.is_zero() {
                std::thread::sleep(pause);
                recovery_seconds += pause.as_secs_f64();
            }
            attempt_no += 1;
            continue;
        }

        match policy.on_unrecoverable {
            OnUnrecoverable::Fail => {
                let message = match &attempts.last().expect("just pushed").outcome {
                    AttemptOutcome::Failed { message, .. } => message.clone(),
                    AttemptOutcome::Breakdown => "numerical breakdown persisted".into(),
                    AttemptOutcome::Completed(_) => unreachable!("completed launches return"),
                };
                record_on_failure(&mut cell, recovery_seconds, opts.faults.as_deref());
                return Err(Unrecoverable { attempts, message });
            }
            OnUnrecoverable::Degrade if ranks > 1 => {
                ranks = (ranks / 2).max(1);
                cell.degradations += 1;
                retries_left = policy.max_retries;
                attempt_no += 1;
            }
            OnUnrecoverable::Degrade => {
                // Floor: fault-free single-rank solve on the reference
                // backend — no simulated world, so nothing left to kill.
                cell.degradations += 1;
                attempt_no += 1;
                let resume = lock_state(&last_good).clone();
                let resumed_from = resume.as_ref().map(|s| s.itn);
                if resume.is_some() {
                    cell.checkpoint_restores += 1;
                }
                // gaia-analyze: allow(timing): attempt wall time feeds the
                // supervisor's retry report, not a perf counter.
                let t_launch = Instant::now();
                let mut solver = Lsqr::new(sys, &SeqBackend, *config);
                if let Some(token) = &opts.cancel {
                    solver = solver.with_cancel(token.clone());
                }
                let sol = match resume {
                    Some(st) => solver.run_from(st),
                    None => solver.run(),
                };
                attempts.push(AttemptRecord {
                    attempt: attempt_no,
                    n_ranks: 1,
                    resumed_from,
                    outcome: AttemptOutcome::Completed(sol.stop),
                    seconds: t_launch.elapsed().as_secs_f64(),
                });
                return Ok(finalize(
                    sol,
                    1,
                    attempts,
                    cell,
                    recovery_seconds,
                    opts.faults.as_deref(),
                ));
            }
        }
    }
}

/// Fold the plan's event log into the counters, record everything into
/// `gaia-telemetry`, and assemble the report.
fn finalize(
    solution: Solution,
    final_ranks: usize,
    attempts: Vec<AttemptRecord>,
    mut cell: ResilienceCell,
    recovery_seconds: f64,
    plan: Option<&FaultPlan>,
) -> RecoveryReport {
    let fault_events = record_on_failure(&mut cell, recovery_seconds, plan);
    RecoveryReport {
        solution,
        final_ranks,
        attempts,
        telemetry: cell,
        fault_events,
    }
}

fn record_on_failure(
    cell: &mut ResilienceCell,
    recovery_seconds: f64,
    plan: Option<&FaultPlan>,
) -> Vec<FaultEvent> {
    let events = plan.map(|p| p.events()).unwrap_or_default();
    for e in &events {
        match e.kind {
            FaultKind::RankPanic => cell.rank_panics += 1,
            FaultKind::BitFlip { .. } => cell.bit_flips += 1,
            FaultKind::Straggle { .. } => cell.straggles += 1,
        }
    }
    cell.recovery_seconds = recovery_seconds;
    gaia_telemetry::record_resilience(cell);
    events
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distributed::solve_distributed;
    use gaia_sparse::{Generator, GeneratorConfig, Rhs, SystemLayout};

    fn system(seed: u64) -> SparseSystem {
        Generator::new(
            GeneratorConfig::new(SystemLayout::tiny())
                .seed(seed)
                .rhs(Rhs::FromTrueSolution { noise_sigma: 1e-8 }),
        )
        .generate()
    }

    fn seq_backends() -> impl Fn(usize) -> Box<dyn Backend> + Sync {
        |_| Box::new(SeqBackend) as Box<dyn Backend>
    }

    fn zero_backoff(policy: RecoveryPolicy) -> RecoveryPolicy {
        RecoveryPolicy {
            backoff: Duration::ZERO,
            ..policy
        }
    }

    #[test]
    fn jittered_backoff_stays_within_the_exponential_ceiling_and_cap() {
        let base = Duration::from_millis(10);
        let cap = Duration::from_millis(200);
        for seed in [0u64, 1, 7, 42, u64::MAX] {
            for retry in 0..16u32 {
                let d = jittered_backoff(base, cap, retry, seed);
                let ceiling = base.saturating_mul(1 << retry.min(6)).min(cap);
                assert!(
                    d <= ceiling,
                    "retry {retry} seed {seed}: {d:?} exceeds {ceiling:?}"
                );
                assert!(d <= cap, "cap must bound every pause");
            }
        }
        // Zero base disables waiting entirely, whatever the retry index.
        assert_eq!(jittered_backoff(Duration::ZERO, cap, 5, 9), Duration::ZERO);
    }

    #[test]
    fn jittered_backoff_is_deterministic_but_decorrelated_across_seeds() {
        let base = Duration::from_millis(50);
        let cap = Duration::from_secs(5);
        let draws = |seed: u64| -> Vec<Duration> {
            (0..8)
                .map(|i| jittered_backoff(base, cap, i, seed))
                .collect()
        };
        assert_eq!(draws(7), draws(7), "same seed must reproduce exactly");
        assert_ne!(
            draws(7),
            draws(8),
            "distinct seeds must not retry in lockstep"
        );
        // Full jitter actually spreads: the draws are not all pinned to
        // the ceiling (which is what plain exponential backoff would do).
        let ds = draws(7);
        assert!(
            (0..8u32).any(|i| {
                let ceiling = base.saturating_mul(1 << i.min(6)).min(cap);
                ds[i as usize] < ceiling
            }),
            "jitter never moved off the ceiling: {ds:?}"
        );
    }

    #[test]
    fn cancelled_supervisor_returns_cancelled_without_retrying() {
        let sys = system(504);
        let cfg = LsqrConfig::new();
        let token = CancellationToken::new();
        token.cancel();
        let report = solve_resilient(
            &sys,
            2,
            &cfg,
            seq_backends(),
            &ResilienceOptions {
                policy: zero_backoff(RecoveryPolicy::default()),
                cancel: Some(token),
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(report.solution.stop, StopReason::Cancelled);
        assert!(
            report.attempts.is_empty(),
            "a pre-fired token must not launch: {:?}",
            report.attempts
        );
        assert!(!report.solution.stop.converged());
    }

    #[test]
    fn fault_free_run_is_a_single_attempt_and_matches_plain_distributed() {
        let sys = system(500);
        let cfg = LsqrConfig::new();
        let reference = solve_distributed(&sys, 3, &cfg);
        let report = solve_resilient(
            &sys,
            3,
            &cfg,
            seq_backends(),
            &ResilienceOptions {
                policy: zero_backoff(RecoveryPolicy::default()),
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(report.attempts.len(), 1);
        assert_eq!(report.final_ranks, 3);
        assert!(report.telemetry.is_empty(), "{:?}", report.telemetry);
        assert_eq!(report.solution.x, reference.x, "must be bit-identical");
    }

    #[test]
    fn scripted_panic_recovers_from_checkpoint_bit_identically() {
        let sys = system(501);
        let cfg = LsqrConfig::new();
        let reference = solve_distributed(&sys, 2, &cfg);
        // Kill rank 1 mid-run (seq 20 is deep enough that a cadence-2
        // checkpoint exists); the retry resumes and must land exactly on
        // the fault-free trajectory.
        let plan = Arc::new(FaultPlan::scripted(0).with_event(0, 1, 20, FaultKind::RankPanic));
        let report = solve_resilient(
            &sys,
            2,
            &cfg,
            seq_backends(),
            &ResilienceOptions {
                policy: zero_backoff(RecoveryPolicy {
                    checkpoint_every: 2,
                    ..RecoveryPolicy::default()
                }),
                faults: Some(plan),
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(report.attempts.len(), 2, "{:?}", report.attempts);
        assert!(matches!(
            report.attempts[0].outcome,
            AttemptOutcome::Failed { .. }
        ));
        assert!(report.attempts[1].resumed_from.is_some(), "restored");
        assert_eq!(report.telemetry.rank_panics, 1);
        assert_eq!(report.telemetry.retries, 1);
        assert_eq!(report.telemetry.checkpoint_restores, 1);
        assert_eq!(report.solution.x, reference.x, "must be bit-identical");
    }

    #[test]
    fn fail_policy_surfaces_unrecoverable_with_the_attempt_log() {
        let sys = system(502);
        let cfg = LsqrConfig::new();
        // Panic at the very first collective of every attempt.
        let plan = Arc::new(
            FaultPlan::scripted(0)
                .with_event(0, 0, 0, FaultKind::RankPanic)
                .with_event(1, 0, 0, FaultKind::RankPanic),
        );
        let err = solve_resilient(
            &sys,
            2,
            &cfg,
            seq_backends(),
            &ResilienceOptions {
                policy: zero_backoff(RecoveryPolicy {
                    max_retries: 1,
                    on_unrecoverable: OnUnrecoverable::Fail,
                    ..RecoveryPolicy::default()
                }),
                faults: Some(plan),
                ..Default::default()
            },
        )
        .unwrap_err();
        assert_eq!(err.attempts.len(), 2);
        assert!(err.to_string().contains("unrecoverable"), "{err}");
    }

    #[test]
    fn degrade_policy_falls_back_to_single_rank_and_still_solves() {
        let sys = system(503);
        let cfg = LsqrConfig::new();
        let reference = crate::lsqr::solve(&sys, &SeqBackend, &cfg);
        // Kill every multi-rank attempt immediately; the supervisor must
        // walk 2 ranks -> 1 rank -> fault-free floor and still converge.
        let plan = Arc::new(
            FaultPlan::scripted(0)
                .with_event(0, 0, 0, FaultKind::RankPanic)
                .with_event(1, 0, 0, FaultKind::RankPanic),
        );
        let report = solve_resilient(
            &sys,
            2,
            &cfg,
            seq_backends(),
            &ResilienceOptions {
                policy: zero_backoff(RecoveryPolicy {
                    max_retries: 0,
                    on_unrecoverable: OnUnrecoverable::Degrade,
                    ..RecoveryPolicy::default()
                }),
                faults: Some(plan),
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(report.final_ranks, 1);
        assert_eq!(report.telemetry.degradations, 2);
        assert!(report.solution.stop.converged(), "{:?}", report.solution);
        // No checkpoint survived (both worlds died at seq 0), so the
        // floor solve starts fresh and matches the plain single-rank
        // solver it delegates to.
        assert_eq!(report.solution.x, reference.x);
    }
}
