//! Jacobi (column-scaling) preconditioner.
//!
//! The production solver runs a "customized and preconditioned version of
//! the LSQR algorithm" (§III-B). The customization that matters numerically
//! is column equilibration: the astrometric, attitude, instrumental, and
//! global columns have wildly different norms (they aggregate very
//! different numbers of observations), and LSQR's convergence rate depends
//! on the condition number. We solve `min ‖(A D) y − b‖` with
//! `D = diag(1/‖a_j‖)` and map back `x = D y`; the `var` estimates map back
//! with `D²`.

use gaia_sparse::SparseSystem;

/// Column scaling `D = diag(1/‖a_j‖)` (identity for zero columns).
#[derive(Debug, Clone)]
pub struct ColumnScaling {
    inv_norms: Vec<f64>,
}

impl ColumnScaling {
    /// Build from the column norms of `sys`.
    pub fn from_system(sys: &SparseSystem) -> Self {
        ColumnScaling::from_norms(sys.column_norms())
    }

    /// Build from precomputed column norms (what an out-of-core operator
    /// supplies; zero-norm columns keep identity scaling). Bitwise
    /// identical to [`ColumnScaling::from_system`] given the same norms.
    pub fn from_norms(norms: Vec<f64>) -> Self {
        let inv_norms = norms
            .into_iter()
            .map(|n| if n > 0.0 { 1.0 / n } else { 1.0 })
            .collect();
        ColumnScaling { inv_norms }
    }

    /// Identity scaling of dimension `n` (used when preconditioning is
    /// disabled, keeping the solver code path uniform).
    pub fn identity(n: usize) -> Self {
        ColumnScaling {
            inv_norms: vec![1.0; n],
        }
    }

    /// Dimension.
    pub fn len(&self) -> usize {
        self.inv_norms.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.inv_norms.is_empty()
    }

    /// The diagonal entries of `D`.
    pub fn inv_norms(&self) -> &[f64] {
        &self.inv_norms
    }

    /// `out = D · v` (element-wise), writing into a caller buffer.
    pub fn apply(&self, v: &[f64], out: &mut [f64]) {
        assert_eq!(v.len(), self.inv_norms.len());
        assert_eq!(out.len(), self.inv_norms.len());
        for ((o, &x), &d) in out.iter_mut().zip(v).zip(&self.inv_norms) {
            *o = x * d;
        }
    }

    /// `v *= D` in place.
    pub fn apply_in_place(&self, v: &mut [f64]) {
        assert_eq!(v.len(), self.inv_norms.len());
        for (x, &d) in v.iter_mut().zip(&self.inv_norms) {
            *x *= d;
        }
    }

    /// Map a preconditioned solution back: `x = D y` in place.
    pub fn unscale_solution(&self, y: &mut [f64]) {
        self.apply_in_place(y);
    }

    /// Map preconditioned variance estimates back: `var *= D²` in place.
    pub fn unscale_variance(&self, var: &mut [f64]) {
        assert_eq!(var.len(), self.inv_norms.len());
        for (v, &d) in var.iter_mut().zip(&self.inv_norms) {
            *v *= d * d;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gaia_sparse::{Generator, GeneratorConfig, SystemLayout};

    #[test]
    fn scaled_columns_have_unit_norm() {
        let sys = Generator::new(GeneratorConfig::new(SystemLayout::tiny()).seed(91)).generate();
        let scaling = ColumnScaling::from_system(&sys);
        // Rebuild column norms of A·D by scaling each entry.
        let mut sq = vec![0.0f64; sys.n_cols()];
        for row in 0..sys.n_rows() {
            for (col, val) in sys.row_entries(row) {
                let scaled = val * scaling.inv_norms()[col as usize];
                sq[col as usize] += scaled * scaled;
            }
        }
        for (j, &s) in sq.iter().enumerate() {
            if s > 0.0 {
                assert!(
                    (s.sqrt() - 1.0).abs() < 1e-10,
                    "column {j} norm {}",
                    s.sqrt()
                );
            }
        }
    }

    #[test]
    fn identity_is_a_noop() {
        let id = ColumnScaling::identity(4);
        let mut v = vec![1.0, -2.0, 3.0, 0.5];
        let orig = v.clone();
        id.apply_in_place(&mut v);
        assert_eq!(v, orig);
        assert_eq!(id.len(), 4);
        assert!(!id.is_empty());
    }

    #[test]
    fn unscale_variance_squares_the_scaling() {
        let s = ColumnScaling {
            inv_norms: vec![2.0, 0.5],
        };
        let mut var = vec![1.0, 8.0];
        s.unscale_variance(&mut var);
        assert_eq!(var, vec![4.0, 2.0]);
    }
}
