//! Solver configuration.

use crate::health::HealthConfig;

/// LSQR stopping rules and options.
///
/// The tolerances follow the classical `LSQR(atol, btol, conlim, itnlim)`
/// interface of Paige & Saunders. The production AVU-GSR solver "stops when
/// it reaches convergence or the maximum number of iterations" (§III-B);
/// the paper's timing runs fix 100 iterations and ignore convergence, which
/// is what [`LsqrConfig::fixed_iterations`] reproduces.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LsqrConfig {
    /// Relative tolerance on `A` (estimate of relative error in the data).
    pub atol: f64,
    /// Relative tolerance on `b`.
    pub btol: f64,
    /// Condition-number limit; the solve stops if the estimate of
    /// `cond(A)` exceeds it. `f64::INFINITY` disables the test.
    pub conlim: f64,
    /// Maximum iterations.
    pub max_iters: usize,
    /// Tikhonov damping parameter (0 in the AVU-GSR production solver).
    pub damp: f64,
    /// Accumulate the `var` estimate of `diag((AᵀA)⁻¹)` used for the
    /// standard errors of the solution (§V-C needs it; timing-only runs can
    /// switch it off).
    pub compute_var: bool,
    /// Apply the Jacobi column-scaling preconditioner (the "customized and
    /// preconditioned version of the LSQR algorithm" of §III-B).
    pub precondition: bool,
    /// Per-iteration numerical health guards (NaN/Inf scans, breakdown and
    /// divergence detection). On by default; the guards never alter a
    /// healthy trajectory, they only stop an already-poisoned one.
    pub health: HealthConfig,
}

impl LsqrConfig {
    /// Production-like defaults: tight tolerances, preconditioning and
    /// variance estimation on.
    pub fn new() -> Self {
        LsqrConfig {
            atol: 1e-10,
            btol: 1e-10,
            conlim: 1e12,
            max_iters: 2_000,
            damp: 0.0,
            compute_var: true,
            precondition: true,
            health: HealthConfig::default(),
        }
    }

    /// The paper's timing configuration: run exactly `n` iterations, no
    /// convergence tests, no variance accumulation.
    pub fn fixed_iterations(n: usize) -> Self {
        LsqrConfig {
            atol: 0.0,
            btol: 0.0,
            conlim: f64::INFINITY,
            max_iters: n,
            damp: 0.0,
            compute_var: false,
            precondition: true,
            health: HealthConfig::default(),
        }
    }

    /// Override the maximum iteration count.
    pub fn max_iters(mut self, n: usize) -> Self {
        self.max_iters = n;
        self
    }

    /// Override the tolerances.
    pub fn tolerances(mut self, atol: f64, btol: f64) -> Self {
        self.atol = atol;
        self.btol = btol;
        self
    }

    /// Enable or disable preconditioning.
    pub fn precondition(mut self, on: bool) -> Self {
        self.precondition = on;
        self
    }

    /// Enable or disable variance accumulation.
    pub fn compute_var(mut self, on: bool) -> Self {
        self.compute_var = on;
        self
    }

    /// Override the health-guard configuration ([`HealthConfig::off`]
    /// disables the guards entirely).
    pub fn health(mut self, health: HealthConfig) -> Self {
        self.health = health;
        self
    }

    /// Set the damping parameter.
    pub fn damp(mut self, damp: f64) -> Self {
        assert!(damp >= 0.0, "damp must be non-negative");
        self.damp = damp;
        self
    }

    /// Validate parameter sanity.
    pub fn validate(&self) -> Result<(), String> {
        if self.atol < 0.0 || self.btol < 0.0 {
            return Err("tolerances must be non-negative".into());
        }
        if self.conlim <= 0.0 {
            return Err("conlim must be positive".into());
        }
        if self.max_iters == 0 {
            return Err("max_iters must be at least 1".into());
        }
        if self.damp < 0.0 {
            return Err("damp must be non-negative".into());
        }
        Ok(())
    }
}

impl Default for LsqrConfig {
    fn default() -> Self {
        LsqrConfig::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_valid() {
        LsqrConfig::new().validate().unwrap();
        LsqrConfig::fixed_iterations(100).validate().unwrap();
    }

    #[test]
    fn fixed_iterations_disables_convergence_tests() {
        let c = LsqrConfig::fixed_iterations(100);
        assert_eq!(c.atol, 0.0);
        assert_eq!(c.btol, 0.0);
        assert_eq!(c.conlim, f64::INFINITY);
        assert!(!c.compute_var);
        assert_eq!(c.max_iters, 100);
    }

    #[test]
    fn invalid_configs_are_rejected() {
        assert!(LsqrConfig::new().max_iters(0).validate().is_err());
        assert!(LsqrConfig::new().tolerances(-1.0, 0.0).validate().is_err());
        let mut c = LsqrConfig::new();
        c.conlim = 0.0;
        assert!(c.validate().is_err());
    }
}
