//! Distributed (observation-sharded) LSQR — the MPI + accelerator shape
//! of the production solver.
//!
//! Mirrors the production decomposition (§IV): each rank owns a
//! star-aligned *shard* of the rows as a real [`SparseSystem`] of its own
//! (so any [`Backend`] — the per-rank "GPU" — can drive it, exactly the
//! MPI+CUDA hybrid of the paper), while the unknown-sized vectors `v`,
//! `w`, `x` are replicated. Per iteration:
//!
//! * `aprod1` is purely local (each rank computes its own rows on its
//!   backend);
//! * `aprod2` produces a local partial of the unknown vector which is
//!   `MPI_Allreduce`-summed — the deterministic rank-ordered reduction of
//!   [`gaia_mpi_sim`] makes the replicated state bit-identical on every
//!   rank;
//! * the norm of the sharded `u` is an allreduce of local sums of squares.
//!
//! Shards renumber the astrometric columns locally (stars are
//! partitioned), so the only index translation is a fixed offset for the
//! astro section; the attitude / instrumental / global columns are shared
//! verbatim. Because the collectives are deterministic, a distributed
//! solve on any rank count equals the single-rank solve to
//! reduction-order noise — the integration tests assert this.

use gaia_backends::blas::{self, d2norm};
use gaia_backends::{Backend, SeqBackend};
use gaia_mpi_sim::{try_run, Communicator, FaultError, ReduceOp, WorldOptions};
use gaia_sparse::system::{ASTRO_NNZ_PER_ROW, ATT_NNZ_PER_ROW, INSTR_NNZ_PER_ROW};
use gaia_sparse::{RowPartition, SparseSystem, SystemLayout};

use crate::cancel::CancellationToken;
use crate::config::LsqrConfig;
use crate::health;
use crate::lsqr::LsqrState;
use crate::precond::ColumnScaling;
use crate::solution::{IterationStats, Solution, StopReason};

/// One rank's slice of the system: a self-contained [`SparseSystem`] over
/// the rank's stars (astro columns renumbered locally) plus the shared
/// attitude / instrumental / global columns.
pub struct Shard {
    /// Owning rank.
    pub rank: usize,
    /// First global star owned by this shard.
    pub star0: u64,
    /// Global row range owned by this shard.
    pub rows: std::ops::Range<usize>,
    /// The shard as a standalone system.
    pub sys: SparseSystem,
}

/// Build rank `rank`'s shard of `full` under `partition`.
pub fn make_shard(full: &SparseSystem, partition: &RowPartition, rank: usize) -> Shard {
    let layout = *full.layout();
    let range = partition.range(rank);
    let rows = range.start as usize..range.end as usize;
    let is_last = rank == partition.n_ranks() - 1;
    let obs_rows = rows.start..rows.end.min(full.n_obs_rows());
    let star0 = if obs_rows.is_empty() {
        0
    } else {
        layout.star_of_row(obs_rows.start as u64)
    };
    let shard_stars = (obs_rows.len() as u64) / layout.obs_per_star;
    debug_assert_eq!(
        obs_rows.len() as u64,
        shard_stars * layout.obs_per_star,
        "partition must be star-aligned"
    );

    let shard_layout = SystemLayout {
        n_stars: shard_stars,
        obs_per_star: layout.obs_per_star,
        n_deg_freedom_att: layout.n_deg_freedom_att,
        n_instr_params: layout.n_instr_params,
        n_glob_params: layout.n_glob_params,
        n_constraint_rows: if is_last { layout.n_constraint_rows } else { 0 },
    };

    // Slice the arrays; astro indices are renumbered to local stars.
    let a = obs_rows.start * ASTRO_NNZ_PER_ROW..obs_rows.end * ASTRO_NNZ_PER_ROW;
    let t = rows.start * ATT_NNZ_PER_ROW..rows.end * ATT_NNZ_PER_ROW;
    let i = obs_rows.start * INSTR_NNZ_PER_ROW..obs_rows.end * INSTR_NNZ_PER_ROW;
    let g = if layout.n_glob_params > 0 {
        obs_rows.clone()
    } else {
        0..0
    };
    let matrix_index_astro: Vec<u64> = full.matrix_index_astro()[obs_rows.clone()]
        .iter()
        .map(|&idx| idx - star0 * ASTRO_NNZ_PER_ROW as u64)
        .collect();
    let sys = SparseSystem::from_parts_shard(
        shard_layout,
        full.values_astro()[a].to_vec(),
        full.values_att()[t].to_vec(),
        full.values_instr()[i.clone()].to_vec(),
        full.values_glob()[g].to_vec(),
        matrix_index_astro,
        full.matrix_index_att()[rows.clone()].to_vec(),
        full.instr_col()[i].to_vec(),
        full.known_terms()[rows.clone()].to_vec(),
    )
    .expect("shard construction preserves invariants");

    Shard {
        rank,
        star0,
        rows,
        sys,
    }
}

impl Shard {
    /// Gather this shard's view of a global unknown vector: the shard's
    /// astro columns followed by the shared sections.
    pub fn local_x(&self, global: &[f64], full_layout: &SystemLayout) -> Vec<f64> {
        let astro0 = (self.star0 * ASTRO_NNZ_PER_ROW as u64) as usize;
        let astro_len = (self.sys.layout().n_stars * ASTRO_NNZ_PER_ROW as u64) as usize;
        let shared0 = full_layout.n_astro_cols() as usize;
        let mut local = Vec::with_capacity(self.sys.n_cols());
        local.extend_from_slice(&global[astro0..astro0 + astro_len]);
        local.extend_from_slice(&global[shared0..]);
        debug_assert_eq!(local.len(), self.sys.n_cols());
        local
    }

    /// Scatter-add this shard's local column vector into a global one.
    pub fn add_to_global(&self, local: &[f64], global: &mut [f64], full_layout: &SystemLayout) {
        debug_assert_eq!(local.len(), self.sys.n_cols());
        let astro0 = (self.star0 * ASTRO_NNZ_PER_ROW as u64) as usize;
        let astro_len = (self.sys.layout().n_stars * ASTRO_NNZ_PER_ROW as u64) as usize;
        let shared0 = full_layout.n_astro_cols() as usize;
        for (slot, &v) in global[astro0..astro0 + astro_len]
            .iter_mut()
            .zip(&local[..astro_len])
        {
            *slot += v;
        }
        for (slot, &v) in global[shared0..].iter_mut().zip(&local[astro_len..]) {
            *slot += v;
        }
    }
}

/// Checkpoint sink invoked on rank 0 with the assembled global state.
pub type CheckpointSink<'a> = &'a (dyn Fn(&LsqrState) + Sync);

/// Options of a fault-aware / resumable distributed solve.
#[derive(Default)]
pub struct DistOptions<'a> {
    /// Fault-injection plan and collective timeout for the simulated
    /// world; defaults to a fault-free world.
    pub world: WorldOptions,
    /// Resume from a (checkpoint-restored) global state instead of
    /// starting fresh. The state must belong to the same system/config
    /// (use [`crate::checkpoint::Checkpoint::restore`] to enforce that).
    pub resume: Option<&'a LsqrState>,
    /// Assemble the replicated state (plus an allgather of the sharded
    /// `u`) every this many iterations and hand it to `checkpoint_sink`
    /// on rank 0. `0` disables periodic checkpointing.
    pub checkpoint_every: usize,
    /// Receiver of the periodic snapshots (rank 0 only).
    pub checkpoint_sink: Option<CheckpointSink<'a>>,
    /// Cooperative cancellation (deadline or explicit). Each rank reads
    /// the token locally, but the stop decision is collective: the
    /// cancel flag rides the per-iteration Max-allreduce, so every rank
    /// stops at the same iteration with identical replicated state. When
    /// periodic checkpointing is on, a final checkpoint is taken at the
    /// cancellation iteration before returning.
    pub cancel: Option<CancellationToken>,
}

/// Solve `sys` on `n_ranks` simulated MPI ranks, each running the
/// sequential reference backend on its shard; returns rank 0's solution
/// (all ranks produce identical results by construction).
pub fn solve_distributed(sys: &SparseSystem, n_ranks: usize, config: &LsqrConfig) -> Solution {
    solve_hybrid(sys, n_ranks, config, |_| Box::new(SeqBackend))
}

/// Hybrid MPI+X solve: `backend_for(rank)` supplies each rank's compute
/// backend (the per-rank "GPU"), mirroring the production MPI+CUDA
/// structure. All ranks produce identical replicated state; rank 0's
/// solution is returned.
pub fn solve_hybrid<F>(
    sys: &SparseSystem,
    n_ranks: usize,
    config: &LsqrConfig,
    backend_for: F,
) -> Solution
where
    F: Fn(usize) -> Box<dyn Backend> + Sync,
{
    try_solve_hybrid(sys, n_ranks, config, backend_for, &DistOptions::default())
        .expect("rank panicked")
}

/// Fault-aware hybrid solve: run under `opts` (fault plan, collective
/// timeout, resume state, periodic checkpoint sink). Rank failures and
/// collective timeouts — injected or real — surface as `Err(FaultError)`
/// instead of hanging or crashing the caller; the resilient supervisor
/// ([`crate::resilient`]) builds its retry loop on this.
pub fn try_solve_hybrid<F>(
    sys: &SparseSystem,
    n_ranks: usize,
    config: &LsqrConfig,
    backend_for: F,
    opts: &DistOptions<'_>,
) -> Result<Solution, FaultError>
where
    F: Fn(usize) -> Box<dyn Backend> + Sync,
{
    config.validate().expect("invalid LSQR configuration");
    let partition = RowPartition::new(sys.layout(), n_ranks);
    let mut results = try_run(n_ranks, opts.world.clone(), |comm| {
        let backend = backend_for(comm.rank());
        let shard = make_shard(sys, &partition, comm.rank());
        rank_solve(sys, shard, backend.as_ref(), config, opts, comm)
    })?;
    Ok(results.swap_remove(0))
}

/// Local squared norm, reduced to the global Euclidean norm.
fn distributed_nrm2(comm: &Communicator, local: &[f64]) -> f64 {
    let local_sq: f64 = local.iter().map(|x| x * x).sum();
    let global_sq = {
        let _t = gaia_telemetry::collective_scope();
        comm.allreduce_scalar(ReduceOp::Sum, local_sq)
    };
    global_sq.sqrt()
}

#[allow(clippy::needless_range_loop)]
fn rank_solve(
    full: &SparseSystem,
    shard: Shard,
    backend: &dyn Backend,
    cfg: &LsqrConfig,
    opts: &DistOptions<'_>,
    comm: Communicator,
) -> Solution {
    let full_layout = *full.layout();
    let n = full.n_cols();
    let m = full.n_rows();
    let local_m = shard.sys.n_rows();

    let scaling = if cfg.precondition {
        ColumnScaling::from_system(full)
    } else {
        ColumnScaling::identity(n)
    };
    let d = scaling.inv_norms();

    // Sharded u; replicated v, w, x (global column space).
    let mut u: Vec<f64> = shard.sys.known_terms().to_vec();
    debug_assert_eq!(u.len(), local_m);
    let mut x = vec![0.0f64; n];
    let mut v = vec![0.0f64; n];
    let mut w = vec![0.0f64; n];
    let mut var = vec![0.0f64; if cfg.compute_var { n } else { 0 }];
    let mut tmp_n = vec![0.0f64; n];
    let mut partial = vec![0.0f64; n];
    let mut local_cols = vec![0.0f64; shard.sys.n_cols()];

    let damp = cfg.damp;
    let dampsq = damp * damp;
    let eps = f64::EPSILON;
    let ctol = if cfg.conlim.is_finite() && cfg.conlim > 0.0 {
        1.0 / cfg.conlim
    } else {
        0.0
    };

    // Local aprod2 through the backend, scattered into the global partial
    // and allreduce-summed.
    let aprod2_global =
        |u: &[f64], partial: &mut Vec<f64>, local_cols: &mut Vec<f64>, comm: &Communicator| {
            partial.iter_mut().for_each(|p| *p = 0.0);
            local_cols.iter_mut().for_each(|p| *p = 0.0);
            backend.aprod2(&shard.sys, u, local_cols);
            shard.add_to_global(local_cols, partial, &full_layout);
            let mut t = gaia_telemetry::collective_scope();
            t.add_bytes(partial.len() as u64 * 8);
            comm.allreduce(ReduceOp::Sum, partial);
        };

    let bnorm;
    let mut history;
    let mut beta;
    let mut alfa;
    let mut arnorm;
    let mut rhobar;
    let mut phibar;
    let mut rnorm;
    let mut anorm;
    let mut acond;
    let mut ddnorm;
    let mut res2;
    let mut xnorm;
    let mut xxnorm;
    let mut z;
    let mut cs2;
    let mut sn2;
    let mut itn;

    if let Some(st) = opts.resume {
        // Resume a checkpoint-restored global state: slice the sharded u,
        // copy the replicated sections, and continue the recurrence from
        // st.itn. Because the reductions are rank-ordered deterministic,
        // the resumed trajectory is bit-identical to the uninterrupted one
        // at the same rank count.
        debug_assert_eq!(st.u.len(), m, "resume state must carry the full u");
        u.copy_from_slice(&st.u[shard.rows.clone()]);
        x.copy_from_slice(&st.x);
        v.copy_from_slice(&st.v);
        w.copy_from_slice(&st.w);
        if cfg.compute_var {
            var.copy_from_slice(&st.var);
        }
        bnorm = st.bnorm;
        history = st.history.clone();
        alfa = st.alfa;
        arnorm = st.arnorm;
        rhobar = st.rhobar;
        phibar = st.phibar;
        rnorm = st.rnorm;
        anorm = st.anorm;
        acond = st.acond;
        ddnorm = st.ddnorm;
        res2 = st.res2;
        xxnorm = st.xxnorm;
        z = st.z;
        cs2 = st.cs2;
        sn2 = st.sn2;
        itn = st.itn;
        if let Some(reason) = st.stopped {
            scaling.unscale_solution(&mut x);
            if cfg.compute_var {
                scaling.unscale_variance(&mut var);
            }
            return Solution {
                xnorm: blas::nrm2(&x),
                x,
                var,
                stop: reason,
                iterations: itn,
                rnorm,
                arnorm,
                anorm,
                acond,
                bnorm,
                n_rows: m,
                history,
            };
        }
    } else {
        bnorm = distributed_nrm2(&comm, &u);
        history = Vec::new();

        beta = bnorm;
        alfa = 0.0;
        if beta > 0.0 {
            blas::scal(&mut u, 1.0 / beta);
            aprod2_global(&u, &mut partial, &mut local_cols, &comm);
            for i in 0..n {
                v[i] = partial[i] * d[i];
            }
            alfa = blas::nrm2(&v);
        }
        if alfa > 0.0 {
            blas::scal(&mut v, 1.0 / alfa);
            w.copy_from_slice(&v);
        }

        arnorm = alfa * beta;
        if arnorm == 0.0 {
            return Solution {
                x,
                var,
                stop: StopReason::TrivialSolution,
                iterations: 0,
                rnorm: bnorm,
                arnorm: 0.0,
                anorm: 0.0,
                acond: 0.0,
                xnorm: 0.0,
                bnorm,
                n_rows: m,
                history,
            };
        }

        rhobar = alfa;
        phibar = beta;
        rnorm = beta;
        anorm = 0.0f64;
        acond = 0.0f64;
        ddnorm = 0.0f64;
        res2 = 0.0f64;
        xxnorm = 0.0f64;
        z = 0.0f64;
        cs2 = -1.0f64;
        sn2 = 0.0f64;
        itn = 0usize;
    }
    let mut istop = StopReason::IterationLimit;

    // Assemble the replicated state plus the allgathered u into a global
    // snapshot (every rank computes it; rank 0 hands it to the sink).
    let snapshot = |itn: usize,
                    u_full: Vec<f64>,
                    x: &[f64],
                    v: &[f64],
                    w: &[f64],
                    var: &[f64],
                    history: &[IterationStats],
                    scalars: &[f64; 16]| {
        LsqrState {
            itn,
            x: x.to_vec(),
            v: v.to_vec(),
            w: w.to_vec(),
            u: u_full,
            var: var.to_vec(),
            alfa: scalars[0],
            beta: scalars[1],
            rhobar: scalars[2],
            phibar: scalars[3],
            anorm: scalars[4],
            acond: scalars[5],
            ddnorm: scalars[6],
            res2: scalars[7],
            rnorm: scalars[8],
            arnorm: scalars[9],
            xnorm: scalars[10],
            xxnorm: scalars[11],
            z: scalars[12],
            cs2: scalars[13],
            sn2: scalars[14],
            bnorm: scalars[15],
            stopped: None,
            history: history.to_vec(),
        }
    };

    while itn < cfg.max_iters {
        itn += 1;
        // gaia-analyze: allow(timing): per-iteration wall time is solver
        // output (convergence traces), recorded via telemetry when enabled.
        let t_iter = std::time::Instant::now();

        // u ← (A D) v − α u, local rows via the backend.
        blas::scal(&mut u, -alfa);
        for i in 0..n {
            tmp_n[i] = v[i] * d[i];
        }
        let local_v = shard.local_x(&tmp_n, &full_layout);
        backend.aprod1(&shard.sys, &local_v, &mut u);
        beta = distributed_nrm2(&comm, &u);

        if beta > 0.0 {
            blas::scal(&mut u, 1.0 / beta);
            anorm = (anorm * anorm + alfa * alfa + beta * beta + dampsq).sqrt();
            blas::scal(&mut v, -beta);
            aprod2_global(&u, &mut partial, &mut local_cols, &comm);
            for i in 0..n {
                v[i] += partial[i] * d[i];
            }
            alfa = blas::nrm2(&v);
            if alfa > 0.0 {
                blas::scal(&mut v, 1.0 / alfa);
            }
        }

        let rhobar1 = d2norm(rhobar, damp);
        let cs1 = rhobar / rhobar1;
        let sn1 = damp / rhobar1;
        let psi = sn1 * phibar;
        phibar *= cs1;

        let rho = d2norm(rhobar1, beta);
        let cs = rhobar1 / rho;
        let sn = beta / rho;
        let theta = sn * alfa;
        rhobar = -cs * alfa;
        let phi = cs * phibar;
        phibar *= sn;
        let tau = sn * phi;

        let t1 = phi / rho;
        let t2 = -theta / rho;
        let t3 = 1.0 / rho;
        let mut dknorm_sq = 0.0;
        for i in 0..n {
            let wi = w[i];
            let dk = t3 * wi;
            dknorm_sq += dk * dk;
            if cfg.compute_var {
                var[i] += dk * dk;
            }
            x[i] += t1 * wi;
            w[i] = v[i] + t2 * wi;
        }
        ddnorm += dknorm_sq;

        let delta = sn2 * rho;
        let gambar = -cs2 * rho;
        let rhs = phi - delta * z;
        let zbar = rhs / gambar;
        xnorm = (xxnorm + zbar * zbar).sqrt();
        let gamma = d2norm(gambar, theta);
        cs2 = gambar / gamma;
        sn2 = theta / gamma;
        z = rhs / gamma;
        xxnorm += z * z;

        acond = anorm * ddnorm.sqrt();
        let res1 = phibar * phibar;
        res2 += psi * psi;
        rnorm = (res1 + res2).sqrt();
        arnorm = alfa * tau.abs();

        let test1 = rnorm / bnorm;
        let test2 = if anorm * rnorm > 0.0 {
            arnorm / (anorm * rnorm)
        } else {
            f64::INFINITY
        };
        let test3 = 1.0 / acond.max(eps);
        let t1c = test1 / (1.0 + anorm * xnorm / bnorm);
        let rtol = cfg.btol + cfg.atol * anorm * xnorm / bnorm;

        // The paper measures "the iteration time maximized among all MPI
        // processes"; reproduce that in the recorded history. With the
        // health guards on, the per-rank breakdown flag rides in the same
        // Max-allreduce, so every rank takes the same stop decision with
        // no extra collective.
        history.push(IterationStats {
            iteration: itn,
            rnorm,
            arnorm,
            anorm,
            acond,
            xnorm,
            seconds: 0.0, // patched with the reduced max below
        });
        let local_secs = t_iter.elapsed().as_secs_f64();
        // The stop flag rides the seconds Max-allreduce: 2.0 = cancelled
        // (a deadline observed by *any* rank cancels all of them at this
        // iteration), 1.0 = health breakdown, 0.0 = keep going. Encoding
        // both in one payload keeps the collective schedule identical on
        // every rank even when ranks observe the token at different times.
        let cancel_flag: f64 = if opts.cancel.as_ref().is_some_and(|t| t.is_cancelled()) {
            2.0
        } else {
            0.0
        };
        let stop_flag = if cfg.health.enabled {
            let issue = health::check_components(
                &cfg.health,
                &[alfa, beta, rnorm, arnorm, xnorm],
                &[('x', &x), ('v', &v), ('u', &u)],
                &history,
            );
            let health_flag = if issue.is_some() { 1.0 } else { 0.0 };
            let mut payload = [local_secs, cancel_flag.max(health_flag)];
            {
                let _t = gaia_telemetry::collective_scope();
                comm.allreduce(ReduceOp::Max, &mut payload);
            }
            history.last_mut().expect("just pushed").seconds = payload[0];
            payload[1]
        } else if opts.cancel.is_some() {
            let mut payload = [local_secs, cancel_flag];
            {
                let _t = gaia_telemetry::collective_scope();
                comm.allreduce(ReduceOp::Max, &mut payload);
            }
            history.last_mut().expect("just pushed").seconds = payload[0];
            payload[1]
        } else {
            let max_secs = {
                let _t = gaia_telemetry::collective_scope();
                comm.allreduce_scalar(ReduceOp::Max, local_secs)
            };
            history.last_mut().expect("just pushed").seconds = max_secs;
            0.0
        };
        if stop_flag >= 2.0 {
            istop = StopReason::Cancelled;
            // Final checkpoint at the cancellation iteration so recovery
            // resumes exactly where the deadline struck. Every rank got
            // the same reduced flag, so all of them reach this allgather.
            if opts.checkpoint_every > 0 {
                let gathered = {
                    let mut t = gaia_telemetry::collective_scope();
                    t.add_bytes(u.len() as u64 * 8);
                    comm.allgather(&u)
                };
                if comm.rank() == 0 {
                    if let Some(sink) = opts.checkpoint_sink {
                        let u_full: Vec<f64> = gathered.concat();
                        debug_assert_eq!(u_full.len(), m);
                        sink(&snapshot(
                            itn,
                            u_full,
                            &x,
                            &v,
                            &w,
                            &var,
                            &history,
                            &[
                                alfa, beta, rhobar, phibar, anorm, acond, ddnorm, res2, rnorm,
                                arnorm, xnorm, xxnorm, z, cs2, sn2, bnorm,
                            ],
                        ));
                    }
                }
            }
            break;
        }
        if stop_flag >= 1.0 {
            istop = StopReason::NumericalBreakdown;
            break;
        }

        let mut stop = None;
        if itn >= cfg.max_iters {
            stop = Some(StopReason::IterationLimit);
        }
        if 1.0 + test3 <= 1.0 {
            stop = Some(StopReason::ConditionMachinePrecision);
        }
        if 1.0 + test2 <= 1.0 {
            stop = Some(StopReason::LeastSquaresMachinePrecision);
        }
        if 1.0 + t1c <= 1.0 {
            stop = Some(StopReason::ResidualMachinePrecision);
        }
        if test3 <= ctol {
            stop = Some(StopReason::ConditionLimit);
        }
        if test2 <= cfg.atol {
            stop = Some(StopReason::LeastSquaresConverged);
        }
        if test1 <= rtol {
            stop = Some(StopReason::ResidualSmall);
        }
        if let Some(reason) = stop {
            istop = reason;
            break;
        }

        // Periodic checkpoint: allgather the sharded u into the global
        // vector and hand the assembled state to the sink on rank 0. The
        // allgather is a collective, so every rank participates whether or
        // not it consumes the snapshot.
        if opts.checkpoint_every > 0 && itn % opts.checkpoint_every == 0 {
            let gathered = {
                let mut t = gaia_telemetry::collective_scope();
                t.add_bytes(u.len() as u64 * 8);
                comm.allgather(&u)
            };
            if comm.rank() == 0 {
                if let Some(sink) = opts.checkpoint_sink {
                    let u_full: Vec<f64> = gathered.concat();
                    debug_assert_eq!(u_full.len(), m);
                    sink(&snapshot(
                        itn,
                        u_full,
                        &x,
                        &v,
                        &w,
                        &var,
                        &history,
                        &[
                            alfa, beta, rhobar, phibar, anorm, acond, ddnorm, res2, rnorm, arnorm,
                            xnorm, xxnorm, z, cs2, sn2, bnorm,
                        ],
                    ));
                }
            }
        }
    }

    scaling.unscale_solution(&mut x);
    if cfg.compute_var {
        scaling.unscale_variance(&mut var);
    }
    xnorm = blas::nrm2(&x);

    Solution {
        x,
        var,
        stop: istop,
        iterations: itn,
        rnorm,
        arnorm,
        anorm,
        acond,
        xnorm,
        bnorm,
        n_rows: m,
        history,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lsqr::solve;
    use gaia_backends::{backend_by_name, SeqBackend};
    use gaia_sparse::{Generator, GeneratorConfig, Rhs, SystemLayout};

    fn system(seed: u64) -> SparseSystem {
        let cfg = GeneratorConfig::new(SystemLayout::tiny())
            .seed(seed)
            .rhs(Rhs::FromTrueSolution { noise_sigma: 1e-8 });
        Generator::new(cfg).generate()
    }

    #[test]
    fn shards_tile_the_full_system() {
        let sys = system(300);
        let partition = RowPartition::new(sys.layout(), 3);
        let mut covered_rows = 0usize;
        let mut covered_stars = 0u64;
        for rank in 0..3 {
            let shard = make_shard(&sys, &partition, rank);
            covered_rows += shard.sys.n_rows();
            covered_stars += shard.sys.layout().n_stars;
            // The shard's rows reproduce the full system's row dots.
            let x: Vec<f64> = (0..sys.n_cols()).map(|i| (i as f64 * 0.31).sin()).collect();
            let local_x = shard.local_x(&x, sys.layout());
            for (li, gi) in shard.rows.clone().enumerate() {
                let want = sys.row_dot(gi, &x);
                let got = shard.sys.row_dot(li, &local_x);
                assert!((want - got).abs() < 1e-12, "rank {rank} row {gi}");
            }
        }
        assert_eq!(covered_rows, sys.n_rows());
        assert_eq!(covered_stars, sys.layout().n_stars);
    }

    #[test]
    fn shard_scatter_gather_round_trip() {
        let sys = system(301);
        let partition = RowPartition::new(sys.layout(), 4);
        // Sum of per-shard aprod2 equals the full aprod2.
        let y: Vec<f64> = (0..sys.n_rows()).map(|i| (i as f64 * 0.17).cos()).collect();
        let mut want = vec![0.0; sys.n_cols()];
        SeqBackend.aprod2(&sys, &y, &mut want);
        let mut got = vec![0.0; sys.n_cols()];
        for rank in 0..4 {
            let shard = make_shard(&sys, &partition, rank);
            let mut local = vec![0.0; shard.sys.n_cols()];
            let local_y = &y[shard.rows.clone()];
            SeqBackend.aprod2(&shard.sys, local_y, &mut local);
            shard.add_to_global(&local, &mut got, sys.layout());
        }
        for (g, w) in got.iter().zip(&want) {
            assert!((g - w).abs() < 1e-11);
        }
    }

    #[test]
    fn distributed_matches_single_rank_reference() {
        let sys = system(302);
        let reference = solve(&sys, &SeqBackend, &LsqrConfig::new());
        for n_ranks in [1usize, 2, 3, 5] {
            let dist = solve_distributed(&sys, n_ranks, &LsqrConfig::new());
            assert_eq!(dist.stop.converged(), reference.stop.converged());
            let max_diff = dist
                .x
                .iter()
                .zip(&reference.x)
                .map(|(a, b)| (a - b).abs())
                .fold(0.0, f64::max);
            assert!(
                max_diff < 1e-6,
                "{n_ranks} ranks deviate by {max_diff} (stop {:?})",
                dist.stop
            );
        }
    }

    #[test]
    fn hybrid_ranks_with_parallel_backends_agree() {
        // MPI + threads: each rank drives its shard with a different
        // parallel backend — heterogeneity must not change the solution
        // beyond float noise. Iteration counts are compared only within
        // a noise window, not for equality: the parallel backends sum
        // `aprod2` contributions in different (for `atomic`,
        // scheduling-dependent — see tests/restart_props.rs) orders, so
        // the iteration at which the convergence test first trips may
        // legitimately shift by one or two around the sequential
        // reference's crossing.
        let sys = system(303);
        let reference = solve_distributed(&sys, 3, &LsqrConfig::new());
        let hybrid = solve_hybrid(&sys, 3, &LsqrConfig::new(), |rank| {
            let names = ["atomic", "replicated", "streamed"];
            backend_by_name(names[rank % 3], 2).unwrap()
        });
        assert!(
            reference.stop.converged(),
            "reference must converge, stopped with {:?}",
            reference.stop
        );
        assert!(
            hybrid.stop.converged(),
            "hybrid must converge, stopped with {:?}",
            hybrid.stop
        );
        let max_diff = hybrid
            .x
            .iter()
            .zip(&reference.x)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max);
        assert!(max_diff < 1e-8, "hybrid deviates by {max_diff}");
        let delta = hybrid.iterations.abs_diff(reference.iterations);
        assert!(
            delta <= 2,
            "hybrid took {} iterations vs reference {} — beyond \
             summation-order noise, likely an aprod defect",
            hybrid.iterations,
            reference.iterations
        );
    }

    #[test]
    fn cancelled_distributed_solve_stops_consistently_and_checkpoints() {
        use crate::cancel::CancellationToken;
        use std::sync::Mutex;
        let sys = system(305);
        let token = CancellationToken::new();
        token.cancel();
        let taken: Mutex<Option<LsqrState>> = Mutex::new(None);
        let sink = |st: &LsqrState| {
            *taken.lock().unwrap() = Some(st.clone());
        };
        let sol = try_solve_hybrid(
            &sys,
            3,
            &LsqrConfig::new(),
            |_| Box::new(SeqBackend),
            &DistOptions {
                checkpoint_every: 2,
                checkpoint_sink: Some(&sink),
                cancel: Some(token),
                ..Default::default()
            },
        )
        .expect("cancellation is a clean stop, not a fault");
        // A token cancelled before launch stops every rank at the first
        // iteration boundary — one complete iteration, then Cancelled.
        assert_eq!(sol.stop, StopReason::Cancelled);
        assert_eq!(sol.iterations, 1);
        // The cancellation checkpoint exists and resumes to convergence.
        let st = taken.lock().unwrap().clone().expect("cancel checkpoint");
        assert_eq!(st.itn, 1);
        let resumed = try_solve_hybrid(
            &sys,
            3,
            &LsqrConfig::new(),
            |_| Box::new(SeqBackend),
            &DistOptions {
                resume: Some(&st),
                ..Default::default()
            },
        )
        .unwrap();
        let reference = solve_distributed(&sys, 3, &LsqrConfig::new());
        assert!(resumed.stop.converged(), "{:?}", resumed.stop);
        assert_eq!(resumed.x, reference.x, "resume must be bit-identical");
    }

    #[test]
    fn fixed_iteration_distributed_run_records_max_rank_time() {
        let sys = system(304);
        let sol = solve_distributed(&sys, 3, &LsqrConfig::fixed_iterations(5));
        assert_eq!(sol.iterations, 5);
        assert!(sol.history.iter().all(|s| s.seconds >= 0.0));
    }
}
