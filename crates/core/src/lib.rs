//! # gaia-lsqr
//!
//! The computational core of the AVU-GSR pipeline: a preconditioned
//! implementation of Paige & Saunders' LSQR algorithm (ACM TOMS 1982,
//! refs \[20\], \[21\] of the paper) solving the overdetermined system
//! `A x = b` of paper Eq. (2).
//!
//! The solver is generic over a [`gaia_backends::Backend`], so the same
//! algorithm runs on every parallelization strategy — exactly the structure
//! of the paper, where one LSQR drives CUDA/HIP/SYCL/OpenMP/PSTL kernels.
//! Features matching the production solver:
//!
//! * **Customization / preconditioning**: Jacobi column scaling
//!   ([`precond`]), which is what makes the Gaia system's wildly different
//!   parameter blocks (astrometric vs attitude vs instrumental vs global)
//!   converge together;
//! * **Standard errors**: the `var` estimate of `diag((AᵀA)⁻¹)` accumulated
//!   across iterations, from which the per-unknown standard errors of
//!   Fig. 6 are derived ([`Solution::standard_errors`]);
//! * **Distributed execution**: observation-sharded solve over the
//!   [`gaia_mpi_sim`] communicator ([`distributed`]);
//! * **Validation**: the 1σ-agreement and 10 µas-threshold checks of §V-C
//!   ([`validate`]).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod analysis;
pub mod cancel;
pub mod checkpoint;
pub mod config;
pub mod distributed;
pub mod health;
pub mod lsmr;
pub mod lsqr;
pub mod ooc;
pub mod operator;
pub mod perf;
pub mod precond;
pub mod resilient;
pub mod solution;
pub mod validate;

pub use analysis::{convergence_profile, ConvergenceProfile};
pub use cancel::CancellationToken;
pub use checkpoint::{Checkpoint, CheckpointError, CheckpointRotation, TileProvenance};
pub use config::LsqrConfig;
pub use distributed::{solve_distributed, solve_hybrid, try_solve_hybrid, DistOptions};
pub use health::{HealthConfig, HealthIssue};
pub use lsmr::solve_lsmr;
pub use lsqr::{solve, solve_operator, Lsqr, OperatorLsqr, TrajectorySample};
pub use ooc::{solve_tiled, TiledOperator};
pub use operator::{Operator, OperatorError, SystemOperator};
pub use perf::run_report;
pub use precond::ColumnScaling;
pub use resilient::{
    jittered_backoff, solve_resilient, OnUnrecoverable, RecoveryPolicy, RecoveryReport,
    ResilienceOptions, Unrecoverable,
};
pub use solution::{IterationStats, Solution, StopReason};
pub use validate::{compare_solutions, Agreement, MICRO_ARCSEC_RAD};
