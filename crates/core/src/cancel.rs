//! Cooperative cancellation for long-running solves.
//!
//! A [`CancellationToken`] is a cloneable handle shared between the party
//! running a solve and the party that may need to stop it (a serving
//! layer enforcing per-request deadlines, an operator, a supervisor).
//! Cancellation is *cooperative*: the solver checks the token once per
//! iteration at the same hook point as the numerical health guards, so a
//! cancelled solve always stops on a complete iteration — the state at
//! the stop is a valid checkpoint, never a half-updated iterate.
//!
//! Two triggers latch the token:
//!
//! * an explicit [`CancellationToken::cancel`] call, and
//! * an optional **deadline** fixed at construction
//!   ([`CancellationToken::with_timeout`]); the first observation past
//!   the deadline latches the flag, so later checks are a cheap atomic
//!   load.
//!
//! In the distributed solve the token is observed per rank but the stop
//! decision is collective (the flag rides the per-iteration
//! Max-allreduce, see [`crate::distributed`]), so every rank cancels at
//! the same iteration and the replicated state stays bit-identical.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

// ORDERING: the cancelled flag is a monotonic latch (false -> true, never
// back). Relaxed is sufficient: observers only need to eventually see the
// latch, and the solver re-checks every iteration; no other memory is
// published through the flag.

/// A cloneable, latching cancellation handle with an optional deadline.
///
/// `Default` constructs a token that never fires on its own (no
/// deadline), matching "no cancellation requested".
#[derive(Clone, Debug, Default)]
pub struct CancellationToken {
    inner: Arc<Inner>,
}

#[derive(Debug, Default)]
struct Inner {
    cancelled: AtomicBool,
    deadline: Option<Instant>,
}

impl CancellationToken {
    /// A token with no deadline; fires only on [`cancel`](Self::cancel).
    pub fn new() -> Self {
        Self::default()
    }

    /// A token that auto-cancels once `deadline` passes.
    pub fn with_deadline(deadline: Instant) -> Self {
        CancellationToken {
            inner: Arc::new(Inner {
                cancelled: AtomicBool::new(false),
                deadline: Some(deadline),
            }),
        }
    }

    /// A token that auto-cancels `timeout` from now.
    pub fn with_timeout(timeout: Duration) -> Self {
        // gaia-analyze: allow(timing): deadline arithmetic needs the real
        // clock; this is control flow, not a perf measurement.
        let now = Instant::now();
        Self::with_deadline(now + timeout)
    }

    /// Latch the token: every subsequent [`is_cancelled`](Self::is_cancelled)
    /// returns `true`.
    pub fn cancel(&self) {
        self.inner.cancelled.store(true, Ordering::Relaxed);
    }

    /// Has the token been cancelled (explicitly or by deadline expiry)?
    /// Deadline expiry latches the flag, so the deadline clock is read at
    /// most until the first expired observation.
    pub fn is_cancelled(&self) -> bool {
        if self.inner.cancelled.load(Ordering::Relaxed) {
            return true;
        }
        if let Some(deadline) = self.inner.deadline {
            // gaia-analyze: allow(timing): deadline arithmetic needs the
            // real clock; this is control flow, not a perf measurement.
            if Instant::now() >= deadline {
                self.inner.cancelled.store(true, Ordering::Relaxed);
                return true;
            }
        }
        false
    }

    /// The deadline, when one was set at construction.
    pub fn deadline(&self) -> Option<Instant> {
        self.inner.deadline
    }

    /// Time left until the deadline (`None` without a deadline; zero once
    /// expired or explicitly cancelled).
    pub fn remaining(&self) -> Option<Duration> {
        if self.inner.cancelled.load(Ordering::Relaxed) {
            return self.inner.deadline.map(|_| Duration::ZERO);
        }
        // gaia-analyze: allow(timing): deadline arithmetic needs the real
        // clock; this is control flow, not a perf measurement.
        let now = Instant::now();
        self.inner
            .deadline
            .map(|d| d.saturating_duration_since(now))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn explicit_cancel_latches_and_is_shared_across_clones() {
        let token = CancellationToken::new();
        let peer = token.clone();
        assert!(!token.is_cancelled());
        peer.cancel();
        assert!(token.is_cancelled());
        assert!(peer.is_cancelled());
    }

    #[test]
    fn deadline_expiry_cancels_without_an_explicit_call() {
        let token = CancellationToken::with_timeout(Duration::ZERO);
        assert!(token.is_cancelled());
        let generous = CancellationToken::with_timeout(Duration::from_secs(3600));
        assert!(!generous.is_cancelled());
        assert!(generous.remaining().unwrap() > Duration::from_secs(3000));
    }

    #[test]
    fn default_token_never_fires_on_its_own() {
        let token = CancellationToken::default();
        assert!(!token.is_cancelled());
        assert!(token.deadline().is_none());
        assert!(token.remaining().is_none());
    }
}
