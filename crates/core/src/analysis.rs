//! Convergence analysis of a solve's iteration history.
//!
//! The paper's timing protocol fixes 100 iterations because "it was not
//! important to obtain the solution at convergence but to measure the
//! iteration time" (Appendix A); production runs, by contrast, care about
//! *how many* iterations convergence takes — which is what the
//! preconditioning customization buys. This module extracts that view
//! from a [`Solution`]'s history: the asymptotic linear convergence rate,
//! the iteration count to reach a tolerance, and a compact textual
//! convergence profile.

use crate::solution::Solution;

/// Fitted convergence characteristics.
#[derive(Debug, Clone, PartialEq)]
pub struct ConvergenceProfile {
    /// Per-iteration geometric reduction factor of the residual norm,
    /// fitted over the tail of the run (`< 1` means converging).
    pub rate: f64,
    /// Iterations the solver actually ran.
    pub iterations: usize,
    /// Relative residual at the end.
    pub final_relative_residual: f64,
    /// Estimated iterations to gain one decimal digit of residual
    /// accuracy (`ln 10 / -ln rate`), `None` when not converging.
    pub iterations_per_digit: Option<f64>,
}

/// Fit the tail convergence rate of a solve (geometric mean of the last
/// up-to-`window` residual ratios). Returns `None` when the history is
/// too short to say anything (< 3 iterations).
pub fn convergence_profile(solution: &Solution, window: usize) -> Option<ConvergenceProfile> {
    let h = &solution.history;
    if h.len() < 3 {
        return None;
    }
    let window = window.max(2).min(h.len() - 1);
    let tail = &h[h.len() - window - 1..];
    // Geometric mean of ratios r_{k+1}/r_k over the tail, in log space.
    let mut log_sum = 0.0;
    let mut count = 0usize;
    for w in tail.windows(2) {
        if w[0].rnorm > 0.0 && w[1].rnorm > 0.0 {
            log_sum += (w[1].rnorm / w[0].rnorm).ln();
            count += 1;
        }
    }
    if count == 0 {
        return None;
    }
    let rate = (log_sum / count as f64).exp();
    let iterations_per_digit = if rate < 1.0 && rate > 0.0 {
        Some(std::f64::consts::LN_10 / -rate.ln())
    } else {
        None
    };
    Some(ConvergenceProfile {
        rate,
        iterations: solution.iterations,
        final_relative_residual: solution.relative_residual(),
        iterations_per_digit,
    })
}

/// First iteration whose relative residual drops below `tol`, if any.
pub fn iterations_to_tolerance(solution: &Solution, tol: f64) -> Option<usize> {
    if solution.bnorm == 0.0 {
        return Some(0);
    }
    solution
        .history
        .iter()
        .find(|s| s.rnorm / solution.bnorm <= tol)
        .map(|s| s.iteration)
}

/// Compact textual profile: relative residual at logarithmically spaced
/// iterations (for run logs and the CLI).
pub fn profile_text(solution: &Solution) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let n = solution.history.len();
    if n == 0 {
        return "no iterations recorded\n".into();
    }
    let mut marks: Vec<usize> = vec![0];
    let mut k = 1usize;
    while k < n {
        marks.push(k);
        k *= 2;
    }
    if *marks.last().unwrap() != n - 1 {
        marks.push(n - 1);
    }
    for &i in &marks {
        let s = &solution.history[i];
        let _ = writeln!(
            out,
            "  iter {:>5}  |r|/|b| = {:.3e}  ‖Aᵀr‖ = {:.3e}",
            s.iteration,
            s.rnorm / solution.bnorm.max(f64::MIN_POSITIVE),
            s.arnorm
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::LsqrConfig;
    use crate::lsqr::solve;
    use gaia_backends::SeqBackend;
    use gaia_sparse::{Generator, GeneratorConfig, Rhs, SystemLayout};

    fn solved(precondition: bool) -> Solution {
        let (sys, _) = Generator::new(
            GeneratorConfig::new(SystemLayout::small())
                .seed(61)
                .rhs(Rhs::FromTrueSolution { noise_sigma: 0.0 }),
        )
        .generate_with_truth();
        solve(
            &sys,
            &SeqBackend,
            &LsqrConfig::new()
                .precondition(precondition)
                .max_iters(5_000),
        )
    }

    #[test]
    fn converging_solve_has_rate_below_one() {
        let sol = solved(true);
        let p = convergence_profile(&sol, 10).expect("enough history");
        assert!(p.rate < 1.0, "rate {}", p.rate);
        assert!(p.iterations_per_digit.unwrap() > 0.0);
        assert_eq!(p.iterations, sol.iterations);
    }

    #[test]
    fn preconditioning_improves_the_fitted_rate() {
        let with = convergence_profile(&solved(true), 10).unwrap();
        let without = convergence_profile(&solved(false), 10).unwrap();
        // Column scaling must not make the tail rate worse.
        assert!(
            with.rate <= without.rate + 0.05,
            "precond rate {} vs plain {}",
            with.rate,
            without.rate
        );
    }

    #[test]
    fn iterations_to_tolerance_is_monotone_in_tol() {
        let sol = solved(true);
        let loose = iterations_to_tolerance(&sol, 1e-2).unwrap();
        let tight = iterations_to_tolerance(&sol, 1e-6).unwrap();
        assert!(loose <= tight);
        assert!(iterations_to_tolerance(&sol, 1e-300).is_none());
    }

    #[test]
    fn short_histories_yield_none() {
        let (sys, _) = Generator::new(
            GeneratorConfig::new(SystemLayout::tiny())
                .seed(62)
                .rhs(Rhs::FromTrueSolution { noise_sigma: 0.0 }),
        )
        .generate_with_truth();
        let sol = solve(&sys, &SeqBackend, &LsqrConfig::fixed_iterations(2));
        assert!(convergence_profile(&sol, 10).is_none());
    }

    #[test]
    fn profile_text_is_log_spaced_and_nonempty() {
        let sol = solved(true);
        let text = profile_text(&sol);
        assert!(
            text.contains("iter     1") || text.contains("iter 1"),
            "{text}"
        );
        let lines = text.lines().count();
        assert!(lines >= 3 && lines <= 2 + (sol.iterations as f64).log2() as usize + 2);
    }
}
