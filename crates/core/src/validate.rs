//! Solution validation (paper §V-C, Fig. 6).
//!
//! The paper verifies each port by comparing its solution and standard
//! errors against the CUDA production solution: the pairs must lie on the
//! 1:1 line, agree within 1σ, and the standard-error differences must stay
//! below the 10 micro-arcsecond astrometric requirement. This module
//! implements those checks for any two [`Solution`]s of the same system.

use serde::{Deserialize, Serialize};

use crate::solution::Solution;

/// One micro-arcsecond in radians (`π / (180·3600·10⁶)`).
pub const MICRO_ARCSEC_RAD: f64 = std::f64::consts::PI / (180.0 * 3600.0 * 1e6);

/// Gaia's astrometric accuracy target: 10 µas (paper §I: "10-100
/// micro-arcseconds accuracy"; §V-C uses the 10 µas bound).
pub const GAIA_THRESHOLD_RAD: f64 = 10.0 * MICRO_ARCSEC_RAD;

/// Quantified agreement between two solutions of the same system.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Agreement {
    /// Number of compared unknowns.
    pub n: usize,
    /// Maximum absolute component difference `max_j |x_aj − x_bj|`.
    pub max_abs_diff: f64,
    /// Mean of the component differences.
    pub mean_diff: f64,
    /// Standard deviation of the component differences.
    pub std_diff: f64,
    /// Fraction of unknowns whose difference is within the combined 1σ
    /// uncertainty `sqrt(se_a² + se_b²)` (`None` when either solution lacks
    /// standard errors).
    pub within_one_sigma: Option<f64>,
    /// Mean of the standard-error differences (`None` without errors).
    pub stderr_mean_diff: Option<f64>,
    /// Standard deviation of the standard-error differences.
    pub stderr_std_diff: Option<f64>,
}

impl Agreement {
    /// The paper's primary acceptance criterion: at least `min_fraction`
    /// of unknowns agree within the combined 1σ uncertainty.
    pub fn passes(&self, min_fraction: f64) -> bool {
        self.within_one_sigma.is_none_or(|f| f >= min_fraction)
    }

    /// The paper's secondary criterion (§V-C): "the mean and standard
    /// deviation of the differences between the standard errors ... always
    /// stay below the 10 micro-arcseconds threshold". The threshold is an
    /// absolute quantity in radians, so it is meaningful only when the
    /// solution is expressed in radians (the Fig. 6 harness calibrates its
    /// synthetic units accordingly; pass [`GAIA_THRESHOLD_RAD`] there).
    pub fn stderr_within(&self, threshold: f64) -> bool {
        match (self.stderr_mean_diff, self.stderr_std_diff) {
            (Some(mean), Some(std)) => mean.abs() < threshold && std < threshold,
            _ => true,
        }
    }
}

/// Compare two solutions of the same system (same dimension required).
pub fn compare_solutions(a: &Solution, b: &Solution) -> Agreement {
    assert_eq!(a.x.len(), b.x.len(), "solutions differ in dimension");
    let n = a.x.len();
    let diffs: Vec<f64> = a.x.iter().zip(&b.x).map(|(p, q)| p - q).collect();
    let max_abs_diff = diffs.iter().fold(0.0f64, |m, d| m.max(d.abs()));
    let mean_diff = diffs.iter().sum::<f64>() / n as f64;
    let std_diff = (diffs
        .iter()
        .map(|d| (d - mean_diff) * (d - mean_diff))
        .sum::<f64>()
        / n as f64)
        .sqrt();

    let se_a = a.standard_errors();
    let se_b = b.standard_errors();
    let (within_one_sigma, stderr_mean_diff, stderr_std_diff) = match (se_a, se_b) {
        (Some(sa), Some(sb)) => {
            let mut within = 0usize;
            for j in 0..n {
                let sigma = (sa[j] * sa[j] + sb[j] * sb[j]).sqrt();
                // Components with zero uncertainty must match to float
                // reduction noise.
                if diffs[j].abs() <= sigma.max(1e-12) {
                    within += 1;
                }
            }
            let se_diffs: Vec<f64> = sa.iter().zip(&sb).map(|(p, q)| p - q).collect();
            let se_mean = se_diffs.iter().sum::<f64>() / n as f64;
            let se_std = (se_diffs
                .iter()
                .map(|d| (d - se_mean) * (d - se_mean))
                .sum::<f64>()
                / n as f64)
                .sqrt();
            (Some(within as f64 / n as f64), Some(se_mean), Some(se_std))
        }
        _ => (None, None, None),
    };

    Agreement {
        n,
        max_abs_diff,
        mean_diff,
        std_diff,
        within_one_sigma,
        stderr_mean_diff,
        stderr_std_diff,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::LsqrConfig;
    use crate::lsqr::solve;
    use gaia_backends::{AtomicBackend, SeqBackend, StreamedBackend};
    use gaia_sparse::{Generator, GeneratorConfig, Rhs, SystemLayout};

    fn noisy_system() -> gaia_sparse::SparseSystem {
        let cfg = GeneratorConfig::new(SystemLayout::tiny())
            .seed(201)
            .rhs(Rhs::FromTrueSolution { noise_sigma: 1e-6 });
        Generator::new(cfg).generate()
    }

    #[test]
    fn solution_agrees_with_itself() {
        let sys = noisy_system();
        let sol = solve(&sys, &SeqBackend, &LsqrConfig::new());
        let agr = compare_solutions(&sol, &sol);
        assert_eq!(agr.max_abs_diff, 0.0);
        assert_eq!(agr.within_one_sigma, Some(1.0));
        assert!(agr.passes(1.0));
    }

    #[test]
    fn different_backends_validate_like_fig6() {
        let sys = noisy_system();
        let reference = solve(&sys, &SeqBackend, &LsqrConfig::new());
        for backend in [
            Box::new(AtomicBackend::with_threads(4)) as Box<dyn gaia_backends::Backend>,
            Box::new(StreamedBackend::with_threads(4)),
        ] {
            let sol = solve(&sys, &backend, &LsqrConfig::new());
            let agr = compare_solutions(&reference, &sol);
            assert!(
                agr.passes(0.99),
                "backend {} fails validation: {agr:?}",
                backend.name()
            );
        }
    }

    #[test]
    fn disagreeing_solutions_fail() {
        let sys = noisy_system();
        let sol = solve(&sys, &SeqBackend, &LsqrConfig::new());
        let mut wrong = sol.clone();
        for v in wrong.x.iter_mut() {
            *v += 1.0;
        }
        let agr = compare_solutions(&sol, &wrong);
        assert!(agr.within_one_sigma.unwrap() < 0.5);
        assert!(!agr.passes(0.99));
        assert!(agr.max_abs_diff >= 1.0);
    }

    #[test]
    fn microarcsecond_constant_is_right() {
        // 1 µas ≈ 4.8481e-12 rad; paper: 10-100 µas = (0.48-4.8)e-10 rad.
        assert!((MICRO_ARCSEC_RAD - 4.8481368e-12).abs() < 1e-17);
        assert!((GAIA_THRESHOLD_RAD - 4.8481368e-11).abs() < 1e-16);
    }
}
