//! Cascade data (the left panels of paper Fig. 3).
//!
//! A cascade orders, per application, the platforms from most to least
//! efficient; the line for an application shows how its efficiency decays
//! and how the cumulative `P` evolves as more platforms are considered.
//! "The first value on the x-axis describes the maximum efficiency on the
//! best-performing hardware for a given framework. The hardware platform
//! itself is identified by the letter in the plot below" (§V-B).

use serde::{Deserialize, Serialize};

use crate::efficiency::EfficiencyMatrix;
use crate::pp::performance_portability;

/// One step of an application's cascade.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CascadePoint {
    /// 1-based position in the app's platform ordering.
    pub rank: usize,
    /// Platform occupying this position.
    pub platform: String,
    /// Application efficiency on that platform.
    pub efficiency: f64,
    /// Cumulative `P` over the `rank` best platforms.
    pub cumulative_pp: f64,
}

/// Cascade of one application over a platform set.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Cascade {
    /// Application name.
    pub app: String,
    /// Ordered cascade points (best platform first). Unsupported platforms
    /// are appended with efficiency 0 and cumulative `P` 0, as in the
    /// p3-analysis plots where CUDA's line drops to zero on AMD.
    pub points: Vec<CascadePoint>,
}

impl Cascade {
    /// Build the cascade of `app` over `platforms` from an efficiency
    /// matrix.
    pub fn build(matrix: &EfficiencyMatrix, app: &str, platforms: &[String]) -> Self {
        let mut supported: Vec<(String, f64)> = Vec::new();
        let mut unsupported: Vec<String> = Vec::new();
        for p in platforms {
            match matrix.efficiency(app, p) {
                Some(e) if e > 0.0 => supported.push((p.clone(), e)),
                _ => unsupported.push(p.clone()),
            }
        }
        supported.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite efficiencies"));

        let mut points = Vec::with_capacity(platforms.len());
        let mut effs: Vec<Option<f64>> = Vec::new();
        for (rank, (platform, e)) in supported.into_iter().enumerate() {
            effs.push(Some(e));
            points.push(CascadePoint {
                rank: rank + 1,
                platform,
                efficiency: e,
                cumulative_pp: performance_portability(&effs),
            });
        }
        for platform in unsupported {
            effs.push(None);
            points.push(CascadePoint {
                rank: points.len() + 1,
                platform,
                efficiency: 0.0,
                cumulative_pp: 0.0,
            });
        }
        Cascade {
            app: app.to_string(),
            points,
        }
    }

    /// Final `P` over the whole platform set (last cumulative value).
    pub fn final_pp(&self) -> f64 {
        self.points.last().map_or(0.0, |p| p.cumulative_pp)
    }

    /// Best platform for this app, if any is supported.
    pub fn best_platform(&self) -> Option<&str> {
        self.points
            .first()
            .filter(|p| p.efficiency > 0.0)
            .map(|p| p.platform.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::efficiency::{MeasurementSet, Normalization};

    fn matrix() -> (EfficiencyMatrix, Vec<String>) {
        let mut s = MeasurementSet::new();
        s.record("cuda", "h100", 1.0);
        s.record("cuda", "t4", 8.0);
        s.record("hip", "h100", 1.25);
        s.record("hip", "t4", 8.0);
        s.record("hip", "mi250x", 3.0);
        s.record("omp", "mi250x", 2.5);
        s.record("omp", "h100", 2.0);
        s.record("omp", "t4", 20.0);
        let platforms = vec!["h100".into(), "mi250x".into(), "t4".into()];
        (s.efficiencies(Normalization::PlatformBest), platforms)
    }

    #[test]
    fn cascade_orders_platforms_by_efficiency() {
        let (m, platforms) = matrix();
        let c = Cascade::build(&m, "hip", &platforms);
        let order: Vec<&str> = c.points.iter().map(|p| p.platform.as_str()).collect();
        // hip eff: h100 = 1/1.25 = 0.8, t4 = 8/8 = 1.0, mi250x = 2.5/3 ≈ 0.83.
        assert_eq!(order, vec!["t4", "mi250x", "h100"]);
        assert_eq!(c.best_platform(), Some("t4"));
        // Cumulative P is non-increasing along the cascade.
        for w in c.points.windows(2) {
            assert!(w[1].cumulative_pp <= w[0].cumulative_pp + 1e-12);
        }
    }

    #[test]
    fn unsupported_platforms_zero_the_tail() {
        let (m, platforms) = matrix();
        let c = Cascade::build(&m, "cuda", &platforms);
        assert_eq!(c.points.len(), 3);
        let last = c.points.last().unwrap();
        assert_eq!(last.platform, "mi250x");
        assert_eq!(last.efficiency, 0.0);
        assert_eq!(c.final_pp(), 0.0);
        // But the partial cascade over supported platforms is positive.
        assert!(c.points[1].cumulative_pp > 0.0);
    }

    #[test]
    fn final_pp_matches_direct_computation() {
        let (m, platforms) = matrix();
        let c = Cascade::build(&m, "omp", &platforms);
        assert!((c.final_pp() - m.pp("omp", &platforms)).abs() < 1e-12);
    }
}
