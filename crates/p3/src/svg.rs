//! Minimal SVG plot emitter.
//!
//! The figure binaries print ASCII for the terminal and JSON for external
//! tooling; this module adds self-contained SVG files (no dependencies)
//! for the two plot shapes the paper uses: the 1:1 scatter of Fig. 6 and
//! the per-framework efficiency lines of Fig. 3/5.

use std::fmt::Write as _;

/// Plot dimensions and margins.
const W: f64 = 480.0;
const H: f64 = 480.0;
const M: f64 = 56.0;

fn axis_bounds(values: impl Iterator<Item = f64>) -> (f64, f64) {
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for v in values {
        if v.is_finite() {
            lo = lo.min(v);
            hi = hi.max(v);
        }
    }
    if !lo.is_finite() || !hi.is_finite() {
        return (0.0, 1.0);
    }
    if lo == hi {
        let pad = lo.abs().max(1e-12);
        return (lo - pad, hi + pad);
    }
    let pad = 0.05 * (hi - lo);
    (lo - pad, hi + pad)
}

fn svg_header(title: &str) -> String {
    format!(
        "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{W}\" height=\"{H}\" \
         viewBox=\"0 0 {W} {H}\" font-family=\"monospace\" font-size=\"11\">\n\
         <rect width=\"{W}\" height=\"{H}\" fill=\"white\"/>\n\
         <text x=\"{}\" y=\"18\" text-anchor=\"middle\" font-size=\"13\">{}</text>\n",
        W / 2.0,
        xml_escape(title)
    )
}

fn xml_escape(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
        .replace('"', "&quot;")
}

/// A 1:1 scatter plot (paper Fig. 6): points `(x, y)` with the identity
/// line dashed, axis labels, and a point color.
pub fn scatter_1to1(
    title: &str,
    x_label: &str,
    y_label: &str,
    points: &[(f64, f64)],
    color: &str,
) -> String {
    let (lo, hi) = axis_bounds(points.iter().flat_map(|&(a, b)| [a, b].into_iter()));
    let scale = |v: f64| M + (v - lo) / (hi - lo) * (W - 2.0 * M);
    let scale_y = |v: f64| H - M - (v - lo) / (hi - lo) * (H - 2.0 * M);
    let mut out = svg_header(title);
    // Frame.
    let _ = writeln!(
        out,
        "<rect x=\"{M}\" y=\"{M}\" width=\"{}\" height=\"{}\" fill=\"none\" stroke=\"black\"/>",
        W - 2.0 * M,
        H - 2.0 * M
    );
    // Identity line.
    let _ = writeln!(
        out,
        "<line x1=\"{}\" y1=\"{}\" x2=\"{}\" y2=\"{}\" stroke=\"black\" stroke-dasharray=\"6 4\"/>",
        scale(lo),
        scale_y(lo),
        scale(hi),
        scale_y(hi)
    );
    // Points.
    for &(x, y) in points {
        let _ = writeln!(
            out,
            "<circle cx=\"{:.2}\" cy=\"{:.2}\" r=\"3\" fill=\"{}\" fill-opacity=\"0.6\"/>",
            scale(x),
            scale_y(y),
            xml_escape(color)
        );
    }
    // Axis labels and bounds.
    let _ = writeln!(
        out,
        "<text x=\"{}\" y=\"{}\" text-anchor=\"middle\">{}</text>",
        W / 2.0,
        H - 14.0,
        xml_escape(x_label)
    );
    let _ = writeln!(
        out,
        "<text x=\"16\" y=\"{}\" text-anchor=\"middle\" transform=\"rotate(-90 16 {})\">{}</text>",
        H / 2.0,
        H / 2.0,
        xml_escape(y_label)
    );
    let _ = writeln!(
        out,
        "<text x=\"{M}\" y=\"{}\" font-size=\"9\">{lo:.3e}</text>\
         <text x=\"{}\" y=\"{}\" font-size=\"9\" text-anchor=\"end\">{hi:.3e}</text>",
        H - M + 14.0,
        W - M,
        H - M + 14.0
    );
    out.push_str("</svg>\n");
    out
}

/// Per-series line chart over integer x positions (paper Fig. 3 cascades /
/// Fig. 5 efficiencies): `series = [(name, color, values)]`, y in [0, 1].
pub fn line_chart(
    title: &str,
    x_labels: &[String],
    series: &[(String, String, Vec<Option<f64>>)],
) -> String {
    let n = x_labels.len().max(2);
    let sx = |i: usize| M + i as f64 / (n as f64 - 1.0) * (W - 2.0 * M);
    let sy = |v: f64| H - M - v.clamp(0.0, 1.05) / 1.05 * (H - 2.0 * M);
    let mut out = svg_header(title);
    let _ = writeln!(
        out,
        "<rect x=\"{M}\" y=\"{M}\" width=\"{}\" height=\"{}\" fill=\"none\" stroke=\"black\"/>",
        W - 2.0 * M,
        H - 2.0 * M
    );
    // Gridline at 1.0 and x labels.
    let _ = writeln!(
        out,
        "<line x1=\"{M}\" y1=\"{:.2}\" x2=\"{}\" y2=\"{:.2}\" stroke=\"#bbb\"/>",
        sy(1.0),
        W - M,
        sy(1.0)
    );
    for (i, label) in x_labels.iter().enumerate() {
        let _ = writeln!(
            out,
            "<text x=\"{:.2}\" y=\"{}\" text-anchor=\"middle\" font-size=\"10\">{}</text>",
            sx(i),
            H - M + 16.0,
            xml_escape(label)
        );
    }
    // Series.
    for (si, (name, color, values)) in series.iter().enumerate() {
        let mut path = String::new();
        let mut pen_down = false;
        for (i, v) in values.iter().enumerate() {
            match v {
                Some(v) => {
                    let cmd = if pen_down { 'L' } else { 'M' };
                    let _ = write!(path, "{cmd}{:.2} {:.2} ", sx(i), sy(*v));
                    pen_down = true;
                }
                None => pen_down = false,
            }
        }
        if !path.is_empty() {
            let _ = writeln!(
                out,
                "<path d=\"{}\" fill=\"none\" stroke=\"{}\" stroke-width=\"1.8\"/>",
                path.trim_end(),
                xml_escape(color)
            );
        }
        for (i, v) in values.iter().enumerate() {
            if let Some(v) = v {
                let _ = writeln!(
                    out,
                    "<circle cx=\"{:.2}\" cy=\"{:.2}\" r=\"2.6\" fill=\"{}\"/>",
                    sx(i),
                    sy(*v),
                    xml_escape(color)
                );
            }
        }
        // Legend.
        let ly = M + 14.0 * si as f64 + 4.0;
        let _ = writeln!(
            out,
            "<rect x=\"{}\" y=\"{:.2}\" width=\"10\" height=\"10\" fill=\"{}\"/>\
             <text x=\"{}\" y=\"{:.2}\" font-size=\"10\">{}</text>",
            W - M - 120.0,
            ly - 8.0,
            xml_escape(color),
            W - M - 106.0,
            ly,
            xml_escape(name)
        );
    }
    out.push_str("</svg>\n");
    out
}

/// Grouped bar chart: one group per x label, one bar per series (used for
/// the Fig. 4 iteration-time panels). Values must be non-negative; a log
/// scale is applied when the spread exceeds 30x (iteration times span
/// orders of magnitude across platforms, as in the paper's log-scale
/// Fig. 4).
pub fn bar_chart_grouped(
    title: &str,
    x_labels: &[String],
    series: &[(String, String, Vec<Option<f64>>)],
) -> String {
    let mut out = svg_header(title);
    let groups = x_labels.len().max(1);
    let bars = series.len().max(1);
    let group_w = (W - 2.0 * M) / groups as f64;
    let bar_w = (group_w * 0.8) / bars as f64;
    let max = series
        .iter()
        .flat_map(|(_, _, v)| v.iter().flatten())
        .fold(0.0f64, |m, &v| m.max(v));
    let min_pos = series
        .iter()
        .flat_map(|(_, _, v)| v.iter().flatten())
        .filter(|&&v| v > 0.0)
        .fold(f64::INFINITY, |m, &v| m.min(v));
    let log = max > 0.0 && min_pos.is_finite() && max / min_pos > 30.0;
    let height = |v: f64| -> f64 {
        if max <= 0.0 || v <= 0.0 {
            return 0.0;
        }
        if log {
            ((v / min_pos).ln() / (max / min_pos).ln()).max(0.02) * (H - 2.0 * M)
        } else {
            v / max * (H - 2.0 * M)
        }
    };
    let _ = writeln!(
        out,
        "<rect x=\"{M}\" y=\"{M}\" width=\"{}\" height=\"{}\" fill=\"none\" stroke=\"black\"/>",
        W - 2.0 * M,
        H - 2.0 * M
    );
    for (g, label) in x_labels.iter().enumerate() {
        let gx = M + g as f64 * group_w;
        let _ = writeln!(
            out,
            "<text x=\"{:.1}\" y=\"{}\" text-anchor=\"middle\" font-size=\"10\">{}</text>",
            gx + group_w / 2.0,
            H - M + 16.0,
            xml_escape(label)
        );
        for (s, (_, color, values)) in series.iter().enumerate() {
            if let Some(Some(v)) = values.get(g) {
                let h = height(*v);
                let x = gx + group_w * 0.1 + s as f64 * bar_w;
                let _ = writeln!(
                    out,
                    "<rect x=\"{:.1}\" y=\"{:.1}\" width=\"{:.1}\" height=\"{:.1}\" fill=\"{}\"/>",
                    x,
                    H - M - h,
                    bar_w.max(1.0),
                    h,
                    xml_escape(color)
                );
            }
        }
    }
    for (si, (name, color, _)) in series.iter().enumerate() {
        let ly = M + 12.0 * si as f64 + 4.0;
        let _ = writeln!(
            out,
            "<rect x=\"{}\" y=\"{:.1}\" width=\"10\" height=\"10\" fill=\"{}\"/>\
             <text x=\"{}\" y=\"{:.1}\" font-size=\"10\">{}</text>",
            W - M - 120.0,
            ly - 8.0,
            xml_escape(color),
            W - M - 106.0,
            ly,
            xml_escape(name)
        );
    }
    if log {
        let _ = writeln!(
            out,
            "<text x=\"{M}\" y=\"{}\" font-size=\"9\">log scale, floor {min_pos:.3}</text>",
            M - 6.0
        );
    }
    out.push_str("</svg>\n");
    out
}

/// Default qualitative palette (8 distinguishable colors, matching the
/// paper's 8 framework lines).
pub const PALETTE: [&str; 8] = [
    "#1f77b4", "#ff7f0e", "#2ca02c", "#d62728", "#9467bd", "#8c564b", "#e377c2", "#7f7f7f",
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scatter_is_well_formed_svg() {
        let pts = vec![(1.0, 1.01), (2.0, 1.98), (3.0, 3.0)];
        let svg = scatter_1to1("t", "prod", "port", &pts, "red");
        assert!(svg.starts_with("<svg"));
        assert!(svg.ends_with("</svg>\n"));
        assert_eq!(svg.matches("<circle").count(), 3);
        assert!(svg.contains("stroke-dasharray"), "identity line present");
        assert!(svg.contains("prod") && svg.contains("port"));
    }

    #[test]
    fn line_chart_handles_gaps_and_legend() {
        let svg = line_chart(
            "P cascade",
            &["1".into(), "2".into(), "3".into()],
            &[
                (
                    "HIP".into(),
                    PALETTE[1].into(),
                    vec![Some(1.0), Some(0.9), Some(0.8)],
                ),
                (
                    "CUDA".into(),
                    PALETTE[0].into(),
                    vec![Some(1.0), None, Some(0.0)],
                ),
            ],
        );
        assert!(svg.contains("HIP") && svg.contains("CUDA"));
        // CUDA's gap breaks the path into two move commands.
        let cuda_path_count = svg.matches('M').count();
        assert!(cuda_path_count >= 3, "{cuda_path_count}");
        assert_eq!(svg.matches("<path").count(), 2);
    }

    #[test]
    fn degenerate_inputs_do_not_panic() {
        let svg = scatter_1to1("t", "x", "y", &[], "blue");
        assert!(svg.contains("</svg>"));
        let same = scatter_1to1("t", "x", "y", &[(2.0, 2.0)], "blue");
        assert!(same.contains("<circle"));
        let empty = line_chart("t", &[], &[]);
        assert!(empty.contains("</svg>"));
    }

    #[test]
    fn grouped_bars_render_one_rect_per_value() {
        let svg = bar_chart_grouped(
            "t",
            &["p1".into(), "p2".into()],
            &[
                ("a".into(), "red".into(), vec![Some(1.0), Some(2.0)]),
                ("b".into(), "blue".into(), vec![Some(3.0), None]),
            ],
        );
        // frame + 3 bars + 2 legend swatches = 6 rects + background.
        assert_eq!(svg.matches("<rect").count(), 1 + 1 + 3 + 2);
        assert!(svg.contains("p1") && svg.contains("p2"));
    }

    #[test]
    fn grouped_bars_switch_to_log_scale_on_wide_spread() {
        let svg = bar_chart_grouped(
            "t",
            &["x".into()],
            &[
                ("a".into(), "red".into(), vec![Some(0.001)]),
                ("b".into(), "blue".into(), vec![Some(1.0)]),
            ],
        );
        assert!(svg.contains("log scale"), "{svg}");
    }

    #[test]
    fn xml_special_characters_are_escaped() {
        let svg = scatter_1to1("a<b & \"c\"", "x", "y", &[(0.0, 1.0)], "red");
        assert!(svg.contains("a&lt;b &amp; &quot;c&quot;"));
        assert!(!svg.contains("a<b"));
    }
}
