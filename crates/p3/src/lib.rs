//! # gaia-p3
//!
//! A Rust reimplementation of the analysis layer the paper uses: the
//! application-efficiency matrix, Pennycook's performance-portability
//! metric `P` (Eq. 1), and the cascade plots of Fig. 3 produced with the
//! p3-analysis-library (ref \[52\]).
//!
//! `P(a, p, H)` is the harmonic mean of application `a`'s efficiency over
//! the platform set `H`, and **zero** if any platform in `H` is
//! unsupported:
//!
//! ```text
//!             |H| / Σ_{i∈H} 1/e_i(a,p)   if a runs on every i ∈ H
//! P(a,p,H) =
//!             0                           otherwise
//! ```
//!
//! Efficiency is *application efficiency*: the best observed time on a
//! platform across all applications, divided by this application's time
//! there (see `DESIGN.md` for why this is the reading consistent with the
//! paper's numbers; the per-application normalization is also available).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod cascade;
pub mod efficiency;
pub mod means;
pub mod plot;
pub mod pp;
pub mod report;
pub mod subsets;
pub mod svg;

pub use cascade::{Cascade, CascadePoint};
pub use efficiency::{EfficiencyMatrix, Measurement, MeasurementSet, Normalization};
pub use pp::performance_portability;
