//! Text tables and CSV output for the figure harness.

use std::fmt::Write as _;

use crate::cascade::Cascade;
use crate::efficiency::{EfficiencyMatrix, MeasurementSet};

/// Render the raw time grid as an aligned text table (seconds), with `-`
/// for unsupported cells. Apps are rows, platforms columns.
pub fn times_table(set: &MeasurementSet, platforms: &[String]) -> String {
    grid_table(
        &set.apps(),
        platforms,
        |app, platform| set.time(app, platform),
        "time [s]",
        "{:.4}",
    )
}

/// Render the efficiency matrix as an aligned text table.
pub fn efficiency_table(matrix: &EfficiencyMatrix, platforms: &[String]) -> String {
    grid_table(
        matrix.apps(),
        platforms,
        |app, platform| matrix.efficiency(app, platform),
        "efficiency",
        "{:.3}",
    )
}

fn grid_table(
    apps: &[String],
    platforms: &[String],
    cell: impl Fn(&str, &str) -> Option<f64>,
    title: &str,
    _fmt: &str,
) -> String {
    let name_w = apps
        .iter()
        .map(|a| a.len())
        .max()
        .unwrap_or(4)
        .max(title.len());
    let col_w = platforms.iter().map(|p| p.len()).max().unwrap_or(6).max(8);
    let mut out = String::new();
    let _ = write!(out, "{:<name_w$}", title);
    for p in platforms {
        let _ = write!(out, " {:>col_w$}", p);
    }
    out.push('\n');
    for app in apps {
        let _ = write!(out, "{:<name_w$}", app);
        for p in platforms {
            match cell(app, p) {
                Some(v) => {
                    let _ = write!(out, " {:>col_w$.4}", v);
                }
                None => {
                    let _ = write!(out, " {:>col_w$}", "-");
                }
            }
        }
        out.push('\n');
    }
    out
}

/// Render the `P` summary for every app over a platform set.
pub fn pp_table(matrix: &EfficiencyMatrix, platforms: &[String]) -> String {
    let mut rows: Vec<(String, f64)> = matrix
        .apps()
        .iter()
        .map(|a| (a.clone(), matrix.pp(a, platforms)))
        .collect();
    rows.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite P"));
    let name_w = rows.iter().map(|(a, _)| a.len()).max().unwrap_or(4).max(9);
    let mut out = String::new();
    let _ = writeln!(out, "{:<name_w$} {:>6}", "framework", "P");
    for (app, p) in rows {
        let _ = writeln!(out, "{:<name_w$} {:>6.3}", app, p);
    }
    out
}

/// Render a cascade (one app) in the style of the Fig. 3 annotations.
pub fn cascade_table(cascade: &Cascade) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "cascade for {} (final P = {:.3})",
        cascade.app,
        cascade.final_pp()
    );
    for pt in &cascade.points {
        let _ = writeln!(
            out,
            "  #{:<2} {:<10} eff {:>6.3}  cumulative P {:>6.3}",
            pt.rank, pt.platform, pt.efficiency, pt.cumulative_pp
        );
    }
    out
}

/// CSV of the efficiency matrix (`app,platform,efficiency`; unsupported
/// cells emitted with an empty value, as p3-analysis does).
pub fn efficiency_csv(matrix: &EfficiencyMatrix, platforms: &[String]) -> String {
    let mut out = String::from("app,platform,efficiency\n");
    for app in matrix.apps() {
        for p in platforms {
            match matrix.efficiency(app, p) {
                Some(v) => {
                    let _ = writeln!(out, "{app},{p},{v}");
                }
                None => {
                    let _ = writeln!(out, "{app},{p},");
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::efficiency::{MeasurementSet, Normalization};

    fn set() -> MeasurementSet {
        let mut s = MeasurementSet::new();
        s.record("cuda", "h100", 1.0);
        s.record("hip", "h100", 2.0);
        s.record("hip", "mi250x", 1.5);
        s
    }

    #[test]
    fn tables_contain_all_cells() {
        let s = set();
        let platforms = s.platforms();
        let t = times_table(&s, &platforms);
        assert!(t.contains("cuda") && t.contains("hip"));
        assert!(t.contains('-'), "unsupported cell must render as dash");
        let m = s.efficiencies(Normalization::PlatformBest);
        let e = efficiency_table(&m, &platforms);
        assert!(e.contains("0.5"), "hip on h100 is 0.5: {e}");
    }

    #[test]
    fn pp_table_is_sorted_descending() {
        let s = set();
        let m = s.efficiencies(Normalization::PlatformBest);
        let t = pp_table(&m, &["h100".to_string()]);
        let cuda_pos = t.find("cuda").unwrap();
        let hip_pos = t.find("hip").unwrap();
        assert!(cuda_pos < hip_pos, "cuda (P=1) sorts before hip: {t}");
    }

    #[test]
    fn csv_has_header_and_blank_for_unsupported() {
        let s = set();
        let m = s.efficiencies(Normalization::PlatformBest);
        let csv = efficiency_csv(&m, &s.platforms());
        assert!(csv.starts_with("app,platform,efficiency\n"));
        assert!(csv.contains("cuda,mi250x,\n"));
    }
}
