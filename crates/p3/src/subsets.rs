//! `P` over platform subsets.
//!
//! The paper repeatedly evaluates `P` over *sets* of platforms — all
//! five, the four NVIDIA ones ("if we only consider NVIDIA platforms,
//! CUDA would be the winner with 0.97"), and the per-size capacity
//! subsets — and Pennycook et al. themselves present `P` for different
//! platform/application subsets because no code runs everywhere. This
//! module systematizes that: named subsets, leave-one-out analysis (which
//! platform costs a framework the most), and the subset winner table.

use std::collections::BTreeMap;

use crate::efficiency::EfficiencyMatrix;

/// `P` of every app over one named platform subset, sorted best-first.
pub fn subset_ranking(matrix: &EfficiencyMatrix, platforms: &[String]) -> Vec<(String, f64)> {
    let mut out: Vec<(String, f64)> = matrix
        .apps()
        .iter()
        .map(|a| (a.clone(), matrix.pp(a, platforms)))
        .collect();
    out.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite P"));
    out
}

/// The app with the highest `P` over the subset (`None` when every app
/// scores zero, e.g. a subset nobody fully supports).
pub fn subset_winner(matrix: &EfficiencyMatrix, platforms: &[String]) -> Option<(String, f64)> {
    subset_ranking(matrix, platforms)
        .into_iter()
        .find(|(_, p)| *p > 0.0)
}

/// Leave-one-out analysis for one app: `P` over the full set and over
/// each set with one platform removed. The platform whose removal raises
/// `P` the most is the app's bottleneck (for CUDA that is trivially the
/// MI250X; for OMP+LLVM it is the T4).
pub fn leave_one_out(
    matrix: &EfficiencyMatrix,
    app: &str,
    platforms: &[String],
) -> BTreeMap<String, f64> {
    let mut out = BTreeMap::new();
    for removed in platforms {
        let subset: Vec<String> = platforms
            .iter()
            .filter(|p| *p != removed)
            .cloned()
            .collect();
        out.insert(removed.clone(), matrix.pp(app, &subset));
    }
    out
}

/// The platform whose removal improves `app`'s `P` the most, with the
/// improved score.
pub fn bottleneck_platform(
    matrix: &EfficiencyMatrix,
    app: &str,
    platforms: &[String],
) -> Option<(String, f64)> {
    leave_one_out(matrix, app, platforms)
        .into_iter()
        .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite P"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::efficiency::{MeasurementSet, Normalization};

    fn matrix() -> (EfficiencyMatrix, Vec<String>) {
        let mut s = MeasurementSet::new();
        // "cuda" unsupported on amd; "omp" terrible on old.
        s.record("cuda", "old", 2.0);
        s.record("cuda", "new", 1.0);
        s.record("hip", "old", 2.1);
        s.record("hip", "new", 1.05);
        s.record("hip", "amd", 1.0);
        s.record("omp", "old", 20.0);
        s.record("omp", "new", 1.2);
        s.record("omp", "amd", 1.1);
        let platforms = vec!["old".into(), "new".into(), "amd".into()];
        (s.efficiencies(Normalization::PlatformBest), platforms)
    }

    #[test]
    fn winner_over_full_set_skips_unsupported_apps() {
        let (m, platforms) = matrix();
        let (winner, p) = subset_winner(&m, &platforms).unwrap();
        assert_eq!(winner, "hip");
        assert!(p > 0.9);
    }

    #[test]
    fn vendor_subset_flips_the_winner() {
        // The paper's NVIDIA-only observation: CUDA wins once AMD is out.
        let (m, _) = matrix();
        let nvidia: Vec<String> = vec!["old".into(), "new".into()];
        let (winner, _) = subset_winner(&m, &nvidia).unwrap();
        assert_eq!(winner, "cuda");
    }

    #[test]
    fn bottleneck_identifies_the_costly_platform() {
        let (m, platforms) = matrix();
        // omp's harmonic mean is dominated by its "old" disaster.
        let (worst, improved) = bottleneck_platform(&m, "omp", &platforms).unwrap();
        assert_eq!(worst, "old");
        assert!(improved > m.pp("omp", &platforms) * 2.0);
        // cuda's bottleneck is the unsupported platform (P goes 0 → >0).
        let (cuda_worst, cuda_improved) = bottleneck_platform(&m, "cuda", &platforms).unwrap();
        assert_eq!(cuda_worst, "amd");
        assert!(cuda_improved > 0.0);
        assert_eq!(m.pp("cuda", &platforms), 0.0);
    }

    #[test]
    fn ranking_is_sorted_descending() {
        let (m, platforms) = matrix();
        let r = subset_ranking(&m, &platforms);
        for w in r.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
        assert_eq!(r.len(), 3);
    }

    #[test]
    fn empty_subset_scores_zero_for_everyone() {
        let (m, _) = matrix();
        assert!(subset_winner(&m, &[]).is_none());
    }
}
