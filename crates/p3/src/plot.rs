//! Minimal ASCII charts for terminal reproduction of the figures.
//!
//! The paper's figures are matplotlib plots from the p3-analysis-library;
//! in a text harness we render the same data as horizontal bar charts
//! (Figs. 4 and 5) and per-app cascade strips (Fig. 3). The CSV emitters in
//! [`crate::report`] carry the exact values for external plotting.

use std::fmt::Write as _;

/// Horizontal bar chart of labeled values scaled to `width` columns.
/// Values must be non-negative; bars render with `#`, and the numeric
/// value is appended.
pub fn bar_chart(title: &str, entries: &[(String, f64)], width: usize) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{title}");
    if entries.is_empty() {
        out.push_str("  (no data)\n");
        return out;
    }
    let max = entries.iter().map(|(_, v)| *v).fold(0.0f64, f64::max);
    let label_w = entries.iter().map(|(l, _)| l.len()).max().unwrap_or(1);
    for (label, value) in entries {
        assert!(*value >= 0.0, "bar chart values must be non-negative");
        let bar_len = if max > 0.0 {
            ((value / max) * width as f64).round() as usize
        } else {
            0
        };
        let _ = writeln!(
            out,
            "  {:<label_w$} |{:<width$}| {:.4}",
            label,
            "#".repeat(bar_len),
            value
        );
    }
    out
}

/// Cascade strip: efficiency per rank for one app, annotated with platform
/// initials below, as in the Fig. 3 lower panels.
pub fn cascade_strip(cascade: &crate::cascade::Cascade, width: usize) -> String {
    let entries: Vec<(String, f64)> = cascade
        .points
        .iter()
        .map(|p| (format!("#{} {}", p.rank, p.platform), p.efficiency))
        .collect();
    bar_chart(
        &format!("{} (P = {:.3})", cascade.app, cascade.final_pp()),
        &entries,
        width,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bars_scale_to_width() {
        let chart = bar_chart("t", &[("a".to_string(), 1.0), ("bb".to_string(), 0.5)], 10);
        assert!(chart.contains("##########"), "{chart}");
        assert!(chart.contains("#####"), "{chart}");
        assert!(chart.contains("1.0000"));
    }

    #[test]
    fn empty_chart_renders_placeholder() {
        assert!(bar_chart("x", &[], 10).contains("no data"));
    }

    #[test]
    fn zero_values_render_empty_bars() {
        let chart = bar_chart("z", &[("a".to_string(), 0.0)], 10);
        assert!(
            chart.contains("| 0.0000") || chart.contains("|          | 0.0000"),
            "{chart}"
        );
    }
}
