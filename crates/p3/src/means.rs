//! Why the harmonic mean.
//!
//! Pennycook et al. choose the harmonic mean for `P` deliberately: it is
//! the only Pythagorean mean whose value corresponds to *total work over
//! total time* when the same problem runs once per platform, and it
//! punishes imbalance — one bad platform drags the score the way it drags
//! a real campaign. This module implements all three means plus the
//! AM–GM–HM comparison so the choice is demonstrable (and tested) rather
//! than asserted.

/// Arithmetic mean; 0 for an empty slice.
pub fn arithmetic_mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.iter().sum::<f64>() / values.len() as f64
}

/// Geometric mean of positive values; 0 if any value is non-positive.
pub fn geometric_mean(values: &[f64]) -> f64 {
    if values.is_empty() || values.iter().any(|&v| v <= 0.0) {
        return 0.0;
    }
    (values.iter().map(|v| v.ln()).sum::<f64>() / values.len() as f64).exp()
}

/// Harmonic mean of positive values; 0 if any value is non-positive
/// (matching `P`'s unsupported-platform semantics).
pub fn harmonic_mean(values: &[f64]) -> f64 {
    if values.is_empty() || values.iter().any(|&v| v <= 0.0) {
        return 0.0;
    }
    values.len() as f64 / values.iter().map(|v| 1.0 / v).sum::<f64>()
}

/// The three means of an efficiency set, for side-by-side reporting.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MeanComparison {
    /// Harmonic mean — Pennycook's `P`.
    pub harmonic: f64,
    /// Geometric mean.
    pub geometric: f64,
    /// Arithmetic mean — the over-optimistic aggregate.
    pub arithmetic: f64,
}

/// Compute all three means.
pub fn compare(values: &[f64]) -> MeanComparison {
    MeanComparison {
        harmonic: harmonic_mean(values),
        geometric: geometric_mean(values),
        arithmetic: arithmetic_mean(values),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn hm_equals_total_work_over_total_time() {
        // Same problem on each platform: times t_i, efficiencies e_i =
        // t_best_i / t_i. With per-platform bests b_i and the same unit of
        // work W per platform, the campaign-level efficiency is
        // Σ b_i / Σ t_i when b_i are equal — exactly the harmonic mean of
        // the e_i. Verify on a concrete case with equal bests.
        let best = 2.0;
        let times = [2.0, 4.0, 8.0];
        let effs: Vec<f64> = times.iter().map(|t| best / t).collect();
        let campaign = (times.len() as f64 * best) / times.iter().sum::<f64>();
        assert!((harmonic_mean(&effs) - campaign).abs() < 1e-12);
        // The arithmetic mean overstates it.
        assert!(arithmetic_mean(&effs) > campaign + 0.05);
    }

    #[test]
    fn one_bad_platform_dominates_the_harmonic_mean() {
        let effs = [1.0, 1.0, 1.0, 0.05];
        let c = compare(&effs);
        assert!(c.harmonic < 0.2, "{c:?}");
        assert!(c.arithmetic > 0.7, "{c:?}");
        assert!(c.geometric > c.harmonic && c.geometric < c.arithmetic);
    }

    proptest! {
        #[test]
        fn am_gm_hm_inequality(values in proptest::collection::vec(0.01f64..1.0, 1..12)) {
            let c = compare(&values);
            prop_assert!(c.harmonic <= c.geometric + 1e-12);
            prop_assert!(c.geometric <= c.arithmetic + 1e-12);
        }

        #[test]
        fn all_means_equal_on_constant_input(v in 0.01f64..1.0, n in 1usize..10) {
            let values = vec![v; n];
            let c = compare(&values);
            prop_assert!((c.harmonic - v).abs() < 1e-12);
            prop_assert!((c.geometric - v).abs() < 1e-12);
            prop_assert!((c.arithmetic - v).abs() < 1e-12);
        }

        #[test]
        fn harmonic_matches_pp_on_supported_sets(
            values in proptest::collection::vec(0.01f64..1.0, 1..10),
        ) {
            let wrapped: Vec<Option<f64>> = values.iter().copied().map(Some).collect();
            let pp = crate::pp::performance_portability(&wrapped);
            prop_assert!((pp - harmonic_mean(&values)).abs() < 1e-12);
        }
    }

    #[test]
    fn zero_and_empty_semantics_match_p() {
        assert_eq!(harmonic_mean(&[]), 0.0);
        assert_eq!(harmonic_mean(&[0.5, 0.0]), 0.0);
        assert_eq!(geometric_mean(&[0.5, -1.0]), 0.0);
        assert_eq!(arithmetic_mean(&[]), 0.0);
    }
}
