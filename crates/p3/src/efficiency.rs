//! Timing measurements and the application-efficiency matrix.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

/// One timing observation: application (framework+compiler) × platform.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Measurement {
    /// Application / code-version identifier (e.g. `"SYCL+ACPP"`).
    pub app: String,
    /// Platform identifier (e.g. `"H100"`).
    pub platform: String,
    /// Average LSQR iteration time in seconds (lower is better).
    pub seconds: f64,
}

/// How raw times are turned into efficiencies in `[0, 1]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Normalization {
    /// *Application efficiency* (the paper's metric): best observed time on
    /// the platform across all applications, divided by this application's
    /// time on that platform.
    #[default]
    PlatformBest,
    /// Per-application normalization: the application's own best time
    /// across platforms, divided by its time on this platform (the literal
    /// reading of the artifact appendix; measures cross-platform spread of
    /// one code version rather than competitiveness).
    AppBestPlatform,
}

/// A collection of measurements over an app × platform grid. Missing cells
/// mean "does not run there" (e.g. CUDA on MI250X, or a problem too large
/// for the device memory) and make `P` zero over sets containing them.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct MeasurementSet {
    times: BTreeMap<(String, String), f64>,
}

impl MeasurementSet {
    /// Empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a measurement (replaces any previous value for the cell).
    pub fn record(&mut self, app: &str, platform: &str, seconds: f64) {
        assert!(
            seconds.is_finite() && seconds > 0.0,
            "measurement must be positive and finite ({app} on {platform}: {seconds})"
        );
        self.times
            .insert((app.to_string(), platform.to_string()), seconds);
    }

    /// Add from a [`Measurement`].
    pub fn push(&mut self, m: Measurement) {
        self.record(&m.app, &m.platform, m.seconds);
    }

    /// Look up a cell.
    pub fn time(&self, app: &str, platform: &str) -> Option<f64> {
        self.times
            .get(&(app.to_string(), platform.to_string()))
            .copied()
    }

    /// All distinct applications, sorted.
    pub fn apps(&self) -> Vec<String> {
        let mut v: Vec<String> = self.times.keys().map(|(a, _)| a.clone()).collect();
        v.sort();
        v.dedup();
        v
    }

    /// All distinct platforms, sorted.
    pub fn platforms(&self) -> Vec<String> {
        let mut v: Vec<String> = self.times.keys().map(|(_, p)| p.clone()).collect();
        v.sort();
        v.dedup();
        v
    }

    /// Best (lowest) time on a platform across all applications.
    pub fn platform_best(&self, platform: &str) -> Option<f64> {
        self.times
            .iter()
            .filter(|((_, p), _)| p == platform)
            .map(|(_, &t)| t)
            .min_by(|a, b| a.partial_cmp(b).expect("times are finite"))
    }

    /// Best (lowest) time of an application across all platforms.
    pub fn app_best(&self, app: &str) -> Option<f64> {
        self.times
            .iter()
            .filter(|((a, _), _)| a == app)
            .map(|(_, &t)| t)
            .min_by(|a, b| a.partial_cmp(b).expect("times are finite"))
    }

    /// Compute the efficiency matrix under a normalization.
    pub fn efficiencies(&self, norm: Normalization) -> EfficiencyMatrix {
        let apps = self.apps();
        let platforms = self.platforms();
        let mut cells = BTreeMap::new();
        for app in &apps {
            for platform in &platforms {
                if let Some(t) = self.time(app, platform) {
                    let reference = match norm {
                        Normalization::PlatformBest => self.platform_best(platform),
                        Normalization::AppBestPlatform => self.app_best(app),
                    }
                    .expect("cell exists, so a best exists");
                    cells.insert((app.clone(), platform.clone()), reference / t);
                }
            }
        }
        EfficiencyMatrix {
            apps,
            platforms,
            cells,
        }
    }
}

/// Application × platform efficiency matrix (values in `(0, 1]`).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EfficiencyMatrix {
    apps: Vec<String>,
    platforms: Vec<String>,
    cells: BTreeMap<(String, String), f64>,
}

impl EfficiencyMatrix {
    /// Applications (sorted).
    pub fn apps(&self) -> &[String] {
        &self.apps
    }

    /// Platforms (sorted).
    pub fn platforms(&self) -> &[String] {
        &self.platforms
    }

    /// Efficiency of `app` on `platform` (`None` = unsupported).
    pub fn efficiency(&self, app: &str, platform: &str) -> Option<f64> {
        self.cells
            .get(&(app.to_string(), platform.to_string()))
            .copied()
    }

    /// Efficiencies of one app over a platform set, `None` for unsupported.
    pub fn app_row(&self, app: &str, platforms: &[String]) -> Vec<Option<f64>> {
        platforms.iter().map(|p| self.efficiency(app, p)).collect()
    }

    /// Pennycook `P` of an app over a platform set.
    pub fn pp(&self, app: &str, platforms: &[String]) -> f64 {
        crate::pp::performance_portability(&self.app_row(app, platforms))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> MeasurementSet {
        let mut s = MeasurementSet::new();
        s.record("cuda", "h100", 1.0);
        s.record("hip", "h100", 2.0);
        s.record("hip", "mi250x", 1.0);
        s.record("omp", "h100", 4.0);
        s.record("omp", "mi250x", 2.0);
        s
    }

    #[test]
    fn platform_best_picks_min() {
        let s = sample();
        assert_eq!(s.platform_best("h100"), Some(1.0));
        assert_eq!(s.platform_best("mi250x"), Some(1.0));
        assert_eq!(s.platform_best("t4"), None);
    }

    #[test]
    fn platform_best_normalization() {
        let e = sample().efficiencies(Normalization::PlatformBest);
        assert_eq!(e.efficiency("cuda", "h100"), Some(1.0));
        assert_eq!(e.efficiency("hip", "h100"), Some(0.5));
        assert_eq!(e.efficiency("hip", "mi250x"), Some(1.0));
        assert_eq!(e.efficiency("omp", "h100"), Some(0.25));
        assert_eq!(e.efficiency("cuda", "mi250x"), None);
    }

    #[test]
    fn app_best_normalization() {
        let e = sample().efficiencies(Normalization::AppBestPlatform);
        // hip's best is 1.0 on mi250x → eff 0.5 on h100, 1.0 on mi250x.
        assert_eq!(e.efficiency("hip", "h100"), Some(0.5));
        assert_eq!(e.efficiency("hip", "mi250x"), Some(1.0));
        // cuda runs on one platform only → eff 1.0 there.
        assert_eq!(e.efficiency("cuda", "h100"), Some(1.0));
    }

    #[test]
    fn pp_over_sets() {
        let e = sample().efficiencies(Normalization::PlatformBest);
        let all = vec!["h100".to_string(), "mi250x".to_string()];
        // hip: harmonic mean of {0.5, 1.0} = 2/3.
        assert!((e.pp("hip", &all) - 2.0 / 3.0).abs() < 1e-12);
        // cuda: unsupported on mi250x → 0.
        assert_eq!(e.pp("cuda", &all), 0.0);
        // cuda over the NVIDIA-only set → 1.
        assert_eq!(e.pp("cuda", &["h100".to_string()]), 1.0);
    }

    #[test]
    #[should_panic(expected = "positive and finite")]
    fn rejects_nonpositive_times() {
        MeasurementSet::new().record("a", "p", 0.0);
    }
}
