//! Pennycook's performance-portability metric (paper Eq. 1).

/// `P(a, p, H)`: harmonic mean of the efficiencies over the platform set;
/// zero if the application does not run on every platform (`None` or a
/// non-positive efficiency).
///
/// Properties (exercised by the property tests below):
/// * `P` lies between the minimum and maximum efficiency;
/// * `P` equals the common value when all efficiencies are equal;
/// * `P` is monotone: improving any efficiency cannot decrease it;
/// * adding a platform can only keep or lower `P` when the added
///   efficiency is below the current `P` (harmonic-mean dilution — this is
///   why the paper's 60 GB scores look better: fewer platforms).
pub fn performance_portability(efficiencies: &[Option<f64>]) -> f64 {
    if efficiencies.is_empty() {
        return 0.0;
    }
    let mut inv_sum = 0.0f64;
    for e in efficiencies {
        match e {
            Some(v) if *v > 0.0 => inv_sum += 1.0 / v,
            _ => return 0.0,
        }
    }
    efficiencies.len() as f64 / inv_sum
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn harmonic_mean_of_known_values() {
        let p = performance_portability(&[Some(1.0), Some(0.5)]);
        assert!((p - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn unsupported_platform_zeroes_p() {
        assert_eq!(performance_portability(&[Some(1.0), None]), 0.0);
        assert_eq!(performance_portability(&[Some(1.0), Some(0.0)]), 0.0);
    }

    #[test]
    fn empty_set_is_zero() {
        assert_eq!(performance_portability(&[]), 0.0);
    }

    #[test]
    fn single_platform_is_its_efficiency() {
        assert!((performance_portability(&[Some(0.73)]) - 0.73).abs() < 1e-15);
    }

    proptest! {
        #[test]
        fn p_is_bounded_by_min_and_max(effs in proptest::collection::vec(0.01f64..1.0, 1..10)) {
            let wrapped: Vec<Option<f64>> = effs.iter().copied().map(Some).collect();
            let p = performance_portability(&wrapped);
            let min = effs.iter().cloned().fold(f64::INFINITY, f64::min);
            let max = effs.iter().cloned().fold(0.0f64, f64::max);
            prop_assert!(p >= min - 1e-12 && p <= max + 1e-12);
        }

        #[test]
        fn p_of_equal_efficiencies_is_that_value(e in 0.01f64..1.0, n in 1usize..10) {
            let wrapped = vec![Some(e); n];
            let p = performance_portability(&wrapped);
            prop_assert!((p - e).abs() < 1e-12);
        }

        #[test]
        fn p_is_monotone_in_each_efficiency(
            effs in proptest::collection::vec(0.01f64..0.99, 2..8),
            idx in 0usize..8,
            bump in 0.001f64..0.01,
        ) {
            let idx = idx % effs.len();
            let wrapped: Vec<Option<f64>> = effs.iter().copied().map(Some).collect();
            let before = performance_portability(&wrapped);
            let mut improved = effs.clone();
            improved[idx] += bump;
            let wrapped2: Vec<Option<f64>> = improved.iter().copied().map(Some).collect();
            let after = performance_portability(&wrapped2);
            prop_assert!(after >= before - 1e-12);
        }

        #[test]
        fn adding_a_weak_platform_lowers_p(
            effs in proptest::collection::vec(0.5f64..1.0, 1..6),
            weak in 0.01f64..0.4,
        ) {
            let mut wrapped: Vec<Option<f64>> = effs.iter().copied().map(Some).collect();
            let before = performance_portability(&wrapped);
            wrapped.push(Some(weak));
            let after = performance_portability(&wrapped);
            prop_assert!(after <= before + 1e-12);
        }
    }
}
